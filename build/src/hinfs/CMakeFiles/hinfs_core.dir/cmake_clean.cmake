file(REMOVE_RECURSE
  "CMakeFiles/hinfs_core.dir/benefit_model.cc.o"
  "CMakeFiles/hinfs_core.dir/benefit_model.cc.o.d"
  "CMakeFiles/hinfs_core.dir/dram_buffer.cc.o"
  "CMakeFiles/hinfs_core.dir/dram_buffer.cc.o.d"
  "CMakeFiles/hinfs_core.dir/hinfs_fs.cc.o"
  "CMakeFiles/hinfs_core.dir/hinfs_fs.cc.o.d"
  "libhinfs_core.a"
  "libhinfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
