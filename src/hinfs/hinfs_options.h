// Tunables for HinfsFs. Defaults follow the paper where it states them.

#ifndef SRC_HINFS_HINFS_OPTIONS_H_
#define SRC_HINFS_HINFS_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/qos/qos_config.h"
#include "src/wal/wal_options.h"

namespace hinfs {

struct HinfsOptions {
  // DRAM write-buffer capacity (paper evaluation: 2 GB, or 1/10 of workload).
  size_t buffer_bytes = 64ull << 20;

  // Background writeback wakes when free blocks drop below Low_f (5 %) and
  // reclaims until free blocks exceed High_f (20 %).
  double low_watermark = 0.05;
  double high_watermark = 0.20;

  // Periodic writeback interval (paper: 5 s) and dirty-block staleness bound
  // (paper: 30 s). Tests shrink these.
  uint64_t writeback_period_ms = 5000;
  uint64_t staleness_ms = 30000;

  // A block's Eager-Persistent state decays back to Lazy-Persistent after this
  // long without a synchronization operation (paper: 5 s).
  uint64_t eager_decay_ms = 5000;

  // L_dram for the Buffer Benefit Model: DRAM write cost per cacheline.
  uint64_t dram_write_ns_per_line = 15;

  // Ablations.
  bool clfw = true;           // false => HiNFS-NCLFW (block-granularity fetch/writeback)
  bool eager_checker = true;  // false => HiNFS-WB (buffer every write)

  // Buffer replacement policy. The paper ships LRW and names LFU/ARC/2Q as
  // compatible future work; this reproduction implements them for the
  // replacement-policy ablation study.
  enum class Replacement {
    kLrw,   // Least Recently Written (paper default)
    kFifo,  // insertion order, ignores rewrites
    kLfu,   // least frequently written
    kArc,   // ARC adapted to write references (T1/T2 + ghost lists)
    kTwoQ,  // 2Q: probationary A1in FIFO + Am LRU, with an A1out ghost queue
  };
  Replacement replacement = Replacement::kLrw;

  // Number of independent write-buffer shards, each with its own lock, frame
  // slice, residency/ghost lists, watermarks, and counters (keyed by
  // hash(ino, file_block)). 0 = auto: the next power of two >=
  // std::thread::hardware_concurrency(). 1 reproduces the pre-sharding
  // single-lock buffer exactly (ablation baseline). Non-powers of two round
  // up; the count is clamped so every shard owns at least 2 frames.
  int buffer_shards = 0;

  int writeback_threads = 1;

  // When true, a shard whose free list runs dry borrows free frames from idle
  // shards (and from the global reserve) instead of blocking its writers until
  // its own writeback completes. Only active while the background writeback
  // engine is running; single-shard buffers never steal.
  bool steal_frames = true;

  // WAL decorator tunables (src/wal/), used by the +wal test-bed variants.
  WalOptions wal;

  // The one place environment overrides are read. Call sites (shell, benches,
  // tests) apply this instead of parsing getenv themselves:
  //   HINFS_BUFFER_SHARDS      shard count (0 = auto)
  //   HINFS_WRITEBACK_THREADS  background writeback worker count
  //   HINFS_STEAL_FRAMES       0 disables cross-shard frame stealing
  //   HINFS_WAL_REGIONS        per-core WAL regions (0 = auto)
  //   HINFS_WAL_BYTES          WAL carve size in bytes
  //   HINFS_WAL_COMMIT_FMT     "checksum" (1 fence/commit) or "fence" (2)
  //   HINFS_WAL_CHECKPOINT_MS  background checkpoint period (0 = on demand)
  //   HINFS_WAL_DIRECT_MIN     write size that bypasses the log (0 = log all)
  // A malformed WAL value aborts the process (exit 2): silently falling back
  // to a default would invalidate the ablation a run was asked to measure.
  // The HINFS_QOS_* knobs (tenant scheduler, src/qos/qos_config.h) get the
  // same treatment, including failing fast on unrecognized HINFS_QOS_* names;
  // their values configure NvmmConfig::qos, not this struct, so FromEnv only
  // validates them here (see qos::QosConfig::FromEnv for the consumer).
  static HinfsOptions FromEnv() { return FromEnv(HinfsOptions()); }
  static HinfsOptions FromEnv(HinfsOptions base) {
    qos::QosConfig::CheckQosEnv();
    if (const char* env = std::getenv("HINFS_BUFFER_SHARDS")) {
      base.buffer_shards = std::atoi(env);
    }
    if (const char* env = std::getenv("HINFS_WRITEBACK_THREADS")) {
      base.writeback_threads = std::atoi(env);
    }
    if (const char* env = std::getenv("HINFS_STEAL_FRAMES")) {
      base.steal_frames = std::atoi(env) != 0;
    }
    if (const char* env = std::getenv("HINFS_WAL_REGIONS")) {
      base.wal.regions = static_cast<int>(ParseWalU64("HINFS_WAL_REGIONS", env));
    }
    if (const char* env = std::getenv("HINFS_WAL_BYTES")) {
      const uint64_t v = ParseWalU64("HINFS_WAL_BYTES", env);
      if (v == 0) {
        DieBadWalEnv("HINFS_WAL_BYTES", env);
      }
      base.wal.total_bytes = v;
    }
    if (const char* env = std::getenv("HINFS_WAL_COMMIT_FMT")) {
      const std::string_view v(env);
      if (v == "checksum") {
        base.wal.commit_format = WalCommitFormat::kChecksum;
      } else if (v == "fence") {
        base.wal.commit_format = WalCommitFormat::kFence;
      } else {
        DieBadWalEnv("HINFS_WAL_COMMIT_FMT", env);
      }
    }
    if (const char* env = std::getenv("HINFS_WAL_CHECKPOINT_MS")) {
      base.wal.checkpoint_ms = ParseWalU64("HINFS_WAL_CHECKPOINT_MS", env);
    }
    if (const char* env = std::getenv("HINFS_WAL_DIRECT_MIN")) {
      base.wal.direct_write_bytes = ParseWalU64("HINFS_WAL_DIRECT_MIN", env);
    }
    return base;
  }

 private:
  [[noreturn]] static void DieBadWalEnv(const char* var, const char* value) {
    std::fprintf(stderr, "hinfs: bad %s=\"%s\"\n", var, value);
    std::exit(2);
  }
  static uint64_t ParseWalU64(const char* var, const char* value) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
      DieBadWalEnv(var, value);
    }
    return static_cast<uint64_t>(v);
  }
};

}  // namespace hinfs

#endif  // SRC_HINFS_HINFS_OPTIONS_H_
