// BandwidthLimiter: models NVMM's limited write bandwidth (paper default 1 GB/s,
// ~1/8 of DRAM bandwidth).
//
// The paper caps the number of concurrently-writing threads; we model the same
// effect as a shared bandwidth pipe that writer threads serialize through:
//   kSpin mode    - a wall-clock token bucket; writers spin until their bytes fit.
//   kVirtual mode - a deterministic single-server queue in simulated time:
//                   start = max(thread_now, server_free); server_free = start + bytes/BW.
// Both make background writeback traffic compete with foreground eager-persistent
// writes, the effect Figs. 7-9 of the paper depend on (see DESIGN.md §1).

#ifndef SRC_NVMM_BANDWIDTH_LIMITER_H_
#define SRC_NVMM_BANDWIDTH_LIMITER_H_

#include <cstdint>
#include <mutex>

#include "src/nvmm/latency_model.h"

namespace hinfs {

class BandwidthLimiter {
 public:
  // bytes_per_sec == 0 disables limiting entirely.
  BandwidthLimiter(LatencyMode mode, uint64_t bytes_per_sec);

  // Blocks (spin mode) or advances the caller's SimClock (virtual mode) until
  // `bytes` of NVMM write bandwidth have been consumed.
  void Acquire(uint64_t bytes);

  uint64_t bytes_per_sec() const { return bytes_per_sec_; }
  void set_bytes_per_sec(uint64_t bps);

 private:
  LatencyMode mode_;
  uint64_t bytes_per_sec_;

  std::mutex mu_;
  // Spin mode token bucket state.
  double tokens_ = 0;
  uint64_t last_refill_ns_ = 0;
  // Virtual mode single-server queue state.
  uint64_t server_free_ns_ = 0;
};

}  // namespace hinfs

#endif  // SRC_NVMM_BANDWIDTH_LIMITER_H_
