#include "src/crashlab/crash_state_gen.h"

#include <cstring>
#include <map>
#include <random>
#include <unordered_set>

#include "src/common/constants.h"

namespace hinfs {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    h = (h ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

uint64_t HashBytes(const uint8_t* data, size_t len) {
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < len; i++) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

}  // namespace

Status CrashStateEnumerator::Enumerate(
    const std::function<Result<bool>(const CrashImageSpec&)>& visit) {
  if (trace_.base_persistent().empty()) {
    return Status(ErrorCode::kNotSupported,
                  "crash-state enumeration requires a trace from a track_persistence device");
  }
  const size_t size = trace_.base_persistent().size();
  const bool optimized = opts_.flush_instruction != FlushInstruction::kClflush;

  std::vector<uint8_t> volatile_img = trace_.base_volatile();
  std::vector<uint8_t> persistent = trace_.base_persistent();
  std::vector<uint8_t> scratch(size);
  std::vector<PendingEntry> pending;
  std::unordered_set<uint64_t> seen;
  uint64_t pversion = 0;  // bumped whenever `persistent` mutates
  uint64_t epoch = 0;
  bool stop = false;

  // Applies one subset of the pending entries (given as indices, in flush
  // order) on top of `persistent` and visits the result if it is new.
  auto emit = [&](const std::vector<size_t>& subset) -> Status {
    // Later entries for the same line overwrite earlier ones; std::map keeps
    // the surviving lines sorted for a canonical hash.
    std::map<uint64_t, const PendingEntry*> lines;
    for (size_t idx : subset) {
      lines[pending[idx].line] = &pending[idx];
    }
    uint64_t h = FnvMix(kFnvOffset, pversion);
    for (const auto& [line, entry] : lines) {
      h = FnvMix(h, line);
      h = FnvMix(h, entry->content_hash);
    }
    if (!seen.insert(h).second) {
      states_deduped_++;
      return OkStatus();
    }
    std::memcpy(scratch.data(), persistent.data(), size);
    CrashImageSpec spec;
    spec.cut = cuts_visited_ - 1;  // emit runs inside emit_cut, after the increment
    spec.epoch = epoch;
    spec.surviving_entries = subset;
    for (const auto& [line, entry] : lines) {
      std::memcpy(scratch.data() + line * kCachelineSize, entry->content.data(),
                  kCachelineSize);
      spec.surviving_lines.push_back(line);
    }
    spec.image = &scratch;
    HINFS_ASSIGN_OR_RETURN(bool cont, visit(spec));
    states_emitted_++;
    if (!cont ||
        (opts_.max_total_states != 0 && states_emitted_ >= opts_.max_total_states)) {
      stop = true;
    }
    return OkStatus();
  };

  auto emit_cut = [&]() -> Status {
    cuts_visited_++;
    if (!optimized || pending.empty()) {
      return emit({});
    }
    const size_t n = pending.size();
    // Exhaustive when the subset space fits the budget.
    if (n < 20 && (size_t{1} << n) <= opts_.max_states_per_cut) {
      for (uint64_t mask = 0; mask < (uint64_t{1} << n) && !stop; mask++) {
        std::vector<size_t> subset;
        for (size_t i = 0; i < n; i++) {
          if (mask & (uint64_t{1} << i)) {
            subset.push_back(i);
          }
        }
        HINFS_RETURN_IF_ERROR(emit(subset));
      }
      return OkStatus();
    }
    // Sampled: the empty and the full subset are always tried (no pending line
    // persisted / all of them did — the two states every protocol must
    // tolerate), the rest drawn from a cut-seeded generator so runs are
    // reproducible and different cuts explore different corners.
    sampled_ = true;
    std::mt19937_64 rng(opts_.seed * 0x9e3779b97f4a7c15ull + cuts_visited_);
    std::vector<size_t> full(n);
    for (size_t i = 0; i < n; i++) {
      full[i] = i;
    }
    HINFS_RETURN_IF_ERROR(emit({}));
    if (!stop) {
      HINFS_RETURN_IF_ERROR(emit(full));
    }
    for (size_t draw = 2; draw < opts_.max_states_per_cut && !stop; draw++) {
      std::vector<size_t> subset;
      for (size_t i = 0; i < n; i++) {
        if (rng() & 1) {
          subset.push_back(i);
        }
      }
      HINFS_RETURN_IF_ERROR(emit(subset));
    }
    return OkStatus();
  };

  // Cut 0: crash before any event.
  HINFS_RETURN_IF_ERROR(emit_cut());

  for (size_t i = 0; i < trace_.events().size() && !stop; i++) {
    const PersistEvent& e = trace_.event(i);
    switch (e.type) {
      case PersistEventType::kStore:
      case PersistEventType::kStoreAtomic:
        std::memcpy(volatile_img.data() + e.offset, trace_.payload(e), e.len);
        break;
      case PersistEventType::kFlush: {
        const uint64_t first_line = e.offset / kCachelineSize;
        const uint64_t last_line = (e.offset + e.len - 1) / kCachelineSize;
        for (uint64_t line = first_line; line <= last_line; line++) {
          const uint8_t* src = volatile_img.data() + line * kCachelineSize;
          if (optimized) {
            PendingEntry entry;
            entry.line = line;
            entry.content.assign(src, src + kCachelineSize);
            entry.content_hash = HashBytes(src, kCachelineSize);
            pending.push_back(std::move(entry));
          } else {
            // CLFLUSH: durable immediately, in flush order.
            std::memcpy(persistent.data() + line * kCachelineSize, src, kCachelineSize);
            pversion++;
          }
        }
        break;
      }
      case PersistEventType::kFence:
        for (const PendingEntry& entry : pending) {
          std::memcpy(persistent.data() + entry.line * kCachelineSize,
                      entry.content.data(), kCachelineSize);
        }
        if (!pending.empty()) {
          pversion++;
          pending.clear();
        }
        epoch++;
        break;
    }
    HINFS_RETURN_IF_ERROR(emit_cut());
  }
  return OkStatus();
}

}  // namespace hinfs
