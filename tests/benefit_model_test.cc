#include <gtest/gtest.h>

#include "src/hinfs/benefit_model.h"
#include "src/hinfs/cacheline_bitmap.h"

namespace hinfs {
namespace {

HinfsOptions Opts() {
  HinfsOptions o;
  o.dram_write_ns_per_line = 15;
  o.eager_decay_ms = 1000;  // 1 s decay for tests
  return o;
}

constexpr uint64_t kLNvmm = 200;

TEST(BenefitModelTest, FreshBlocksAreLazy) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  EXPECT_FALSE(c.ShouldGoDirect(1, 0, /*now=*/0));
}

TEST(BenefitModelTest, WriteOnceThenSyncGoesEager) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  // One full-block write, then sync: N_cw = 64, N_cf = 64.
  // 64*15 + 64*200 >= 64*200 -> inequality violated -> Eager-Persistent.
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  EXPECT_TRUE(c.ShouldGoDirect(1, 0, /*now=*/1));
  EXPECT_EQ(c.eager_marks(), 1u);
}

TEST(BenefitModelTest, CoalescedWritesStayLazy) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  // Four overwrites of the same block before a sync: N_cw = 256, N_cf = 64.
  // 256*15 + 64*200 = 16640 < 256*200 = 51200 -> satisfied -> lazy.
  for (int i = 0; i < 4; i++) {
    c.RecordWrite(1, 0, 64, ~0ull);
  }
  c.OnFsync(1, 1);
  EXPECT_FALSE(c.ShouldGoDirect(1, 0, 1));
  EXPECT_EQ(c.lazy_marks(), 1u);
}

TEST(BenefitModelTest, EagerStateDecaysWithoutSyncs) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  const uint64_t sync_time = 1;
  EXPECT_TRUE(c.ShouldGoDirect(1, 0, sync_time + 1000));
  // 2 s after the last sync (decay is 1 s): back to lazy.
  const uint64_t late = sync_time + 2'000'000'000ull;
  EXPECT_FALSE(c.ShouldGoDirect(1, 0, late));
}

TEST(BenefitModelTest, DecayedStateStaysLazyUntilNextSync) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  (void)c.ShouldGoDirect(1, 0, 3'000'000'000ull);  // triggers decay
  // Even with a fresh last_sync timestamp the block stays lazy until OnFsync
  // re-evaluates it.
  EXPECT_FALSE(c.ShouldGoDirect(1, 0, 3'000'000'001ull));
}

TEST(BenefitModelTest, AccuracyTracksConsecutiveAgreement) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  // Sync 1: eager verdict (no previous -> not accurate, not counted as hit).
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  // Sync 2: same single-write pattern -> same verdict -> accurate.
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  // Sync 3: heavily coalesced -> verdict flips -> inaccurate.
  for (int i = 0; i < 8; i++) {
    c.RecordWrite(1, 0, 64, ~0ull);
  }
  c.OnFsync(1, 1);
  EXPECT_EQ(c.decisions(), 3u);
  EXPECT_EQ(c.paired_decisions(), 2u);  // syncs 2 and 3 have predecessors
  EXPECT_EQ(c.accurate_decisions(), 1u);
  EXPECT_DOUBLE_EQ(c.AccuracyRate(), 0.5);
}

TEST(BenefitModelTest, UntouchedBlocksNotEvaluated) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  c.OnFsync(1, 1);  // nothing written since -> no new decision
  EXPECT_EQ(c.decisions(), 1u);
}

TEST(BenefitModelTest, PerBlockIndependence) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  c.RecordWrite(1, 0, 64, ~0ull);  // block 0: once -> eager
  for (int i = 0; i < 8; i++) {
    c.RecordWrite(1, 1, 64, ~0ull);  // block 1: coalesced -> lazy
  }
  c.OnFsync(1, 1);
  EXPECT_TRUE(c.ShouldGoDirect(1, 0, 1));
  EXPECT_FALSE(c.ShouldGoDirect(1, 1, 1));
}

TEST(BenefitModelTest, PartialLineWritesCountGhostDirtyOnce) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  // 16 writes of the same single line: N_cw = 16, N_cf = 1.
  // 16*15 + 200 = 440 < 16*200 -> lazy.
  for (int i = 0; i < 16; i++) {
    c.RecordWrite(1, 0, 1, 0x1);
  }
  c.OnFsync(1, 1);
  EXPECT_FALSE(c.ShouldGoDirect(1, 0, 1));
}

TEST(BenefitModelTest, CheckerDisabledBuffersEverything) {
  HinfsOptions o = Opts();
  o.eager_checker = false;  // HiNFS-WB
  EagerPersistenceChecker c(o, kLNvmm);
  c.RecordWrite(1, 0, 64, ~0ull);
  c.OnFsync(1, 1);
  EXPECT_FALSE(c.ShouldGoDirect(1, 0, 1));
  EXPECT_EQ(c.decisions(), 0u);
}

TEST(BenefitModelTest, FreshBlocksInheritFileBias) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  // Train the file eager (append-fsync pattern on blocks 0..2).
  for (uint64_t b = 0; b < 3; b++) {
    c.RecordWrite(1, b, 64, ~0ull);
  }
  c.OnFsync(1, 1);
  // A brand-new block (an append) goes direct because the file is sync-biased.
  EXPECT_TRUE(c.ShouldGoDirect(1, 99, 1));
  // ...but only while the file's sync activity is fresh (decay applies).
  EXPECT_FALSE(c.ShouldGoDirect(1, 99, 5'000'000'000ull));
}

TEST(BenefitModelTest, LazyBiasKeepsFreshBlocksBuffered) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  for (uint64_t b = 0; b < 3; b++) {
    for (int i = 0; i < 8; i++) {
      c.RecordWrite(1, b, 64, ~0ull);  // heavy coalescing -> lazy verdicts
    }
  }
  c.OnFsync(1, 1);
  EXPECT_FALSE(c.ShouldGoDirect(1, 99, 1));
}

TEST(BenefitModelTest, ForceEagerForMmap) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  c.ForceEager(5);
  EXPECT_TRUE(c.ShouldGoDirect(5, 123, 1));
  c.ClearForceEager(5);
  EXPECT_FALSE(c.ShouldGoDirect(5, 123, 1));
}

TEST(BenefitModelTest, ForgetDropsState) {
  EagerPersistenceChecker c(Opts(), kLNvmm);
  c.RecordWrite(7, 0, 64, ~0ull);
  c.OnFsync(7, 1);
  EXPECT_TRUE(c.ShouldGoDirect(7, 0, 1));
  c.Forget(7);
  EXPECT_FALSE(c.ShouldGoDirect(7, 0, 1));
}

TEST(BenefitModelTest, HigherNvmmLatencyFavorsBuffering) {
  // At L_nvmm = 50 and L_dram = 15, even 2x coalescing fails the inequality:
  // 128*15 + 64*50 = 5120 >= 128*50 = 6400? 5120 < 6400 -> satisfied. Use a
  // tighter case: 1.2x coalescing.
  EagerPersistenceChecker slow(Opts(), 800);
  EagerPersistenceChecker fast(Opts(), 17);
  // Single write + 13 extra lines rewritten.
  slow.RecordWrite(1, 0, 77, ~0ull);
  fast.RecordWrite(1, 0, 77, ~0ull);
  slow.OnFsync(1, 1);
  fast.OnFsync(1, 1);
  // 77*15 + 64*800 vs 77*800: 52355 < 61600 -> lazy at 800 ns.
  EXPECT_FALSE(slow.ShouldGoDirect(1, 0, 1));
  // 77*15 + 64*17 = 2243 >= 77*17 = 1309 -> eager at 17 ns.
  EXPECT_TRUE(fast.ShouldGoDirect(1, 0, 1));
}

}  // namespace
}  // namespace hinfs
