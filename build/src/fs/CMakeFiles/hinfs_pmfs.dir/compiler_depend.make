# Empty compiler generated dependencies file for hinfs_pmfs.
# This may be replaced when dependencies are built.
