# Empty dependencies file for kvstore_wal.
# This may be replaced when dependencies are built.
