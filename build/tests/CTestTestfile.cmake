# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nvmm_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/cacheline_bitmap_test[1]_include.cmake")
include("/root/repo/build/tests/pagecache_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/pmfs_test[1]_include.cmake")
include("/root/repo/build/tests/blockfs_test[1]_include.cmake")
include("/root/repo/build/tests/dram_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/benefit_model_test[1]_include.cmake")
include("/root/repo/build/tests/hinfs_fs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/fsck_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/blockdev_test[1]_include.cmake")
include("/root/repo/build/tests/mmap_test[1]_include.cmake")
