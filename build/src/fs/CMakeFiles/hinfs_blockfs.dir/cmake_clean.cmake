file(REMOVE_RECURSE
  "CMakeFiles/hinfs_blockfs.dir/blockfs/block_fs.cc.o"
  "CMakeFiles/hinfs_blockfs.dir/blockfs/block_fs.cc.o.d"
  "libhinfs_blockfs.a"
  "libhinfs_blockfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_blockfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
