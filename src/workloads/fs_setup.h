// TestBed: constructs any of the paper's five file-system configurations
// (Table 3) plus the HiNFS ablations, with their emulated devices.

#ifndef SRC_WORKLOADS_FS_SETUP_H_
#define SRC_WORKLOADS_FS_SETUP_H_

#include <memory>
#include <string>

#include "src/blockdev/nvmm_block_device.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/nvmm/nvmm_device.h"
#include "src/vfs/vfs.h"

namespace hinfs {

enum class FsKind {
  kPmfs,        // PMFS: direct access (baseline all figures normalize to)
  kExt4Dax,     // EXT4 + DAX patch
  kExt2Nvmmbd,  // ext2 on the NVMM block device (no journal)
  kExt4Nvmmbd,  // ext4 on the NVMM block device (ordered journal)
  kHinfs,       // this paper
  kHinfsNclfw,  // HiNFS without Cacheline Level Fetch/Writeback (Fig. 9)
  kHinfsWb,     // HiNFS buffering every write (no checker; Figs. 12-13)
  kHinfsFifo,   // HiNFS with FIFO instead of LRW replacement (ablation)
};

const char* FsKindName(FsKind kind);

struct TestBedConfig {
  NvmmConfig nvmm;                 // device geometry + latency model
  HinfsOptions hinfs;              // buffer size etc. (HiNFS variants)
  PmfsOptions pmfs;                // inode count, journal size
  size_t page_cache_pages = 0;     // NVMMBD baselines: OS page cache capacity
  bool sync_mount = false;
  // Front the file system with the NVMM write-ahead log (src/wal/): the
  // +wal variant of any kind. The log carve (hinfs.wal.total_bytes) comes off
  // the END of the device; the inner FS is formatted on what remains.
  bool wal = false;
};

// A fully wired file system + VFS on freshly formatted emulated devices.
struct TestBed {
  std::unique_ptr<NvmmDevice> nvmm;
  std::unique_ptr<NvmmBlockDevice> blockdev;  // only for block-based kinds
  std::unique_ptr<FileSystem> fs;
  std::unique_ptr<Vfs> vfs;
  FsKind kind;

  ~TestBed();
};

Result<std::unique_ptr<TestBed>> MakeTestBed(FsKind kind, const TestBedConfig& config);

}  // namespace hinfs

#endif  // SRC_WORKLOADS_FS_SETUP_H_
