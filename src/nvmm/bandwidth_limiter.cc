#include "src/nvmm/bandwidth_limiter.h"

#include <algorithm>

#include "src/common/clock.h"

namespace hinfs {
namespace {

// Token bucket burst capacity: one "row buffer write" worth of slack so that
// single small writes never wait when the device is idle.
constexpr double kBurstBytes = 64.0 * 1024;

}  // namespace

BandwidthLimiter::BandwidthLimiter(LatencyMode mode, uint64_t bytes_per_sec)
    : mode_(mode), bytes_per_sec_(bytes_per_sec), last_refill_ns_(MonotonicNowNs()) {
  tokens_ = kBurstBytes;
}

void BandwidthLimiter::set_bytes_per_sec(uint64_t bps) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_per_sec_ = bps;
}

void BandwidthLimiter::Acquire(uint64_t bytes) {
  if (bytes_per_sec_ == 0 || bytes == 0 || mode_ == LatencyMode::kNone) {
    return;
  }

  if (mode_ == LatencyMode::kVirtual) {
    // Deterministic single-server queue in simulated time.
    const uint64_t service_ns = bytes * 1'000'000'000ull / bytes_per_sec_;
    uint64_t end;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t start = std::max(SimClock::ThreadNowNs(), server_free_ns_);
      end = start + service_ns;
      server_free_ns_ = end;
    }
    if (end > SimClock::ThreadNowNs()) {
      SimClock::Advance(end - SimClock::ThreadNowNs());
    }
    return;
  }

  // Spin mode: wall-clock token bucket.
  const auto need = static_cast<double>(bytes);
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t now = MonotonicNowNs();
      const double refill = static_cast<double>(now - last_refill_ns_) *
                            static_cast<double>(bytes_per_sec_) / 1e9;
      tokens_ = std::min(tokens_ + refill, kBurstBytes + need);
      last_refill_ns_ = now;
      if (tokens_ >= need) {
        tokens_ -= need;
        return;
      }
    }
    // Not enough bandwidth yet: spin a little, matching the paper's queued
    // NVMM writer threads.
    SpinFor(100);
  }
}

}  // namespace hinfs
