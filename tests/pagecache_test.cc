#include <gtest/gtest.h>

#include <cstring>

#include "src/blockdev/nvmm_block_device.h"
#include "src/common/clock.h"
#include "src/pagecache/page_cache.h"

namespace hinfs {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 4 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    dev_ = std::make_unique<NvmmBlockDevice>(nvmm_.get(), 0, (4 << 20) / kBlockSize);
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<NvmmBlockDevice> dev_;
};

TEST_F(PageCacheTest, WriteThenReadHits) {
  PageCache cache(dev_.get());
  const char data[] = "cached";
  ASSERT_TRUE(cache.Write(3, 100, data, sizeof(data)).ok());
  char out[sizeof(data)] = {};
  ASSERT_TRUE(cache.Read(3, 100, out, sizeof(data)).ok());
  EXPECT_STREQ(out, data);
  EXPECT_GE(cache.hits(), 1u);
}

TEST_F(PageCacheTest, DirtyDataNotOnDeviceUntilSync) {
  PageCache cache(dev_.get());
  const uint64_t v = 77;
  ASSERT_TRUE(cache.Write(5, 0, &v, 8).ok());
  std::vector<uint8_t> raw(kBlockSize);
  ASSERT_TRUE(dev_->ReadBlock(5, raw.data()).ok());
  uint64_t on_disk;
  std::memcpy(&on_disk, raw.data(), 8);
  EXPECT_EQ(on_disk, 0u);  // still only in cache
  ASSERT_TRUE(cache.SyncPage(5).ok());
  ASSERT_TRUE(dev_->ReadBlock(5, raw.data()).ok());
  std::memcpy(&on_disk, raw.data(), 8);
  EXPECT_EQ(on_disk, 77u);
}

TEST_F(PageCacheTest, ReadFaultsFromDevice) {
  std::vector<uint8_t> block(kBlockSize, 0xab);
  ASSERT_TRUE(dev_->WriteBlock(9, block.data()).ok());
  PageCache cache(dev_.get());
  uint8_t out[16] = {};
  ASSERT_TRUE(cache.Read(9, 512, out, 16).ok());
  EXPECT_EQ(out[0], 0xab);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(PageCacheTest, PartialWriteFetchesBeforeWrite) {
  std::vector<uint8_t> block(kBlockSize, 0xcd);
  ASSERT_TRUE(dev_->WriteBlock(2, block.data()).ok());
  PageCache cache(dev_.get());
  const uint8_t zero = 0;
  ASSERT_TRUE(cache.Write(2, 0, &zero, 1).ok());  // partial write
  uint8_t out;
  ASSERT_TRUE(cache.Read(2, 1, &out, 1).ok());
  EXPECT_EQ(out, 0xcd);  // neighbouring byte preserved by fetch-before-write
}

TEST_F(PageCacheTest, FullOverwriteSkipsFetch) {
  PageCache cache(dev_.get());
  std::vector<uint8_t> page(kBlockSize, 0x11);
  ASSERT_TRUE(cache.Write(7, 0, page.data(), kBlockSize).ok());
  EXPECT_EQ(cache.misses(), 1u);
  // The miss did not read the device (full overwrite): loaded_bytes stays 0.
  EXPECT_EQ(nvmm_->loaded_bytes(), 0u);
}

TEST_F(PageCacheTest, EvictionWritesBackDirty) {
  PageCacheConfig cfg;
  cfg.capacity_pages = 4;
  PageCache cache(dev_.get(), cfg);
  std::vector<uint8_t> page(kBlockSize);
  for (uint64_t b = 0; b < 8; b++) {
    page[0] = static_cast<uint8_t>(b + 1);
    ASSERT_TRUE(cache.Write(b, 0, page.data(), kBlockSize).ok());
  }
  EXPECT_LE(cache.resident_pages(), 4u);
  EXPECT_GE(cache.writebacks(), 4u);
  // Early pages were evicted and must be readable from the device.
  std::vector<uint8_t> raw(kBlockSize);
  ASSERT_TRUE(dev_->ReadBlock(0, raw.data()).ok());
  EXPECT_EQ(raw[0], 1);
}

TEST_F(PageCacheTest, DiscardDropsWithoutWriteback) {
  PageCache cache(dev_.get());
  const uint64_t v = 123;
  ASSERT_TRUE(cache.Write(4, 0, &v, 8).ok());
  cache.Discard(4);
  EXPECT_EQ(cache.writebacks(), 0u);
  ASSERT_TRUE(cache.SyncAll().ok());
  std::vector<uint8_t> raw(kBlockSize);
  ASSERT_TRUE(dev_->ReadBlock(4, raw.data()).ok());
  uint64_t on_disk;
  std::memcpy(&on_disk, raw.data(), 8);
  EXPECT_EQ(on_disk, 0u);  // discarded write never reached the device
}

TEST_F(PageCacheTest, SyncAllFlushesEverything) {
  PageCache cache(dev_.get());
  const uint64_t v = 9;
  for (uint64_t b = 0; b < 10; b++) {
    ASSERT_TRUE(cache.Write(b, 0, &v, 8).ok());
  }
  ASSERT_TRUE(cache.SyncAll().ok());
  EXPECT_EQ(cache.writebacks(), 10u);
  // Second SyncAll has nothing to do.
  ASSERT_TRUE(cache.SyncAll().ok());
  EXPECT_EQ(cache.writebacks(), 10u);
}

TEST_F(PageCacheTest, DirtyThrottlingWritesBackForeground) {
  PageCacheConfig cfg;
  cfg.max_dirty_pages = 8;
  PageCache cache(dev_.get(), cfg);
  const uint64_t v = 1;
  for (uint64_t b = 0; b < 20; b++) {
    ASSERT_TRUE(cache.Write(b, 0, &v, 8).ok());
  }
  // The throttle kicked in before 20 dirty pages accumulated.
  EXPECT_GE(cache.writebacks(), 6u);
  // Everything is still readable and pages stay resident (only cleaned).
  EXPECT_EQ(cache.resident_pages(), 20u);
}

TEST_F(PageCacheTest, DropAllFlushesAndEmpties) {
  PageCache cache(dev_.get());
  const uint64_t v = 31;
  ASSERT_TRUE(cache.Write(6, 0, &v, 8).ok());
  ASSERT_TRUE(cache.DropAll().ok());
  EXPECT_EQ(cache.resident_pages(), 0u);
  // The dirty page reached the device before being dropped.
  std::vector<uint8_t> raw(kBlockSize);
  ASSERT_TRUE(dev_->ReadBlock(6, raw.data()).ok());
  uint64_t on_disk;
  std::memcpy(&on_disk, raw.data(), 8);
  EXPECT_EQ(on_disk, 31u);
  // Next read is a miss (cold cache).
  uint8_t out[8];
  ASSERT_TRUE(cache.Read(6, 0, out, 8).ok());
  EXPECT_EQ(cache.misses(), 2u);  // initial write + post-drop read
}

TEST_F(PageCacheTest, CrossPageAccessRejected) {
  PageCache cache(dev_.get());
  char buf[128];
  EXPECT_EQ(cache.Read(0, kBlockSize - 10, buf, 128).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(cache.Write(0, kBlockSize - 10, buf, 128).code(), ErrorCode::kInvalidArgument);
}

TEST_F(PageCacheTest, BlockLayerOverheadCharged) {
  // With virtual latency, each block-device request charges the software
  // overhead to the calling thread.
  NvmmConfig cfg;
  cfg.size_bytes = 1 << 20;
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 0;
  cfg.write_bandwidth_bytes_per_sec = 0;
  NvmmDevice nvmm(cfg);
  NvmmBlockDeviceConfig bcfg;
  bcfg.block_layer_overhead_ns = 1500;
  NvmmBlockDevice dev(&nvmm, 0, 16, bcfg);
  SimClock::ResetThread();
  std::vector<uint8_t> page(kBlockSize);
  ASSERT_TRUE(dev.ReadBlock(0, page.data()).ok());
  EXPECT_EQ(SimClock::ThreadNowNs(), 1500u);
}

}  // namespace
}  // namespace hinfs
