#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/nvmm/bandwidth_limiter.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {
namespace {

NvmmConfig FastConfig(size_t bytes = 1 << 20) {
  NvmmConfig cfg;
  cfg.size_bytes = bytes;
  cfg.latency_mode = LatencyMode::kNone;
  return cfg;
}

TEST(NvmmDeviceTest, StoreLoadRoundTrip) {
  NvmmDevice dev(FastConfig());
  const char msg[] = "hello nvmm";
  ASSERT_TRUE(dev.Store(4096, msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {};
  ASSERT_TRUE(dev.Load(4096, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
}

TEST(NvmmDeviceTest, OutOfRangeRejected) {
  NvmmDevice dev(FastConfig(4096));
  char b[8];
  EXPECT_EQ(dev.Load(4095, b, 8).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.Store(4096, b, 1).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.Flush(1ull << 40, 1).code(), ErrorCode::kOutOfRange);
  EXPECT_TRUE(dev.Load(4088, b, 8).ok());  // exactly at the edge
}

TEST(NvmmDeviceTest, FlushCountsWholeCachelines) {
  NvmmDevice dev(FastConfig());
  dev.ResetCounters();
  // 1 byte spanning one line -> 64 flushed bytes.
  ASSERT_TRUE(dev.Flush(10, 1).ok());
  EXPECT_EQ(dev.flushed_bytes(), 64u);
  // Range [60, 70) spans two lines -> +128.
  ASSERT_TRUE(dev.Flush(60, 10).ok());
  EXPECT_EQ(dev.flushed_bytes(), 64u + 128u);
}

TEST(NvmmDeviceTest, ZeroLengthFlushIsNoop) {
  NvmmDevice dev(FastConfig());
  ASSERT_TRUE(dev.Flush(0, 0).ok());
  EXPECT_EQ(dev.flushed_bytes(), 0u);
}

TEST(NvmmDeviceTest, LoadedBytesCounted) {
  NvmmDevice dev(FastConfig());
  char b[100];
  ASSERT_TRUE(dev.Load(0, b, 100).ok());
  EXPECT_EQ(dev.loaded_bytes(), 100u);
}

TEST(NvmmDeviceTest, DirectPointerSeesStores) {
  NvmmDevice dev(FastConfig());
  const uint32_t v = 0xdeadbeef;
  ASSERT_TRUE(dev.Store(128, &v, sizeof(v)).ok());
  auto ptr = dev.DirectPointer(128, 4);
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(std::memcmp(*ptr, &v, 4), 0);
}

TEST(NvmmDeviceTest, VirtualLatencyChargedPerLine) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 200;
  cfg.write_bandwidth_bytes_per_sec = 0;  // isolate latency
  NvmmDevice dev(cfg);
  SimClock::ResetThread();
  ASSERT_TRUE(dev.Flush(0, 4096).ok());  // 64 lines
  EXPECT_EQ(SimClock::ThreadNowNs(), 64u * 200u);
}

TEST(NvmmDeviceTest, VirtualBandwidthQueues) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 0;
  cfg.write_bandwidth_bytes_per_sec = 1'000'000'000;  // 1 GB/s = 1 byte/ns
  NvmmDevice dev(cfg);
  SimClock::ResetThread();
  ASSERT_TRUE(dev.Flush(0, 4096).ok());
  // 4096 bytes at 1 B/ns.
  EXPECT_EQ(SimClock::ThreadNowNs(), 4096u);
  ASSERT_TRUE(dev.Flush(0, 4096).ok());
  EXPECT_EQ(SimClock::ThreadNowNs(), 8192u);
}

TEST(NvmmDeviceTest, FlushBatchChargesSameAsSequentialFlushes) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 200;
  cfg.write_bandwidth_bytes_per_sec = 1'000'000'000;
  // Device A: two separate Flush calls. Device B: one FlushBatch of the same
  // ranges. The accounting-invariance contract says simulated time, flushed
  // lines/bytes, and the trace-visible counters must come out identical.
  NvmmDevice a(cfg);
  SimClock::ResetThread();
  ASSERT_TRUE(a.Flush(0, 4096).ok());
  ASSERT_TRUE(a.Flush(8192, 128).ok());
  const uint64_t t_sequential = SimClock::ThreadNowNs();

  NvmmDevice b(cfg);
  SimClock::ResetThread();
  const FlushRange ranges[] = {{0, 4096}, {8192, 128}};
  ASSERT_TRUE(b.FlushBatch(ranges, 2).ok());
  EXPECT_EQ(SimClock::ThreadNowNs(), t_sequential);
  EXPECT_EQ(b.flushed_lines(), a.flushed_lines());
  EXPECT_EQ(b.flushed_bytes(), a.flushed_bytes());
}

TEST(NvmmDeviceTest, FlushBatchRejectsBadRangeWithoutSideEffects) {
  NvmmDevice dev(FastConfig());
  const FlushRange ranges[] = {{0, 4096}, {1ull << 40, 64}};
  EXPECT_FALSE(dev.FlushBatch(ranges, 2).ok());
  EXPECT_EQ(dev.flushed_lines(), 0u);  // validated up front: nothing charged
}

TEST(BandwidthLimiterTest, CountsFastAndSlowAcquires) {
  // 1 GB/s with a 64 KB burst window: the first 64 KB request is conforming
  // (fast), the immediate second one finds the pipe reserved ~64 us out and
  // must wait (slow).
  BandwidthLimiter limiter(LatencyMode::kSpin, 1'000'000'000);
  limiter.Acquire(64 * 1024);
  EXPECT_EQ(limiter.fast_acquires(), 1u);
  EXPECT_EQ(limiter.slow_acquires(), 0u);
  limiter.Acquire(64 * 1024);
  EXPECT_EQ(limiter.fast_acquires(), 1u);
  EXPECT_EQ(limiter.slow_acquires(), 1u);
}

TEST(NvmmDeviceTest, SpinLatencyTakesRealTime) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kSpin;
  cfg.write_latency_ns = 2000;
  cfg.write_bandwidth_bytes_per_sec = 0;
  NvmmDevice dev(cfg);
  const uint64_t start = MonotonicNowNs();
  ASSERT_TRUE(dev.Flush(0, 64 * 10).ok());  // 10 lines x 2 us
  EXPECT_GE(MonotonicNowNs() - start, 20'000u);
}

TEST(NvmmDeviceTest, LatencySweepTakesEffect) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_bandwidth_bytes_per_sec = 0;
  NvmmDevice dev(cfg);
  dev.latency().set_write_latency_ns(800);
  SimClock::ResetThread();
  ASSERT_TRUE(dev.Flush(0, 64).ok());
  EXPECT_EQ(SimClock::ThreadNowNs(), 800u);
}

TEST(NvmmDeviceTest, ClflushoptOverlapsFlushLatency) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 200;
  cfg.write_bandwidth_bytes_per_sec = 0;
  cfg.flush_instruction = FlushInstruction::kClflushopt;
  NvmmDevice dev(cfg);
  SimClock::ResetThread();
  ASSERT_TRUE(dev.Flush(0, 4096).ok());  // 64 lines overlap to one latency
  EXPECT_EQ(SimClock::ThreadNowNs(), 200u);
}

TEST(NvmmDeviceTest, ClwbSameTimingAsClflushopt) {
  NvmmConfig cfg = FastConfig();
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 300;
  cfg.write_bandwidth_bytes_per_sec = 0;
  cfg.flush_instruction = FlushInstruction::kClwb;
  NvmmDevice dev(cfg);
  SimClock::ResetThread();
  ASSERT_TRUE(dev.Flush(0, 64 * 8).ok());
  EXPECT_EQ(SimClock::ThreadNowNs(), 300u);
}

TEST(NvmmDeviceTest, ClwbStillPersists) {
  NvmmConfig cfg = FastConfig();
  cfg.track_persistence = true;
  cfg.flush_instruction = FlushInstruction::kClwb;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice dev(cfg);
  const uint64_t v = 11;
  ASSERT_TRUE(dev.StorePersistent(128, &v, 8).ok());
  ASSERT_TRUE(dev.SimulateCrash().ok());
  uint64_t out = 0;
  ASSERT_TRUE(dev.Load(128, &out, 8).ok());
  EXPECT_EQ(out, 11u);
}

// --- crash simulation ----------------------------------------------------------

NvmmConfig TrackingConfig() {
  NvmmConfig cfg = FastConfig();
  cfg.track_persistence = true;
  return cfg;
}

TEST(NvmmCrashTest, UnflushedStoresAreLost) {
  NvmmDevice dev(TrackingConfig());
  const uint64_t v = 0x1122334455667788ull;
  ASSERT_TRUE(dev.Store(0, &v, 8).ok());
  ASSERT_TRUE(dev.SimulateCrash().ok());
  uint64_t out = 1;
  ASSERT_TRUE(dev.Load(0, &out, 8).ok());
  EXPECT_EQ(out, 0u);  // store never flushed -> lost
}

TEST(NvmmCrashTest, FlushedStoresSurvive) {
  NvmmDevice dev(TrackingConfig());
  const uint64_t v = 42;
  ASSERT_TRUE(dev.StorePersistent(0, &v, 8).ok());
  ASSERT_TRUE(dev.SimulateCrash().ok());
  uint64_t out = 0;
  ASSERT_TRUE(dev.Load(0, &out, 8).ok());
  EXPECT_EQ(out, 42u);
}

TEST(NvmmCrashTest, FlushGranularityIsCacheline) {
  NvmmDevice dev(TrackingConfig());
  const uint64_t a = 7;
  const uint64_t b = 9;
  ASSERT_TRUE(dev.Store(0, &a, 8).ok());     // line 0
  ASSERT_TRUE(dev.Store(64, &b, 8).ok());    // line 1
  ASSERT_TRUE(dev.Flush(0, 8).ok());         // flush line 0 only
  ASSERT_TRUE(dev.SimulateCrash().ok());
  uint64_t out = 0;
  ASSERT_TRUE(dev.Load(0, &out, 8).ok());
  EXPECT_EQ(out, 7u);
  ASSERT_TRUE(dev.Load(64, &out, 8).ok());
  EXPECT_EQ(out, 0u);  // line 1 never flushed
}

TEST(NvmmCrashTest, CrashWithoutTrackingRejected) {
  NvmmDevice dev(FastConfig());
  EXPECT_EQ(dev.SimulateCrash().code(), ErrorCode::kNotSupported);
}

TEST(NvmmCrashTest, PartialLineFlushPersistsWholeLine) {
  NvmmDevice dev(TrackingConfig());
  const uint64_t a = 3;
  const uint64_t b = 5;
  ASSERT_TRUE(dev.Store(0, &a, 8).ok());
  ASSERT_TRUE(dev.Store(8, &b, 8).ok());  // same cacheline
  ASSERT_TRUE(dev.Flush(0, 1).ok());      // flushing any byte flushes the line
  ASSERT_TRUE(dev.SimulateCrash().ok());
  uint64_t out = 0;
  ASSERT_TRUE(dev.Load(8, &out, 8).ok());
  EXPECT_EQ(out, 5u);
}

}  // namespace
}  // namespace hinfs
