// Syscall-level trace synthesis and replay.
//
// The paper replays FIU Usr0/Usr1, LASR, and MobiBench Facebook system-call
// traces (read/write/unlink/fsync). Those traces are not redistributable, so
// SynthesizeTrace generates op streams with the properties the paper's results
// depend on — op mix, I/O size distribution, write locality, and the fsync-
// byte fractions shown in Fig. 2 — from published workload descriptions
// (see DESIGN.md §1). ReplayTrace executes a trace against a Vfs and returns
// the per-op-type time breakdown of Fig. 12.

#ifndef SRC_WORKLOADS_TRACE_H_
#define SRC_WORKLOADS_TRACE_H_

#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace hinfs {

enum class TraceOpType : uint8_t {
  kRead,
  kWrite,
  kUnlink,
  kFsync,
};

struct TraceOp {
  TraceOpType type;
  uint32_t file;    // file id; path is derived as /tN
  uint64_t offset;  // read/write
  uint32_t size;    // read/write
};

struct TraceProfile {
  std::string name;
  size_t num_files = 64;
  size_t num_ops = 20000;
  double read_frac = 0.4;    // of all ops
  double unlink_frac = 0.01; // of all ops (victim is recreated on next write)
  // Fsync cadence: after a write, with probability 1/fsync_period the written
  // file is fsynced. 0 disables fsyncs entirely.
  double fsync_period = 0;
  // Fraction of files that ever see fsyncs (sync-active files).
  double fsync_file_frac = 1.0;
  size_t mean_io = 8192;
  size_t max_file_bytes = 1 << 20;
  double append_frac = 0.5;     // writes that append vs overwrite in place
  double locality_theta = 0.4;  // skew of file and offset choice
  uint64_t seed = 1;
};

// The five trace profiles evaluated in the paper.
TraceProfile Usr0Profile();
TraceProfile Usr1Profile();
TraceProfile LasrProfile();
TraceProfile FacebookProfile();
TraceProfile TpccTraceProfile();

std::vector<TraceOp> SynthesizeTrace(const TraceProfile& profile);

// Text serialization ("R|W|U|F <file> <offset> <size>" per line) so synthetic
// traces can be saved, inspected, and external syscall traces replayed.
std::string TraceToText(const std::vector<TraceOp>& trace);
Result<std::vector<TraceOp>> TraceFromText(std::string_view text);

// Fig. 2: bytes that are still dirty at an fsync (and therefore must be
// persisted eagerly) vs. total bytes written.
struct FsyncByteStats {
  uint64_t total_written = 0;
  uint64_t fsync_bytes = 0;
  double Percent() const {
    return total_written == 0 ? 0 : 100.0 * static_cast<double>(fsync_bytes) /
                                        static_cast<double>(total_written);
  }
};
FsyncByteStats ComputeFsyncBytes(const std::vector<TraceOp>& trace);

// Fig. 12: per-op-type execution time of a replay. `drain_ns` is a final
// SyncFs that pushes still-buffered lazy writes out — the steady-state work a
// short replay window would otherwise hide (the paper's 60 s runs reach
// steady state naturally).
struct TraceBreakdown {
  uint64_t read_ns = 0;
  uint64_t write_ns = 0;
  uint64_t unlink_ns = 0;
  uint64_t fsync_ns = 0;
  uint64_t drain_ns = 0;
  uint64_t ops = 0;
  uint64_t TotalNs() const { return read_ns + write_ns + unlink_ns + fsync_ns + drain_ns; }
};
Result<TraceBreakdown> ReplayTrace(Vfs* vfs, const std::vector<TraceOp>& trace,
                                   bool drain_at_end = true);

}  // namespace hinfs

#endif  // SRC_WORKLOADS_TRACE_H_
