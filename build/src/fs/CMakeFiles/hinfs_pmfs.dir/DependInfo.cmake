
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/pmfs/allocator.cc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/allocator.cc.o" "gcc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/allocator.cc.o.d"
  "/root/repo/src/fs/pmfs/fsck.cc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/fsck.cc.o" "gcc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/fsck.cc.o.d"
  "/root/repo/src/fs/pmfs/journal.cc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/journal.cc.o" "gcc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/journal.cc.o.d"
  "/root/repo/src/fs/pmfs/pmfs_fs.cc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/pmfs_fs.cc.o" "gcc" "src/fs/CMakeFiles/hinfs_pmfs.dir/pmfs/pmfs_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hinfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmm/CMakeFiles/hinfs_nvmm.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hinfs_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
