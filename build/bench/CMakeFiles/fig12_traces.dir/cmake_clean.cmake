file(REMOVE_RECURSE
  "CMakeFiles/fig12_traces.dir/fig12_traces.cc.o"
  "CMakeFiles/fig12_traces.dir/fig12_traces.cc.o.d"
  "fig12_traces"
  "fig12_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
