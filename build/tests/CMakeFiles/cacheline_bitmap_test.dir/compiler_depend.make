# Empty compiler generated dependencies file for cacheline_bitmap_test.
# This may be replaced when dependencies are built.
