// CrashOracle: a DRAM-side model file system that tracks the set of
// POSIX-legal post-crash states for a workload (crashlab layer 3).
//
// The harness replays a workload op list; after each completed op it calls
// Apply() so the model advances, and for every crash state generated inside an
// op it calls Check() with that op as "in flight". Check() compares the
// remounted file system against the legal-state set:
//
//   - per-byte candidate sets: every readable byte must be a value the
//     protocol could have made durable — the current value (synchronous data),
//     a previously durable value, or zero (holes / unsynced appends). Stale
//     device garbage matches none of them and is reported. Sets collapse to
//     "exact" on fsync (lazy data) or on commit (journaled block FS).
//   - namespace/size legality: synchronous-metadata FSes (PMFS, HiNFS) must
//     expose exactly the model namespace, relaxed only for the in-flight op
//     (e.g. a mid-crash rename may show source, target-unlinked, or moved).
//     Committed-metadata FSes (BlockFs) must expose the last committed
//     snapshot; the in-flight relaxation applies to commit ops (fsync/syncfs).
//
// The oracle is deliberately FS-parameterized (OracleOptions), not
// FS-specific: PMFS = synchronous data + synchronous metadata, HiNFS = lazy
// data + synchronous metadata (sizes advance per 4 KB chunk), BlockFs =
// committed data + committed metadata, BlockFs-DAX = synchronous data +
// committed metadata. One checker covers all four.

#ifndef SRC_CRASHLAB_ORACLE_H_
#define SRC_CRASHLAB_ORACLE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/vfs/vfs.h"

namespace hinfs {

// One workload operation, in the vocabulary the oracle understands.
struct CrashOp {
  enum class Kind : uint8_t {
    kMkdir,
    kCreate,    // create empty regular file
    kWrite,     // pwrite(path, offset, data)
    kTruncate,
    kFsync,
    kUnlink,
    kRename,
    kSyncFs,
  };
  Kind kind;
  std::string path;
  std::string path2;      // rename destination
  uint64_t offset = 0;    // write
  std::string data;       // write payload
  uint64_t new_size = 0;  // truncate
  bool o_sync = false;    // write through an O_SYNC fd (eager persistent)
};

const char* CrashOpKindName(CrashOp::Kind kind);
std::string DescribeCrashOp(const CrashOp& op);

struct OracleOptions {
  // Durability of a *completed* write's data.
  enum class DataDurability : uint8_t {
    kSynchronous,  // durable on return (PMFS, O_SYNC, DAX)
    kLazy,         // may sit in a DRAM buffer until fsync (HiNFS buffered)
    kCommitted,    // durable at the next journal commit (BlockFs ordered)
  };
  // Durability of completed namespace/size updates.
  enum class MetaDurability : uint8_t {
    kSynchronous,  // durable on return (PMFS journaled ops, HiNFS)
    kCommitted,    // durable at the next commit (BlockFs journal)
  };
  // How file size advances inside one large write.
  enum class SizeGranularity : uint8_t {
    kWholeOp,  // one atomic size update at op end (PMFS)
    kChunk,    // size advances per 4 KB chunk (HiNFS foreground write)
  };
  // Durability of a completed write's *size extension*. Distinct from
  // MetaDurability: WalFs keeps namespace ops synchronous (they pass through
  // to the inner FS) while a buffered write's size extension rides the log
  // and only becomes durable at the next commit (fsync / O_SYNC / syncfs).
  enum class SizeDurability : uint8_t {
    kSynchronous,  // size durable when the write returns (PMFS, HiNFS)
    kLogged,       // any size the file had since its last commit is legal
  };

  DataDurability data = DataDurability::kSynchronous;
  MetaDurability meta = MetaDurability::kSynchronous;
  SizeGranularity size_granularity = SizeGranularity::kWholeOp;
  SizeDurability sizes = SizeDurability::kSynchronous;

  static OracleOptions Pmfs();
  static OracleOptions Hinfs();
  static OracleOptions BlockFsJournal();
  static OracleOptions BlockFsDax();
  // WalFs over PMFS: logged data and sizes (redo records commit at fsync),
  // synchronous namespace (creates/unlinks/renames hit the inner FS eagerly).
  static OracleOptions WalPmfs();
};

class CrashOracle {
 public:
  explicit CrashOracle(const OracleOptions& opts) : opts_(opts) {}

  // Advance the model by one *completed* operation.
  void Apply(const CrashOp& op);

  // Compare a remounted post-crash file system against the legal-state set.
  // `inflight` is the op during which the crash happened (null = crash at an
  // op boundary). On mismatch returns kDataLoss with a diagnosis in `diag`.
  Status Check(Vfs* vfs, const CrashOp* inflight, std::string* diag) const;

 private:
  struct ModelFile {
    FileType type = FileType::kRegular;
    uint64_t size = 0;
    // Per-byte legal-state tracking, kept at the file's maximum historical
    // extent so shrunk-then-regrown ranges keep their candidates.
    std::vector<uint8_t> data;     // current logical content
    std::vector<uint8_t> exact;    // byte must equal data[i]
    std::vector<uint8_t> zero_ok;  // zero is additionally legal
    std::vector<std::string> alts; // other legal values (older durable data)
    // SizeDurability::kLogged only: sizes (< size) the crash may legally
    // expose because the extending records were never committed. Collapses
    // to empty at every commit point for this file.
    std::set<uint64_t> lazy_sizes;

    void EnsureExtent(size_t n, bool exact_zero);
    void WriteBytes(uint64_t off, const std::string& payload, bool synchronous);
    void CollapseToExact();
  };
  // path → file ("/a/b", root directory implicit).
  using ModelFs = std::map<std::string, ModelFile>;

  static void ApplyTo(ModelFs& fs, const CrashOp& op, const OracleOptions& opts);
  // The model states the crash may legally expose given `inflight`.
  std::vector<ModelFs> CheckVariants(const CrashOp* inflight) const;
  Status CheckAgainst(Vfs* vfs, const ModelFs& model, std::string* diag) const;
  void CommitAll();

  OracleOptions opts_;
  ModelFs current_;
  ModelFs committed_;  // meta == kCommitted only: last journal-commit snapshot
};

}  // namespace hinfs

#endif  // SRC_CRASHLAB_ORACLE_H_
