// On-NVMM layout of the write-ahead log (src/wal/wal_log.h).
//
// The log occupies [base, base + total_bytes) at the tail of the device:
//
//   [WalSuperblock: 1 block]
//   [region 0: header block + record area]
//   [region 1: ...]
//
// Each region is a linear (non-wrapping) redo log. Records are appended at
// `tail` (volatile, in DRAM). How the committed prefix is found at recovery
// depends on the commit format:
//
//  - kChecksum: the commit flushes ONLY the record lines (no header traffic
//    at all — the cheapest possible commit: one flush call + one fence).
//    Recovery tail-scans the record area from offset 0, accepting records
//    while their CRC validates and their epoch matches the region header's;
//    the first mismatch ends the log. A torn batch breaks on CRC; bytes left
//    over from before a recycle break on epoch.
//  - kFence: `durable_tail` in the region header is flushed after the records
//    fence, so it can never point at torn records; recovery replays exactly
//    [head, durable_tail) and a CRC mismatch inside it is real corruption.
//
// Once a checkpoint drains every logged byte into the real layout, the region
// is recycled: head/durable_tail reset to 0 and the region `epoch` advances
// (persisted with one header flush + fence). The epoch bump is what lets
// recycled space skip zeroing under kChecksum — stale records still have
// valid CRCs, but carry the old epoch and are rejected by the scan.

#ifndef SRC_WAL_WAL_LAYOUT_H_
#define SRC_WAL_WAL_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/constants.h"

namespace hinfs {

inline constexpr uint64_t kWalMagic = 0x57414C4653303031ull;  // "WALFS001"
inline constexpr uint32_t kWalVersion = 2;

// Block 0 of the log carve. Rewritten only at format time.
struct WalSuperblock {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t commit_format = 0;  // WalCommitFormat as u32
  uint64_t total_bytes = 0;    // whole carve, superblock included
  uint64_t region_count = 0;
  uint64_t region_bytes = 0;  // per region, header block included
  uint64_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(WalSuperblock) == 64, "one cacheline");

// First cacheline of every region. head/durable_tail are byte offsets into
// the region's record area; durable_seq is the largest committed global
// sequence number (both maintained only under kFence — the kChecksum format
// derives them by scanning). `epoch` advances at every recycle and names
// which generation of records in the data area is live. All fields are
// 8-byte and updated via StoreAtomic so a crash can tear the header only at
// field granularity, never within a field.
struct WalRegionHeader {
  uint64_t head = 0;
  uint64_t durable_tail = 0;
  uint64_t durable_seq = 0;
  uint64_t epoch = 0;
  uint64_t reserved[4] = {0, 0, 0, 0};
};
static_assert(sizeof(WalRegionHeader) == 64, "one cacheline");

enum class WalRecordType : uint32_t {
  // Redo data: payload bytes land at `offset` of file `ino`.
  kData = 1,
  // File `ino` was truncated to `offset` bytes; earlier redo data beyond it
  // is void, and recovery re-executes the truncate if the final layout never
  // received it. No payload.
  kTruncate = 2,
};

// 64-byte record header, immediately followed by the payload (padded to 8
// bytes). `seq` is global across regions: recovery merges all regions into
// one replay ordered by seq. `generation` is the target inode's allocation
// generation (InodeAttr::generation); replay drops records whose generation
// no longer matches, which is what makes unlink + inode-number reuse safe
// without tombstones. `epoch` is the region epoch the record was appended
// under; the kChecksum tail scan rejects records from before the last
// recycle by it. `crc` covers the header (with crc field zeroed) plus the
// payload; it is what recovery trusts under the kChecksum commit format.
struct WalRecordHeader {
  uint32_t type = 0;
  uint32_t payload_len = 0;
  uint64_t seq = 0;
  uint64_t ino = 0;
  uint64_t offset = 0;  // file offset (kData) or new size (kTruncate)
  uint64_t generation = 0;
  uint32_t crc = 0;
  uint32_t epoch = 0;  // low 32 bits of the region epoch at append time
  uint64_t reserved1[2] = {0, 0};
};
static_assert(sizeof(WalRecordHeader) == 64, "one cacheline");

inline constexpr uint64_t WalAlignUp8(uint64_t v) { return (v + 7) & ~7ull; }

// CRC-32 (IEEE 802.3 polynomial, bit-reflected), slice-by-8 table-driven.
// Software-only: the emulator has no hardware CRC. This IS on the logged
// write path (every record is checksummed before its append), so it is
// implemented to stream ~8 bytes per step rather than one.
uint32_t WalCrc32(const void* data, size_t len, uint32_t seed = 0);

// CRC of a record: header with its crc field zeroed, then the payload.
uint32_t WalRecordCrc(const WalRecordHeader& header, const void* payload, size_t payload_len);

}  // namespace hinfs

#endif  // SRC_WAL_WAL_LAYOUT_H_
