// crashlab: systematic crash-state exploration from the command line.
//
//   crashlab [--fs pmfs|hinfs|blockfs|blockfs-dax|pmfs+wal] [--mix <name>|all]
//            [--flush clflush|clflushopt] [--seed N] [--states-per-cut N]
//            [--max-states N] [--json <path>] [--no-fsck]
//            [--wal-commit checksum|fence]
//
// Replays the chosen workload mix(es), enumerates every legal crash state,
// and remount+fsck+oracle-checks each one. Exit status 1 if any state
// violated the oracle or fsck, 2 on usage errors. `--json` writes the last
// run's full report (tools/crashlab_report.py pretty-prints it).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/crashlab/harness.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fs pmfs|hinfs|blockfs|blockfs-dax|pmfs+wal] [--mix <name>|all]\n"
               "          [--flush clflush|clflushopt] [--seed N] [--states-per-cut N]\n"
               "          [--max-states N] [--json <path>] [--no-fsck]\n"
               "          [--wal-commit checksum|fence]\n"
               "mixes: ",
               argv0);
  for (const std::string& m : hinfs::CrashWorkloadMixes()) {
    std::fprintf(stderr, "%s ", m.c_str());
  }
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  using hinfs::CrashFs;
  hinfs::CrashlabOptions opts;
  std::string mix = "all";
  std::string json_path;

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fs") {
      const std::string v = value();
      if (v == "pmfs") {
        opts.fs = CrashFs::kPmfs;
      } else if (v == "hinfs") {
        opts.fs = CrashFs::kHinfs;
      } else if (v == "blockfs") {
        opts.fs = CrashFs::kBlockFsJournal;
      } else if (v == "blockfs-dax") {
        opts.fs = CrashFs::kBlockFsDax;
      } else if (v == "pmfs+wal" || v == "wal") {
        opts.fs = CrashFs::kWalPmfs;
      } else {
        std::fprintf(stderr, "error: unknown fs '%s'\n", v.c_str());
        return 2;
      }
    } else if (arg == "--wal-commit") {
      const std::string v = value();
      if (v == "checksum") {
        opts.wal_commit_format = hinfs::WalCommitFormat::kChecksum;
      } else if (v == "fence") {
        opts.wal_commit_format = hinfs::WalCommitFormat::kFence;
      } else {
        std::fprintf(stderr, "error: unknown commit format '%s'\n", v.c_str());
        return 2;
      }
    } else if (arg == "--mix") {
      mix = value();
    } else if (arg == "--flush") {
      const std::string v = value();
      if (v == "clflush") {
        opts.flush_instruction = hinfs::FlushInstruction::kClflush;
      } else if (v == "clflushopt" || v == "clwb") {
        opts.flush_instruction = hinfs::FlushInstruction::kClflushopt;
      } else {
        std::fprintf(stderr, "error: unknown flush instruction '%s'\n", v.c_str());
        return 2;
      }
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--states-per-cut") {
      opts.max_states_per_cut = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--max-states") {
      opts.max_total_states = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--no-fsck") {
      opts.run_fsck = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  std::vector<std::string> mixes =
      mix == "all" ? hinfs::CrashWorkloadMixes() : std::vector<std::string>{mix};
  size_t total_states = 0;
  size_t total_failures = 0;
  std::string all_json = "[\n";
  for (const std::string& m : mixes) {
    auto workload = hinfs::MakeCrashWorkload(m, opts.seed);
    if (!workload.ok()) {
      std::fprintf(stderr, "error: %s\n", workload.status().ToString().c_str());
      return 2;
    }
    auto report = hinfs::RunCrashlab(*workload, opts);
    if (!report.ok()) {
      std::fprintf(stderr, "error: crashlab run failed for mix '%s': %s\n", m.c_str(),
                   report.status().ToString().c_str());
      return 2;
    }
    std::printf("%-10s %s\n", m.c_str(), report->Summary().c_str());
    for (const hinfs::CrashFailure& f : report->failures) {
      std::printf("  FAIL cut=%zu epoch=%llu op='%s': %s\n", f.cut,
                  static_cast<unsigned long long>(f.epoch), f.inflight_op.c_str(),
                  f.diag.c_str());
    }
    total_states += report->states_explored;
    total_failures += report->failures.size();
    if (all_json.size() > 2) {
      all_json += ",\n";
    }
    all_json += "{\"mix\": \"" + m + "\", \"report\": " + report->ToJson() + "}";
  }
  all_json += "\n]\n";
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fputs(all_json.c_str(), f);
    std::fclose(f);
  }
  std::printf("total: %zu distinct crash states, %zu failures\n", total_states,
              total_failures);
  return total_failures == 0 ? 0 : 1;
}
