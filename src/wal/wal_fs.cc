#include "src/wal/wal_fs.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/common/clock.h"
#include "src/qos/tenant.h"

namespace hinfs {

WalFs::WalFs(std::unique_ptr<FileSystem> inner, NvmmDevice* nvmm)
    : inner_(std::move(inner)),
      nvmm_(nvmm),
      stat_write_ns_(stats_.Counter(kStatWriteAccessNs)),
      stat_fsync_ns_(stats_.Counter(kStatFsyncNs)),
      stat_eager_writes_(stats_.Counter(kStatEagerWrites)),
      stat_lazy_writes_(stats_.Counter(kStatLazyWrites)),
      stat_written_bytes_(stats_.Counter(kStatWrittenBytes)) {}

WalFs::~WalFs() { StopCheckpointThread(); }

Result<std::unique_ptr<WalFs>> WalFs::Format(std::unique_ptr<FileSystem> inner, NvmmDevice* nvmm,
                                             uint64_t wal_base, size_t wal_bytes,
                                             const WalOptions& options) {
  auto fs = std::unique_ptr<WalFs>(new WalFs(std::move(inner), nvmm));
  auto wal = WalManager::Format(nvmm, wal_base, wal_bytes, options, &fs->stats_);
  HINFS_RETURN_IF_ERROR(wal.status());
  fs->wal_ = std::move(wal.value());
  fs->checkpoint_ms_ = options.checkpoint_ms;
  fs->direct_write_bytes_ = options.direct_write_bytes;
  fs->StartCheckpointThread();
  return fs;
}

Result<std::unique_ptr<WalFs>> WalFs::Mount(std::unique_ptr<FileSystem> inner, NvmmDevice* nvmm,
                                            uint64_t wal_base, size_t wal_bytes,
                                            const WalOptions& options) {
  auto fs = std::unique_ptr<WalFs>(new WalFs(std::move(inner), nvmm));
  auto wal = WalManager::Mount(nvmm, wal_base, wal_bytes, options, &fs->stats_);
  HINFS_RETURN_IF_ERROR(wal.status());
  fs->wal_ = std::move(wal.value());
  fs->checkpoint_ms_ = options.checkpoint_ms;
  fs->direct_write_bytes_ = options.direct_write_bytes;
  HINFS_RETURN_IF_ERROR(fs->ReplayIntoInner());
  fs->StartCheckpointThread();
  return fs;
}

Status WalFs::ReplayIntoInner() {
  auto records = wal_->CommittedRecords();
  HINFS_RETURN_IF_ERROR(records.status());
  uint64_t replayed = 0;
  uint64_t skipped = 0;
  for (const WalRecoveredRecord& rec : records.value()) {
    // A record applies only to the same allocation of the same inode it was
    // logged against. If the inode was freed (and possibly reused) since, the
    // generation no longer matches and the record is void — exactly the
    // unlink/rename-replace semantics the front end exposed before the crash.
    Result<InodeAttr> attr = inner_->GetAttr(rec.ino);
    if (!attr.ok()) {
      if (attr.status().code() == ErrorCode::kNotFound ||
          attr.status().code() == ErrorCode::kInvalidArgument) {
        skipped++;
        continue;
      }
      return attr.status();
    }
    if (attr.value().type != FileType::kRegular || attr.value().generation != rec.generation) {
      skipped++;
      continue;
    }
    switch (rec.type) {
      case WalRecordType::kData: {
        auto wrote = inner_->Write(rec.ino, rec.offset, rec.payload.data(), rec.payload.size(),
                                   WriteOptions::EagerPersistent());
        HINFS_RETURN_IF_ERROR(wrote.status());
        break;
      }
      case WalRecordType::kTruncate:
        HINFS_RETURN_IF_ERROR(inner_->Truncate(rec.ino, rec.offset));
        break;
    }
    replayed++;
  }
  if (replayed != 0) {
    stats_.Add(kStatWalReplayedRecords, replayed);
  }
  if (skipped != 0) {
    stats_.Add(kStatWalReplaySkippedRecords, skipped);
  }
  return wal_->ResetAllRegions();
}

// --- overlay helpers ---------------------------------------------------------

Result<WalFs::FileState*> WalFs::FileStateFor(OverlayShard& shard, uint64_t ino) {
  auto it = shard.files.find(ino);
  if (it != shard.files.end()) {
    return &it->second;
  }
  Result<InodeAttr> attr = inner_->GetAttr(ino);
  HINFS_RETURN_IF_ERROR(attr.status());
  if (attr.value().type != FileType::kRegular) {
    return Status(ErrorCode::kInvalidArgument, "wal: not a regular file");
  }
  FileState& f = shard.files[ino];
  f.size = attr.value().size;
  f.mtime_ns = attr.value().mtime_ns;
  f.generation = attr.value().generation;
  return &f;
}

// Inserts [offset, offset+len) into the extent map, splitting or dropping any
// overlapped older bytes so extents stay disjoint and later-wins.
void WalFs::OverlayInsert(FileState& f, uint64_t offset, const void* src, size_t len) {
  const uint64_t end = offset + len;
  auto it = f.extents.lower_bound(offset);
  if (it != f.extents.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > offset) {
      if (prev_end > end) {
        // Old extent sticks out past the new one: keep its tail.
        f.extents.emplace(end, prev->second.substr(end - prev->first));
      }
      prev->second.resize(offset - prev->first);
      if (prev->second.empty()) {
        f.extents.erase(prev);
      }
    }
  }
  while (it != f.extents.end() && it->first < end) {
    const uint64_t it_end = it->first + it->second.size();
    if (it_end > end) {
      f.extents.emplace(end, it->second.substr(end - it->first));
    }
    it = f.extents.erase(it);
  }
  // Coalesce with touching neighbours so sequential appends grow ONE extent:
  // the checkpoint drain then issues a few large inner writes instead of one
  // fully-journaled inner write per logged record.
  std::string data(static_cast<const char*>(src), len);
  if (it != f.extents.end() && it->first == end) {
    data.append(it->second);
    it = f.extents.erase(it);
  }
  if (it != f.extents.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() == offset) {
      prev->second.append(data);
      return;
    }
  }
  f.extents.emplace(offset, std::move(data));
}

void WalFs::OverlayTruncate(FileState& f, uint64_t new_size) {
  auto it = f.extents.lower_bound(new_size);
  if (it != f.extents.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > new_size) {
      prev->second.resize(new_size - prev->first);
      if (prev->second.empty()) {
        it = f.extents.erase(prev);
      }
    }
  }
  f.extents.erase(it, f.extents.end());
  f.size = new_size;
  f.size_truncated = true;
}

void WalFs::DropOverlay(uint64_t ino) {
  OverlayShard& shard = ShardFor(ino);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.files.erase(ino);
  shard.inner_dirty.erase(ino);
}

// --- namespace ops -----------------------------------------------------------

Result<uint64_t> WalFs::Lookup(uint64_t dir_ino, std::string_view name) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  return inner_->Lookup(dir_ino, name);
}

Result<uint64_t> WalFs::Create(uint64_t dir_ino, std::string_view name, FileType type) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  return inner_->Create(dir_ino, name, type);
}

Status WalFs::Unlink(uint64_t dir_ino, std::string_view name) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  // Resolve first so the overlay (and any logged-but-unflushed state) for the
  // victim can be dropped; its log records are voided by the generation check.
  Result<uint64_t> ino = inner_->Lookup(dir_ino, name);
  HINFS_RETURN_IF_ERROR(inner_->Unlink(dir_ino, name));
  if (ino.ok()) {
    DropOverlay(ino.value());
  }
  return OkStatus();
}

Status WalFs::Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                     std::string_view new_name) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  Result<uint64_t> target = inner_->Lookup(new_dir, new_name);
  Result<uint64_t> source = inner_->Lookup(old_dir, old_name);
  HINFS_RETURN_IF_ERROR(inner_->Rename(old_dir, old_name, new_dir, new_name));
  // rename-replace frees the target inode; drop its overlay unless the
  // "target" was the source itself (rename onto the same ino is a no-op).
  if (target.ok() && (!source.ok() || target.value() != source.value())) {
    DropOverlay(target.value());
  }
  return OkStatus();
}

Result<std::vector<DirEntry>> WalFs::ReadDir(uint64_t dir_ino) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  return inner_->ReadDir(dir_ino);
}

Result<InodeAttr> WalFs::GetAttr(uint64_t ino) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  Result<InodeAttr> attr = inner_->GetAttr(ino);
  HINFS_RETURN_IF_ERROR(attr.status());
  OverlayShard& shard = ShardFor(ino);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.files.find(ino);
  if (it != shard.files.end()) {
    attr.value().size = it->second.size;
    attr.value().mtime_ns = it->second.mtime_ns;
  }
  return attr;
}

// --- data ops ----------------------------------------------------------------

Result<size_t> WalFs::Read(uint64_t ino, uint64_t offset, void* dst, size_t len) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  OverlayShard& shard = ShardFor(ino);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.files.find(ino);
  if (it == shard.files.end()) {
    lock.unlock();
    return inner_->Read(ino, offset, dst, len);
  }
  const FileState& f = it->second;
  if (len == 0 || offset >= f.size) {
    return static_cast<size_t>(0);
  }
  const size_t n = static_cast<size_t>(std::min<uint64_t>(len, f.size - offset));
  // Base image from the inner FS (short or absent where only the overlay has
  // bytes), zero-filled holes, then overlay extents win.
  auto base = inner_->Read(ino, offset, dst, n);
  HINFS_RETURN_IF_ERROR(base.status());
  if (base.value() < n) {
    std::memset(static_cast<uint8_t*>(dst) + base.value(), 0, n - base.value());
  }
  const uint64_t end = offset + n;
  auto ext = f.extents.lower_bound(offset);
  if (ext != f.extents.begin()) {
    ext = std::prev(ext);
  }
  for (; ext != f.extents.end() && ext->first < end; ++ext) {
    const uint64_t ext_end = ext->first + ext->second.size();
    if (ext_end <= offset) {
      continue;
    }
    const uint64_t copy_begin = std::max(ext->first, offset);
    const uint64_t copy_end = std::min(ext_end, end);
    std::memcpy(static_cast<uint8_t*>(dst) + (copy_begin - offset),
                ext->second.data() + (copy_begin - ext->first), copy_end - copy_begin);
  }
  return n;
}

Result<size_t> WalFs::Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                            const WriteOptions& options) {
  ScopedTimer timer(stat_write_ns_);
  if (len == 0) {
    return static_cast<size_t>(0);
  }
  // Two tries: if the calling core's region is full, checkpoint (drain +
  // recycle) and try again with an empty log.
  for (int attempt = 0; attempt < 2; attempt++) {
    Result<WalTicket> ticket = WalTicket{};
    {
      std::shared_lock<std::shared_mutex> dlock(drain_mu_);
      OverlayShard& shard = ShardFor(ino);
      std::unique_lock<std::mutex> lock(shard.mu);
      // A block-sized-or-larger IN-PLACE overwrite of a file with no logged
      // state gains nothing from the log: the data is long-lived (it already
      // exists durably), so it cannot die in the log, and at this size the
      // log would simply write it twice for the same one fence. Appends and
      // extends stay logged — new bytes coalesce and often die (temp files,
      // rotation) before a checkpoint ever copies them out.
      if (direct_write_bytes_ != 0 && len >= direct_write_bytes_ &&
          shard.files.find(ino) == shard.files.end()) {
        Result<InodeAttr> attr = inner_->GetAttr(ino);
        HINFS_RETURN_IF_ERROR(attr.status());
        if (attr.value().type == FileType::kRegular && offset + len <= attr.value().size) {
          lock.unlock();
          auto wrote = inner_->Write(ino, offset, src, len, options);
          HINFS_RETURN_IF_ERROR(wrote.status());
          stats_.Add(kStatWalDirectWrites, 1);
          if (options.synchronous()) {
            stat_eager_writes_->fetch_add(1, std::memory_order_relaxed);
          } else {
            // The bytes may sit in the inner FS's volatile write buffer;
            // Fsync must forward there even if logged records also exist.
            // Marked AFTER the inner write so a concurrent Fsync either sees
            // the mark or already covered the completed write.
            lock.lock();
            shard.inner_dirty.insert(ino);
            lock.unlock();
            stat_lazy_writes_->fetch_add(1, std::memory_order_relaxed);
          }
          stat_written_bytes_->fetch_add(len, std::memory_order_relaxed);
          return wrote;
        }
      }
      Result<FileState*> state = FileStateFor(shard, ino);
      HINFS_RETURN_IF_ERROR(state.status());
      FileState& f = *state.value();
      // This write would have gone direct but for leftover logged state on
      // the file (e.g. a database table overwritten in place right after
      // being loaded through the log). Log it — correctness — but ask the
      // checkpoint thread to drain soon so the file's steady-state overwrite
      // traffic stops being double-written.
      const bool direct_blocked = direct_write_bytes_ != 0 && len >= direct_write_bytes_ &&
                                  offset + len <= f.size;
      // Append while holding the shard lock so record seq order matches
      // overlay apply order for this file.
      ticket = wal_->Append(WalRecordType::kData, ino, offset, f.generation, src, len);
      if (ticket.ok()) {
        OverlayInsert(f, offset, src, len);
        f.size = std::max(f.size, offset + len);
        f.mtime_ns = MonotonicNowNs();
        f.pending[ticket.value().region] = ticket.value().seq;
        lock.unlock();
        if (options.synchronous()) {
          HINFS_RETURN_IF_ERROR(wal_->Commit(ticket.value(), /*allow_group_wait=*/true));
          stat_eager_writes_->fetch_add(1, std::memory_order_relaxed);
        } else {
          stat_lazy_writes_->fetch_add(1, std::memory_order_relaxed);
        }
        stat_written_bytes_->fetch_add(len, std::memory_order_relaxed);
        if (direct_blocked || wal_->SpaceLow()) {
          KickCheckpoint();
        }
        return len;
      }
    }
    if (ticket.status().code() != ErrorCode::kNoSpace) {
      return ticket.status();
    }
    HINFS_RETURN_IF_ERROR(Checkpoint());
  }
  // The write is larger than an empty region: bypass the log entirely. The
  // checkpoint above already drained this file's overlay, so the inner FS is
  // the sole authority again.
  std::unique_lock<std::shared_mutex> dlock(drain_mu_);
  HINFS_RETURN_IF_ERROR(DrainLocked());
  stats_.Add(kStatEagerWrites, 1);
  return inner_->Write(ino, offset, src, len, WriteOptions::EagerPersistent());
}

Status WalFs::Truncate(uint64_t ino, uint64_t new_size) {
  for (int attempt = 0; attempt < 2; attempt++) {
    Result<WalTicket> ticket = WalTicket{};
    bool logged = false;
    {
      std::shared_lock<std::shared_mutex> dlock(drain_mu_);
      OverlayShard& shard = ShardFor(ino);
      std::unique_lock<std::mutex> lock(shard.mu);
      auto it = shard.files.find(ino);
      if (it == shard.files.end()) {
        // No logged state for this file: plain pass-through.
        lock.unlock();
        return inner_->Truncate(ino, new_size);
      }
      FileState& f = it->second;
      ticket = wal_->Append(WalRecordType::kTruncate, ino, new_size, f.generation, nullptr, 0);
      if (ticket.ok()) {
        OverlayTruncate(f, new_size);
        f.mtime_ns = MonotonicNowNs();
        f.pending[ticket.value().region] = ticket.value().seq;
        logged = true;
      }
    }
    if (logged) {
      // Commit the truncate record BEFORE mutating the inner layout: if we
      // crash in between, replay re-executes the truncate (idempotent), and
      // its seq voids any earlier logged data beyond the cut.
      HINFS_RETURN_IF_ERROR(wal_->Commit(ticket.value(), /*allow_group_wait=*/true));
      std::shared_lock<std::shared_mutex> dlock(drain_mu_);
      return inner_->Truncate(ino, new_size);
    }
    if (ticket.status().code() != ErrorCode::kNoSpace) {
      return ticket.status();
    }
    HINFS_RETURN_IF_ERROR(Checkpoint());
  }
  return Status(ErrorCode::kNoSpace, "wal: truncate record cannot fit in an empty region");
}

Status WalFs::Fsync(uint64_t ino, const SyncOptions& options) {
  ScopedTimer timer(stat_fsync_ns_);
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  OverlayShard& shard = ShardFor(ino);
  // COPY pending (don't swap it out): the entries must survive until the
  // commits below succeed, so a failed commit leaves a retried fsync with
  // work to do, and a concurrent fsync of the same file cannot observe an
  // empty map — and return OK — before this caller's flush+fence completes
  // (it re-commits the same tickets; the group-commit fast path makes the
  // overlap one atomic load once the leader's fence is durable).
  std::map<uint32_t, uint64_t> pending;
  bool inner_dirty = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.files.find(ino);
    if (it != shard.files.end()) {
      pending = it->second.pending;
    }
    // Erase-before-forward: a direct buffered write re-marks after its inner
    // write completes, so any write this erase uncovers either re-sets the
    // mark or finished before the inner fsync below and is covered by it.
    inner_dirty = shard.inner_dirty.erase(ino) > 0;
  }
  auto restore_dirty = [&] {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inner_dirty.insert(ino);
  };
  // fsync vs fdatasync is the same persist here — the log commit covers data
  // and the size/mtime needed to recover it; fdatasync merely documents that
  // the caller would tolerate less.
  for (const auto& [region, seq] : pending) {
    Status committed = wal_->Commit(WalTicket{region, seq}, options.allow_group_wait);
    if (!committed.ok()) {
      if (inner_dirty) {
        restore_dirty();
      }
      return committed;
    }
  }
  if (pending.empty() || inner_dirty) {
    // Nothing logged since the last sync, or a direct pass-through write
    // bypassed the log: whatever the inner FS buffers (HiNFS's write buffer)
    // still has to go, so forward.
    Status synced = inner_->Fsync(ino, options);
    if (!synced.ok()) {
      if (inner_dirty) {
        restore_dirty();
      }
      return synced;
    }
  }
  if (!pending.empty()) {
    // Everything durable: retire exactly what was committed. A region whose
    // seq advanced meanwhile keeps its (newer) entry for the next sync.
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.files.find(ino);
    if (it != shard.files.end()) {
      for (const auto& [region, seq] : pending) {
        auto p = it->second.pending.find(region);
        if (p != it->second.pending.end() && p->second <= seq) {
          it->second.pending.erase(p);
        }
      }
    }
  }
  return OkStatus();
}

// --- whole-FS ops ------------------------------------------------------------

Status WalFs::SyncFs() {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  HINFS_RETURN_IF_ERROR(wal_->CommitAll());
  return inner_->SyncFs();
}

Status WalFs::DropCaches() {
  HINFS_RETURN_IF_ERROR(Checkpoint());
  return inner_->DropCaches();
}

Status WalFs::Unmount() {
  StopCheckpointThread();
  HINFS_RETURN_IF_ERROR(Checkpoint());
  HINFS_RETURN_IF_ERROR(inner_->Unmount());
  // Surface the inner layer's breakdown in this (outermost) registry: device
  // counters (nvmm_*) verbatim — they are whole-device totals the inner
  // unmount just mirrored — everything else under an inner_ prefix so nested
  // timers are not double-counted.
  for (const auto& [name, value] : inner_->stats().Snapshot()) {
    if (value == 0) {
      continue;
    }
    if (name.rfind("nvmm_", 0) == 0) {
      stats_.Add(name, value);
    } else {
      stats_.Add("inner_" + name, value);
    }
  }
  return OkStatus();
}

// --- mmap --------------------------------------------------------------------

Result<uint8_t*> WalFs::Mmap(uint64_t ino, uint64_t offset, size_t len) {
  // Mmap hands out raw NVMM pointers into the final layout; logged state must
  // land there first or the mapping would miss it.
  HINFS_RETURN_IF_ERROR(Checkpoint());
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  return inner_->Mmap(ino, offset, len);
}

Status WalFs::Munmap(uint64_t ino) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  return inner_->Munmap(ino);
}

Status WalFs::Msync(uint64_t ino, uint64_t offset, size_t len) {
  std::shared_lock<std::shared_mutex> dlock(drain_mu_);
  return inner_->Msync(ino, offset, len);
}

// --- checkpointing -----------------------------------------------------------

Status WalFs::Checkpoint() {
  std::unique_lock<std::shared_mutex> dlock(drain_mu_);
  return DrainLocked();
}

Status WalFs::DrainLocked() {
  // Appends are quiesced (drain_mu_ held exclusively); commit whatever is
  // outstanding so the log and the overlay agree, then move the overlay into
  // the final layout and recycle the log. On any error the overlay and log
  // are left intact — the drain is idempotent and can be retried.
  HINFS_RETURN_IF_ERROR(wal_->CommitAll());
  uint64_t bytes = 0;
  bool any = false;
  for (OverlayShard& shard : shards_) {
    for (auto& [ino, f] : shard.files) {
      for (const auto& [offset, data] : f.extents) {
        auto wrote =
            inner_->Write(ino, offset, data.data(), data.size(), WriteOptions::EagerPersistent());
        HINFS_RETURN_IF_ERROR(wrote.status());
        bytes += data.size();
      }
      // A logged truncate may have resized the file with no extent left to
      // say so; re-issue it against the final layout. Gated on the truncate
      // flag so a concurrent direct (bypass) write that extended the inner
      // file can never be chopped by a stale overlay size.
      if (f.size_truncated) {
        Result<InodeAttr> attr = inner_->GetAttr(ino);
        HINFS_RETURN_IF_ERROR(attr.status());
        if (attr.value().size != f.size) {
          HINFS_RETURN_IF_ERROR(inner_->Truncate(ino, f.size));
        }
      }
      any = true;
    }
  }
  HINFS_RETURN_IF_ERROR(wal_->ResetAllRegions());
  for (OverlayShard& shard : shards_) {
    shard.files.clear();
  }
  if (any) {
    stats_.Add(kStatWalCheckpoints, 1);
    stats_.Add(kStatWalCheckpointBytes, bytes);
  }
  return OkStatus();
}

void WalFs::StartCheckpointThread() {
  if (checkpoint_ms_ == 0) {
    return;  // checkpoint only on demand (log pressure handled inline)
  }
  ckpt_thread_ = std::thread([this] { CheckpointLoop(); });
}

void WalFs::StopCheckpointThread() {
  {
    std::lock_guard<std::mutex> lk(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.notify_all();
  if (ckpt_thread_.joinable()) {
    ckpt_thread_.join();
  }
}

void WalFs::KickCheckpoint() {
  if (checkpoint_ms_ == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(ckpt_mu_);
    ckpt_kick_ = true;
  }
  ckpt_cv_.notify_one();
}

void WalFs::CheckpointLoop() {
  // Checkpoint replay competes with foreground syscalls for NVMM bandwidth;
  // charge it as background so the QoS foreground reserve applies to it.
  qos::ScopedQosContext qos_ctx(qos::kSystemTenant, qos::TrafficClass::kBackground);
  std::unique_lock<std::mutex> lk(ckpt_mu_);
  while (!ckpt_stop_) {
    ckpt_cv_.wait_for(lk, std::chrono::milliseconds(checkpoint_ms_),
                      [this] { return ckpt_stop_ || ckpt_kick_; });
    if (ckpt_stop_) {
      break;
    }
    ckpt_kick_ = false;
    lk.unlock();
    if (wal_->PendingBytes() > 0) {
      // Background failure cannot be reported to any caller; the log keeps
      // the data recoverable, so just count it and let the next sync surface
      // a persistent error.
      if (!Checkpoint().ok()) {
        stats_.Add("wal_checkpoint_errors", 1);
      }
    }
    lk.lock();
  }
}

}  // namespace hinfs
