// Tests for the per-core NVMM write-ahead log (src/wal/): WalManager record
// mechanics (append / group commit / recycle / torn-record detection under
// both commit formats) and the WalFs decorator (overlay reads, logged fsync,
// crash replay with inode-generation filtering, checkpoint drain).

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/nvmm/nvmm_device.h"
#include "src/vfs/vfs.h"
#include "src/wal/wal_fs.h"
#include "src/wal/wal_log.h"
#include "src/workloads/fs_setup.h"

namespace hinfs {
namespace {

constexpr size_t kDevBytes = 32ull << 20;
constexpr size_t kWalBytes = 1ull << 20;

NvmmConfig FastConfig(bool tracked = false) {
  NvmmConfig cfg;
  cfg.size_bytes = kDevBytes;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = tracked;
  return cfg;
}

WalOptions TestWalOptions(WalCommitFormat format) {
  WalOptions o;
  o.regions = 2;
  o.total_bytes = kWalBytes;
  o.commit_format = format;
  o.checkpoint_ms = 0;  // checkpoint only on demand: deterministic tests
  return o;
}

// --- WalManager --------------------------------------------------------------

TEST(WalManagerTest, AppendCommitRecoverRecycle) {
  NvmmDevice nvmm(FastConfig(/*tracked=*/true));
  StatsRegistry stats;
  auto wal = WalManager::Format(&nvmm, /*base=*/0, kWalBytes,
                                TestWalOptions(WalCommitFormat::kChecksum), &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  const std::string a(100, 'a');
  const std::string b(8, 'b');
  auto t1 = (*wal)->Append(WalRecordType::kData, /*ino=*/7, /*offset=*/0, /*generation=*/3,
                           a.data(), a.size());
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  auto t2 = (*wal)->Append(WalRecordType::kData, 7, 4096, 3, b.data(), b.size());
  ASSERT_TRUE(t2.ok());
  EXPECT_GT(t2->seq, t1->seq);
  ASSERT_TRUE((*wal)->Commit(*t2, /*allow_group_wait=*/true).ok());

  // A third record appended but never committed: its lines were never
  // flushed, so a crash image cannot contain it and recovery must not see it.
  auto t3 = (*wal)->Append(WalRecordType::kTruncate, 7, 50, 3, nullptr, 0);
  ASSERT_TRUE(t3.ok());

  auto image = nvmm.CloneCrashImage();
  ASSERT_TRUE(image.ok());
  NvmmDevice crashed(FastConfig(/*tracked=*/true));
  ASSERT_TRUE(crashed.InstallImage(image->data(), image->size()).ok());
  StatsRegistry stats2;
  auto wal2 = WalManager::Mount(&crashed, 0, kWalBytes, WalOptions{}, &stats2);
  ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
  auto recs = (*wal2)->CommittedRecords();
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_EQ(2u, recs->size());
  EXPECT_EQ(WalRecordType::kData, (*recs)[0].type);
  EXPECT_EQ(7u, (*recs)[0].ino);
  EXPECT_EQ(0u, (*recs)[0].offset);
  EXPECT_EQ(3u, (*recs)[0].generation);
  EXPECT_EQ(a, (*recs)[0].payload);
  EXPECT_EQ(4096u, (*recs)[1].offset);
  EXPECT_EQ(b, (*recs)[1].payload);
  EXPECT_LT((*recs)[0].seq, (*recs)[1].seq);

  // Recycling voids everything — including t3's stale bytes, which keep a
  // valid CRC but now carry the old epoch.
  ASSERT_TRUE((*wal)->ResetAllRegions().ok());
  EXPECT_EQ(0u, (*wal)->PendingBytes());
  auto empty = (*wal)->CommittedRecords();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(WalManagerTest, MountSeesCommittedPrefixOnly) {
  NvmmDevice nvmm(FastConfig(/*tracked=*/true));
  StatsRegistry stats;
  auto wal = WalManager::Format(&nvmm, 0, kWalBytes,
                                TestWalOptions(WalCommitFormat::kChecksum), &stats);
  ASSERT_TRUE(wal.ok());
  const std::string a(64, 'x');
  auto t1 = (*wal)->Append(WalRecordType::kData, 9, 0, 1, a.data(), a.size());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE((*wal)->Commit(*t1, true).ok());
  auto t2 = (*wal)->Append(WalRecordType::kData, 9, 64, 1, a.data(), a.size());
  ASSERT_TRUE(t2.ok());  // never committed: absent from the crash image

  auto image = nvmm.CloneCrashImage();
  ASSERT_TRUE(image.ok());
  NvmmDevice crashed(FastConfig(/*tracked=*/true));
  ASSERT_TRUE(crashed.InstallImage(image->data(), image->size()).ok());
  StatsRegistry stats2;
  auto wal2 = WalManager::Mount(&crashed, 0, kWalBytes, WalOptions{}, &stats2);
  ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
  EXPECT_EQ(WalCommitFormat::kChecksum, (*wal2)->commit_format());
  auto recs = (*wal2)->CommittedRecords();
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(1u, recs->size());
  EXPECT_EQ(t1->seq, (*recs)[0].seq);
}

// Returns the device offset of region 0's record area for a carve at `base`
// (superblock block, then per-region header block + data).
uint64_t Region0DataAddr(uint64_t base) { return base + 2 * kBlockSize; }

TEST(WalManagerTest, TornRecordTruncatesScanUnderChecksumFormat) {
  NvmmDevice nvmm(FastConfig());
  StatsRegistry stats;
  auto wal = WalManager::Format(&nvmm, 0, kWalBytes,
                                TestWalOptions(WalCommitFormat::kChecksum), &stats);
  ASSERT_TRUE(wal.ok());
  const std::string a(64, 'a');
  const std::string b(64, 'b');
  auto t1 = (*wal)->Append(WalRecordType::kData, 5, 0, 1, a.data(), a.size());
  ASSERT_TRUE(t1.ok());
  auto t2 = (*wal)->Append(WalRecordType::kData, 5, 64, 1, b.data(), b.size());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE((*wal)->Commit(*t2, true).ok());

  // Simulate a torn commit batch: the header line and record 1 reached NVMM
  // but record 2's payload line did not (possible under clflushopt within one
  // fence epoch). Recovery must keep record 1 and cleanly drop record 2.
  const uint64_t rec2_payload = Region0DataAddr(0) + (64 + 64) + 64;
  const std::string garbage(64, '\0');
  ASSERT_TRUE(nvmm.StorePersistent(rec2_payload, garbage.data(), garbage.size()).ok());

  StatsRegistry stats2;
  auto wal2 = WalManager::Mount(&nvmm, 0, kWalBytes, WalOptions{}, &stats2);
  ASSERT_TRUE(wal2.ok());
  auto recs = (*wal2)->CommittedRecords();
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_EQ(1u, recs->size());
  EXPECT_EQ(a, (*recs)[0].payload);
}

TEST(WalManagerTest, TornRecordIsCorruptionUnderFenceFormat) {
  NvmmDevice nvmm(FastConfig());
  StatsRegistry stats;
  auto wal = WalManager::Format(&nvmm, 0, kWalBytes,
                                TestWalOptions(WalCommitFormat::kFence), &stats);
  ASSERT_TRUE(wal.ok());
  const std::string a(64, 'a');
  auto t1 = (*wal)->Append(WalRecordType::kData, 5, 0, 1, a.data(), a.size());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE((*wal)->Commit(*t1, true).ok());

  // Under the fence format durable_tail is flushed only after the records
  // fenced, so a bad record inside the durable prefix cannot be a crash
  // artifact — it must surface as corruption, not silent truncation.
  const uint64_t rec1_payload = Region0DataAddr(0) + 64;
  const std::string garbage(64, '\0');
  ASSERT_TRUE(nvmm.StorePersistent(rec1_payload, garbage.data(), garbage.size()).ok());

  StatsRegistry stats2;
  auto wal2 = WalManager::Mount(&nvmm, 0, kWalBytes, WalOptions{}, &stats2);
  ASSERT_TRUE(wal2.ok());
  auto recs = (*wal2)->CommittedRecords();
  EXPECT_FALSE(recs.ok());
  EXPECT_EQ(ErrorCode::kIoError, recs.status().code());
}

TEST(WalManagerTest, ReformatVoidsPreviousLifetimeRecords) {
  NvmmDevice nvmm(FastConfig());
  StatsRegistry stats;
  auto wal = WalManager::Format(&nvmm, 0, kWalBytes,
                                TestWalOptions(WalCommitFormat::kChecksum), &stats);
  ASSERT_TRUE(wal.ok());
  const std::string a(64, 'a');
  auto t1 = (*wal)->Append(WalRecordType::kData, 3, 0, 1, a.data(), a.size());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE((*wal)->Commit(*t1, true).ok());

  // Re-format the same carve. The first lifetime's record sits at offset 0
  // with epoch 1 and a valid CRC — exactly what a fresh (epoch-1) region
  // header would accept if format left the record area untouched. The voided
  // first record line must make it unreachable.
  StatsRegistry stats2;
  auto wal2 = WalManager::Format(&nvmm, 0, kWalBytes,
                                 TestWalOptions(WalCommitFormat::kChecksum), &stats2);
  ASSERT_TRUE(wal2.ok());
  auto recs = (*wal2)->CommittedRecords();
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  EXPECT_TRUE(recs->empty());

  StatsRegistry stats3;
  auto wal3 = WalManager::Mount(&nvmm, 0, kWalBytes, WalOptions{}, &stats3);
  ASSERT_TRUE(wal3.ok()) << wal3.status().ToString();
  auto recs3 = (*wal3)->CommittedRecords();
  ASSERT_TRUE(recs3.ok());
  EXPECT_TRUE(recs3->empty());
}

TEST(WalManagerTest, RecycleAfterTornFirstRecordVoidsSameEpochResidue) {
  NvmmDevice nvmm(FastConfig());
  StatsRegistry stats;
  WalOptions opts = TestWalOptions(WalCommitFormat::kChecksum);
  opts.regions = 1;
  auto wal = WalManager::Format(&nvmm, 0, kWalBytes, opts, &stats);
  ASSERT_TRUE(wal.ok());
  const std::string a(64, 'a');
  const std::string b(64, 'b');
  auto t1 = (*wal)->Append(WalRecordType::kData, 5, 0, 1, a.data(), a.size());
  ASSERT_TRUE(t1.ok());
  auto t2 = (*wal)->Append(WalRecordType::kData, 5, 64, 1, b.data(), b.size());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE((*wal)->Commit(*t2, true).ok());

  // Tear the FIRST record: the tail scan breaks at offset 0 and recovers
  // nothing, while record 2 survives beyond the break with a valid CRC and
  // the current epoch.
  const std::string garbage(64, '\0');
  ASSERT_TRUE(
      nvmm.StorePersistent(Region0DataAddr(0) + 64, garbage.data(), garbage.size()).ok());

  StatsRegistry stats2;
  auto wal2 = WalManager::Mount(&nvmm, 0, kWalBytes, WalOptions{}, &stats2);
  ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
  auto recs = (*wal2)->CommittedRecords();
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());

  // The post-replay recycle must retire the epoch even though the scan put
  // the tail at 0 — otherwise the append below reuses it, and the next
  // recovery runs past the fresh record straight into record 2's stale bytes
  // and replays them over acknowledged data.
  ASSERT_TRUE((*wal2)->ResetAllRegions().ok());
  const std::string c(64, 'c');
  auto t3 = (*wal2)->Append(WalRecordType::kData, 9, 0, 2, c.data(), c.size());
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE((*wal2)->Commit(*t3, true).ok());

  StatsRegistry stats3;
  auto wal3 = WalManager::Mount(&nvmm, 0, kWalBytes, WalOptions{}, &stats3);
  ASSERT_TRUE(wal3.ok()) << wal3.status().ToString();
  auto recs3 = (*wal3)->CommittedRecords();
  ASSERT_TRUE(recs3.ok()) << recs3.status().ToString();
  ASSERT_EQ(1u, recs3->size());
  EXPECT_EQ(9u, (*recs3)[0].ino);
  EXPECT_EQ(c, (*recs3)[0].payload);
}

TEST(WalManagerTest, RegionFullReturnsNoSpace) {
  NvmmDevice nvmm(FastConfig());
  StatsRegistry stats;
  WalOptions opts = TestWalOptions(WalCommitFormat::kChecksum);
  opts.regions = 1;
  auto wal = WalManager::Format(&nvmm, 0, kWalBytes, opts, &stats);
  ASSERT_TRUE(wal.ok());
  const std::string chunk(32 << 10, 'z');
  Status last = OkStatus();
  for (int i = 0; i < 64 && last.ok(); i++) {
    last = (*wal)
               ->Append(WalRecordType::kData, 1, uint64_t(i) * chunk.size(), 0, chunk.data(),
                        chunk.size())
               .status();
  }
  EXPECT_EQ(ErrorCode::kNoSpace, last.code());
  EXPECT_TRUE((*wal)->SpaceLow());
  EXPECT_GE(stats.Get(kStatWalLogFullStalls), 1u);

  // Recycling makes the same append fit again.
  ASSERT_TRUE((*wal)->ResetAllRegions().ok());
  EXPECT_TRUE(
      (*wal)->Append(WalRecordType::kData, 1, 0, 0, chunk.data(), chunk.size()).ok());
}

TEST(WalManagerTest, ConcurrentGroupCommit) {
  NvmmDevice nvmm(FastConfig());
  StatsRegistry stats;
  WalOptions opts = TestWalOptions(WalCommitFormat::kChecksum);
  opts.regions = 1;  // all threads share one region: maximum commit contention
  opts.total_bytes = 4ull << 20;
  auto wal = WalManager::Format(&nvmm, 0, opts.total_bytes, opts, &stats);
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        uint64_t payload = (uint64_t(t) << 32) | uint64_t(i);
        auto ticket = (*wal)->Append(WalRecordType::kData, uint64_t(t) + 1,
                                     uint64_t(i) * 8, 0, &payload, sizeof(payload));
        if (!ticket.ok() || !(*wal)->Commit(*ticket, true).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_EQ(0, failures.load());

  auto recs = (*wal)->CommittedRecords();
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  ASSERT_EQ(size_t(kThreads) * kPerThread, recs->size());
  for (size_t i = 1; i < recs->size(); i++) {
    EXPECT_LT((*recs)[i - 1].seq, (*recs)[i].seq);  // strictly increasing, no dups
  }
  // Every Commit call either led or was absorbed by a concurrent leader.
  EXPECT_EQ(uint64_t(kThreads) * kPerThread,
            stats.Get(kStatWalCommits) + stats.Get(kStatWalGroupAbsorbed));
}

// --- WalFs -------------------------------------------------------------------

struct WalBed {
  std::unique_ptr<NvmmDevice> nvmm;
  std::unique_ptr<WalFs> fs;
  std::unique_ptr<Vfs> vfs;
};

WalBed MakeWalPmfsBed(WalCommitFormat format, bool tracked = true) {
  WalBed bed;
  bed.nvmm = std::make_unique<NvmmDevice>(FastConfig(tracked));
  PmfsOptions popts;
  popts.max_inodes = 1024;
  popts.journal_bytes = 256 << 10;
  popts.device_bytes = kDevBytes - kWalBytes;
  auto inner = PmfsFs::Format(bed.nvmm.get(), popts);
  EXPECT_TRUE(inner.ok()) << inner.status().ToString();
  auto fs = WalFs::Format(std::move(*inner), bed.nvmm.get(), kDevBytes - kWalBytes, kWalBytes,
                          TestWalOptions(format));
  EXPECT_TRUE(fs.ok()) << fs.status().ToString();
  bed.fs = std::move(*fs);
  bed.vfs = std::make_unique<Vfs>(bed.fs.get());
  return bed;
}

// Remounts the crash image in `image` and returns a fresh bed (inner journal
// recovery + WAL replay).
WalBed RemountFromImage(const std::vector<uint8_t>& image) {
  WalBed bed;
  bed.nvmm = std::make_unique<NvmmDevice>(FastConfig(/*tracked=*/true));
  EXPECT_TRUE(bed.nvmm->InstallImage(image.data(), image.size()).ok());
  auto inner = PmfsFs::Mount(bed.nvmm.get());
  EXPECT_TRUE(inner.ok()) << inner.status().ToString();
  auto fs = WalFs::Mount(std::move(*inner), bed.nvmm.get(), kDevBytes - kWalBytes, kWalBytes,
                         TestWalOptions(WalCommitFormat::kChecksum));
  EXPECT_TRUE(fs.ok()) << fs.status().ToString();
  bed.fs = std::move(*fs);
  bed.vfs = std::make_unique<Vfs>(bed.fs.get());
  return bed;
}

TEST(WalFsTest, ReadsMergeOverlayOverInnerFile) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum, /*tracked=*/false);
  ASSERT_TRUE(bed.vfs->WriteFile("/f", "0123456789").ok());
  auto fd = bed.vfs->Open("/f", kRdWr);
  ASSERT_TRUE(fd.ok());
  // Overwrite the middle and extend past EOF with a hole.
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, "XY", 2, 4).ok());
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, "Z", 1, 20).ok());
  auto st = bed.vfs->Fstat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(21u, st->size);
  std::string out = *bed.vfs->ReadFileToString("/f");
  ASSERT_EQ(21u, out.size());
  EXPECT_EQ("0123XY6789", out.substr(0, 10));
  EXPECT_EQ(std::string(10, '\0'), out.substr(10, 10));
  EXPECT_EQ('Z', out[20]);
  ASSERT_TRUE(bed.vfs->Close(*fd).ok());

  // After a checkpoint the inner FS alone must serve the same bytes.
  ASSERT_TRUE(bed.fs->Checkpoint().ok());
  EXPECT_EQ(0u, bed.fs->wal()->PendingBytes());
  std::string drained = *bed.vfs->ReadFileToString("/f");
  EXPECT_EQ(out, drained);
  auto inner_attr = bed.fs->inner()->GetAttr(st->ino);
  ASSERT_TRUE(inner_attr.ok());
  EXPECT_EQ(21u, inner_attr->size);
}

TEST(WalFsTest, FsyncedWriteSurvivesCrashViaReplay) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum);
  auto fd = bed.vfs->Open("/durable", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  const std::string payload = "committed by fsync through the wal";
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, payload.data(), payload.size(), 0).ok());
  ASSERT_TRUE(bed.vfs->Fsync(*fd).ok());

  // A later un-synced write may be lost by the crash; it must not resurrect
  // as garbage either (it simply was never committed).
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, "volatile", 8, 4096).ok());

  auto image = bed.nvmm->CloneCrashImage();
  ASSERT_TRUE(image.ok());
  WalBed after = RemountFromImage(*image);
  EXPECT_GE(after.fs->stats().Get(kStatWalReplayedRecords), 1u);
  std::string out = *after.vfs->ReadFileToString("/durable");
  EXPECT_EQ(payload, out);
}

TEST(WalFsTest, FsyncRetiresOnlyCommittedPendingEntries) {
  // The first fsync must leave the pending bookkeeping usable (entries are
  // copied and retired after the commit succeeds, not swapped out), so the
  // second write re-registers and the second fsync commits it.
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum);
  auto fd = bed.vfs->Open("/seq", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, "one", 3, 0).ok());
  ASSERT_TRUE(bed.vfs->Fsync(*fd).ok());
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, "two", 3, 100).ok());
  ASSERT_TRUE(bed.vfs->Fsync(*fd).ok());

  auto image = bed.nvmm->CloneCrashImage();
  ASSERT_TRUE(image.ok());
  WalBed after = RemountFromImage(*image);
  auto out = after.vfs->ReadFileToString("/seq");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(103u, out->size());
  EXPECT_EQ("one", out->substr(0, 3));
  EXPECT_EQ("two", out->substr(100, 3));
}

TEST(WalFsTest, FsyncCoversDirectBufferedWritesIntoInner) {
  // The direct pass-through for large in-place overwrites hands BUFFERED
  // writes to the inner FS, where HiNFS parks them in its volatile DRAM
  // write buffer. An fsync that finds logged records must still forward to
  // the inner FS, or the acknowledged bypass bytes die in the crash.
  auto nvmm = std::make_unique<NvmmDevice>(FastConfig(/*tracked=*/true));
  HinfsOptions hopts;
  hopts.buffer_bytes = 1 << 20;
  PmfsOptions popts;
  popts.max_inodes = 1024;
  popts.journal_bytes = 256 << 10;
  popts.device_bytes = kDevBytes - kWalBytes;
  auto inner = HinfsFs::Format(nvmm.get(), hopts, popts);
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  auto fs = WalFs::Format(std::move(*inner), nvmm.get(), kDevBytes - kWalBytes, kWalBytes,
                          TestWalOptions(WalCommitFormat::kChecksum));
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  Vfs vfs(fs->get());

  // Materialize /db at 8 KB in the inner FS and drop its overlay, so the
  // next large in-place overwrite takes the direct bypass.
  auto fd = vfs.Open("/db", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  const std::string base(8192, 'o');
  ASSERT_TRUE(vfs.Pwrite(*fd, base.data(), base.size(), 0).ok());
  ASSERT_TRUE((*fs)->Checkpoint().ok());

  const std::string fresh(4096, 'n');
  ASSERT_TRUE(vfs.Pwrite(*fd, fresh.data(), fresh.size(), 0).ok());
  EXPECT_GE((*fs)->stats().Get(kStatWalDirectWrites), 1u);
  ASSERT_TRUE(vfs.Pwrite(*fd, "x", 1, 5000).ok());  // logged: pending is non-empty
  ASSERT_TRUE(vfs.Fsync(*fd).ok());

  auto image = nvmm->CloneCrashImage();
  ASSERT_TRUE(image.ok());
  auto dev2 = std::make_unique<NvmmDevice>(FastConfig(/*tracked=*/true));
  ASSERT_TRUE(dev2->InstallImage(image->data(), image->size()).ok());
  auto inner2 = HinfsFs::Mount(dev2.get(), hopts);
  ASSERT_TRUE(inner2.ok()) << inner2.status().ToString();
  auto fs2 = WalFs::Mount(std::move(*inner2), dev2.get(), kDevBytes - kWalBytes, kWalBytes,
                          TestWalOptions(WalCommitFormat::kChecksum));
  ASSERT_TRUE(fs2.ok()) << fs2.status().ToString();
  Vfs vfs2(fs2->get());
  auto out = vfs2.ReadFileToString("/db");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(8192u, out->size());
  EXPECT_EQ(fresh, out->substr(0, fresh.size())) << "fsync-acknowledged bypass bytes lost";
  EXPECT_EQ('x', (*out)[5000]);
}

TEST(WalFsTest, UnlinkedFileRecordsAreSkippedAtReplay) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum);
  // Commit records for /victim, then unlink it. The records stay in the log;
  // replay must drop them (inode freed — generation/liveness check).
  auto fd = bed.vfs->Open("/victim", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, "doomed", 6, 0).ok());
  ASSERT_TRUE(bed.vfs->Fsync(*fd).ok());
  ASSERT_TRUE(bed.vfs->Close(*fd).ok());
  ASSERT_TRUE(bed.vfs->Unlink("/victim").ok());

  // Reuse the inode slot: a new file that must NOT receive /victim's bytes.
  auto fd2 = bed.vfs->Open("/fresh", kRdWr | kCreate);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(bed.vfs->Fsync(*fd2).ok());

  auto image = bed.nvmm->CloneCrashImage();
  ASSERT_TRUE(image.ok());
  WalBed after = RemountFromImage(*image);
  EXPECT_FALSE(after.vfs->Exists("/victim").value_or(true));
  auto fresh = after.vfs->ReadFileToString("/fresh");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->empty());
  EXPECT_GE(after.fs->stats().Get(kStatWalReplaySkippedRecords), 1u);
}

TEST(WalFsTest, TruncateRecordReplaysAndSuppressesRegrow) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum);
  auto fd = bed.vfs->Open("/t", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  const std::string big(8192, 'q');
  ASSERT_TRUE(bed.vfs->Pwrite(*fd, big.data(), big.size(), 0).ok());
  ASSERT_TRUE(bed.vfs->Fsync(*fd).ok());
  ASSERT_TRUE(bed.vfs->Ftruncate(*fd, 100).ok());
  auto st = bed.vfs->Fstat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(100u, st->size);

  auto image = bed.nvmm->CloneCrashImage();
  ASSERT_TRUE(image.ok());
  WalBed after = RemountFromImage(*image);
  auto out = after.vfs->ReadFileToString("/t");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(100u, out->size());  // the 8 KB of logged data must not regrow it
  EXPECT_EQ(std::string(100, 'q'), *out);
}

TEST(WalFsTest, LogFullWriteCheckpointsAndRetries) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum, /*tracked=*/false);
  auto fd = bed.vfs->Open("/big", kRdWr | kCreate | kSync);
  ASSERT_TRUE(fd.ok());
  // Far more sync-write bytes than the whole 1 MB carve: forces the
  // checkpoint-and-retry path repeatedly.
  const std::string chunk(64 << 10, 'w');
  for (int i = 0; i < 40; i++) {
    auto n = bed.vfs->Pwrite(*fd, chunk.data(), chunk.size(), uint64_t(i) * chunk.size());
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(chunk.size(), *n);
  }
  auto st = bed.vfs->Fstat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(40u * (64u << 10), st->size);
  EXPECT_GE(bed.fs->stats().Get(kStatWalCheckpoints), 1u);
  std::string out = *bed.vfs->ReadFileToString("/big");
  EXPECT_EQ(st->size, out.size());
  EXPECT_EQ(chunk, out.substr(0, chunk.size()));
}

TEST(WalFsTest, UnmountDrainsEverythingIntoInner) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum, /*tracked=*/false);
  ASSERT_TRUE(bed.vfs->WriteFile("/u", "drain me").ok());
  ASSERT_TRUE(bed.vfs->Unmount().ok());
  EXPECT_EQ(0u, bed.fs->wal()->PendingBytes());
  // The inner FS must be independently remountable with the data in place.
  auto inner = PmfsFs::Mount(bed.nvmm.get());
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  Vfs inner_vfs(inner->get());
  EXPECT_EQ("drain me", *inner_vfs.ReadFileToString("/u"));
}

TEST(WalFsTest, ConcurrentWritersAndFsyncs) {
  WalBed bed = MakeWalPmfsBed(WalCommitFormat::kChecksum, /*tracked=*/false);
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      const std::string path = "/c" + std::to_string(t);
      auto fd = bed.vfs->Open(path, kRdWr | kCreate);
      if (!fd.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::string block(512, char('a' + t));
      for (int i = 0; i < kWritesPerThread; i++) {
        if (!bed.vfs->Pwrite(*fd, block.data(), block.size(), uint64_t(i) * block.size()).ok() ||
            !bed.vfs->Fdatasync(*fd).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      bed.vfs->Close(*fd).ok();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_EQ(0, failures.load());
  ASSERT_TRUE(bed.fs->Checkpoint().ok());
  for (int t = 0; t < kThreads; t++) {
    auto out = bed.vfs->ReadFileToString("/c" + std::to_string(t));
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(size_t(kWritesPerThread) * 512, out->size());
    EXPECT_EQ(std::string(512, char('a' + t)), out->substr(0, 512));
  }
}

TEST(WalFsTest, TestBedWalVariantsMountForEveryBaseline) {
  for (FsKind kind : {FsKind::kPmfs, FsKind::kHinfs, FsKind::kExt4Dax}) {
    TestBedConfig cfg;
    cfg.nvmm = FastConfig();
    cfg.pmfs.max_inodes = 1024;
    cfg.pmfs.journal_bytes = 256 << 10;
    cfg.hinfs.buffer_bytes = 1 << 20;
    cfg.hinfs.wal.regions = 2;
    cfg.hinfs.wal.total_bytes = kWalBytes;  // 32 MB test device: default carve is too big
    cfg.hinfs.wal.checkpoint_ms = 0;
    cfg.wal = true;
    auto bed = MakeTestBed(kind, cfg);
    ASSERT_TRUE(bed.ok()) << FsKindName(kind) << ": " << bed.status().ToString();
    EXPECT_TRUE((*bed)->fs->SupportsLoggedDurability());
    EXPECT_NE(std::string::npos, (*bed)->fs->Name().find("+wal")) << (*bed)->fs->Name();
    auto fd = (*bed)->vfs->Open("/smoke", kRdWr | kCreate);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE((*bed)->vfs->Pwrite(*fd, "hello", 5, 0).ok());
    ASSERT_TRUE((*bed)->vfs->Fsync(*fd).ok());
    EXPECT_EQ("hello", *(*bed)->vfs->ReadFileToString("/smoke"));
    ASSERT_TRUE((*bed)->vfs->Unmount().ok());
  }
}

}  // namespace
}  // namespace hinfs
