# Empty compiler generated dependencies file for hinfs_vfs.
# This may be replaced when dependencies are built.
