file(REMOVE_RECURSE
  "libhinfs_pmfs.a"
)
