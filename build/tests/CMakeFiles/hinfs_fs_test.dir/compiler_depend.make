# Empty compiler generated dependencies file for hinfs_fs_test.
# This may be replaced when dependencies are built.
