#include <gtest/gtest.h>

#include "src/hinfs/cacheline_bitmap.h"

namespace hinfs {
namespace {

TEST(LineMaskTest, SingleByte) {
  EXPECT_EQ(LineMaskFor(0, 1), 0x1ull);
  EXPECT_EQ(LineMaskFor(63, 1), 0x1ull);
  EXPECT_EQ(LineMaskFor(64, 1), 0x2ull);
  EXPECT_EQ(LineMaskFor(4095, 1), 1ull << 63);
}

TEST(LineMaskTest, PaperExample) {
  // A write to bytes 0..112 touches lines 0 and 1.
  EXPECT_EQ(LineMaskFor(0, 112), 0x3ull);
  // Line 0 (0..64) is fully covered; line 1 (64..128) only partially.
  EXPECT_EQ(FullLineMaskFor(0, 112), 0x1ull);
}

TEST(LineMaskTest, WholeBlock) {
  EXPECT_EQ(LineMaskFor(0, 4096), ~0ull);
  EXPECT_EQ(FullLineMaskFor(0, 4096), ~0ull);
}

TEST(LineMaskTest, EmptyLen) {
  EXPECT_EQ(LineMaskFor(100, 0), 0u);
  EXPECT_EQ(FullLineMaskFor(100, 0), 0u);
}

TEST(LineMaskTest, UnalignedMiddle) {
  // [100, 300): lines 1..4 touched; lines 2..3 fully covered ([128,256)).
  EXPECT_EQ(LineMaskFor(100, 200), 0b11110ull);
  EXPECT_EQ(FullLineMaskFor(100, 200), 0b01100ull);
}

TEST(LineMaskTest, SubLineWriteHasNoFullLines) {
  EXPECT_EQ(FullLineMaskFor(10, 20), 0u);
  EXPECT_EQ(LineMaskFor(10, 20), 0x1ull);
}

TEST(LineMaskTest, AlignedLineIsFull) {
  EXPECT_EQ(FullLineMaskFor(64, 64), 0x2ull);
  EXPECT_EQ(LineMaskFor(64, 64), 0x2ull);
}

TEST(NextRunTest, FindsRuns) {
  LineRun run;
  // mask = lines 1,2,3 and 6.
  const uint64_t mask = 0b1001110;
  ASSERT_TRUE(NextRun(mask, 0, &run));
  EXPECT_EQ(run.first_line, 1u);
  EXPECT_EQ(run.count, 3u);
  ASSERT_TRUE(NextRun(mask, run.first_line + run.count, &run));
  EXPECT_EQ(run.first_line, 6u);
  EXPECT_EQ(run.count, 1u);
  EXPECT_FALSE(NextRun(mask, run.first_line + run.count, &run));
}

TEST(NextRunTest, EmptyMask) {
  LineRun run;
  EXPECT_FALSE(NextRun(0, 0, &run));
}

TEST(NextRunTest, FullMask) {
  LineRun run;
  ASSERT_TRUE(NextRun(~0ull, 0, &run));
  EXPECT_EQ(run.first_line, 0u);
  EXPECT_EQ(run.count, 64u);
  EXPECT_FALSE(NextRun(~0ull, 64, &run));
}

TEST(NextRunTest, HighBit) {
  LineRun run;
  ASSERT_TRUE(NextRun(1ull << 63, 0, &run));
  EXPECT_EQ(run.first_line, 63u);
  EXPECT_EQ(run.count, 1u);
}

TEST(CountLinesTest, Counts) {
  EXPECT_EQ(CountLines(0), 0);
  EXPECT_EQ(CountLines(~0ull), 64);
  EXPECT_EQ(CountLines(0b1011), 3);
}

// Property: every offset/len combination decomposes consistently.
class MaskPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MaskPropertyTest, FullSubsetOfTouched) {
  const size_t offset = GetParam();
  for (size_t len = 1; offset + len <= kBlockSize; len += 97) {
    const uint64_t touch = LineMaskFor(offset, len);
    const uint64_t full = FullLineMaskFor(offset, len);
    EXPECT_EQ(full & ~touch, 0u) << offset << "+" << len;
    // Touched lines must cover exactly ceil/floor boundaries.
    EXPECT_EQ(CountLines(touch),
              static_cast<int>((offset + len - 1) / kCachelineSize - offset / kCachelineSize + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, MaskPropertyTest,
                         ::testing::Values(0, 1, 63, 64, 65, 100, 2048, 4030));

}  // namespace
}  // namespace hinfs
