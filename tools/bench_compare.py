#!/usr/bin/env python3
"""Diff two bench --json outputs and flag wall-clock regressions.

Both inputs use the unified row model every bench under bench/ emits (or
google-benchmark's native JSON from micro_primitives); rows are matched on
(fs, personality, x_key, x, value_key, tenant) and compared:

    tools/bench_compare.py perf/BENCH_fig08.pre.json perf/BENCH_fig08.post.json
    tools/bench_compare.py a.json b.json --threshold 10 --fail-on-regression

The metric direction is inferred from the value_key name (ops_per_sec /
throughput are higher-is-better; *_ns / *_ms / latency are lower-is-better).
A change worse than --threshold percent is a REGRESSION and makes the exit
code 1 (the CI gate); --report-only keeps the report but always exits 0.
Comparing disjoint files is a configuration bug, so matching zero rows also
fails unless --report-only. Rows present on only one side are listed but
never fatal.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from plot_bench import load_rows  # noqa: E402  (same row model as the plotter)

LOWER_IS_BETTER = ("_ns", "_ms", "_us", "latency", "time", "seconds", "bytes_written")
HIGHER_IS_BETTER = ("per_sec", "ops", "throughput", "mb_s", "iops")


def higher_is_better(value_key):
    key = value_key.lower()
    for marker in HIGHER_IS_BETTER:
        if marker in key:
            return True
    for marker in LOWER_IS_BETTER:
        if marker in key:
            return False
    return True  # benches mostly report rates; default optimistically


def row_key(r):
    # The tenant id (from multi-tenant benches like fig14) is part of row
    # identity: the same metric measured for different QoS buckets must not
    # collapse into one comparison row. Untagged rows carry -1.
    return (r["fs"], r["personality"], r["x_key"], r["x"], r["value_key"],
            r.get("tenant", -1))


def split_csv(values):
    out = []
    for v in values:
        out.extend(tok.strip().lower() for tok in v.split(",") if tok.strip())
    return out


def make_row_filter(args):
    """Builds a predicate over normalized rows from --fs/--personality/--threads."""
    fs = split_csv(args.fs)
    personality = split_csv(args.personality)
    threads = set()
    for tok in split_csv(args.threads):
        try:
            threads.add(float(tok))
        except ValueError:
            raise SystemExit(f"error: --threads wants numbers, got {tok!r}")
    tenants = set()
    for tok in split_csv(args.tenant):
        try:
            tenants.add(int(tok))
        except ValueError:
            raise SystemExit(f"error: --tenant wants integers, got {tok!r}")

    def keep(r):
        if tenants and r.get("tenant", -1) not in tenants:
            return False
        if fs and not any(w in r["fs"].lower() for w in fs):
            return False
        if personality and not any(w in r["personality"].lower() for w in personality):
            return False
        # --threads filters on the sweep variable whatever its name (threads,
        # io_size, ...): a row matches when its x coordinate is listed.
        if threads and r["x"] not in threads:
            return False
        return True

    return keep


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="bench --json output to compare against")
    ap.add_argument("candidate", help="bench --json output being evaluated")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="percent change considered a regression (default 5)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--fs", action="append", default=[], metavar="NAME",
                    help="only compare rows whose fs matches (case-insensitive "
                         "substring; repeatable / comma-separated)")
    ap.add_argument("--personality", action="append", default=[], metavar="NAME",
                    help="only compare rows whose personality matches "
                         "(case-insensitive substring; repeatable / comma-separated)")
    ap.add_argument("--threads", action="append", default=[], metavar="N",
                    help="only compare rows at these thread counts "
                         "(repeatable / comma-separated)")
    ap.add_argument("--tenant", action="append", default=[], metavar="ID",
                    help="only compare rows tagged with these QoS tenant ids "
                         "(repeatable / comma-separated)")
    ap.add_argument("--top", type=int, default=0, metavar="N",
                    help="after the full table, print the N worst regressions "
                         "as a summary")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help=argparse.SUPPRESS)  # now the default; kept for old callers
    args = ap.parse_args()

    row_filter = make_row_filter(args)
    base = {row_key(r): r["value"] for r in load_rows(args.baseline) if row_filter(r)}
    cand = {row_key(r): r["value"] for r in load_rows(args.candidate) if row_filter(r)}

    regressions = []
    improvements = []
    lines = []
    for key in sorted(base.keys() & cand.keys()):
        fs, personality, x_key, x, value_key, tenant = key
        b, c = base[key], cand[key]
        if b == 0:
            continue
        pct = (c - b) / b * 100.0
        gain = pct if higher_is_better(value_key) else -pct
        tag = ""
        if gain <= -args.threshold:
            tag = "REGRESSION"
            regressions.append((gain, pct, key, b, c))
        elif gain >= args.threshold:
            tag = "improved"
            improvements.append(key)
        label = fs if tenant < 0 else f"{fs}[t{tenant}]"
        lines.append(f"  {label:<12} {personality:<12} {x_key}={x:<8g} "
                     f"{value_key:<16} {b:>14.3f} -> {c:>14.3f}  "
                     f"{pct:+7.2f}%  {tag}")

    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    print(f"matched {len(base.keys() & cand.keys())} rows "
          f"(threshold {args.threshold:g}%)")
    for line in lines:
        print(line)

    only_base = base.keys() - cand.keys()
    only_cand = cand.keys() - base.keys()
    if only_base:
        print(f"only in baseline: {len(only_base)} rows")
    if only_cand:
        print(f"only in candidate: {len(only_cand)} rows")

    print(f"\n{len(regressions)} regression(s), {len(improvements)} improvement(s)")
    if args.top > 0 and regressions:
        print(f"\nworst {min(args.top, len(regressions))} regression(s):")
        for gain, pct, key, b, c in sorted(regressions)[:args.top]:
            fs, personality, x_key, x, value_key, tenant = key
            label = fs if tenant < 0 else f"{fs}[t{tenant}]"
            print(f"  {label:<12} {personality:<12} {x_key}={x:<8g} "
                  f"{value_key:<16} {b:>14.3f} -> {c:>14.3f}  {pct:+7.2f}%")
    if args.report_only:
        return 0
    if not base.keys() & cand.keys():
        print("error: no rows matched between baseline and candidate", file=sys.stderr)
        return 1
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
