#include "src/fs/blockfs/block_fs.h"

#include <algorithm>
#include <cstring>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/fs/pmfs/layout.h"

namespace hinfs {
namespace {

constexpr uint64_t kBlockFsMagic = 0x424c4b46532e3031ull;    // "BLKFS.01"
constexpr uint64_t kJournalDescMagic = 0x4a444553432e3031ull;  // desc block
constexpr uint64_t kJournalCommitMagic = 0x4a434d54302e3031ull;  // commit block

constexpr size_t kPtrsPerBlock = kBlockSize / sizeof(uint64_t);
constexpr size_t kInodesPerBlock = kBlockSize / 128;

struct JournalDesc {
  uint64_t magic;
  uint64_t seq;
  uint64_t count;
  uint64_t targets[kPtrsPerBlock - 3];
};
static_assert(sizeof(JournalDesc) == kBlockSize);

struct JournalCommit {
  uint64_t magic;
  uint64_t seq;
  uint8_t pad[kBlockSize - 16];
};
static_assert(sizeof(JournalCommit) == kBlockSize);

uint64_t DivUp(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

bool BitGet(const std::vector<uint8_t>& bm, uint64_t i) {
  return (bm[i / 8] & (1u << (i % 8))) != 0;
}
void BitSet(std::vector<uint8_t>& bm, uint64_t i, bool v) {
  if (v) {
    bm[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  } else {
    bm[i / 8] &= static_cast<uint8_t>(~(1u << (i % 8)));
  }
}

}  // namespace

BlockFs::BlockFs(BlockDevice* dev, const BlockFsOptions& options) : dev_(dev), options_(options) {
  if (!options_.journal) {
    options_.dax = false;  // DAX baseline is the journaling ext4 variant
  }
}

std::string BlockFs::Name() const {
  if (options_.dax) {
    return "ext4-dax";
  }
  return options_.journal ? "ext4-nvmmbd" : "ext2-nvmmbd";
}

Result<std::unique_ptr<BlockFs>> BlockFs::Format(BlockDevice* dev, const BlockFsOptions& options) {
  std::unique_ptr<BlockFs> fs(new BlockFs(dev, options));
  HINFS_RETURN_IF_ERROR(fs->InitFormat());
  return fs;
}

Result<std::unique_ptr<BlockFs>> BlockFs::Mount(BlockDevice* dev, const BlockFsOptions& options) {
  std::unique_ptr<BlockFs> fs(new BlockFs(dev, options));
  HINFS_RETURN_IF_ERROR(fs->InitMount());
  return fs;
}

Status BlockFs::InitFormat() {
  const uint64_t total = dev_->num_blocks();
  Super sb{};
  sb.magic = kBlockFsMagic;
  sb.total_blocks = total;
  sb.journal_start = 1;
  sb.journal_blocks = options_.journal ? options_.journal_blocks : 0;
  sb.inode_table_start = sb.journal_start + sb.journal_blocks;
  sb.max_inodes = options_.max_inodes;
  const uint64_t inode_blocks = DivUp(sb.max_inodes, kInodesPerBlock);
  sb.inode_bitmap_start = sb.inode_table_start + inode_blocks;
  const uint64_t ibm_blocks = DivUp(DivUp(sb.max_inodes, 8), kBlockSize);
  sb.block_bitmap_start = sb.inode_bitmap_start + ibm_blocks;

  uint64_t data_blocks = total - sb.block_bitmap_start;
  while (true) {
    const uint64_t bbm_blocks = DivUp(DivUp(data_blocks, 8), kBlockSize);
    const uint64_t data_start = sb.block_bitmap_start + bbm_blocks;
    if (data_start + data_blocks <= total) {
      sb.data_start = data_start;
      sb.data_blocks = data_blocks;
      break;
    }
    if (data_blocks == 0) {
      return Status(ErrorCode::kNoSpace, "device too small");
    }
    data_blocks--;
  }
  sb.checkpoint_seq = 0;
  sb.clean_unmount = 0;
  sb_ = sb;

  std::vector<uint8_t> zero(kBlockSize, 0);
  // Zero the inode table and bitmaps (direct device writes at format time).
  for (uint64_t b = sb.inode_table_start; b < sb.data_start; b++) {
    HINFS_RETURN_IF_ERROR(dev_->WriteBlock(b, zero.data()));
  }

  // Superblock.
  std::vector<uint8_t> sb_block(kBlockSize, 0);
  std::memcpy(sb_block.data(), &sb_, sizeof(sb_));
  HINFS_RETURN_IF_ERROR(dev_->WriteBlock(0, sb_block.data()));

  PageCacheConfig cache_cfg;
  cache_cfg.capacity_pages = options_.page_cache_pages;
  // Dirty throttling calibrated to stand in for the kernel flusher at bench
  // timescales (~5 % of the cache, like dirty_background_ratio): sustained
  // writers are paced by device writeback, as they are at the paper's 60 s
  // scale.
  cache_cfg.max_dirty_pages =
      options_.page_cache_pages > 0 ? std::max<size_t>(options_.page_cache_pages / 20, 4) : 16384;
  cache_ = std::make_unique<PageCache>(dev_, cache_cfg);

  block_bitmap_.assign(DivUp(sb.data_blocks, 8), 0);
  inode_bitmap_.assign(DivUp(sb.max_inodes, 8), 0);
  free_data_blocks_ = sb.data_blocks;

  // Root directory.
  std::lock_guard<std::mutex> lock(mu_);
  BitSet(inode_bitmap_, 0, true);  // ino 1 -> bit 0
  HINFS_RETURN_IF_ERROR(
      WriteMeta(sb_.inode_bitmap_start, 0, inode_bitmap_.data(), 1));
  DiskInode root{};
  root.ino = kRootIno;
  root.type = static_cast<uint8_t>(FileType::kDirectory);
  root.nlink = 2;
  root.mtime_ns = MonotonicNowNs();
  HINFS_RETURN_IF_ERROR(StoreInodeLocked(root));
  HINFS_RETURN_IF_ERROR(CommitJournalLocked());
  return OkStatus();
}

Status BlockFs::InitMount() {
  std::vector<uint8_t> sb_block(kBlockSize);
  HINFS_RETURN_IF_ERROR(dev_->ReadBlock(0, sb_block.data()));
  std::memcpy(&sb_, sb_block.data(), sizeof(sb_));
  if (sb_.magic != kBlockFsMagic) {
    return Status(ErrorCode::kCorrupt, "bad blockfs superblock");
  }

  if (options_.journal && sb_.journal_blocks > 0) {
    HINFS_RETURN_IF_ERROR(ReplayJournal());
  }

  PageCacheConfig cache_cfg;
  cache_cfg.capacity_pages = options_.page_cache_pages;
  // Dirty throttling calibrated to stand in for the kernel flusher at bench
  // timescales (~5 % of the cache, like dirty_background_ratio): sustained
  // writers are paced by device writeback, as they are at the paper's 60 s
  // scale.
  cache_cfg.max_dirty_pages =
      options_.page_cache_pages > 0 ? std::max<size_t>(options_.page_cache_pages / 20, 4) : 16384;
  cache_ = std::make_unique<PageCache>(dev_, cache_cfg);

  // Load bitmap mirrors.
  block_bitmap_.assign(DivUp(sb_.data_blocks, 8), 0);
  inode_bitmap_.assign(DivUp(sb_.max_inodes, 8), 0);
  for (size_t i = 0; i < block_bitmap_.size(); i += kBlockSize) {
    const size_t chunk = std::min(block_bitmap_.size() - i, kBlockSize);
    HINFS_RETURN_IF_ERROR(
        ReadMeta(sb_.block_bitmap_start + i / kBlockSize, 0, block_bitmap_.data() + i, chunk));
  }
  for (size_t i = 0; i < inode_bitmap_.size(); i += kBlockSize) {
    const size_t chunk = std::min(inode_bitmap_.size() - i, kBlockSize);
    HINFS_RETURN_IF_ERROR(
        ReadMeta(sb_.inode_bitmap_start + i / kBlockSize, 0, inode_bitmap_.data() + i, chunk));
  }
  free_data_blocks_ = 0;
  for (uint64_t b = 0; b < sb_.data_blocks; b++) {
    if (!BitGet(block_bitmap_, b)) {
      free_data_blocks_++;
    }
  }
  return OkStatus();
}

Status BlockFs::ReplayJournal() {
  uint64_t pos = 0;
  uint64_t replayed = 0;
  std::vector<uint8_t> buf(kBlockSize);
  while (pos + 2 <= sb_.journal_blocks) {
    HINFS_RETURN_IF_ERROR(dev_->ReadBlock(sb_.journal_start + pos, buf.data()));
    JournalDesc desc;
    std::memcpy(&desc, buf.data(), sizeof(desc));
    if (desc.magic != kJournalDescMagic || desc.seq <= sb_.checkpoint_seq ||
        desc.count > kPtrsPerBlock - 3 || pos + 1 + desc.count + 1 > sb_.journal_blocks) {
      break;
    }
    // Check the commit record before replaying.
    HINFS_RETURN_IF_ERROR(dev_->ReadBlock(sb_.journal_start + pos + 1 + desc.count, buf.data()));
    JournalCommit commit;
    std::memcpy(&commit, buf.data(), sizeof(uint64_t) * 2);
    if (commit.magic != kJournalCommitMagic || commit.seq != desc.seq) {
      break;  // torn transaction at the tail: stop
    }
    for (uint64_t i = 0; i < desc.count; i++) {
      HINFS_RETURN_IF_ERROR(dev_->ReadBlock(sb_.journal_start + pos + 1 + i, buf.data()));
      HINFS_RETURN_IF_ERROR(dev_->WriteBlock(desc.targets[i], buf.data()));
    }
    pos += 1 + desc.count + 1;
    replayed++;
    next_seq_ = desc.seq + 1;
    journal_head_ = pos;
  }
  if (replayed > 0) {
    HINFS_LOG_INFO("blockfs journal replayed %llu transaction(s)",
                   static_cast<unsigned long long>(replayed));
  }
  return OkStatus();
}

// --- metadata I/O -----------------------------------------------------------------

Status BlockFs::ReadMeta(uint64_t block, size_t offset, void* dst, size_t len) {
  return cache_->Read(block, offset, dst, len);
}

Status BlockFs::WriteMeta(uint64_t block, size_t offset, const void* src, size_t len) {
  HINFS_RETURN_IF_ERROR(cache_->Write(block, offset, src, len));
  dirty_meta_blocks_.insert(block);
  return OkStatus();
}

uint64_t BlockFs::InodeBlock(uint64_t ino) const {
  return sb_.inode_table_start + (ino - 1) / kInodesPerBlock;
}

size_t BlockFs::InodeOffsetInBlock(uint64_t ino) const {
  return ((ino - 1) % kInodesPerBlock) * sizeof(DiskInode);
}

Result<BlockFs::DiskInode> BlockFs::LoadInodeLocked(uint64_t ino) {
  if (ino == 0 || ino > sb_.max_inodes) {
    return Status(ErrorCode::kInvalidArgument, "bad ino");
  }
  DiskInode inode;
  HINFS_RETURN_IF_ERROR(ReadMeta(InodeBlock(ino), InodeOffsetInBlock(ino), &inode, sizeof(inode)));
  if (inode.ino != ino) {
    return Status(ErrorCode::kNotFound, "stale inode");
  }
  return inode;
}

Status BlockFs::StoreInodeLocked(const DiskInode& inode) {
  return WriteMeta(InodeBlock(inode.ino), InodeOffsetInBlock(inode.ino), &inode, sizeof(inode));
}

// --- allocators -------------------------------------------------------------------

Result<uint64_t> BlockFs::AllocBlockLocked() {
  if (free_data_blocks_ == 0) {
    return Status(ErrorCode::kNoSpace, "no free blocks");
  }
  for (uint64_t i = 0; i < sb_.data_blocks; i++) {
    const uint64_t b = (block_hint_ + i) % sb_.data_blocks;
    if (!BitGet(block_bitmap_, b)) {
      BitSet(block_bitmap_, b, true);
      block_hint_ = b + 1;
      free_data_blocks_--;
      const uint64_t byte = b / 8;
      HINFS_RETURN_IF_ERROR(WriteMeta(sb_.block_bitmap_start + byte / kBlockSize,
                                      byte % kBlockSize, &block_bitmap_[byte], 1));
      return sb_.data_start + b;
    }
  }
  return Status(ErrorCode::kNoSpace, "bitmap scan failed");
}

Status BlockFs::FreeBlockLocked(uint64_t block) {
  if (block < sb_.data_start || block >= sb_.data_start + sb_.data_blocks) {
    return Status(ErrorCode::kOutOfRange, "free of non-data block");
  }
  const uint64_t b = block - sb_.data_start;
  if (!BitGet(block_bitmap_, b)) {
    return Status(ErrorCode::kInvalidArgument, "double free");
  }
  BitSet(block_bitmap_, b, false);
  free_data_blocks_++;
  const uint64_t byte = b / 8;
  return WriteMeta(sb_.block_bitmap_start + byte / kBlockSize, byte % kBlockSize,
                   &block_bitmap_[byte], 1);
}

Result<uint64_t> BlockFs::AllocInoLocked() {
  for (uint64_t i = 0; i < sb_.max_inodes; i++) {
    if (!BitGet(inode_bitmap_, i)) {
      BitSet(inode_bitmap_, i, true);
      const uint64_t byte = i / 8;
      HINFS_RETURN_IF_ERROR(WriteMeta(sb_.inode_bitmap_start + byte / kBlockSize,
                                      byte % kBlockSize, &inode_bitmap_[byte], 1));
      return i + 1;
    }
  }
  return Status(ErrorCode::kNoSpace, "out of inodes");
}

Status BlockFs::FreeInoLocked(uint64_t ino) {
  const uint64_t i = ino - 1;
  BitSet(inode_bitmap_, i, false);
  const uint64_t byte = i / 8;
  return WriteMeta(sb_.inode_bitmap_start + byte / kBlockSize, byte % kBlockSize,
                   &inode_bitmap_[byte], 1);
}

// --- block mapping -----------------------------------------------------------------

Result<uint64_t> BlockFs::MapLocked(DiskInode& inode, uint64_t file_block, bool alloc) {
  auto get_or_alloc_slot = [&](uint64_t meta_block, size_t slot) -> Result<uint64_t> {
    uint64_t val;
    HINFS_RETURN_IF_ERROR(ReadMeta(meta_block, slot * sizeof(uint64_t), &val, sizeof(val)));
    if (val == 0 && alloc) {
      HINFS_ASSIGN_OR_RETURN(val, AllocBlockLocked());
      HINFS_RETURN_IF_ERROR(WriteMeta(meta_block, slot * sizeof(uint64_t), &val, sizeof(val)));
    }
    return val;
  };

  if (file_block < kDirectPtrs) {
    uint64_t val = inode.direct[file_block];
    if (val == 0 && alloc) {
      HINFS_ASSIGN_OR_RETURN(val, AllocBlockLocked());
      inode.direct[file_block] = val;
      HINFS_RETURN_IF_ERROR(StoreInodeLocked(inode));
    }
    return val;
  }

  uint64_t idx = file_block - kDirectPtrs;
  if (idx < kPtrsPerBlock) {
    if (inode.indirect == 0) {
      if (!alloc) {
        return 0;
      }
      HINFS_ASSIGN_OR_RETURN(inode.indirect, AllocBlockLocked());
      std::vector<uint8_t> zero(kBlockSize, 0);
      HINFS_RETURN_IF_ERROR(WriteMeta(inode.indirect, 0, zero.data(), kBlockSize));
      HINFS_RETURN_IF_ERROR(StoreInodeLocked(inode));
    }
    return get_or_alloc_slot(inode.indirect, idx);
  }

  idx -= kPtrsPerBlock;
  if (idx >= kPtrsPerBlock * kPtrsPerBlock) {
    return Status(ErrorCode::kOutOfRange, "file too large for blockfs");
  }
  if (inode.dindirect == 0) {
    if (!alloc) {
      return 0;
    }
    HINFS_ASSIGN_OR_RETURN(inode.dindirect, AllocBlockLocked());
    std::vector<uint8_t> zero(kBlockSize, 0);
    HINFS_RETURN_IF_ERROR(WriteMeta(inode.dindirect, 0, zero.data(), kBlockSize));
    HINFS_RETURN_IF_ERROR(StoreInodeLocked(inode));
  }
  const size_t outer = idx / kPtrsPerBlock;
  const size_t inner = idx % kPtrsPerBlock;
  uint64_t l2;
  HINFS_RETURN_IF_ERROR(ReadMeta(inode.dindirect, outer * sizeof(uint64_t), &l2, sizeof(l2)));
  if (l2 == 0) {
    if (!alloc) {
      return 0;
    }
    HINFS_ASSIGN_OR_RETURN(l2, AllocBlockLocked());
    std::vector<uint8_t> zero(kBlockSize, 0);
    HINFS_RETURN_IF_ERROR(WriteMeta(l2, 0, zero.data(), kBlockSize));
    HINFS_RETURN_IF_ERROR(WriteMeta(inode.dindirect, outer * sizeof(uint64_t), &l2, sizeof(l2)));
  }
  return get_or_alloc_slot(l2, inner);
}

Status BlockFs::FreeFileBlocksLocked(DiskInode& inode, uint64_t from_block, bool discard_pages) {
  const uint64_t nblocks = DivUp(inode.size, kBlockSize);
  for (uint64_t fb = from_block; fb < nblocks; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapLocked(inode, fb, /*alloc=*/false));
    if (blk == 0) {
      continue;
    }
    if (discard_pages && !options_.dax) {
      cache_->Discard(blk);  // deleted data never reaches the device
    }
    HINFS_RETURN_IF_ERROR(FreeBlockLocked(blk));
    // Clear the pointer.
    if (fb < kDirectPtrs) {
      inode.direct[fb] = 0;
    }
  }
  if (from_block == 0) {
    // Release indirect metadata blocks wholesale.
    if (inode.indirect != 0) {
      cache_->Discard(inode.indirect);
      HINFS_RETURN_IF_ERROR(FreeBlockLocked(inode.indirect));
      inode.indirect = 0;
    }
    if (inode.dindirect != 0) {
      for (size_t i = 0; i < kPtrsPerBlock; i++) {
        uint64_t l2;
        HINFS_RETURN_IF_ERROR(ReadMeta(inode.dindirect, i * sizeof(uint64_t), &l2, sizeof(l2)));
        if (l2 != 0) {
          cache_->Discard(l2);
          HINFS_RETURN_IF_ERROR(FreeBlockLocked(l2));
        }
      }
      cache_->Discard(inode.dindirect);
      HINFS_RETURN_IF_ERROR(FreeBlockLocked(inode.dindirect));
      inode.dindirect = 0;
    }
  } else {
    // Partial truncate: zero the indirect slots above the cut.
    for (uint64_t fb = std::max<uint64_t>(from_block, kDirectPtrs); fb < nblocks; fb++) {
      const uint64_t zero = 0;
      uint64_t idx = fb - kDirectPtrs;
      if (idx < kPtrsPerBlock) {
        if (inode.indirect != 0) {
          HINFS_RETURN_IF_ERROR(
              WriteMeta(inode.indirect, idx * sizeof(uint64_t), &zero, sizeof(zero)));
        }
      } else if (inode.dindirect != 0) {
        idx -= kPtrsPerBlock;
        uint64_t l2;
        HINFS_RETURN_IF_ERROR(
            ReadMeta(inode.dindirect, idx / kPtrsPerBlock * sizeof(uint64_t), &l2, sizeof(l2)));
        if (l2 != 0) {
          HINFS_RETURN_IF_ERROR(
              WriteMeta(l2, idx % kPtrsPerBlock * sizeof(uint64_t), &zero, sizeof(zero)));
        }
      }
    }
  }
  HINFS_RETURN_IF_ERROR(StoreInodeLocked(inode));
  return OkStatus();
}

// --- data paths ---------------------------------------------------------------------

Status BlockFs::ReadDataLocked(DiskInode& inode, uint64_t offset, void* dst, size_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  uint64_t cur = offset;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t fb = cur / kBlockSize;
    const size_t in_block = cur % kBlockSize;
    const size_t chunk = std::min(remaining, kBlockSize - in_block);
    HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapLocked(inode, fb, /*alloc=*/false));
    if (blk == 0) {
      std::memset(out, 0, chunk);
    } else if (inode.type == static_cast<uint8_t>(FileType::kDirectory)) {
      // Directory content is metadata: read it through the same cached path
      // its writes take (see WriteDataLocked).
      HINFS_RETURN_IF_ERROR(ReadMeta(blk, in_block, out, chunk));
    } else if (options_.dax) {
      HINFS_RETURN_IF_ERROR(
          options_.dax_nvmm->Load(options_.dax_nvmm_base + blk * kBlockSize + in_block, out,
                                  chunk));
    } else {
      HINFS_RETURN_IF_ERROR(cache_->Read(blk, in_block, out, chunk));
    }
    out += chunk;
    cur += chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

Status BlockFs::WriteDataLocked(DiskInode& inode, uint64_t offset, const void* src, size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  uint64_t cur = offset;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t fb = cur / kBlockSize;
    const size_t in_block = cur % kBlockSize;
    const size_t chunk = std::min(remaining, kBlockSize - in_block);
    HINFS_ASSIGN_OR_RETURN(uint64_t existing, MapLocked(inode, fb, /*alloc=*/false));
    uint64_t blk = existing;
    if (blk == 0) {
      HINFS_ASSIGN_OR_RETURN(blk, MapLocked(inode, fb, /*alloc=*/true));
    }
    const bool fresh = existing == 0;
    if (inode.type == static_cast<uint8_t>(FileType::kDirectory)) {
      // Directory content is metadata: it goes through the journaled path
      // (ext4 journals directory blocks; EXT4-DAX keeps metadata
      // cache-oriented even though file data is direct).
      if (fresh && chunk < kBlockSize) {
        static const std::vector<uint8_t> kZero(kBlockSize, 0);
        HINFS_RETURN_IF_ERROR(WriteMeta(blk, 0, kZero.data(), kBlockSize));
      }
      HINFS_RETURN_IF_ERROR(WriteMeta(blk, in_block, in, chunk));
    } else if (options_.dax) {
      const uint64_t addr = options_.dax_nvmm_base + blk * kBlockSize;
      if (fresh && chunk < kBlockSize) {
        static const std::vector<uint8_t> kZero(kBlockSize, 0);
        if (in_block > 0) {
          HINFS_RETURN_IF_ERROR(options_.dax_nvmm->StorePersistent(addr, kZero.data(), in_block));
        }
        if (in_block + chunk < kBlockSize) {
          HINFS_RETURN_IF_ERROR(options_.dax_nvmm->StorePersistent(
              addr + in_block + chunk, kZero.data(), kBlockSize - in_block - chunk));
        }
      }
      ScopedTimer t(stats_.Counter(kStatWriteAccessNs));
      HINFS_RETURN_IF_ERROR(options_.dax_nvmm->StorePersistent(addr + in_block, in, chunk));
    } else {
      if (fresh && chunk < kBlockSize) {
        // Zero a fresh partially-covered page without reading stale device data.
        static const std::vector<uint8_t> kZero(kBlockSize, 0);
        HINFS_RETURN_IF_ERROR(cache_->Write(blk, 0, kZero.data(), kBlockSize));
      }
      ScopedTimer t(stats_.Counter(kStatWriteAccessNs));
      HINFS_RETURN_IF_ERROR(cache_->Write(blk, in_block, in, chunk));
      dirty_data_inos_.insert(inode.ino);
    }
    in += chunk;
    cur += chunk;
    remaining -= chunk;
  }
  if (offset + len > inode.size) {
    inode.size = offset + len;
  }
  inode.mtime_ns = MonotonicNowNs();
  HINFS_RETURN_IF_ERROR(StoreInodeLocked(inode));
  stats_.Add(kStatWrittenBytes, len);
  return OkStatus();
}

Status BlockFs::SyncFileDataLocked(DiskInode& inode) {
  if (options_.dax) {
    return OkStatus();  // data is persisted at write time
  }
  const uint64_t nblocks = DivUp(inode.size, kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapLocked(inode, fb, /*alloc=*/false));
    if (blk != 0) {
      HINFS_RETURN_IF_ERROR(cache_->SyncPage(blk));
    }
  }
  dirty_data_inos_.erase(inode.ino);
  return OkStatus();
}

// --- journal -----------------------------------------------------------------------

Status BlockFs::CheckpointLocked() {
  // Write every dirty metadata page in place and reset the journal.
  HINFS_RETURN_IF_ERROR(cache_->SyncAll());
  dirty_meta_blocks_.clear();
  journal_head_ = 0;
  sb_.checkpoint_seq = next_seq_ - 1;
  std::vector<uint8_t> sb_block(kBlockSize, 0);
  std::memcpy(sb_block.data(), &sb_, sizeof(sb_));
  return dev_->WriteBlock(0, sb_block.data());
}

Status BlockFs::CommitJournalLocked() {
  if (!options_.journal) {
    return OkStatus();
  }
  if (dirty_meta_blocks_.empty()) {
    return OkStatus();
  }
  // Ordered mode (ext4 data=ordered): file data reaches the device before the
  // metadata that references it commits. Without this, a committed journal
  // transaction could expose stale or unwritten block contents after a crash.
  if (!dirty_data_inos_.empty()) {
    std::set<uint64_t> inos;
    inos.swap(dirty_data_inos_);
    for (uint64_t ino : inos) {
      Result<DiskInode> inode = LoadInodeLocked(ino);
      if (!inode.ok()) {
        continue;  // unlinked since the write; nothing left to order
      }
      HINFS_RETURN_IF_ERROR(SyncFileDataLocked(*inode));
    }
  }
  std::vector<uint64_t> targets(dirty_meta_blocks_.begin(), dirty_meta_blocks_.end());
  size_t done = 0;
  std::vector<uint8_t> buf(kBlockSize);
  while (done < targets.size()) {
    const size_t batch = std::min(targets.size() - done, kPtrsPerBlock - 3);
    if (journal_head_ + batch + 2 > sb_.journal_blocks) {
      HINFS_RETURN_IF_ERROR(CheckpointLocked());
      // After a checkpoint nothing remains to journal: the in-place copies are
      // already durable.
      return OkStatus();
    }
    JournalDesc desc{};
    desc.magic = kJournalDescMagic;
    desc.seq = next_seq_;
    desc.count = batch;
    for (size_t i = 0; i < batch; i++) {
      desc.targets[i] = targets[done + i];
    }
    HINFS_RETURN_IF_ERROR(
        dev_->WriteBlock(sb_.journal_start + journal_head_, reinterpret_cast<uint8_t*>(&desc)));
    for (size_t i = 0; i < batch; i++) {
      HINFS_RETURN_IF_ERROR(cache_->Read(targets[done + i], 0, buf.data(), kBlockSize));
      HINFS_RETURN_IF_ERROR(dev_->WriteBlock(sb_.journal_start + journal_head_ + 1 + i,
                                             buf.data()));
    }
    JournalCommit commit{};
    commit.magic = kJournalCommitMagic;
    commit.seq = next_seq_;
    HINFS_RETURN_IF_ERROR(dev_->WriteBlock(sb_.journal_start + journal_head_ + 1 + batch,
                                           reinterpret_cast<uint8_t*>(&commit)));
    journal_head_ += batch + 2;
    next_seq_++;
    done += batch;
  }
  dirty_meta_blocks_.clear();
  return OkStatus();
}

// --- directory helpers ---------------------------------------------------------------

Result<uint64_t> BlockFs::FindDirentLocked(DiskInode& dir, std::string_view name,
                                           uint64_t* out_ino, FileType* out_type) {
  const uint64_t nblocks = DivUp(dir.size, kBlockSize);
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_RETURN_IF_ERROR(ReadDataLocked(dir, fb * kBlockSize, block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
      const PmfsDirent& d = entries[i];
      if (d.ino != 0 && d.name_len == name.size() &&
          std::memcmp(d.name, name.data(), name.size()) == 0) {
        *out_ino = d.ino;
        if (out_type != nullptr) {
          *out_type = static_cast<FileType>(d.type);
        }
        return fb * kBlockSize + i * sizeof(PmfsDirent);
      }
    }
  }
  return Status(ErrorCode::kNotFound, std::string(name));
}

Status BlockFs::AddDirentLocked(DiskInode& dir, std::string_view name, uint64_t ino,
                                FileType type) {
  if (name.empty() || name.size() > kMaxDirentName) {
    return Status(ErrorCode::kNameTooLong, std::string(name));
  }
  PmfsDirent dirent{};
  dirent.ino = ino;
  dirent.type = static_cast<uint8_t>(type);
  dirent.name_len = static_cast<uint8_t>(name.size());
  std::memcpy(dirent.name, name.data(), name.size());

  const uint64_t nblocks = DivUp(dir.size, kBlockSize);
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_RETURN_IF_ERROR(ReadDataLocked(dir, fb * kBlockSize, block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
      if (entries[i].ino == 0) {
        return WriteDataLocked(dir, fb * kBlockSize + i * sizeof(PmfsDirent), &dirent,
                               sizeof(dirent));
      }
    }
  }
  // Extend the directory by one zeroed block containing the new entry.
  std::vector<uint8_t> fresh(kBlockSize, 0);
  std::memcpy(fresh.data(), &dirent, sizeof(dirent));
  return WriteDataLocked(dir, nblocks * kBlockSize, fresh.data(), kBlockSize);
}

// --- FileSystem interface -------------------------------------------------------------

Result<uint64_t> BlockFs::Lookup(uint64_t dir_ino, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode dir, LoadInodeLocked(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  uint64_t ino;
  HINFS_RETURN_IF_ERROR(FindDirentLocked(dir, name, &ino, nullptr).status());
  return ino;
}

Result<uint64_t> BlockFs::Create(uint64_t dir_ino, std::string_view name, FileType type) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode dir, LoadInodeLocked(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  uint64_t existing;
  if (FindDirentLocked(dir, name, &existing, nullptr).ok()) {
    return Status(ErrorCode::kExists, std::string(name));
  }
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, AllocInoLocked());
  DiskInode inode{};
  inode.ino = ino;
  inode.type = static_cast<uint8_t>(type);
  inode.nlink = type == FileType::kDirectory ? 2 : 1;
  inode.mtime_ns = MonotonicNowNs();
  HINFS_RETURN_IF_ERROR(StoreInodeLocked(inode));
  HINFS_RETURN_IF_ERROR(AddDirentLocked(dir, name, ino, type));
  return ino;
}

Status BlockFs::UnlinkLocked(uint64_t dir_ino, std::string_view name) {
  HINFS_ASSIGN_OR_RETURN(DiskInode dir, LoadInodeLocked(dir_ino));
  uint64_t ino;
  FileType type;
  HINFS_ASSIGN_OR_RETURN(uint64_t dirent_off, FindDirentLocked(dir, name, &ino, &type));
  HINFS_ASSIGN_OR_RETURN(DiskInode child, LoadInodeLocked(ino));
  if (child.type == static_cast<uint8_t>(FileType::kDirectory)) {
    // Empty check: scan for a live dirent.
    const uint64_t nblocks = DivUp(child.size, kBlockSize);
    std::vector<uint8_t> block(kBlockSize);
    for (uint64_t fb = 0; fb < nblocks; fb++) {
      HINFS_RETURN_IF_ERROR(ReadDataLocked(child, fb * kBlockSize, block.data(), kBlockSize));
      const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
      for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
        if (entries[i].ino != 0) {
          return Status(ErrorCode::kNotEmpty, std::string(name));
        }
      }
    }
  }
  PmfsDirent zero{};
  HINFS_RETURN_IF_ERROR(WriteDataLocked(dir, dirent_off, &zero, sizeof(zero)));
  HINFS_RETURN_IF_ERROR(FreeFileBlocksLocked(child, 0, /*discard_pages=*/true));
  child.ino = 0;
  HINFS_RETURN_IF_ERROR(
      WriteMeta(InodeBlock(ino), InodeOffsetInBlock(ino), &child, sizeof(child)));
  return FreeInoLocked(ino);
}

Status BlockFs::Unlink(uint64_t dir_ino, std::string_view name) {
  ScopedTimer t(stats_.Counter(kStatUnlinkNs));
  std::lock_guard<std::mutex> lock(mu_);
  return UnlinkLocked(dir_ino, name);
}

Status BlockFs::Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                       std::string_view new_name) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode from, LoadInodeLocked(old_dir));
  uint64_t ino;
  FileType type;
  HINFS_ASSIGN_OR_RETURN(uint64_t dirent_off, FindDirentLocked(from, old_name, &ino, &type));

  HINFS_ASSIGN_OR_RETURN(DiskInode to, LoadInodeLocked(new_dir));
  uint64_t target;
  if (FindDirentLocked(to, new_name, &target, nullptr).ok()) {
    HINFS_RETURN_IF_ERROR(UnlinkLocked(new_dir, new_name));
    HINFS_ASSIGN_OR_RETURN(from, LoadInodeLocked(old_dir));
    HINFS_ASSIGN_OR_RETURN(to, LoadInodeLocked(new_dir));
    HINFS_ASSIGN_OR_RETURN(dirent_off, FindDirentLocked(from, old_name, &ino, &type));
  }
  PmfsDirent zero{};
  HINFS_RETURN_IF_ERROR(WriteDataLocked(from, dirent_off, &zero, sizeof(zero)));
  HINFS_ASSIGN_OR_RETURN(to, LoadInodeLocked(new_dir));
  return AddDirentLocked(to, new_name, ino, type);
}

Result<std::vector<DirEntry>> BlockFs::ReadDir(uint64_t dir_ino) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode dir, LoadInodeLocked(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  std::vector<DirEntry> out;
  const uint64_t nblocks = DivUp(dir.size, kBlockSize);
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_RETURN_IF_ERROR(ReadDataLocked(dir, fb * kBlockSize, block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
      if (entries[i].ino != 0) {
        DirEntry e;
        e.name.assign(entries[i].name, entries[i].name_len);
        e.ino = entries[i].ino;
        e.type = static_cast<FileType>(entries[i].type);
        out.push_back(std::move(e));
      }
    }
  }
  return out;
}

Result<InodeAttr> BlockFs::GetAttr(uint64_t ino) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode inode, LoadInodeLocked(ino));
  InodeAttr attr;
  attr.ino = ino;
  attr.type = static_cast<FileType>(inode.type);
  attr.size = inode.size;
  attr.nlink = inode.nlink;
  attr.mtime_ns = inode.mtime_ns;
  return attr;
}

Result<size_t> BlockFs::Read(uint64_t ino, uint64_t offset, void* dst, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode inode, LoadInodeLocked(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }
  if (offset >= inode.size) {
    return static_cast<size_t>(0);
  }
  const size_t n = static_cast<size_t>(std::min<uint64_t>(len, inode.size - offset));
  {
    ScopedTimer t(stats_.Counter(kStatReadAccessNs));
    HINFS_RETURN_IF_ERROR(ReadDataLocked(inode, offset, dst, n));
  }
  return n;
}

Result<size_t> BlockFs::Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                              const WriteOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode inode, LoadInodeLocked(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }
  HINFS_RETURN_IF_ERROR(WriteDataLocked(inode, offset, src, len));
  if (options.eager_persistent()) {
    HINFS_RETURN_IF_ERROR(SyncFileDataLocked(inode));
    HINFS_RETURN_IF_ERROR(CommitJournalLocked());
  }
  return len;
}

Status BlockFs::Truncate(uint64_t ino, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode inode, LoadInodeLocked(ino));
  if (new_size < inode.size) {
    const uint64_t from_block = DivUp(new_size, kBlockSize);
    HINFS_RETURN_IF_ERROR(FreeFileBlocksLocked(inode, from_block, /*discard_pages=*/true));
    // Zero the tail of the kept boundary block so later extensions read zeros.
    const size_t tail_off = new_size % kBlockSize;
    if (tail_off != 0) {
      HINFS_ASSIGN_OR_RETURN(uint64_t blk,
                             MapLocked(inode, new_size / kBlockSize, /*alloc=*/false));
      if (blk != 0) {
        static const std::vector<uint8_t> kZero(kBlockSize, 0);
        if (options_.dax) {
          HINFS_RETURN_IF_ERROR(options_.dax_nvmm->StorePersistent(
              options_.dax_nvmm_base + blk * kBlockSize + tail_off, kZero.data(),
              kBlockSize - tail_off));
        } else {
          HINFS_RETURN_IF_ERROR(cache_->Write(blk, tail_off, kZero.data(),
                                              kBlockSize - tail_off));
        }
      }
    }
  }
  inode.size = new_size;
  inode.mtime_ns = MonotonicNowNs();
  return StoreInodeLocked(inode);
}

Status BlockFs::Fsync(uint64_t ino, const SyncOptions& options) {
  (void)options;  // Block journal commit covers both scopes.
  ScopedTimer t(stats_.Counter(kStatFsyncNs));
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_ASSIGN_OR_RETURN(DiskInode inode, LoadInodeLocked(ino));
  HINFS_RETURN_IF_ERROR(SyncFileDataLocked(inode));
  if (options_.journal) {
    return CommitJournalLocked();
  }
  // ext2-like: push this inode's metadata pages to the device.
  HINFS_RETURN_IF_ERROR(cache_->SyncPage(InodeBlock(ino)));
  for (uint64_t b : dirty_meta_blocks_) {
    HINFS_RETURN_IF_ERROR(cache_->SyncPage(b));
  }
  dirty_meta_blocks_.clear();
  return OkStatus();
}

Status BlockFs::SyncFs() {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_RETURN_IF_ERROR(CommitJournalLocked());
  HINFS_RETURN_IF_ERROR(cache_->SyncAll());
  dirty_meta_blocks_.clear();
  return OkStatus();
}

Status BlockFs::DropCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_RETURN_IF_ERROR(CommitJournalLocked());
  HINFS_RETURN_IF_ERROR(cache_->DropAll());
  dirty_meta_blocks_.clear();
  return OkStatus();
}

Status BlockFs::Unmount() {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_RETURN_IF_ERROR(CommitJournalLocked());
  HINFS_RETURN_IF_ERROR(cache_->SyncAll());
  dirty_meta_blocks_.clear();
  if (options_.dax && options_.dax_nvmm != nullptr) {
    // Mirror the DAX device's persist-order counters, as PmfsFs does.
    stats_.Add(kStatNvmmFences, options_.dax_nvmm->fence_count());
    stats_.Add(kStatNvmmFlushedLines, options_.dax_nvmm->flushed_lines());
    stats_.Add(kStatNvmmEpochs, options_.dax_nvmm->epoch_count());
    stats_.Add(kStatNvmmMaxUnfencedLines, options_.dax_nvmm->max_unfenced_lines());
  }
  sb_.clean_unmount = 1;
  if (options_.journal) {
    sb_.checkpoint_seq = next_seq_ - 1;
  }
  std::vector<uint8_t> sb_block(kBlockSize, 0);
  std::memcpy(sb_block.data(), &sb_, sizeof(sb_));
  return dev_->WriteBlock(0, sb_block.data());
}

}  // namespace hinfs
