// Persist-order regression tests: pin the exact fence cost of each core
// operation on the PMFS journal path and the HiNFS CLFW (buffered) path.
//
// These constants are load-bearing: an accidental extra fence is a perf
// regression (fences serialize the pipeline on real NVMM), and a *missing*
// fence is a crash-consistency bug (see crashlab_test.cc for the systematic
// exploration that catches the latter). If a change legitimately alters an
// op's persistence protocol, update the pinned value in the same commit and
// say why in its message.

#include <functional>

#include <gtest/gtest.h>

#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/nvmm/nvmm_device.h"
#include "src/nvmm/persist_trace.h"
#include "src/vfs/vfs.h"
#include "src/wal/wal_fs.h"

namespace hinfs {
namespace {

NvmmConfig TrackedConfig() {
  NvmmConfig cfg;
  cfg.size_bytes = 8ull << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  return cfg;
}

PmfsOptions SmallPmfs() {
  PmfsOptions o;
  o.max_inodes = 512;
  o.journal_bytes = 256 << 10;
  return o;
}

HinfsOptions QuietHinfs() {
  HinfsOptions o;
  o.buffer_bytes = 1 << 20;
  o.writeback_period_ms = 3'600'000;
  o.staleness_ms = 3'600'000;
  o.eager_decay_ms = 3'600'000;
  o.buffer_shards = 1;
  o.writeback_threads = 1;
  return o;
}

uint64_t FenceDelta(NvmmDevice* nvmm, const std::function<void()>& body) {
  const uint64_t before = nvmm->fence_count();
  body();
  return nvmm->fence_count() - before;
}

TEST(PersistOrderTest, PmfsJournalFenceCostPerOp) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, SmallPmfs());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  Vfs vfs(fs->get());

  // First create on a fresh FS = one journal txn covering the inode-slot undo
  // entries, the root directory's first dirent-block allocation (bitmap +
  // radix init), the dirent append, the commit, plus the in-place persistent
  // stores each carrying their own fence, and the parent mtime update.
  EXPECT_EQ(21u, FenceDelta(&nvmm, [&] {
    auto fd = vfs.Open("/f", kRdWr | kCreate);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(vfs.Close(*fd).ok());
  }));

  // 1 KB write = data chunk persist + alloc txn (undo appends + commit) +
  // atomic size update + mtime update.
  std::vector<char> buf(1024, 'a');
  EXPECT_EQ(15u, FenceDelta(&nvmm, [&] {
    auto fd = vfs.Open("/f", kRdWr);
    ASSERT_TRUE(fd.ok());
    auto n = vfs.Pwrite(*fd, buf.data(), buf.size(), 0);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_TRUE(vfs.Close(*fd).ok());
  }));

  // PMFS fsync: everything is already durable, so exactly one ordering fence.
  EXPECT_EQ(1u, FenceDelta(&nvmm, [&] {
    auto fd = vfs.Open("/f", kRdWr);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs.Fsync(*fd).ok());
    ASSERT_TRUE(vfs.Close(*fd).ok());
  }));

  // rename (no target) = one journal txn over both dirents + mtime updates.
  EXPECT_EQ(7u, FenceDelta(&nvmm, [&] { ASSERT_TRUE(vfs.Rename("/f", "/g").ok()); }));

  // unlink = dirent-clear+orphan-mark txn, then the slot-free txn (block
  // frees + inode-slot clear), then the parent mtime update.
  EXPECT_EQ(19u, FenceDelta(&nvmm, [&] { ASSERT_TRUE(vfs.Unlink("/g").ok()); }));
}

TEST(PersistOrderTest, HinfsClfwBufferedWriteIsFenceFree) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = HinfsFs::Format(&nvmm, QuietHinfs(), SmallPmfs());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  Vfs vfs(fs->get());

  auto fd = vfs.Open("/f", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  std::vector<char> buf(1024, 'b');
  ASSERT_TRUE(vfs.Pwrite(*fd, buf.data(), buf.size(), 0).ok());

  // The CLFW point: a re-write of buffered data stays in DRAM. The single
  // fence is the persistent mtime update — the data itself costs none.
  EXPECT_EQ(1u, FenceDelta(&nvmm, [&] {
    auto n = vfs.Pwrite(*fd, buf.data(), buf.size(), 0);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
  }));

  // fsync drains the dirty buffer frame through the journaled NVMM path.
  EXPECT_EQ(14u, FenceDelta(&nvmm, [&] { ASSERT_TRUE(vfs.Fsync(*fd).ok()); }));

  // A second fsync with a clean buffer is back to the single ordering fence.
  EXPECT_EQ(1u, FenceDelta(&nvmm, [&] { ASSERT_TRUE(vfs.Fsync(*fd).ok()); }));
  ASSERT_TRUE(vfs.Close(*fd).ok());
}

TEST(PersistOrderTest, TraceCountersMatchDeviceCounters) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, SmallPmfs());
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());

  nvmm.StartPersistTrace();
  const uint64_t fences_before = nvmm.fence_count();
  const uint64_t flushed_before = nvmm.flushed_lines();
  auto fd = vfs.Open("/t", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  std::vector<char> buf(4096, 'c');
  ASSERT_TRUE(vfs.Pwrite(*fd, buf.data(), buf.size(), 0).ok());
  ASSERT_TRUE(vfs.Fsync(*fd).ok());
  ASSERT_TRUE(vfs.Close(*fd).ok());
  std::shared_ptr<PersistTrace> trace = nvmm.StopPersistTrace();
  ASSERT_NE(trace, nullptr);

  EXPECT_EQ(trace->fences(), nvmm.fence_count() - fences_before);
  EXPECT_EQ(trace->flushed_lines(), nvmm.flushed_lines() - flushed_before);
  EXPECT_GT(trace->size(), 0u);
  EXPECT_GT(trace->flush_events(), 0u);
}

TEST(PersistOrderTest, SkipAppendFenceKnobDropsOneFencePerJournalEntry) {
  // The injected bug (journal.h set_skip_append_fence) must change nothing
  // except removing the per-append fences: one fence per journal entry
  // (undo and commit) written by the transaction.
  uint64_t deltas[2] = {0, 0};
  for (const bool inject : {false, true}) {
    NvmmDevice nvmm(TrackedConfig());
    auto fs = PmfsFs::Format(&nvmm, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    (*fs)->set_skip_append_fence_for_testing(inject);
    Vfs vfs(fs->get());
    // create = one journal transaction.
    deltas[inject ? 1 : 0] = FenceDelta(&nvmm, [&] {
      auto fd = vfs.Open("/x", kRdWr | kCreate);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(vfs.Close(*fd).ok());
    });
  }
  // First create: 21 fences total, 11 of them journal appends (10 undo
  // entries covering dirent + new inode + dir inode + allocator metadata for
  // the root dir's first data block, 1 commit).
  EXPECT_EQ(21u, deltas[0]);
  EXPECT_EQ(10u, deltas[1]);
}

// Pins the whole point of the WAL: a logged fsync costs exactly ONE fence
// under the checksum commit format (records + header ride one fence epoch)
// and exactly TWO under the fence format (records fence, then header fence).
// Compare with the 15-fence eager-persist write pinned above.
TEST(PersistOrderTest, WalLoggedFsyncFenceCost) {
  for (const WalCommitFormat format : {WalCommitFormat::kChecksum, WalCommitFormat::kFence}) {
    NvmmDevice nvmm(TrackedConfig());
    constexpr uint64_t kWalBytes = 1ull << 20;
    PmfsOptions popts = SmallPmfs();
    popts.device_bytes = nvmm.size() - kWalBytes;
    auto inner = PmfsFs::Format(&nvmm, popts);
    ASSERT_TRUE(inner.ok()) << inner.status().ToString();
    WalOptions wopts;
    wopts.regions = 1;
    wopts.total_bytes = kWalBytes;
    wopts.commit_format = format;
    wopts.checkpoint_ms = 0;  // no background drain perturbing the counts
    auto fs = WalFs::Format(std::move(*inner), &nvmm, popts.device_bytes, kWalBytes, wopts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    Vfs vfs(fs->get());

    const uint64_t per_commit = format == WalCommitFormat::kChecksum ? 1u : 2u;
    auto fd = vfs.Open("/w", kRdWr | kCreate);
    ASSERT_TRUE(fd.ok());
    std::vector<char> buf(1024, 'w');

    // Buffered write: append only, no persist work at all.
    EXPECT_EQ(0u, FenceDelta(&nvmm, [&] {
      ASSERT_TRUE(vfs.Pwrite(*fd, buf.data(), buf.size(), 0).ok());
    })) << "format " << int(format);
    // The fsync that makes it recoverable: one group commit.
    EXPECT_EQ(per_commit, FenceDelta(&nvmm, [&] { ASSERT_TRUE(vfs.Fsync(*fd).ok()); }))
        << "format " << int(format);
    // Already committed: a second fsync forwards to PMFS, whose fsync of an
    // untouched file is the single ordering fence pinned above.
    EXPECT_EQ(1u, FenceDelta(&nvmm, [&] { ASSERT_TRUE(vfs.Fsync(*fd).ok()); }))
        << "format " << int(format);
    ASSERT_TRUE(vfs.Close(*fd).ok());

    // O_SYNC write through the log: append + commit in one call.
    auto sfd = vfs.Open("/w", kRdWr | kSync);
    ASSERT_TRUE(sfd.ok());
    EXPECT_EQ(per_commit, FenceDelta(&nvmm, [&] {
      ASSERT_TRUE(vfs.Pwrite(*sfd, buf.data(), buf.size(), 4096).ok());
    })) << "format " << int(format);
    ASSERT_TRUE(vfs.Close(*sfd).ok());
  }
}

}  // namespace
}  // namespace hinfs
