// PersistTrace: an ordered event log of the NVMM persistence operations a
// workload performed — Store/StoreAtomic/Flush/Fence — recorded by NvmmDevice
// when tracing is enabled (crashlab's layer 1).
//
// The trace captures everything needed to reconstruct every intermediate
// persistent state the device could have been in:
//   - store events carry their payload bytes (appended to an arena), so a
//     replay can maintain the volatile ("CPU cache") image at any point;
//   - flush events carry the flushed extent; the flushed content is derived
//     at replay time from the volatile image at that event;
//   - fence events delimit epochs: epoch N = events between fence N-1 and N.
//     Lines flushed but not yet fenced are the "pending" set whose persistence
//     is not yet guaranteed under CLFLUSHOPT/CLWB.
//   - base images (volatile + persistent) snapshot the device at trace start,
//     so a trace over a quiesced, formatted file system is self-contained.
//
// Appends are serialized by an internal mutex (background writeback threads
// may trace concurrently with the foreground); the recorded order is one legal
// linearization. Once recording stops the trace is immutable and may be read
// without locking.

#ifndef SRC_NVMM_PERSIST_TRACE_H_
#define SRC_NVMM_PERSIST_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace hinfs {

enum class PersistEventType : uint8_t {
  kStore = 1,       // volatile image write (not durable)
  kStoreAtomic = 2, // word-atomic volatile write (same durability as kStore)
  kFlush = 3,       // cachelines covering [offset, offset+len) written back
  kFence = 4,       // store barrier: all prior flushes are durable after this
};

struct PersistEvent {
  PersistEventType type;
  uint32_t thread = 0;      // dense per-trace thread index
  uint64_t offset = 0;
  uint64_t len = 0;
  uint64_t epoch = 0;       // fences recorded before this event
  uint64_t payload_off = 0; // arena offset of store payload (stores only)
};

class PersistTrace {
 public:
  explicit PersistTrace(uint64_t device_bytes) : device_bytes_(device_bytes) {}

  // --- recording (called by NvmmDevice; internally locked) --------------------
  void RecordStore(PersistEventType type, uint64_t offset, uint64_t len, const void* payload);
  void RecordFlush(uint64_t offset, uint64_t len, uint64_t nlines);
  void RecordFence();

  // --- read side --------------------------------------------------------------
  // Number of events recorded so far. Safe to call while recording (the
  // harness reads it between workload operations to mark op boundaries).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }
  const PersistEvent& event(size_t i) const { return events_[i]; }
  const std::vector<PersistEvent>& events() const { return events_; }
  const uint8_t* payload(const PersistEvent& e) const { return payload_.data() + e.payload_off; }

  uint64_t device_bytes() const { return device_bytes_; }

  // Device images at trace start. Empty when the traced device was not
  // tracking persistence (counting-only traces).
  const std::vector<uint8_t>& base_volatile() const { return base_volatile_; }
  const std::vector<uint8_t>& base_persistent() const { return base_persistent_; }
  void set_base_images(std::vector<uint8_t> vol, std::vector<uint8_t> persistent) {
    base_volatile_ = std::move(vol);
    base_persistent_ = std::move(persistent);
  }

  // --- summary counters -------------------------------------------------------
  uint64_t fences() const { return fences_; }
  uint64_t flush_events() const { return flush_events_; }
  uint64_t flushed_lines() const { return flushed_lines_; }
  // Fence-delimited epochs that contained at least one flush.
  uint64_t epochs() const { return epochs_; }
  // Max lines flushed within a single epoch (flush-time line count, the size
  // of the largest pending set a crash could have caught unfenced).
  uint64_t max_unfenced_lines() const { return max_unfenced_lines_; }

 private:
  uint32_t ThreadIndexLocked();

  const uint64_t device_bytes_;

  mutable std::mutex mu_;
  std::vector<PersistEvent> events_;
  std::vector<uint8_t> payload_;
  std::map<std::thread::id, uint32_t> thread_ids_;

  std::vector<uint8_t> base_volatile_;
  std::vector<uint8_t> base_persistent_;

  uint64_t fences_ = 0;
  uint64_t flush_events_ = 0;
  uint64_t flushed_lines_ = 0;
  uint64_t epochs_ = 0;
  uint64_t epoch_lines_ = 0;  // lines flushed since the last fence
  uint64_t max_unfenced_lines_ = 0;
};

}  // namespace hinfs

#endif  // SRC_NVMM_PERSIST_TRACE_H_
