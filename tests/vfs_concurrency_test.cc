// Multithreaded VFS front-end tests: the lock-free fd table (epoch-reclaimed
// FdStates and slot arrays), the per-fd offset protocol, and the sharded
// dcache under concurrent open/read/write/seek/close plus create/unlink on
// shared paths. Runs on PMFS with no injected latency; part of the `sanitize`
// label so TSan/ASan sweep it.
//
// The Vfs::Read offset contract under test:
//  - read-only fds advance the offset with a lock-free compare-exchange
//    (snapshot -> FS read -> publish snapshot+n, retry on loss), so
//    concurrent readers sharing one fd consume disjoint, gapless ranges
//    without serializing (SequentialReadsConsumeDisjointRanges, originally
//    the regression test for the pre-lock two-critical-section race);
//  - a Seek racing those readers atomically redirects the stream: every read
//    still returns one intact, record-aligned range — claimed either against
//    the pre-seek offset or the seeked one, never a blend
//    (ReadOnlyFdSeekRaceKeepsRecordsIntact);
//  - write-capable (kWrOnly/kRdWr) fds keep the per-fd pos_mu across
//    offset-dependent ops, so O_APPEND and mixed read/write streams stay
//    serialized (SharedFdAppendsNeverOverlap);
//  - Close racing in-flight syscalls yields full success or kBadFd, never a
//    torn result or use-after-free — the epoch pin keeps the FdState alive
//    (CloseRacesInFlightReads), and fd-table growth retires old slot arrays
//    the same way (FdTableGrowthKeepsLockFreeLookupsSafe).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

class VfsConcurrencyTest : public ::testing::Test {
 protected:
  VfsConcurrencyTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 64 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 4096;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(VfsConcurrencyTest, SequentialReadsConsumeDisjointRanges) {
  constexpr uint64_t kRecords = 8192;
  constexpr int kThreads = 4;
  std::string data(kRecords * sizeof(uint64_t), '\0');
  for (uint64_t i = 0; i < kRecords; i++) {
    std::memcpy(&data[i * sizeof(uint64_t)], &i, sizeof(i));
  }
  ASSERT_TRUE(vfs_->WriteFile("/records", data).ok());
  auto fd = vfs_->Open("/records", kRdOnly);
  ASSERT_TRUE(fd.ok());

  // All threads share one fd; POSIX requires each read(2) to consume a
  // distinct file range, so across threads every record is seen exactly once.
  std::vector<std::vector<uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      while (true) {
        uint64_t rec = 0;
        auto n = vfs_->Read(*fd, &rec, sizeof(rec));
        if (!n.ok() || *n == 0) {
          break;
        }
        EXPECT_EQ(*n, sizeof(rec));
        seen[t].push_back(rec);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  std::vector<uint64_t> all;
  for (auto& v : seen) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kRecords) << "duplicate or lost reads: the fd offset raced";
  for (uint64_t i = 0; i < kRecords; i++) {
    ASSERT_EQ(all[i], i) << "record " << i << " read more than once or skipped";
  }
}

TEST_F(VfsConcurrencyTest, ReadOnlyFdSeekRaceKeepsRecordsIntact) {
  // Self-identifying 8-byte records: record i holds the value i. The CAS
  // protocol claims record-aligned ranges (every claim starts at 0 or at a
  // published offset+8k), so every successful read must return one whole
  // record — a torn or misaligned read surfaces as an out-of-range value.
  constexpr uint64_t kRecords = 2048;
  constexpr int kReaders = 3;
  std::string data(kRecords * sizeof(uint64_t), '\0');
  for (uint64_t i = 0; i < kRecords; i++) {
    std::memcpy(&data[i * sizeof(uint64_t)], &i, sizeof(i));
  }
  ASSERT_TRUE(vfs_->WriteFile("/seekrace", data).ok());
  auto fd = vfs_->Open("/seekrace", kRdOnly);
  ASSERT_TRUE(fd.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; t++) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t rec = ~0ull;
        auto n = vfs_->Read(*fd, &rec, sizeof(rec));
        ASSERT_TRUE(n.ok());
        if (*n == 0) {
          continue;  // EOF until the seeker rewinds
        }
        ASSERT_EQ(*n, sizeof(rec));
        ASSERT_LT(rec, kRecords) << "torn or misaligned read";
        total_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // The seeker rewinds the shared stream while readers are mid-claim: each
  // rewind is a plain atomic store the readers' CAS loop must cope with.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(vfs_->Seek(*fd, 0).ok());
    while (total_reads.load(std::memory_order_relaxed) < (i + 1) * 50ull) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& th : threads) {
    th.join();
  }
  // The rewinds forced re-reads well past one file's worth.
  EXPECT_GT(total_reads.load(), kRecords);
}

TEST_F(VfsConcurrencyTest, CloseRacesInFlightReads) {
  // Readers hammer a shared read-only fd while the main thread closes it.
  // Every read must either fully succeed (it pinned the FdState before the
  // close retired it) or fail kBadFd — nothing in between, and no
  // use-after-free for the sanitizers to catch.
  constexpr int kRounds = 100;
  constexpr int kReaders = 3;
  const std::string payload(4096, 'r');
  ASSERT_TRUE(vfs_->WriteFile("/closerace", payload).ok());
  for (int round = 0; round < kRounds; round++) {
    auto fd = vfs_->Open("/closerace", kRdOnly);
    ASSERT_TRUE(fd.ok());
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kReaders; t++) {
      threads.emplace_back([&] {
        char buf[256];
        ready.fetch_add(1);
        for (int i = 0; i < 20; i++) {
          auto n = vfs_->Read(*fd, buf, sizeof(buf));
          if (!n.ok()) {
            ASSERT_EQ(n.status().code(), ErrorCode::kBadFd);
            break;  // the fd is gone for good: every later read agrees
          }
        }
      });
    }
    while (ready.load() < kReaders) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(vfs_->Close(*fd).ok());
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(vfs_->Fsync(*fd).code(), ErrorCode::kBadFd);
  }
}

TEST_F(VfsConcurrencyTest, FdTableGrowthKeepsLockFreeLookupsSafe) {
  // A churner floods one fd-table shard past its growth threshold (slot
  // arrays are replaced and retired) while readers keep using long-lived fds
  // inserted before the growth: their lock-free probes must stay valid across
  // array replacement.
  constexpr int kLongLived = 8;
  constexpr int kChurn = 600;  // >> 16 slots/shard across 16 shards: growth
  ASSERT_TRUE(vfs_->WriteFile("/growth", std::string(512, 'g')).ok());
  std::vector<int> stable;
  for (int i = 0; i < kLongLived; i++) {
    auto fd = vfs_->Open("/growth", kRdOnly);
    ASSERT_TRUE(fd.ok());
    stable.push_back(*fd);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&] {
      char buf[64];
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto n = vfs_->Pread(stable[i++ % stable.size()], buf, sizeof(buf), 0);
        ASSERT_TRUE(n.ok()) << "long-lived fd lost during table growth";
        ASSERT_EQ(*n, sizeof(buf));
      }
    });
  }
  for (int i = 0; i < kChurn; i++) {
    auto fd = vfs_->Open("/growth", kRdOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs_->Close(*fd).ok());
  }
  stop.store(true);
  for (auto& th : readers) {
    th.join();
  }
  for (int fd : stable) {
    EXPECT_TRUE(vfs_->Close(fd).ok());
  }
  EXPECT_EQ(vfs_->OpenFdCount(), 0u);
}

TEST_F(VfsConcurrencyTest, SharedFdAppendsNeverOverlap) {
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 200;
  constexpr size_t kRecSize = 64;
  ASSERT_TRUE(vfs_->WriteFile("/log", "").ok());
  auto fd = vfs_->Open("/log", kWrOnly | kAppend);
  ASSERT_TRUE(fd.ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      std::string rec(kRecSize, static_cast<char>('a' + t));
      for (int i = 0; i < kAppendsPerThread; i++) {
        auto n = vfs_->Write(*fd, rec.data(), rec.size());
        EXPECT_TRUE(n.ok());
        EXPECT_EQ(*n, kRecSize);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  auto contents = vfs_->ReadFileToString("/log");
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->size(), size_t{kThreads} * kAppendsPerThread * kRecSize);
  // No append was overwritten: every record is intact and per-writer counts
  // come out exact.
  size_t counts[kThreads] = {};
  for (size_t off = 0; off < contents->size(); off += kRecSize) {
    const char c = (*contents)[off];
    ASSERT_GE(c, 'a');
    ASSERT_LT(c, 'a' + kThreads);
    for (size_t j = 0; j < kRecSize; j++) {
      ASSERT_EQ((*contents)[off + j], c) << "torn append at offset " << off;
    }
    counts[c - 'a']++;
  }
  for (int t = 0; t < kThreads; t++) {
    EXPECT_EQ(counts[t], size_t{kAppendsPerThread});
  }
}

TEST_F(VfsConcurrencyTest, OpenCloseChurnKeepsTableConsistent) {
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  for (int t = 0; t < kThreads; t++) {
    ASSERT_TRUE(vfs_->WriteFile("/churn" + std::to_string(t), "payload").ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      const std::string path = "/churn" + std::to_string(t);
      for (int i = 0; i < kIters; i++) {
        auto fd = vfs_->Open(path, kRdOnly);
        ASSERT_TRUE(fd.ok());
        char buf[7];
        auto n = vfs_->Pread(*fd, buf, sizeof(buf), 0);
        ASSERT_TRUE(n.ok());
        EXPECT_EQ(std::string_view(buf, *n), "payload");
        ASSERT_TRUE(vfs_->Close(*fd).ok());
        // The fd is dead the instant Close returns.
        EXPECT_EQ(vfs_->Fsync(*fd).code(), ErrorCode::kBadFd);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

TEST_F(VfsConcurrencyTest, CreateUnlinkOnSharedPaths) {
  constexpr int kThreads = 4;
  constexpr int kIters = 150;
  constexpr int kPaths = 3;  // fewer paths than threads: guaranteed collisions
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kIters; i++) {
        const std::string path = "/shared" + std::to_string(rng.Below(kPaths));
        switch (rng.Below(3)) {
          case 0: {
            auto fd = vfs_->Open(path, kCreate | kWrOnly);
            if (fd.ok()) {
              char b = 'x';
              (void)vfs_->Write(*fd, &b, 1);
              EXPECT_TRUE(vfs_->Close(*fd).ok());
            }
            break;
          }
          case 1:
            // Racing unlinks: losing the race (kNotFound) is expected.
            (void)vfs_->Unlink(path);
            break;
          default: {
            auto fd = vfs_->Open(path, kRdOnly);
            if (fd.ok()) {
              char b;
              (void)vfs_->Read(*fd, &b, 1);
              EXPECT_TRUE(vfs_->Close(*fd).ok());
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // The namespace survived: the root is listable and any survivor is intact.
  auto entries = vfs_->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  for (const DirEntry& e : *entries) {
    EXPECT_TRUE(vfs_->Stat("/" + e.name).ok());
  }
}

TEST_F(VfsConcurrencyTest, MixedSyscallHammer) {
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  ASSERT_TRUE(vfs_->Mkdir("/dir").ok());
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(
        vfs_->WriteFile("/dir/f" + std::to_string(i), std::string(256, 'd')).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(7 + t);
      char buf[128];
      for (int i = 0; i < kIters; i++) {
        const std::string path = "/dir/f" + std::to_string(rng.Below(6));
        switch (rng.Below(6)) {
          case 0: {
            auto fd = vfs_->Open(path, kCreate | kRdWr);
            if (!fd.ok()) break;
            (void)vfs_->Seek(*fd, rng.Below(200));
            std::memset(buf, 'w', sizeof(buf));
            (void)vfs_->Write(*fd, buf, sizeof(buf));
            if (!vfs_->Close(*fd).ok()) failures.fetch_add(1);
            break;
          }
          case 1: {
            auto fd = vfs_->Open(path, kRdOnly);
            if (!fd.ok()) break;
            (void)vfs_->Read(*fd, buf, sizeof(buf));
            (void)vfs_->Seek(*fd, 0);
            (void)vfs_->Read(*fd, buf, sizeof(buf));
            if (!vfs_->Close(*fd).ok()) failures.fetch_add(1);
            break;
          }
          case 2:
            (void)vfs_->Unlink(path);
            break;
          case 3:
            (void)vfs_->Stat(path);
            break;
          case 4: {
            auto fd = vfs_->Open(path, kWrOnly | kSync);
            if (!fd.ok()) break;
            (void)vfs_->Pwrite(*fd, buf, 64, rng.Below(128));
            (void)vfs_->Fsync(*fd);
            if (!vfs_->Close(*fd).ok()) failures.fetch_add(1);
            break;
          }
          default:
            (void)vfs_->ReadDir("/dir");
            break;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0) << "a successfully opened fd failed to close";
  EXPECT_TRUE(vfs_->SyncFs().ok());
}

// Bulk creation into one directory: correctness of the first-free-slot hint
// (every name resolvable afterwards, freed slots reused after unlink).
TEST_F(VfsConcurrencyTest, BulkCreateAndSlotReuse) {
  constexpr int kFiles = 300;  // several directory blocks worth of dirents
  for (int i = 0; i < kFiles; i++) {
    ASSERT_TRUE(vfs_->WriteFile("/bulk" + std::to_string(i), "x").ok());
  }
  auto before = vfs_->Stat("/");
  ASSERT_TRUE(before.ok());
  // Free slots in the middle, then recreate: the directory must not grow.
  for (int i = 100; i < 200; i++) {
    ASSERT_TRUE(vfs_->Unlink("/bulk" + std::to_string(i)).ok());
  }
  for (int i = 100; i < 200; i++) {
    ASSERT_TRUE(vfs_->WriteFile("/bulk" + std::to_string(i), "y").ok());
  }
  auto after = vfs_->Stat("/");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->size, after->size) << "freed dirent slots were not reused";
  for (int i = 0; i < kFiles; i++) {
    ASSERT_TRUE(vfs_->Exists("/bulk" + std::to_string(i)).value_or(false));
  }
}

}  // namespace
}  // namespace hinfs
