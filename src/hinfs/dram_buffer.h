// DramBufferManager: the NVMM-aware Write Buffer (paper §3.2).
//
// Owns a pool of 4 KB DRAM blocks, the per-file DRAM Block Index (a B+tree of
// file-block -> buffer entry, paper Fig. 5), the Cacheline Bitmaps, the LRW
// replacement list, and the background writeback threads.
//
// Mechanisms reproduced from the paper:
//  - LRW (Least Recently Written) victim selection; written blocks move to the
//    MRW position.
//  - Cacheline Level Fetch/Writeback (CLFW): a partially-overwritten line of a
//    non-resident block fetches only that line from NVMM; writeback flushes
//    only dirty lines. With clfw=false (HiNFS-NCLFW) fetch and writeback are
//    whole-block.
//  - Background writeback: wakes when free blocks < Low_f (5 %), reclaims from
//    the LRW end until free > High_f (20 %), then writes back blocks dirty for
//    longer than 30 s; also wakes every 5 s. Foreground writers stall only when
//    the pool is exhausted.
//
// NVMM block allocation for never-written blocks is deferred to writeback time
// via the EnsureBlockFn callback (keeping allocation off the lazy-write
// critical path); a crash before writeback leaves a file-system-level hole,
// preserving ordered-mode semantics.

#ifndef SRC_HINFS_DRAM_BUFFER_H_
#define SRC_HINFS_DRAM_BUFFER_H_

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/hinfs/btree.h"
#include "src/hinfs/hinfs_options.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

// Sentinel: the buffered block has no backing NVMM block yet.
inline constexpr uint64_t kNoNvmmAddr = UINT64_MAX;

class DramBufferManager {
 public:
  // Resolves (ino, file_block) to the byte address of a (possibly freshly
  // allocated) NVMM data block. Called from writeback context; must be safe
  // without the caller's file locks.
  using EnsureBlockFn = std::function<Result<uint64_t>(uint64_t ino, uint64_t file_block)>;

  DramBufferManager(NvmmDevice* nvmm, const HinfsOptions& options, EnsureBlockFn ensure_block);
  ~DramBufferManager();

  void StartBackgroundWriteback();
  void StopBackgroundWriteback();

  // Buffered (lazy-persistent) write of [offset, offset+len) within one file
  // block. `nvmm_addr` is the block's current NVMM address or kNoNvmmAddr.
  // Returns the number of cacheline writes performed (N_cw input to the
  // Buffer Benefit Model). Blocks if the pool is exhausted until writeback
  // frees space.
  Result<uint32_t> Write(uint64_t ino, uint64_t file_block, size_t offset, const void* src,
                         size_t len, uint64_t nvmm_addr);

  // If (ino, file_block) is buffered, copies [offset, offset+len) into dst,
  // merging DRAM and NVMM by Cacheline Bitmap runs, and returns true.
  // Returns false when not buffered (caller reads NVMM directly).
  Result<bool> Read(uint64_t ino, uint64_t file_block, size_t offset, void* dst, size_t len,
                    uint64_t nvmm_addr);

  bool Contains(uint64_t ino, uint64_t file_block);

  // Flushes and evicts all buffered blocks of `ino` (fsync / mmap). Waits for
  // in-flight background writeback of the same file.
  Status FlushFile(uint64_t ino);

  // Flushes and evicts one block (the paper's case-(1) consistency rule:
  // an O_SYNC write to a buffered block updates DRAM, then evicts).
  Status FlushBlock(uint64_t ino, uint64_t file_block);

  // Flushes everything (sync(2) / unmount).
  Status FlushAll();

  // Drops buffered blocks of `ino` with file_block >= from_block without
  // writing them back (unlink / truncate: deleted data never reaches NVMM).
  Status DiscardFile(uint64_t ino, uint64_t from_block = 0);

  // --- introspection ---------------------------------------------------------
  size_t capacity_blocks() const { return capacity_blocks_; }
  size_t free_blocks() const;
  uint64_t buffer_hits() const { return hits_; }
  uint64_t buffer_misses() const { return misses_; }
  uint64_t writeback_blocks() const { return writeback_blocks_; }
  uint64_t writeback_lines() const { return writeback_lines_; }
  uint64_t fetched_lines() const { return fetched_lines_; }
  uint64_t stall_count() const { return stalls_; }

 private:
  struct Entry {
    uint64_t ino = 0;
    uint64_t file_block = 0;
    uint64_t nvmm_addr = kNoNvmmAddr;
    uint64_t valid = 0;  // lines present in DRAM
    uint64_t dirty = 0;  // lines modified since fetch
    uint32_t dram_index = 0;
    bool writing = false;  // being flushed by a writeback thread
    uint64_t last_written_ns = 0;
    uint32_t freq = 0;     // write-reference count (LFU)
    uint8_t arc_list = 1;  // ARC: 1 = T1 (recent), 2 = T2 (frequent)
    Entry* lrw_prev = nullptr;  // residency list: head = eviction end, tail = MRW
    Entry* lrw_next = nullptr;
  };

  struct EntryList {
    Entry head;  // sentinel
    size_t size = 0;
    EntryList() {
      head.lrw_prev = &head;
      head.lrw_next = &head;
    }
  };

  uint8_t* DataFor(const Entry& e) { return pool_.get() + size_t{e.dram_index} * kBlockSize; }

  // All helpers below require mu_ held.
  Entry* FindLocked(uint64_t ino, uint64_t file_block);
  Result<Entry*> CreateLocked(std::unique_lock<std::mutex>& lock, uint64_t ino,
                              uint64_t file_block, uint64_t nvmm_addr);
  void DetachLocked(Entry* e);  // removes from index + lists and frees the frame
  static void ListUnlink(EntryList& list, Entry* e);
  static void ListPushMru(EntryList& list, Entry* e);

  // Replacement-policy hooks.
  void OnInsertLocked(Entry* e);
  void OnWriteHitLocked(Entry* e);
  // Picks up to `want` evictable (non-writing) entries in policy order and
  // marks them writing.
  std::vector<Entry*> PickVictimsLocked(size_t want);
  static uint64_t GhostKey(const Entry& e) { return (e.ino << 32) ^ e.file_block; }
  void GhostRecordLocked(Entry* e);
  void GhostTrimLocked(std::list<uint64_t>& fifo, std::unordered_set<uint64_t>& set,
                       size_t limit);

  // Flush one entry's dirty lines to NVMM. Called WITHOUT mu_ held; the entry
  // must be marked writing. Returns lines flushed.
  Result<uint32_t> FlushEntryData(Entry* e);

  // Collects victims (marks writing) under the lock, flushes them outside it,
  // then detaches them. Shared by foreground flush and the background engine.
  Status FlushEntries(std::vector<Entry*> victims);

  void WritebackThread();

  NvmmDevice* nvmm_;
  HinfsOptions options_;
  EnsureBlockFn ensure_block_;
  size_t capacity_blocks_;
  size_t low_blocks_;
  size_t high_blocks_;

  std::unique_ptr<uint8_t[]> pool_;

  mutable std::mutex mu_;
  std::condition_variable free_cv_;   // signaled when frames are freed
  std::condition_variable wb_cv_;     // wakes the background threads
  std::condition_variable write_done_cv_;  // signaled when a flush completes
  std::vector<uint32_t> free_frames_;
  std::unordered_map<uint64_t, std::unique_ptr<BTreeMap<Entry*>>> index_;  // per-file B+tree
  // Residency lists. LRW/FIFO/LFU use t1_ only; ARC splits entries into
  // t1_ (seen once) and t2_ (seen again) with ghost lists b1_/b2_ steering the
  // adaptive target p_ (T1's share of the cache).
  EntryList t1_;
  EntryList t2_;
  std::list<uint64_t> b1_fifo_;
  std::list<uint64_t> b2_fifo_;
  std::unordered_set<uint64_t> b1_;
  std::unordered_set<uint64_t> b2_;
  size_t arc_p_ = 0;
  size_t resident_ = 0;

  std::vector<std::thread> threads_;
  bool stop_ = false;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t writeback_blocks_ = 0;
  uint64_t writeback_lines_ = 0;
  uint64_t fetched_lines_ = 0;
  uint64_t stalls_ = 0;
};

}  // namespace hinfs

#endif  // SRC_HINFS_DRAM_BUFFER_H_
