// trace_replay: synthesize one of the paper's trace profiles and replay it on
// a chosen file system, printing the Fig. 12-style per-op time breakdown.
//
//   ./build/examples/trace_replay [usr0|usr1|lasr|facebook|tpcc] \
//                                 [pmfs|hinfs|hinfs-wb|ext4dax|ext2|ext4]

#include <cstdio>
#include <cstring>
#include <string>

#include "src/workloads/fs_setup.h"
#include "src/workloads/trace.h"

using namespace hinfs;

namespace {

TraceProfile ProfileByName(const std::string& name) {
  if (name == "usr1") {
    return Usr1Profile();
  }
  if (name == "lasr") {
    return LasrProfile();
  }
  if (name == "facebook") {
    return FacebookProfile();
  }
  if (name == "tpcc") {
    return TpccTraceProfile();
  }
  return Usr0Profile();
}

FsKind KindByName(const std::string& name) {
  if (name == "pmfs") {
    return FsKind::kPmfs;
  }
  if (name == "hinfs-wb") {
    return FsKind::kHinfsWb;
  }
  if (name == "ext4dax") {
    return FsKind::kExt4Dax;
  }
  if (name == "ext2") {
    return FsKind::kExt2Nvmmbd;
  }
  if (name == "ext4") {
    return FsKind::kExt4Nvmmbd;
  }
  return FsKind::kHinfs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string profile_name = argc > 1 ? argv[1] : "usr0";
  const std::string fs_name = argc > 2 ? argv[2] : "hinfs";

  TraceProfile profile = ProfileByName(profile_name);
  profile.num_ops = 30000;
  const auto trace = SynthesizeTrace(profile);
  const auto fsync_stats = ComputeFsyncBytes(trace);
  std::printf("trace %-9s: %zu ops, %.1f%% fsync bytes (Fig. 2 property)\n",
              profile.name.c_str(), trace.size(), fsync_stats.Percent());

  TestBedConfig cfg;
  cfg.nvmm.size_bytes = 512ull << 20;
  cfg.nvmm.latency_mode = LatencyMode::kSpin;
  cfg.hinfs.buffer_bytes = 64ull << 20;
  auto bed = MakeTestBed(KindByName(fs_name), cfg);
  if (!bed.ok()) {
    std::fprintf(stderr, "setup: %s\n", bed.status().ToString().c_str());
    return 1;
  }

  auto breakdown = ReplayTrace((*bed)->vfs.get(), trace);
  if (!breakdown.ok()) {
    std::fprintf(stderr, "replay: %s\n", breakdown.status().ToString().c_str());
    return 1;
  }

  const double total_ms = breakdown->TotalNs() / 1e6;
  std::printf("replayed on %-12s total %8.2f ms\n", FsKindName(KindByName(fs_name)), total_ms);
  std::printf("  read:   %8.2f ms (%4.1f%%)\n", breakdown->read_ns / 1e6,
              100.0 * breakdown->read_ns / breakdown->TotalNs());
  std::printf("  write:  %8.2f ms (%4.1f%%)\n", breakdown->write_ns / 1e6,
              100.0 * breakdown->write_ns / breakdown->TotalNs());
  std::printf("  fsync:  %8.2f ms (%4.1f%%)\n", breakdown->fsync_ns / 1e6,
              100.0 * breakdown->fsync_ns / breakdown->TotalNs());
  std::printf("  unlink: %8.2f ms (%4.1f%%)\n", breakdown->unlink_ns / 1e6,
              100.0 * breakdown->unlink_ns / breakdown->TotalNs());
  return (*bed)->vfs->Unmount().ok() ? 0 : 1;
}
