file(REMOVE_RECURSE
  "CMakeFiles/ablation_benefit_model.dir/ablation_benefit_model.cc.o"
  "CMakeFiles/ablation_benefit_model.dir/ablation_benefit_model.cc.o.d"
  "ablation_benefit_model"
  "ablation_benefit_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_benefit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
