file(REMOVE_RECURSE
  "CMakeFiles/cacheline_bitmap_test.dir/cacheline_bitmap_test.cc.o"
  "CMakeFiles/cacheline_bitmap_test.dir/cacheline_bitmap_test.cc.o.d"
  "cacheline_bitmap_test"
  "cacheline_bitmap_test.pdb"
  "cacheline_bitmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacheline_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
