# Empty dependencies file for blockfs_test.
# This may be replaced when dependencies are built.
