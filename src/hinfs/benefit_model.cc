#include "src/hinfs/benefit_model.h"

#include <bit>

namespace hinfs {

void EagerPersistenceChecker::RecordWrite(uint64_t ino, uint64_t file_block,
                                          uint32_t lines_written, uint64_t line_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& fs = files_[ino];
  GhostBlock& gb = fs.blocks[file_block];
  if (gb.n_cw == 0) {
    fs.touched.push_back(file_block);
  }
  gb.n_cw += lines_written;
  gb.ghost_dirty |= line_mask;
}

bool EagerPersistenceChecker::ShouldGoDirect(uint64_t ino, uint64_t file_block,
                                             uint64_t now_ns) {
  if (!options_.eager_checker) {
    return false;  // HiNFS-WB: buffer everything
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = files_.find(ino);
  if (fit == files_.end()) {
    return false;
  }
  if (fit->second.force_eager) {
    return true;
  }
  // Decay: Eager-Persistent reverts to Lazy-Persistent when the file has not
  // seen a synchronization operation for eager_decay_ms.
  const uint64_t decay_ns = options_.eager_decay_ms * 1'000'000ull;
  const uint64_t file_last_sync_ns = fit->second.last_sync_ns;
  const bool sync_fresh =
      file_last_sync_ns != 0 && now_ns - file_last_sync_ns <= decay_ns;

  auto bit = fit->second.blocks.find(file_block);
  if (bit == fit->second.blocks.end() || !bit->second.has_prev) {
    // A block that has never been through a sync evaluation (typically a
    // fresh append block) inherits the file's recent majority verdict.
    return fit->second.eager_bias && sync_fresh;
  }
  if (!bit->second.eager) {
    return false;
  }
  if (!sync_fresh) {
    bit->second.eager = false;
    return false;
  }
  return true;
}

void EagerPersistenceChecker::OnFsync(uint64_t ino, uint64_t now_ns) {
  if (!options_.eager_checker) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = files_.find(ino);
  if (fit == files_.end()) {
    return;
  }
  fit->second.last_sync_ns = now_ns;
  const uint64_t l_dram = options_.dram_write_ns_per_line;
  uint64_t eager_now = 0;
  uint64_t lazy_now = 0;
  for (uint64_t block : fit->second.touched) {
    GhostBlock& gb = fit->second.blocks[block];
    if (gb.n_cw == 0) {
      continue;  // already handled (duplicate touch entry)
    }
    const uint64_t n_cw = gb.n_cw;
    const uint64_t n_cf = static_cast<uint64_t>(std::popcount(gb.ghost_dirty));
    // Inequality (1): buffering wins iff total DRAM-write + sync-flush time is
    // below the direct-to-NVMM write time.
    const bool satisfied = n_cw * l_dram + n_cf * l_nvmm_ns_ < n_cw * l_nvmm_ns_;
    decisions_++;
    if (gb.has_prev) {
      paired_++;
      if (gb.prev_satisfied == satisfied) {
        accurate_++;
      }
    }
    gb.has_prev = true;
    gb.prev_satisfied = satisfied;
    gb.eager = !satisfied;
    if (satisfied) {
      lazy_marks_++;
      lazy_now++;
    } else {
      eager_marks_++;
      eager_now++;
    }
    gb.n_cw = 0;
    gb.ghost_dirty = 0;
  }
  fit->second.touched.clear();
  if (eager_now + lazy_now > 0) {
    fit->second.eager_bias = eager_now > lazy_now;
  }
}

void EagerPersistenceChecker::ForceEager(uint64_t ino) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[ino].force_eager = true;
}

void EagerPersistenceChecker::ClearForceEager(uint64_t ino) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(ino);
  if (it != files_.end()) {
    it->second.force_eager = false;
  }
}

void EagerPersistenceChecker::Forget(uint64_t ino) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(ino);
}

}  // namespace hinfs
