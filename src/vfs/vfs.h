// Vfs: POSIX-like syscall front-end over a mounted FileSystem.
//
// Provides path resolution with a dentry cache (the kernel dcache analogue),
// a file-descriptor table with per-fd offsets and open flags, and the syscall
// surface the workloads use: open/close/read/write/pread/pwrite/fsync/unlink/
// mkdir/rmdir/rename/stat/readdir/truncate.

#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/vfs/file_system.h"

namespace hinfs {

// open(2) flag bits (subset the workloads need).
enum OpenFlags : uint32_t {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,
  kTrunc = 0x200,
  kAppend = 0x400,
  kSync = 0x1000,  // O_SYNC: every write is eager-persistent
};

class Vfs {
 public:
  // Mounts `fs` at "/". `sync_mount` makes every write on this mount
  // eager-persistent (mount -o sync).
  explicit Vfs(FileSystem* fs, bool sync_mount = false);
  ~Vfs();

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // --- fd-based API -----------------------------------------------------------
  Result<int> Open(std::string_view path, uint32_t flags);
  Status Close(int fd);
  // Sequential read/write advancing the fd offset.
  Result<size_t> Read(int fd, void* dst, size_t len);
  Result<size_t> Write(int fd, const void* src, size_t len);
  // Positional read/write (offset is explicit; fd offset unchanged).
  Result<size_t> Pread(int fd, void* dst, size_t len, uint64_t offset);
  Result<size_t> Pwrite(int fd, const void* src, size_t len, uint64_t offset);
  Result<uint64_t> Seek(int fd, uint64_t offset);
  Status Fsync(int fd);
  Status Ftruncate(int fd, uint64_t size);
  Result<InodeAttr> Fstat(int fd);

  // --- path-based API -----------------------------------------------------------
  Status Mkdir(std::string_view path);
  Status Rmdir(std::string_view path);
  Status Unlink(std::string_view path);
  Status Rename(std::string_view from, std::string_view to);
  Result<InodeAttr> Stat(std::string_view path);
  Result<std::vector<DirEntry>> ReadDir(std::string_view path);
  bool Exists(std::string_view path);

  // --- whole-FS ----------------------------------------------------------------
  Status SyncFs();
  // Flushes and unmounts; all fds are invalidated.
  Status Unmount();

  FileSystem* fs() { return fs_; }

  // Convenience for tests: write/read an entire small file by path.
  Status WriteFile(std::string_view path, std::string_view contents);
  Result<std::string> ReadFileToString(std::string_view path);

 private:
  struct FdEntry {
    uint64_t ino = 0;
    uint32_t flags = 0;
    uint64_t offset = 0;
  };

  // Resolves `path` to an inode; with `want_parent`, resolves the parent
  // directory and returns the final component in `leaf`.
  Result<uint64_t> Resolve(std::string_view path);
  Result<uint64_t> ResolveParent(std::string_view path, std::string* leaf);
  Result<uint64_t> LookupCached(uint64_t dir_ino, std::string_view name);
  void InvalidateDentry(uint64_t dir_ino, std::string_view name);

  Result<size_t> WriteInternal(FdEntry& e, const void* src, size_t len, uint64_t offset,
                               bool advance);

  FileSystem* fs_;
  bool sync_mount_;

  std::mutex fd_mu_;
  std::unordered_map<int, FdEntry> fds_;
  int next_fd_ = 3;

  // Dentry cache: (dir_ino, name) -> child ino. Positive entries only.
  std::shared_mutex dcache_mu_;
  std::unordered_map<std::string, uint64_t> dcache_;
};

// Splits "/a/b/c" into {"a", "b", "c"}; rejects empty components and names
// longer than kMaxNameLen.
Result<std::vector<std::string>> SplitPath(std::string_view path);

}  // namespace hinfs

#endif  // SRC_VFS_VFS_H_
