// kvstore_wal: a small durable key-value store built on the HiNFS public API —
// the classic write-ahead-logging pattern the paper's TPC-C analysis assumes.
//
// Commits append to a WAL and fsync it (eager-persistent: the Buffer Benefit
// Model sends these straight to NVMM). The table file is rewritten lazily and
// checkpointed occasionally (lazy-persistent: coalesced in the DRAM buffer).
//
//   ./build/examples/kvstore_wal

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

using namespace hinfs;

namespace {

class KvStore {
 public:
  explicit KvStore(Vfs* vfs) : vfs_(vfs) {}

  Status OpenStore() {
    HINFS_RETURN_IF_ERROR(vfs_->Mkdir("/kv"));
    HINFS_ASSIGN_OR_RETURN(wal_fd_, vfs_->Open("/kv/wal", kWrOnly | kCreate | kAppend));
    HINFS_ASSIGN_OR_RETURN(table_fd_, vfs_->Open("/kv/table", kRdWr | kCreate));
    return OkStatus();
  }

  // Durable put: WAL record + fsync, then lazy table update.
  Status Put(const std::string& key, const std::string& value) {
    // WAL record: "key=value\n".
    std::string rec = key + "=" + value + "\n";
    HINFS_RETURN_IF_ERROR(vfs_->Write(wal_fd_, rec.data(), rec.size()).status());
    HINFS_RETURN_IF_ERROR(vfs_->Fsync(wal_fd_));  // commit point
    mem_[key] = value;
    dirty_++;
    if (dirty_ >= 64) {
      HINFS_RETURN_IF_ERROR(Checkpoint());
    }
    return OkStatus();
  }

  Result<std::string> Get(const std::string& key) const {
    auto it = mem_.find(key);
    if (it == mem_.end()) {
      return Status(ErrorCode::kNotFound, key);
    }
    return it->second;
  }

  // Checkpoint: serialize the table (lazy writes, coalesced in DRAM), fsync
  // it, then truncate the WAL.
  Status Checkpoint() {
    std::string blob;
    for (const auto& [k, v] : mem_) {
      blob += k + "=" + v + "\n";
    }
    HINFS_RETURN_IF_ERROR(vfs_->Ftruncate(table_fd_, 0));
    HINFS_RETURN_IF_ERROR(vfs_->Pwrite(table_fd_, blob.data(), blob.size(), 0).status());
    HINFS_RETURN_IF_ERROR(vfs_->Fsync(table_fd_));
    HINFS_RETURN_IF_ERROR(vfs_->Ftruncate(wal_fd_, 0));
    checkpoints_++;
    dirty_ = 0;
    return OkStatus();
  }

  int checkpoints() const { return checkpoints_; }

 private:
  Vfs* vfs_;
  int wal_fd_ = -1;
  int table_fd_ = -1;
  std::map<std::string, std::string> mem_;
  int dirty_ = 0;
  int checkpoints_ = 0;
};

}  // namespace

int main() {
  NvmmConfig nvmm_cfg;
  nvmm_cfg.size_bytes = 256ull << 20;
  nvmm_cfg.latency_mode = LatencyMode::kSpin;
  NvmmDevice nvmm(nvmm_cfg);

  HinfsOptions hopts;
  hopts.buffer_bytes = 32ull << 20;
  auto fs = HinfsFs::Format(&nvmm, hopts);
  if (!fs.ok()) {
    std::fprintf(stderr, "format: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  Vfs vfs(fs->get());
  KvStore store(&vfs);
  if (!store.OpenStore().ok()) {
    std::fprintf(stderr, "open store failed\n");
    return 1;
  }

  for (int i = 0; i < 500; i++) {
    const std::string key = "user:" + std::to_string(i % 100);
    const std::string value = "profile-v" + std::to_string(i);
    if (Status st = store.Put(key, value); !st.ok()) {
      std::fprintf(stderr, "put: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  auto v = store.Get("user:42");
  if (!v.ok()) {
    std::fprintf(stderr, "get failed\n");
    return 1;
  }
  std::printf("500 durable puts done; user:42 -> %s; %d checkpoints\n", v->c_str(),
              store.checkpoints());
  std::printf("write mix as classified by the Buffer Benefit Model: eager=%llu lazy=%llu\n",
              static_cast<unsigned long long>((*fs)->stats().Get(kStatEagerWrites)),
              static_cast<unsigned long long>((*fs)->stats().Get(kStatLazyWrites)));
  return vfs.Unmount().ok() ? 0 : 1;
}
