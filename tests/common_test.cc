#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace hinfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status st(ErrorCode::kNotFound, "/a/b");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.ToString(), "not found: /a/b");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kIoError); c++) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status(ErrorCode::kNoSpace); };
  auto wrapper = [&]() -> Status {
    HINFS_RETURN_IF_ERROR(fails());
    return OkStatus();
  };
  EXPECT_EQ(wrapper().code(), ErrorCode::kNoSpace);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(ErrorCode::kBadFd);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kBadFd);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = []() -> Result<std::string> { return std::string("hi"); };
  auto use = [&]() -> Result<size_t> {
    HINFS_ASSIGN_OR_RETURN(std::string s, make());
    return s.size();
  };
  ASSERT_TRUE(use().ok());
  EXPECT_EQ(*use(), 2u);
}

TEST(ClockTest, MonotonicAdvances) {
  const uint64_t a = MonotonicNowNs();
  const uint64_t b = MonotonicNowNs();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SpinForWaitsRoughly) {
  const uint64_t start = MonotonicNowNs();
  SpinFor(100'000);  // 100 us
  EXPECT_GE(MonotonicNowNs() - start, 100'000u);
}

TEST(SimClockTest, PerThreadAccounting) {
  SimClock::ResetThread();
  SimClock::Advance(500);
  EXPECT_EQ(SimClock::ThreadNowNs(), 500u);
  std::thread other([] {
    SimClock::ResetThread();
    EXPECT_EQ(SimClock::ThreadNowNs(), 0u);
    SimClock::Advance(7);
    EXPECT_EQ(SimClock::ThreadNowNs(), 7u);
  });
  other.join();
  EXPECT_EQ(SimClock::ThreadNowNs(), 500u);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; i++) {
    const uint64_t v = rng.Between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(RngTest, SkewedConcentratesMass) {
  Rng rng(3);
  int low_half = 0;
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    if (rng.Skewed(1000, 0.6) < 500) {
      low_half++;
    }
  }
  // With strong skew, far more than half the picks land in the low half.
  EXPECT_GT(low_half, n * 7 / 10);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_FALSE(h.Summary().empty());
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    h.Record(rng.Below(1'000'000));
  }
  EXPECT_LE(h.Percentile(0.1), h.Percentile(0.5));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.99));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Record(42);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);

  // Empty absorbing non-empty takes its stats wholesale.
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42u);
  EXPECT_EQ(empty.max(), 42u);
}

TEST(HistogramTest, PercentileExtremeQuantiles) {
  Histogram h;
  h.Record(8);      // exactly bucket 3
  h.Record(100'000);
  // q=0 tracks the low end, q=1 the high end; both bounded by the recorded
  // range's bucket boundaries.
  EXPECT_LE(h.Percentile(0.0), h.Percentile(1.0));
  EXPECT_GE(h.Percentile(0.0), 1u);
  EXPECT_GE(h.Percentile(1.0), 100'000u / 2);  // within the max's bucket

  Histogram empty;
  EXPECT_EQ(empty.Percentile(0.0), 0u);
  EXPECT_EQ(empty.Percentile(1.0), 0u);
}

TEST(HistogramTest, BucketForIsMonotone) {
  EXPECT_EQ(Histogram::BucketFor(0), Histogram::BucketFor(1));
  int prev = Histogram::BucketFor(1);
  for (uint64_t v = 2; v < (1ull << 20); v *= 2) {
    const int b = Histogram::BucketFor(v);
    EXPECT_GT(b, prev) << "v=" << v;
    prev = b;
  }
  EXPECT_LT(Histogram::BucketFor(UINT64_MAX), Histogram::kBuckets);
}

TEST(ConcurrentHistogramTest, SnapshotMatchesSerialRecording) {
  ConcurrentHistogram ch;
  Histogram expected;
  for (uint64_t v : {1u, 5u, 70u, 4096u, 1'000'000u}) {
    ch.Record(v);
    expected.Record(v);
  }
  const Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), expected.count());
  EXPECT_EQ(snap.sum(), expected.sum());
  EXPECT_EQ(snap.min(), expected.min());
  EXPECT_EQ(snap.max(), expected.max());
  EXPECT_EQ(snap.Percentile(0.5), expected.Percentile(0.5));
}

TEST(ConcurrentHistogramTest, ParallelRecordersLoseNothing) {
  ConcurrentHistogram ch;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&ch, t] {
      for (int i = 0; i < kPerThread; i++) {
        ch.Record(static_cast<uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  const Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min(), 1u);
  EXPECT_EQ(snap.max(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum of 1..N.
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.sum(), n * (n + 1) / 2);
}

TEST(ConcurrentHistogramTest, ResetClears) {
  ConcurrentHistogram ch;
  ch.Record(7);
  ch.Reset();
  const Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.Percentile(0.99), 0u);
}

TEST(StatsTest, CountersAccumulate) {
  StatsRegistry stats;
  stats.Add("x", 3);
  stats.Add("x", 4);
  EXPECT_EQ(stats.Get("x"), 7u);
  EXPECT_EQ(stats.Get("missing"), 0u);
}

TEST(StatsTest, HeterogeneousLookupByStringView) {
  StatsRegistry stats;
  const std::string owned = "srv_frames_rx";
  stats.Add(std::string_view(owned), 2);
  // Lookup through a different string object with equal contents — the map
  // must compare by value, not identity, and Counter must hit the same cell.
  char buf[] = "srv_frames_rx";
  EXPECT_EQ(stats.Get(std::string_view(buf, sizeof(buf) - 1)), 2u);
  EXPECT_EQ(stats.Counter(owned), stats.Counter(std::string_view(buf, sizeof(buf) - 1)));
}

TEST(StatsTest, CounterPointerStable) {
  StatsRegistry stats;
  auto* cell = stats.Counter("hot");
  for (int i = 0; i < 100; i++) {
    stats.Add("filler" + std::to_string(i), 1);
  }
  EXPECT_EQ(cell, stats.Counter("hot"));
}

TEST(StatsTest, ScopedTimerAddsTime) {
  StatsRegistry stats;
  {
    ScopedTimer t(stats.Counter("t"));
    SpinFor(50'000);
  }
  EXPECT_GE(stats.Get("t"), 50'000u);
}

TEST(StatsTest, SnapshotSortedAndReset) {
  StatsRegistry stats;
  stats.Add("b", 1);
  stats.Add("a", 2);
  auto snap = stats.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  stats.Reset();
  EXPECT_EQ(stats.Get("a"), 0u);
}

TEST(StatsTest, ConcurrentAdds) {
  StatsRegistry stats;
  auto* cell = stats.Counter("c");
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; t++) {
    pool.emplace_back([cell] {
      for (int i = 0; i < 10000; i++) {
        cell->fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  EXPECT_EQ(stats.Get("c"), 40000u);
}

}  // namespace
}  // namespace hinfs
