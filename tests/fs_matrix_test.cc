// Integration matrix: every file system in Table 3 (plus ablations) must
// behave identically at the VFS level. A randomized op stream is checked
// against an in-memory reference model.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/common/rng.h"
#include "src/workloads/fs_setup.h"
#include "src/workloads/workload.h"

namespace hinfs {
namespace {

TestBedConfig SmallConfig() {
  TestBedConfig cfg;
  cfg.nvmm.size_bytes = 64 << 20;
  cfg.nvmm.latency_mode = LatencyMode::kNone;
  cfg.hinfs.buffer_bytes = 2 << 20;
  cfg.hinfs.writeback_period_ms = 20;
  cfg.pmfs.max_inodes = 4096;
  return cfg;
}

class FsMatrixTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(FsMatrixTest, BasicLifecycle) {
  auto bed = MakeTestBed(GetParam(), SmallConfig());
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  Vfs* vfs = (*bed)->vfs.get();

  ASSERT_TRUE(vfs->Mkdir("/dir").ok());
  ASSERT_TRUE(vfs->WriteFile("/dir/file", "contents").ok());
  auto content = vfs->ReadFileToString("/dir/file");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "contents");
  ASSERT_TRUE(vfs->Rename("/dir/file", "/dir/renamed").ok());
  EXPECT_FALSE(vfs->Exists("/dir/file").value_or(true));
  ASSERT_TRUE(vfs->Unlink("/dir/renamed").ok());
  ASSERT_TRUE(vfs->Rmdir("/dir").ok());
  ASSERT_TRUE(vfs->Unmount().ok());
}

TEST_P(FsMatrixTest, FsyncDurableAndReadable) {
  auto bed = MakeTestBed(GetParam(), SmallConfig());
  ASSERT_TRUE(bed.ok());
  Vfs* vfs = (*bed)->vfs.get();
  auto fd = vfs->Open("/f", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(30000, 0x33);
  ASSERT_TRUE(vfs->Write(*fd, data.data(), data.size()).ok());
  ASSERT_TRUE(vfs->Fsync(*fd).ok());
  uint8_t out[16];
  auto n = vfs->Pread(*fd, out, 16, 29984);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 16u);
  EXPECT_EQ(out[0], 0x33);
}

TEST_P(FsMatrixTest, RandomOpsMatchReferenceModel) {
  auto bed = MakeTestBed(GetParam(), SmallConfig());
  ASSERT_TRUE(bed.ok());
  Vfs* vfs = (*bed)->vfs.get();

  // Reference model: path -> contents.
  std::map<std::string, std::string> model;
  Rng rng(2024);
  std::vector<uint8_t> payload(64 * 1024);
  FillPattern(payload, 1);

  for (int step = 0; step < 800; step++) {
    const int file_id = static_cast<int>(rng.Below(12));
    const std::string path = "/r" + std::to_string(file_id);
    const double roll = rng.NextDouble();

    if (roll < 0.35) {
      // pwrite at a random offset.
      const size_t len = 1 + rng.Below(20000);
      const uint64_t max_base =
          model.count(path) != 0 ? model[path].size() : 0;
      const uint64_t offset = rng.Below(max_base + 4096);
      auto fd = vfs->Open(path, kRdWr | kCreate);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(vfs->Pwrite(*fd, payload.data(), len, offset).ok());
      ASSERT_TRUE(vfs->Close(*fd).ok());
      std::string& ref = model[path];
      if (ref.size() < offset + len) {
        ref.resize(offset + len, '\0');
      }
      std::memcpy(ref.data() + offset, payload.data(), len);
    } else if (roll < 0.55) {
      // Full read + compare.
      auto it = model.find(path);
      auto content = vfs->ReadFileToString(path);
      if (it == model.end()) {
        EXPECT_FALSE(content.ok()) << path;
      } else {
        ASSERT_TRUE(content.ok()) << path << ": " << content.status().ToString();
        ASSERT_EQ(content->size(), it->second.size()) << path << " step " << step;
        EXPECT_EQ(*content, it->second) << path << " step " << step;
      }
    } else if (roll < 0.65) {
      // Random-range read + compare.
      auto it = model.find(path);
      if (it != model.end() && !it->second.empty()) {
        const uint64_t offset = rng.Below(it->second.size());
        const size_t len = 1 + rng.Below(8192);
        auto fd = vfs->Open(path, kRdOnly);
        ASSERT_TRUE(fd.ok());
        std::vector<char> out(len);
        auto n = vfs->Pread(*fd, out.data(), len, offset);
        ASSERT_TRUE(n.ok());
        const size_t expect = std::min<size_t>(len, it->second.size() - offset);
        ASSERT_EQ(*n, expect);
        EXPECT_EQ(std::memcmp(out.data(), it->second.data() + offset, expect), 0)
            << path << " step " << step;
        ASSERT_TRUE(vfs->Close(*fd).ok());
      }
    } else if (roll < 0.75) {
      // Truncate to random size.
      auto it = model.find(path);
      if (it != model.end()) {
        const uint64_t new_size = rng.Below(it->second.size() + 2000);
        auto fd = vfs->Open(path, kRdWr);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(vfs->Ftruncate(*fd, new_size).ok());
        ASSERT_TRUE(vfs->Close(*fd).ok());
        it->second.resize(new_size, '\0');
      }
    } else if (roll < 0.85) {
      // fsync.
      if (model.count(path) != 0) {
        auto fd = vfs->Open(path, kRdWr);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(vfs->Fsync(*fd).ok());
        ASSERT_TRUE(vfs->Close(*fd).ok());
      }
    } else if (roll < 0.93) {
      // Append.
      if (model.count(path) != 0) {
        const size_t len = 1 + rng.Below(10000);
        auto fd = vfs->Open(path, kWrOnly | kAppend);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(vfs->Write(*fd, payload.data(), len).ok());
        ASSERT_TRUE(vfs->Close(*fd).ok());
        model[path].append(reinterpret_cast<char*>(payload.data()), len);
      }
    } else {
      // Unlink.
      Status st = vfs->Unlink(path);
      EXPECT_EQ(st.ok(), model.erase(path) > 0) << path << " step " << step;
    }
  }

  // Final verification of every surviving file.
  for (const auto& [path, ref] : model) {
    auto content = vfs->ReadFileToString(path);
    ASSERT_TRUE(content.ok()) << path;
    EXPECT_EQ(*content, ref) << path;
  }
  ASSERT_TRUE(vfs->Unmount().ok());
}

INSTANTIATE_TEST_SUITE_P(AllFs, FsMatrixTest,
                         ::testing::Values(FsKind::kPmfs, FsKind::kExt4Dax, FsKind::kExt2Nvmmbd,
                                           FsKind::kExt4Nvmmbd, FsKind::kHinfs,
                                           FsKind::kHinfsNclfw, FsKind::kHinfsWb,
                                           FsKind::kHinfsFifo),
                         [](const auto& info) {
                           std::string name = FsKindName(info.param);
                           for (char& c : name) {
                             if (c == '+' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace hinfs
