#include "src/common/rng.h"

#include <cmath>

namespace hinfs {

uint64_t Rng::Skewed(uint64_t n, double theta) {
  if (n == 0) {
    return 0;
  }
  // Power-law transform of a uniform variate: small indices are sampled with
  // much higher probability than large ones, concentrating (1 - theta) of the
  // mass on roughly the first theta fraction of the keyspace.
  const double u = NextDouble();
  const double exponent = 1.0 / (1.0 - theta);
  auto idx = static_cast<uint64_t>(std::pow(u, exponent) * static_cast<double>(n));
  return idx >= n ? n - 1 : idx;
}

}  // namespace hinfs
