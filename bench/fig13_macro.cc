// Fig. 13: macrobenchmark elapsed time (Postmark, TPC-C, Kernel-Grep,
// Kernel-Make) normalized to PMFS, including HiNFS-WB.

#include "bench/bench_common.h"
#include "src/workloads/macro.h"

using namespace hinfs;

namespace {

Result<double> RunMacro(FsKind kind, bool wal, const std::string& name) {
  auto bed_cfg = PaperBedConfig(512ull << 20, 64ull << 20);
  bed_cfg.wal = wal;
  HINFS_ASSIGN_OR_RETURN(std::unique_ptr<TestBed> bed, MakeTestBed(kind, bed_cfg));
  Vfs* vfs = bed->vfs.get();

  WorkloadResult result;
  if (name == "Postmark") {
    PostmarkConfig cfg;
    cfg.nfiles = ScaledOps(cfg.nfiles);
    cfg.transactions = ScaledOps(cfg.transactions);
    HINFS_ASSIGN_OR_RETURN(result, RunPostmark(vfs, cfg));
  } else if (name == "TPC-C") {
    TpccConfig cfg;
    cfg.transactions = ScaledOps(cfg.transactions);
    HINFS_ASSIGN_OR_RETURN(result, RunTpcc(vfs, cfg));
  } else {
    KernelTreeConfig cfg;
    cfg.dirs = ScaledOps(cfg.dirs);
    cfg.headers = ScaledOps(cfg.headers);
    HINFS_RETURN_IF_ERROR(BuildKernelTree(vfs, cfg));
    if (name == "Kernel-Grep") {
      HINFS_ASSIGN_OR_RETURN(result, RunKernelGrep(vfs, cfg));
    } else {
      HINFS_ASSIGN_OR_RETURN(result, RunKernelMake(vfs, cfg));
    }
  }
  HINFS_RETURN_IF_ERROR(vfs->Unmount());
  return result.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 13", "macrobenchmark elapsed time normalized to PMFS");
  std::vector<BenchJsonRow> rows;

  // pmfs+wal: the same PMFS fronted by the NVMM write-ahead log — the
  // sync-bound macros (TPC-C above all) show what logged durability buys.
  struct Column {
    FsKind kind;
    bool wal;
  };
  const Column columns[] = {{FsKind::kPmfs, false},       {FsKind::kPmfs, true},
                            {FsKind::kExt4Dax, false},    {FsKind::kExt2Nvmmbd, false},
                            {FsKind::kExt4Nvmmbd, false}, {FsKind::kHinfsWb, false},
                            {FsKind::kHinfs, false}};
  auto column_name = [](const Column& c) {
    return std::string(FsKindName(c.kind)) + (c.wal ? "+wal" : "");
  };
  const char* names[] = {"Postmark", "TPC-C", "Kernel-Grep", "Kernel-Make"};

  std::printf("%-13s", "benchmark");
  for (const Column& c : columns) {
    std::printf(" %13s", column_name(c).c_str());
  }
  std::printf("\n");

  for (const char* name : names) {
    std::printf("%-13s", name);
    double pmfs_s = 0;
    for (const Column& c : columns) {
      auto seconds = RunMacro(c.kind, c.wal, name);
      if (!seconds.ok()) {
        std::fprintf(stderr, "\n%s/%s: %s\n", name, column_name(c).c_str(),
                     seconds.status().ToString().c_str());
        return 1;
      }
      if (c.kind == FsKind::kPmfs && !c.wal) {
        pmfs_s = *seconds;
      }
      std::printf(" %7.2fs(%4.2f)", *seconds, pmfs_s > 0 ? *seconds / pmfs_s : 0.0);
      std::fflush(stdout);
      rows.push_back({column_name(c), name, "run", 0, *seconds, "seconds"});
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: HiNFS cuts Postmark/Kernel-Make times vs PMFS (short-lived\n"
              "files, lazy writes); ~PMFS on TPC-C (sync-bound) and Kernel-Grep (reads);\n"
              "HiNFS-WB worse than HiNFS on TPC-C; EXT2 < EXT4 on NVMMBD (no journal)\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
