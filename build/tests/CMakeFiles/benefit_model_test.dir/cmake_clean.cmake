file(REMOVE_RECURSE
  "CMakeFiles/benefit_model_test.dir/benefit_model_test.cc.o"
  "CMakeFiles/benefit_model_test.dir/benefit_model_test.cc.o.d"
  "benefit_model_test"
  "benefit_model_test.pdb"
  "benefit_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benefit_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
