#!/usr/bin/env python3
"""Plot the unified --json rows emitted by the figure benches.

Every bench binary under bench/ accepts `--json <path>` (bench::ArgParser) and
writes a flat JSON array of rows:

    {"fs": "HiNFS", "personality": "fileserver", "<x_key>": 4,
     "<value_key>": 123456.0}

where <x_key> is the sweep variable (threads, io_size, theta, ...) and
<value_key> names the metric (ops_per_sec, latency_ns, total_ms, ...).
micro_primitives emits google-benchmark's native JSON instead; that shape is
detected and flattened into the same row model.

Usage:
    tools/plot_bench.py out/fig08.json                  # one figure
    tools/plot_bench.py out/*.json -o plots/            # a directory of them
    tools/plot_bench.py out/fig08.json --format svg
    tools/plot_bench.py out/fig08.json --ascii          # terminal-only view
    tools/plot_bench.py --delta before.json after.json  # before/after + delta%

--delta takes exactly two --json files (baseline, candidate), prints a table
with a delta column for every row present in both, and — when matplotlib is
available — also renders per-group plots with the baseline dashed. Without
matplotlib the ASCII table is the whole output, so it works anywhere.

One plot is produced per (input file, personality, value_key) group: series
are file systems, x is the sweep variable. With matplotlib available each
plot is written as PNG and/or SVG; without it (this repo's container has no
matplotlib) the tool degrades to ASCII charts so the data is still readable.
No third-party dependency is required.
"""

import argparse
import json
import os
import sys

# Row-identity keys that are never parsed as the sweep variable or a metric.
# "tenant" tags multi-tenant rows (fig14): same metric, different QoS bucket.
RESERVED = ("fs", "personality", "tenant")


def load_config(path):
    """Returns the bench config block ({} for bare-array or google-benchmark files)."""
    with open(path, "r") as f:
        data = json.load(f)
    if isinstance(data, dict) and "rows" in data:
        return data.get("config", {})
    return {}


def load_rows(path):
    """Returns a list of normalized row dicts: fs, personality, x_key, x, value_key, value."""
    with open(path, "r") as f:
        data = json.load(f)

    # Benches emit {"config": {...}, "rows": [...]} since the WAL PR; older
    # recorded baselines are bare arrays. Both normalize to the same rows.
    if isinstance(data, dict) and "rows" in data:
        data = data["rows"]

    rows = []
    if isinstance(data, dict) and "benchmarks" in data:
        # google-benchmark JSON (micro_primitives): one series per benchmark
        # family, x = the /Arg suffix when present.
        for b in data.get("benchmarks", []):
            name = b.get("name", "")
            family, _, arg = name.partition("/")
            try:
                x = float(arg)
            except ValueError:
                x = 0.0
            rows.append({
                "fs": family,
                "personality": "micro",
                "x_key": "arg",
                "x": x,
                "value_key": "cpu_time_" + b.get("time_unit", "ns"),
                "value": float(b.get("cpu_time", 0.0)),
                "tenant": -1,
            })
        return rows

    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    for r in data:
        keys = [k for k in r if k not in RESERVED]
        if len(keys) < 2:
            raise ValueError(f"{path}: row missing x/value keys: {r}")
        # Row order is (fs, personality, x_key, value_key [, extra value_keys]):
        # the first non-reserved key is the sweep variable, each remaining
        # numeric key is its own metric.
        x_key = keys[0]
        for value_key in keys[1:]:
            rows.append({
                "fs": r.get("fs", "?"),
                "personality": r.get("personality", ""),
                "x_key": x_key,
                "x": float(r[x_key]),
                "value_key": value_key,
                "value": float(r[value_key]),
                "tenant": int(r.get("tenant", -1)),
            })
    return rows


def group_plots(rows):
    """Yields ((personality, value_key, x_key), {fs: [(x, value), ...]})."""
    plots = {}
    for r in rows:
        key = (r["personality"], r["value_key"], r["x_key"])
        series = plots.setdefault(key, {})
        # Tenant-tagged rows get their own series so per-tenant curves of the
        # same metric don't collapse into one line.
        label = r["fs"]
        if r.get("tenant", -1) >= 0:
            label = f"{label}[t{r['tenant']}]"
        series.setdefault(label, []).append((r["x"], r["value"]))
    for key, series in sorted(plots.items()):
        for pts in series.values():
            pts.sort()
        yield key, series


def ascii_plot(title, x_key, value_key, series, width=48):
    print(f"\n== {title} ==  ({value_key} vs {x_key})")
    peak = max((v for pts in series.values() for _, v in pts), default=0.0)
    if peak <= 0:
        peak = 1.0
    for fs, pts in sorted(series.items()):
        print(f"  {fs}")
        for x, v in pts:
            bar = "#" * max(1, int(width * v / peak))
            print(f"    {x_key}={x:<10g} {bar} {v:g}")
    # Pair each "<fs>+wal" series with its wal-off base and print the ratio,
    # so the logged-durability speedup is readable straight off the chart.
    for fs, pts in sorted(series.items()):
        base = series.get(fs.replace("+wal", "")) if fs.endswith("+wal") else None
        if not base:
            continue
        base_by_x = dict(base)
        for x, v in pts:
            if x in base_by_x and base_by_x[x] > 0:
                print(f"  {fs} vs {fs.replace('+wal', '')} @ {x_key}={x:g}: "
                      f"{v / base_by_x[x]:.2f}x")


def render_delta(base_path, cand_path, out_dir, formats, use_ascii):
    """Before/after comparison: ASCII delta table, plus dashed-baseline plots."""
    def index(path):
        out = {}
        for r in load_rows(path):
            fs = r["fs"]
            if r.get("tenant", -1) >= 0:
                fs = f"{fs}[t{r['tenant']}]"  # per-tenant rows are their own series
            out[(r["personality"], r["value_key"], r["x_key"], fs, r["x"])] = r["value"]
        return out

    base, cand = index(base_path), index(cand_path)
    shared = sorted(base.keys() & cand.keys())
    print(f"delta: {base_path} -> {cand_path} ({len(shared)} matched rows)")
    group = None
    for key in shared:
        personality, value_key, x_key, fs, x = key
        if (personality, value_key) != group:
            group = (personality, value_key)
            title = personality or "(no personality)"
            print(f"\n== {title} ==  ({value_key})")
        b, c = base[key], cand[key]
        pct = (c - b) / b * 100.0 if b else float("inf")
        print(f"  {fs:<12} {x_key}={x:<8g} {b:>14.3f} -> {c:>14.3f}  {pct:+8.2f}%")
    for name, only in (("baseline", base.keys() - cand.keys()),
                       ("candidate", cand.keys() - base.keys())):
        if only:
            print(f"\nonly in {name}: {len(only)} rows")

    if use_ascii:
        return []

    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    made = []
    groups = {}
    for key in shared:
        personality, value_key, x_key, fs, x = key
        series = groups.setdefault((personality, value_key, x_key), {})
        series.setdefault(fs, []).append((x, base[key], cand[key]))
    for (personality, value_key, x_key), series in sorted(groups.items()):
        fig, ax = plt.subplots(figsize=(6, 4))
        for fs, pts in sorted(series.items()):
            pts.sort()
            xs = [x for x, _, _ in pts]
            line, = ax.plot(xs, [c for _, _, c in pts], marker="o", label=fs)
            ax.plot(xs, [b for _, b, _ in pts], linestyle="--", alpha=0.5,
                    color=line.get_color())
        ax.set_xlabel(x_key)
        ax.set_ylabel(value_key)
        slug = "_".join(p for p in ("delta", personality, value_key) if p)
        slug = slug.replace("/", "-").replace(" ", "_")
        ax.set_title(slug + " (dashed = baseline)")
        ax.legend()
        fig.tight_layout()
        for fmt in formats:
            out = os.path.join(out_dir, f"{slug}.{fmt}")
            fig.savefig(out)
            made.append(out)
        plt.close(fig)
    return made


def render(path, out_dir, formats, use_ascii):
    rows = load_rows(path)
    config = load_config(path)
    if config:
        print(f"{path}: config " +
              " ".join(f"{k}={v}" for k, v in sorted(config.items())))
    base = os.path.splitext(os.path.basename(path))[0]
    made = []

    if use_ascii:
        for (personality, value_key, x_key), series in group_plots(rows):
            title = f"{base}" + (f" / {personality}" if personality else "")
            ascii_plot(title, x_key, value_key, series)
        return made

    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    for (personality, value_key, x_key), series in group_plots(rows):
        fig, ax = plt.subplots(figsize=(6, 4))
        multi_x = any(len(pts) > 1 for pts in series.values())
        if multi_x:
            for fs, pts in sorted(series.items()):
                ax.plot([x for x, _ in pts], [v for _, v in pts], marker="o", label=fs)
            ax.set_xlabel(x_key)
            if x_key == "io_size":
                ax.set_xscale("log", base=2)
        else:
            names = sorted(series)
            ax.bar(range(len(names)), [series[n][0][1] for n in names])
            ax.set_xticks(range(len(names)))
            ax.set_xticklabels(names, rotation=30, ha="right")
        ax.set_ylabel(value_key)
        slug = "_".join(p for p in (base, personality, value_key) if p)
        slug = slug.replace("/", "-").replace(" ", "_")
        ax.set_title(slug)
        if multi_x:
            ax.legend()
        fig.tight_layout()
        for fmt in formats:
            out = os.path.join(out_dir, f"{slug}.{fmt}")
            fig.savefig(out)
            made.append(out)
        plt.close(fig)
    return made


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="+", help="bench --json output file(s)")
    ap.add_argument("-o", "--out-dir", default=".", help="directory for rendered plots")
    ap.add_argument("--format", choices=("png", "svg", "both"), default="both")
    ap.add_argument("--ascii", action="store_true",
                    help="print ASCII charts instead of image files")
    ap.add_argument("--delta", action="store_true",
                    help="treat the two inputs as (baseline, candidate) and "
                         "render a before/after delta column")
    args = ap.parse_args()

    if args.delta and len(args.inputs) != 2:
        print("plot_bench: --delta takes exactly two input files "
              "(baseline, candidate)", file=sys.stderr)
        return 2

    use_ascii = args.ascii
    if not use_ascii:
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            print("plot_bench: matplotlib not available, falling back to --ascii",
                  file=sys.stderr)
            use_ascii = True

    formats = ("png", "svg") if args.format == "both" else (args.format,)
    if not use_ascii:
        os.makedirs(args.out_dir, exist_ok=True)

    if args.delta:
        made = render_delta(args.inputs[0], args.inputs[1], args.out_dir, formats,
                            use_ascii)
        for out in made:
            print(out)
        return 0

    for path in args.inputs:
        made = render(path, args.out_dir, formats, use_ascii)
        for out in made:
            print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
