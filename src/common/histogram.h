// Log-bucketed latency histogram used by the benchmark harness.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace hinfs {

// Power-of-two bucketed histogram of nanosecond samples: bucket i covers
// [2^i, 2^(i+1)). Cheap enough to sit on the hot path of every workload op.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Approximate quantile (q in [0, 1]) from the bucket boundaries.
  uint64_t Percentile(double q) const;

  // One-line summary: "n=... mean=... p50=... p99=... max=...".
  std::string Summary() const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace hinfs

#endif  // SRC_COMMON_HISTOGRAM_H_
