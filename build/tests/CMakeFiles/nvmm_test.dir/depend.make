# Empty dependencies file for nvmm_test.
# This may be replaced when dependencies are built.
