// Fsck: clean images verify; injected corruption is detected precisely.

#include <gtest/gtest.h>

#include "src/fs/pmfs/fsck.h"
#include "src/fs/pmfs/layout.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  FsckTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 32 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 512;
    opts.journal_bytes = 1 << 20;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  void Populate() {
    ASSERT_TRUE(vfs_->Mkdir("/dir").ok());
    ASSERT_TRUE(vfs_->WriteFile("/dir/a", std::string(10000, 'a')).ok());
    ASSERT_TRUE(vfs_->WriteFile("/dir/b", "tiny").ok());
    ASSERT_TRUE(vfs_->WriteFile("/top", std::string(300000, 't')).ok());
    ASSERT_TRUE(vfs_->Unmount().ok());
  }

  PmfsSuperblock LoadSb() {
    PmfsSuperblock sb;
    EXPECT_TRUE(nvmm_->Load(0, &sb, sizeof(sb)).ok());
    return sb;
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(FsckTest, CleanImagePasses) {
  Populate();
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_EQ(report->directories, 2u);  // root + /dir
  EXPECT_EQ(report->regular_files, 3u);
  EXPECT_EQ(report->leaked_blocks, 0u) << report->Summary();
}

TEST_F(FsckTest, EmptyFileSystemIsClean) {
  ASSERT_TRUE(vfs_->Unmount().ok());
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->live_inodes, 1u);  // root only
}

TEST_F(FsckTest, HinfsImageAfterWorkIsClean) {
  NvmmConfig cfg;
  cfg.size_bytes = 32 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  HinfsOptions hopts;
  hopts.buffer_bytes = 2 << 20;
  PmfsOptions popts;
  popts.max_inodes = 512;
  auto fs = HinfsFs::Format(&nvmm, hopts, popts);
  ASSERT_TRUE(fs.ok());
  {
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.Mkdir("/d").ok());
    for (int i = 0; i < 30; i++) {
      ASSERT_TRUE(vfs.WriteFile("/d/f" + std::to_string(i), std::string(5000 + i, 'x')).ok());
    }
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(vfs.Unlink("/d/f" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(vfs.Unmount().ok());
  }
  auto report = FsckPmfs(&nvmm);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
  EXPECT_EQ(report->regular_files, 20u);
}

TEST_F(FsckTest, DetectsBadMagic) {
  Populate();
  const uint64_t garbage = 0xdeadbeef;
  ASSERT_TRUE(nvmm_->StorePersistent(0, &garbage, 8).ok());
  auto report = FsckPmfs(nvmm_.get());
  EXPECT_FALSE(report.ok());
}

TEST_F(FsckTest, DetectsDanglingDirent) {
  Populate();
  // Kill /dir/b's inode behind fsck's back: its dirent now dangles.
  auto sb = LoadSb();
  for (uint64_t ino = 2; ino <= sb.max_inodes; ino++) {
    PmfsInode inode;
    ASSERT_TRUE(
        nvmm_->Load(sb.inode_table_off + (ino - 1) * sizeof(PmfsInode), &inode, sizeof(inode))
            .ok());
    if (inode.ino == ino && inode.size == 4) {  // /dir/b
      PmfsInode zero{};
      ASSERT_TRUE(
          nvmm_->StorePersistent(sb.inode_table_off + (ino - 1) * sizeof(PmfsInode), &zero,
                                 sizeof(zero))
              .ok());
      break;
    }
  }
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST_F(FsckTest, DetectsUnallocatedReference) {
  Populate();
  // Clear a bitmap byte: blocks still referenced by radix trees become
  // "not allocated".
  auto sb = LoadSb();
  const uint8_t zero = 0;
  ASSERT_TRUE(nvmm_->StorePersistent(sb.bitmap_off + 1, &zero, 1).ok());
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST_F(FsckTest, DetectsDoubleUse) {
  Populate();
  // Point /top's radix root at /dir/a's: their blocks become double-owned.
  auto sb = LoadSb();
  uint64_t first_root = 0;
  for (uint64_t ino = 2; ino <= sb.max_inodes; ino++) {
    PmfsInode inode;
    ASSERT_TRUE(
        nvmm_->Load(sb.inode_table_off + (ino - 1) * sizeof(PmfsInode), &inode, sizeof(inode))
            .ok());
    if (inode.ino != ino || inode.type != static_cast<uint8_t>(FileType::kRegular) ||
        inode.radix_height == 0) {
      continue;
    }
    if (first_root == 0) {
      first_root = inode.radix_root;
    } else if (inode.radix_height == 1) {
      ASSERT_TRUE(nvmm_->StorePersistent(
                      sb.inode_table_off + (ino - 1) * sizeof(PmfsInode) +
                          offsetof(PmfsInode, radix_root),
                      &first_root, 8)
                      .ok());
      break;
    }
  }
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST_F(FsckTest, DetectsLeakedBlocks) {
  Populate();
  // Mark a far-away free block as allocated: nothing references it.
  auto sb = LoadSb();
  const uint64_t victim = sb.data_blocks - 2;
  uint8_t byte;
  ASSERT_TRUE(nvmm_->Load(sb.bitmap_off + victim / 8, &byte, 1).ok());
  byte |= static_cast<uint8_t>(1u << (victim % 8));
  ASSERT_TRUE(nvmm_->StorePersistent(sb.bitmap_off + victim / 8, &byte, 1).ok());
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());  // leaks lose no data
  EXPECT_GE(report->leaked_blocks, 1u);
  EXPECT_FALSE(report->warnings.empty());
}

TEST_F(FsckTest, DetectsOversizedFile) {
  Populate();
  // Inflate /dir/b's size past its radix capacity.
  auto sb = LoadSb();
  for (uint64_t ino = 2; ino <= sb.max_inodes; ino++) {
    PmfsInode inode;
    ASSERT_TRUE(
        nvmm_->Load(sb.inode_table_off + (ino - 1) * sizeof(PmfsInode), &inode, sizeof(inode))
            .ok());
    if (inode.ino == ino && inode.size == 4) {
      const uint64_t huge = 1ull << 40;
      ASSERT_TRUE(nvmm_->StorePersistent(
                      sb.inode_table_off + (ino - 1) * sizeof(PmfsInode) +
                          offsetof(PmfsInode, size),
                      &huge, 8)
                      .ok());
      break;
    }
  }
  auto report = FsckPmfs(nvmm_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST_F(FsckTest, CleanAfterCrashRecovery) {
  NvmmConfig cfg;
  cfg.size_bytes = 32 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  NvmmDevice nvmm(cfg);
  PmfsOptions opts;
  opts.max_inodes = 512;
  {
    auto fs = PmfsFs::Format(&nvmm, opts);
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    for (int i = 0; i < 40; i++) {
      ASSERT_TRUE(vfs.WriteFile("/f" + std::to_string(i), std::string(3000, 'z')).ok());
    }
    for (int i = 0; i < 15; i++) {
      ASSERT_TRUE(vfs.Unlink("/f" + std::to_string(i)).ok());
    }
    // Crash without unmount.
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  // Mount runs journal recovery and must leave a consistent image.
  auto fs = PmfsFs::Mount(&nvmm);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Unmount().ok());
  auto report = FsckPmfs(&nvmm);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

}  // namespace
}  // namespace hinfs
