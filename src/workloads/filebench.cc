#include "src/workloads/filebench.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace hinfs {
namespace {

// Shared, mutable file population. Deletion claims a name under the lock so
// two threads never unlink the same file; readers racing a deletion simply
// tolerate kNotFound.
class FileSet {
 public:
  void Add(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.push_back(std::move(path));
  }

  // Random (optionally skewed) pick; empty string when the set is empty.
  std::string Pick(Rng& rng, double theta) {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.empty()) {
      return {};
    }
    const size_t i = theta > 0 ? rng.Skewed(files_.size(), theta) : rng.Below(files_.size());
    return files_[i];
  }

  // Removes and returns a random victim (for deletion).
  std::string Claim(Rng& rng) {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.size() <= 2) {
      return {};  // keep a minimum population
    }
    const size_t i = rng.Below(files_.size());
    std::string out = std::move(files_[i]);
    files_[i] = std::move(files_.back());
    files_.pop_back();
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> files_;
};

std::string DirPath(const FilebenchConfig& cfg, size_t file_index) {
  return "/d" + std::to_string(file_index / cfg.dir_width);
}

std::string FilePath(const FilebenchConfig& cfg, size_t file_index) {
  return DirPath(cfg, file_index) + "/f" + std::to_string(file_index);
}

// Ignorable errors for racing threads: the file was deleted or recreated
// between the pick and the operation (kIsDir: a stale dentry resolved to a
// recycled inode number that is now a directory).
bool Benign(const Status& st) {
  return st.code() == ErrorCode::kNotFound || st.code() == ErrorCode::kExists ||
         st.code() == ErrorCode::kIsDir;
}

struct Ctx {
  // One FsApi per thread (entries may alias when the front-end is shared);
  // this is what lets fsload replay the same loops over per-connection
  // hinfsd clients.
  const std::vector<FsApi*>* apis;
  const FilebenchConfig* cfg;
  FileSet* files;
  std::atomic<uint64_t>* next_name;
  uint64_t deadline_ns;

  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> fsyncs{0};
};

// --- reusable flowops -------------------------------------------------------------

Status ReadWholeFile(Ctx& ctx, FsApi* fs, const std::string& path, std::vector<uint8_t>& buf) {
  Result<int> fd = fs->Open(path, kRdOnly);
  if (!fd.ok()) {
    return Benign(fd.status()) ? OkStatus() : fd.status();
  }
  ctx.ops++;
  while (true) {
    Result<size_t> n = fs->Read(*fd, buf.data(), buf.size());
    if (!n.ok()) {
      (void)fs->Close(*fd);
      // The file can be deleted out from under the open fd by another worker.
      return Benign(n.status()) ? OkStatus() : n.status();
    }
    ctx.bytes_read += *n;
    if (*n < buf.size()) {
      break;
    }
  }
  ctx.ops += 2;  // read + close flowops
  return fs->Close(*fd);
}

Status WriteWholeFile(Ctx& ctx, FsApi* fs, const std::string& path, size_t total,
                      const std::vector<uint8_t>& payload) {
  Result<int> fd = fs->Open(path, kWrOnly | kCreate | kTrunc);
  if (!fd.ok()) {
    return Benign(fd.status()) ? OkStatus() : fd.status();
  }
  ctx.ops++;
  size_t written = 0;
  while (written < total) {
    const size_t chunk = std::min(payload.size(), total - written);
    Result<size_t> n = fs->Write(*fd, payload.data(), chunk);
    if (!n.ok()) {
      (void)fs->Close(*fd);
      return Benign(n.status()) ? OkStatus() : n.status();
    }
    written += *n;
    ctx.bytes_written += *n;
  }
  ctx.ops += 2;
  return fs->Close(*fd);
}

Status AppendFile(Ctx& ctx, FsApi* fs, const std::string& path, size_t len,
                  const std::vector<uint8_t>& payload, bool fsync_after) {
  Result<int> fd = fs->Open(path, kWrOnly | kAppend);
  if (!fd.ok()) {
    return Benign(fd.status()) ? OkStatus() : fd.status();
  }
  Result<size_t> n = fs->Write(*fd, payload.data(), std::min(len, payload.size()));
  if (!n.ok()) {
    (void)fs->Close(*fd);
    return Benign(n.status()) ? OkStatus() : n.status();
  }
  ctx.bytes_written += *n;
  ctx.ops += 2;
  if (fsync_after) {
    Status st = fs->Fsync(*fd);
    if (!st.ok()) {
      (void)fs->Close(*fd);
      return Benign(st) ? OkStatus() : st;
    }
    ctx.fsyncs++;
    ctx.ops++;
  }
  ctx.ops++;
  return fs->Close(*fd);
}

Status DeleteFile(Ctx& ctx, FsApi* fs, Rng& rng) {
  std::string victim = ctx.files->Claim(rng);
  if (victim.empty()) {
    return OkStatus();
  }
  Status st = fs->Unlink(victim);
  if (!st.ok() && !Benign(st)) {
    return st;
  }
  ctx.ops++;
  return OkStatus();
}

Status CreateNewFile(Ctx& ctx, FsApi* fs, size_t size, const std::vector<uint8_t>& payload) {
  const uint64_t id = ctx.next_name->fetch_add(1);
  const std::string dir = "/d" + std::to_string(id % 16 + 1000);
  HINFS_ASSIGN_OR_RETURN(bool dir_present, fs->Exists(dir));
  if (!dir_present) {
    Status st = fs->Mkdir(dir);
    if (!st.ok() && !Benign(st)) {
      return st;
    }
  }
  const std::string path = dir + "/n" + std::to_string(id);
  HINFS_RETURN_IF_ERROR(WriteWholeFile(ctx, fs, path, size, payload));
  ctx.files->Add(path);
  return OkStatus();
}

// --- personalities ------------------------------------------------------------------

// writewholefile without O_TRUNC (filebench semantics): in-place rewrite of an
// existing file in io_size chunks — the op that gives CLFW and write
// coalescing their workload.
Status RewriteWholeFile(Ctx& ctx, FsApi* fs, const std::string& path,
                        const std::vector<uint8_t>& payload) {
  Result<InodeAttr> attr = fs->Stat(path);
  if (!attr.ok()) {
    return Benign(attr.status()) ? OkStatus() : attr.status();
  }
  Result<int> fd = fs->Open(path, kWrOnly);
  if (!fd.ok()) {
    return Benign(fd.status()) ? OkStatus() : fd.status();
  }
  ctx.ops++;
  uint64_t off = 0;
  while (off < attr->size) {
    const size_t chunk = std::min<uint64_t>(payload.size(), attr->size - off);
    Result<size_t> n = fs->Pwrite(*fd, payload.data(), chunk, off);
    if (!n.ok()) {
      (void)fs->Close(*fd);
      return Benign(n.status()) ? OkStatus() : n.status();
    }
    ctx.bytes_written += *n;
    off += *n;
  }
  ctx.ops += 2;
  return fs->Close(*fd);
}

Status FileserverLoop(Ctx& ctx, FsApi* fs, int thread) {
  Rng rng(ctx.cfg->seed * 977 + thread);
  std::vector<uint8_t> payload(ctx.cfg->io_size);
  FillPattern(payload, thread);
  std::vector<uint8_t> readbuf(std::max(ctx.cfg->io_size, ctx.cfg->mean_file_size));

  while (MonotonicNowNs() < ctx.deadline_ns) {
    HINFS_RETURN_IF_ERROR(CreateNewFile(ctx, fs, ctx.cfg->mean_file_size, payload));
    std::string f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
    if (!f.empty()) {
      HINFS_RETURN_IF_ERROR(RewriteWholeFile(ctx, fs, f, payload));
    }
    f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
    if (!f.empty()) {
      HINFS_RETURN_IF_ERROR(AppendFile(ctx, fs, f, ctx.cfg->io_size, payload, false));
    }
    f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
    if (!f.empty()) {
      HINFS_RETURN_IF_ERROR(ReadWholeFile(ctx, fs, f, readbuf));
    }
    HINFS_RETURN_IF_ERROR(DeleteFile(ctx, fs, rng));
    f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
    if (!f.empty()) {
      Result<InodeAttr> attr = fs->Stat(f);
      if (!attr.ok() && !Benign(attr.status())) {
        return attr.status();
      }
      ctx.ops++;
    }
  }
  return OkStatus();
}

Status WebserverLoop(Ctx& ctx, FsApi* fs, int thread) {
  Rng rng(ctx.cfg->seed * 1301 + thread);
  std::vector<uint8_t> payload(std::max<size_t>(ctx.cfg->io_size / 64, 4096));
  FillPattern(payload, thread);
  std::vector<uint8_t> readbuf(std::max(ctx.cfg->io_size, ctx.cfg->mean_file_size));
  const std::string log = "/weblog" + std::to_string(thread);
  HINFS_RETURN_IF_ERROR(fs->WriteFile(log, "init"));

  while (MonotonicNowNs() < ctx.deadline_ns) {
    for (int i = 0; i < 10 && MonotonicNowNs() < ctx.deadline_ns; i++) {
      std::string f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
      if (!f.empty()) {
        HINFS_RETURN_IF_ERROR(ReadWholeFile(ctx, fs, f, readbuf));
      }
    }
    HINFS_RETURN_IF_ERROR(AppendFile(ctx, fs, log, payload.size(), payload, false));
  }
  return OkStatus();
}

Status WebproxyLoop(Ctx& ctx, FsApi* fs, int thread) {
  Rng rng(ctx.cfg->seed * 1511 + thread);
  std::vector<uint8_t> payload(ctx.cfg->io_size);
  FillPattern(payload, thread);
  std::vector<uint8_t> readbuf(std::max(ctx.cfg->io_size, ctx.cfg->mean_file_size));
  const std::string log = "/proxylog" + std::to_string(thread);
  HINFS_RETURN_IF_ERROR(fs->WriteFile(log, "init"));
  // Webproxy exhibits strong locality and short-lived cache objects.
  const double theta = std::max(ctx.cfg->locality_theta, 0.6);

  while (MonotonicNowNs() < ctx.deadline_ns) {
    HINFS_RETURN_IF_ERROR(DeleteFile(ctx, fs, rng));
    HINFS_RETURN_IF_ERROR(CreateNewFile(ctx, fs, ctx.cfg->mean_file_size, payload));
    for (int i = 0; i < 5 && MonotonicNowNs() < ctx.deadline_ns; i++) {
      std::string f = ctx.files->Pick(rng, theta);
      if (!f.empty()) {
        HINFS_RETURN_IF_ERROR(ReadWholeFile(ctx, fs, f, readbuf));
      }
    }
    HINFS_RETURN_IF_ERROR(AppendFile(ctx, fs, log, std::min<size_t>(payload.size(), 16384),
                                     payload, false));
  }
  return OkStatus();
}

Status VarmailLoop(Ctx& ctx, FsApi* fs, int thread) {
  Rng rng(ctx.cfg->seed * 2003 + thread);
  std::vector<uint8_t> payload(ctx.cfg->io_size);
  FillPattern(payload, thread);
  std::vector<uint8_t> readbuf(std::max(ctx.cfg->io_size, ctx.cfg->mean_file_size) * 2);

  while (MonotonicNowNs() < ctx.deadline_ns) {
    // deletefile
    HINFS_RETURN_IF_ERROR(DeleteFile(ctx, fs, rng));
    // createfile; appendfile; fsync; close
    {
      const uint64_t id = ctx.next_name->fetch_add(1);
      const std::string path = "/d0/m" + std::to_string(id);
      Result<int> fd = fs->Open(path, kWrOnly | kCreate);
      if (fd.ok()) {
        Result<size_t> n = fs->Write(*fd, payload.data(), payload.size());
        if (!n.ok() && !Benign(n.status())) {
          return n.status();
        }
        if (n.ok()) {
          ctx.bytes_written += *n;
          // Mail delivery only needs the message durable, not the mtime:
          // fdatasync, like real varmail deployments.
          HINFS_RETURN_IF_ERROR(fs->Fdatasync(*fd));
          ctx.fsyncs++;
        }
        HINFS_RETURN_IF_ERROR(fs->Close(*fd));
        ctx.files->Add(path);
        ctx.ops += 4;
      }
    }
    // openfile; readwholefile; appendfile; fsync; close
    {
      std::string f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
      if (!f.empty()) {
        Result<int> fd = fs->Open(f, kRdWr | kAppend);
        if (fd.ok()) {
          Result<size_t> n = fs->Pread(*fd, readbuf.data(), readbuf.size(), 0);
          if (n.ok()) {
            ctx.bytes_read += *n;
          } else if (!Benign(n.status())) {
            return n.status();
          }
          Result<size_t> w = fs->Write(*fd, payload.data(), payload.size());
          if (w.ok()) {
            ctx.bytes_written += *w;
            Status sync_st = fs->Fdatasync(*fd);
            if (!sync_st.ok() && !Benign(sync_st)) {
              return sync_st;
            }
            ctx.fsyncs++;
          } else if (!Benign(w.status())) {
            return w.status();
          }
          HINFS_RETURN_IF_ERROR(fs->Close(*fd));
          ctx.ops += 5;
        }
      }
    }
    // openfile; readwholefile; close
    {
      std::string f = ctx.files->Pick(rng, ctx.cfg->locality_theta);
      if (!f.empty()) {
        HINFS_RETURN_IF_ERROR(ReadWholeFile(ctx, fs, f, readbuf));
      }
    }
  }
  return OkStatus();
}

}  // namespace

const char* PersonalityName(Personality p) {
  switch (p) {
    case Personality::kFileserver:
      return "fileserver";
    case Personality::kWebserver:
      return "webserver";
    case Personality::kWebproxy:
      return "webproxy";
    case Personality::kVarmail:
      return "varmail";
  }
  return "?";
}

Status PrepareFileset(FsApi* fs, const FilebenchConfig& config) {
  Rng rng(config.seed);
  std::vector<uint8_t> payload(std::max<size_t>(config.mean_file_size, 4096));
  FillPattern(payload, config.seed);

  const size_t ndirs = (config.nfiles + config.dir_width - 1) / config.dir_width;
  for (size_t d = 0; d < std::max<size_t>(ndirs, 1); d++) {
    // kExists tolerated so prepare is idempotent (fsload re-prepares a
    // long-lived daemon between personalities).
    Status st = fs->Mkdir("/d" + std::to_string(d));
    if (!st.ok() && st.code() != ErrorCode::kExists) {
      return st;
    }
  }
  for (size_t i = 0; i < config.nfiles; i++) {
    const std::string path = FilePath(config, i);
    // Sizes uniform in [0.5, 1.5] x mean, like filebench's gamma sizing.
    const size_t size = config.mean_file_size / 2 +
                        rng.Below(std::max<size_t>(config.mean_file_size, 2));
    HINFS_ASSIGN_OR_RETURN(int fd, fs->Open(path, kWrOnly | kCreate));
    size_t written = 0;
    while (written < size) {
      const size_t chunk = std::min(payload.size(), size - written);
      HINFS_ASSIGN_OR_RETURN(size_t n, fs->Write(fd, payload.data(), chunk));
      written += n;
    }
    HINFS_RETURN_IF_ERROR(fs->Close(fd));
  }
  return OkStatus();
}

Status PrepareFileset(Vfs* vfs, const FilebenchConfig& config) {
  VfsApi api(vfs);
  return PrepareFileset(&api, config);
}

Result<WorkloadResult> RunFilebench(const std::vector<FsApi*>& per_thread_api,
                                    Personality personality, const FilebenchConfig& config) {
  if (per_thread_api.empty()) {
    return Status(ErrorCode::kInvalidArgument, "need at least one FsApi");
  }
  FileSet files;
  for (size_t i = 0; i < config.nfiles; i++) {
    files.Add(FilePath(config, i));
  }
  std::atomic<uint64_t> next_name{0};

  Ctx ctx;
  ctx.apis = &per_thread_api;
  ctx.cfg = &config;
  ctx.files = &files;
  ctx.next_name = &next_name;
  ctx.deadline_ns = MonotonicNowNs() + config.duration_ms * 1'000'000ull;

  const uint64_t start = MonotonicNowNs();
  Status st = RunThreads(static_cast<int>(per_thread_api.size()), [&](int thread) {
    FsApi* fs = (*ctx.apis)[thread];
    switch (personality) {
      case Personality::kFileserver:
        return FileserverLoop(ctx, fs, thread);
      case Personality::kWebserver:
        return WebserverLoop(ctx, fs, thread);
      case Personality::kWebproxy:
        return WebproxyLoop(ctx, fs, thread);
      case Personality::kVarmail:
        return VarmailLoop(ctx, fs, thread);
    }
    return OkStatus();
  });
  HINFS_RETURN_IF_ERROR(st);

  WorkloadResult result;
  result.ops = ctx.ops.load();
  result.bytes_read = ctx.bytes_read.load();
  result.bytes_written = ctx.bytes_written.load();
  result.fsyncs = ctx.fsyncs.load();
  result.seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  return result;
}

Result<WorkloadResult> RunFilebench(Vfs* vfs, Personality personality,
                                    const FilebenchConfig& config) {
  VfsApi api(vfs);
  const std::vector<FsApi*> per_thread(static_cast<size_t>(std::max(config.threads, 1)),
                                       &api);
  return RunFilebench(per_thread, personality, config);
}

Result<WorkloadResult> RunFioRandRw(Vfs* vfs, const FioConfig& config) {
  const std::string path = "/fiofile";
  {
    std::vector<uint8_t> payload(1 << 20);
    FillPattern(payload, config.seed);
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(path, kWrOnly | kCreate | kTrunc));
    size_t written = 0;
    while (written < config.file_bytes) {
      const size_t chunk = std::min(payload.size(), config.file_bytes - written);
      HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Write(fd, payload.data(), chunk));
      written += n;
    }
    HINFS_RETURN_IF_ERROR(vfs->Close(fd));
  }

  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  const uint64_t deadline = MonotonicNowNs() + config.duration_ms * 1'000'000ull;
  const uint64_t start = MonotonicNowNs();

  Status st = RunThreads(config.threads, [&](int thread) -> Status {
    Rng rng(config.seed * 31 + thread);
    std::vector<uint8_t> buf(config.io_size);
    FillPattern(buf, thread);
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(path, kRdWr));
    const uint64_t slots = std::max<uint64_t>(config.file_bytes / config.io_size, 1);
    while (MonotonicNowNs() < deadline) {
      const uint64_t slot = config.locality_theta > 0
                                ? rng.Skewed(slots, config.locality_theta)
                                : rng.Below(slots);
      const uint64_t offset = slot * config.io_size;
      if (rng.Chance(config.write_fraction)) {
        HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Pwrite(fd, buf.data(), buf.size(), offset));
        bytes_written += n;
      } else {
        HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Pread(fd, buf.data(), buf.size(), offset));
        bytes_read += n;
      }
      ops++;
    }
    return vfs->Close(fd);
  });
  HINFS_RETURN_IF_ERROR(st);

  WorkloadResult result;
  result.ops = ops.load();
  result.bytes_read = bytes_read.load();
  result.bytes_written = bytes_written.load();
  result.seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  return result;
}

}  // namespace hinfs
