// Crashlab driver: records a workload's persist trace, enumerates crash
// states, and validates every state by remount + fsck + oracle diff.
//
// One run =
//   1. format the FS under test on a tracked NvmmDevice and start tracing;
//   2. replay a CrashOp workload through the real VFS, noting the trace
//      position at every op boundary;
//   3. enumerate crash states (CrashStateEnumerator) and, for each distinct
//      state: install the image on a scratch device, remount (journal
//      recovery), fsck the recovered image (PMFS-layout FSes), and diff the
//      observed tree against the CrashOracle's legal-state set, with the op
//      active at the crash cut as the in-flight relaxation.
//
// The recording device is never disturbed (CloneCrashImage-based states), so
// a single workload execution yields thousands of crash states.

#ifndef SRC_CRASHLAB_HARNESS_H_
#define SRC_CRASHLAB_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crashlab/oracle.h"
#include "src/nvmm/nvmm_device.h"
#include "src/wal/wal_options.h"

namespace hinfs {

enum class CrashFs {
  kPmfs,
  kHinfs,
  kBlockFsJournal,  // EXT4+NVMMBD analog: ordered metadata journal
  kBlockFsDax,      // EXT4-DAX analog: direct data, journaled metadata
  kWalPmfs,         // WalFs decorator over PMFS: logged durability
};

const char* CrashFsName(CrashFs fs);

struct CrashlabOptions {
  CrashFs fs = CrashFs::kPmfs;
  FlushInstruction flush_instruction = FlushInstruction::kClflush;
  size_t device_bytes = 4ull << 20;
  uint64_t seed = 1;
  // Subset budget per cut under kClflushopt/kClwb (see CrashGenOptions).
  size_t max_states_per_cut = 32;
  // Stop after this many distinct states (0 = explore every cut).
  size_t max_total_states = 0;
  // Collect at most this many failures before aborting the run.
  size_t max_failures = 16;
  // Run FsckPmfs on every recovered image (PMFS-layout FSes only).
  bool run_fsck = true;
  // kWalPmfs only: the commit-record format under test. Both must pass —
  // checksum detects torn tails by CRC, fence prevents them by ordering.
  WalCommitFormat wal_commit_format = WalCommitFormat::kChecksum;
  // Fault injection (PMFS-layout FSes only): drop the fence after journal
  // appends during the recorded run, so undo entries can stay unfenced while
  // the in-place updates they cover land. Crashlab must catch this under
  // kClflushopt; kClflush masks it (flush alone is durable there).
  bool inject_skip_journal_fence = false;
};

struct CrashFailure {
  size_t cut = 0;
  uint64_t epoch = 0;
  std::string inflight_op;  // empty if the crash hit an op boundary
  std::vector<uint64_t> surviving_lines;
  std::string diag;
};

struct CrashlabReport {
  CrashFs fs = CrashFs::kPmfs;
  FlushInstruction flush_instruction = FlushInstruction::kClflush;
  size_t ops = 0;
  size_t trace_events = 0;
  size_t cuts = 0;
  size_t states_explored = 0;  // distinct crash states checked
  size_t states_deduped = 0;
  bool sampled = false;
  uint64_t trace_fences = 0;
  uint64_t trace_flushed_lines = 0;
  uint64_t trace_epochs = 0;
  uint64_t trace_max_unfenced_lines = 0;
  std::vector<CrashFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
  std::string ToJson() const;
};

// Runs one workload under the crashlab harness.
Result<CrashlabReport> RunCrashlab(const std::vector<CrashOp>& workload,
                                   const CrashlabOptions& opts);

// Canned workload mixes (the acceptance matrix): "create", "append",
// "overwrite", "rename", "fsync", "truncate", or "mixed" (seeded blend).
Result<std::vector<CrashOp>> MakeCrashWorkload(const std::string& mix, uint64_t seed);
std::vector<std::string> CrashWorkloadMixes();

}  // namespace hinfs

#endif  // SRC_CRASHLAB_HARNESS_H_
