file(REMOVE_RECURSE
  "CMakeFiles/blockfs_test.dir/blockfs_test.cc.o"
  "CMakeFiles/blockfs_test.dir/blockfs_test.cc.o.d"
  "blockfs_test"
  "blockfs_test.pdb"
  "blockfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
