
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_replacement.cc" "bench/CMakeFiles/ablation_replacement.dir/ablation_replacement.cc.o" "gcc" "bench/CMakeFiles/ablation_replacement.dir/ablation_replacement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hinfs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hinfs/CMakeFiles/hinfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/hinfs_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/hinfs_blockfs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hinfs_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pagecache/CMakeFiles/hinfs_pagecache.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/hinfs_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmm/CMakeFiles/hinfs_nvmm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hinfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
