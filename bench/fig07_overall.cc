// Fig. 7: overall filebench throughput of the five file systems, normalized
// to PMFS. The headline result: HiNFS wins everywhere (up to +184 % on
// fileserver in the paper), matches PMFS on webserver/varmail, and the NVMMBD
// baselines lose except on webproxy.

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 7", "overall filebench throughput normalized to PMFS");
  std::vector<BenchJsonRow> rows;

  const FsKind kinds[] = {FsKind::kPmfs, FsKind::kExt4Dax, FsKind::kExt2Nvmmbd,
                          FsKind::kExt4Nvmmbd, FsKind::kHinfs};
  const Personality personalities[] = {Personality::kFileserver, Personality::kWebserver,
                                       Personality::kWebproxy, Personality::kVarmail};

  std::printf("%-12s", "workload");
  for (FsKind kind : kinds) {
    std::printf(" %13s", FsKindName(kind));
  }
  std::printf("\n");

  for (Personality p : personalities) {
    FilebenchConfig cfg = PaperFilebenchConfig();
    if (p == Personality::kVarmail) {
      cfg.io_size = 16 * 1024;  // mail-sized appends
    }
    double pmfs_ops = 0;
    std::printf("%-12s", PersonalityName(p));
    for (FsKind kind : kinds) {
      auto result = RunPersonalityOn(kind, p, PaperBedConfig(), cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "\n%s/%s: %s\n", PersonalityName(p), FsKindName(kind),
                     result.status().ToString().c_str());
        return 1;
      }
      const double ops = result->OpsPerSec();
      if (kind == FsKind::kPmfs) {
        pmfs_ops = ops;
      }
      std::printf(" %8.0f(%4.2f)", ops, pmfs_ops > 0 ? ops / pmfs_ops : 0.0);
      std::fflush(stdout);
      rows.push_back({FsKindName(kind), PersonalityName(p), "threads",
                      static_cast<double>(cfg.threads), ops, "ops_per_sec"});
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: HiNFS >= all on every workload; big win on fileserver;\n"
              "~PMFS on webserver/varmail; NVMMBD baselines behind except webproxy\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
