// hinfsd under concurrent load: many clients hammering one server, abrupt
// disconnects racing in-flight requests, shutdown racing traffic, and a
// miniature fsload run (filebench personality over the wire). Labeled
// `sanitize` so it runs under TSan and ASan+UBSan.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/vfs/vfs.h"
#include "src/workloads/filebench.h"

namespace hinfs {
namespace server {
namespace {

bool WaitFor(const std::function<bool()>& cond, uint64_t timeout_ms = 10'000) {
  const uint64_t deadline = MonotonicNowNs() + timeout_ms * 1'000'000;
  while (MonotonicNowNs() < deadline) {
    if (cond()) {
      return true;
    }
    usleep(1000);
  }
  return cond();
}

class ServerConcurrencyTest : public ::testing::Test {
 protected:
  ServerConcurrencyTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 64 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 8192;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());

    static std::atomic<int> seq{0};
    ServerOptions sopts;
    sopts.unix_path = "/tmp/hinfs_srvcc_test." + std::to_string(getpid()) + "." +
                      std::to_string(seq.fetch_add(1)) + ".sock";
    sopts.workers = 3;
    server_ = std::make_unique<Server>(vfs_.get(), sopts);
    EXPECT_TRUE(server_->Start().ok());
  }

  ~ServerConcurrencyTest() override { server_->Stop(); }

  std::unique_ptr<Client> Connect() {
    auto c = Client::ConnectUnix(server_->unix_path());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerConcurrencyTest, ManyClientsDistinctFiles) {
  constexpr int kClients = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      auto client = Connect();
      if (client == nullptr) {
        failures++;
        return;
      }
      const std::string path = "/c" + std::to_string(t);
      std::string payload(4096, static_cast<char>('a' + t));
      for (int r = 0; r < kRounds; r++) {
        auto fd = client->Open(path, kWrOnly | kCreate | kTrunc);
        if (!fd.ok() || !client->Write(*fd, payload.data(), payload.size()).ok() ||
            !client->Fsync(*fd).ok() || !client->Close(*fd).ok()) {
          failures++;
          return;
        }
        auto text = client->ReadFileToString(path);
        if (!text.ok() || *text != payload) {
          failures++;
          return;
        }
      }
      client->Disconnect();
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(WaitFor([&] { return vfs_->OpenFdCount() == 0; }));
  EXPECT_EQ(server_->stats().Get(kStatSrvProtocolErrors), 0u);
}

TEST_F(ServerConcurrencyTest, SharedFileReadersAndWriters) {
  ASSERT_TRUE(vfs_->WriteFile("/shared", std::string(8192, 's')).ok());
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      auto client = Connect();
      if (client == nullptr) {
        failures++;
        return;
      }
      char buf[512];
      std::string payload(512, static_cast<char>('A' + t));
      for (int r = 0; r < 30; r++) {
        if (t % 2 == 0) {
          auto n = client->Pwrite(3, payload.data(), payload.size(),
                                  static_cast<uint64_t>(t) * 512);
          // fd 3 is never opened on this session: must always be kBadFd, and
          // must not corrupt anything.
          if (n.ok() || n.status().code() != ErrorCode::kBadFd) {
            failures++;
            return;
          }
          auto fd = client->Open("/shared", kRdWr);
          if (!fd.ok() ||
              !client->Pwrite(*fd, payload.data(), payload.size(),
                              static_cast<uint64_t>(t) * 512)
                   .ok() ||
              !client->Close(*fd).ok()) {
            failures++;
            return;
          }
        } else {
          auto fd = client->Open("/shared", kRdOnly);
          if (!fd.ok() || !client->Pread(*fd, buf, sizeof(buf), 0).ok() ||
              !client->Close(*fd).ok()) {
            failures++;
            return;
          }
        }
      }
      client->Disconnect();
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(WaitFor([&] { return vfs_->OpenFdCount() == 0; }));
}

TEST_F(ServerConcurrencyTest, AbruptDisconnectWithInflightRequestsReclaimsFds) {
  // Raw connections that pipeline several opens and vanish without reading a
  // single response: the session teardown races request execution, and every
  // Vfs fd must still be reclaimed.
  for (int round = 0; round < 10; round++) {
    const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(sock, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server_->unix_path().c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

    std::string wire;
    for (int i = 0; i < 8; i++) {
      Request req;
      req.request_id = static_cast<uint64_t>(round) * 100 + i;
      req.opcode = Opcode::kOpen;
      req.flags = kWrOnly | kCreate;
      req.path = "/drop" + std::to_string(round) + "_" + std::to_string(i);
      EncodeRequest(req, &wire);
    }
    ASSERT_EQ(::send(sock, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    // Hang up immediately; responses are never read.
    ::close(sock);
  }
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return vfs_->OpenFdCount() == 0; }));
}

TEST_F(ServerConcurrencyTest, StopRacesTraffic) {
  constexpr int kClients = 4;
  std::atomic<bool> halt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      auto client = Connect();
      if (client == nullptr) {
        return;
      }
      const std::string path = "/race" + std::to_string(t);
      while (!halt.load()) {
        // Errors are expected once Stop lands; the requirement is no hang, no
        // crash, no leak.
        if (!client->WriteFile(path, "x").ok()) {
          break;
        }
        if (!client->Ping().ok()) {
          break;
        }
      }
    });
  }
  usleep(50 * 1000);  // let traffic build
  server_->Stop();
  halt.store(true);
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(vfs_->OpenFdCount(), 0u);
}

TEST_F(ServerConcurrencyTest, FilebenchPersonalityOverTheWire) {
  // Miniature fsload: 4 connections replaying the fileserver personality
  // through the per-thread FsApi overload.
  FilebenchConfig cfg;
  cfg.nfiles = 24;
  cfg.dir_width = 8;
  cfg.mean_file_size = 16 * 1024;
  cfg.io_size = 8 * 1024;
  cfg.duration_ms = 150;

  std::vector<std::unique_ptr<Client>> conns;
  std::vector<FsApi*> apis;
  for (int i = 0; i < 4; i++) {
    auto c = Connect();
    ASSERT_NE(c, nullptr);
    apis.push_back(c.get());
    conns.push_back(std::move(c));
  }
  ASSERT_TRUE(PrepareFileset(conns[0].get(), cfg).ok());

  auto result = RunFilebench(apis, Personality::kFileserver, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ops, 0u);

  for (auto& c : conns) {
    c->Disconnect();
  }
  EXPECT_TRUE(WaitFor([&] { return vfs_->OpenFdCount() == 0; }));
  EXPECT_EQ(server_->stats().Get(kStatSrvProtocolErrors), 0u);
  EXPECT_GT(server_->stats().Get(kStatSrvRequestsServed), 0u);
}

}  // namespace
}  // namespace server
}  // namespace hinfs
