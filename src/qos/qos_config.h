// QoS scheduler configuration + the HINFS_QOS_* environment knobs.
//
// QoS is off by default (tenants == 0): NvmmDevice then never constructs a
// QosScheduler and the charge path is byte-for-byte the pre-QoS
// BandwidthLimiter::Acquire — the accounting-invariance contract (DESIGN.md
// §3c) extends to this subsystem. Setting HINFS_QOS_TENANTS=N (1..63) turns
// the scheduler on with N tenants.
//
// Env knobs (read by HinfsOptions::FromEnv via QosConfig::FromEnv):
//   HINFS_QOS_TENANTS     tenant count (0 disables QoS; max kMaxTenants-1... see
//                         below); ids beyond the count clamp to the last tenant
//   HINFS_QOS_WEIGHTS     comma-separated positive per-tenant weights
//                         (first N apply; unlisted tenants weigh 1)
//   HINFS_QOS_FG_RESERVE  fraction of device bandwidth reserved for
//                         foreground traffic, float in (0, 1]; default 0.5
// A malformed value or an unrecognized HINFS_QOS_* name aborts the process
// (exit 2), same contract as the HINFS_WAL_* knobs: a typo'd knob silently
// ignored would invalidate the isolation run it was meant to configure.

#ifndef SRC_QOS_QOS_CONFIG_H_
#define SRC_QOS_QOS_CONFIG_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/qos/tenant.h"

extern "C" char** environ;  // scanned for misspelled HINFS_QOS_* names

namespace hinfs {
namespace qos {

struct QosConfig {
  // Number of tenant buckets. 0 = QoS disabled (the scheduler is never
  // constructed). Tenant ids >= tenants are clamped into range at charge time.
  uint32_t tenants = 0;

  // Per-tenant weights for sharing the foreground reserve; weights[i] applies
  // to tenant i, missing entries default to 1. Clients may override their own
  // weight at handshake (hello weight field).
  std::vector<uint32_t> weights;

  // Fraction of device write bandwidth the foreground tenant buckets share
  // (split by weight); background writeback/checkpoint traffic shares the
  // remaining (1 - fg_reserve). Work conservation lends either side's unused
  // tokens to the other.
  double fg_reserve = 0.5;

  bool enabled() const { return tenants > 0; }

  uint32_t WeightOf(TenantId id) const {
    return id < weights.size() && weights[id] > 0 ? weights[id] : 1;
  }

  // Applies the HINFS_QOS_* environment to `base`. Validates values AND scans
  // the environment for unknown HINFS_QOS_-prefixed names, exiting 2 on
  // either, so misspelled knobs fail fast instead of silently configuring
  // nothing.
  static QosConfig FromEnv() { return FromEnv(QosConfig()); }
  static QosConfig FromEnv(QosConfig base) {
    CheckQosEnv();
    if (const char* env = std::getenv("HINFS_QOS_TENANTS")) {
      base.tenants = static_cast<uint32_t>(ParseQosU64("HINFS_QOS_TENANTS", env));
      if (base.tenants >= kMaxTenants) {
        DieBadQosEnv("HINFS_QOS_TENANTS", env);
      }
    }
    if (const char* env = std::getenv("HINFS_QOS_WEIGHTS")) {
      base.weights.clear();
      for (const char* p = env; *p != '\0';) {
        char* end = nullptr;
        const unsigned long long w = std::strtoull(p, &end, 10);
        if (end == p || w == 0 || (*end != '\0' && *end != ',')) {
          DieBadQosEnv("HINFS_QOS_WEIGHTS", env);
        }
        base.weights.push_back(static_cast<uint32_t>(w));
        p = *end == ',' ? end + 1 : end;
        if (*end == ',' && *p == '\0') {
          DieBadQosEnv("HINFS_QOS_WEIGHTS", env);  // trailing comma
        }
      }
      if (base.weights.empty()) {
        DieBadQosEnv("HINFS_QOS_WEIGHTS", env);
      }
    }
    if (const char* env = std::getenv("HINFS_QOS_FG_RESERVE")) {
      char* end = nullptr;
      const double r = std::strtod(env, &end);
      if (end == env || *end != '\0' || !(r > 0.0) || r > 1.0) {
        DieBadQosEnv("HINFS_QOS_FG_RESERVE", env);
      }
      base.fg_reserve = r;
    }
    return base;
  }

  // Fails fast (exit 2) on any environment name starting with HINFS_QOS_ that
  // is not one of the three knobs above. Safe to call repeatedly; does not
  // read the knob values.
  static void CheckQosEnv() {
    static constexpr const char* kKnown[] = {
        "HINFS_QOS_TENANTS", "HINFS_QOS_WEIGHTS", "HINFS_QOS_FG_RESERVE"};
    constexpr size_t kPrefixLen = sizeof("HINFS_QOS_") - 1;
    for (char** e = environ; e != nullptr && *e != nullptr; e++) {
      if (std::strncmp(*e, "HINFS_QOS_", kPrefixLen) != 0) {
        continue;
      }
      const char* eq = std::strchr(*e, '=');
      const size_t name_len = eq != nullptr ? static_cast<size_t>(eq - *e) : std::strlen(*e);
      bool known = false;
      for (const char* k : kKnown) {
        if (name_len == std::strlen(k) && std::strncmp(*e, k, name_len) == 0) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::fprintf(stderr, "hinfs: unknown QoS knob \"%.*s\" (supported: "
                     "HINFS_QOS_TENANTS, HINFS_QOS_WEIGHTS, HINFS_QOS_FG_RESERVE)\n",
                     static_cast<int>(name_len), *e);
        std::exit(2);
      }
    }
  }

 private:
  [[noreturn]] static void DieBadQosEnv(const char* var, const char* value) {
    std::fprintf(stderr, "hinfs: bad %s=\"%s\"\n", var, value);
    std::exit(2);
  }
  static uint64_t ParseQosU64(const char* var, const char* value) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
      DieBadQosEnv(var, value);
    }
    return static_cast<uint64_t>(v);
  }
};

}  // namespace qos
}  // namespace hinfs

#endif  // SRC_QOS_QOS_CONFIG_H_
