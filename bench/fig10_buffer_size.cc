// Fig. 10: throughput as a function of the DRAM buffer size (ratio of the
// workload size). Fileserver improves with more buffer; webproxy's strong
// locality and short-lived files make it insensitive.
//
// `--json <path>` writes {fs, personality, ratio, ops_per_sec} rows for
// cross-PR perf tracking.

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 10", "throughput vs DRAM buffer size ratio (fileserver, webproxy)");

  const double ratios[] = {0.1, 0.25, 0.5, 0.75, 1.0};
  std::vector<BenchJsonRow> rows;
  for (Personality p : {Personality::kFileserver, Personality::kWebproxy}) {
    FilebenchConfig cfg = PaperFilebenchConfig();
    const size_t workload_bytes = cfg.nfiles * cfg.mean_file_size;

    std::printf("[%s] ops/s (workload ~= %zu MB)\n", PersonalityName(p),
                workload_bytes >> 20);
    std::printf("%-13s", "ratio");
    for (double r : ratios) {
      std::printf(" %9.2f", r);
    }
    std::printf("\n");

    // PMFS reference (buffer-independent, printed once per ratio for the eye).
    auto pmfs = RunPersonalityOn(FsKind::kPmfs, p, PaperBedConfig(), cfg);
    if (!pmfs.ok()) {
      return 1;
    }
    std::printf("%-13s", "PMFS");
    for (double r : ratios) {
      (void)r;
      std::printf(" %9.0f", pmfs->OpsPerSec());
    }
    std::printf("\n");
    rows.push_back({"PMFS", PersonalityName(p), "ratio", 0, pmfs->OpsPerSec()});

    for (FsKind kind : {FsKind::kHinfs, FsKind::kExt2Nvmmbd, FsKind::kExt4Nvmmbd}) {
      std::printf("%-13s", FsKindName(kind));
      for (double r : ratios) {
        TestBedConfig bed_cfg = PaperBedConfig();
        const auto budget = static_cast<size_t>(workload_bytes * r);
        bed_cfg.hinfs.buffer_bytes = budget;
        bed_cfg.page_cache_pages = std::max<size_t>(budget / kBlockSize, 16);
        auto result = RunPersonalityOn(kind, p, bed_cfg, cfg);
        if (!result.ok()) {
          std::fprintf(stderr, "\n%s: %s\n", FsKindName(kind),
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf(" %9.0f", result->OpsPerSec());
        std::fflush(stdout);
        rows.push_back({FsKindName(kind), PersonalityName(p), "ratio", r,
                        result->OpsPerSec()});
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("paper shape: fileserver rises with the buffer ratio on HiNFS; webproxy is\n"
              "flat (short-lived files + locality); NVMMBD baselines trail even at 1.0\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
