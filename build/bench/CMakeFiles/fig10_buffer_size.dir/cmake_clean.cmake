file(REMOVE_RECURSE
  "CMakeFiles/fig10_buffer_size.dir/fig10_buffer_size.cc.o"
  "CMakeFiles/fig10_buffer_size.dir/fig10_buffer_size.cc.o.d"
  "fig10_buffer_size"
  "fig10_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
