file(REMOVE_RECURSE
  "CMakeFiles/fs_matrix_test.dir/fs_matrix_test.cc.o"
  "CMakeFiles/fs_matrix_test.dir/fs_matrix_test.cc.o.d"
  "fs_matrix_test"
  "fs_matrix_test.pdb"
  "fs_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
