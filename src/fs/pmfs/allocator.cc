#include "src/fs/pmfs/allocator.h"

#include <cstring>

namespace hinfs {

BlockAllocator::BlockAllocator(NvmmDevice* nvmm, uint64_t bitmap_off, uint64_t num_blocks)
    : nvmm_(nvmm), bitmap_off_(bitmap_off), num_blocks_(num_blocks),
      mirror_((num_blocks + 7) / 8, 0) {}

Status BlockAllocator::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(mirror_.begin(), mirror_.end(), 0);
  // Block 0 is reserved forever: block number 0 is the radix tree's "hole"
  // sentinel, so it must never back real data.
  if (num_blocks_ > 0) {
    mirror_[0] |= 1;
  }
  HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(bitmap_off_, mirror_.data(), mirror_.size()));
  free_count_ = num_blocks_ > 0 ? num_blocks_ - 1 : 0;
  hint_ = 1;
  return OkStatus();
}

Status BlockAllocator::LoadFromNvmm() {
  std::lock_guard<std::mutex> lock(mu_);
  HINFS_RETURN_IF_ERROR(nvmm_->Load(bitmap_off_, mirror_.data(), mirror_.size()));
  free_count_ = 0;
  for (uint64_t b = 0; b < num_blocks_; b++) {
    if ((mirror_[b / 8] & (1u << (b % 8))) == 0) {
      free_count_++;
    }
  }
  hint_ = 0;
  return OkStatus();
}

uint64_t BlockAllocator::free_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_count_;
}

Status BlockAllocator::SetBitPersistent(Transaction& txn, uint64_t block, bool value) {
  const uint64_t byte_addr = bitmap_off_ + block / 8;
  // Undo-log the bitmap byte, then update it in place.
  HINFS_RETURN_IF_ERROR(txn.LogOldValue(byte_addr, 1));
  uint8_t byte = mirror_[block / 8];
  if (value) {
    byte |= static_cast<uint8_t>(1u << (block % 8));
  } else {
    byte &= static_cast<uint8_t>(~(1u << (block % 8)));
  }
  mirror_[block / 8] = byte;
  return nvmm_->StorePersistent(byte_addr, &byte, 1);
}

Result<uint64_t> BlockAllocator::Alloc(Transaction& txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_count_ == 0) {
    return Status(ErrorCode::kNoSpace, "no free data blocks");
  }
  for (uint64_t i = 0; i < num_blocks_; i++) {
    const uint64_t b = (hint_ + i) % num_blocks_;
    if ((mirror_[b / 8] & (1u << (b % 8))) == 0) {
      HINFS_RETURN_IF_ERROR(SetBitPersistent(txn, b, true));
      hint_ = b + 1;
      free_count_--;
      return b;
    }
  }
  return Status(ErrorCode::kNoSpace, "bitmap scan found no free block");
}

Status BlockAllocator::Free(Transaction& txn, uint64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  if (block >= num_blocks_) {
    return Status(ErrorCode::kOutOfRange, "free of invalid block");
  }
  if ((mirror_[block / 8] & (1u << (block % 8))) == 0) {
    return Status(ErrorCode::kInvalidArgument, "double free");
  }
  HINFS_RETURN_IF_ERROR(SetBitPersistent(txn, block, false));
  free_count_++;
  return OkStatus();
}

}  // namespace hinfs
