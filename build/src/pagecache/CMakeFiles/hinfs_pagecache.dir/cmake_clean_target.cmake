file(REMOVE_RECURSE
  "libhinfs_pagecache.a"
)
