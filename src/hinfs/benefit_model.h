// EagerPersistenceChecker: the paper's Eager-Persistent Write Checker built on
// the Buffer Benefit Model and a ghost buffer (paper §3.3.2).
//
// Per data block (DRAM-resident state only, one decision bit plus ghost
// counters):
//   N_cw = cacheline writes to the block between two synchronization ops,
//   N_cf = cacheline flushes the sync itself would perform — measured on the
//          ghost buffer, which assumes every write was buffered but keeps only
//          index metadata (a dirty-line bitmap), no data.
// At each fsync the model evaluates
//   N_cw * L_dram + N_cf * L_nvmm  <  N_cw * L_nvmm            (Inequality 1)
// Blocks violating it are marked Eager-Persistent: subsequent asynchronous
// writes to them go straight to NVMM. The state decays back to Lazy-Persistent
// after `eager_decay_ms` without a sync, implemented by consulting the file's
// last-sync time at write time (not by scanning).
//
// The checker also records the Fig. 6 accuracy metric: a block's evaluation is
// "accurate" when consecutive syncs reach the same satisfied/violated verdict.

#ifndef SRC_HINFS_BENEFIT_MODEL_H_
#define SRC_HINFS_BENEFIT_MODEL_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/hinfs/hinfs_options.h"

namespace hinfs {

class EagerPersistenceChecker {
 public:
  EagerPersistenceChecker(const HinfsOptions& options, uint64_t nvmm_write_latency_ns)
      : options_(options), l_nvmm_ns_(nvmm_write_latency_ns) {}

  // Records a write of `lines_written` cachelines covering `line_mask` within
  // (ino, file_block) in the ghost buffer. Call for every file write, lazy or
  // eager.
  void RecordWrite(uint64_t ino, uint64_t file_block, uint32_t lines_written,
                   uint64_t line_mask);

  // Decision for an asynchronous write: true if the block is currently in the
  // Eager-Persistent state (and its file's sync activity is fresh enough —
  // the last-sync time lives here in DRAM, like the paper's field in the
  // kernel VFS inode).
  bool ShouldGoDirect(uint64_t ino, uint64_t file_block, uint64_t now_ns);

  // Evaluates Inequality (1) for every ghost block of `ino` touched since its
  // previous sync, updating block states, the file's last-sync time, and the
  // accuracy statistics.
  void OnFsync(uint64_t ino, uint64_t now_ns);

  // mmap forces all of a file's blocks eager until munmap (paper §4.2).
  void ForceEager(uint64_t ino);
  void ClearForceEager(uint64_t ino);

  // Drops all state for a file (unlink).
  void Forget(uint64_t ino);

  // Fig. 6 statistics. A block contributes to the accuracy rate only once it
  // has a previous sync verdict to compare against (the paper's metric pairs
  // consecutive synchronization operations of the same block).
  uint64_t decisions() const { return decisions_; }
  uint64_t paired_decisions() const { return paired_; }
  uint64_t accurate_decisions() const { return accurate_; }
  double AccuracyRate() const {
    return paired_ == 0 ? 1.0 : static_cast<double>(accurate_) / static_cast<double>(paired_);
  }

  uint64_t eager_marks() const { return eager_marks_; }
  uint64_t lazy_marks() const { return lazy_marks_; }

 private:
  struct GhostBlock {
    uint32_t n_cw = 0;        // cacheline writes since last sync
    uint64_t ghost_dirty = 0; // dirty-line bitmap in the ghost buffer
    bool eager = false;
    bool has_prev = false;
    bool prev_satisfied = false;
  };
  struct FileState {
    std::unordered_map<uint64_t, GhostBlock> blocks;
    // Blocks written since the last sync: OnFsync only evaluates these, so a
    // sync costs O(dirtied blocks), not O(file size).
    std::vector<uint64_t> touched;
    bool force_eager = false;
    // Majority verdict of the file's most recent sync: newly created blocks
    // (appends) inherit it, so an append-fsync file routes fresh blocks
    // directly to NVMM, as the paper's varmail analysis requires.
    bool eager_bias = false;
    uint64_t last_sync_ns = 0;
  };

  HinfsOptions options_;
  uint64_t l_nvmm_ns_;

  std::mutex mu_;
  std::unordered_map<uint64_t, FileState> files_;
  uint64_t decisions_ = 0;
  uint64_t paired_ = 0;
  uint64_t accurate_ = 0;
  uint64_t eager_marks_ = 0;
  uint64_t lazy_marks_ = 0;
};

}  // namespace hinfs

#endif  // SRC_HINFS_BENEFIT_MODEL_H_
