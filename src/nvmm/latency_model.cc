#include "src/nvmm/latency_model.h"

#include "src/common/clock.h"

namespace hinfs {

void LatencyModel::Charge(uint64_t ns) const {
  switch (mode_) {
    case LatencyMode::kNone:
      break;
    case LatencyMode::kSpin:
      SpinFor(ns);
      break;
    case LatencyMode::kVirtual:
      SimClock::Advance(ns);
      break;
  }
}

}  // namespace hinfs
