
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hinfs/benefit_model.cc" "src/hinfs/CMakeFiles/hinfs_core.dir/benefit_model.cc.o" "gcc" "src/hinfs/CMakeFiles/hinfs_core.dir/benefit_model.cc.o.d"
  "/root/repo/src/hinfs/dram_buffer.cc" "src/hinfs/CMakeFiles/hinfs_core.dir/dram_buffer.cc.o" "gcc" "src/hinfs/CMakeFiles/hinfs_core.dir/dram_buffer.cc.o.d"
  "/root/repo/src/hinfs/hinfs_fs.cc" "src/hinfs/CMakeFiles/hinfs_core.dir/hinfs_fs.cc.o" "gcc" "src/hinfs/CMakeFiles/hinfs_core.dir/hinfs_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hinfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmm/CMakeFiles/hinfs_nvmm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/hinfs_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/hinfs_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
