// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints the emulator configuration (the paper's Table 2 analog)
// and one table whose rows mirror the corresponding paper figure. Durations
// are wall-clock-bounded and tunable:
//   HINFS_BENCH_DURATION_MS  per-configuration run time (default 250)
//   HINFS_BENCH_THREADS      max threads for scalability sweeps (default 8)
//   HINFS_BENCH_SCALE_DIV    divide fixed-size workloads (traces, macros) by
//                            this factor (default 1) — used by `ctest -L
//                            bench-smoke` to make the runs a formality check
// HiNFS buffer knobs (HINFS_BUFFER_SHARDS, HINFS_WRITEBACK_THREADS,
// HINFS_STEAL_FRAMES) are read by HinfsOptions::FromEnv, which PaperBedConfig
// applies — benches never parse those env vars themselves.
//
// Every bench accepts `--json <path>` via bench::ArgParser and writes its
// rows as a JSON array ({fs, personality, <x>, <value>}) so the perf
// trajectory across PRs is machine-trackable (tools/plot_bench.py plots them).

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/hinfs/hinfs_options.h"
#include "src/workloads/filebench.h"
#include "src/workloads/fs_setup.h"

namespace hinfs {

inline uint64_t BenchDurationMs() {
  const char* env = std::getenv("HINFS_BENCH_DURATION_MS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 400;
}

inline int BenchMaxThreads() {
  const char* env = std::getenv("HINFS_BENCH_THREADS");
  return env != nullptr ? std::atoi(env) : 8;
}

// Scales down workloads whose size is op-count-bound rather than
// duration-bound. ScaledOps(25000) == 25000 normally, 1250 under
// HINFS_BENCH_SCALE_DIV=20 (the bench-smoke configuration).
inline size_t BenchScaleDiv() {
  const char* env = std::getenv("HINFS_BENCH_SCALE_DIV");
  const long v = env != nullptr ? std::atol(env) : 1;
  return v > 1 ? static_cast<size_t>(v) : 1;
}

inline size_t ScaledOps(size_t ops) { return std::max<size_t>(1, ops / BenchScaleDiv()); }

// --- shared CLI ---------------------------------------------------------------

namespace bench {

// The one argv parser every figure bench uses. Recognized flags:
//   --json <path>   write machine-readable rows to <path>
//   --help / -h     usage
// Benches that sweep (fs, personality, threads) opt into the row filters by
// constructing with kFilterFlags:
//   --fs a,b          run only matching file systems (case-insensitive substring)
//   --personality a,b run only matching filebench personalities
//   --threads 1,4,8   run only the listed thread counts
// Anything else fails fast (exit 2): a typo'd invocation must not silently run
// a multi-minute sweep with the flag ignored. The `--json` path is opened once
// up front so an unwritable path also fails before the sweep, not after.
class ArgParser {
 public:
  enum Flags { kJsonOnly = 0, kFilterFlags = 1 };

  ArgParser(int argc, char** argv, Flags flags = kJsonOnly) {
    const bool filters = flags == kFilterFlags;
    for (int i = 1; i < argc; i++) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--json") == 0) {
        json_path_ = RequireValue(argc, argv, &i);
        FILE* f = std::fopen(json_path_.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "error: cannot open %s for writing\n", json_path_.c_str());
          std::exit(2);
        }
        std::fclose(f);
      } else if (filters && std::strcmp(arg, "--fs") == 0) {
        SplitInto(RequireValue(argc, argv, &i), &fs_filter_);
      } else if (filters && std::strcmp(arg, "--personality") == 0) {
        SplitInto(RequireValue(argc, argv, &i), &personality_filter_);
      } else if (filters && std::strcmp(arg, "--threads") == 0) {
        for (const std::string& tok : Split(RequireValue(argc, argv, &i))) {
          const int t = std::atoi(tok.c_str());
          if (t <= 0) {
            std::fprintf(stderr, "error: --threads wants a comma-separated list "
                         "of positive ints, got '%s'\n", tok.c_str());
            std::exit(2);
          }
          threads_filter_.push_back(t);
        }
      } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        std::printf("usage: %s [--json <path>]%s\n\n"
                    "  --json <path>  write bench rows as a JSON array to <path>\n%s",
                    argv[0],
                    filters ? " [--fs a,b] [--personality a,b] [--threads 1,4]" : "",
                    filters ? "  --fs / --personality <list>  case-insensitive "
                              "substring row filters\n"
                              "  --threads <list>             run only these "
                              "thread counts\n"
                            : "");
        std::exit(0);
      } else {
        std::fprintf(stderr, "error: unknown argument '%s' (supported: --json <path>%s)\n",
                     arg, filters ? ", --fs, --personality, --threads" : "");
        std::exit(2);
      }
    }
  }

  const std::string& json_path() const { return json_path_; }

  // Filter predicates: an unset filter matches everything.
  bool FsEnabled(const char* name) const { return Matches(fs_filter_, name); }
  bool PersonalityEnabled(const char* name) const {
    return Matches(personality_filter_, name);
  }
  bool ThreadsEnabled(int t) const {
    if (threads_filter_.empty()) {
      return true;
    }
    return std::find(threads_filter_.begin(), threads_filter_.end(), t) !=
           threads_filter_.end();
  }

 private:
  static const char* RequireValue(int argc, char** argv, int* i) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "error: %s requires a value\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  }

  static std::vector<std::string> Split(const char* csv) {
    std::vector<std::string> out;
    std::string cur;
    for (const char* p = csv;; p++) {
      if (*p == ',' || *p == '\0') {
        if (!cur.empty()) {
          out.push_back(cur);
        }
        cur.clear();
        if (*p == '\0') break;
      } else {
        cur += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
      }
    }
    return out;
  }

  static void SplitInto(const char* csv, std::vector<std::string>* dst) {
    for (std::string& s : Split(csv)) {
      dst->push_back(std::move(s));
    }
  }

  static bool Matches(const std::vector<std::string>& filter, const char* name) {
    if (filter.empty()) {
      return true;
    }
    std::string lower;
    for (const char* p = name; *p != '\0'; p++) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    }
    for (const std::string& want : filter) {
      if (lower.find(want) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  std::string json_path_;
  std::vector<std::string> fs_filter_;
  std::vector<std::string> personality_filter_;
  std::vector<int> threads_filter_;
};

}  // namespace bench

// --- machine-readable results ------------------------------------------------

// One measured configuration. `x` is the sweep coordinate (thread count,
// buffer ratio, ...) named by `x_key`; `value` is the measurement, named by
// `value_key` (ops/s unless the figure measures something else).
struct BenchJsonRow {
  std::string fs;
  std::string personality;
  const char* x_key = "threads";
  double x = 0;
  double value = 0;
  const char* value_key = "ops_per_sec";
  // QoS tenant the row measures; < 0 (the default) omits the field so the
  // JSON of non-multi-tenant benches is unchanged.
  int tenant = -1;
};

// The JSON document is {"config": {...}, "rows": [...]}: the config block
// records the env-resolved knobs the run used (bench budget + the WAL knobs
// from HinfsOptions::FromEnv + the HINFS_QOS_* tenant-scheduler knobs), so a
// recorded perf file is self-describing.
// plot_bench.py/bench_compare.py accept both this shape and the bare-array
// form older perf/ baselines use.
inline bool WriteBenchJson(const std::string& path, const std::vector<BenchJsonRow>& rows) {
  if (path.empty()) {
    return true;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const HinfsOptions env_opts = HinfsOptions::FromEnv(HinfsOptions{});
  const qos::QosConfig qos_cfg = qos::QosConfig::FromEnv();
  std::string qos_weights;
  for (size_t i = 0; i < qos_cfg.weights.size(); i++) {
    if (i > 0) {
      qos_weights += ',';
    }
    qos_weights += std::to_string(qos_cfg.weights[i]);
  }
  std::fprintf(f, "{\n  \"config\": {\"duration_ms\": %llu, \"max_threads\": %d, "
               "\"scale_div\": %zu,\n             \"wal_regions\": %u, "
               "\"wal_bytes\": %zu, \"wal_commit_fmt\": \"%s\", "
               "\"wal_checkpoint_ms\": %llu, \"wal_direct_min\": %zu,\n             "
               "\"qos_tenants\": %u, \"qos_weights\": \"%s\", "
               "\"qos_fg_reserve\": %g},\n",
               static_cast<unsigned long long>(BenchDurationMs()), BenchMaxThreads(),
               BenchScaleDiv(), env_opts.wal.regions, env_opts.wal.total_bytes,
               env_opts.wal.commit_format == WalCommitFormat::kChecksum ? "checksum"
                                                                        : "fence",
               static_cast<unsigned long long>(env_opts.wal.checkpoint_ms),
               env_opts.wal.direct_write_bytes, qos_cfg.tenants, qos_weights.c_str(),
               qos_cfg.fg_reserve);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); i++) {
    const BenchJsonRow& r = rows[i];
    char tenant[32] = "";
    if (r.tenant >= 0) {
      std::snprintf(tenant, sizeof(tenant), ", \"tenant\": %d", r.tenant);
    }
    std::fprintf(f, "  {\"fs\": \"%s\", \"personality\": \"%s\", \"%s\": %g, "
                 "\"%s\": %.3f%s}%s\n",
                 r.fs.c_str(), r.personality.c_str(), r.x_key, r.x, r.value_key, r.value,
                 tenant, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu rows to %s\n", rows.size(), path.c_str());
  return true;
}

// Emulator defaults from the paper's evaluation (Table 2): 200 ns NVMM write
// latency, 1 GB/s NVMM write bandwidth, spin-loop injection.
inline TestBedConfig PaperBedConfig(size_t device_bytes = 256ull << 20,
                                    size_t buffer_bytes = 64ull << 20) {
  TestBedConfig cfg;
  cfg.nvmm.size_bytes = device_bytes;
  cfg.nvmm.latency_mode = LatencyMode::kSpin;
  cfg.nvmm.write_latency_ns = 200;
  cfg.nvmm.write_bandwidth_bytes_per_sec = 1ull << 30;
  cfg.hinfs.buffer_bytes = buffer_bytes;
  cfg.hinfs = HinfsOptions::FromEnv(cfg.hinfs);
  cfg.nvmm.qos = qos::QosConfig::FromEnv(cfg.nvmm.qos);
  cfg.pmfs.max_inodes = 1 << 14;
  // The paper gives the NVMMBD baselines 3 GB of system memory for a 5 GB
  // dataset; scaled down, the page cache holds ~60 % of our ~13 MB dataset.
  cfg.page_cache_pages = 1280;  // 5 MB
  return cfg;
}

inline FilebenchConfig PaperFilebenchConfig() {
  FilebenchConfig cfg;
  cfg.nfiles = 96;
  cfg.dir_width = 16;
  cfg.mean_file_size = 128 * 1024;
  cfg.io_size = 64 * 1024;  // scaled-down stand-in for the paper's 1 MB mean
  cfg.threads = 2;
  cfg.duration_ms = BenchDurationMs();
  return cfg;
}

inline void PrintBenchHeader(const char* figure, const char* description) {
  std::printf("== %s: %s ==\n", figure, description);
  std::printf("emulator: NVMM write latency 200 ns (spin), write bandwidth 1 GB/s, "
              "cacheline 64 B, block 4 KB\n");
  std::printf("run: %llu ms per configuration\n\n",
              static_cast<unsigned long long>(BenchDurationMs()));
}

// Persist-order counters mirrored from the NVMM device after a run: how many
// fences the workload issued, how many cachelines it flushed, how many fenced
// epochs flushed data, and the peak flushed-but-unfenced line count (the crash
// exposure window under clflushopt/clwb; see DESIGN.md crashlab section).
struct PersistCounters {
  uint64_t fences = 0;
  uint64_t flushed_lines = 0;
  uint64_t epochs = 0;
  uint64_t max_unfenced_lines = 0;
};

// Runs one filebench personality on a fresh instance of `kind`.
inline Result<WorkloadResult> RunPersonalityOn(FsKind kind, Personality personality,
                                               const TestBedConfig& bed_cfg,
                                               const FilebenchConfig& fb_cfg,
                                               uint64_t* nvmm_write_bytes = nullptr,
                                               PersistCounters* persist = nullptr) {
  HINFS_ASSIGN_OR_RETURN(std::unique_ptr<TestBed> bed, MakeTestBed(kind, bed_cfg));
  HINFS_RETURN_IF_ERROR(PrepareFileset(bed->vfs.get(), fb_cfg));
  // The paper clears the OS page cache before each run.
  HINFS_RETURN_IF_ERROR(bed->fs->DropCaches());
  bed->nvmm->ResetCounters();
  HINFS_ASSIGN_OR_RETURN(WorkloadResult result,
                         RunFilebench(bed->vfs.get(), personality, fb_cfg));
  if (nvmm_write_bytes != nullptr) {
    *nvmm_write_bytes = bed->nvmm->flushed_bytes();
  }
  if (persist != nullptr) {
    persist->fences = bed->nvmm->fence_count();
    persist->flushed_lines = bed->nvmm->flushed_lines();
    persist->epochs = bed->nvmm->epoch_count();
    persist->max_unfenced_lines = bed->nvmm->max_unfenced_lines();
  }
  HINFS_RETURN_IF_ERROR(bed->vfs->Unmount());
  return result;
}

}  // namespace hinfs

#endif  // BENCH_BENCH_COMMON_H_
