// hinfsd wire protocol: length-prefixed binary frames carrying the FsApi
// syscall surface over a byte stream (Unix-domain or TCP socket).
//
// Frame layout (all integers little-endian, encoded byte-by-byte so the
// format is identical on any host):
//
//   [u32 frame_len] [payload: frame_len bytes]
//
// Request payload (kReqHeaderBytes fixed header, then variable sections in
// this order: path, path2, data):
//
//   offset  0  u64 request_id   echoed verbatim in the response
//   offset  8  u8  opcode       Opcode below
//   offset  9  u8  pad          must be 0
//   offset 10  u16 path_len     bytes of path  (<= kMaxPathBytes)
//   offset 12  u16 path2_len    bytes of path2 (rename target; else 0)
//   offset 14  u16 pad2         must be 0
//   offset 16  u32 flags        OpenFlags for kOpen; SyncOptions bits for
//                               kFsync/kFdatasync (kSyncFlagNoGroupWait); else 0
//   offset 20  i32 fd           client-visible fd for fd ops; else -1
//   offset 24  u64 offset       pread/pwrite/seek offset; ftruncate size
//   offset 32  u32 count        bytes requested (read/pread); else 0
//   offset 36  u32 data_len     bytes of data carried (write/pwrite payload)
//   offset 40  path, path2, data
//
// The frame is malformed unless
//   frame_len == kReqHeaderBytes + path_len + path2_len + data_len
// and every limit above holds. A malformed frame is unrecoverable (framing
// may be corrupt), so the server counts srv_protocol_errors and drops the
// connection; an over-limit frame_len is rejected before buffering.
//
// Response payload (kRespHeaderBytes fixed header, then data):
//
//   offset  0  u64 request_id
//   offset  8  u8  opcode       echoed
//   offset  9  u8  status       ErrorCode as u8 (0 = ok)
//   offset 10  u16 pad          0
//   offset 12  u32 data_len
//   offset 16  u64 r0           primary scalar result (see opcode table)
//   offset 24  data
//
// data holds: read bytes (kRead/kPread), a serialized InodeAttr
// (kStat/kFstat, see AppendAttr), serialized dirents (kReadDir), or the
// Status message string on error. r0 holds: the client fd (kOpen), bytes
// transferred (read/write ops), the new offset (kSeek), or 0/1 (kExists).
//
// Client-visible fds are session-scoped: the server maps them onto Vfs fds
// and closes everything the session still holds when the connection drops.

#ifndef SRC_SERVER_PROTOCOL_H_
#define SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vfs/file_system.h"

namespace hinfs {
namespace server {

enum class Opcode : uint8_t {
  kPing = 1,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kPread,
  kPwrite,
  kSeek,
  kFsync,
  kFtruncate,
  kFstat,
  kMkdir,
  kRmdir,
  kUnlink,
  kRename,
  kStat,
  kReadDir,
  kExists,
  kSyncFs,
  // fdatasync(2); appended so existing clients' opcode bytes keep their
  // meaning. req.flags carries the SyncOptions encoding (see below).
  kFdatasync,
  // Session handshake (protocol v2): req.flags carries the client's protocol
  // version, req.offset the requested tenant id, req.count the requested
  // weight (0 = keep the server-configured weight). Optional — a session that
  // never says hello charges as the system tenant — and idempotent.
  // resp.r0 returns the tenant id actually granted (clamped into the
  // scheduler's range; 0 when the server runs without QoS).
  kHello,
};
inline constexpr uint8_t kMinOpcode = static_cast<uint8_t>(Opcode::kPing);
inline constexpr uint8_t kMaxOpcode = static_cast<uint8_t>(Opcode::kHello);

// Bumped to 2 when kHello was appended. Servers accept any version (the
// protocol is append-only; old clients simply never send the new opcodes),
// but a client handshaking with a version the server does not know gets
// kInvalidArgument back rather than a silent misinterpretation.
inline constexpr uint32_t kProtocolVersion = 2;

// SyncOptions on the wire (req.flags for kFsync/kFdatasync): bit 0 set means
// the caller opts OUT of group commit (insists on its own flush+fence), so a
// zero flags word keeps the pre-SyncOptions behavior. The scope is implied by
// the opcode (kFsync = kAll, kFdatasync = kData).
inline constexpr uint32_t kSyncFlagNoGroupWait = 0x1;

inline uint32_t SyncOptionsToWire(const SyncOptions& options) {
  return options.allow_group_wait ? 0u : kSyncFlagNoGroupWait;
}
inline SyncOptions WireToSyncOptions(Opcode op, uint32_t flags) {
  SyncOptions options =
      op == Opcode::kFdatasync ? SyncOptions::Fdatasync() : SyncOptions::Fsync();
  options.allow_group_wait = (flags & kSyncFlagNoGroupWait) == 0;
  return options;
}

const char* OpcodeName(Opcode op);

inline constexpr size_t kFrameLenBytes = 4;
inline constexpr size_t kReqHeaderBytes = 40;
inline constexpr size_t kRespHeaderBytes = 24;
inline constexpr size_t kMaxPathBytes = 4096;
// Largest data section either direction (one read/write payload).
inline constexpr size_t kMaxDataBytes = 4u << 20;
inline constexpr size_t kMaxFrameBytes = kReqHeaderBytes + 2 * kMaxPathBytes + kMaxDataBytes;
// Error-message strings are truncated to this before hitting the wire.
inline constexpr size_t kMaxErrorMessageBytes = 256;

struct Request {
  uint64_t request_id = 0;
  Opcode opcode = Opcode::kPing;
  uint32_t flags = 0;
  int32_t fd = -1;
  uint64_t offset = 0;
  uint32_t count = 0;
  std::string path;
  std::string path2;
  std::string data;
};

struct Response {
  uint64_t request_id = 0;
  Opcode opcode = Opcode::kPing;
  ErrorCode status = ErrorCode::kOk;
  uint64_t r0 = 0;
  std::string data;
};

// Appends one full frame (length prefix included) to `out`.
void EncodeRequest(const Request& req, std::string* out);
void EncodeResponse(const Response& resp, std::string* out);

// Decodes a payload (the bytes after the length prefix). Returns
// kInvalidArgument on any malformed input; the caller must treat that as a
// fatal protocol error for the connection.
Status DecodeRequest(const uint8_t* payload, size_t len, Request* out);
Status DecodeResponse(const uint8_t* payload, size_t len, Response* out);

// Reads a frame length prefix and validates it against the limits above.
Status ParseFrameLen(const uint8_t* buf, size_t max_frame_bytes, uint32_t* frame_len);

// --- result payload (de)serialization ---------------------------------------

// InodeAttr as 32 bytes: ino u64, size u64, mtime_ns u64, nlink u32, type u8,
// pad[3].
inline constexpr size_t kWireAttrBytes = 32;
void AppendAttr(const InodeAttr& attr, std::string* out);
Status ParseAttr(const uint8_t* buf, size_t len, InodeAttr* out);

// Dirents as u32 count, then per entry: ino u64, type u8, name_len u8, name.
void AppendDirEntries(const std::vector<DirEntry>& entries, std::string* out);
Status ParseDirEntries(const uint8_t* buf, size_t len, std::vector<DirEntry>* out);

// ErrorCode <-> wire byte. Unknown wire values map to kIoError.
uint8_t ErrorToWire(ErrorCode code);
ErrorCode WireToError(uint8_t value);

}  // namespace server
}  // namespace hinfs

#endif  // SRC_SERVER_PROTOCOL_H_
