# Empty dependencies file for pmfs_test.
# This may be replaced when dependencies are built.
