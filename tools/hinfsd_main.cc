// hinfsd: serves an in-memory HiNFS (or baseline) instance over Unix-domain
// and/or TCP sockets using the length-prefixed protocol in
// src/server/protocol.h. Pair it with `fsload` for over-the-wire load.
//
// The file system lives on the emulated NVMM device, so a daemon restart is a
// fresh format — this is a measurement harness, not a durable service.

#include <unistd.h>

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/server/server.h"
#include "src/workloads/fs_setup.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

constexpr hinfs::FsKind kKinds[] = {
    hinfs::FsKind::kPmfs,       hinfs::FsKind::kExt4Dax,   hinfs::FsKind::kExt2Nvmmbd,
    hinfs::FsKind::kExt4Nvmmbd, hinfs::FsKind::kHinfs,     hinfs::FsKind::kHinfsNclfw,
    hinfs::FsKind::kHinfsWb,    hinfs::FsKind::kHinfsFifo,
};

// Case-insensitive, with '-' and '+' interchangeable, so "ext2-nvmmbd"
// matches FsKindName's "EXT2+NVMMBD".
std::string CanonKindName(const char* name) {
  std::string out;
  for (const char* p = name; *p != '\0'; p++) {
    out.push_back(*p == '+' ? '-' : static_cast<char>(std::tolower(*p)));
  }
  return out;
}

bool ParseFsKind(const char* name, hinfs::FsKind* out) {
  const std::string want = CanonKindName(name);
  for (hinfs::FsKind kind : kKinds) {
    if (want == CanonKindName(hinfs::FsKindName(kind))) {
      *out = kind;
      return true;
    }
  }
  return false;
}

void Usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n\n"
      "  --unix <path>     Unix-domain socket path (default /tmp/hinfsd.sock)\n"
      "  --tcp <port>      also listen on 127.0.0.1:<port> (0 = ephemeral)\n"
      "  --fs <kind>       file system to serve (default hinfs); one of:\n"
      "                    pmfs ext4-dax ext2-nvmmbd ext4-nvmmbd hinfs\n"
      "                    hinfs-nclfw hinfs-wb hinfs-fifo\n"
      "  --workers <n>     request worker threads (default 2)\n"
      "  --device-mb <n>   emulated NVMM size in MiB (default 256)\n"
      "  --buffer-mb <n>   HiNFS DRAM buffer size in MiB (default 64)\n"
      "  --emulate         inject the paper's NVMM latency model (200 ns spin);\n"
      "                    default is no injected latency\n"
      "  --stats           print server + fs counters on shutdown\n\n"
      "multi-tenant QoS (with --emulate): set HINFS_QOS_TENANTS (and optionally\n"
      "HINFS_QOS_WEIGHTS, HINFS_QOS_FG_RESERVE); clients pick tenants via the\n"
      "hello handshake (fsload --tenant/--weight)\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hinfs;

  std::string unix_path = "/tmp/hinfsd.sock";
  int tcp_port = -1;
  FsKind kind = FsKind::kHinfs;
  int workers = 2;
  size_t device_mb = 256;
  size_t buffer_mb = 64;
  bool emulate = false;
  bool print_stats = false;

  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--unix") == 0) {
      unix_path = next("--unix");
    } else if (std::strcmp(arg, "--tcp") == 0) {
      tcp_port = std::atoi(next("--tcp"));
    } else if (std::strcmp(arg, "--fs") == 0) {
      const char* name = next("--fs");
      if (!ParseFsKind(name, &kind)) {
        std::fprintf(stderr, "error: unknown fs kind '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(arg, "--workers") == 0) {
      workers = std::atoi(next("--workers"));
    } else if (std::strcmp(arg, "--device-mb") == 0) {
      device_mb = std::strtoull(next("--device-mb"), nullptr, 10);
    } else if (std::strcmp(arg, "--buffer-mb") == 0) {
      buffer_mb = std::strtoull(next("--buffer-mb"), nullptr, 10);
    } else if (std::strcmp(arg, "--emulate") == 0) {
      emulate = true;
    } else if (std::strcmp(arg, "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s' (see --help)\n", arg);
      return 2;
    }
  }

  TestBedConfig bed_cfg;
  bed_cfg.nvmm.size_bytes = device_mb << 20;
  if (emulate) {
    bed_cfg.nvmm.latency_mode = LatencyMode::kSpin;
    bed_cfg.nvmm.write_latency_ns = 200;
    bed_cfg.nvmm.write_bandwidth_bytes_per_sec = 1ull << 30;
  }
  bed_cfg.hinfs.buffer_bytes = buffer_mb << 20;
  bed_cfg.hinfs = HinfsOptions::FromEnv(bed_cfg.hinfs);
  bed_cfg.nvmm.qos = qos::QosConfig::FromEnv(bed_cfg.nvmm.qos);
  bed_cfg.pmfs.max_inodes = 1 << 14;
  bed_cfg.page_cache_pages = 1280;

  Result<std::unique_ptr<TestBed>> bed = MakeTestBed(kind, bed_cfg);
  if (!bed.ok()) {
    std::fprintf(stderr, "error: cannot build %s test bed: %s\n", FsKindName(kind),
                 bed.status().ToString().c_str());
    return 1;
  }

  server::ServerOptions opts;
  opts.unix_path = unix_path;
  opts.tcp_port = tcp_port;
  opts.workers = workers;
  opts.qos = (*bed)->nvmm->qos();  // null unless HINFS_QOS_TENANTS is set
  server::Server srv((*bed)->vfs.get(), opts);
  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("hinfsd: serving %s (%zu MiB device)\n", FsKindName(kind), device_mb);
  if (!unix_path.empty()) {
    std::printf("hinfsd: unix socket %s\n", unix_path.c_str());
  }
  if (tcp_port >= 0) {
    std::printf("hinfsd: tcp 127.0.0.1:%d\n", srv.tcp_port());
  }
  std::printf("hinfsd: %d workers; ^C to stop\n", workers);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    usleep(100 * 1000);
  }

  std::printf("hinfsd: draining...\n");
  srv.Stop();
  if (print_stats) {
    if (auto* qos = (*bed)->nvmm->qos()) {
      qos->ExportStats(&srv.stats(), (*bed)->nvmm->bandwidth().bytes_per_sec());
    }
    for (const auto& [name, value] : srv.stats().Snapshot()) {
      std::printf("  %-28s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
  }
  st = (*bed)->vfs->Unmount();
  if (!st.ok()) {
    std::fprintf(stderr, "error: unmount failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("hinfsd: bye\n");
  return 0;
}
