// Deterministic pseudo-random number generation for workload generators.
//
// A small xoshiro256** implementation is used instead of <random> engines so that
// workload generators are fast, seed-stable across platforms, and cheap to copy.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace hinfs {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, the reference initialization for xoshiro.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Zipf-like skewed index in [0, n): used to model the high I/O skewness the
  // paper cites for file system workloads. theta in (0, 1); higher is more skewed.
  // Implemented as a cheap power-law transform rather than exact Zipf sampling,
  // which is sufficient for generating locality.
  uint64_t Skewed(uint64_t n, double theta);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace hinfs

#endif  // SRC_COMMON_RNG_H_
