#include <gtest/gtest.h>

#include <cstring>

#include "src/blockdev/nvmm_block_device.h"
#include "src/fs/blockfs/block_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

struct Mode {
  bool journal;
  bool dax;
  const char* name;
};

class BlockFsTest : public ::testing::TestWithParam<Mode> {
 protected:
  BlockFsTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 64 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    dev_ = std::make_unique<NvmmBlockDevice>(nvmm_.get(), 0, (64 << 20) / kBlockSize);
    opts_.journal = GetParam().journal;
    opts_.dax = GetParam().dax;
    opts_.max_inodes = 2048;
    if (opts_.dax) {
      opts_.dax_nvmm = nvmm_.get();
      opts_.dax_nvmm_base = 0;
    }
    auto fs = BlockFs::Format(dev_.get(), opts_);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  void Remount() {
    vfs_.reset();
    fs_.reset();
    auto fs = BlockFs::Mount(dev_.get(), opts_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<NvmmBlockDevice> dev_;
  BlockFsOptions opts_;
  std::unique_ptr<BlockFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_P(BlockFsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "block data").ok());
  auto content = vfs_->ReadFileToString("/f");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(*content, "block data");
}

TEST_P(BlockFsTest, DirectoriesAndNesting) {
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  ASSERT_TRUE(vfs_->Mkdir("/d/e").ok());
  ASSERT_TRUE(vfs_->WriteFile("/d/e/f", "deep").ok());
  auto content = vfs_->ReadFileToString("/d/e/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "deep");
  auto entries = vfs_->ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST_P(BlockFsTest, LargeFileUsesIndirectBlocks) {
  // > 10 direct blocks (40 KB) exercises the indirect path; > 2 MB + 40 KB
  // would use double-indirect.
  const size_t total = 300 * 1024;
  std::vector<uint8_t> payload(8192);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(i);
  }
  auto fd = vfs_->Open("/big", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  for (size_t off = 0; off < total; off += payload.size()) {
    ASSERT_TRUE(vfs_->Write(*fd, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  fd = vfs_->Open("/big", kRdOnly);
  ASSERT_TRUE(fd.ok());
  uint8_t out[64];
  auto n = vfs_->Pread(*fd, out, 64, 123 * 1024);
  ASSERT_TRUE(n.ok());
  for (int i = 0; i < 64; i++) {
    EXPECT_EQ(out[i], payload[(123 * 1024 + i) % payload.size()]);
  }
}

TEST_P(BlockFsTest, DoubleIndirectFile) {
  const size_t total = (2 << 20) + 256 * 1024;
  std::vector<uint8_t> payload(1 << 16, 0x3c);
  auto fd = vfs_->Open("/huge", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  for (size_t off = 0; off < total; off += payload.size()) {
    ASSERT_TRUE(vfs_->Write(*fd, payload.data(), payload.size()).ok());
  }
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  auto attr = vfs_->Stat("/huge");
  ASSERT_TRUE(attr.ok());
  EXPECT_GE(attr->size, total);
  fd = vfs_->Open("/huge", kRdOnly);
  uint8_t out[8];
  auto n = vfs_->Pread(*fd, out, 8, total - 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 0x3c);
}

TEST_P(BlockFsTest, UnlinkFreesAndForgets) {
  ASSERT_TRUE(vfs_->WriteFile("/victim", std::string(50000, 'v')).ok());
  ASSERT_TRUE(vfs_->Unlink("/victim").ok());
  EXPECT_FALSE(vfs_->Exists("/victim").value_or(true));
  // Space is reusable.
  ASSERT_TRUE(vfs_->WriteFile("/again", std::string(50000, 'w')).ok());
}

TEST_P(BlockFsTest, TruncateShrinks) {
  ASSERT_TRUE(vfs_->WriteFile("/t", std::string(100000, 't')).ok());
  auto fd = vfs_->Open("/t", kRdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Ftruncate(*fd, 10).ok());
  auto attr = vfs_->Fstat(*fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 10u);
}

TEST_P(BlockFsTest, RenameWorks) {
  ASSERT_TRUE(vfs_->WriteFile("/a", "renamed").ok());
  ASSERT_TRUE(vfs_->Rename("/a", "/b").ok());
  auto content = vfs_->ReadFileToString("/b");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "renamed");
}

TEST_P(BlockFsTest, FsyncAndRemount) {
  ASSERT_TRUE(vfs_->WriteFile("/durable", "must survive").ok());
  auto fd = vfs_->Open("/durable", kRdOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Fsync(*fd).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  ASSERT_TRUE(vfs_->Unmount().ok());
  Remount();
  auto content = vfs_->ReadFileToString("/durable");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(*content, "must survive");
}

TEST_P(BlockFsTest, UnmountFlushesDirtyPages) {
  ASSERT_TRUE(vfs_->WriteFile("/lazy", std::string(20000, 'l')).ok());
  ASSERT_TRUE(vfs_->Unmount().ok());
  Remount();
  auto content = vfs_->ReadFileToString("/lazy");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 20000u);
}

TEST_P(BlockFsTest, HolesReadZero) {
  auto fd = vfs_->Open("/sparse", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Pwrite(*fd, "x", 1, 50000).ok());
  char out[10] = {1};
  auto n = vfs_->Pread(*fd, out, 10, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out[0], 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, BlockFsTest,
                         ::testing::Values(Mode{false, false, "ext2"},
                                           Mode{true, false, "ext4"},
                                           Mode{true, true, "ext4dax"}),
                         [](const auto& info) { return info.param.name; });

// Journal-specific behaviour.
TEST(BlockFsJournalTest, CommittedMetadataSurvivesPageCacheLoss) {
  NvmmConfig cfg;
  cfg.size_bytes = 32 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  NvmmDevice nvmm(cfg);
  NvmmBlockDevice dev(&nvmm, 0, (32 << 20) / kBlockSize);
  BlockFsOptions opts;
  opts.journal = true;
  opts.max_inodes = 512;

  {
    auto fs = BlockFs::Format(&dev, opts);
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.WriteFile("/j", "journaled").ok());
    auto fd = vfs.Open("/j", kRdOnly);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs.Fsync(*fd).ok());  // data pages + journal commit
    // Crash: the page cache (DRAM) vanishes; only device writes survive.
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());

  auto fs = BlockFs::Mount(&dev, opts);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  Vfs vfs(fs->get());
  auto content = vfs.ReadFileToString("/j");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(*content, "journaled");
}

TEST(BlockFsJournalTest, UnsyncedDataLostOnCrash) {
  NvmmConfig cfg;
  cfg.size_bytes = 32 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  NvmmDevice nvmm(cfg);
  NvmmBlockDevice dev(&nvmm, 0, (32 << 20) / kBlockSize);
  BlockFsOptions opts;
  opts.journal = true;
  opts.max_inodes = 512;

  {
    auto fs = BlockFs::Format(&dev, opts);
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.WriteFile("/gone", "never synced").ok());
    // No fsync, no unmount: everything sits in the page cache.
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());

  auto fs = BlockFs::Mount(&dev, opts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  EXPECT_FALSE(vfs.Exists("/gone").value_or(true));
}

}  // namespace
}  // namespace hinfs
