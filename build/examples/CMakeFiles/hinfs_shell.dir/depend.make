# Empty dependencies file for hinfs_shell.
# This may be replaced when dependencies are built.
