// Status: error-code based result reporting used throughout the repository.
//
// This library does not use exceptions (os-systems convention). Fallible functions
// return Status, or Result<T> (see src/common/result.h) when they produce a value.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace hinfs {

// Error codes deliberately mirror the POSIX errors a kernel file system would
// return to the VFS, plus a few emulator-specific conditions.
enum class ErrorCode : int32_t {
  kOk = 0,
  kNotFound,         // ENOENT
  kExists,           // EEXIST
  kNotDir,           // ENOTDIR
  kIsDir,            // EISDIR
  kNotEmpty,         // ENOTEMPTY
  kNoSpace,          // ENOSPC
  kNoMemory,         // ENOMEM
  kInvalidArgument,  // EINVAL
  kBadFd,            // EBADF
  kOutOfRange,       // out-of-bounds device or file access
  kTooManyOpenFiles, // EMFILE
  kNameTooLong,      // ENAMETOOLONG
  kReadOnly,         // EROFS
  kBusy,             // EBUSY
  kCorrupt,          // on-"disk" structure failed validation
  kNotSupported,     // operation not implemented by this file system
  kIoError,          // generic device failure (fault injection)
};

// Human-readable name of an error code ("kNoSpace" -> "no space").
std::string_view ErrorCodeName(ErrorCode code);

// A Status is an ErrorCode plus an optional context message. Statuses are cheap
// to copy in the common (OK) case: OK carries no message allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "not found: /a/b" style rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

#define HINFS_RETURN_IF_ERROR(expr)        \
  do {                                     \
    ::hinfs::Status _st = (expr);          \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

}  // namespace hinfs

#endif  // SRC_COMMON_STATUS_H_
