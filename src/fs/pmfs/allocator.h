// Persistent block allocator: a bitmap on NVMM with a DRAM mirror for fast
// scanning. Bitmap updates are journaled by the caller's transaction so that
// allocation is atomic with the metadata that references the block.

#ifndef SRC_FS_PMFS_ALLOCATOR_H_
#define SRC_FS_PMFS_ALLOCATOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/fs/pmfs/journal.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

class BlockAllocator {
 public:
  // The bitmap (one bit per data block) lives at `bitmap_off` on `nvmm`.
  BlockAllocator(NvmmDevice* nvmm, uint64_t bitmap_off, uint64_t num_blocks);

  // Zeroes the bitmap (format time).
  Status Format();

  // Rebuilds the DRAM mirror from NVMM (mount time, after journal recovery).
  Status LoadFromNvmm();

  // Allocates one data block; the bitmap byte's old value is undo-logged into
  // `txn` before being set, making the allocation atomic with the caller's
  // other metadata updates. Returns the block number.
  Result<uint64_t> Alloc(Transaction& txn);

  // Frees a block (journaled like Alloc).
  Status Free(Transaction& txn, uint64_t block);

  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t free_blocks() const;

 private:
  Status SetBitPersistent(Transaction& txn, uint64_t block, bool value);

  NvmmDevice* nvmm_;
  uint64_t bitmap_off_;
  uint64_t num_blocks_;

  mutable std::mutex mu_;
  std::vector<uint8_t> mirror_;  // DRAM copy of the bitmap
  uint64_t hint_ = 0;            // next-fit scan position
  uint64_t free_count_ = 0;
};

}  // namespace hinfs

#endif  // SRC_FS_PMFS_ALLOCATOR_H_
