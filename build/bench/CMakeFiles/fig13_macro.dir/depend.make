# Empty dependencies file for fig13_macro.
# This may be replaced when dependencies are built.
