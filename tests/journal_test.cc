#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/fs/pmfs/journal.h"

namespace hinfs {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRingOff = 4096;
  static constexpr uint64_t kRingBytes = 64 * 1024;  // 1024 entries
  static constexpr uint64_t kDataOff = 1 << 20;

  JournalTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 4 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    journal_ = std::make_unique<Journal>(nvmm_.get(), kRingOff, kRingBytes);
    EXPECT_TRUE(journal_->Format().ok());
  }

  uint64_t ReadU64(uint64_t addr) {
    uint64_t v;
    EXPECT_TRUE(nvmm_->Load(addr, &v, 8).ok());
    return v;
  }
  void WriteU64Persistent(uint64_t addr, uint64_t v) {
    EXPECT_TRUE(nvmm_->StorePersistent(addr, &v, 8).ok());
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<Journal> journal_;
};

TEST_F(JournalTest, CommittedTransactionSurvivesRecovery) {
  WriteU64Persistent(kDataOff, 1);
  Transaction txn = journal_->Begin();
  ASSERT_TRUE(txn.LogOldValue(kDataOff, 8).ok());
  WriteU64Persistent(kDataOff, 2);
  ASSERT_TRUE(txn.Commit().ok());

  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 0u);
  EXPECT_EQ(ReadU64(kDataOff), 2u);
}

TEST_F(JournalTest, UncommittedTransactionRolledBack) {
  WriteU64Persistent(kDataOff, 1);
  Transaction txn = journal_->Begin();
  ASSERT_TRUE(txn.LogOldValue(kDataOff, 8).ok());
  WriteU64Persistent(kDataOff, 2);
  // No commit: simulated crash here.

  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 1u);
  EXPECT_EQ(ReadU64(kDataOff), 1u);  // old value restored
}

TEST_F(JournalTest, MixedCommitStates) {
  WriteU64Persistent(kDataOff, 10);
  WriteU64Persistent(kDataOff + 64, 20);

  Transaction committed = journal_->Begin();
  ASSERT_TRUE(committed.LogOldValue(kDataOff, 8).ok());
  WriteU64Persistent(kDataOff, 11);
  ASSERT_TRUE(committed.Commit().ok());

  Transaction crashed = journal_->Begin();
  ASSERT_TRUE(crashed.LogOldValue(kDataOff + 64, 8).ok());
  WriteU64Persistent(kDataOff + 64, 21);

  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 1u);
  EXPECT_EQ(ReadU64(kDataOff), 11u);
  EXPECT_EQ(ReadU64(kDataOff + 64), 20u);
}

TEST_F(JournalTest, LargeRegionSplitsIntoEntries) {
  std::vector<uint8_t> original(300, 0x5a);
  ASSERT_TRUE(nvmm_->StorePersistent(kDataOff, original.data(), original.size()).ok());

  Transaction txn = journal_->Begin();
  ASSERT_TRUE(txn.LogOldValue(kDataOff, original.size()).ok());
  std::vector<uint8_t> clobber(300, 0xff);
  ASSERT_TRUE(nvmm_->StorePersistent(kDataOff, clobber.data(), clobber.size()).ok());

  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  std::vector<uint8_t> out(300);
  ASSERT_TRUE(nvmm_->Load(kDataOff, out.data(), out.size()).ok());
  EXPECT_EQ(out, original);
}

TEST_F(JournalTest, TornEntryIgnored) {
  // Write a valid-looking entry body whose valid flag doesn't match the
  // generation: recovery must skip it.
  JournalEntry e{};
  e.txn_id = 99;
  e.addr = kDataOff;
  e.len = 8;
  e.type = kJournalUndo;
  e.generation = 1;
  e.valid = 0;  // torn: flag never landed
  const uint64_t sentinel = 0x1234;
  std::memcpy(e.data, &sentinel, 8);
  ASSERT_TRUE(nvmm_->StorePersistent(kRingOff, &e, sizeof(e)).ok());
  WriteU64Persistent(kDataOff, 555);

  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 0u);
  EXPECT_EQ(ReadU64(kDataOff), 555u);  // untouched
}

TEST_F(JournalTest, RingWrapRetiresOldEntries) {
  // Fill the ring several times over with committed transactions; recovery
  // must not roll anything back.
  for (int i = 0; i < 3000; i++) {
    Transaction txn = journal_->Begin();
    ASSERT_TRUE(txn.LogOldValue(kDataOff + (i % 10) * 8, 8).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 0u);
}

TEST_F(JournalTest, ConcurrentTransactions) {
  // Hammer the journal from several threads; every transaction commits, so
  // recovery rolls nothing back and all final values survive.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; t++) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const uint64_t addr = kDataOff + (t * kPerThread + i) % 64 * 8;
        Transaction txn = journal_->Begin();
        ASSERT_TRUE(txn.LogOldValue(addr, 8).ok());
        ASSERT_TRUE(txn.Commit().ok());
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  auto rolled = journal_->Recover();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 0u);
}

TEST_F(JournalTest, RecoveryAfterRecoveryIsClean) {
  Transaction txn = journal_->Begin();
  ASSERT_TRUE(txn.LogOldValue(kDataOff, 8).ok());
  ASSERT_TRUE(journal_->Recover().ok());
  auto again = journal_->Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);  // first recovery already reset the ring
}

}  // namespace
}  // namespace hinfs
