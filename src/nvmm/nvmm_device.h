// NvmmDevice: software emulator for byte-addressable non-volatile main memory.
//
// Mirrors the paper's emulator (itself based on Mnemosyne's): NVMM is backed by
// DRAM; each flushed cacheline pays a configurable extra write latency (default
// 200 ns) and consumes write bandwidth (default 1 GB/s); loads pay nothing extra.
//
// Persistence semantics: a Store() lands in the "CPU cache" (the volatile image)
// and is NOT durable until the covering cachelines are Flush()ed. When crash
// simulation is enabled, the device keeps a shadow image holding only flushed
// content; SimulateCrash() discards the volatile image so tests can observe
// exactly what a power failure would have preserved.

#ifndef SRC_NVMM_NVMM_DEVICE_H_
#define SRC_NVMM_NVMM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/constants.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/nvmm/bandwidth_limiter.h"
#include "src/nvmm/latency_model.h"
#include "src/nvmm/persist_trace.h"
#include "src/qos/qos_config.h"
#include "src/qos/qos_scheduler.h"

namespace hinfs {

// One [offset, offset+len) extent of a FlushBatch().
struct FlushRange {
  uint64_t offset = 0;
  size_t len = 0;
};

// Which cacheline-flush instruction the platform provides. The paper's
// hardware only had CLFLUSH (strictly ordered: each flush pays the full NVMM
// write latency serially) and explicitly leaves CLFLUSHOPT/CLWB unevaluated
// ("these approaches are still unavailable in existing hardware"). This
// emulator models them as an extension: optimized flushes to distinct lines
// overlap, so a multi-line Flush() pays the write latency once (the fence
// drains them in parallel) plus bandwidth for every line.
enum class FlushInstruction {
  kClflush,     // serialized per line (paper baseline)
  kClflushopt,  // unordered flushes, overlapped latency
  kClwb,        // like clflushopt but retains the line in cache (same timing here)
};

struct NvmmConfig {
  size_t size_bytes = 64ull << 20;
  LatencyMode latency_mode = LatencyMode::kSpin;
  uint64_t write_latency_ns = 200;                  // paper default
  uint64_t write_bandwidth_bytes_per_sec = 1ull << 30;  // 1 GB/s, paper default
  FlushInstruction flush_instruction = FlushInstruction::kClflush;
  bool track_persistence = false;  // enable the shadow image for crash tests
  // Multi-tenant bandwidth scheduling (src/qos/). Disabled by default
  // (qos.tenants == 0): the device then never constructs a QosScheduler and
  // bandwidth charges take the exact pre-QoS BandwidthLimiter path, byte for
  // byte — the accounting-invariance contract of DESIGN.md §3c/§9.
  qos::QosConfig qos;
};

class NvmmDevice {
 public:
  explicit NvmmDevice(const NvmmConfig& config);

  NvmmDevice(const NvmmDevice&) = delete;
  NvmmDevice& operator=(const NvmmDevice&) = delete;

  size_t size() const { return size_; }

  // Load: NVMM -> caller buffer. No extra latency (paper assumption: DRAM and
  // NVMM have the same read performance).
  Status Load(uint64_t offset, void* dst, size_t len);

  // Store: caller buffer -> NVMM volatile image (i.e., into the CPU cache).
  // Not durable until Flush() covers the written cachelines.
  Status Store(uint64_t offset, const void* src, size_t len);

  // Flush: clflush the cachelines covering [offset, offset+len). Charges one
  // NVMM write latency per line plus bandwidth, and (when tracking) copies the
  // lines into the shadow persistent image.
  Status Flush(uint64_t offset, size_t len);

  // FlushBatch: flush several extents with ONE bandwidth acquisition covering
  // their total line count. Everything else — per-line (clflush) or per-range
  // (clflushopt/clwb) latency charges, shadow-image copies, traffic counters,
  // and persist-trace events — is identical to issuing Flush() once per range,
  // so simulated-time results and persist traces cannot change; only the
  // number of trips through the BandwidthLimiter does. Ranges need not be
  // sorted or disjoint (a line covered twice is charged twice, as two Flush
  // calls would). Fails without side effects if any range is out of bounds.
  Status FlushBatch(const FlushRange* ranges, size_t count);

  // Fence: store barrier (mfence). A timing no-op in this emulator; flushes take
  // effect at Flush() time. Kept in the API so call sites express the same
  // ordering discipline as the kernel code.
  void Fence();

  // StorePersistent = Store + Flush + Fence: the movnt/nocache-style path that
  // PMFS uses for data copies (copy_from_user_inatomic_nocache).
  Status StorePersistent(uint64_t offset, const void* src, size_t len);

  // 8-byte-atomic variants of Load/Store for metadata that PMFS updates in
  // place and reads concurrently (inode size/mtime/radix fields). On real
  // hardware an aligned 8-byte store is atomic and concurrent readers see
  // old-or-new, never a torn word; these calls model that with word-wise
  // std::atomic_ref accesses so the protocol is expressible in the C++ memory
  // model (and checkable under TSan) instead of being a formal data race.
  // offset and len must be multiples of 8. Individual words are torn-free; the
  // range as a whole is NOT a snapshot — exactly the NVMM guarantee.
  Status LoadAtomic(uint64_t offset, void* dst, size_t len);
  Status StoreAtomic(uint64_t offset, const void* src, size_t len);
  // StoreAtomic + Flush + Fence.
  Status StoreAtomicPersistent(uint64_t offset, const void* src, size_t len);

  // Direct pointer into the volatile image, for DAX-style mmap access. Callers
  // using this path are responsible for their own Flush() calls.
  Result<uint8_t*> DirectPointer(uint64_t offset, size_t len);

  // Crash simulation: discard all unflushed stores (destructive; thin wrapper
  // around CloneCrashImage + InstallImage). Only valid when track_persistence
  // was enabled.
  Status SimulateCrash();

  // Non-destructive crash-state capture: returns a copy of the persistent
  // (shadow) image — what a power failure at this instant would preserve —
  // without disturbing the running device. Only valid with track_persistence.
  Result<std::vector<uint8_t>> CloneCrashImage() const;

  // Copy of the volatile image (the device state including unflushed stores);
  // crashlab uses it as the trace-start snapshot.
  Result<std::vector<uint8_t>> CloneVolatileImage() const;

  // Overwrite the device (volatile image, and shadow when tracking) with a
  // previously captured image, e.g. one materialized by crashlab's generator.
  // The device behaves as if freshly power-cycled with that NVMM content.
  Status InstallImage(const void* image, size_t len);

  // Persist-order tracing (crashlab layer 1). StartPersistTrace snapshots the
  // device images and begins recording Store/StoreAtomic/Flush/Fence events;
  // StopPersistTrace detaches and returns the trace. The device must be
  // externally quiesced around both calls (no in-flight operations).
  void StartPersistTrace();
  std::shared_ptr<PersistTrace> StopPersistTrace();
  // The active trace (null when not tracing); harnesses sample its size()
  // between workload operations to mark op boundaries.
  std::shared_ptr<PersistTrace> persist_trace() const { return trace(); }

  // Emulation knobs (swept by Fig. 11 benches).
  LatencyModel& latency() { return latency_; }
  BandwidthLimiter& bandwidth() { return bandwidth_; }

  // The tenant scheduler when QoS is enabled; null otherwise. Bandwidth knob
  // sweeps still go through bandwidth().set_bytes_per_sec — the scheduler
  // reads the rate per charge.
  qos::QosScheduler* qos() { return qos_.get(); }

  // Cumulative traffic counters (Fig. 9's "NVMM write size" series).
  uint64_t flushed_bytes() const { return flushed_bytes_.load(std::memory_order_relaxed); }
  uint64_t loaded_bytes() const { return loaded_bytes_.load(std::memory_order_relaxed); }

  // Persist-ordering counters, always on (independent of tracing): how many
  // fences the workload issued, how many cachelines it flushed, how many
  // fence-delimited epochs contained at least one flush, and the largest
  // number of lines ever flushed within one epoch (i.e., the most data whose
  // persistence was riding on a single fence). `unfenced_lines` counts flush
  // events since the last fence without deduplicating repeated lines — an
  // upper bound, precise enough for the max to be meaningful.
  uint64_t fence_count() const { return fence_count_.load(std::memory_order_relaxed); }
  uint64_t flushed_lines() const { return flushed_lines_.load(std::memory_order_relaxed); }
  uint64_t epoch_count() const { return epoch_count_.load(std::memory_order_relaxed); }
  uint64_t max_unfenced_lines() const {
    return max_unfenced_lines_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

 private:
  Status CheckRange(uint64_t offset, size_t len) const;
  std::shared_ptr<PersistTrace> trace() const {
    return trace_.load(std::memory_order_acquire);
  }

  size_t size_;
  FlushInstruction flush_instruction_;
  LatencyModel latency_;
  BandwidthLimiter bandwidth_;
  std::unique_ptr<qos::QosScheduler> qos_;  // null unless config.qos.enabled()
  std::unique_ptr<uint8_t[]> volatile_image_;
  std::unique_ptr<uint8_t[]> shadow_image_;  // null unless track_persistence
  std::atomic<std::shared_ptr<PersistTrace>> trace_;  // null unless tracing
  std::atomic<uint64_t> flushed_bytes_{0};
  std::atomic<uint64_t> loaded_bytes_{0};
  std::atomic<uint64_t> fence_count_{0};
  std::atomic<uint64_t> flushed_lines_{0};
  std::atomic<uint64_t> epoch_count_{0};
  std::atomic<uint64_t> unfenced_lines_{0};
  std::atomic<uint64_t> max_unfenced_lines_{0};
};

}  // namespace hinfs

#endif  // SRC_NVMM_NVMM_DEVICE_H_
