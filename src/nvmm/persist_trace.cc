#include "src/nvmm/persist_trace.h"

#include <algorithm>
#include <cstring>

namespace hinfs {

uint32_t PersistTrace::ThreadIndexLocked() {
  const auto id = std::this_thread::get_id();
  auto it = thread_ids_.find(id);
  if (it == thread_ids_.end()) {
    it = thread_ids_.emplace(id, static_cast<uint32_t>(thread_ids_.size())).first;
  }
  return it->second;
}

void PersistTrace::RecordStore(PersistEventType type, uint64_t offset, uint64_t len,
                               const void* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  PersistEvent e;
  e.type = type;
  e.thread = ThreadIndexLocked();
  e.offset = offset;
  e.len = len;
  e.epoch = fences_;
  e.payload_off = payload_.size();
  const auto* bytes = static_cast<const uint8_t*>(payload);
  payload_.insert(payload_.end(), bytes, bytes + len);
  events_.push_back(e);
}

void PersistTrace::RecordFlush(uint64_t offset, uint64_t len, uint64_t nlines) {
  std::lock_guard<std::mutex> lock(mu_);
  PersistEvent e;
  e.type = PersistEventType::kFlush;
  e.thread = ThreadIndexLocked();
  e.offset = offset;
  e.len = len;
  e.epoch = fences_;
  events_.push_back(e);
  flush_events_++;
  flushed_lines_ += nlines;
  epoch_lines_ += nlines;
  max_unfenced_lines_ = std::max(max_unfenced_lines_, epoch_lines_);
}

void PersistTrace::RecordFence() {
  std::lock_guard<std::mutex> lock(mu_);
  PersistEvent e;
  e.type = PersistEventType::kFence;
  e.thread = ThreadIndexLocked();
  e.epoch = fences_;
  events_.push_back(e);
  fences_++;
  if (epoch_lines_ > 0) {
    epochs_++;
  }
  epoch_lines_ = 0;
}

}  // namespace hinfs
