// Minimal leveled logging. Off by default; enabled via HinfsSetLogLevel or the
// HINFS_LOG environment variable (0=off, 1=error, 2=info, 3=debug).

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>

namespace hinfs {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
bool LogEnabled(LogLevel level);
}  // namespace internal

#define HINFS_LOG(level, fmt, ...)                                              \
  do {                                                                          \
    if (::hinfs::internal::LogEnabled(level)) {                                 \
      std::fprintf(stderr, "[hinfs] " fmt "\n", ##__VA_ARGS__);                 \
    }                                                                           \
  } while (0)

#define HINFS_LOG_ERROR(fmt, ...) HINFS_LOG(::hinfs::LogLevel::kError, "E " fmt, ##__VA_ARGS__)
#define HINFS_LOG_INFO(fmt, ...) HINFS_LOG(::hinfs::LogLevel::kInfo, "I " fmt, ##__VA_ARGS__)
#define HINFS_LOG_DEBUG(fmt, ...) HINFS_LOG(::hinfs::LogLevel::kDebug, "D " fmt, ##__VA_ARGS__)

}  // namespace hinfs

#endif  // SRC_COMMON_LOGGING_H_
