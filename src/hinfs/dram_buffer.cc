#include "src/hinfs/dram_buffer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/clock.h"
#include "src/hinfs/cacheline_bitmap.h"

namespace hinfs {

DramBufferManager::DramBufferManager(NvmmDevice* nvmm, const HinfsOptions& options,
                                     EnsureBlockFn ensure_block)
    : nvmm_(nvmm),
      options_(options),
      ensure_block_(std::move(ensure_block)),
      capacity_blocks_(std::max<size_t>(options.buffer_bytes / kBlockSize, 4)),
      pool_(new uint8_t[capacity_blocks_ * kBlockSize]) {
  low_blocks_ = std::max<size_t>(1, static_cast<size_t>(capacity_blocks_ * options.low_watermark));
  high_blocks_ =
      std::max<size_t>(2, static_cast<size_t>(capacity_blocks_ * options.high_watermark));
  free_frames_.reserve(capacity_blocks_);
  for (size_t i = 0; i < capacity_blocks_; i++) {
    free_frames_.push_back(static_cast<uint32_t>(capacity_blocks_ - 1 - i));
  }
}

DramBufferManager::~DramBufferManager() { StopBackgroundWriteback(); }

void DramBufferManager::StartBackgroundWriteback() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!threads_.empty()) {
    return;
  }
  stop_ = false;
  for (int i = 0; i < options_.writeback_threads; i++) {
    threads_.emplace_back([this] { WritebackThread(); });
  }
}

void DramBufferManager::StopBackgroundWriteback() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wb_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
}

size_t DramBufferManager::free_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_frames_.size();
}

// --- residency lists --------------------------------------------------------------

void DramBufferManager::ListUnlink(EntryList& list, Entry* e) {
  e->lrw_prev->lrw_next = e->lrw_next;
  e->lrw_next->lrw_prev = e->lrw_prev;
  e->lrw_prev = e->lrw_next = nullptr;
  list.size--;
}

void DramBufferManager::ListPushMru(EntryList& list, Entry* e) {
  // Tail of the list (head.prev) is the most-recently-written position.
  e->lrw_prev = list.head.lrw_prev;
  e->lrw_next = &list.head;
  list.head.lrw_prev->lrw_next = e;
  list.head.lrw_prev = e;
  list.size++;
}

// --- replacement policy hooks ------------------------------------------------------

void DramBufferManager::GhostTrimLocked(std::list<uint64_t>& fifo,
                                        std::unordered_set<uint64_t>& set, size_t limit) {
  while (fifo.size() > limit) {
    set.erase(fifo.front());
    fifo.pop_front();
  }
}

void DramBufferManager::OnInsertLocked(Entry* e) {
  e->freq = 1;
  const uint64_t key = GhostKey(*e);
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kArc:
      // ARC: a ghost hit means this block was recently evicted; adapt p and
      // admit straight into the frequent list.
      if (b1_.erase(key) > 0) {
        const size_t delta =
            std::max<size_t>(1, b2_.size() / std::max<size_t>(b1_.size(), 1));
        arc_p_ = std::min(capacity_blocks_, arc_p_ + delta);
        e->arc_list = 2;
        ListPushMru(t2_, e);
        return;
      }
      if (b2_.erase(key) > 0) {
        const size_t delta =
            std::max<size_t>(1, b1_.size() / std::max<size_t>(b2_.size(), 1));
        arc_p_ = arc_p_ > delta ? arc_p_ - delta : 0;
        e->arc_list = 2;
        ListPushMru(t2_, e);
        return;
      }
      break;
    case HinfsOptions::Replacement::kTwoQ:
      // 2Q: a block seen in the A1out ghost queue is hot — admit into Am (t2_).
      if (b1_.erase(key) > 0) {
        e->arc_list = 2;
        ListPushMru(t2_, e);
        return;
      }
      break;
    default:
      break;
  }
  e->arc_list = 1;
  ListPushMru(t1_, e);
}

void DramBufferManager::OnWriteHitLocked(Entry* e) {
  e->freq++;
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
      ListUnlink(t1_, e);
      ListPushMru(t1_, e);
      break;
    case HinfsOptions::Replacement::kFifo:
    case HinfsOptions::Replacement::kLfu:
      break;  // FIFO: position fixed; LFU: the freq bump is the update
    case HinfsOptions::Replacement::kArc:
      // A re-reference promotes to (or refreshes within) T2.
      if (e->arc_list == 1) {
        ListUnlink(t1_, e);
        e->arc_list = 2;
      } else {
        ListUnlink(t2_, e);
      }
      ListPushMru(t2_, e);
      break;
    case HinfsOptions::Replacement::kTwoQ:
      // 2Q: re-references inside the probationary A1in queue do NOT promote
      // (that is the point of A1in: correlated re-writes stay probationary);
      // re-references in Am refresh its LRU position.
      if (e->arc_list == 2) {
        ListUnlink(t2_, e);
        ListPushMru(t2_, e);
      }
      break;
  }
}

void DramBufferManager::GhostRecordLocked(Entry* e) {
  const uint64_t key = GhostKey(*e);
  if (options_.replacement == HinfsOptions::Replacement::kArc) {
    if (e->arc_list == 1) {
      if (b1_.insert(key).second) {
        b1_fifo_.push_back(key);
      }
    } else {
      if (b2_.insert(key).second) {
        b2_fifo_.push_back(key);
      }
    }
    GhostTrimLocked(b1_fifo_, b1_, capacity_blocks_);
    GhostTrimLocked(b2_fifo_, b2_, capacity_blocks_);
    return;
  }
  if (options_.replacement == HinfsOptions::Replacement::kTwoQ && e->arc_list == 1) {
    // Only A1in victims enter the A1out ghost queue (Kout = capacity / 2).
    if (b1_.insert(key).second) {
      b1_fifo_.push_back(key);
    }
    GhostTrimLocked(b1_fifo_, b1_, std::max<size_t>(1, capacity_blocks_ / 2));
  }
}

std::vector<DramBufferManager::Entry*> DramBufferManager::PickVictimsLocked(size_t want) {
  std::vector<Entry*> victims;
  if (want == 0) {
    return victims;
  }
  auto take_from = [&](EntryList& list) {
    for (Entry* e = list.head.lrw_next; e != &list.head && victims.size() < want;
         e = e->lrw_next) {
      if (!e->writing) {
        e->writing = true;
        GhostRecordLocked(e);
        victims.push_back(e);
      }
    }
  };

  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
    case HinfsOptions::Replacement::kFifo:
      take_from(t1_);
      break;
    case HinfsOptions::Replacement::kLfu: {
      // Least-frequently-written first; ties broken by write recency.
      std::vector<Entry*> candidates;
      for (Entry* e = t1_.head.lrw_next; e != &t1_.head; e = e->lrw_next) {
        if (!e->writing) {
          candidates.push_back(e);
        }
      }
      const size_t n = std::min(want, candidates.size());
      std::partial_sort(candidates.begin(), candidates.begin() + n, candidates.end(),
                        [](const Entry* a, const Entry* b) {
                          if (a->freq != b->freq) {
                            return a->freq < b->freq;
                          }
                          return a->last_written_ns < b->last_written_ns;
                        });
      for (size_t i = 0; i < n; i++) {
        candidates[i]->writing = true;
        victims.push_back(candidates[i]);
      }
      break;
    }
    case HinfsOptions::Replacement::kTwoQ: {
      // 2Q: evict from the probationary A1in while it exceeds its share
      // (Kin = 25 % of the cache), recording victims in the A1out ghost
      // queue; otherwise evict the LRU of Am.
      const size_t kin = std::max<size_t>(1, capacity_blocks_ / 4);
      while (victims.size() < want) {
        const size_t before = victims.size();
        if (t1_.size > kin || t2_.size == 0) {
          take_from(t1_);
          if (victims.size() == before) {
            take_from(t2_);
          }
        } else {
          take_from(t2_);
          if (victims.size() == before) {
            take_from(t1_);
          }
        }
        if (victims.size() == before) {
          break;
        }
      }
      break;
    }
    case HinfsOptions::Replacement::kArc: {
      // REPLACE: shrink T1 while it exceeds the adaptive target p, else T2.
      while (victims.size() < want) {
        const size_t before = victims.size();
        if (t1_.size > arc_p_ && t1_.size > 0) {
          take_from(t1_);
          if (victims.size() == before) {
            take_from(t2_);
          }
        } else {
          take_from(t2_);
          if (victims.size() == before) {
            take_from(t1_);
          }
        }
        if (victims.size() == before) {
          break;  // everything evictable is already in flight
        }
        // take_from may overshoot the per-iteration intent; the loop exits via
        // the want bound either way.
      }
      break;
    }
  }
  return victims;
}

// --- index ----------------------------------------------------------------------

DramBufferManager::Entry* DramBufferManager::FindLocked(uint64_t ino, uint64_t file_block) {
  auto it = index_.find(ino);
  if (it == index_.end()) {
    return nullptr;
  }
  Entry** slot = it->second->Find(file_block);
  return slot == nullptr ? nullptr : *slot;
}

Result<DramBufferManager::Entry*> DramBufferManager::CreateLocked(
    std::unique_lock<std::mutex>& lock, uint64_t ino, uint64_t file_block, uint64_t nvmm_addr) {
  while (free_frames_.empty()) {
    stalls_++;
    wb_cv_.notify_all();
    if (threads_.empty()) {
      // No background engine (unit tests, or stopped during unmount): reclaim
      // one victim inline.
      std::vector<Entry*> victims = PickVictimsLocked(1);
      if (victims.empty()) {
        return Status(ErrorCode::kNoMemory, "buffer exhausted with all frames in flight");
      }
      lock.unlock();
      HINFS_RETURN_IF_ERROR(FlushEntries(std::move(victims)));
      lock.lock();
      continue;
    }
    free_cv_.wait(lock, [this] { return !free_frames_.empty() || stop_; });
    if (stop_ && free_frames_.empty()) {
      return Status(ErrorCode::kBusy, "buffer shutting down");
    }
  }

  auto* e = new Entry();
  e->ino = ino;
  e->file_block = file_block;
  e->nvmm_addr = nvmm_addr;
  e->dram_index = free_frames_.back();
  free_frames_.pop_back();
  resident_++;
  if (nvmm_addr == kNoNvmmAddr) {
    // A block with no NVMM backing is a hole: its correct content is zeros, so
    // the whole frame is valid from the start.
    std::memset(DataFor(*e), 0, kBlockSize);
    e->valid = ~0ull;
  }
  auto it = index_.find(ino);
  if (it == index_.end()) {
    it = index_.emplace(ino, std::make_unique<BTreeMap<Entry*>>()).first;
  }
  it->second->Insert(file_block, e);
  OnInsertLocked(e);
  return e;
}

void DramBufferManager::DetachLocked(Entry* e) {
  auto it = index_.find(e->ino);
  if (it != index_.end()) {
    it->second->Erase(e->file_block);
    if (it->second->empty()) {
      index_.erase(it);
    }
  }
  ListUnlink(e->arc_list == 2 ? t2_ : t1_, e);
  free_frames_.push_back(e->dram_index);
  resident_--;
  delete e;
}

// --- data paths -----------------------------------------------------------------

Result<uint32_t> DramBufferManager::Write(uint64_t ino, uint64_t file_block, size_t offset,
                                          const void* src, size_t len, uint64_t nvmm_addr) {
  if (offset + len > kBlockSize || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "buffered write crosses block");
  }
  std::unique_lock<std::mutex> lock(mu_);

  Entry* e;
  while (true) {
    e = FindLocked(ino, file_block);
    if (e == nullptr) {
      misses_++;
      HINFS_ASSIGN_OR_RETURN(e, CreateLocked(lock, ino, file_block, nvmm_addr));
      break;
    }
    if (!e->writing) {
      hits_++;
      OnWriteHitLocked(e);
      break;
    }
    // The block is mid-writeback: wait for the flush to retire it, then buffer
    // the write in a fresh frame.
    write_done_cv_.wait(lock);
  }
  if (e->nvmm_addr == kNoNvmmAddr && nvmm_addr != kNoNvmmAddr) {
    e->nvmm_addr = nvmm_addr;
  }

  const uint64_t touch = LineMaskFor(offset, len);
  if (options_.clfw) {
    // CLFW: fetch only the partially-overwritten lines that are not yet valid.
    const uint64_t partial = touch & ~FullLineMaskFor(offset, len);
    uint64_t need_fetch = partial & ~e->valid;
    LineRun run;
    size_t from = 0;
    while (NextRun(need_fetch, from, &run)) {
      uint8_t* dst = DataFor(*e) + run.first_line * kCachelineSize;
      if (e->nvmm_addr != kNoNvmmAddr) {
        HINFS_RETURN_IF_ERROR(nvmm_->Load(e->nvmm_addr + run.first_line * kCachelineSize, dst,
                                          run.count * kCachelineSize));
      } else {
        std::memset(dst, 0, run.count * kCachelineSize);
      }
      fetched_lines_ += run.count;
      from = run.first_line + run.count;
    }
    e->valid |= touch;
    e->dirty |= touch;
  } else {
    // HiNFS-NCLFW: whole-block fetch-before-write and whole-block writeback.
    if (e->valid != ~0ull) {
      if (e->nvmm_addr != kNoNvmmAddr) {
        HINFS_RETURN_IF_ERROR(nvmm_->Load(e->nvmm_addr, DataFor(*e), kBlockSize));
      } else {
        std::memset(DataFor(*e), 0, kBlockSize);
      }
      fetched_lines_ += kLinesPerBlock;
      e->valid = ~0ull;
    }
    e->dirty = ~0ull;
  }

  std::memcpy(DataFor(*e) + offset, src, len);
  e->last_written_ns = MonotonicNowNs();
  return static_cast<uint32_t>(CountLines(touch));
}

Result<bool> DramBufferManager::Read(uint64_t ino, uint64_t file_block, size_t offset, void* dst,
                                     size_t len, uint64_t nvmm_addr) {
  if (offset + len > kBlockSize) {
    return Status(ErrorCode::kInvalidArgument, "buffered read crosses block");
  }
  std::unique_lock<std::mutex> lock(mu_);
  Entry* e = FindLocked(ino, file_block);
  if (e == nullptr) {
    return false;
  }

  // Merge: valid lines from DRAM, the rest from NVMM (or zeros for holes), one
  // memcpy per run of identically-sourced lines.
  auto* out = static_cast<uint8_t*>(dst);
  size_t cur = offset;
  const size_t end = offset + len;
  while (cur < end) {
    const size_t line = cur / kCachelineSize;
    const bool in_dram = (e->valid >> line) & 1;
    size_t run_end_line = line;
    while (run_end_line + 1 < kLinesPerBlock &&
           run_end_line + 1 <= (end - 1) / kCachelineSize &&
           (((e->valid >> (run_end_line + 1)) & 1) != 0) == in_dram) {
      run_end_line++;
    }
    const size_t run_end = std::min(end, (run_end_line + 1) * kCachelineSize);
    const size_t chunk = run_end - cur;
    if (in_dram) {
      std::memcpy(out, DataFor(*e) + cur, chunk);
    } else if (e->nvmm_addr != kNoNvmmAddr) {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(e->nvmm_addr + cur, out, chunk));
    } else if (nvmm_addr != kNoNvmmAddr) {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(nvmm_addr + cur, out, chunk));
    } else {
      std::memset(out, 0, chunk);
    }
    out += chunk;
    cur = run_end;
  }
  return true;
}

bool DramBufferManager::Contains(uint64_t ino, uint64_t file_block) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(ino, file_block) != nullptr;
}

// --- flushing -------------------------------------------------------------------

Result<uint32_t> DramBufferManager::FlushEntryData(Entry* e) {
  uint64_t flush_mask = e->dirty;
  if (e->nvmm_addr == kNoNvmmAddr) {
    if (e->dirty == 0) {
      return 0u;  // clean hole; nothing to persist
    }
    Result<uint64_t> ensured = ensure_block_(e->ino, e->file_block);
    if (!ensured.ok()) {
      if (ensured.status().code() == ErrorCode::kNotFound) {
        // The file was unlinked while this block waited for writeback: its
        // data is dropped, exactly like any other write to a deleted file.
        return 0u;
      }
      return ensured.status();
    }
    const uint64_t addr = *ensured;
    {
      std::lock_guard<std::mutex> lock(mu_);
      e->nvmm_addr = addr;
    }
    // A freshly allocated NVMM block contains garbage: persist the full frame
    // (the non-dirty lines are the zeros this hole is defined to contain).
    flush_mask = ~0ull;
  }
  if (flush_mask == 0) {
    return 0u;
  }

  uint32_t lines = 0;
  LineRun run;
  size_t from = 0;
  while (NextRun(flush_mask, from, &run)) {
    const size_t off = run.first_line * kCachelineSize;
    const size_t bytes = run.count * kCachelineSize;
    HINFS_RETURN_IF_ERROR(nvmm_->Store(e->nvmm_addr + off, DataFor(*e) + off, bytes));
    HINFS_RETURN_IF_ERROR(nvmm_->Flush(e->nvmm_addr + off, bytes));
    lines += static_cast<uint32_t>(run.count);
    from = run.first_line + run.count;
  }
  nvmm_->Fence();
  return lines;
}

Status DramBufferManager::FlushEntries(std::vector<Entry*> victims) {
  uint64_t lines = 0;
  Status st = OkStatus();
  for (Entry* e : victims) {
    Result<uint32_t> flushed = FlushEntryData(e);
    if (!flushed.ok()) {
      st = flushed.status();
      break;
    }
    lines += *flushed;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry* e : victims) {
      DetachLocked(e);
    }
    writeback_blocks_ += victims.size();
    writeback_lines_ += lines;
  }
  free_cv_.notify_all();
  write_done_cv_.notify_all();
  return st;
}

Status DramBufferManager::FlushFile(uint64_t ino) {
  while (true) {
    std::vector<Entry*> victims;
    bool any_in_flight = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = index_.find(ino);
      if (it == index_.end()) {
        return OkStatus();
      }
      it->second->ForEach([&](uint64_t, Entry*& e) {
        if (e->writing) {
          any_in_flight = true;
        } else {
          e->writing = true;
          victims.push_back(e);
        }
        return true;
      });
      if (victims.empty() && any_in_flight) {
        write_done_cv_.wait(lock);
        continue;
      }
    }
    if (victims.empty()) {
      return OkStatus();
    }
    HINFS_RETURN_IF_ERROR(FlushEntries(std::move(victims)));
  }
}

Status DramBufferManager::FlushBlock(uint64_t ino, uint64_t file_block) {
  while (true) {
    std::vector<Entry*> victims;
    {
      std::unique_lock<std::mutex> lock(mu_);
      Entry* e = FindLocked(ino, file_block);
      if (e == nullptr) {
        return OkStatus();
      }
      if (e->writing) {
        write_done_cv_.wait(lock);
        continue;
      }
      e->writing = true;
      victims.push_back(e);
    }
    return FlushEntries(std::move(victims));
  }
}

Status DramBufferManager::FlushAll() {
  while (true) {
    std::vector<Entry*> victims;
    bool any_in_flight = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (auto& [ino, tree] : index_) {
        tree->ForEach([&](uint64_t, Entry*& e) {
          if (e->writing) {
            any_in_flight = true;
          } else {
            e->writing = true;
            victims.push_back(e);
          }
          return true;
        });
      }
      if (victims.empty() && any_in_flight) {
        write_done_cv_.wait(lock);
        continue;
      }
    }
    if (victims.empty()) {
      return OkStatus();
    }
    HINFS_RETURN_IF_ERROR(FlushEntries(std::move(victims)));
  }
}

Status DramBufferManager::DiscardFile(uint64_t ino, uint64_t from_block) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = index_.find(ino);
    if (it == index_.end()) {
      return OkStatus();
    }
    std::vector<Entry*> drop;
    bool any_in_flight = false;
    it->second->ForEach([&](uint64_t block, Entry*& e) {
      if (block < from_block) {
        return true;
      }
      if (e->writing) {
        any_in_flight = true;
      } else {
        drop.push_back(e);
      }
      return true;
    });
    for (Entry* e : drop) {
      DetachLocked(e);  // writes to deleted files are simply dropped
    }
    if (!drop.empty()) {
      free_cv_.notify_all();
    }
    if (!any_in_flight) {
      return OkStatus();
    }
    write_done_cv_.wait(lock);
  }
}

// --- background engine -------------------------------------------------------------

void DramBufferManager::WritebackThread() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    wb_cv_.wait_for(lock, std::chrono::milliseconds(options_.writeback_period_ms), [this] {
      return stop_ || free_frames_.size() < low_blocks_;
    });
    if (stop_) {
      break;
    }

    // Phase 1: reclaim in policy order until free > High_f.
    std::vector<Entry*> victims;
    if (free_frames_.size() < high_blocks_) {
      victims = PickVictimsLocked(high_blocks_ - free_frames_.size());
    }

    // Phase 2: write back blocks that have been dirty for longer than the
    // staleness bound (paper: 30 s).
    const uint64_t now = MonotonicNowNs();
    const uint64_t stale_ns = options_.staleness_ms * 1'000'000ull;
    for (EntryList* list : {&t1_, &t2_}) {
      for (Entry* e = list->head.lrw_next; e != &list->head; e = e->lrw_next) {
        if (!e->writing && now - e->last_written_ns > stale_ns) {
          e->writing = true;
          GhostRecordLocked(e);
          victims.push_back(e);
        }
      }
    }

    if (victims.empty()) {
      continue;
    }
    lock.unlock();
    (void)FlushEntries(std::move(victims));
    lock.lock();
  }
}

}  // namespace hinfs
