// Fig. 14 (extension): multi-tenant interference on the shared NVMM write
// bandwidth, with and without the QoS scheduler (src/qos/).
//
// A "reader" tenant issues small operations — a 4 KB load plus a 256 B
// durable append (the metadata/log write that accompanies reads in any real
// workload) — while a "bulk" tenant saturates the device with 1 MB coalesced
// flushes, the shape HiNFS writeback and WAL group commit emit after extent
// merging. Loads themselves are free in the emulator (paper assumption:
// NVMM read ~ DRAM), so the interference channel is the durable-write
// bandwidth arbiter: under FCFS (BandwidthLimiter) the reader's 256 B charge
// queues behind the entire bulk backlog (~bulk_threads x 1 ms); under QoS the
// reader's own token bucket is always conformant and it is admitted
// immediately, independent of the bulk tenant's backlog.
//
// Measured directly against NvmmDevice: the scheduler arbitrates at the
// FlushBatch charge point, so this is the layer where isolation either holds
// or does not. The wire path (hinfsd hello handshake -> per-session tenant)
// is covered by fsload --tenant and the server tests.

#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/nvmm/nvmm_device.h"
#include "src/qos/tenant.h"
#include "src/workloads/workload.h"

using namespace hinfs;

namespace {

constexpr uint64_t kReaderLoadBytes = 4096;
constexpr uint64_t kReaderAppendBytes = 256;
constexpr uint64_t kBulkIoBytes = 1 << 20;
constexpr qos::TenantId kReaderTenant = 0;
constexpr qos::TenantId kBulkTenant = 1;
constexpr int kReaderThreads = 2;
// Readers model an interactive tenant: paced, not closed-loop, so their
// latency is queueing delay at the arbiter rather than self-congestion.
constexpr uint64_t kReaderThinkUs = 200;
// The modeled bandwidth is scaled down from the paper's 1 GB/s so the bulk
// tenant saturates the *modeled* device even on a small (single-core) CI
// host — interference lives in the arbiter's queue, which only forms at
// saturation. The FCFS/QoS comparison is bandwidth-scale-invariant.
constexpr uint64_t kBenchBandwidth = 128ull << 20;

}  // namespace

// Runs one phase: kReaderThreads reader threads + `bulk_threads` bulk threads
// against a fresh device. `qos_on` selects FCFS (tenants=0) vs the two-tenant
// scheduler. Returns false on device errors.
static bool RunPhase(int bulk_threads, bool qos_on, uint64_t duration_ms,
                     Histogram* reader_lat, uint64_t* bulk_bytes,
                     uint64_t* aggregate_bytes, double* seconds,
                     std::vector<BenchJsonRow>* qos_stat_rows) {
  NvmmConfig cfg;
  cfg.size_bytes = 64ull << 20;
  cfg.latency_mode = LatencyMode::kSpin;
  cfg.write_latency_ns = 200;
  cfg.write_bandwidth_bytes_per_sec = kBenchBandwidth;
  // CLFLUSHOPT: the per-line 200 ns delays overlap, so bandwidth (not serial
  // flush latency) is the contended resource — the regime the scheduler
  // arbitrates.
  cfg.flush_instruction = FlushInstruction::kClflushopt;
  if (qos_on) {
    cfg.qos = qos::QosConfig::FromEnv(cfg.qos);  // honor HINFS_QOS_* overrides
    if (!cfg.qos.enabled()) {
      cfg.qos.tenants = 2;  // reader + bulk, default equal weights
    }
  } else {
    cfg.qos = qos::QosConfig();  // force FCFS even if HINFS_QOS_TENANTS is set
  }
  NvmmDevice dev(cfg);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  ConcurrentHistogram lat;
  std::atomic<uint64_t> bulk_flushed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaderThreads; t++) {
    threads.emplace_back([&, t] {
      qos::ScopedQosContext ctx(kReaderTenant, qos::TrafficClass::kForeground);
      std::vector<uint8_t> buf(kReaderLoadBytes);
      FillPattern(buf, 1000 + t);
      // Each reader owns a 1 MB slice at the front of the device.
      const uint64_t base = static_cast<uint64_t>(t) << 20;
      uint64_t off = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t t0 = MonotonicNowNs();
        if (!dev.Load(base + off, buf.data(), kReaderLoadBytes).ok() ||
            !dev.StorePersistent(base + off, buf.data(), kReaderAppendBytes).ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        lat.Record(MonotonicNowNs() - t0);
        off = (off + kReaderLoadBytes) % (1 << 20);
        std::this_thread::sleep_for(std::chrono::microseconds(kReaderThinkUs));
      }
    });
  }
  for (int t = 0; t < bulk_threads; t++) {
    threads.emplace_back([&, t] {
      qos::ScopedQosContext ctx(kBulkTenant, qos::TrafficClass::kForeground);
      std::vector<uint8_t> buf(kBulkIoBytes);
      FillPattern(buf, 2000 + t);
      // Bulk slices start past the reader region: 4 MB per thread.
      const uint64_t base = (4ull + 4ull * static_cast<uint64_t>(t)) << 20;
      uint64_t off = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!dev.Store(base + off, buf.data(), kBulkIoBytes).ok() ||
            !dev.Flush(base + off, kBulkIoBytes).ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        dev.Fence();
        bulk_flushed.fetch_add(kBulkIoBytes, std::memory_order_relaxed);
        off = (off + kBulkIoBytes) % (4 << 20);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) {
    th.join();
  }
  *seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  *reader_lat = lat.Snapshot();
  *bulk_bytes = bulk_flushed.load(std::memory_order_relaxed);
  *aggregate_bytes = dev.flushed_bytes();

  // Per-tenant scheduler accounting into the JSON rows (QoS phases only).
  if (qos_on && dev.qos() != nullptr && qos_stat_rows != nullptr) {
    const auto snap = dev.qos()->TakeSnapshot(cfg.write_bandwidth_bytes_per_sec);
    for (const auto& b : snap.tenants) {
      BenchJsonRow charged{"qos", "interference", "bulk_threads",
                           static_cast<double>(bulk_threads),
                           static_cast<double>(b.charged_bytes), "charged_bytes"};
      charged.tenant = static_cast<int>(b.id);
      qos_stat_rows->push_back(charged);
      BenchJsonRow waits{"qos", "interference", "bulk_threads",
                         static_cast<double>(bulk_threads),
                         static_cast<double>(b.throttle_waits), "throttle_waits"};
      waits.tenant = static_cast<int>(b.id);
      qos_stat_rows->push_back(waits);
      BenchJsonRow deficit{"qos", "interference", "bulk_threads",
                           static_cast<double>(bulk_threads),
                           static_cast<double>(b.deficit_bytes), "deficit_bytes"};
      deficit.tenant = static_cast<int>(b.id);
      qos_stat_rows->push_back(deficit);
    }
  }
  return !failed.load(std::memory_order_relaxed);
}

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 14",
                   "reader tail latency under bulk-writer interference, FCFS vs QoS");
  std::vector<BenchJsonRow> rows;
  std::vector<BenchJsonRow> qos_stat_rows;

  std::printf("%d paced reader threads (4 KB load + 256 B durable append per op, "
              "tenant 0)\nbulk tenant (tenant 1): 1 MB coalesced flushes per op\n"
              "modeled bandwidth scaled to %llu MB/s so one core saturates the "
              "device\n\n",
              kReaderThreads,
              static_cast<unsigned long long>(kBenchBandwidth >> 20));
  std::printf("%-12s %-6s %14s %14s %12s %12s\n", "mode", "bulk", "reader p50(us)",
              "reader p99(us)", "bulk MB/s", "total MB/s");

  for (int bulk_threads : {1, 4, 8}) {
    if (bulk_threads > BenchMaxThreads()) {
      continue;
    }
    double p99[2] = {0, 0};
    double agg[2] = {0, 0};
    for (int phase = 0; phase < 2; phase++) {
      const bool qos_on = phase == 1;
      Histogram reader_lat;
      uint64_t bulk_bytes = 0, aggregate_bytes = 0;
      double seconds = 0;
      if (!RunPhase(bulk_threads, qos_on, BenchDurationMs(), &reader_lat, &bulk_bytes,
                    &aggregate_bytes, &seconds, &qos_stat_rows)) {
        std::fprintf(stderr, "device error during %s phase\n", qos_on ? "qos" : "fcfs");
        return 1;
      }
      const char* mode = qos_on ? "qos" : "fcfs";
      const double p50_ns = reader_lat.Percentile(0.50);
      const double p99_ns = reader_lat.Percentile(0.99);
      const double bulk_mbps = bulk_bytes / seconds / (1 << 20);
      const double agg_mbps = aggregate_bytes / seconds / (1 << 20);
      p99[phase] = p99_ns;
      agg[phase] = agg_mbps;
      std::printf("%-12s %-6d %14.1f %14.1f %12.1f %12.1f\n", mode, bulk_threads,
                  p50_ns / 1000.0, p99_ns / 1000.0, bulk_mbps, agg_mbps);
      std::fflush(stdout);

      BenchJsonRow p50_row{mode, "interference", "bulk_threads",
                           static_cast<double>(bulk_threads), p50_ns, "reader_p50_ns"};
      p50_row.tenant = kReaderTenant;
      rows.push_back(p50_row);
      BenchJsonRow p99_row{mode, "interference", "bulk_threads",
                           static_cast<double>(bulk_threads), p99_ns, "reader_p99_ns"};
      p99_row.tenant = kReaderTenant;
      rows.push_back(p99_row);
      BenchJsonRow bulk_row{mode, "interference", "bulk_threads",
                            static_cast<double>(bulk_threads), bulk_mbps,
                            "bulk_mb_per_sec"};
      bulk_row.tenant = kBulkTenant;
      rows.push_back(bulk_row);
      rows.push_back({mode, "interference", "bulk_threads",
                      static_cast<double>(bulk_threads), agg_mbps,
                      "aggregate_mb_per_sec"});
    }
    if (p99[1] > 0) {
      std::printf("  -> p99 improvement %.1fx, aggregate %.1f%% of FCFS\n",
                  p99[0] / p99[1], agg[0] > 0 ? 100.0 * agg[1] / agg[0] : 0.0);
    }
  }

  for (BenchJsonRow& r : qos_stat_rows) {
    rows.push_back(r);
  }
  std::printf("\nexpected shape: QoS cuts reader p99 by >=3x (small requests admit\n"
              "against their own bucket) while total throughput stays within 10%%\n"
              "(work-conserving borrow keeps the bulk tenant at device bandwidth)\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
