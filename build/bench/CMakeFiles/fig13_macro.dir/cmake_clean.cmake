file(REMOVE_RECURSE
  "CMakeFiles/fig13_macro.dir/fig13_macro.cc.o"
  "CMakeFiles/fig13_macro.dir/fig13_macro.cc.o.d"
  "fig13_macro"
  "fig13_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
