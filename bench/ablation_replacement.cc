// Ablation: LRW vs FIFO buffer replacement. The paper argues LRW captures the
// write locality of file system workloads; FIFO evicts hot blocks and loses
// coalescing.

#include "bench/bench_common.h"
#include "src/hinfs/hinfs_fs.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Ablation", "buffer replacement policy: LRW (paper) vs FIFO");
  std::vector<BenchJsonRow> rows;

  struct PolicyRow {
    HinfsOptions::Replacement policy;
    const char* name;
  };
  const PolicyRow policies[] = {{HinfsOptions::Replacement::kLrw, "LRW"},
                                {HinfsOptions::Replacement::kFifo, "FIFO"},
                                {HinfsOptions::Replacement::kLfu, "LFU"},
                                {HinfsOptions::Replacement::kArc, "ARC"},
                                {HinfsOptions::Replacement::kTwoQ, "2Q"}};

  std::printf("%-14s %-8s %12s %12s %12s\n", "workload", "policy", "ops/s", "hit-rate",
              "wb-blocks");
  // A rewrite-heavy skewed random-write load: replacement policy decides how
  // much write coalescing the buffer achieves before eviction.
  for (double theta : {0.5, 0.7}) {
    for (const PolicyRow& row : policies) {
      TestBedConfig bed_cfg = PaperBedConfig();
      bed_cfg.hinfs.buffer_bytes = 4ull << 20;  // 1/8 of the 32 MB file
      bed_cfg.hinfs.replacement = row.policy;

      auto bed = MakeTestBed(FsKind::kHinfs, bed_cfg);
      if (!bed.ok()) {
        return 1;
      }
      FioConfig cfg;
      cfg.file_bytes = 32ull << 20;
      cfg.io_size = 4096;
      cfg.write_fraction = 1.0;
      cfg.locality_theta = theta;
      cfg.duration_ms = BenchDurationMs();
      auto result = RunFioRandRw((*bed)->vfs.get(), cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", row.name, result.status().ToString().c_str());
        return 1;
      }
      auto* fs = static_cast<HinfsFs*>((*bed)->fs.get());
      const uint64_t hits = fs->buffer().buffer_hits();
      const uint64_t misses = fs->buffer().buffer_misses();
      char label[32];
      std::snprintf(label, sizeof(label), "randw-%.1f", theta);
      const double hit_pct = hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0;
      std::printf("%-14s %-8s %12.0f %11.1f%% %12llu\n", label, row.name, result->OpsPerSec(),
                  hit_pct,
                  static_cast<unsigned long long>(fs->buffer().writeback_blocks()));
      std::fflush(stdout);
      rows.push_back({row.name, label, "theta", theta, result->OpsPerSec(), "ops_per_sec"});
      rows.push_back({row.name, label, "theta", theta, hit_pct, "hit_rate_pct"});
      (void)(*bed)->vfs->Unmount();
    }
  }
  std::printf("\nexpected: recency/frequency-aware policies (LRW/LFU/ARC) beat FIFO on\n"
              "skewed workloads; the paper's LRW is competitive at far lower complexity\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
