// StatsRegistry: named counters and timers used to reproduce the paper's
// perf-based time breakdowns (Fig. 1 and Fig. 12) from inside the file systems.
//
// Every file system in this repository charges time to one of a small set of
// categories at the copy sites themselves:
//   read_access_ns  - copying data storage -> user buffer
//   write_access_ns - copying data user buffer -> storage (incl. persistence flushes)
//   fsync_ns        - time spent inside synchronization operations
//   other_ns        - everything else (lookup, allocation, index maintenance, ...)
// plus byte counters (nvmm_write_bytes etc.) used by Fig. 9.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hinfs {

class StatsRegistry {
 public:
  // Adds `delta` to counter `name`, creating it on first use. Thread-safe;
  // counter lookup is amortized by the caller caching the returned pointer.
  void Add(std::string_view name, uint64_t delta);

  // Returns a stable pointer to the counter cell for hot-path use.
  std::atomic<uint64_t>* Counter(std::string_view name);

  uint64_t Get(std::string_view name) const;
  void Reset();

  // Sorted (name, value) snapshot for reporting.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

 private:
  mutable std::mutex mu_;
  // std::map keeps pointers stable across inserts (node-based), which Counter()
  // relies on; std::less<> makes find() heterogeneous, so lookups with a
  // string_view (every call site passes a literal) never build a std::string —
  // the one allocation left is the key of a first-use insert.
  std::map<std::string, std::atomic<uint64_t>, std::less<>> counters_;
};

// RAII timer that adds elapsed wall nanoseconds to a counter cell on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::atomic<uint64_t>* cell);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::atomic<uint64_t>* cell_;
  uint64_t start_ns_;
};

// Well-known counter names shared by all file systems.
inline constexpr char kStatReadAccessNs[] = "read_access_ns";
inline constexpr char kStatWriteAccessNs[] = "write_access_ns";
inline constexpr char kStatFsyncNs[] = "fsync_ns";
inline constexpr char kStatOtherNs[] = "other_ns";
inline constexpr char kStatUnlinkNs[] = "unlink_ns";
inline constexpr char kStatNvmmWriteBytes[] = "nvmm_write_bytes";
inline constexpr char kStatNvmmReadBytes[] = "nvmm_read_bytes";
inline constexpr char kStatDramBufferHits[] = "dram_buffer_hits";
inline constexpr char kStatDramBufferMisses[] = "dram_buffer_misses";
inline constexpr char kStatWritebackBlocks[] = "writeback_blocks";
inline constexpr char kStatLockfreeReadHits[] = "lockfree_read_hits";
inline constexpr char kStatLockfreeReadFallbacks[] = "lockfree_read_fallbacks";
inline constexpr char kStatFramesStolen[] = "frames_stolen";
inline constexpr char kStatWbWorkerWakeups[] = "wb_worker_wakeups";
inline constexpr char kStatWbSpuriousWakeups[] = "wb_spurious_wakeups";
// Writeback flush coalescing: dirty line-runs staged, flush ranges actually
// issued after merging contiguous runs (wb_flush_calls <= wb_dirty_runs), and
// lines that rode along in a merged range instead of paying their own call.
inline constexpr char kStatWbDirtyRuns[] = "wb_dirty_runs";
inline constexpr char kStatWbFlushCalls[] = "wb_flush_calls";
inline constexpr char kStatWbCoalescedLines[] = "wb_coalesced_lines";
// Batched read promotions (lock-free read hits -> per-shard MPSC ring, drained
// under the shard mutex; drained <= batched) and lookup arrays freed by
// epoch-based reclamation instead of being held until shard destruction.
inline constexpr char kStatPromotionsBatched[] = "promotions_batched";
inline constexpr char kStatPromotionsDrained[] = "promotions_drained";
inline constexpr char kStatEpochRetired[] = "epoch_retired";
inline constexpr char kStatEagerWrites[] = "eager_writes";
inline constexpr char kStatLazyWrites[] = "lazy_writes";
inline constexpr char kStatFsyncBytes[] = "fsync_bytes";
inline constexpr char kStatWrittenBytes[] = "written_bytes";
// Persist-order counters mirrored from NvmmDevice at unmount: fence count,
// cachelines flushed, fence-delimited epochs that flushed data, and the peak
// number of flushed-but-unfenced lines (exposure window under clflushopt).
inline constexpr char kStatNvmmFences[] = "nvmm_fences";
inline constexpr char kStatNvmmFlushedLines[] = "nvmm_flushed_lines";
inline constexpr char kStatNvmmEpochs[] = "nvmm_epochs";
inline constexpr char kStatNvmmMaxUnfencedLines[] = "nvmm_max_unfenced_lines";
// hinfsd server counters (src/server/server.h). Connection lifecycle, frame
// traffic, and flow control; per-opcode request counts live under
// "srv_op_<opcode-name>" (e.g. srv_op_open), created on first dispatch.
inline constexpr char kStatSrvAcceptedConns[] = "srv_accepted_conns";
inline constexpr char kStatSrvActiveConns[] = "srv_active_conns";
inline constexpr char kStatSrvFramesRx[] = "srv_frames_rx";
inline constexpr char kStatSrvFramesTx[] = "srv_frames_tx";
inline constexpr char kStatSrvBytesRx[] = "srv_bytes_rx";
inline constexpr char kStatSrvBytesTx[] = "srv_bytes_tx";
inline constexpr char kStatSrvQueuedBytes[] = "srv_queued_bytes";
inline constexpr char kStatSrvProtocolErrors[] = "srv_protocol_errors";
inline constexpr char kStatSrvBackpressureStalls[] = "srv_backpressure_stalls";
inline constexpr char kStatSrvRequestsServed[] = "srv_requests_served";
// QoS scheduler counters (src/qos/qos_scheduler.h). Acquisitions admitted
// without waiting vs. after a throttle wait, split by traffic class; the
// per-bucket series (charged bytes, throttle waits/ns, borrowed bytes,
// instantaneous deficit) live under "qos_t<tenant>_*" for foreground tenants
// and "qos_bg_*" for the shared background bucket, created by
// QosScheduler::ExportStats.
inline constexpr char kStatQosFgFastAcquires[] = "qos_fg_fast_acquires";
inline constexpr char kStatQosFgSlowAcquires[] = "qos_fg_slow_acquires";
inline constexpr char kStatQosBgFastAcquires[] = "qos_bg_fast_acquires";
inline constexpr char kStatQosBgSlowAcquires[] = "qos_bg_slow_acquires";

}  // namespace hinfs

#endif  // SRC_COMMON_STATS_H_
