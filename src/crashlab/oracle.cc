#include "src/crashlab/oracle.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/common/constants.h"

namespace hinfs {

const char* CrashOpKindName(CrashOp::Kind kind) {
  switch (kind) {
    case CrashOp::Kind::kMkdir: return "mkdir";
    case CrashOp::Kind::kCreate: return "create";
    case CrashOp::Kind::kWrite: return "write";
    case CrashOp::Kind::kTruncate: return "truncate";
    case CrashOp::Kind::kFsync: return "fsync";
    case CrashOp::Kind::kUnlink: return "unlink";
    case CrashOp::Kind::kRename: return "rename";
    case CrashOp::Kind::kSyncFs: return "syncfs";
  }
  return "?";
}

std::string DescribeCrashOp(const CrashOp& op) {
  std::string s = CrashOpKindName(op.kind);
  s += " " + op.path;
  if (op.kind == CrashOp::Kind::kRename) {
    s += " -> " + op.path2;
  } else if (op.kind == CrashOp::Kind::kWrite) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " off=%llu len=%zu%s",
                  static_cast<unsigned long long>(op.offset), op.data.size(),
                  op.o_sync ? " O_SYNC" : "");
    s += buf;
  } else if (op.kind == CrashOp::Kind::kTruncate) {
    s += " to " + std::to_string(op.new_size);
  }
  return s;
}

OracleOptions OracleOptions::Pmfs() {
  OracleOptions o;
  o.data = DataDurability::kSynchronous;
  o.meta = MetaDurability::kSynchronous;
  o.size_granularity = SizeGranularity::kWholeOp;
  return o;
}

OracleOptions OracleOptions::Hinfs() {
  OracleOptions o;
  o.data = DataDurability::kLazy;
  o.meta = MetaDurability::kSynchronous;
  o.size_granularity = SizeGranularity::kChunk;
  return o;
}

OracleOptions OracleOptions::BlockFsJournal() {
  OracleOptions o;
  o.data = DataDurability::kCommitted;
  o.meta = MetaDurability::kCommitted;
  o.size_granularity = SizeGranularity::kWholeOp;
  return o;
}

OracleOptions OracleOptions::BlockFsDax() {
  OracleOptions o;
  o.data = DataDurability::kSynchronous;
  o.meta = MetaDurability::kCommitted;
  o.size_granularity = SizeGranularity::kWholeOp;
  return o;
}

OracleOptions OracleOptions::WalPmfs() {
  OracleOptions o;
  o.data = DataDurability::kLazy;
  o.meta = MetaDurability::kSynchronous;
  o.size_granularity = SizeGranularity::kWholeOp;
  o.sizes = SizeDurability::kLogged;
  return o;
}

// --- ModelFile ----------------------------------------------------------------

void CrashOracle::ModelFile::EnsureExtent(size_t n, bool exact_zero) {
  if (data.size() >= n) {
    return;
  }
  const size_t old = data.size();
  data.resize(n, 0);
  exact.resize(n, exact_zero ? 1 : 0);
  zero_ok.resize(n, 1);
  alts.resize(n);
  (void)old;
}

void CrashOracle::ModelFile::WriteBytes(uint64_t off, const std::string& payload,
                                        bool synchronous) {
  EnsureExtent(off + payload.size(), synchronous);
  for (size_t i = 0; i < payload.size(); i++) {
    const size_t p = off + i;
    const uint8_t v = static_cast<uint8_t>(payload[i]);
    if (synchronous) {
      data[p] = v;
      exact[p] = 1;
      zero_ok[p] = 0;
      alts[p].clear();
    } else {
      // The previous durable candidate(s) stay legal until writeback; the new
      // value becomes the current one.
      const uint8_t old = data[p];
      if (exact[p]) {
        alts[p].assign(1, static_cast<char>(old));
        exact[p] = 0;
      } else if (old != v && alts[p].find(static_cast<char>(old)) == std::string::npos) {
        alts[p].push_back(static_cast<char>(old));
      }
      data[p] = v;
    }
  }
}

void CrashOracle::ModelFile::CollapseToExact() {
  const size_t n = std::min<size_t>(size, data.size());
  for (size_t i = 0; i < n; i++) {
    exact[i] = 1;
    zero_ok[i] = 0;
    alts[i].clear();
  }
}

// --- model advancement --------------------------------------------------------

void CrashOracle::ApplyTo(ModelFs& fs, const CrashOp& op, const OracleOptions& opts) {
  switch (op.kind) {
    case CrashOp::Kind::kMkdir: {
      ModelFile dir;
      dir.type = FileType::kDirectory;
      fs[op.path] = std::move(dir);
      break;
    }
    case CrashOp::Kind::kCreate:
      fs[op.path] = ModelFile{};
      break;
    case CrashOp::Kind::kWrite: {
      ModelFile& f = fs[op.path];
      const bool synchronous =
          opts.data == OracleOptions::DataDurability::kSynchronous || op.o_sync;
      f.WriteBytes(op.offset, op.data, synchronous);
      const uint64_t end = op.offset + op.data.size();
      if (opts.sizes == OracleOptions::SizeDurability::kLogged) {
        if (op.o_sync) {
          // O_SYNC commits the region, making every logged extension durable.
          f.lazy_sizes.clear();
        } else if (end > f.size) {
          // The extension rides an uncommitted record: the pre-write size
          // stays legal until the file's next commit.
          f.lazy_sizes.insert(f.size);
        }
      }
      f.size = std::max<uint64_t>(f.size, end);
      break;
    }
    case CrashOp::Kind::kTruncate: {
      ModelFile& f = fs[op.path];
      if (op.new_size < f.size) {
        // Freed tail: reads as holes (zero) if the file regrows. With lazy
        // data the buffered tail may have escaped to NVMM first, so keep the
        // old bytes as alternates only for synchronous data.
        const bool sync_data = opts.data == OracleOptions::DataDurability::kSynchronous;
        for (size_t i = op.new_size; i < std::min<size_t>(f.size, f.data.size()); i++) {
          f.data[i] = 0;
          f.exact[i] = sync_data ? 1 : 0;
          f.zero_ok[i] = 1;
          f.alts[i].clear();
        }
      } else {
        f.EnsureExtent(op.new_size,
                       opts.data == OracleOptions::DataDurability::kSynchronous);
      }
      f.size = op.new_size;
      // WalFs commits the truncate record before returning, which commits the
      // whole region tail with it: the new size is exactly durable.
      f.lazy_sizes.clear();
      break;
    }
    case CrashOp::Kind::kFsync: {
      auto it = fs.find(op.path);
      if (it != fs.end()) {
        if (opts.data == OracleOptions::DataDurability::kLazy) {
          it->second.CollapseToExact();
        }
        it->second.lazy_sizes.clear();
      }
      break;
    }
    case CrashOp::Kind::kSyncFs: {
      for (auto& [path, f] : fs) {
        if (opts.data == OracleOptions::DataDurability::kLazy) {
          f.CollapseToExact();
        }
        f.lazy_sizes.clear();
      }
      break;
    }
    case CrashOp::Kind::kUnlink:
      fs.erase(op.path);
      break;
    case CrashOp::Kind::kRename: {
      auto it = fs.find(op.path);
      if (it != fs.end()) {
        fs[op.path2] = std::move(it->second);
        fs.erase(op.path);
      }
      break;
    }
  }
}

void CrashOracle::CommitAll() {
  committed_ = current_;
  for (auto& [path, f] : committed_) {
    f.CollapseToExact();
  }
}

void CrashOracle::Apply(const CrashOp& op) {
  ApplyTo(current_, op, opts_);
  // O_SYNC writes are commit points too: the FS syncs the file data and
  // commits the journal before returning from the write.
  if (opts_.meta == OracleOptions::MetaDurability::kCommitted &&
      (op.kind == CrashOp::Kind::kFsync || op.kind == CrashOp::Kind::kSyncFs ||
       (op.kind == CrashOp::Kind::kWrite && op.o_sync))) {
    // Ordered-mode journal commit: all dirty data synced, then all metadata
    // committed atomically. The committed snapshot is the whole current state.
    CommitAll();
  }
}

// --- legal-state variants ------------------------------------------------------

namespace {

// Sizes a chunk-granular write can have durably exposed mid-op: the old size,
// then each 4 KB-chunk end, then the final size.
std::vector<uint64_t> ChunkSizes(uint64_t old_size, uint64_t off, uint64_t end) {
  std::vector<uint64_t> sizes = {old_size};
  uint64_t pos = off;
  while (pos < end) {
    const uint64_t next = std::min<uint64_t>(end, (pos / kBlockSize + 1) * kBlockSize);
    const uint64_t s = std::max(old_size, next);
    if (s != sizes.back()) {
      sizes.push_back(s);
    }
    pos = next;
  }
  return sizes;
}

}  // namespace

std::vector<CrashOracle::ModelFs> CrashOracle::CheckVariants(const CrashOp* inflight) const {
  std::vector<ModelFs> variants;

  if (opts_.meta == OracleOptions::MetaDurability::kCommitted) {
    // Base: the last committed snapshot, with current data values admitted as
    // per-byte alternates (data may legally reach the media before the next
    // commit: DAX writes are durable at write time, and the page cache may
    // write back early under pressure).
    ModelFs base = committed_;
    for (auto& [path, f] : base) {
      auto cur = current_.find(path);
      if (cur == current_.end()) {
        // Unlinked (possibly truncated first) since the last commit: its data
        // pages may already be punched or discarded even though the namespace
        // change has not committed, so any byte may legally read zero.
        for (size_t i = 0; i < f.data.size(); i++) {
          f.exact[i] = 0;
          f.zero_ok[i] = 1;
        }
        continue;
      }
      const size_t n = std::min(f.data.size(), cur->second.data.size());
      for (size_t i = 0; i < n; i++) {
        const uint8_t cv = cur->second.data[i];
        if (cv != f.data[i]) {
          if (f.exact[i]) {
            f.exact[i] = 0;
            f.alts[i].assign(1, static_cast<char>(f.data[i]));
          }
          if (f.alts[i].find(static_cast<char>(cv)) == std::string::npos) {
            f.alts[i].push_back(static_cast<char>(cv));
          }
        }
      }
      // A shrinking truncate since the last commit punches the freed tail in
      // place (DAX zeroes it durably, ordered mode discards the cached pages)
      // before its size metadata commits: the committed view may legally read
      // zeros there while still showing the old size.
      uint64_t punched_from = f.data.size();
      if (cur->second.size < punched_from) {
        punched_from = cur->second.size;
      }
      if (inflight != nullptr && inflight->kind == CrashOp::Kind::kTruncate &&
          inflight->path == path && inflight->new_size < punched_from) {
        punched_from = inflight->new_size;
      }
      for (size_t i = punched_from; i < f.data.size(); i++) {
        f.exact[i] = 0;
        f.zero_ok[i] = 1;
      }
      // An in-flight write's payload may be partially durable (DAX).
      if (inflight != nullptr && inflight->kind == CrashOp::Kind::kWrite &&
          inflight->path == path) {
        for (size_t i = 0; i < inflight->data.size(); i++) {
          const size_t p = inflight->offset + i;
          if (p >= f.data.size()) {
            break;
          }
          const uint8_t v = static_cast<uint8_t>(inflight->data[i]);
          if (v != f.data[p]) {
            if (f.exact[p]) {
              f.exact[p] = 0;
              f.alts[p].assign(1, static_cast<char>(f.data[p]));
            }
            if (f.alts[p].find(static_cast<char>(v)) == std::string::npos) {
              f.alts[p].push_back(static_cast<char>(v));
            }
          }
        }
      }
    }
    variants.push_back(std::move(base));
    if (inflight != nullptr && (inflight->kind == CrashOp::Kind::kFsync ||
                                inflight->kind == CrashOp::Kind::kSyncFs ||
                                (inflight->kind == CrashOp::Kind::kWrite &&
                                 inflight->o_sync))) {
      // Crash mid-commit: either the old snapshot (journal txn not durable,
      // covered by base) or the new one (commit record made it).
      ModelFs after = current_;
      ApplyTo(after, *inflight, opts_);
      for (auto& [path, f] : after) {
        f.CollapseToExact();
      }
      variants.push_back(std::move(after));
    }
    return variants;
  }

  // Synchronous metadata (PMFS, HiNFS): completed ops are exactly durable;
  // only the in-flight op is relaxed.
  variants.push_back(current_);
  if (inflight == nullptr) {
    return variants;
  }
  switch (inflight->kind) {
    case CrashOp::Kind::kWrite: {
      auto it = current_.find(inflight->path);
      if (it == current_.end()) {
        break;
      }
      const uint64_t old_size = it->second.size;
      const uint64_t end = inflight->offset + inflight->data.size();
      std::vector<uint64_t> sizes;
      // Chunk granularity applies to O_SYNC writes too: HiNFS drains a sync
      // write through the buffer frame by frame, so the size advances at each
      // 4 KB chunk boundary mid-op.
      if (opts_.size_granularity == OracleOptions::SizeGranularity::kChunk) {
        sizes = ChunkSizes(old_size, inflight->offset, end);
      } else {
        sizes = {old_size, std::max(old_size, end)};
      }
      for (uint64_t s : sizes) {
        ModelFs v = current_;
        ModelFile& f = v[inflight->path];
        // Mid-op: each covered byte is old-or-new (the size guard decides
        // which bytes are visible at all), so apply the payload non-
        // synchronously even on a synchronous-data FS.
        f.WriteBytes(inflight->offset, inflight->data, /*synchronous=*/false);
        f.size = s;
        variants.push_back(std::move(v));
      }
      break;
    }
    case CrashOp::Kind::kTruncate: {
      auto it = current_.find(inflight->path);
      if (it != current_.end() && inflight->new_size < it->second.size) {
        // Blocks freed but size not yet updated: old size, tail reads zero
        // or old content.
        ModelFs v = current_;
        ModelFile& f = v[inflight->path];
        for (size_t i = inflight->new_size;
             i < std::min<size_t>(f.size, f.data.size()); i++) {
          f.exact[i] = 0;
          f.zero_ok[i] = 1;
        }
        variants.push_back(std::move(v));
      }
      ModelFs post = current_;
      ApplyTo(post, *inflight, opts_);
      variants.push_back(std::move(post));
      break;
    }
    case CrashOp::Kind::kRename: {
      if (current_.count(inflight->path2) != 0) {
        // Rename over an existing target first unlinks the target.
        ModelFs mid = current_;
        mid.erase(inflight->path2);
        variants.push_back(std::move(mid));
      }
      ModelFs post = current_;
      ApplyTo(post, *inflight, opts_);
      variants.push_back(std::move(post));
      break;
    }
    case CrashOp::Kind::kMkdir:
    case CrashOp::Kind::kCreate:
    case CrashOp::Kind::kUnlink:
    case CrashOp::Kind::kFsync:
    case CrashOp::Kind::kSyncFs: {
      ModelFs post = current_;
      ApplyTo(post, *inflight, opts_);
      variants.push_back(std::move(post));
      break;
    }
  }
  return variants;
}

// --- checking -----------------------------------------------------------------

namespace {

Status WalkFs(Vfs* vfs, const std::string& dir, std::map<std::string, InodeAttr>* out) {
  HINFS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                         vfs->ReadDir(dir.empty() ? "/" : dir));
  for (const DirEntry& e : entries) {
    const std::string full = dir + "/" + e.name;
    HINFS_ASSIGN_OR_RETURN(InodeAttr attr, vfs->Stat(full));
    (*out)[full] = attr;
    if (attr.type == FileType::kDirectory) {
      HINFS_RETURN_IF_ERROR(WalkFs(vfs, full, out));
    }
  }
  return OkStatus();
}

}  // namespace

Status CrashOracle::CheckAgainst(Vfs* vfs, const ModelFs& model, std::string* diag) const {
  std::map<std::string, InodeAttr> actual;
  Status walk = WalkFs(vfs, "", &actual);
  if (!walk.ok()) {
    *diag = "walking the remounted fs failed: " + walk.ToString();
    return Status(ErrorCode::kCorrupt, *diag);
  }
  for (const auto& [path, attr] : actual) {
    auto it = model.find(path);
    if (it == model.end()) {
      *diag = "unexpected entry survived the crash: " + path;
      return Status(ErrorCode::kCorrupt, *diag);
    }
    if (it->second.type != attr.type) {
      *diag = "type mismatch for " + path;
      return Status(ErrorCode::kCorrupt, *diag);
    }
  }
  for (const auto& [path, mf] : model) {
    auto it = actual.find(path);
    if (it == actual.end()) {
      *diag = "entry lost in the crash: " + path;
      return Status(ErrorCode::kCorrupt, *diag);
    }
    if (mf.type != FileType::kRegular) {
      continue;
    }
    // Logged sizes: a crash before the extending records committed legally
    // exposes any size the file passed through since its last commit.
    const uint64_t observed_size = it->second.size;
    if (observed_size != mf.size && mf.lazy_sizes.count(observed_size) == 0) {
      *diag = "size mismatch for " + path + ": got " + std::to_string(observed_size) +
              ", legal " + std::to_string(mf.size);
      if (!mf.lazy_sizes.empty()) {
        *diag += " or any logged size of " + std::to_string(mf.lazy_sizes.size());
      }
      return Status(ErrorCode::kCorrupt, *diag);
    }
    Result<std::string> contents = vfs->ReadFileToString(path);
    if (!contents.ok()) {
      *diag = "read failed for " + path + ": " + contents.status().ToString();
      return Status(ErrorCode::kCorrupt, *diag);
    }
    if (contents->size() != observed_size) {
      *diag = "short read for " + path;
      return Status(ErrorCode::kCorrupt, *diag);
    }
    for (size_t i = 0; i < observed_size; i++) {
      const uint8_t c = static_cast<uint8_t>((*contents)[i]);
      const uint8_t want = i < mf.data.size() ? mf.data[i] : 0;
      if (c == want) {
        continue;
      }
      const bool zero_legal = i < mf.zero_ok.size() ? mf.zero_ok[i] != 0 : true;
      const bool is_exact = i < mf.exact.size() ? mf.exact[i] != 0 : false;
      if (c == 0 && zero_legal && !is_exact) {
        continue;
      }
      if (!is_exact && i < mf.alts.size() &&
          mf.alts[i].find(static_cast<char>(c)) != std::string::npos) {
        continue;
      }
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "byte %zu of %s is garbage: got 0x%02x, current 0x%02x%s%s", i,
                    path.c_str(), c, want, is_exact ? " (exact)" : "",
                    !is_exact && zero_legal ? ", zero legal" : "");
      *diag = buf;
      return Status(ErrorCode::kCorrupt, *diag);
    }
  }
  return OkStatus();
}

Status CrashOracle::Check(Vfs* vfs, const CrashOp* inflight, std::string* diag) const {
  const std::vector<ModelFs> variants = CheckVariants(inflight);
  std::string mismatches;
  for (size_t i = 0; i < variants.size(); i++) {
    std::string d;
    if (CheckAgainst(vfs, variants[i], &d).ok()) {
      diag->clear();
      return OkStatus();
    }
    mismatches += " [variant " + std::to_string(i) + ": " + d + "]";
  }
  *diag = "no legal state matched (" + std::to_string(variants.size()) + " variants";
  if (inflight != nullptr) {
    *diag += ", in-flight op: " + DescribeCrashOp(*inflight);
  }
  *diag += ");" + mismatches;
  return Status(ErrorCode::kCorrupt, *diag);
}

}  // namespace hinfs
