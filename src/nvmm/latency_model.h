// LatencyModel: injects NVMM write latency, mirroring the paper's emulator.
//
// The paper's emulator adds a configurable spin delay after each clflush to model
// NVMM's slower writes relative to DRAM (default 200 ns), and leaves loads
// unpenalized. This class reproduces that, with three modes:
//   kSpin    - real busy-wait delay (the paper's mechanism; bench default)
//   kVirtual - the delay is charged to the calling thread's SimClock instead of
//              being slept; deterministic, used by unit tests
//   kNone    - no delay (functional tests that don't care about timing)

#ifndef SRC_NVMM_LATENCY_MODEL_H_
#define SRC_NVMM_LATENCY_MODEL_H_

#include <atomic>
#include <cstdint>

namespace hinfs {

enum class LatencyMode {
  kNone,
  kSpin,
  kVirtual,
};

class LatencyModel {
 public:
  LatencyModel(LatencyMode mode, uint64_t write_latency_ns)
      : mode_(mode), write_latency_ns_(write_latency_ns) {}

  LatencyMode mode() const { return mode_; }
  uint64_t write_latency_ns() const { return write_latency_ns_.load(std::memory_order_relaxed); }

  // Benches sweep this (Fig. 11) without rebuilding the device.
  void set_write_latency_ns(uint64_t ns) { write_latency_ns_.store(ns, std::memory_order_relaxed); }

  // Charges one NVMM cacheline-flush delay to the calling thread.
  void ChargeFlush() { Charge(write_latency_ns()); }

  // Charges an arbitrary delay (used by the block layer's software overhead).
  void Charge(uint64_t ns) const;

 private:
  LatencyMode mode_;
  std::atomic<uint64_t> write_latency_ns_;
};

}  // namespace hinfs

#endif  // SRC_NVMM_LATENCY_MODEL_H_
