#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace hinfs {

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  int b = 63 - std::countl_zero(value);
  return std::min(b, Histogram::kBuckets - 1);
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; i++) {
    seen += buckets_[i];
    if (seen > target) {
      // Midpoint of bucket [2^i, 2^(i+1)).
      const uint64_t lo = i == 0 ? 0 : (1ull << i);
      return lo + (lo >> 1);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_ == 0 && count_ == 0 ? 0 : max_));
  return buf;
}

// --- ConcurrentHistogram -----------------------------------------------------

ConcurrentHistogram::Stripe& ConcurrentHistogram::StripeForThisThread() {
  // Threads are dealt stripes round-robin on first use; with kStripes >= the
  // recorder count each thread effectively owns a stripe.
  static std::atomic<size_t> next_stripe{0};
  thread_local size_t stripe = next_stripe.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripes_[stripe];
}

void ConcurrentHistogram::Record(uint64_t value_ns) {
  Stripe& s = StripeForThisThread();
  s.buckets[Histogram::BucketFor(value_ns)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value_ns, std::memory_order_relaxed);
  uint64_t observed = s.min.load(std::memory_order_relaxed);
  while (value_ns < observed &&
         !s.min.compare_exchange_weak(observed, value_ns, std::memory_order_relaxed)) {
  }
  observed = s.max.load(std::memory_order_relaxed);
  while (value_ns > observed &&
         !s.max.compare_exchange_weak(observed, value_ns, std::memory_order_relaxed)) {
  }
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram out;
  for (const Stripe& s : stripes_) {
    for (int i = 0; i < Histogram::kBuckets; i++) {
      out.buckets_[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count_ += s.count.load(std::memory_order_relaxed);
    out.sum_ += s.sum.load(std::memory_order_relaxed);
    out.min_ = std::min(out.min_, s.min.load(std::memory_order_relaxed));
    out.max_ = std::max(out.max_, s.max.load(std::memory_order_relaxed));
  }
  return out;
}

void ConcurrentHistogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hinfs
