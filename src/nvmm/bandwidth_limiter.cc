#include "src/nvmm/bandwidth_limiter.h"

#include <algorithm>

#include "src/common/clock.h"

namespace hinfs {
namespace {

// Token bucket burst capacity: one "row buffer write" worth of slack so that
// single small writes never wait when the device is idle.
constexpr uint64_t kBurstBytes = 64 * 1024;

}  // namespace

BandwidthLimiter::BandwidthLimiter(LatencyMode mode, uint64_t bytes_per_sec)
    : mode_(mode), bytes_per_sec_(bytes_per_sec) {}

void BandwidthLimiter::set_bytes_per_sec(uint64_t bps) {
  bytes_per_sec_.store(bps, std::memory_order_relaxed);
}

void BandwidthLimiter::Acquire(uint64_t bytes) {
  const uint64_t bps = bytes_per_sec_.load(std::memory_order_relaxed);
  if (bps == 0 || bytes == 0 || mode_ == LatencyMode::kNone) {
    return;
  }
  const uint64_t service_ns = bytes * 1'000'000'000ull / bps;

  if (mode_ == LatencyMode::kVirtual) {
    // Deterministic single-server queue in simulated time: admission order is
    // the CAS success order, exactly as it was the mutex acquisition order.
    const uint64_t tnow = SimClock::ThreadNowNs();
    uint64_t prev = pipe_free_ns_.load(std::memory_order_relaxed);
    uint64_t start, end;
    do {
      start = std::max(prev, tnow);
      end = start + service_ns;
    } while (!pipe_free_ns_.compare_exchange_weak(prev, end, std::memory_order_relaxed));
    if (start > tnow) {
      slow_acquires_.fetch_add(1, std::memory_order_relaxed);
    } else {
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    }
    if (end > tnow) {
      SimClock::Advance(end - tnow);
    }
    return;
  }

  // Spin mode: wall-clock token bucket in GCRA form. pipe_free_ns_ is the
  // theoretical arrival time (TAT): the instant all admitted bytes will have
  // drained at bytes_per_sec_. Reserve our slot with one CAS, then wait only
  // if the reservation lands more than the burst window ahead of now.
  const uint64_t slack_ns = kBurstBytes * 1'000'000'000ull / bps;
  const uint64_t now = MonotonicNowNs();
  uint64_t prev = pipe_free_ns_.load(std::memory_order_relaxed);
  uint64_t end;
  do {
    end = std::max(prev, now) + service_ns;
  } while (!pipe_free_ns_.compare_exchange_weak(prev, end, std::memory_order_relaxed));

  if (end <= now + slack_ns) {
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t deadline = end - slack_ns;
  while (MonotonicNowNs() < deadline) {
    // Not enough bandwidth yet: spin a little, matching the paper's queued
    // NVMM writer threads.
    SpinFor(100);
  }
}

}  // namespace hinfs
