// Concurrency tests for the sharded DramBufferManager: writer/reader threads
// hammering overlapping (ino, block) ranges while FlushFile/FlushBlock/
// DiscardFile and the background writeback engine run against them.
//
// Invariants asserted (per shard count 1 / 2 / 16):
//  - no lost bytes: after the churn, every block of a single-writer file reads
//    back (DRAM or NVMM) exactly the last fill its writer recorded;
//  - no torn blocks: a whole-block write is atomic under the shard lock, so a
//    buffered read of any hammered block sees one uniform fill byte — a
//    duplicate frame grant (two entries sharing a dram_index) would show up
//    here as cross-writer corruption;
//  - frame accounting reconciles: after FlushAll every frame is back in a free
//    list (free_blocks() == capacity_blocks()), so every dram_index was handed
//    out and returned exactly once;
//  - counters reconcile: every Write is exactly one hit or one miss
//    (hits + misses == total Write calls).
//
// These are the tests `ctest -L sanitize` runs under HINFS_SANITIZE=thread to
// catch shard-lock-ordering mistakes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/hinfs/dram_buffer.h"

namespace hinfs {
namespace {

class ConcurrencyHarness {
 public:
  explicit ConcurrencyHarness(HinfsOptions options, size_t dev_bytes = 64 << 20) {
    NvmmConfig cfg;
    cfg.size_bytes = dev_bytes;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    mgr_ = std::make_unique<DramBufferManager>(
        nvmm_.get(), options, [](uint64_t ino, uint64_t file_block) -> Result<uint64_t> {
          return AddrFor(ino, file_block);
        });
  }

  static uint64_t AddrFor(uint64_t ino, uint64_t file_block) {
    return (ino * 128 + file_block) * kBlockSize;
  }

  NvmmDevice& nvmm() { return *nvmm_; }
  DramBufferManager& mgr() { return *mgr_; }

 private:
  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<DramBufferManager> mgr_;
};

constexpr int kWriters = 4;
constexpr int kReaders = 3;
constexpr uint64_t kBlocksPerIno = 24;
constexpr int kSteps = 400;
constexpr uint64_t kSharedIno = 99;   // all writers collide here
constexpr uint64_t kDiscardIno = 50;  // written and concurrently discarded
uint64_t OwnedIno(int writer) { return 10 + writer; }

HinfsOptions ConcurrencyOptions(int shards) {
  HinfsOptions o;
  o.buffer_bytes = 256 * kBlockSize;  // 16 shards x 16 frames at the widest
  o.buffer_shards = shards;
  o.writeback_period_ms = 2;
  o.staleness_ms = 100000;
  o.writeback_threads = 2;
  return o;
}

class DramBufferConcurrencyTest : public ::testing::TestWithParam<int> {};

TEST_P(DramBufferConcurrencyTest, OverlappingWritersReadersFlushersDiscard) {
  ConcurrencyHarness h(ConcurrencyOptions(GetParam()));
  h.mgr().StartBackgroundWriteback();

  std::atomic<uint64_t> total_writes{0};
  std::atomic<uint64_t> torn_blocks{0};
  std::atomic<uint64_t> flush_failures{0};
  std::atomic<bool> writers_done{false};
  // last_fill[t][b]: the fill byte writer t last wrote to its owned block b
  // (single writer per owned ino, so this is the ground truth; 0 = never).
  std::vector<std::vector<uint8_t>> last_fill(kWriters,
                                              std::vector<uint8_t>(kBlocksPerIno, 0));

  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();

  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::vector<uint8_t> buf(kBlockSize);
      for (int step = 0; step < kSteps; step++) {
        // Owned range: exclusive, verified byte-for-byte at the end.
        const uint64_t own_block = rng.Below(kBlocksPerIno);
        const auto fill = static_cast<uint8_t>(1 + rng.Below(254));
        std::memset(buf.data(), fill, buf.size());
        ASSERT_TRUE(h.mgr()
                        .Write(OwnedIno(t), own_block, 0, buf.data(), buf.size(),
                               ConcurrencyHarness::AddrFor(OwnedIno(t), own_block))
                        .ok());
        last_fill[t][own_block] = fill;
        total_writes.fetch_add(1, std::memory_order_relaxed);

        // Shared range: all writers overlap; readers check for torn blocks.
        const uint64_t shared_block = rng.Below(kBlocksPerIno);
        ASSERT_TRUE(h.mgr()
                        .Write(kSharedIno, shared_block, 0, buf.data(), buf.size(),
                               ConcurrencyHarness::AddrFor(kSharedIno, shared_block))
                        .ok());
        total_writes.fetch_add(1, std::memory_order_relaxed);

        // Discard target: racing DiscardFile may drop these at any point.
        if (step % 8 == 0) {
          ASSERT_TRUE(h.mgr()
                          .Write(kDiscardIno, rng.Below(kBlocksPerIno), 0, buf.data(),
                                 buf.size(), kNoNvmmAddr)
                          .ok());
          total_writes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      Rng rng(2000 + r);
      std::vector<uint8_t> buf(kBlockSize);
      while (!writers_done.load(std::memory_order_acquire)) {
        const uint64_t ino = rng.Chance(0.5) ? kSharedIno : OwnedIno(rng.Below(kWriters));
        const uint64_t block = rng.Below(kBlocksPerIno);
        auto hit = h.mgr().Read(ino, block, 0, buf.data(), buf.size(),
                                ConcurrencyHarness::AddrFor(ino, block));
        if (!hit.ok() || !*hit) {
          continue;  // not buffered: NVMM may legitimately be mid-writeback
        }
        // Whole-block writes under the shard lock: a buffered block is never
        // torn. Mixed fills mean two entries shared a frame or a write raced
        // the read inside the lock.
        const uint8_t first = buf[0];
        for (size_t i = 1; i < buf.size(); i++) {
          if (buf[i] != first) {
            torn_blocks.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  // Flusher: foreground FlushFile/FlushBlock racing the writers and the
  // background engine on the same shards.
  threads.emplace_back([&] {
    Rng rng(3000);
    while (!writers_done.load(std::memory_order_acquire)) {
      Status st = rng.Chance(0.5)
                      ? h.mgr().FlushFile(OwnedIno(rng.Below(kWriters)))
                      : h.mgr().FlushBlock(kSharedIno, rng.Below(kBlocksPerIno));
      if (!st.ok()) {
        flush_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Discarder: concurrently drops the discard ino, whole and from an offset.
  threads.emplace_back([&] {
    Rng rng(4000);
    while (!writers_done.load(std::memory_order_acquire)) {
      Status st = h.mgr().DiscardFile(kDiscardIno, rng.Below(kBlocksPerIno));
      if (!st.ok()) {
        flush_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int t = 0; t < kWriters; t++) {
    threads[t].join();
  }
  writers_done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); i++) {
    threads[i].join();
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                            start);
  h.mgr().StopBackgroundWriteback();

  EXPECT_EQ(torn_blocks.load(), 0u);
  EXPECT_EQ(flush_failures.load(), 0u);

  // Counter reconciliation: every Write is exactly one hit or one miss.
  EXPECT_EQ(h.mgr().buffer_hits() + h.mgr().buffer_misses(), total_writes.load());

  // No lost bytes: drain everything, then the owned files' NVMM content must
  // match each writer's last recorded fill.
  ASSERT_TRUE(h.mgr().FlushAll().ok());
  for (int t = 0; t < kWriters; t++) {
    for (uint64_t b = 0; b < kBlocksPerIno; b++) {
      if (last_fill[t][b] == 0) {
        continue;  // never written
      }
      std::vector<uint8_t> out(kBlockSize);
      ASSERT_TRUE(h.nvmm()
                      .Load(ConcurrencyHarness::AddrFor(OwnedIno(t), b), out.data(), out.size())
                      .ok());
      EXPECT_EQ(out[0], last_fill[t][b]) << "writer " << t << " block " << b;
      EXPECT_EQ(out[kBlockSize - 1], last_fill[t][b]) << "writer " << t << " block " << b;
    }
  }

  // Frame accounting: every granted dram_index came back exactly once. A
  // double grant or a leak would leave free_blocks() != capacity.
  EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());

  // Contention telemetry for the PR record (single-core hosts can't show a
  // wall-clock speedup, so contended-lock / stall counts are the observable).
  std::printf("[shards=%zu] elapsed_ms=%lld writes=%llu stalls=%llu contended=%llu "
              "hits=%llu misses=%llu writeback_blocks=%llu\n",
              h.mgr().shard_count(), static_cast<long long>(elapsed.count()),
              static_cast<unsigned long long>(total_writes.load()),
              static_cast<unsigned long long>(h.mgr().stall_count()),
              static_cast<unsigned long long>(h.mgr().lock_contended()),
              static_cast<unsigned long long>(h.mgr().buffer_hits()),
              static_cast<unsigned long long>(h.mgr().buffer_misses()),
              static_cast<unsigned long long>(h.mgr().writeback_blocks()));
}

INSTANTIATE_TEST_SUITE_P(Shards, DramBufferConcurrencyTest, ::testing::Values(1, 2, 16),
                         [](const auto& info) {
                           return "Shards" + std::to_string(info.param);
                         });

// Uncontended-hit contention probe: every thread re-writes ONE resident block
// (pure hits, no eviction), with inos chosen via ShardOf so that under the
// sharded config each thread's block lives in a DIFFERENT shard. With one
// shard all four threads serialize on a single mutex, so every preemption
// inside the critical section makes the other runnable threads contend; with
// distinct shards a preempted lock holder blocks nobody. The contended-
// acquisition delta is the single-core observable for the sharding win (a
// wall-clock speedup needs real cores). Asserts only correctness (counters),
// not timing, to stay robust on loaded CI hosts.
TEST(DramBufferContentionProbe, HitPathContentionByShardCount) {
  constexpr int kThreads = 4;
  constexpr int kProbeSteps = 100000;
  uint64_t contended[2] = {0, 0};
  double rate[2] = {0, 0};
  const int configs[2] = {1, 16};
  for (int c = 0; c < 2; c++) {
    ConcurrencyHarness h(ConcurrencyOptions(configs[c]));
    // Pick per-thread inos whose (ino, block 0) keys land in distinct shards
    // (trivially satisfied at shards=1). Bounded search: with 16 shards and
    // uniform keying this terminates in a handful of candidates.
    std::vector<uint64_t> inos;
    std::vector<bool> used(h.mgr().shard_count(), false);
    for (uint64_t cand = 10; static_cast<int>(inos.size()) < kThreads; cand++) {
      const uint32_t sh = h.mgr().ShardOf(cand, 0);
      if (!used[sh] || h.mgr().shard_count() == 1) {
        used[sh] = true;
        inos.push_back(cand);
      }
      ASSERT_LT(cand, 10000u) << "could not spread inos across shards";
    }
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        std::vector<uint8_t> buf(kBlockSize, static_cast<uint8_t>(t + 1));
        for (int i = 0; i < kProbeSteps; i++) {
          ASSERT_TRUE(h.mgr()
                          .Write(inos[t], 0, 0, buf.data(), buf.size(),
                                 ConcurrencyHarness::AddrFor(inos[t], 0))
                          .ok());
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const uint64_t writes = uint64_t{kThreads} * kProbeSteps;
    EXPECT_EQ(h.mgr().buffer_hits() + h.mgr().buffer_misses(), writes);
    contended[c] = h.mgr().lock_contended();
    rate[c] = writes / secs;
    std::printf("[probe shards=%zu] %.0f writes/s, %llu contended lock acquisitions "
                "(%llu writes in %.3f s)\n",
                h.mgr().shard_count(), rate[c],
                static_cast<unsigned long long>(contended[c]),
                static_cast<unsigned long long>(writes), secs);
    ASSERT_TRUE(h.mgr().FlushAll().ok());
    EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());
  }
  // Distinct shards cannot contend more than a single global lock does. Allow
  // slack for background-writeback scans touching every shard.
  EXPECT_LE(contended[1], contended[0] + 5);
}

// Wakeup precision: with workers pinned to disjoint shard sets and per-worker
// condition variables, filling exactly one shard must wake exactly that
// shard's owner — the other worker's wakeup counter stays at zero and no
// wakeup is spurious (the kicked worker always finds its shard pending).
TEST(DramBufferWorkerPinning, DirtyShardWakesOnlyItsOwner) {
  HinfsOptions o;
  o.buffer_bytes = 64 * kBlockSize;  // 4 shards x 16 frames
  o.buffer_shards = 4;
  o.writeback_period_ms = 10'000'000;  // periodic timeouts never fire: only kicks wake
  o.staleness_ms = 10'000'000;
  o.writeback_threads = 2;
  ConcurrencyHarness h(o);
  ASSERT_EQ(h.mgr().shard_count(), 4u);
  ASSERT_EQ(h.mgr().writeback_worker_count(), 2u);
  // Disjoint pinning: shard i belongs to worker i % 2.
  EXPECT_NE(h.mgr().shard_owner_worker(0), h.mgr().shard_owner_worker(1));
  EXPECT_EQ(h.mgr().shard_owner_worker(0), h.mgr().shard_owner_worker(2));

  h.mgr().StartBackgroundWriteback();

  // Collect 16 distinct keys that all land in shard 0, then fill it to the
  // last frame: the final grant drops free below Low_f and kicks the owner.
  const uint32_t target = 0;
  const size_t owner = h.mgr().shard_owner_worker(target);
  const size_t other = 1 - owner;
  std::vector<uint64_t> inos;
  for (uint64_t cand = 10; inos.size() < h.mgr().shard_capacity(target); cand++) {
    if (h.mgr().ShardOf(cand, 0) == target) {
      inos.push_back(cand);
    }
    ASSERT_LT(cand, 100000u);
  }
  std::vector<uint8_t> buf(kBlockSize, 0x42);
  for (uint64_t ino : inos) {
    ASSERT_TRUE(h.mgr()
                    .Write(ino, 0, 0, buf.data(), buf.size(),
                           ConcurrencyHarness::AddrFor(ino, 0))
                    .ok());
  }

  // The kick is asynchronous; give the owner generous time to wake.
  for (int i = 0; i < 5000 && h.mgr().worker_wakeups(owner) == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(h.mgr().worker_wakeups(owner), 1u);
  EXPECT_EQ(h.mgr().worker_wakeups(other), 0u) << "cross-worker wakeup: pinning leaked";
  EXPECT_EQ(h.mgr().worker_spurious_wakeups(), 0u);

  h.mgr().StopBackgroundWriteback();
  ASSERT_TRUE(h.mgr().FlushAll().ok());
  EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());
}

// Cross-shard stealing: a shard whose writer outruns its pinned worker must
// borrow frames from idle neighbours instead of blocking while most of the
// buffer sits free. NVMM write latency is real (kSpin) so the worker's flushes
// are slow relative to the writer's DRAM memcpys: the hot shard repeatedly
// exhausts its free list mid-flush and every such stall is a steal
// opportunity. The test completing promptly (no writer parked on the free CV
// for a full writeback period while 24 frames sit free next door) plus
// frames_stolen > 0 is the acceptance assertion.
TEST(DramBufferFrameStealing, HotShardBorrowsFromIdleShards) {
  HinfsOptions o;
  o.buffer_bytes = 32 * kBlockSize;  // 4 shards x 8 frames
  o.buffer_shards = 4;
  o.writeback_period_ms = 10'000'000;  // workers act on kicks only
  o.staleness_ms = 10'000'000;
  o.writeback_threads = 1;
  NvmmConfig ncfg;
  ncfg.size_bytes = 64 << 20;
  ncfg.latency_mode = LatencyMode::kSpin;
  ncfg.write_latency_ns = 1000;  // ~64us per flushed block: the worker is slow
  NvmmDevice nvmm(ncfg);
  DramBufferManager mgr(&nvmm, o,
                        [](uint64_t ino, uint64_t file_block) -> Result<uint64_t> {
                          return ConcurrencyHarness::AddrFor(ino, file_block);
                        });
  ASSERT_EQ(mgr.shard_count(), 4u);
  mgr.StartBackgroundWriteback();

  const uint32_t target = mgr.ShardOf(10, 0);
  const size_t initial_capacity = mgr.shard_capacity(target);
  ASSERT_EQ(initial_capacity, 8u);

  // 64 distinct blocks of one file, all hashing into the hot shard — 8x its
  // capacity (file blocks stay < 128 x 8 so AddrFor stays inside the device).
  std::vector<uint64_t> blocks;
  for (uint64_t fb = 0; blocks.size() < 64; fb++) {
    if (mgr.ShardOf(10, fb) == target) {
      blocks.push_back(fb);
    }
    ASSERT_LT(fb, 1000u);
  }
  std::vector<uint8_t> buf(kBlockSize, 0x7f);
  for (uint64_t fb : blocks) {
    ASSERT_TRUE(mgr.Write(10, fb, 0, buf.data(), buf.size(),
                          ConcurrencyHarness::AddrFor(10, fb))
                    .ok());
  }

  EXPECT_GE(mgr.frames_stolen(), 1u);
  EXPECT_GT(mgr.shard_capacity(target), initial_capacity);
  // Conservation: every frame is owned by exactly one shard or the reserve.
  size_t cap_sum = mgr.reserve_frames();
  for (uint32_t s = 0; s < mgr.shard_count(); s++) {
    cap_sum += mgr.shard_capacity(s);
  }
  EXPECT_EQ(cap_sum, mgr.capacity_blocks());

  mgr.StopBackgroundWriteback();
  ASSERT_TRUE(mgr.FlushAll().ok());
  EXPECT_EQ(mgr.free_blocks(), mgr.capacity_blocks());
  std::printf("[steal] stolen=%llu hot_capacity=%zu reserve=%zu\n",
              static_cast<unsigned long long>(mgr.frames_stolen()),
              mgr.shard_capacity(target), mgr.reserve_frames());
}

// Reader-vs-evictor race on the lock-free lookup: writers churn a keyspace
// 1.5x the buffer capacity (constant eviction, entry recycling, LUT
// tombstoning/rebuild) while readers hammer whole-block reads through
// TryLockFreeRead. The seqlock must never expose a torn or stale frame: a
// buffered read returns one uniform fill byte or falls back/misses.
class LockFreeReadRaceTest : public ::testing::TestWithParam<int> {};

TEST_P(LockFreeReadRaceTest, ReadersRaceEvictionAndRecycling) {
  HinfsOptions o;
  o.buffer_bytes = 64 * kBlockSize;  // 16 shards x 4 frames at the widest
  o.buffer_shards = GetParam();
  o.writeback_period_ms = 2;
  o.staleness_ms = 100000;
  o.writeback_threads = 2;
  ConcurrencyHarness h(o);
  h.mgr().StartBackgroundWriteback();

  constexpr int kRaceWriters = 2;
  constexpr int kRaceReaders = 2;
  constexpr uint64_t kRaceBlocks = 32;  // 3 inos x 32 blocks = 96 keys > 64 frames
  constexpr int kRaceSteps = 400;
  std::atomic<uint64_t> total_writes{0};
  std::atomic<uint64_t> torn_blocks{0};
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kRaceWriters; t++) {
    threads.emplace_back([&, t] {
      Rng rng(5000 + t);
      std::vector<uint8_t> buf(kBlockSize);
      for (int step = 0; step < kRaceSteps; step++) {
        const uint64_t ino = rng.Chance(0.3) ? kSharedIno : OwnedIno(t);
        const uint64_t block = rng.Below(kRaceBlocks);
        std::memset(buf.data(), static_cast<uint8_t>(1 + rng.Below(254)), buf.size());
        ASSERT_TRUE(h.mgr()
                        .Write(ino, block, 0, buf.data(), buf.size(),
                               ConcurrencyHarness::AddrFor(ino, block))
                        .ok());
        total_writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < kRaceReaders; r++) {
    threads.emplace_back([&, r] {
      Rng rng(6000 + r);
      std::vector<uint8_t> buf(kBlockSize);
      while (!writers_done.load(std::memory_order_acquire)) {
        const uint64_t ino =
            rng.Chance(0.3) ? kSharedIno : OwnedIno(rng.Below(kRaceWriters));
        const uint64_t block = rng.Below(kRaceBlocks);
        auto hit = h.mgr().Read(ino, block, 0, buf.data(), buf.size(),
                                ConcurrencyHarness::AddrFor(ino, block));
        if (!hit.ok() || !*hit) {
          continue;
        }
        const uint8_t first = buf[0];
        for (size_t i = 1; i < buf.size(); i++) {
          if (buf[i] != first) {
            torn_blocks.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (int t = 0; t < kRaceWriters; t++) {
    threads[t].join();
  }
  writers_done.store(true, std::memory_order_release);
  for (size_t i = kRaceWriters; i < threads.size(); i++) {
    threads[i].join();
  }
  h.mgr().StopBackgroundWriteback();

  EXPECT_EQ(torn_blocks.load(), 0u);
  EXPECT_EQ(h.mgr().buffer_hits() + h.mgr().buffer_misses(), total_writes.load());
  // Whole-block writes keep resident blocks fully DRAM-valid, so the fast
  // path must be serving a healthy share of the reads, not falling back.
  EXPECT_GT(h.mgr().lockfree_read_hits(), 0u);

  ASSERT_TRUE(h.mgr().FlushAll().ok());
  EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());
  std::printf("[lockfree shards=%zu] fast_hits=%llu fallbacks=%llu stolen=%llu\n",
              h.mgr().shard_count(),
              static_cast<unsigned long long>(h.mgr().lockfree_read_hits()),
              static_cast<unsigned long long>(h.mgr().lockfree_read_fallbacks()),
              static_cast<unsigned long long>(h.mgr().frames_stolen()));
}

INSTANTIATE_TEST_SUITE_P(Shards, LockFreeReadRaceTest, ::testing::Values(1, 2, 16),
                         [](const auto& info) {
                           return "Shards" + std::to_string(info.param);
                         });

// Batched read promotions (ARC): lock-free read hits push touches into the
// per-shard MPSC ring; the evictor and the write path drain them under the
// shard mutex. Readers hammer hot blocks while writers churn enough distinct
// blocks to keep eviction (and LUT rebuilds) running — under TSan/ASan this
// is the use-after-free probe for both the ring (an entry may be evicted and
// recycled between push and drain) and epoch-reclaimed lookup arrays.
TEST(PromotionBatchingTest, ArcReadersPromoteWhileEvictorDrains) {
  HinfsOptions o;
  o.buffer_bytes = 64 * kBlockSize;
  o.buffer_shards = 2;
  o.replacement = HinfsOptions::Replacement::kArc;
  o.writeback_period_ms = 2;
  o.staleness_ms = 100000;
  o.writeback_threads = 2;
  // Churn keys reach AddrFor(231, 127) ~ 121 MB; size the device past that.
  ConcurrencyHarness h(o, 256 << 20);
  h.mgr().StartBackgroundWriteback();

  constexpr uint64_t kHotIno = 7;
  constexpr uint64_t kHotBlocks = 4;
  constexpr int kChurnSteps = 2000;  // enough evictions to force LUT rebuilds
  std::vector<uint8_t> hot(kBlockSize, 0xab);
  for (uint64_t b = 0; b < kHotBlocks; b++) {
    ASSERT_TRUE(h.mgr()
                    .Write(kHotIno, b, 0, hot.data(), hot.size(),
                           ConcurrencyHarness::AddrFor(kHotIno, b))
                    .ok());
  }

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&, r] {
      Rng rng(8000 + r);
      std::vector<uint8_t> buf(kBlockSize);
      while (!writers_done.load(std::memory_order_acquire)) {
        const uint64_t b = rng.Below(kHotBlocks);
        auto hit = h.mgr().Read(kHotIno, b, 0, buf.data(), buf.size(),
                                ConcurrencyHarness::AddrFor(kHotIno, b));
        ASSERT_TRUE(hit.ok());
        if (*hit) {
          // The hot fill never changes; churn writers use other inos.
          EXPECT_EQ(buf[0], 0xab);
          EXPECT_EQ(buf[kBlockSize - 1], 0xab);
        }
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(9000);
    std::vector<uint8_t> buf(kBlockSize, 0x11);
    for (int step = 0; step < kChurnSteps; step++) {
      // 4096 mostly-distinct keys (mostly misses). Blocks stay < 128 so no
      // two (ino, block) keys alias the same AddrFor NVMM address — aliased
      // dirty entries in different shards would race in writeback.
      const uint64_t ino = 200 + rng.Below(32);
      const uint64_t block = rng.Below(128);
      ASSERT_TRUE(h.mgr()
                      .Write(ino, block, 0, buf.data(), buf.size(),
                             ConcurrencyHarness::AddrFor(ino, block))
                      .ok());
    }
    writers_done.store(true, std::memory_order_release);
  });
  for (auto& th : threads) {
    th.join();
  }

  // Deterministic drain tail: a read hit pushes a touch (or finds the ring
  // full of earlier ones); the Write that follows hits the same shard and
  // drains whatever is pending before handling the write.
  std::vector<uint8_t> buf(kBlockSize);
  auto hit = h.mgr().Read(kHotIno, 0, 0, buf.data(), buf.size(),
                          ConcurrencyHarness::AddrFor(kHotIno, 0));
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(h.mgr()
                  .Write(kHotIno, 0, 0, hot.data(), hot.size(),
                         ConcurrencyHarness::AddrFor(kHotIno, 0))
                  .ok());
  // Let the pinned workers run a few reclaim sweeps with no readers pinned.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  h.mgr().StopBackgroundWriteback();

  EXPECT_GT(h.mgr().promotions_batched(), 0u);
  EXPECT_GT(h.mgr().promotions_drained(), 0u);
  EXPECT_LE(h.mgr().promotions_drained(), h.mgr().promotions_batched());
  // The churn evicted thousands of blocks through two shards: tombstone
  // pressure forces same-size LUT rebuilds, and with no reader pinned the
  // replaced arrays must actually get freed, not hoarded.
  EXPECT_GT(h.mgr().epoch_retired(), 0u);

  ASSERT_TRUE(h.mgr().FlushAll().ok());
  EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());
  std::printf("[promo] batched=%llu drained=%llu epoch_retired=%llu\n",
              static_cast<unsigned long long>(h.mgr().promotions_batched()),
              static_cast<unsigned long long>(h.mgr().promotions_drained()),
              static_cast<unsigned long long>(h.mgr().epoch_retired()));
}

// buffer_shards=1 + LRW (the paper default) must keep the legacy determinism
// contract: reads never perturb hit/miss accounting or eviction order, so an
// identical write sequence produces identical counters whether or not reads
// are interleaved — and the promotion ring stays bypassed (batched == 0).
TEST(PromotionBatchingTest, SingleShardLrwCountersUnaffectedByReads) {
  auto run = [](bool interleave_reads) {
    HinfsOptions o;
    o.buffer_bytes = 8 * kBlockSize;
    o.buffer_shards = 1;
    o.staleness_ms = 100000;
    ConcurrencyHarness h(o, 32 << 20);
    std::vector<uint8_t> buf(kBlockSize, 0x5a);
    std::vector<uint8_t> rd(kBlockSize);
    // 12 distinct blocks through an 8-frame buffer with rewrites, evicting
    // via FlushBlock so the sequence is engine-independent.
    for (int round = 0; round < 3; round++) {
      for (uint64_t b = 0; b < 12; b++) {
        EXPECT_TRUE(h.mgr()
                        .Write(1, b, 0, buf.data(), buf.size(),
                               ConcurrencyHarness::AddrFor(1, b))
                        .ok());
        if (interleave_reads) {
          (void)h.mgr().Read(1, (b + round) % 12, 0, rd.data(), rd.size(),
                             ConcurrencyHarness::AddrFor(1, (b + round) % 12));
        }
        if (b % 3 == 2) {
          EXPECT_TRUE(h.mgr().FlushBlock(1, b).ok());
        }
      }
    }
    return std::make_pair(h.mgr().buffer_hits(), h.mgr().buffer_misses());
  };
  const auto with_reads = run(true);
  const auto without_reads = run(false);
  EXPECT_EQ(with_reads.first, without_reads.first) << "reads perturbed LRW hits";
  EXPECT_EQ(with_reads.second, without_reads.second) << "reads perturbed LRW misses";

  // And LRW never routes through the promotion ring at all.
  HinfsOptions o;
  o.buffer_bytes = 8 * kBlockSize;
  o.buffer_shards = 1;
  o.staleness_ms = 100000;
  ConcurrencyHarness h(o, 32 << 20);
  std::vector<uint8_t> buf(kBlockSize, 0x77);
  ASSERT_TRUE(
      h.mgr().Write(1, 0, 0, buf.data(), buf.size(), ConcurrencyHarness::AddrFor(1, 0)).ok());
  std::vector<uint8_t> rd(kBlockSize);
  for (int i = 0; i < 64; i++) {
    auto hit = h.mgr().Read(1, 0, 0, rd.data(), rd.size(), ConcurrencyHarness::AddrFor(1, 0));
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(*hit);
  }
  EXPECT_GT(h.mgr().lockfree_read_hits(), 0u);
  EXPECT_EQ(h.mgr().promotions_batched(), 0u);
  EXPECT_EQ(h.mgr().promotions_drained(), 0u);
}

}  // namespace
}  // namespace hinfs
