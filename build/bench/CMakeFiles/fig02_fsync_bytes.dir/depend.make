# Empty dependencies file for fig02_fsync_bytes.
# This may be replaced when dependencies are built.
