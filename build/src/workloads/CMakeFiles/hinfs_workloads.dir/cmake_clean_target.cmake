file(REMOVE_RECURSE
  "libhinfs_workloads.a"
)
