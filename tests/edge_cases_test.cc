// Edge cases: resource exhaustion, deep index trees, boundary sizes — the
// conditions a downstream user hits first in production.

#include <gtest/gtest.h>

#include "src/fs/pmfs/fsck.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

TEST(NoSpaceTest, PmfsFailsGracefullyAndStaysConsistent) {
  NvmmConfig cfg;
  cfg.size_bytes = 8 << 20;  // tiny device
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  PmfsOptions opts;
  opts.max_inodes = 256;
  opts.journal_bytes = 256 * 1024;
  auto fs = PmfsFs::Format(&nvmm, opts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());

  // Fill the device until writes fail.
  std::vector<uint8_t> chunk(64 * 1024, 0x44);
  Status last = OkStatus();
  int files = 0;
  for (; files < 1000; files++) {
    auto fd = vfs.Open("/fill" + std::to_string(files), kWrOnly | kCreate);
    if (!fd.ok()) {
      last = fd.status();
      break;
    }
    bool full = false;
    for (int c = 0; c < 8; c++) {
      Result<size_t> n = vfs.Write(*fd, chunk.data(), chunk.size());
      if (!n.ok()) {
        last = n.status();
        full = true;
        break;
      }
    }
    ASSERT_TRUE(vfs.Close(*fd).ok());
    if (full) {
      break;
    }
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
  EXPECT_GT(files, 10);

  // Deleting reclaims space and the FS works again.
  ASSERT_TRUE(vfs.Unlink("/fill0").ok());
  ASSERT_TRUE(vfs.WriteFile("/after", std::string(10000, 'a')).ok());
  ASSERT_TRUE(vfs.Unmount().ok());

  auto report = FsckPmfs(&nvmm);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
}

TEST(NoSpaceTest, HinfsWritebackSurfacesNoSpace) {
  NvmmConfig cfg;
  cfg.size_bytes = 8 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  HinfsOptions hopts;
  hopts.buffer_bytes = 1 << 20;
  PmfsOptions popts;
  popts.max_inodes = 256;
  popts.journal_bytes = 256 * 1024;
  auto fs = HinfsFs::Format(&nvmm, hopts, popts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());

  // Buffered writes can exceed free NVMM; the failure must surface at fsync
  // (allocation happens at writeback), not corrupt anything.
  std::vector<uint8_t> chunk(64 * 1024, 0x55);
  Status failure = OkStatus();
  for (int f = 0; f < 1000 && failure.ok(); f++) {
    auto fd = vfs.Open("/fill" + std::to_string(f), kWrOnly | kCreate);
    if (!fd.ok()) {
      failure = fd.status();
      break;
    }
    for (int c = 0; c < 4 && failure.ok(); c++) {
      Result<size_t> n = vfs.Write(*fd, chunk.data(), chunk.size());
      if (!n.ok()) {
        failure = n.status();
      }
    }
    if (failure.ok()) {
      failure = vfs.Fsync(*fd);
    }
    (void)vfs.Close(*fd);
  }
  EXPECT_EQ(failure.code(), ErrorCode::kNoSpace);
}

TEST(InodeExhaustionTest, CreateFailsCleanly) {
  NvmmConfig cfg;
  cfg.size_bytes = 32 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  PmfsOptions opts;
  opts.max_inodes = 20;
  auto fs = PmfsFs::Format(&nvmm, opts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  Status last = OkStatus();
  int created = 0;
  for (int i = 0; i < 50; i++) {
    Status st = vfs.WriteFile("/i" + std::to_string(i), "x");
    if (!st.ok()) {
      last = st;
      break;
    }
    created++;
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(created, 19);  // root uses one slot
  // Unlink frees a slot for reuse.
  ASSERT_TRUE(vfs.Unlink("/i0").ok());
  EXPECT_TRUE(vfs.WriteFile("/again", "y").ok());
}

TEST(DeepRadixTest, HeightThreeFileWorks) {
  // > 512 * 512 blocks needs radix height 3: write sparse points across a
  // multi-GB logical range (allocating only a few blocks).
  NvmmConfig cfg;
  cfg.size_bytes = 64 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  auto fd = vfs.Open("/sparse", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());

  const uint64_t offsets[] = {0ull, 4096ull * 511, 4096ull * 512, 4096ull * 512 * 300,
                              4096ull * 512 * 512 + 12345};
  for (uint64_t off : offsets) {
    const uint64_t tag = off ^ 0xabcdef;
    ASSERT_TRUE(vfs.Pwrite(*fd, &tag, 8, off).ok()) << off;
  }
  for (uint64_t off : offsets) {
    uint64_t tag = 0;
    auto n = vfs.Pread(*fd, &tag, 8, off);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(tag, off ^ 0xabcdef) << off;
  }
  // The space between the points reads as zeros.
  uint64_t zero = 1;
  ASSERT_TRUE(vfs.Pread(*fd, &zero, 8, 4096ull * 512 * 100).ok());
  EXPECT_EQ(zero, 0u);
  auto attr = vfs.Fstat(*fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, offsets[4] + 8);
}

TEST(BoundaryTest, WritesAtExactBlockEdges) {
  NvmmConfig cfg;
  cfg.size_bytes = 32 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  HinfsOptions hopts;
  hopts.buffer_bytes = 1 << 20;
  auto fs = HinfsFs::Format(&nvmm, hopts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  auto fd = vfs.Open("/edges", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());

  // One-byte writes straddling every interesting boundary.
  for (uint64_t off : {uint64_t{0}, uint64_t{63}, uint64_t{64}, uint64_t{4095}, uint64_t{4096},
                       uint64_t{4097}, uint64_t{8191}, uint64_t{8192}}) {
    const auto b = static_cast<uint8_t>(off & 0x7f);
    ASSERT_TRUE(vfs.Pwrite(*fd, &b, 1, off).ok()) << off;
  }
  ASSERT_TRUE(vfs.Fsync(*fd).ok());
  for (uint64_t off : {uint64_t{0}, uint64_t{63}, uint64_t{64}, uint64_t{4095}, uint64_t{4096},
                       uint64_t{4097}, uint64_t{8191}, uint64_t{8192}}) {
    uint8_t b = 0xff;
    auto n = vfs.Pread(*fd, &b, 1, off);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(b, static_cast<uint8_t>(off & 0x7f)) << off;
  }
  // A write spanning two blocks exactly.
  std::vector<uint8_t> span(kBlockSize * 2, 0xee);
  ASSERT_TRUE(vfs.Pwrite(*fd, span.data(), span.size(), kBlockSize / 2).ok());
  uint8_t probe;
  ASSERT_TRUE(vfs.Pread(*fd, &probe, 1, kBlockSize / 2 + span.size() - 1).ok());
  EXPECT_EQ(probe, 0xee);
}

TEST(BoundaryTest, ZeroLengthOps) {
  NvmmConfig cfg;
  cfg.size_bytes = 16 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  auto fd = vfs.Open("/z", kRdWr | kCreate);
  ASSERT_TRUE(fd.ok());
  auto w = vfs.Write(*fd, "", 0);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 0u);
  char buf[1];
  auto r = vfs.Read(*fd, buf, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  auto attr = vfs.Fstat(*fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST(BoundaryTest, MaxNameLengthAccepted) {
  NvmmConfig cfg;
  cfg.size_bytes = 16 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  NvmmDevice nvmm(cfg);
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  const std::string name(kMaxNameLen, 'n');
  ASSERT_TRUE(vfs.WriteFile("/" + name, "max").ok());
  auto content = vfs.ReadFileToString("/" + name);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "max");
  EXPECT_FALSE(vfs.WriteFile("/" + name + "n", "over").ok());
}

}  // namespace
}  // namespace hinfs
