#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace hinfs {
namespace {

int BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  int b = 63 - std::countl_zero(value);
  return std::min(b, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; i++) {
    seen += buckets_[i];
    if (seen > target) {
      // Midpoint of bucket [2^i, 2^(i+1)).
      const uint64_t lo = i == 0 ? 0 : (1ull << i);
      return lo + (lo >> 1);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_ == 0 && count_ == 0 ? 0 : max_));
  return buf;
}

}  // namespace hinfs
