// hinfsd: a multi-threaded file-service daemon exposing a Vfs over
// Unix-domain and TCP sockets with the length-prefixed binary protocol in
// protocol.h.
//
// Threading model (DESIGN.md §7):
//  - One event-loop thread owns epoll: it accepts connections, reads bytes,
//    slices them into frames, and hands decoded requests to the worker pool.
//    It also flushes pending response bytes on EPOLLOUT.
//  - N worker threads pop requests from one shared queue, execute them
//    against the Vfs, and append the encoded response to the connection's
//    write queue, opportunistically flushing it inline (the common case: the
//    socket buffer has room and no EPOLLOUT round-trip is needed).
//
// Sessions and fd ownership: each connection owns a Session mapping
// client-visible fds to Vfs fds. Requests hold the Session via shared_ptr, so
// when a connection drops, the last in-flight request releases the Session
// and its destructor closes every Vfs fd the client leaked — a dropped
// connection can never leak fds (Vfs::OpenFdCount is the test's observable).
//
// Backpressure: per-connection write queues are bounded by
// max_conn_queued_bytes, and in-flight requests per connection by
// max_conn_inflight. When either bound is hit the event loop stops reading
// from that connection (EPOLLIN off) and resumes once the queue drains below
// half — a slow reader stalls only itself.
//
// Shutdown: Stop() closes the listeners, waits for in-flight requests to
// complete and write queues to drain (bounded by drain_timeout_ms), then
// closes the remaining connections and joins every thread.

#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/qos/qos_scheduler.h"
#include "src/server/protocol.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace server {

struct ServerOptions {
  // Unix-domain listener path; empty disables the Unix listener. An existing
  // socket file at this path is unlinked on Start.
  std::string unix_path;
  // TCP listener port on 127.0.0.1; -1 disables TCP, 0 binds an ephemeral
  // port (read it back via Server::tcp_port()).
  int tcp_port = -1;
  int workers = 2;
  size_t max_frame_bytes = kMaxFrameBytes;
  // Write-queue bound per connection; reading pauses above it.
  size_t max_conn_queued_bytes = 4u << 20;
  // In-flight (decoded, not yet responded) request bound per connection.
  size_t max_conn_inflight = 128;
  uint64_t drain_timeout_ms = 5000;
  // The NVMM device's tenant scheduler (bed->nvmm->qos()); null when QoS is
  // off. When set, each session's hello-negotiated tenant id is installed as
  // the worker thread's charge context around request execution, and hello
  // weight requests are forwarded to the scheduler.
  qos::QosScheduler* qos = nullptr;
};

class Server {
 public:
  // `vfs` must outlive the server and stay mounted while it serves.
  Server(Vfs* vfs, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  // Graceful drain, idempotent. Safe to call concurrently with serving.
  void Stop();

  // Bound TCP port (valid after Start when tcp_port >= 0 was requested).
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  StatsRegistry& stats() { return stats_; }
  uint64_t active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }

 private:
  // Client-fd -> Vfs-fd map for one connection. Destroyed when the last
  // reference (connection table or in-flight request) drops; the destructor
  // closes every Vfs fd still registered.
  class Session {
   public:
    explicit Session(Vfs* vfs) : vfs_(vfs) {}
    ~Session();

    // Registers an open Vfs fd, returning the client-visible fd.
    int Register(int vfs_fd);
    // Client fd -> Vfs fd; -1 if unknown.
    int Translate(int client_fd) const;
    // Removes the mapping, returning the Vfs fd (-1 if unknown). The caller
    // closes the Vfs fd.
    int Release(int client_fd);
    size_t open_count() const;

    // Tenant identity negotiated by kHello; kSystemTenant until then. Atomic
    // because workers read it on every request while another request on the
    // same connection may be re-negotiating.
    qos::TenantId tenant() const { return tenant_.load(std::memory_order_relaxed); }
    void set_tenant(qos::TenantId id) { tenant_.store(id, std::memory_order_relaxed); }

   private:
    Vfs* vfs_;
    std::atomic<uint32_t> tenant_{qos::kSystemTenant};
    mutable std::mutex mu_;
    int next_client_fd_ = 3;
    std::unordered_map<int, int> fds_;
  };

  struct Connection {
    int sock = -1;
    std::shared_ptr<Session> session;
    // Guards everything below plus writes to `sock`'s stream.
    std::mutex mu;
    std::string rbuf;          // bytes read, not yet sliced into frames
    std::deque<std::string> outq;
    size_t out_head = 0;       // bytes of outq.front() already written
    size_t queued_bytes = 0;
    size_t inflight = 0;       // decoded requests not yet responded to
    bool want_write = false;   // EPOLLOUT armed
    bool paused = false;       // EPOLLIN disarmed (backpressure)
    bool closed = false;
  };

  struct WorkItem {
    std::shared_ptr<Connection> conn;
    Request req;
  };

  void EventLoop();
  void WorkerLoop();

  void AcceptReady(int listen_fd);
  void ConnReadable(const std::shared_ptr<Connection>& conn);
  void ConnWritable(const std::shared_ptr<Connection>& conn);
  // Slices conn->rbuf into frames; returns false on a protocol error (the
  // connection must be closed). Called with conn->mu held.
  bool DrainReadBuffer(const std::shared_ptr<Connection>& conn,
                       std::vector<WorkItem>* ready);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  // Appends a response and flushes opportunistically (worker-side).
  void QueueResponse(const std::shared_ptr<Connection>& conn, const Response& resp);
  // Writes as much of outq as the socket accepts. Returns false on a fatal
  // socket error. Called with conn->mu held.
  bool FlushLocked(Connection& conn);
  // Re-arms/disarms epoll interest for the connection. Called with conn->mu held.
  void UpdateEpollLocked(Connection& conn);
  void MaybeResumeReadingLocked(Connection& conn);

  Response Execute(Session& session, const Request& req);

  Vfs* vfs_;
  ServerOptions options_;
  StatsRegistry stats_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd used to kick the event loop on Stop
  // Atomic: Stop() retires these to -1 while EventLoop/AcceptReady compare
  // event fds against them.
  std::atomic<int> unix_listen_fd_{-1};
  std::atomic<int> tcp_listen_fd_{-1};
  int bound_tcp_port_ = -1;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool queue_shutdown_ = false;

  std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::atomic<uint64_t> active_conns_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Cached per-opcode counters ("srv_op_<name>").
  std::vector<std::atomic<uint64_t>*> op_counters_;
  std::atomic<uint64_t>* queued_bytes_counter_ = nullptr;
};

}  // namespace server
}  // namespace hinfs

#endif  // SRC_SERVER_SERVER_H_
