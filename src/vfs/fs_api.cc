#include "src/vfs/fs_api.h"

namespace hinfs {

Status FsApi::WriteFile(std::string_view path, std::string_view contents) {
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kCreate | kWrOnly | kTrunc));
  Result<size_t> n = Write(fd, contents.data(), contents.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  if (*n != contents.size()) {
    return Status(ErrorCode::kIoError, "short write");
  }
  return close_st;
}

Result<std::string> FsApi::ReadFileToString(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, Stat(path));
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kRdOnly));
  std::string out(attr.size, '\0');
  Result<size_t> n = Read(fd, out.data(), out.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  out.resize(*n);
  if (!close_st.ok()) {
    return close_st;
  }
  return out;
}

}  // namespace hinfs
