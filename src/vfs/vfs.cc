#include "src/vfs/vfs.h"

#include <algorithm>

namespace hinfs {
namespace {

// Dentry cache key: dir ino rendered into the name (cheap, collision-free).
std::string DcacheKey(uint64_t dir_ino, std::string_view name) {
  std::string key = std::to_string(dir_ino);
  key.push_back('/');
  key.append(name);
  return key;
}

}  // namespace

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(ErrorCode::kInvalidArgument, "path must be absolute");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    if (j > i) {
      std::string_view comp = path.substr(i, j - i);
      if (comp.size() > kMaxNameLen) {
        return Status(ErrorCode::kNameTooLong, std::string(comp));
      }
      if (comp == "." || comp == "..") {
        return Status(ErrorCode::kInvalidArgument, "dot components not supported");
      }
      parts.emplace_back(comp);
    }
    i = j + 1;
  }
  return parts;
}

Vfs::Vfs(FileSystem* fs, bool sync_mount) : fs_(fs), sync_mount_(sync_mount) {}

Vfs::~Vfs() = default;

Result<uint64_t> Vfs::LookupCached(uint64_t dir_ino, std::string_view name) {
  const std::string key = DcacheKey(dir_ino, name);
  {
    std::shared_lock lock(dcache_mu_);
    auto it = dcache_.find(key);
    if (it != dcache_.end()) {
      return it->second;
    }
  }
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, fs_->Lookup(dir_ino, name));
  {
    std::unique_lock lock(dcache_mu_);
    dcache_[key] = ino;
  }
  return ino;
}

void Vfs::InvalidateDentry(uint64_t dir_ino, std::string_view name) {
  std::unique_lock lock(dcache_mu_);
  dcache_.erase(DcacheKey(dir_ino, name));
}

Result<uint64_t> Vfs::Resolve(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  uint64_t ino = kRootIno;
  for (const std::string& comp : parts) {
    HINFS_ASSIGN_OR_RETURN(ino, LookupCached(ino, comp));
  }
  return ino;
}

Result<uint64_t> Vfs::ResolveParent(std::string_view path, std::string* leaf) {
  HINFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status(ErrorCode::kInvalidArgument, "path has no final component");
  }
  *leaf = parts.back();
  uint64_t ino = kRootIno;
  for (size_t i = 0; i + 1 < parts.size(); i++) {
    HINFS_ASSIGN_OR_RETURN(ino, LookupCached(ino, parts[i]));
  }
  return ino;
}

Result<int> Vfs::Open(std::string_view path, uint32_t flags) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));

  uint64_t ino;
  Result<uint64_t> looked = LookupCached(dir_ino, leaf);
  if (looked.ok()) {
    ino = *looked;
  } else if (looked.status().code() == ErrorCode::kNotFound && (flags & kCreate) != 0) {
    Result<uint64_t> created = fs_->Create(dir_ino, leaf, FileType::kRegular);
    if (!created.ok()) {
      return created.status();
    }
    ino = *created;
  } else {
    return looked.status();
  }

  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, fs_->GetAttr(ino));
  if (attr.type == FileType::kDirectory) {
    return Status(ErrorCode::kIsDir, std::string(path));
  }
  if ((flags & kTrunc) != 0 && attr.size > 0) {
    HINFS_RETURN_IF_ERROR(fs_->Truncate(ino, 0));
    attr.size = 0;
  }

  FdEntry e;
  e.ino = ino;
  e.flags = flags;
  e.offset = (flags & kAppend) != 0 ? attr.size : 0;

  std::lock_guard<std::mutex> lock(fd_mu_);
  const int fd = next_fd_++;
  fds_[fd] = e;
  return fd;
}

Status Vfs::Close(int fd) {
  std::lock_guard<std::mutex> lock(fd_mu_);
  return fds_.erase(fd) != 0 ? OkStatus() : Status(ErrorCode::kBadFd);
}

Result<size_t> Vfs::Read(int fd, void* dst, size_t len) {
  FdEntry e;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
    e = it->second;
  }
  HINFS_ASSIGN_OR_RETURN(size_t n, fs_->Read(e.ino, e.offset, dst, len));
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it != fds_.end()) {
      it->second.offset = e.offset + n;
    }
  }
  return n;
}

Result<size_t> Vfs::Pread(int fd, void* dst, size_t len, uint64_t offset) {
  uint64_t ino;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
    ino = it->second.ino;
  }
  return fs_->Read(ino, offset, dst, len);
}

Result<size_t> Vfs::WriteInternal(FdEntry& e, const void* src, size_t len, uint64_t offset,
                                  bool advance) {
  const WriteOptions options = sync_mount_ || (e.flags & kSync) != 0
                                   ? WriteOptions::EagerPersistent()
                                   : WriteOptions::Buffered();
  HINFS_ASSIGN_OR_RETURN(size_t n, fs_->Write(e.ino, offset, src, len, options));
  if (advance) {
    e.offset = offset + n;
  }
  return n;
}

Result<size_t> Vfs::Write(int fd, const void* src, size_t len) {
  std::unique_lock<std::mutex> lock(fd_mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status(ErrorCode::kBadFd);
  }
  FdEntry e = it->second;
  uint64_t offset = e.offset;
  if ((e.flags & kAppend) != 0) {
    lock.unlock();
    HINFS_ASSIGN_OR_RETURN(InodeAttr attr, fs_->GetAttr(e.ino));
    offset = attr.size;
    lock.lock();
    it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
  }
  lock.unlock();
  HINFS_ASSIGN_OR_RETURN(size_t n, WriteInternal(e, src, len, offset, /*advance=*/true));
  lock.lock();
  it = fds_.find(fd);
  if (it != fds_.end()) {
    it->second.offset = offset + n;
  }
  return n;
}

Result<size_t> Vfs::Pwrite(int fd, const void* src, size_t len, uint64_t offset) {
  FdEntry e;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
    e = it->second;
  }
  return WriteInternal(e, src, len, offset, /*advance=*/false);
}

Result<uint64_t> Vfs::Seek(int fd, uint64_t offset) {
  std::lock_guard<std::mutex> lock(fd_mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status(ErrorCode::kBadFd);
  }
  it->second.offset = offset;
  return offset;
}

Status Vfs::Fsync(int fd) {
  uint64_t ino;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
    ino = it->second.ino;
  }
  return fs_->Fsync(ino);
}

Status Vfs::Ftruncate(int fd, uint64_t size) {
  uint64_t ino;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
    ino = it->second.ino;
  }
  return fs_->Truncate(ino, size);
}

Result<InodeAttr> Vfs::Fstat(int fd) {
  uint64_t ino;
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Status(ErrorCode::kBadFd);
    }
    ino = it->second.ino;
  }
  return fs_->GetAttr(ino);
}

Status Vfs::Mkdir(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  Result<uint64_t> created = fs_->Create(dir_ino, leaf, FileType::kDirectory);
  return created.ok() ? OkStatus() : created.status();
}

Status Vfs::Rmdir(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  InvalidateDentry(dir_ino, leaf);
  HINFS_RETURN_IF_ERROR(fs_->Unlink(dir_ino, leaf));
  InvalidateDentry(dir_ino, leaf);
  return OkStatus();
}

Status Vfs::Unlink(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  // Invalidate on both sides of the FS call: before, so concurrent lookups
  // re-resolve; after, so a lookup that raced the unlink does not leave a
  // stale entry behind.
  InvalidateDentry(dir_ino, leaf);
  HINFS_RETURN_IF_ERROR(fs_->Unlink(dir_ino, leaf));
  InvalidateDentry(dir_ino, leaf);
  return OkStatus();
}

Status Vfs::Rename(std::string_view from, std::string_view to) {
  std::string from_leaf;
  std::string to_leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t from_dir, ResolveParent(from, &from_leaf));
  HINFS_ASSIGN_OR_RETURN(uint64_t to_dir, ResolveParent(to, &to_leaf));
  InvalidateDentry(from_dir, from_leaf);
  InvalidateDentry(to_dir, to_leaf);
  HINFS_RETURN_IF_ERROR(fs_->Rename(from_dir, from_leaf, to_dir, to_leaf));
  InvalidateDentry(from_dir, from_leaf);
  InvalidateDentry(to_dir, to_leaf);
  return OkStatus();
}

Result<InodeAttr> Vfs::Stat(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, Resolve(path));
  return fs_->GetAttr(ino);
}

Result<std::vector<DirEntry>> Vfs::ReadDir(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, Resolve(path));
  return fs_->ReadDir(ino);
}

bool Vfs::Exists(std::string_view path) { return Resolve(path).ok(); }

Status Vfs::SyncFs() { return fs_->SyncFs(); }

Status Vfs::Unmount() {
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    fds_.clear();
  }
  {
    std::unique_lock lock(dcache_mu_);
    dcache_.clear();
  }
  return fs_->Unmount();
}

Status Vfs::WriteFile(std::string_view path, std::string_view contents) {
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kCreate | kWrOnly | kTrunc));
  Result<size_t> n = Write(fd, contents.data(), contents.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  if (*n != contents.size()) {
    return Status(ErrorCode::kIoError, "short write");
  }
  return close_st;
}

Result<std::string> Vfs::ReadFileToString(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, Stat(path));
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kRdOnly));
  std::string out(attr.size, '\0');
  Result<size_t> n = Read(fd, out.data(), out.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  out.resize(*n);
  if (!close_st.ok()) {
    return close_st;
  }
  return out;
}

}  // namespace hinfs
