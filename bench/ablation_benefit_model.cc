// Ablation: Buffer Benefit Model vs the two trivial policies — buffer
// everything (HiNFS-WB) and buffer nothing (PMFS ~ always-eager) — on the
// sync-heavy workloads where the model matters (paper §5.3's HiNFS-WB rows).

#include "bench/bench_common.h"
#include "src/workloads/macro.h"
#include "src/workloads/trace.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Ablation", "eager/lazy classification: model vs always-lazy vs always-eager");

  const FsKind kinds[] = {FsKind::kHinfs, FsKind::kHinfsWb, FsKind::kPmfs};
  const char* labels[] = {"model(HiNFS)", "always-lazy", "always-eager"};
  std::vector<BenchJsonRow> rows;

  std::printf("[TPCC trace] replay time\n");
  {
    TraceProfile profile = TpccTraceProfile();
    profile.num_ops = ScaledOps(25000);
    const auto trace = SynthesizeTrace(profile);
    for (size_t i = 0; i < 3; i++) {
      auto bed = MakeTestBed(kinds[i], PaperBedConfig(512ull << 20, 6ull << 20));
      if (!bed.ok()) {
        return 1;
      }
      auto bd = ReplayTrace((*bed)->vfs.get(), trace);
      if (!bd.ok()) {
        std::fprintf(stderr, "%s\n", bd.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-14s %8.1f ms (write %6.1f, fsync %6.1f)\n", labels[i],
                  bd->TotalNs() / 1e6, bd->write_ns / 1e6, bd->fsync_ns / 1e6);
      std::fflush(stdout);
      rows.push_back({labels[i], "tpcc-trace", "num_ops",
                      static_cast<double>(trace.size()), bd->TotalNs() / 1e6, "total_ms"});
      (void)(*bed)->vfs->Unmount();
    }
  }

  std::printf("[varmail] ops/s\n");
  for (size_t i = 0; i < 3; i++) {
    FilebenchConfig cfg = PaperFilebenchConfig();
    cfg.io_size = 16 * 1024;
    auto result = RunPersonalityOn(kinds[i], Personality::kVarmail, PaperBedConfig(), cfg);
    if (!result.ok()) {
      return 1;
    }
    std::printf("  %-14s %8.0f ops/s\n", labels[i], result->OpsPerSec());
    std::fflush(stdout);
    rows.push_back({labels[i], "varmail", "threads", 2, result->OpsPerSec(), "ops_per_sec"});
  }

  std::printf("[fileserver] ops/s (lazy-friendly: model should match always-lazy)\n");
  for (size_t i = 0; i < 3; i++) {
    auto result = RunPersonalityOn(kinds[i], Personality::kFileserver, PaperBedConfig(),
                                   PaperFilebenchConfig());
    if (!result.ok()) {
      return 1;
    }
    std::printf("  %-14s %8.0f ops/s\n", labels[i], result->OpsPerSec());
    std::fflush(stdout);
    rows.push_back({labels[i], "fileserver", "threads", 2, result->OpsPerSec(),
                    "ops_per_sec"});
  }
  std::printf("\nexpected: the model tracks the better trivial policy on each workload\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
