// Vfs: POSIX-like syscall front-end over a mounted FileSystem.
//
// Provides path resolution with a dentry cache (the kernel dcache analogue),
// a file-descriptor table with per-fd offsets and open flags, and the syscall
// surface the workloads use: open/close/read/write/pread/pwrite/fsync/unlink/
// mkdir/rmdir/rename/stat/readdir/truncate.
//
// Scalability: the read path is lock-free end to end; mutations stay sharded:
//  - the fd table is a per-shard open-addressed array of (atomic fd,
//    atomic FdState*) slots. Lookups take NO lock: every fd-based syscall
//    pins an EpochGuard, probes the published slot array, and runs against
//    the raw FdState pointer; Close()/table growth retire the old state/array
//    through epoch-based reclamation instead of freeing it, so a racing
//    lookup never touches freed memory. fd numbers come from a single atomic
//    counter and are never reused, which is what makes a lock-free miss
//    conclusive (kBadFd): an fd the probe can't find was either never issued
//    or already closed, and callers that race Close with use get kBadFd
//    exactly as POSIX allows. Mutations (open/close/grow) still serialize on
//    the shard mutex.
//  - the per-fd offset is a bare atomic. Reads on read-only fds advance it
//    with a compare-exchange loop (snapshot offset -> FS read -> publish
//    offset+n, retrying the read at the new offset on CAS failure), so
//    concurrent readers sharing one fd proceed in parallel yet still consume
//    disjoint, gapless ranges. fds opened for writing (kWrOnly/kRdWr) keep
//    the per-fd pos_mu across offset-dependent ops: mixed readers/writers on
//    one fd stay serialized, as do O_APPEND size lookups.
//  - the dcache is sharded by (dir_ino, name) hash and uses a heterogeneous
//    (transparent) hash so the hit path probes with a string_view: zero
//    allocations per component on a cache hit.

#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/epoch.h"
#include "src/vfs/file_system.h"

namespace hinfs {

// open(2) flag bits (subset the workloads need).
enum OpenFlags : uint32_t {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,
  kTrunc = 0x200,
  kAppend = 0x400,
  kSync = 0x1000,  // O_SYNC: every write is eager-persistent
};

class Vfs {
 public:
  // Mounts `fs` at "/". `sync_mount` makes every write on this mount
  // eager-persistent (mount -o sync).
  explicit Vfs(FileSystem* fs, bool sync_mount = false);
  ~Vfs();

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // --- fd-based API -----------------------------------------------------------
  Result<int> Open(std::string_view path, uint32_t flags);
  Status Close(int fd);
  // Sequential read/write advancing the fd offset.
  Result<size_t> Read(int fd, void* dst, size_t len);
  Result<size_t> Write(int fd, const void* src, size_t len);
  // Positional read/write (offset is explicit; fd offset unchanged).
  Result<size_t> Pread(int fd, void* dst, size_t len, uint64_t offset);
  Result<size_t> Pwrite(int fd, const void* src, size_t len, uint64_t offset);
  Result<uint64_t> Seek(int fd, uint64_t offset);
  Status Fsync(int fd);
  // fdatasync(2): like Fsync but may skip pure timestamp metadata.
  Status Fdatasync(int fd);
  // The general form both of the above forward to.
  Status Sync(int fd, const SyncOptions& options);
  Status Ftruncate(int fd, uint64_t size);
  Result<InodeAttr> Fstat(int fd);

  // --- path-based API -----------------------------------------------------------
  Status Mkdir(std::string_view path);
  Status Rmdir(std::string_view path);
  Status Unlink(std::string_view path);
  Status Rename(std::string_view from, std::string_view to);
  Result<InodeAttr> Stat(std::string_view path);
  Result<std::vector<DirEntry>> ReadDir(std::string_view path);
  // True/false when the path can be resolved / is absent; a Status for real
  // failures (invalid path, I/O error) instead of swallowing them into false.
  Result<bool> Exists(std::string_view path);

  // --- whole-FS ----------------------------------------------------------------
  Status SyncFs();
  // Flushes and unmounts; all fds are invalidated.
  Status Unmount();

  FileSystem* fs() { return fs_; }

  // Number of currently open fds across all shards. Session owners (the
  // hinfsd server maps per-connection client fds onto Vfs fds) use this as
  // the leak check: after every session is torn down the count must return
  // to its pre-serving baseline.
  size_t OpenFdCount() const;

  // Convenience for tests: write/read an entire small file by path.
  Status WriteFile(std::string_view path, std::string_view contents);
  Result<std::string> ReadFileToString(std::string_view path);

 private:
  // Per-open-file state. ino and flags are immutable after Open. The offset
  // is atomic: read-only fds advance it via Vfs::Read's compare-exchange
  // protocol with no lock; write-capable fds additionally serialize their
  // offset-dependent ops (Read/Write/Seek) on pos_mu so interleaved
  // reads/writes on one fd keep POSIX read/write atomicity. Seek always
  // takes pos_mu so its store is ordered against a writer's read-modify-write
  // of the offset; a plain store racing the lock-free CAS loop is fine (the
  // CAS either wins against the pre-seek value or retries at the new one).
  struct FdState {
    uint64_t ino = 0;
    uint32_t flags = 0;
    std::mutex pos_mu;
    std::atomic<uint64_t> offset{0};
  };

  // One shard of the fd table: an open-addressed (atomic fd, atomic state*)
  // array. Lookups probe the published array with no lock (callers hold an
  // EpochGuard); insert/erase/grow serialize on the shard mutex. Publication
  // order on insert is state-then-fd (release), so a reader that observes the
  // fd also observes its state; erase tombstones the fd but leaves the state
  // pointer in place for concurrently-probing readers and retires the FdState
  // through `retired` instead of deleting it. Replaced slot arrays are
  // retired the same way.
  struct alignas(64) FdShard {
    static constexpr int kEmpty = 0;
    static constexpr int kTombstone = -1;
    struct Slot {
      std::atomic<int> fd{kEmpty};
      std::atomic<FdState*> state{nullptr};
    };
    struct SlotArray {
      explicit SlotArray(size_t n) : mask(n - 1), slots(new Slot[n]) {}
      const size_t mask;  // n - 1; n is a power of two
      std::unique_ptr<Slot[]> slots;
    };
    mutable std::mutex mu;                 // guards insert/erase/grow + used/occupied
    std::atomic<SlotArray*> table{nullptr};  // current array; readers load acquire
    std::unique_ptr<SlotArray> table_owner;  // owns *table
    size_t used = 0;      // live entries
    size_t occupied = 0;  // live + tombstones (drives resize)
  };
  static constexpr size_t kFdShards = 16;  // power of two

  FdShard& ShardForFd(int fd) { return fd_shards_[static_cast<uint32_t>(fd) % kFdShards]; }
  static size_t ProbeStart(int fd, size_t capacity) {
    return (static_cast<uint32_t>(fd) * 2654435761u) & (capacity - 1);
  }
  void FdInsert(int fd, FdState* state);
  static void FdInsertIntoSlots(FdShard::SlotArray& arr, int fd, FdState* state);
  // Lock-free probe; null if fd is not open. The caller must hold an
  // EpochGuard for as long as it uses the returned pointer.
  FdState* FdLookup(int fd);
  bool FdErase(int fd);

  // --- dcache -----------------------------------------------------------------
  // Keyed by (dir_ino, name). The stored key owns its name; lookups use a
  // borrowed string_view via the transparent hash/equality below, so the hit
  // path allocates nothing.
  struct DentryKey {
    uint64_t dir_ino;
    std::string name;
  };
  struct DentryRef {
    uint64_t dir_ino;
    std::string_view name;
  };
  struct DentryHash {
    using is_transparent = void;
    size_t operator()(const DentryRef& r) const {
      uint64_t h = std::hash<std::string_view>{}(r.name);
      h ^= (r.dir_ino + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
      return static_cast<size_t>(h);
    }
    size_t operator()(const DentryKey& k) const {
      return (*this)(DentryRef{k.dir_ino, k.name});
    }
  };
  struct DentryEq {
    using is_transparent = void;
    static DentryRef AsRef(const DentryKey& k) { return DentryRef{k.dir_ino, k.name}; }
    static DentryRef AsRef(const DentryRef& r) { return r; }
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      const DentryRef ra = AsRef(a), rb = AsRef(b);
      return ra.dir_ino == rb.dir_ino && ra.name == rb.name;
    }
  };
  struct alignas(64) DcacheShard {
    std::shared_mutex mu;
    std::unordered_map<DentryKey, uint64_t, DentryHash, DentryEq> map;
  };
  static constexpr size_t kDcacheShards = 16;  // power of two

  DcacheShard& ShardForDentry(const DentryRef& ref) {
    return dcache_shards_[DentryHash{}(ref) % kDcacheShards];
  }

  // Resolves `path` to an inode; with `want_parent`, resolves the parent
  // directory and returns the final component in `leaf`.
  Result<uint64_t> Resolve(std::string_view path);
  Result<uint64_t> ResolveParent(std::string_view path, std::string* leaf);
  Result<uint64_t> LookupCached(uint64_t dir_ino, std::string_view name);
  void InvalidateDentry(uint64_t dir_ino, std::string_view name);

  Result<size_t> WriteInternal(uint64_t ino, uint32_t flags, const void* src, size_t len,
                               uint64_t offset);

  FileSystem* fs_;
  bool sync_mount_;

  std::atomic<int> next_fd_{3};
  std::vector<FdShard> fd_shards_{kFdShards};
  // Closed FdStates and replaced slot arrays wait here until every syscall
  // that might still hold a pointer into them has unpinned.
  RetireList fd_retired_;
  std::vector<DcacheShard> dcache_shards_{kDcacheShards};
};

// Splits "/a/b/c" into {"a", "b", "c"}; rejects empty components and names
// longer than kMaxNameLen.
Result<std::vector<std::string>> SplitPath(std::string_view path);

}  // namespace hinfs

#endif  // SRC_VFS_VFS_H_
