#include "src/fs/pmfs/pmfs_fs.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace hinfs {
namespace {

// Number of file blocks addressable by a radix tree of height h.
uint64_t RadixCapacity(uint8_t height) {
  uint64_t cap = 1;
  for (uint8_t i = 0; i < height; i++) {
    cap *= kRadixFanout;
  }
  return cap;
}

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }

}  // namespace

PmfsFs::PmfsFs(NvmmDevice* nvmm) : nvmm_(nvmm) {}

Result<std::unique_ptr<PmfsFs>> PmfsFs::Format(NvmmDevice* nvmm, const PmfsOptions& options) {
  std::unique_ptr<PmfsFs> fs(new PmfsFs(nvmm));
  HINFS_RETURN_IF_ERROR(fs->InitFormat(options));
  return fs;
}

Result<std::unique_ptr<PmfsFs>> PmfsFs::Mount(NvmmDevice* nvmm) {
  std::unique_ptr<PmfsFs> fs(new PmfsFs(nvmm));
  HINFS_RETURN_IF_ERROR(fs->InitMount());
  return fs;
}

Status PmfsFs::InitFormat(const PmfsOptions& options) {
  const uint64_t dev_bytes =
      options.device_bytes != 0 ? std::min(options.device_bytes, nvmm_->size()) : nvmm_->size();

  PmfsSuperblock sb{};
  sb.magic = kPmfsMagic;
  sb.device_bytes = dev_bytes;
  sb.journal_off = AlignUp(sizeof(PmfsSuperblock), kBlockSize);
  sb.journal_bytes = options.journal_bytes;
  sb.inode_table_off = AlignUp(sb.journal_off + sb.journal_bytes, kBlockSize);
  sb.max_inodes = options.max_inodes;
  sb.bitmap_off = AlignUp(sb.inode_table_off + sb.max_inodes * sizeof(PmfsInode), kBlockSize);

  // Solve for the number of data blocks that fit after the bitmap.
  const uint64_t bitmap_budget_end = dev_bytes;
  uint64_t data_blocks = (bitmap_budget_end - sb.bitmap_off) / kBlockSize;
  uint64_t bitmap_bytes;
  uint64_t data_off;
  while (true) {
    bitmap_bytes = (data_blocks + 7) / 8;
    data_off = AlignUp(sb.bitmap_off + bitmap_bytes, kBlockSize);
    if (data_off + data_blocks * kBlockSize <= dev_bytes) {
      break;
    }
    data_blocks--;
    if (data_blocks == 0) {
      return Status(ErrorCode::kNoSpace, "device too small to format");
    }
  }
  sb.data_off = data_off;
  sb.data_blocks = data_blocks;
  sb.clean_unmount = 0;
  sb_ = sb;

  journal_ = std::make_unique<Journal>(nvmm_, sb.journal_off, sb.journal_bytes);
  HINFS_RETURN_IF_ERROR(journal_->Format());
  alloc_ = std::make_unique<BlockAllocator>(nvmm_, sb.bitmap_off, sb.data_blocks);
  HINFS_RETURN_IF_ERROR(alloc_->Format());

  // Zero the inode table.
  {
    PmfsInode zero{};
    for (uint64_t i = 0; i < sb.max_inodes; i++) {
      HINFS_RETURN_IF_ERROR(
          nvmm_->StorePersistent(sb.inode_table_off + i * sizeof(PmfsInode), &zero, sizeof(zero)));
    }
  }

  // Create the root directory in slot 0 (ino 1).
  {
    PmfsInode root{};
    root.ino = kRootIno;
    root.type = static_cast<uint8_t>(FileType::kDirectory);
    root.nlink = 2;
    root.mtime_ns = MonotonicNowNs();
    HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(InodeAddr(kRootIno), &root, sizeof(root)));
  }

  HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(0, &sb_, sizeof(sb_)));

  free_inos_.clear();
  for (uint64_t ino = sb.max_inodes; ino >= 2; ino--) {
    free_inos_.push_back(ino);
  }
  return OkStatus();
}

Status PmfsFs::InitMount() {
  HINFS_RETURN_IF_ERROR(nvmm_->Load(0, &sb_, sizeof(sb_)));
  if (sb_.magic != kPmfsMagic) {
    return Status(ErrorCode::kCorrupt, "bad superblock magic");
  }
  journal_ = std::make_unique<Journal>(nvmm_, sb_.journal_off, sb_.journal_bytes);
  HINFS_ASSIGN_OR_RETURN(uint64_t rolled_back, journal_->Recover());
  (void)rolled_back;
  alloc_ = std::make_unique<BlockAllocator>(nvmm_, sb_.bitmap_off, sb_.data_blocks);
  HINFS_RETURN_IF_ERROR(alloc_->LoadFromNvmm());

  // Reclaim orphans: an unlink whose dirent-clear transaction committed but
  // whose slot-free transaction did not (crash between the two) leaves an
  // allocated inode with nlink == 0. Freeing is itself journaled, so this is
  // idempotent across repeated crashes during recovery.
  for (uint64_t ino = 2; ino <= sb_.max_inodes; ino++) {
    PmfsInode inode;
    HINFS_RETURN_IF_ERROR(nvmm_->Load(InodeAddr(ino), &inode, sizeof(inode)));
    if (inode.ino == ino && inode.nlink == 0) {
      HINFS_RETURN_IF_ERROR(FreeFileLocked(ino));
    }
  }

  // Rebuild the free-inode list by scanning the table.
  free_inos_.clear();
  for (uint64_t ino = sb_.max_inodes; ino >= 2; ino--) {
    PmfsInode inode;
    HINFS_RETURN_IF_ERROR(nvmm_->Load(InodeAddr(ino), &inode, sizeof(inode)));
    if (inode.ino == 0) {
      free_inos_.push_back(ino);
    }
  }
  return OkStatus();
}

// --- inode helpers -----------------------------------------------------------

uint64_t PmfsFs::InodeAddr(uint64_t ino) const {
  return sb_.inode_table_off + (ino - 1) * sizeof(PmfsInode);
}

Result<PmfsInode> PmfsFs::LoadInode(uint64_t ino) {
  if (ino == 0 || ino > sb_.max_inodes) {
    return Status(ErrorCode::kInvalidArgument, "bad inode number");
  }
  PmfsInode inode;
  // Word-atomic load: the inode is updated in place by concurrent 8-byte field
  // stores (UpdateInodeU64) and imeta_mu_-guarded cacheline rewrites. Each
  // field reads torn-free old-or-new; the struct is not a snapshot, which is
  // exactly what PMFS promises for in-place metadata on real NVMM.
  HINFS_RETURN_IF_ERROR(nvmm_->LoadAtomic(InodeAddr(ino), &inode, sizeof(inode)));
  if (inode.ino != ino) {
    return Status(ErrorCode::kNotFound, "stale inode");
  }
  return inode;
}

Status PmfsFs::UpdateInodeU64(uint64_t ino, size_t field_offset, uint64_t value) {
  // 8-byte aligned in-place update: atomic on the emulated device, persistent
  // after flush+fence. This is PMFS's cheap path for size/mtime. imeta_mu_
  // orders it against the whole-cacheline read-modify-write updates done by
  // radix growth, which may run on a writeback thread.
  std::lock_guard<std::mutex> lock(imeta_mu_);
  return nvmm_->StoreAtomicPersistent(InodeAddr(ino) + field_offset, &value, sizeof(value));
}

Result<uint64_t> PmfsFs::AllocInode(Transaction& txn, FileType type) {
  uint64_t ino;
  {
    std::lock_guard<std::mutex> lock(ino_mu_);
    if (free_inos_.empty()) {
      return Status(ErrorCode::kNoSpace, "out of inodes");
    }
    ino = free_inos_.back();
    free_inos_.pop_back();
  }
  // Log the (free) slot so a crash before commit returns it to zero, then
  // initialize it in place.
  HINFS_RETURN_IF_ERROR(txn.LogOldValue(InodeAddr(ino), sizeof(PmfsInode)));
  PmfsInode old_slot;
  HINFS_RETURN_IF_ERROR(nvmm_->Load(InodeAddr(ino), &old_slot, sizeof(old_slot)));
  PmfsInode inode{};
  inode.ino = ino;
  inode.type = static_cast<uint8_t>(type);
  inode.nlink = type == FileType::kDirectory ? 2 : 1;
  inode.mtime_ns = MonotonicNowNs();
  inode.generation = old_slot.generation + 1;
  HINFS_RETURN_IF_ERROR(nvmm_->StoreAtomicPersistent(InodeAddr(ino), &inode, sizeof(inode)));
  return ino;
}

// --- radix block index ---------------------------------------------------------

Result<uint64_t> PmfsFs::MapBlock(const PmfsInode& inode, uint64_t file_block) {
  if (inode.radix_height == 0 || file_block >= RadixCapacity(inode.radix_height)) {
    return 0;
  }
  uint64_t node = inode.radix_root;
  for (int level = inode.radix_height - 1; level >= 0; level--) {
    if (node == 0) {
      return 0;
    }
    const uint64_t slot = (file_block / RadixCapacity(static_cast<uint8_t>(level))) % kRadixFanout;
    uint64_t next;
    HINFS_RETURN_IF_ERROR(
        nvmm_->Load(DataBlockAddr(node) + slot * sizeof(uint64_t), &next, sizeof(next)));
    node = next;
  }
  return node;
}

Result<uint64_t> PmfsFs::MapBlockAlloc(Transaction& txn, uint64_t ino, PmfsInode& inode,
                                       uint64_t file_block) {
  std::lock_guard<std::mutex> map_lock(map_mu_);
  // Another thread (a writeback allocation) may have grown the tree since the
  // caller loaded the inode: refresh the mapping fields.
  {
    PmfsInode fresh;
    HINFS_RETURN_IF_ERROR(nvmm_->LoadAtomic(InodeAddr(ino), &fresh, kCachelineSize));
    inode.radix_root = fresh.radix_root;
    inode.radix_height = fresh.radix_height;
  }

  // Grow the tree until file_block is addressable.
  while (inode.radix_height == 0 || file_block >= RadixCapacity(inode.radix_height)) {
    HINFS_ASSIGN_OR_RETURN(uint64_t new_root, alloc_->Alloc(txn));
    // Fresh radix nodes start zeroed (all holes).
    static const std::vector<uint8_t> kZeroBlock(kBlockSize, 0);
    HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(DataBlockAddr(new_root), kZeroBlock.data(),
                                                 kBlockSize));
    if (inode.radix_height > 0) {
      // Old root becomes slot 0 of the new root.
      const uint64_t old_root = inode.radix_root;
      HINFS_RETURN_IF_ERROR(
          nvmm_->StorePersistent(DataBlockAddr(new_root), &old_root, sizeof(old_root)));
    }
    // Journal + update the inode's root/height fields via a fresh
    // read-modify-write so concurrent 8-byte field updates are not clobbered.
    {
      std::lock_guard<std::mutex> ilock(imeta_mu_);
      PmfsInode fresh;
      HINFS_RETURN_IF_ERROR(nvmm_->LoadAtomic(InodeAddr(ino), &fresh, kCachelineSize));
      HINFS_RETURN_IF_ERROR(txn.LogOldValue(InodeAddr(ino), kCachelineSize));
      fresh.radix_root = new_root;
      fresh.radix_height = static_cast<uint8_t>(inode.radix_height + 1);
      HINFS_RETURN_IF_ERROR(nvmm_->StoreAtomicPersistent(InodeAddr(ino), &fresh, kCachelineSize));
    }
    inode.radix_root = new_root;
    inode.radix_height++;
  }

  // Walk down, allocating interior nodes and the leaf data block as needed.
  uint64_t node = inode.radix_root;
  for (int level = inode.radix_height - 1; level >= 0; level--) {
    const uint64_t slot = (file_block / RadixCapacity(static_cast<uint8_t>(level))) % kRadixFanout;
    const uint64_t slot_addr = DataBlockAddr(node) + slot * sizeof(uint64_t);
    uint64_t next;
    HINFS_RETURN_IF_ERROR(nvmm_->Load(slot_addr, &next, sizeof(next)));
    if (next == 0) {
      HINFS_ASSIGN_OR_RETURN(next, alloc_->Alloc(txn));
      if (level > 0) {
        static const std::vector<uint8_t> kZeroBlock(kBlockSize, 0);
        HINFS_RETURN_IF_ERROR(
            nvmm_->StorePersistent(DataBlockAddr(next), kZeroBlock.data(), kBlockSize));
      }
      HINFS_RETURN_IF_ERROR(txn.LogOldValue(slot_addr, sizeof(next)));
      HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(slot_addr, &next, sizeof(next)));
    }
    node = next;
  }
  return node;
}

Status PmfsFs::FreeBlocksFrom(Transaction& txn, uint64_t ino, PmfsInode& inode,
                              uint64_t from_block) {
  std::lock_guard<std::mutex> map_lock(map_mu_);
  if (inode.radix_height == 0) {
    return OkStatus();
  }

  // Collect data blocks >= from_block and, when freeing from 0, the interior
  // nodes as well. Interior pointers are zeroed (journaled) only for partial
  // truncation; on whole-file frees the tree is dropped wholesale.
  struct Walker {
    PmfsFs* fs;
    Transaction* txn;
    uint64_t from_block;
    bool free_everything;

    Status Walk(uint64_t node, uint8_t height, uint64_t base) {
      const uint64_t child_span = RadixCapacity(static_cast<uint8_t>(height - 1));
      for (uint64_t slot = 0; slot < kRadixFanout; slot++) {
        const uint64_t child_base = base + slot * child_span;
        const uint64_t slot_addr = fs->DataBlockAddr(node) + slot * sizeof(uint64_t);
        uint64_t child;
        HINFS_RETURN_IF_ERROR(fs->nvmm_->Load(slot_addr, &child, sizeof(child)));
        if (child == 0) {
          continue;
        }
        if (child_base + child_span <= from_block) {
          // Entirely below the truncation point, but may contain blocks above
          // it at deeper levels only if spans overlap -- they don't; skip.
          continue;
        }
        if (height == 1) {
          if (child_base >= from_block) {
            HINFS_RETURN_IF_ERROR(fs->alloc_->Free(*txn, child));
            if (!free_everything) {
              const uint64_t zero = 0;
              HINFS_RETURN_IF_ERROR(txn->LogOldValue(slot_addr, sizeof(zero)));
              HINFS_RETURN_IF_ERROR(fs->nvmm_->StorePersistent(slot_addr, &zero, sizeof(zero)));
            }
          }
          continue;
        }
        HINFS_RETURN_IF_ERROR(Walk(child, static_cast<uint8_t>(height - 1), child_base));
        if (free_everything) {
          HINFS_RETURN_IF_ERROR(fs->alloc_->Free(*txn, child));
        }
      }
      return OkStatus();
    }
  };

  const bool free_everything = from_block == 0;
  Walker walker{this, &txn, from_block, free_everything};
  HINFS_RETURN_IF_ERROR(walker.Walk(inode.radix_root, inode.radix_height, 0));
  if (free_everything) {
    HINFS_RETURN_IF_ERROR(alloc_->Free(txn, inode.radix_root));
    std::lock_guard<std::mutex> ilock(imeta_mu_);
    PmfsInode fresh;
    HINFS_RETURN_IF_ERROR(nvmm_->LoadAtomic(InodeAddr(ino), &fresh, kCachelineSize));
    HINFS_RETURN_IF_ERROR(txn.LogOldValue(InodeAddr(ino), kCachelineSize));
    fresh.radix_root = 0;
    fresh.radix_height = 0;
    HINFS_RETURN_IF_ERROR(nvmm_->StoreAtomicPersistent(InodeAddr(ino), &fresh, kCachelineSize));
    inode.radix_root = 0;
    inode.radix_height = 0;
  }
  return OkStatus();
}

Result<uint64_t> PmfsFs::EnsureDataBlockAddr(uint64_t ino, uint64_t file_block) {
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  HINFS_ASSIGN_OR_RETURN(uint64_t existing, MapBlock(inode, file_block));
  if (existing != 0) {
    return DataBlockAddr(existing);
  }
  Transaction txn = journal_->Begin();
  Result<uint64_t> blk = MapBlockAlloc(txn, ino, inode, file_block);
  Status zero_st = OkStatus();
  if (blk.ok()) {
    // The caller writes data only after this mapping commits, so a crash in
    // between would expose whatever a previous owner left in the block. Zero
    // it persistently before the commit makes it reachable.
    static const std::vector<uint8_t> kZeroBlock(kBlockSize, 0);
    zero_st = nvmm_->StorePersistent(DataBlockAddr(*blk), kZeroBlock.data(), kBlockSize);
  }
  Status commit_st = txn.Commit();
  if (!blk.ok()) {
    return blk.status();
  }
  HINFS_RETURN_IF_ERROR(zero_st);
  HINFS_RETURN_IF_ERROR(commit_st);
  return DataBlockAddr(*blk);
}

// --- directory helpers ---------------------------------------------------------

uint64_t PmfsFs::DirFreeHint(uint64_t dir_ino) {
  std::lock_guard<std::mutex> lock(dir_hint_mu_);
  auto it = dir_free_hint_.find(dir_ino);
  return it != dir_free_hint_.end() ? it->second : 0;
}

void PmfsFs::RaiseDirFreeHint(uint64_t dir_ino, uint64_t off) {
  std::lock_guard<std::mutex> lock(dir_hint_mu_);
  dir_free_hint_[dir_ino] = off;
}

void PmfsFs::LowerDirFreeHint(uint64_t dir_ino, uint64_t off) {
  std::lock_guard<std::mutex> lock(dir_hint_mu_);
  auto it = dir_free_hint_.find(dir_ino);
  if (it != dir_free_hint_.end() && it->second > off) {
    it->second = off;
  }
}

void PmfsFs::DropDirFreeHint(uint64_t dir_ino) {
  std::lock_guard<std::mutex> lock(dir_hint_mu_);
  dir_free_hint_.erase(dir_ino);
}

Result<uint64_t> PmfsFs::FindDirent(const PmfsInode& dir, std::string_view name,
                                    PmfsDirent* out) {
  const uint64_t nblocks = dir.size / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(dir, fb));
    if (data_block == 0) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(nvmm_->Load(DataBlockAddr(data_block), block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
      const PmfsDirent& d = entries[i];
      if (d.ino != 0 && d.name_len == name.size() &&
          std::memcmp(d.name, name.data(), name.size()) == 0) {
        *out = d;
        return fb * kBlockSize + i * sizeof(PmfsDirent);
      }
    }
  }
  return Status(ErrorCode::kNotFound, std::string(name));
}

Status PmfsFs::AddDirent(Transaction& txn, uint64_t dir_ino, PmfsInode& dir,
                         std::string_view name, uint64_t ino, FileType type) {
  if (name.empty() || name.size() > kMaxDirentName) {
    return Status(ErrorCode::kNameTooLong, std::string(name));
  }

  PmfsDirent dirent{};
  dirent.ino = ino;
  dirent.type = static_cast<uint8_t>(type);
  dirent.name_len = static_cast<uint8_t>(name.size());
  std::memcpy(dirent.name, name.data(), name.size());

  // Look for a free slot in the existing directory blocks, starting at the
  // first-free hint: every slot below it is known occupied, so bulk creation
  // touches each directory block once instead of rescanning from offset 0.
  const uint64_t nblocks = dir.size / kBlockSize;
  const uint64_t hint = std::min(DirFreeHint(dir_ino), dir.size);
  const uint64_t hint_fb = hint / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = hint_fb; fb < nblocks; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(dir, fb));
    if (data_block == 0) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(nvmm_->Load(DataBlockAddr(data_block), block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    size_t i = fb == hint_fb ? (hint % kBlockSize) / sizeof(PmfsDirent) : 0;
    for (; i < kBlockSize / sizeof(PmfsDirent); i++) {
      if (entries[i].ino == 0) {
        const uint64_t addr = DataBlockAddr(data_block) + i * sizeof(PmfsDirent);
        HINFS_RETURN_IF_ERROR(txn.LogOldValue(addr, sizeof(PmfsDirent)));
        HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(addr, &dirent, sizeof(dirent)));
        RaiseDirFreeHint(dir_ino, fb * kBlockSize + (i + 1) * sizeof(PmfsDirent));
        return OkStatus();
      }
    }
  }

  // Extend the directory by one block.
  HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlockAlloc(txn, dir_ino, dir, nblocks));
  static const std::vector<uint8_t> kZeroBlock(kBlockSize, 0);
  HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(DataBlockAddr(data_block), kZeroBlock.data(),
                                               kBlockSize));
  HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(DataBlockAddr(data_block), &dirent, sizeof(dirent)));
  dir.size += kBlockSize;
  HINFS_RETURN_IF_ERROR(txn.LogOldValue(InodeAddr(dir_ino) + offsetof(PmfsInode, size), 8));
  HINFS_RETURN_IF_ERROR(UpdateInodeU64(dir_ino, offsetof(PmfsInode, size), dir.size));
  RaiseDirFreeHint(dir_ino, nblocks * kBlockSize + sizeof(PmfsDirent));
  return OkStatus();
}

Status PmfsFs::ClearDirentAt(Transaction& txn, uint64_t dir_ino, const PmfsInode& dir,
                             uint64_t dirent_off) {
  HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(dir, dirent_off / kBlockSize));
  if (data_block == 0) {
    return Status(ErrorCode::kCorrupt, "dirent block is a hole");
  }
  const uint64_t addr = DataBlockAddr(data_block) + dirent_off % kBlockSize;
  HINFS_RETURN_IF_ERROR(txn.LogOldValue(addr, sizeof(PmfsDirent)));
  PmfsDirent zero{};
  HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(addr, &zero, sizeof(zero)));
  LowerDirFreeHint(dir_ino, dirent_off);
  return OkStatus();
}

Result<bool> PmfsFs::DirIsEmpty(const PmfsInode& dir) {
  const uint64_t nblocks = dir.size / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(dir, fb));
    if (data_block == 0) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(nvmm_->Load(DataBlockAddr(data_block), block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
      if (entries[i].ino != 0) {
        return false;
      }
    }
  }
  return true;
}

// --- namespace operations -------------------------------------------------------

Result<uint64_t> PmfsFs::Lookup(uint64_t dir_ino, std::string_view name) {
  std::shared_lock lock(ns_mu_);
  HINFS_ASSIGN_OR_RETURN(PmfsInode dir, LoadInode(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  PmfsDirent dirent;
  HINFS_ASSIGN_OR_RETURN(uint64_t off, FindDirent(dir, name, &dirent));
  (void)off;
  return dirent.ino;
}

Result<uint64_t> PmfsFs::Create(uint64_t dir_ino, std::string_view name, FileType type) {
  std::unique_lock lock(ns_mu_);
  HINFS_ASSIGN_OR_RETURN(PmfsInode dir, LoadInode(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  PmfsDirent existing;
  if (FindDirent(dir, name, &existing).ok()) {
    return Status(ErrorCode::kExists, std::string(name));
  }

  Transaction txn = journal_->Begin();
  Result<uint64_t> ino = AllocInode(txn, type);
  if (!ino.ok()) {
    // The transaction must still be closed so the journal's active count drops.
    (void)txn.Commit();
    return ino.status();
  }
  Status st = AddDirent(txn, dir_ino, dir, name, *ino, type);
  HINFS_RETURN_IF_ERROR(txn.Commit());
  HINFS_RETURN_IF_ERROR(st);
  HINFS_RETURN_IF_ERROR(UpdateInodeU64(dir_ino, offsetof(PmfsInode, mtime_ns), MonotonicNowNs()));
  return *ino;
}

Status PmfsFs::FreeFileLocked(uint64_t ino) {
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  Transaction txn = journal_->Begin();
  Status st = FreeBlocksFrom(txn, ino, inode, 0);
  if (st.ok()) {
    // Clear the inode slot (first cacheline is enough: the ino field gates it).
    st = txn.LogOldValue(InodeAddr(ino), kCachelineSize);
  }
  if (st.ok()) {
    PmfsInode zero{};
    st = nvmm_->StoreAtomicPersistent(InodeAddr(ino), &zero, kCachelineSize);
  }
  HINFS_RETURN_IF_ERROR(txn.Commit());
  HINFS_RETURN_IF_ERROR(st);
  if (inode.type == static_cast<uint8_t>(FileType::kDirectory)) {
    // The ino can be recycled as a fresh directory; a stale hint would make
    // AddDirent skip genuinely free slots.
    DropDirFreeHint(ino);
  }
  std::lock_guard<std::mutex> ilock(ino_mu_);
  free_inos_.push_back(ino);
  return OkStatus();
}

Status PmfsFs::MarkInodeOrphaned(Transaction& txn, uint64_t ino) {
  // Log the inode's first cacheline (it covers nlink) so a crash before the
  // transaction commits rolls the link count back together with the dirent,
  // then persist nlink = 0 in place. nlink is a u32 at offset 12, so the
  // atomic write targets the containing 8-byte word.
  HINFS_RETURN_IF_ERROR(txn.LogOldValue(InodeAddr(ino), kCachelineSize));
  constexpr size_t kWordOff = offsetof(PmfsInode, nlink) & ~size_t{7};
  static_assert(offsetof(PmfsInode, nlink) - kWordOff == 4, "nlink in high half");
  std::lock_guard<std::mutex> lock(imeta_mu_);
  uint64_t word;
  HINFS_RETURN_IF_ERROR(nvmm_->LoadAtomic(InodeAddr(ino) + kWordOff, &word, sizeof(word)));
  word &= 0xFFFFFFFFull;  // clear nlink, keep type/radix_height/reserved0
  return nvmm_->StoreAtomicPersistent(InodeAddr(ino) + kWordOff, &word, sizeof(word));
}

Status PmfsFs::UnlinkLocked(uint64_t dir_ino, std::string_view name) {
  HINFS_ASSIGN_OR_RETURN(PmfsInode dir, LoadInode(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  PmfsDirent dirent;
  HINFS_ASSIGN_OR_RETURN(uint64_t dirent_off, FindDirent(dir, name, &dirent));

  HINFS_ASSIGN_OR_RETURN(PmfsInode child, LoadInode(dirent.ino));
  if (child.type == static_cast<uint8_t>(FileType::kDirectory)) {
    HINFS_ASSIGN_OR_RETURN(bool empty, DirIsEmpty(child));
    if (!empty) {
      return Status(ErrorCode::kNotEmpty, std::string(name));
    }
  }

  // Remove the name and persist nlink = 0 in one transaction, then drop the
  // file in a second one. A crash between the two leaves an orphan inode but
  // never a corrupt name; the nlink = 0 marker lets mount-time recovery
  // reclaim the orphan (ext4-style orphan processing), so the leak is bounded
  // to the window before the next mount.
  {
    Transaction txn = journal_->Begin();
    Status st = ClearDirentAt(txn, dir_ino, dir, dirent_off);
    if (st.ok()) {
      st = MarkInodeOrphaned(txn, dirent.ino);
    }
    HINFS_RETURN_IF_ERROR(txn.Commit());
    HINFS_RETURN_IF_ERROR(st);
  }

  std::unique_lock data_lock(StripeFor(dirent.ino));
  HINFS_RETURN_IF_ERROR(FreeFileLocked(dirent.ino));
  data_lock.unlock();

  return UpdateInodeU64(dir_ino, offsetof(PmfsInode, mtime_ns), MonotonicNowNs());
}

Status PmfsFs::Unlink(uint64_t dir_ino, std::string_view name) {
  ScopedTimer t(stats_.Counter(kStatUnlinkNs));
  std::unique_lock lock(ns_mu_);
  return UnlinkLocked(dir_ino, name);
}

Status PmfsFs::Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                      std::string_view new_name) {
  std::unique_lock lock(ns_mu_);
  HINFS_ASSIGN_OR_RETURN(PmfsInode from_dir, LoadInode(old_dir));
  PmfsDirent dirent;
  HINFS_ASSIGN_OR_RETURN(uint64_t dirent_off, FindDirent(from_dir, old_name, &dirent));

  HINFS_ASSIGN_OR_RETURN(PmfsInode to_dir, LoadInode(new_dir));
  PmfsDirent target;
  if (FindDirent(to_dir, new_name, &target).ok()) {
    HINFS_RETURN_IF_ERROR(UnlinkLocked(new_dir, new_name));
    // Directory inodes may have moved size; reload.
    HINFS_ASSIGN_OR_RETURN(to_dir, LoadInode(new_dir));
    HINFS_ASSIGN_OR_RETURN(from_dir, LoadInode(old_dir));
    HINFS_ASSIGN_OR_RETURN(dirent_off, FindDirent(from_dir, old_name, &dirent));
  }

  Transaction txn = journal_->Begin();
  Status st = ClearDirentAt(txn, old_dir, from_dir, dirent_off);
  if (st.ok()) {
    st = AddDirent(txn, new_dir, to_dir, new_name, dirent.ino,
                   static_cast<FileType>(dirent.type));
  }
  HINFS_RETURN_IF_ERROR(txn.Commit());
  return st;
}

Result<std::vector<DirEntry>> PmfsFs::ReadDir(uint64_t dir_ino) {
  std::shared_lock lock(ns_mu_);
  HINFS_ASSIGN_OR_RETURN(PmfsInode dir, LoadInode(dir_ino));
  if (dir.type != static_cast<uint8_t>(FileType::kDirectory)) {
    return Status(ErrorCode::kNotDir);
  }
  std::vector<DirEntry> out;
  const uint64_t nblocks = dir.size / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t fb = 0; fb < nblocks; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(dir, fb));
    if (data_block == 0) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(nvmm_->Load(DataBlockAddr(data_block), block.data(), kBlockSize));
    const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
    for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
      const PmfsDirent& d = entries[i];
      if (d.ino != 0) {
        DirEntry e;
        e.name.assign(d.name, d.name_len);
        e.ino = d.ino;
        e.type = static_cast<FileType>(d.type);
        out.push_back(std::move(e));
      }
    }
  }
  return out;
}

Result<InodeAttr> PmfsFs::GetAttr(uint64_t ino) {
  std::shared_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  InodeAttr attr;
  attr.ino = ino;
  attr.type = static_cast<FileType>(inode.type);
  attr.size = inode.size;
  attr.nlink = inode.nlink;
  attr.mtime_ns = inode.mtime_ns;
  attr.generation = inode.generation;
  return attr;
}

// --- data operations -------------------------------------------------------------

Status PmfsFs::ReadFromNvmm(const PmfsInode& inode, uint64_t offset, void* dst, size_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  uint64_t cur = offset;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t fb = cur / kBlockSize;
    const size_t in_block = cur % kBlockSize;
    const size_t chunk = std::min(remaining, kBlockSize - in_block);
    HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(inode, fb));
    if (data_block == 0) {
      std::memset(out, 0, chunk);  // hole
    } else {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(DataBlockAddr(data_block) + in_block, out, chunk));
    }
    out += chunk;
    cur += chunk;
    remaining -= chunk;
  }
  return OkStatus();
}

Result<size_t> PmfsFs::Read(uint64_t ino, uint64_t offset, void* dst, size_t len) {
  std::shared_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }
  if (offset >= inode.size) {
    return static_cast<size_t>(0);
  }
  const size_t n = static_cast<size_t>(std::min<uint64_t>(len, inode.size - offset));
  {
    ScopedTimer t(stats_.Counter(kStatReadAccessNs));
    HINFS_RETURN_IF_ERROR(ReadFromNvmm(inode, offset, dst, n));
  }
  return n;
}

Status PmfsFs::WriteToNvmm(uint64_t ino, PmfsInode& inode, uint64_t offset, const void* src,
                           size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  uint64_t cur = offset;
  size_t remaining = len;
  std::optional<Transaction> txn;  // started lazily on first allocation

  Status st = OkStatus();
  while (remaining > 0 && st.ok()) {
    const uint64_t fb = cur / kBlockSize;
    const size_t in_block = cur % kBlockSize;
    const size_t chunk = std::min(remaining, kBlockSize - in_block);

    uint64_t data_block;
    {
      Result<uint64_t> mapped = MapBlock(inode, fb);
      if (!mapped.ok()) {
        st = mapped.status();
        break;
      }
      data_block = *mapped;
    }
    bool fresh = false;
    if (data_block == 0) {
      if (!txn.has_value()) {
        txn.emplace(journal_->Begin());
      }
      // Allocation can legitimately fail (ENOSPC); fall through so the open
      // transaction is still committed (partial allocations roll forward,
      // the file is simply shorter).
      Result<uint64_t> allocated = MapBlockAlloc(*txn, ino, inode, fb);
      if (!allocated.ok()) {
        st = allocated.status();
        break;
      }
      data_block = *allocated;
      fresh = true;
    }

    const uint64_t addr = DataBlockAddr(data_block);
    if (fresh && chunk < kBlockSize) {
      // Zero the uncovered portions of a newly allocated, partially
      // overwritten block so holes read back as zeros.
      static const std::vector<uint8_t> kZeroBlock(kBlockSize, 0);
      if (st.ok() && in_block > 0) {
        st = nvmm_->StorePersistent(addr, kZeroBlock.data(), in_block);
      }
      const size_t tail = in_block + chunk;
      if (st.ok() && tail < kBlockSize) {
        st = nvmm_->StorePersistent(addr + tail, kZeroBlock.data(), kBlockSize - tail);
      }
    }

    if (st.ok()) {
      // The direct write access the paper measures: user buffer -> NVMM with
      // full persistence cost, on the critical path.
      ScopedTimer t(stats_.Counter(kStatWriteAccessNs));
      st = nvmm_->StorePersistent(addr + in_block, in, chunk);
    }

    in += chunk;
    cur += chunk;
    remaining -= chunk;
  }

  if (txn.has_value()) {
    HINFS_RETURN_IF_ERROR(txn->Commit());
  }
  HINFS_RETURN_IF_ERROR(st);
  if (offset + len > inode.size) {
    inode.size = offset + len;
    HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, size), inode.size));
  }
  inode.mtime_ns = MonotonicNowNs();
  HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, mtime_ns), inode.mtime_ns));
  stats_.Add(kStatWrittenBytes, len);
  return OkStatus();
}

Result<size_t> PmfsFs::Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                             const WriteOptions& options) {
  (void)options;  // PMFS writes are always eager-persistent.
  std::unique_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }
  HINFS_RETURN_IF_ERROR(WriteToNvmm(ino, inode, offset, src, len));
  return len;
}

Status PmfsFs::Truncate(uint64_t ino, uint64_t new_size) {
  std::unique_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  if (inode.type != static_cast<uint8_t>(FileType::kRegular)) {
    return Status(ErrorCode::kIsDir);
  }
  if (new_size < inode.size) {
    const uint64_t from_block = (new_size + kBlockSize - 1) / kBlockSize;
    Transaction txn = journal_->Begin();
    Status st = FreeBlocksFrom(txn, ino, inode, from_block);
    HINFS_RETURN_IF_ERROR(txn.Commit());
    HINFS_RETURN_IF_ERROR(st);
    // Zero the tail of the (kept) boundary block so a later extension of the
    // file reads zeros there, not stale data.
    const size_t tail_off = new_size % kBlockSize;
    if (tail_off != 0) {
      HINFS_ASSIGN_OR_RETURN(uint64_t blk, MapBlock(inode, new_size / kBlockSize));
      if (blk != 0) {
        static const std::vector<uint8_t> kZeroBlock(kBlockSize, 0);
        HINFS_RETURN_IF_ERROR(nvmm_->StorePersistent(DataBlockAddr(blk) + tail_off,
                                                     kZeroBlock.data(), kBlockSize - tail_off));
      }
    }
  }
  HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, size), new_size));
  return UpdateInodeU64(ino, offsetof(PmfsInode, mtime_ns), MonotonicNowNs());
}

Status PmfsFs::Fsync(uint64_t ino, const SyncOptions& options) {
  (void)options;  // PMFS persists eagerly; scope and group-wait are moot.
  ScopedTimer t(stats_.Counter(kStatFsyncNs));
  std::shared_lock lock(StripeFor(ino));
  HINFS_RETURN_IF_ERROR(LoadInode(ino).status());
  // PMFS persists data at write time; fsync only needs an ordering fence.
  nvmm_->Fence();
  return OkStatus();
}

Status PmfsFs::SyncFs() {
  nvmm_->Fence();
  return OkStatus();
}

Status PmfsFs::Unmount() {
  nvmm_->Fence();
  // Mirror the device's persist-order counters into the stats registry so
  // benches and tools report them alongside the FS-internal timers.
  stats_.Add(kStatNvmmFences, nvmm_->fence_count());
  stats_.Add(kStatNvmmFlushedLines, nvmm_->flushed_lines());
  stats_.Add(kStatNvmmEpochs, nvmm_->epoch_count());
  stats_.Add(kStatNvmmMaxUnfencedLines, nvmm_->max_unfenced_lines());
  uint64_t clean = 1;
  return nvmm_->StorePersistent(offsetof(PmfsSuperblock, clean_unmount), &clean, sizeof(clean));
}

// --- mmap -------------------------------------------------------------------------

Result<uint8_t*> PmfsFs::Mmap(uint64_t ino, uint64_t offset, size_t len) {
  if (offset % kBlockSize != 0 || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "mmap range must be block-aligned");
  }
  std::unique_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));

  // Allocate any missing blocks, then require physical contiguity so a single
  // pointer can cover the range (a kernel would map scattered pages; see
  // DESIGN.md for this documented userspace restriction).
  const uint64_t first_fb = offset / kBlockSize;
  const uint64_t last_fb = (offset + len - 1) / kBlockSize;
  Transaction txn = journal_->Begin();
  uint64_t first_block = 0;
  Status st = OkStatus();
  for (uint64_t fb = first_fb; fb <= last_fb && st.ok(); fb++) {
    Result<uint64_t> blk = MapBlockAlloc(txn, ino, inode, fb);
    if (!blk.ok()) {
      st = blk.status();
      break;
    }
    if (fb == first_fb) {
      first_block = *blk;
    } else if (*blk != first_block + (fb - first_fb)) {
      st = Status(ErrorCode::kNotSupported, "mmap range not physically contiguous");
    }
  }
  HINFS_RETURN_IF_ERROR(txn.Commit());
  HINFS_RETURN_IF_ERROR(st);
  if (offset + len > inode.size) {
    inode.size = offset + len;
    HINFS_RETURN_IF_ERROR(UpdateInodeU64(ino, offsetof(PmfsInode, size), inode.size));
  }
  return nvmm_->DirectPointer(DataBlockAddr(first_block), len);
}

Status PmfsFs::Munmap(uint64_t ino) {
  (void)ino;
  return OkStatus();
}

Status PmfsFs::Msync(uint64_t ino, uint64_t offset, size_t len) {
  std::shared_lock lock(StripeFor(ino));
  HINFS_ASSIGN_OR_RETURN(PmfsInode inode, LoadInode(ino));
  const uint64_t first_fb = offset / kBlockSize;
  const uint64_t last_fb = len == 0 ? first_fb : (offset + len - 1) / kBlockSize;
  for (uint64_t fb = first_fb; fb <= last_fb; fb++) {
    HINFS_ASSIGN_OR_RETURN(uint64_t data_block, MapBlock(inode, fb));
    if (data_block != 0) {
      HINFS_RETURN_IF_ERROR(nvmm_->Flush(DataBlockAddr(data_block), kBlockSize));
    }
  }
  nvmm_->Fence();
  return OkStatus();
}

}  // namespace hinfs
