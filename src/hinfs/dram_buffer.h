// DramBufferManager: the NVMM-aware Write Buffer (paper §3.2).
//
// Owns a pool of 4 KB DRAM blocks, the per-file DRAM Block Index (a B+tree of
// file-block -> buffer entry, paper Fig. 5), the Cacheline Bitmaps, the LRW
// replacement list, and the background writeback threads.
//
// Mechanisms reproduced from the paper:
//  - LRW (Least Recently Written) victim selection; written blocks move to the
//    MRW position.
//  - Cacheline Level Fetch/Writeback (CLFW): a partially-overwritten line of a
//    non-resident block fetches only that line from NVMM; writeback flushes
//    only dirty lines. With clfw=false (HiNFS-NCLFW) fetch and writeback are
//    whole-block.
//  - Background writeback: wakes when free blocks < Low_f (5 %), reclaims from
//    the LRW end until free > High_f (20 %), then writes back blocks dirty for
//    longer than 30 s; also wakes every 5 s. Foreground writers stall only when
//    the pool is exhausted.
//
// Scalability: the buffer is split into HinfsOptions::buffer_shards independent
// shards keyed by hash(ino, file_block). Each shard owns its own mutex,
// condition variables, slice of the frame pool, residency lists (T1/T2), ghost
// lists, ARC target, watermarks, and statistics, so Write/Read/Contains on
// blocks in different shards never contend. buffer_shards=1 reproduces the
// pre-sharding single-lock behaviour exactly (eviction order, CLFW line
// counts, stall semantics).
//
// Three mechanisms complete the concurrency story on top of the shards:
//
//  - Pinned writeback workers: worker w owns shards {w, w+T, w+2T, ...} and has
//    its own mutex/condvar pair. A shard crossing Low_f records wb_pending and
//    kicks exactly its owner (notify_one on the owner's condvar), so a full
//    shard never wakes the other workers. Per-worker wakeup/spurious/timeout
//    counters make wakeup precision observable.
//
//  - Lock-free buffered reads: each shard maintains, next to its B+tree index,
//    an open-addressed lookup table of atomic (key, Entry*) slots plus a shard
//    seqlock (index_seq). Read() first probes the table with no lock held,
//    validates a candidate entry against its per-entry seqlock (odd = mutating)
//    and copies the frame speculatively; a probe that ends at an empty slot is
//    a conclusive miss only if index_seq did not move. Any validation failure
//    falls back to the mutex path. Entries are type-stable (recycled through
//    the arena, freed only at shard destruction); replaced lookup arrays are
//    retired through epoch-based reclamation (src/common/epoch.h) — readers
//    probe under an EpochGuard, so a retired array is freed once every reader
//    that could hold it has unpinned, instead of accumulating until shard
//    destruction. Either way a stale pointer is memory-safe and the seqlock
//    alone decides logical validity.
//
//  - Batched read promotions: read-aware policies (ARC/2Q/LFU) want list
//    maintenance on read hits, but taking the shard mutex per buffered-read
//    hit would forfeit the lock-free path. Instead a lock-free read hit
//    pushes (key, entry) into a small per-shard MPSC ring; the owning
//    writeback worker (and the write path, opportunistically) drains the ring
//    under the shard mutex, re-validates each touch against the current
//    index, and applies the policy hook then. The ring is advisory: when
//    full, touches are dropped (stats count pushes and applied drains).
//    LRW/FIFO replacement ignores reads by definition (paper §3.2: eviction
//    follows write recency), so the ring is bypassed entirely and the
//    buffer_shards=1 legacy determinism contract is untouched.
//
//  - Cross-shard frame stealing: a shard whose slice is exhausted borrows free
//    frames — first from a global reserve (leaf mutex + atomic count), then
//    from donor shards holding more than Low_f+1 free frames — instead of
//    blocking its writers while neighbours sit idle. Stolen frames migrate
//    ownership (donor capacity shrinks, thief capacity grows, watermarks are
//    recomputed), keeping sum(shard capacity) + reserve == capacity_blocks().
//    Stealing engages only when the background engine runs and shards > 1, so
//    single-shard and engine-less configurations keep exact legacy semantics.
//
// Lock discipline: at most one shard mutex is ever held by a thread, and
// whole-buffer operations (FlushFile/FlushAll/DiscardFile) visit shards in
// fixed index order, fully draining one shard before touching the next. Data
// is flushed to NVMM with no shard mutex held (entries are pinned by the
// `writing` flag), so the EnsureBlockFn callback may take file-system locks
// (e.g. PMFS map_mu_) without ordering against the shard locks. Leaf locks —
// only ever the last lock taken, never held while acquiring anything else:
// the per-worker wakeup mutexes and the steal reserve mutex. A stealing
// thread locks donor shards one at a time with no other shard mutex held.
//
// NVMM block allocation for never-written blocks is deferred to writeback time
// via the EnsureBlockFn callback (keeping allocation off the lazy-write
// critical path); a crash before writeback leaves a file-system-level hole,
// preserving ordered-mode semantics.

#ifndef SRC_HINFS_DRAM_BUFFER_H_
#define SRC_HINFS_DRAM_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/hinfs/btree.h"
#include "src/hinfs/hinfs_options.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

// Sentinel: the buffered block has no backing NVMM block yet.
inline constexpr uint64_t kNoNvmmAddr = UINT64_MAX;

class DramBufferManager {
 public:
  // Resolves (ino, file_block) to the byte address of a (possibly freshly
  // allocated) NVMM data block. Called from writeback context with no shard
  // mutex held; must be safe without the caller's file locks.
  using EnsureBlockFn = std::function<Result<uint64_t>(uint64_t ino, uint64_t file_block)>;

  DramBufferManager(NvmmDevice* nvmm, const HinfsOptions& options, EnsureBlockFn ensure_block);
  ~DramBufferManager();

  void StartBackgroundWriteback();
  void StopBackgroundWriteback();

  // Buffered (lazy-persistent) write of [offset, offset+len) within one file
  // block. `nvmm_addr` is the block's current NVMM address or kNoNvmmAddr.
  // Returns the number of cacheline writes performed (N_cw input to the
  // Buffer Benefit Model). Blocks if the shard's frame slice is exhausted
  // until writeback frees space (after trying to steal frames from the
  // reserve and from idle shards).
  Result<uint32_t> Write(uint64_t ino, uint64_t file_block, size_t offset, const void* src,
                         size_t len, uint64_t nvmm_addr);

  // If (ino, file_block) is buffered, copies [offset, offset+len) into dst,
  // merging DRAM and NVMM by Cacheline Bitmap runs, and returns true.
  // Returns false when not buffered (caller reads NVMM directly). Fully-valid
  // blocks are served lock-free via the seqlock-validated lookup table; only
  // partial blocks (NVMM merge) and validation failures take the shard mutex.
  Result<bool> Read(uint64_t ino, uint64_t file_block, size_t offset, void* dst, size_t len,
                    uint64_t nvmm_addr);

  bool Contains(uint64_t ino, uint64_t file_block);

  // Flushes and evicts all buffered blocks of `ino` (fsync / mmap). Waits for
  // in-flight background writeback of the same file. Visits shards in index
  // order, draining each completely before moving on.
  Status FlushFile(uint64_t ino);

  // Flushes and evicts one block (the paper's case-(1) consistency rule:
  // an O_SYNC write to a buffered block updates DRAM, then evicts).
  Status FlushBlock(uint64_t ino, uint64_t file_block);

  // Flushes everything (sync(2) / unmount).
  Status FlushAll();

  // Drops buffered blocks of `ino` with file_block >= from_block without
  // writing them back (unlink / truncate: deleted data never reaches NVMM).
  Status DiscardFile(uint64_t ino, uint64_t from_block = 0);

  // --- introspection ---------------------------------------------------------
  size_t capacity_blocks() const { return capacity_blocks_; }
  size_t free_blocks() const;
  size_t shard_count() const { return shards_.size(); }
  // Which shard a (file, block) key lives in, and that shard's frame slice.
  uint32_t ShardOf(uint64_t ino, uint64_t file_block) const;
  size_t shard_capacity(uint32_t shard) const;
  size_t shard_free(uint32_t shard) const;
  uint64_t buffer_hits() const;
  uint64_t buffer_misses() const;
  uint64_t writeback_blocks() const;
  uint64_t writeback_lines() const;
  uint64_t fetched_lines() const;
  uint64_t stall_count() const;
  // Shard-mutex acquisitions that found the lock already held. The direct
  // measure of buffer lock contention; sharding exists to drive this down.
  uint64_t lock_contended() const;
  // Lock-free read path: buffered reads served without the shard mutex, and
  // speculative attempts that had to fall back to the locked path.
  uint64_t lockfree_read_hits() const;
  uint64_t lockfree_read_fallbacks() const;
  // Writeback coalescing counters (see ShardStats): flush_calls <= dirty_runs,
  // and dirty_runs - flush_calls limiter trips were saved by merging.
  uint64_t wb_dirty_runs() const;
  uint64_t wb_flush_calls() const;
  uint64_t wb_coalesced_lines() const;
  // Batched read promotions: touches pushed into the per-shard rings by
  // lock-free read hits, and touches that survived revalidation and were
  // applied to the replacement lists during a drain (drained <= batched;
  // the difference is ring-full drops plus touches whose entry was evicted
  // or rewritten before the drain).
  uint64_t promotions_batched() const;
  uint64_t promotions_drained() const;
  // Retired lookup arrays actually freed by epoch reclamation (the pre-epoch
  // code held every replaced array until shard destruction).
  uint64_t epoch_retired() const;
  // Cross-shard stealing: frames migrated into an exhausted shard, and frames
  // currently parked in the global reserve.
  uint64_t frames_stolen() const { return frames_stolen_.load(std::memory_order_relaxed); }
  size_t reserve_frames() const { return reserve_count_.load(std::memory_order_relaxed); }
  // Pinned writeback workers: per-worker wakeup telemetry. A "spurious" wakeup
  // is a kicked wakeup that found none of the worker's own shards low or
  // pending — zero in a correctly pinned configuration.
  size_t writeback_worker_count() const { return workers_.size(); }
  uint32_t shard_owner_worker(uint32_t shard) const;
  uint64_t worker_wakeups(size_t worker) const;
  uint64_t worker_timeout_wakeups(size_t worker) const;
  uint64_t worker_spurious_wakeups() const;
  uint64_t worker_wakeups_total() const;

 private:
  // Reader-visible Entry fields are atomics: the lock-free read path loads
  // them with no shard mutex held, validated by the per-entry seqlock `seq`
  // (even = stable, odd = mutating under the shard mutex). Fields only ever
  // touched with the shard mutex held (or with the entry pinned by `writing`)
  // stay plain.
  struct Entry {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ino{0};
    std::atomic<uint64_t> file_block{0};
    std::atomic<uint64_t> nvmm_addr{kNoNvmmAddr};
    std::atomic<uint64_t> valid{0};      // lines present in DRAM
    std::atomic<uint32_t> dram_index{0};
    uint64_t dirty = 0;    // lines modified since fetch
    bool writing = false;  // being flushed by a writeback thread
    uint64_t last_written_ns = 0;
    uint32_t freq = 0;     // write-reference count (LFU)
    uint8_t arc_list = 1;  // ARC: 1 = T1 (recent), 2 = T2 (frequent)
    Entry* lrw_prev = nullptr;  // residency list: head = eviction end, tail = MRW
    Entry* lrw_next = nullptr;
  };

  // RAII seqlock writer section for one entry. Constructed (shard mutex held)
  // before any reader-visible mutation, destroyed after: readers that overlap
  // the section observe an odd or changed seq and discard their copy.
  class EntryMutationGuard {
   public:
    explicit EntryMutationGuard(Entry* e) : e_(e) {
      const uint64_t s = e_->seq.load(std::memory_order_relaxed);
      e_->seq.store(s + 1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
    }
    ~EntryMutationGuard() {
      const uint64_t s = e_->seq.load(std::memory_order_relaxed);
      e_->seq.store(s + 1, std::memory_order_release);
    }
    EntryMutationGuard(const EntryMutationGuard&) = delete;
    EntryMutationGuard& operator=(const EntryMutationGuard&) = delete;

   private:
    Entry* e_;
  };

  struct EntryList {
    Entry head;  // sentinel
    size_t size = 0;
    EntryList() {
      head.lrw_prev = &head;
      head.lrw_next = &head;
    }
  };

  // Monotonic per-shard counters. Relaxed atomics: the public accessors sum
  // them with no lock held, concurrently with writeback threads bumping them
  // (the pre-sharding code read plain uint64_t fields here — a data race).
  // The whole block is cache-line-aligned so shards never false-share stats.
  struct alignas(64) ShardStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> stalls{0};
    std::atomic<uint64_t> writeback_blocks{0};
    std::atomic<uint64_t> writeback_lines{0};
    std::atomic<uint64_t> fetched_lines{0};
    std::atomic<uint64_t> lock_contended{0};
    std::atomic<uint64_t> lockfree_hits{0};
    std::atomic<uint64_t> lockfree_fallbacks{0};
    // Writeback coalescing: dirty line-runs staged (= Flush calls the
    // pre-coalescing code would have issued), flush ranges actually sent to
    // the device after merging, and lines whose own flush call was saved by
    // being merged into a contiguous predecessor.
    std::atomic<uint64_t> wb_dirty_runs{0};
    std::atomic<uint64_t> wb_flush_calls{0};
    std::atomic<uint64_t> wb_coalesced_lines{0};
    // Batched read promotions and epoch reclamation (see PromoRing).
    std::atomic<uint64_t> promotions_batched{0};
    std::atomic<uint64_t> promotions_drained{0};
    std::atomic<uint64_t> epoch_retired{0};
  };

  // Per-shard MPSC ring of read touches awaiting list maintenance. Producers
  // are lock-free read hits (multiple threads, no shard mutex); the single
  // consumer drains with the shard mutex held. A producer reserves a slot by
  // CAS on `head`, stores the entry pointer, then release-stores the key —
  // the consumer treats key==0 as "reserved but unpublished" and stops there
  // to preserve FIFO. `tail` is only touched under the shard mutex;
  // `tail_published` mirrors it so producers can detect a full ring without
  // the lock (and drop the touch: promotions are advisory hints, losing one
  // only costs replacement quality, never correctness).
  struct PromoRing {
    static constexpr size_t kRingSlots = 256;  // power of two
    struct Touch {
      std::atomic<uint64_t> key{0};  // 0 = empty/consumed; LutKey() is never 0
      std::atomic<Entry*> entry{nullptr};
    };
    std::atomic<uint64_t> head{0};            // next slot producers will take
    uint64_t tail = 0;                        // consumer cursor (shard mutex)
    std::atomic<uint64_t> tail_published{0};  // producers' full-ring check
    Touch slots[kRingSlots];
  };

  // Open-addressed lookup arrays probed lock-free by readers. Slots hold a
  // key (kLutEmpty / kLutTombstone / mixed key with the top bit forced) and
  // the Entry*. Mutated only under the shard mutex inside an index_seq writer
  // section; a replaced array is handed to the shard's RetireList and freed
  // once every reader pinned at rebuild time has unpinned (readers hold an
  // EpochGuard across the probe), so a reader with a stale pointer never
  // touches freed memory.
  struct LookupArrays {
    explicit LookupArrays(size_t n) : mask(n - 1) {
      keys.reset(new std::atomic<uint64_t>[n]);
      entries.reset(new std::atomic<Entry*>[n]);
      for (size_t i = 0; i < n; i++) {
        keys[i].store(kLutEmpty, std::memory_order_relaxed);
        entries[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    const size_t mask;  // size - 1; size is a power of two
    std::unique_ptr<std::atomic<uint64_t>[]> keys;
    std::unique_ptr<std::atomic<Entry*>[]> entries;
  };
  static constexpr uint64_t kLutEmpty = 0;
  static constexpr uint64_t kLutTombstone = 1;

  // Per-worker wakeup state. Each writeback worker waits on its own condvar;
  // the mutex is a leaf lock (taken by kickers with a shard mutex held, never
  // the other way around).
  struct alignas(64) WorkerState {
    std::mutex mu;
    std::condition_variable cv;
    bool kicked = false;  // guarded by mu
    std::atomic<uint64_t> wakeups{0};           // kicked wakeups
    std::atomic<uint64_t> timeout_wakeups{0};   // periodic-timer wakeups
    std::atomic<uint64_t> spurious_wakeups{0};  // kicked with nothing to do
  };

  // One independent slice of the buffer: everything the pre-sharding manager
  // kept under its global mutex, scoped to the keys hashing here.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable free_cv;        // signaled when frames are freed
    std::condition_variable write_done_cv;  // signaled when a flush completes
    std::vector<uint32_t> free_frames;      // global frame indices owned here
    std::atomic<size_t> free_count{0};      // mirrors free_frames.size(); read lock-free
    std::unordered_map<uint64_t, std::unique_ptr<BTreeMap<Entry*>>> index;  // per-file B+tree
    // Lock-free lookup table mirroring `index`, plus its seqlock. lut_current
    // owns the published array; replaced arrays wait in lut_retired until the
    // epoch domain proves no reader can still hold them.
    std::atomic<LookupArrays*> lut{nullptr};
    std::unique_ptr<LookupArrays> lut_current;
    RetireList lut_retired;
    size_t lut_live = 0;
    size_t lut_tombstones = 0;
    std::atomic<uint64_t> index_seq{0};
    // Read touches from the lock-free path awaiting policy list maintenance.
    PromoRing promo;
    // Type-stable entry storage: entries are recycled through entry_free and
    // only destroyed with the shard, so stale Entry* in reader hands stay
    // dereferenceable (their seqlock flags them logically dead).
    std::vector<std::unique_ptr<Entry>> entry_arena;
    std::vector<Entry*> entry_free;
    // Residency lists. LRW/FIFO/LFU use t1 only; ARC splits entries into
    // t1 (seen once) and t2 (seen again) with ghost lists b1/b2 steering the
    // adaptive target arc_p (T1's share of this shard).
    EntryList t1;
    EntryList t2;
    std::list<uint64_t> b1_fifo;
    std::list<uint64_t> b2_fifo;
    std::unordered_set<uint64_t> b1;
    std::unordered_set<uint64_t> b2;
    size_t arc_p = 0;
    size_t resident = 0;
    // Capacity and watermarks are atomics because frame stealing resizes them
    // under the shard mutex while worker predicates and donor screens read
    // them lock-free.
    std::atomic<size_t> capacity{0};  // frames owned by this shard
    std::atomic<size_t> low{0};       // per-shard Low_f watermark (blocks)
    std::atomic<size_t> high{0};      // per-shard High_f watermark (blocks)
    uint32_t shard_index = 0;
    uint32_t owner_worker = 0;               // fixed at construction
    std::atomic<bool> wb_pending{false};     // set by kickers, cleared by the owner
    ShardStats stats;
  };

  // RAII seqlock writer section for one shard's lookup table.
  class IndexMutationGuard {
   public:
    explicit IndexMutationGuard(Shard* s) : s_(s) {
      const uint64_t v = s_->index_seq.load(std::memory_order_relaxed);
      s_->index_seq.store(v + 1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
    }
    ~IndexMutationGuard() {
      const uint64_t v = s_->index_seq.load(std::memory_order_relaxed);
      s_->index_seq.store(v + 1, std::memory_order_release);
    }
    IndexMutationGuard(const IndexMutationGuard&) = delete;
    IndexMutationGuard& operator=(const IndexMutationGuard&) = delete;

   private:
    Shard* s_;
  };

  Shard& ShardForKey(uint64_t ino, uint64_t file_block) {
    return *shards_[ShardOf(ino, file_block)];
  }

  // Acquires a shard mutex, counting contended acquisitions (try_lock first;
  // one relaxed increment on the slow path only, so the fast path costs the
  // same as a plain lock()).
  static std::unique_lock<std::mutex> LockShard(Shard& s) {
    std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      s.stats.lock_contended.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }
  uint8_t* FrameData(uint32_t frame) { return pool_.get() + size_t{frame} * kBlockSize; }
  uint8_t* DataFor(const Entry& e) {
    return FrameData(e.dram_index.load(std::memory_order_relaxed));
  }

  // Free-frame slice maintenance (shard mutex held). The atomic mirror lets
  // watermark checks and free_blocks() read without taking shard locks.
  uint32_t PopFreeFrameLocked(Shard& s);
  void PushFreeFrameLocked(Shard& s, uint32_t frame);

  // Entry arena (shard mutex held).
  Entry* AllocEntryLocked(Shard& s);
  void ReleaseEntryLocked(Shard& s, Entry* e);

  // Lookup-table maintenance (shard mutex held).
  static uint64_t LutKey(uint64_t ino, uint64_t file_block);
  void LutInsertLocked(Shard& s, uint64_t key, Entry* e);
  void LutEraseLocked(Shard& s, uint64_t key, Entry* e);
  void LutRebuildLocked(Shard& s, size_t min_slots);

  // The lock-free read fast path: returns 1 for a served hit, 0 for a
  // conclusive miss (block not buffered), -1 when the caller must fall back
  // to the locked path.
  int TryLockFreeRead(Shard& s, uint64_t ino, uint64_t file_block, size_t offset, void* dst,
                      size_t len);

  // All helpers below require s.mu held.
  Entry* FindLocked(Shard& s, uint64_t ino, uint64_t file_block);
  // May release and reacquire `lock` while stalling for a frame. Returns
  // nullptr (not an error) when a racing writer buffered the same key during
  // such a window: the caller must re-run its lookup instead of creating a
  // duplicate (which would orphan one entry and leak its frame).
  Result<Entry*> CreateLocked(Shard& s, std::unique_lock<std::mutex>& lock, uint64_t ino,
                              uint64_t file_block, uint64_t nvmm_addr);
  void DetachLocked(Shard& s, Entry* e);  // removes from index + lists, frees the frame
  static void ListUnlink(EntryList& list, Entry* e);
  static void ListPushMru(EntryList& list, Entry* e);

  // Replacement-policy hooks (per shard).
  void OnInsertLocked(Shard& s, Entry* e);
  void OnWriteHitLocked(Shard& s, Entry* e);
  // Read-hit list maintenance, applied when a batched touch is drained.
  // LRW/FIFO deliberately do nothing here (write-ordered eviction).
  void OnReadHitLocked(Shard& s, Entry* e);
  // Does the configured policy care about read recency/frequency at all?
  // When false the promotion ring is bypassed (LRW/FIFO).
  bool ReadTouchesPolicy() const {
    return options_.replacement == HinfsOptions::Replacement::kArc ||
           options_.replacement == HinfsOptions::Replacement::kTwoQ ||
           options_.replacement == HinfsOptions::Replacement::kLfu;
  }
  // Lock-free producer side: best-effort push of a read touch (drops when the
  // ring is full). Called from TryLockFreeRead with no shard mutex held.
  void PromoPush(Shard& s, uint64_t key, Entry* e);
  // Consumer side: applies (still-valid) pending touches. Requires s.mu.
  void DrainPromotionsLocked(Shard& s);
  // Picks up to `want` evictable (non-writing) entries in policy order and
  // marks them writing.
  std::vector<Entry*> PickVictimsLocked(Shard& s, size_t want);
  static uint64_t GhostKey(const Entry& e) {
    return (e.ino.load(std::memory_order_relaxed) << 32) ^
           e.file_block.load(std::memory_order_relaxed);
  }
  void GhostRecordLocked(Shard& s, Entry* e);
  static void GhostTrimLocked(std::list<uint64_t>& fifo, std::unordered_set<uint64_t>& set,
                              size_t limit);

  // Recomputes the Low_f/High_f watermarks after s.capacity changed (frame
  // stealing) — the same formulas the constructor applies.
  void ApplyShardCapacityLocked(Shard& s);

  // Frame stealing. Called with NO locks held: takes frames from the global
  // reserve, then from donor shards (one donor mutex at a time), deposits
  // them into `needy` and parks any surplus in the reserve. Returns frames
  // deposited into `needy`.
  size_t StealIntoShard(Shard& needy);
  bool CanSteal() const {
    return options_.steal_frames && shards_.size() > 1 &&
           wb_running_.load(std::memory_order_relaxed);
  }

  // Stage one entry's dirty lines for writeback: resolves the NVMM address
  // (allocating via ensure_block_ when needed), zeroes never-written lines of
  // a fresh block, Store()s each dirty run into NVMM, and appends each run's
  // NVMM extent to `ranges`. Called WITHOUT s.mu held; the entry must be
  // marked writing and belong to `s`. Returns lines staged; the caller issues
  // the Flush (batched) and, when lines > 0, this entry's Fence.
  Result<uint32_t> StageEntryFlush(Shard& s, Entry* e, std::vector<FlushRange>* ranges);

  // Flushes `victims` (all from shard `s`, already marked writing) outside the
  // lock, then detaches them. Shared by foreground flush and the background
  // engine. Dirty runs from all victims are merged where contiguous in NVMM
  // and issued as one FlushBatch (a single bandwidth acquisition), followed by
  // one Fence per victim that had dirty lines — the same fence count, flushed
  // lines, and bytes as flushing each entry individually.
  Status FlushEntries(Shard& s, std::vector<Entry*> victims);

  // The per-shard body of FlushFile (all=false) / FlushAll (all=true): loops
  // collecting victims of `ino` (or everything) in this shard, waiting out
  // in-flight writeback, until the shard holds none of them.
  Status DrainShard(Shard& s, bool all, uint64_t ino);

  // Wakes exactly the worker pinned to `s`. Records the shard as pending
  // first, then performs the empty-critical-section handshake on the owner's
  // mutex so a worker between its predicate check and its wait cannot miss
  // the notification. Safe to call with s.mu held (worker mutexes are leaves).
  void KickWorkerForShard(Shard& s);
  bool AnyAssignedShardNeedsWork(size_t worker) const;
  void ProcessShard(Shard& s);
  void WritebackThread(size_t worker);

  NvmmDevice* nvmm_;
  HinfsOptions options_;
  EnsureBlockFn ensure_block_;
  size_t capacity_blocks_;

  std::unique_ptr<uint8_t[]> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;  // size is a power of two
  uint32_t shard_mask_ = 0;

  // Pinned writeback workers. The vector is sized at construction (worker
  // count never changes), so kickers index it without synchronization.
  std::vector<std::unique_ptr<WorkerState>> workers_;

  // Global free-frame reserve for cross-shard stealing. reserve_mu_ is a leaf
  // lock; the atomic count lets stall paths skip an empty reserve for free.
  std::mutex reserve_mu_;
  std::vector<uint32_t> reserve_frames_;
  std::atomic<size_t> reserve_count_{0};
  std::atomic<uint64_t> frames_stolen_{0};

  std::mutex threads_mu_;  // guards threads_ across Start/Stop
  std::vector<std::thread> threads_;
  size_t wb_worker_count_ = 0;          // shard round-robin stride
  std::atomic<bool> wb_running_{false}; // any background workers alive?
  std::atomic<bool> stop_{false};
};

}  // namespace hinfs

#endif  // SRC_HINFS_DRAM_BUFFER_H_
