// NvmmBlockDevice: the paper's NVMMBD emulator — an NVMM region exposed through
// the generic block layer, as a modified brd (Linux RAM disk) driver would be.
//
// Every request pays a fixed software overhead modeling the generic block layer
// (request setup, bio handling, plug/unplug); writes then copy through to NVMM
// with full persistence cost. This is the substrate the EXT2/EXT4+NVMMBD
// baselines run on, and the overhead it adds is exactly what Figs. 7/10/12/13
// show being unable to amortize on memory-speed storage.

#ifndef SRC_BLOCKDEV_NVMM_BLOCK_DEVICE_H_
#define SRC_BLOCKDEV_NVMM_BLOCK_DEVICE_H_

#include <memory>

#include "src/blockdev/block_device.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

struct NvmmBlockDeviceConfig {
  // Per-request software overhead of the generic block layer. ~1.5 us is in
  // line with published measurements of the Linux block layer on RAM disks.
  uint64_t block_layer_overhead_ns = 1500;
};

class NvmmBlockDevice : public BlockDevice {
 public:
  // The device does not own `nvmm`; one NVMM region may back several partitions.
  NvmmBlockDevice(NvmmDevice* nvmm, uint64_t first_byte, uint64_t num_blocks,
                  const NvmmBlockDeviceConfig& config = {});

  uint64_t num_blocks() const override { return num_blocks_; }
  Status ReadBlock(uint64_t block, void* dst) override;
  Status WriteBlock(uint64_t block, const void* src) override;
  Status Sync() override;

  NvmmDevice* nvmm() { return nvmm_; }

 private:
  Status CheckBlock(uint64_t block) const;

  NvmmDevice* nvmm_;
  uint64_t first_byte_;
  uint64_t num_blocks_;
  NvmmBlockDeviceConfig config_;
};

}  // namespace hinfs

#endif  // SRC_BLOCKDEV_NVMM_BLOCK_DEVICE_H_
