// BTreeMap: an in-DRAM B+tree keyed by uint64_t.
//
// The paper's DRAM Block Index is "per-file B-tree in DRAM, one of the best
// options for indexing large amounts of possibly sparse data". This is that
// structure: leaves hold (file-block -> value) pairs and are chained for
// in-order scans; interior nodes hold separator keys.

#ifndef SRC_HINFS_BTREE_H_
#define SRC_HINFS_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace hinfs {

template <typename V>
class BTreeMap {
 public:
  static constexpr int kFanout = 16;  // max children per interior node
  static constexpr int kLeafCap = 16;

  BTreeMap() = default;
  ~BTreeMap() { Clear(); }

  BTreeMap(const BTreeMap&) = delete;
  BTreeMap& operator=(const BTreeMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns a pointer to the value for `key`, or nullptr.
  V* Find(uint64_t key) {
    Leaf* leaf = FindLeaf(key);
    if (leaf == nullptr) {
      return nullptr;
    }
    int i = LowerBound(leaf->keys, leaf->count, key);
    if (i < leaf->count && leaf->keys[i] == key) {
      return &leaf->values[i];
    }
    return nullptr;
  }

  // Inserts or overwrites; returns a pointer to the stored value.
  V* Insert(uint64_t key, V value) {
    if (root_ == nullptr) {
      auto* leaf = new Leaf();
      leaf->keys[0] = key;
      leaf->values[0] = std::move(value);
      leaf->count = 1;
      root_ = leaf;
      height_ = 0;
      size_ = 1;
      first_leaf_ = leaf;
      return &leaf->values[0];
    }
    SplitInfo split;
    V* slot = InsertRec(root_, height_, key, std::move(value), &split);
    if (split.happened) {
      auto* new_root = new Interior();
      new_root->keys[0] = split.key;
      new_root->children[0] = root_;
      new_root->children[1] = split.right;
      new_root->count = 2;
      root_ = new_root;
      height_++;
    }
    return slot;
  }

  // Removes `key`; returns true if it was present. (Leaves are allowed to
  // underflow — this index deletes in bulk via Clear()/eviction, so rebalance
  // complexity buys nothing here; empty leaves are unlinked.)
  bool Erase(uint64_t key) {
    Leaf* leaf = FindLeaf(key);
    if (leaf == nullptr) {
      return false;
    }
    int i = LowerBound(leaf->keys, leaf->count, key);
    if (i >= leaf->count || leaf->keys[i] != key) {
      return false;
    }
    for (int j = i; j + 1 < leaf->count; j++) {
      leaf->keys[j] = leaf->keys[j + 1];
      leaf->values[j] = std::move(leaf->values[j + 1]);
    }
    leaf->count--;
    size_--;
    return true;
  }

  // Calls fn(key, value&) for every element in key order. fn returning false
  // stops the scan.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
      for (int i = 0; i < leaf->count; i++) {
        if (!fn(leaf->keys[i], leaf->values[i])) {
          return;
        }
      }
    }
  }

  void Clear() {
    if (root_ != nullptr) {
      DeleteRec(root_, height_);
      root_ = nullptr;
    }
    first_leaf_ = nullptr;
    size_ = 0;
    height_ = 0;
  }

 private:
  struct Leaf {
    uint64_t keys[kLeafCap];
    V values[kLeafCap];
    int count = 0;
    Leaf* next = nullptr;
  };
  struct Interior {
    uint64_t keys[kFanout];  // keys[i] = smallest key under children[i+1]
    void* children[kFanout + 1];
    int count = 0;  // number of children
  };
  struct SplitInfo {
    bool happened = false;
    uint64_t key = 0;
    void* right = nullptr;
  };

  static int LowerBound(const uint64_t* keys, int n, uint64_t key) {
    return static_cast<int>(std::lower_bound(keys, keys + n, key) - keys);
  }

  Leaf* FindLeaf(uint64_t key) {
    if (root_ == nullptr) {
      return nullptr;
    }
    void* node = root_;
    for (int h = height_; h > 0; h--) {
      auto* in = static_cast<Interior*>(node);
      int i = LowerBound(in->keys, in->count - 1, key + 1);  // child index
      node = in->children[i];
    }
    return static_cast<Leaf*>(node);
  }

  V* InsertRec(void* node, int h, uint64_t key, V value, SplitInfo* split) {
    if (h == 0) {
      auto* leaf = static_cast<Leaf*>(node);
      int i = LowerBound(leaf->keys, leaf->count, key);
      if (i < leaf->count && leaf->keys[i] == key) {
        leaf->values[i] = std::move(value);
        return &leaf->values[i];
      }
      if (leaf->count < kLeafCap) {
        for (int j = leaf->count; j > i; j--) {
          leaf->keys[j] = leaf->keys[j - 1];
          leaf->values[j] = std::move(leaf->values[j - 1]);
        }
        leaf->keys[i] = key;
        leaf->values[i] = std::move(value);
        leaf->count++;
        size_++;
        return &leaf->values[i];
      }
      // Split the leaf.
      auto* right = new Leaf();
      const int mid = kLeafCap / 2;
      for (int j = mid; j < kLeafCap; j++) {
        right->keys[j - mid] = leaf->keys[j];
        right->values[j - mid] = std::move(leaf->values[j]);
      }
      right->count = kLeafCap - mid;
      leaf->count = mid;
      right->next = leaf->next;
      leaf->next = right;
      split->happened = true;
      split->key = right->keys[0];
      split->right = right;
      size_++;
      if (key >= right->keys[0]) {
        return RawLeafInsert(right, key, std::move(value));
      }
      return RawLeafInsert(leaf, key, std::move(value));
    }

    auto* in = static_cast<Interior*>(node);
    int i = LowerBound(in->keys, in->count - 1, key + 1);
    SplitInfo child_split;
    V* slot = InsertRec(in->children[i], h - 1, key, std::move(value), &child_split);
    if (!child_split.happened) {
      return slot;
    }
    if (in->count <= kFanout) {
      for (int j = in->count - 1; j > i; j--) {
        in->keys[j] = in->keys[j - 1];
        in->children[j + 1] = in->children[j];
      }
      in->keys[i] = child_split.key;
      in->children[i + 1] = child_split.right;
      in->count++;
      if (in->count <= kFanout) {
        return slot;
      }
      // Overfull: split the interior node.
      auto* right = new Interior();
      const int mid = in->count / 2;  // children going right: count - mid
      right->count = in->count - mid;
      for (int j = 0; j < right->count; j++) {
        right->children[j] = in->children[mid + j];
      }
      for (int j = 0; j + 1 < right->count; j++) {
        right->keys[j] = in->keys[mid + j];
      }
      split->happened = true;
      split->key = in->keys[mid - 1];
      split->right = right;
      in->count = mid;
    }
    return slot;
  }

  // Insert into a leaf known to have room (post-split fixup path).
  V* RawLeafInsert(Leaf* leaf, uint64_t key, V value) {
    int i = LowerBound(leaf->keys, leaf->count, key);
    for (int j = leaf->count; j > i; j--) {
      leaf->keys[j] = leaf->keys[j - 1];
      leaf->values[j] = std::move(leaf->values[j - 1]);
    }
    leaf->keys[i] = key;
    leaf->values[i] = std::move(value);
    leaf->count++;
    return &leaf->values[i];
  }

  void DeleteRec(void* node, int h) {
    if (h == 0) {
      delete static_cast<Leaf*>(node);
      return;
    }
    auto* in = static_cast<Interior*>(node);
    for (int i = 0; i < in->count; i++) {
      DeleteRec(in->children[i], h - 1);
    }
    delete in;
  }

  void* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  int height_ = 0;  // 0 = root is a leaf
  size_t size_ = 0;
};

}  // namespace hinfs

#endif  // SRC_HINFS_BTREE_H_
