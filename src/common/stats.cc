#include "src/common/stats.h"

#include <tuple>

#include "src/common/clock.h"

namespace hinfs {

void StatsRegistry::Add(std::string_view name, uint64_t delta) {
  Counter(name)->fetch_add(delta, std::memory_order_relaxed);
}

std::atomic<uint64_t>* StatsRegistry::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);  // heterogeneous: no temporary std::string
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple())
             .first;
  }
  return &it->second;
}

uint64_t StatsRegistry::Get(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::string, uint64_t>> StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.emplace_back(name, cell.load(std::memory_order_relaxed));
  }
  return out;
}

ScopedTimer::ScopedTimer(std::atomic<uint64_t>* cell) : cell_(cell), start_ns_(MonotonicNowNs()) {}

ScopedTimer::~ScopedTimer() {
  if (cell_ != nullptr) {
    cell_->fetch_add(MonotonicNowNs() - start_ns_, std::memory_order_relaxed);
  }
}

}  // namespace hinfs
