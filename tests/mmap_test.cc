// Direct memory-mapped I/O (paper §4.2): PMFS and HiNFS expose NVMM pages
// straight into the "application" address space; msync persists stores; HiNFS
// flushes its DRAM buffer and pins the file Eager-Persistent while mapped.

#include <gtest/gtest.h>

#include <cstring>

#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

NvmmConfig TrackedConfig() {
  NvmmConfig cfg;
  cfg.size_bytes = 64 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  return cfg;
}

TEST(MmapTest, StoresVisibleThroughFileReads) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  ASSERT_TRUE(vfs.WriteFile("/m", std::string(2 * kBlockSize, 'a')).ok());
  auto attr = vfs.Stat("/m");
  ASSERT_TRUE(attr.ok());

  auto ptr = (*fs)->Mmap(attr->ino, 0, kBlockSize);
  ASSERT_TRUE(ptr.ok()) << ptr.status().ToString();
  std::memcpy(*ptr, "mapped!", 7);
  // Store through the mapping, read through the file API: single image.
  auto content = vfs.ReadFileToString("/m");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->substr(0, 7), "mapped!");
  ASSERT_TRUE((*fs)->Munmap(attr->ino).ok());
}

TEST(MmapTest, MsyncMakesStoresDurable) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  uint64_t ino;
  {
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.WriteFile("/m", std::string(kBlockSize, 'x')).ok());
    auto attr = vfs.Stat("/m");
    ASSERT_TRUE(attr.ok());
    ino = attr->ino;
    auto ptr = (*fs)->Mmap(ino, 0, kBlockSize);
    ASSERT_TRUE(ptr.ok());
    std::memcpy(*ptr, "DURABLE", 7);
    ASSERT_TRUE((*fs)->Msync(ino, 0, kBlockSize).ok());
    // A second store that is never msynced.
    std::memcpy(*ptr + 64, "VOLATILE", 8);
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto remounted = PmfsFs::Mount(&nvmm);
  ASSERT_TRUE(remounted.ok());
  Vfs vfs(remounted->get());
  auto content = vfs.ReadFileToString("/m");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->substr(0, 7), "DURABLE");          // msynced store survives
  EXPECT_NE(content->substr(64, 8), "VOLATILE");        // unsynced store lost
  EXPECT_EQ((*content)[70], 'x');                        // original data back
}

TEST(MmapTest, UnalignedRangeRejected) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  ASSERT_TRUE(vfs.WriteFile("/m", std::string(kBlockSize, 'x')).ok());
  auto attr = vfs.Stat("/m");
  ASSERT_TRUE(attr.ok());
  EXPECT_FALSE((*fs)->Mmap(attr->ino, 100, kBlockSize).ok());
  EXPECT_FALSE((*fs)->Mmap(attr->ino, 0, 0).ok());
}

TEST(MmapTest, MmapExtendsFileWithAllocation) {
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  ASSERT_TRUE(vfs.WriteFile("/grow", "").ok());
  auto attr = vfs.Stat("/grow");
  ASSERT_TRUE(attr.ok());
  auto ptr = (*fs)->Mmap(attr->ino, 0, kBlockSize);
  ASSERT_TRUE(ptr.ok()) << ptr.status().ToString();
  attr = vfs.Stat("/grow");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, kBlockSize);
}

TEST(MmapTest, HinfsMmapDrainsBufferFirst) {
  NvmmDevice nvmm(TrackedConfig());
  HinfsOptions hopts;
  hopts.buffer_bytes = 2 << 20;
  hopts.writeback_period_ms = 100000;
  auto fs = HinfsFs::Format(&nvmm, hopts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  // Lazy write sits in the DRAM buffer...
  ASSERT_TRUE(vfs.WriteFile("/h", std::string(kBlockSize, 'h')).ok());
  auto attr = vfs.Stat("/h");
  ASSERT_TRUE(attr.ok());
  ASSERT_TRUE((*fs)->buffer().Contains(attr->ino, 0));
  // ...mmap must flush it so the mapping sees the latest bytes.
  auto ptr = (*fs)->Mmap(attr->ino, 0, kBlockSize);
  ASSERT_TRUE(ptr.ok()) << ptr.status().ToString();
  EXPECT_FALSE((*fs)->buffer().Contains(attr->ino, 0));
  EXPECT_EQ((*ptr)[0], 'h');
  ASSERT_TRUE((*fs)->Munmap(attr->ino).ok());
}

TEST(MmapTest, HinfsFileWritesStayCoherentWhileMapped) {
  NvmmDevice nvmm(TrackedConfig());
  HinfsOptions hopts;
  hopts.buffer_bytes = 2 << 20;
  auto fs = HinfsFs::Format(&nvmm, hopts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  ASSERT_TRUE(vfs.WriteFile("/c", std::string(kBlockSize, 'c')).ok());
  auto attr = vfs.Stat("/c");
  ASSERT_TRUE(attr.ok());
  auto ptr = (*fs)->Mmap(attr->ino, 0, kBlockSize);
  ASSERT_TRUE(ptr.ok());

  // While mapped, every file write is eager-persistent and thus immediately
  // visible through the direct mapping (paper §4.2's coherence rule).
  auto fd = vfs.Open("/c", kWrOnly);
  ASSERT_TRUE(fd.ok());
  for (int i = 0; i < 5; i++) {
    const char tag = static_cast<char>('0' + i);
    ASSERT_TRUE(vfs.Pwrite(*fd, &tag, 1, static_cast<uint64_t>(i) * 100).ok());
    EXPECT_EQ(static_cast<char>((*ptr)[i * 100]), tag);
  }
  ASSERT_TRUE((*fs)->Munmap(attr->ino).ok());

  // After munmap, the eager pin decays and lazy buffering resumes eventually;
  // correctness is unaffected either way.
  const char z = 'z';
  ASSERT_TRUE(vfs.Pwrite(*fd, &z, 1, 0).ok());
  auto content = vfs.ReadFileToString("/c");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)[0], 'z');
}

TEST(MmapTest, NonContiguousMultiBlockRejected) {
  // Blocks allocated far apart cannot back a single flat mapping in
  // userspace; the FS must refuse rather than return a lying pointer.
  NvmmDevice nvmm(TrackedConfig());
  auto fs = PmfsFs::Format(&nvmm, {});
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  // Interleave two files' writes so their blocks alternate in the data area.
  auto fd1 = vfs.Open("/a", kWrOnly | kCreate);
  auto fd2 = vfs.Open("/b", kWrOnly | kCreate);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(fd2.ok());
  std::vector<uint8_t> block(kBlockSize, 1);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(vfs.Write(*fd1, block.data(), block.size()).ok());
    ASSERT_TRUE(vfs.Write(*fd2, block.data(), block.size()).ok());
  }
  auto attr = vfs.Stat("/a");
  ASSERT_TRUE(attr.ok());
  // Single-block mappings always work; the 4-block range is fragmented.
  EXPECT_TRUE((*fs)->Mmap(attr->ino, 0, kBlockSize).ok());
  auto multi = (*fs)->Mmap(attr->ino, 0, 4 * kBlockSize);
  EXPECT_FALSE(multi.ok());
  EXPECT_EQ(multi.status().code(), ErrorCode::kNotSupported);
}

}  // namespace
}  // namespace hinfs
