// Fig. 13: macrobenchmark elapsed time (Postmark, TPC-C, Kernel-Grep,
// Kernel-Make) normalized to PMFS, including HiNFS-WB.

#include "bench/bench_common.h"
#include "src/workloads/macro.h"

using namespace hinfs;

namespace {

Result<double> RunMacro(FsKind kind, const std::string& name) {
  auto bed_cfg = PaperBedConfig(512ull << 20, 64ull << 20);
  HINFS_ASSIGN_OR_RETURN(std::unique_ptr<TestBed> bed, MakeTestBed(kind, bed_cfg));
  Vfs* vfs = bed->vfs.get();

  WorkloadResult result;
  if (name == "Postmark") {
    PostmarkConfig cfg;
    cfg.nfiles = ScaledOps(cfg.nfiles);
    cfg.transactions = ScaledOps(cfg.transactions);
    HINFS_ASSIGN_OR_RETURN(result, RunPostmark(vfs, cfg));
  } else if (name == "TPC-C") {
    TpccConfig cfg;
    cfg.transactions = ScaledOps(cfg.transactions);
    HINFS_ASSIGN_OR_RETURN(result, RunTpcc(vfs, cfg));
  } else {
    KernelTreeConfig cfg;
    cfg.dirs = ScaledOps(cfg.dirs);
    cfg.headers = ScaledOps(cfg.headers);
    HINFS_RETURN_IF_ERROR(BuildKernelTree(vfs, cfg));
    if (name == "Kernel-Grep") {
      HINFS_ASSIGN_OR_RETURN(result, RunKernelGrep(vfs, cfg));
    } else {
      HINFS_ASSIGN_OR_RETURN(result, RunKernelMake(vfs, cfg));
    }
  }
  HINFS_RETURN_IF_ERROR(vfs->Unmount());
  return result.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 13", "macrobenchmark elapsed time normalized to PMFS");
  std::vector<BenchJsonRow> rows;

  const FsKind kinds[] = {FsKind::kPmfs,       FsKind::kExt4Dax, FsKind::kExt2Nvmmbd,
                          FsKind::kExt4Nvmmbd, FsKind::kHinfsWb, FsKind::kHinfs};
  const char* names[] = {"Postmark", "TPC-C", "Kernel-Grep", "Kernel-Make"};

  std::printf("%-13s", "benchmark");
  for (FsKind kind : kinds) {
    std::printf(" %13s", FsKindName(kind));
  }
  std::printf("\n");

  for (const char* name : names) {
    std::printf("%-13s", name);
    double pmfs_s = 0;
    for (FsKind kind : kinds) {
      auto seconds = RunMacro(kind, name);
      if (!seconds.ok()) {
        std::fprintf(stderr, "\n%s/%s: %s\n", name, FsKindName(kind),
                     seconds.status().ToString().c_str());
        return 1;
      }
      if (kind == FsKind::kPmfs) {
        pmfs_s = *seconds;
      }
      std::printf(" %7.2fs(%4.2f)", *seconds, pmfs_s > 0 ? *seconds / pmfs_s : 0.0);
      std::fflush(stdout);
      rows.push_back({FsKindName(kind), name, "run", 0, *seconds, "seconds"});
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: HiNFS cuts Postmark/Kernel-Make times vs PMFS (short-lived\n"
              "files, lazy writes); ~PMFS on TPC-C (sync-bound) and Kernel-Grep (reads);\n"
              "HiNFS-WB worse than HiNFS on TPC-C; EXT2 < EXT4 on NVMMBD (no journal)\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
