#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/hinfs/btree.h"

namespace hinfs {
namespace {

TEST(BTreeTest, EmptyFinds) {
  BTreeMap<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(0), nullptr);
  EXPECT_FALSE(t.Erase(0));
}

TEST(BTreeTest, SingleElement) {
  BTreeMap<int> t;
  t.Insert(5, 50);
  ASSERT_NE(t.Find(5), nullptr);
  EXPECT_EQ(*t.Find(5), 50);
  EXPECT_EQ(t.Find(4), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, OverwriteKeepsSize) {
  BTreeMap<int> t;
  t.Insert(5, 50);
  t.Insert(5, 99);
  EXPECT_EQ(*t.Find(5), 99);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, SequentialInsertAndScan) {
  BTreeMap<int> t;
  for (int i = 0; i < 1000; i++) {
    t.Insert(static_cast<uint64_t>(i), i * 2);
  }
  EXPECT_EQ(t.size(), 1000u);
  uint64_t expect = 0;
  t.ForEach([&](uint64_t k, int& v) {
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, static_cast<int>(k) * 2);
    expect++;
    return true;
  });
  EXPECT_EQ(expect, 1000u);
}

TEST(BTreeTest, ReverseInsert) {
  BTreeMap<int> t;
  for (int i = 999; i >= 0; i--) {
    t.Insert(static_cast<uint64_t>(i), i);
  }
  for (int i = 0; i < 1000; i++) {
    ASSERT_NE(t.Find(static_cast<uint64_t>(i)), nullptr) << i;
  }
}

TEST(BTreeTest, SparseKeys) {
  BTreeMap<int> t;
  for (uint64_t i = 0; i < 500; i++) {
    t.Insert(i * 1'000'003, static_cast<int>(i));
  }
  for (uint64_t i = 0; i < 500; i++) {
    ASSERT_NE(t.Find(i * 1'000'003), nullptr);
    EXPECT_EQ(t.Find(i * 1'000'003 + 1), nullptr);
  }
}

TEST(BTreeTest, EraseHalf) {
  BTreeMap<int> t;
  for (uint64_t i = 0; i < 600; i++) {
    t.Insert(i, static_cast<int>(i));
  }
  for (uint64_t i = 0; i < 600; i += 2) {
    EXPECT_TRUE(t.Erase(i));
  }
  EXPECT_EQ(t.size(), 300u);
  for (uint64_t i = 0; i < 600; i++) {
    if (i % 2 == 0) {
      EXPECT_EQ(t.Find(i), nullptr);
    } else {
      ASSERT_NE(t.Find(i), nullptr);
    }
  }
}

TEST(BTreeTest, ForEachEarlyStop) {
  BTreeMap<int> t;
  for (uint64_t i = 0; i < 100; i++) {
    t.Insert(i, 1);
  }
  int visited = 0;
  t.ForEach([&](uint64_t, int&) { return ++visited < 10; });
  EXPECT_EQ(visited, 10);
}

TEST(BTreeTest, ClearThenReuse) {
  BTreeMap<int> t;
  for (uint64_t i = 0; i < 200; i++) {
    t.Insert(i, 1);
  }
  t.Clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(10), nullptr);
  t.Insert(7, 70);
  EXPECT_EQ(*t.Find(7), 70);
}

// Property test: random mixed workload against std::map.
class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesStdMap) {
  Rng rng(GetParam());
  BTreeMap<uint64_t> t;
  std::map<uint64_t, uint64_t> ref;
  for (int step = 0; step < 20000; step++) {
    const uint64_t key = rng.Below(2000);
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      const uint64_t val = rng.Next();
      t.Insert(key, val);
      ref[key] = val;
    } else if (roll < 0.75) {
      EXPECT_EQ(t.Erase(key), ref.erase(key) > 0) << "key " << key;
    } else {
      uint64_t* found = t.Find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr) << "key " << key;
      } else {
        ASSERT_NE(found, nullptr) << "key " << key;
        EXPECT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  // Final full-order comparison.
  auto it = ref.begin();
  t.ForEach([&](uint64_t k, uint64_t& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345, 777777, 424242));

}  // namespace
}  // namespace hinfs
