# Empty dependencies file for fs_matrix_test.
# This may be replaced when dependencies are built.
