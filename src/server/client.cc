#include "src/server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace hinfs {
namespace server {

namespace {

Status IoError(const char* what) {
  return Status(ErrorCode::kIoError, std::string("client: ") + what);
}

Status WriteFull(int sock, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(sock, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return IoError("send failed (connection lost?)");
  }
  return OkStatus();
}

Status ReadFull(int sock, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = recv(sock, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return IoError("connection closed by server");
    }
    if (errno == EINTR) {
      continue;
    }
    return IoError("recv failed");
  }
  return OkStatus();
}

}  // namespace

Result<std::unique_ptr<Client>> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(ErrorCode::kNameTooLong, "unix socket path");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int sock = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) {
    return IoError("socket(AF_UNIX)");
  }
  if (connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(sock);
    return Status(ErrorCode::kIoError, "connect " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<Client>(new Client(sock));
}

Result<std::unique_ptr<Client>> Client::ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status(ErrorCode::kInvalidArgument, "host must be a dotted-quad IPv4 address");
  }
  const int sock = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) {
    return IoError("socket(AF_INET)");
  }
  if (connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(sock);
    return Status(ErrorCode::kIoError,
                  "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno));
  }
  int one = 1;
  setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(sock));
}

Client::~Client() { Disconnect(); }

void Client::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sock_ >= 0) {
    ::close(sock_);
    sock_ = -1;
  }
}

Result<Response> Client::Call(Request req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sock_ < 0) {
    return IoError("not connected");
  }
  req.request_id = next_id_++;
  std::string frame;
  EncodeRequest(req, &frame);
  HINFS_RETURN_IF_ERROR(WriteFull(sock_, frame.data(), frame.size()));

  char lenbuf[kFrameLenBytes];
  HINFS_RETURN_IF_ERROR(ReadFull(sock_, lenbuf, sizeof(lenbuf)));
  uint32_t frame_len = 0;
  HINFS_RETURN_IF_ERROR(
      ParseFrameLen(reinterpret_cast<const uint8_t*>(lenbuf), kMaxFrameBytes, &frame_len));
  std::string payload(frame_len, '\0');
  HINFS_RETURN_IF_ERROR(ReadFull(sock_, payload.data(), payload.size()));

  Response resp;
  HINFS_RETURN_IF_ERROR(
      DecodeResponse(reinterpret_cast<const uint8_t*>(payload.data()), payload.size(), &resp));
  if (resp.request_id != req.request_id || resp.opcode != req.opcode) {
    return IoError("response does not match request (protocol violation)");
  }
  rpcs_++;
  return resp;
}

Status Client::CallStatus(Request req) {
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return OkStatus();
}

Status Client::Ping(std::string_view payload) {
  Request req;
  req.opcode = Opcode::kPing;
  req.data.assign(payload);
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.data != payload) {
    return IoError("ping payload mismatch");
  }
  return OkStatus();
}

Result<uint32_t> Client::Hello(uint32_t tenant, uint32_t weight) {
  Request req;
  req.opcode = Opcode::kHello;
  req.flags = kProtocolVersion;
  req.offset = tenant;
  req.count = weight;
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return static_cast<uint32_t>(resp.r0);
}

Result<int> Client::Open(std::string_view path, uint32_t flags) {
  Request req;
  req.opcode = Opcode::kOpen;
  req.path.assign(path);
  req.flags = flags;
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return static_cast<int>(resp.r0);
}

Status Client::Close(int fd) {
  Request req;
  req.opcode = Opcode::kClose;
  req.fd = fd;
  return CallStatus(std::move(req));
}

Result<size_t> Client::Read(int fd, void* dst, size_t len) {
  Request req;
  req.opcode = Opcode::kRead;
  req.fd = fd;
  req.count = static_cast<uint32_t>(std::min(len, kMaxDataBytes));
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  const size_t n = std::min(resp.data.size(), len);
  std::memcpy(dst, resp.data.data(), n);
  return n;
}

Result<size_t> Client::Pread(int fd, void* dst, size_t len, uint64_t offset) {
  Request req;
  req.opcode = Opcode::kPread;
  req.fd = fd;
  req.offset = offset;
  req.count = static_cast<uint32_t>(std::min(len, kMaxDataBytes));
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  const size_t n = std::min(resp.data.size(), len);
  std::memcpy(dst, resp.data.data(), n);
  return n;
}

Result<size_t> Client::Write(int fd, const void* src, size_t len) {
  Request req;
  req.opcode = Opcode::kWrite;
  req.fd = fd;
  req.data.assign(static_cast<const char*>(src), std::min(len, kMaxDataBytes));
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return static_cast<size_t>(resp.r0);
}

Result<size_t> Client::Pwrite(int fd, const void* src, size_t len, uint64_t offset) {
  Request req;
  req.opcode = Opcode::kPwrite;
  req.fd = fd;
  req.offset = offset;
  req.data.assign(static_cast<const char*>(src), std::min(len, kMaxDataBytes));
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return static_cast<size_t>(resp.r0);
}

Result<uint64_t> Client::Seek(int fd, uint64_t offset) {
  Request req;
  req.opcode = Opcode::kSeek;
  req.fd = fd;
  req.offset = offset;
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return resp.r0;
}

Status Client::Fsync(int fd) { return Sync(fd, SyncOptions::Fsync()); }

Status Client::Fdatasync(int fd) { return Sync(fd, SyncOptions::Fdatasync()); }

Status Client::Sync(int fd, const SyncOptions& options) {
  Request req;
  req.opcode = options.data_only() ? Opcode::kFdatasync : Opcode::kFsync;
  req.fd = fd;
  req.flags = SyncOptionsToWire(options);
  return CallStatus(std::move(req));
}

Status Client::Ftruncate(int fd, uint64_t size) {
  Request req;
  req.opcode = Opcode::kFtruncate;
  req.fd = fd;
  req.offset = size;
  return CallStatus(std::move(req));
}

Result<InodeAttr> Client::Fstat(int fd) {
  Request req;
  req.opcode = Opcode::kFstat;
  req.fd = fd;
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  InodeAttr attr;
  HINFS_RETURN_IF_ERROR(ParseAttr(reinterpret_cast<const uint8_t*>(resp.data.data()),
                                  resp.data.size(), &attr));
  return attr;
}

Status Client::Mkdir(std::string_view path) {
  Request req;
  req.opcode = Opcode::kMkdir;
  req.path.assign(path);
  return CallStatus(std::move(req));
}

Status Client::Rmdir(std::string_view path) {
  Request req;
  req.opcode = Opcode::kRmdir;
  req.path.assign(path);
  return CallStatus(std::move(req));
}

Status Client::Unlink(std::string_view path) {
  Request req;
  req.opcode = Opcode::kUnlink;
  req.path.assign(path);
  return CallStatus(std::move(req));
}

Status Client::Rename(std::string_view from, std::string_view to) {
  Request req;
  req.opcode = Opcode::kRename;
  req.path.assign(from);
  req.path2.assign(to);
  return CallStatus(std::move(req));
}

Result<InodeAttr> Client::Stat(std::string_view path) {
  Request req;
  req.opcode = Opcode::kStat;
  req.path.assign(path);
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  InodeAttr attr;
  HINFS_RETURN_IF_ERROR(ParseAttr(reinterpret_cast<const uint8_t*>(resp.data.data()),
                                  resp.data.size(), &attr));
  return attr;
}

Result<std::vector<DirEntry>> Client::ReadDir(std::string_view path) {
  Request req;
  req.opcode = Opcode::kReadDir;
  req.path.assign(path);
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  std::vector<DirEntry> entries;
  HINFS_RETURN_IF_ERROR(ParseDirEntries(reinterpret_cast<const uint8_t*>(resp.data.data()),
                                        resp.data.size(), &entries));
  return entries;
}

Result<bool> Client::Exists(std::string_view path) {
  Request req;
  req.opcode = Opcode::kExists;
  req.path.assign(path);
  HINFS_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  if (resp.status != ErrorCode::kOk) {
    return Status(resp.status, resp.data);
  }
  return resp.r0 == 1;
}

Status Client::SyncFs() {
  Request req;
  req.opcode = Opcode::kSyncFs;
  return CallStatus(std::move(req));
}

}  // namespace server
}  // namespace hinfs
