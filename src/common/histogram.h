// Log-bucketed latency histogram used by the benchmark harness.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hinfs {

// Power-of-two bucketed histogram of nanosecond samples: bucket i covers
// [2^i, 2^(i+1)). Cheap enough to sit on the hot path of every workload op.
//
// Record is NOT thread-safe; multi-threaded recorders use ConcurrentHistogram
// below (or one Histogram per thread, combined with Merge).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  // Bucket index a sample lands in (shared with ConcurrentHistogram).
  static int BucketFor(uint64_t value);

  void Record(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Approximate quantile (q in [0, 1]) from the bucket boundaries.
  uint64_t Percentile(double q) const;

  // One-line summary: "n=... mean=... p50=... p99=... max=...".
  std::string Summary() const;

 private:
  friend class ConcurrentHistogram;

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// Thread-safe recording front for Histogram: samples land in one of kStripes
// cacheline-padded stripes of relaxed atomics (stripe chosen per thread, so
// two threads almost never contend on the same cells). Snapshot() folds the
// stripes into an ordinary Histogram for Percentile/Summary/Merge.
//
// The hinfsd server and the fsload load generator record from many threads at
// once; a Snapshot taken while recorders are running is a consistent-enough
// view for reporting (each sample is counted exactly once in count/sum/bucket,
// but a snapshot may split a sample that is mid-Record across fields).
class ConcurrentHistogram {
 public:
  ConcurrentHistogram() = default;
  ConcurrentHistogram(const ConcurrentHistogram&) = delete;
  ConcurrentHistogram& operator=(const ConcurrentHistogram&) = delete;

  void Record(uint64_t value_ns);

  // Folds every stripe into a plain Histogram.
  Histogram Snapshot() const;

  void Reset();

 private:
  static constexpr size_t kStripes = 16;

  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, Histogram::kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };

  Stripe& StripeForThisThread();

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace hinfs

#endif  // SRC_COMMON_HISTOGRAM_H_
