#include "src/vfs/vfs.h"

#include <algorithm>
#include <utility>

namespace hinfs {

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(ErrorCode::kInvalidArgument, "path must be absolute");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    if (j > i) {
      std::string_view comp = path.substr(i, j - i);
      if (comp.size() > kMaxNameLen) {
        return Status(ErrorCode::kNameTooLong, std::string(comp));
      }
      if (comp == "." || comp == "..") {
        return Status(ErrorCode::kInvalidArgument, "dot components not supported");
      }
      parts.emplace_back(comp);
    }
    i = j + 1;
  }
  return parts;
}

Vfs::Vfs(FileSystem* fs, bool sync_mount) : fs_(fs), sync_mount_(sync_mount) {
  for (FdShard& s : fd_shards_) {
    s.table_owner = std::make_unique<FdShard::SlotArray>(16);
    s.table.store(s.table_owner.get(), std::memory_order_release);
  }
}

Vfs::~Vfs() {
  // Free still-open FdStates (closed ones were handed to fd_retired_, whose
  // destructor frees them along with any retired slot arrays).
  for (FdShard& s : fd_shards_) {
    FdShard::SlotArray* arr = s.table_owner.get();
    for (size_t i = 0; i <= arr->mask; i++) {
      const int k = arr->slots[i].fd.load(std::memory_order_relaxed);
      if (k != FdShard::kEmpty && k != FdShard::kTombstone) {
        delete arr->slots[i].state.load(std::memory_order_relaxed);
      }
    }
  }
}

// --- fd table -------------------------------------------------------------------

void Vfs::FdInsertIntoSlots(FdShard::SlotArray& arr, int fd, FdState* state) {
  size_t i = ProbeStart(fd, arr.mask + 1);
  for (;;) {
    const int k = arr.slots[i].fd.load(std::memory_order_relaxed);
    if (k == FdShard::kEmpty || k == FdShard::kTombstone) {
      break;
    }
    i = (i + 1) & arr.mask;
  }
  // state before fd, both release: a lock-free probe that observes the fd is
  // guaranteed to observe this state (and only this state — see FdLookup's
  // reuse re-check, which leans on exactly this ordering).
  arr.slots[i].state.store(state, std::memory_order_release);
  arr.slots[i].fd.store(fd, std::memory_order_release);
}

void Vfs::FdInsert(int fd, FdState* state) {
  FdShard& s = ShardForFd(fd);
  std::lock_guard<std::mutex> lock(s.mu);
  FdShard::SlotArray* arr = s.table_owner.get();
  // Keep the probe chains short: grow (dropping tombstones) at 3/4 occupancy.
  if ((s.occupied + 1) * 4 >= (arr->mask + 1) * 3) {
    auto bigger = std::make_unique<FdShard::SlotArray>((arr->mask + 1) * 2);
    for (size_t i = 0; i <= arr->mask; i++) {
      const int k = arr->slots[i].fd.load(std::memory_order_relaxed);
      if (k != FdShard::kEmpty && k != FdShard::kTombstone) {
        FdInsertIntoSlots(*bigger, k, arr->slots[i].state.load(std::memory_order_relaxed));
      }
    }
    s.table.store(bigger.get(), std::memory_order_release);
    // Readers may still be probing the old array; epoch reclamation frees it
    // once they unpin.
    fd_retired_.Retire(s.table_owner.release());
    s.table_owner = std::move(bigger);
    s.occupied = s.used;
    arr = s.table_owner.get();
  }
  FdInsertIntoSlots(*arr, fd, state);
  s.used++;
  s.occupied++;  // may double-count a reused tombstone; only hastens growth
}

Vfs::FdState* Vfs::FdLookup(int fd) {
  if (fd < 3) {
    return nullptr;
  }
  FdShard& s = ShardForFd(fd);
  const FdShard::SlotArray* arr = s.table.load(std::memory_order_acquire);
  size_t i = ProbeStart(fd, arr->mask + 1);
  for (;;) {
    const int k = arr->slots[i].fd.load(std::memory_order_acquire);
    if (k == FdShard::kEmpty) {
      // Conclusive: fds are never reused and Open happens-before any use of
      // the fd it returned, so a miss means "not open" — kBadFd, exactly as
      // if the lookup had been serialized before a racing Close.
      return nullptr;
    }
    if (k == fd) {
      FdState* e = arr->slots[i].state.load(std::memory_order_acquire);
      // The slot may have been tombstoned and reused by a different fd
      // between the two loads above. Insert release-stores state before
      // publishing its fd, so if the fd still matches here, `e` is ours; if
      // not, our fd was closed (kBadFd). Never probe on: a reused slot means
      // the tombstone chain this probe relied on has been rewritten.
      if (arr->slots[i].fd.load(std::memory_order_relaxed) == fd) {
        return e;
      }
      return nullptr;
    }
    i = (i + 1) & arr->mask;
  }
}

size_t Vfs::OpenFdCount() const {
  size_t n = 0;
  for (const FdShard& s : fd_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.used;
  }
  return n;
}

bool Vfs::FdErase(int fd) {
  if (fd < 3) {
    return false;
  }
  FdShard& s = ShardForFd(fd);
  std::lock_guard<std::mutex> lock(s.mu);
  FdShard::SlotArray* arr = s.table_owner.get();
  size_t i = ProbeStart(fd, arr->mask + 1);
  for (;;) {
    const int k = arr->slots[i].fd.load(std::memory_order_relaxed);
    if (k == FdShard::kEmpty) {
      return false;
    }
    if (k == fd) {
      FdState* e = arr->slots[i].state.load(std::memory_order_relaxed);
      // Tombstone the fd but leave the state pointer: a reader that loaded
      // fd just before this store may still load it, and the epoch pin it
      // holds keeps *e alive until it finishes.
      arr->slots[i].fd.store(FdShard::kTombstone, std::memory_order_release);
      s.used--;
      fd_retired_.Retire(e);
      return true;
    }
    i = (i + 1) & arr->mask;
  }
}

// --- dcache ---------------------------------------------------------------------

Result<uint64_t> Vfs::LookupCached(uint64_t dir_ino, std::string_view name) {
  const DentryRef ref{dir_ino, name};
  DcacheShard& s = ShardForDentry(ref);
  {
    std::shared_lock lock(s.mu);
    auto it = s.map.find(ref);  // heterogeneous: no key allocation on a hit
    if (it != s.map.end()) {
      return it->second;
    }
  }
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, fs_->Lookup(dir_ino, name));
  {
    std::unique_lock lock(s.mu);
    s.map.insert_or_assign(DentryKey{dir_ino, std::string(name)}, ino);
  }
  return ino;
}

void Vfs::InvalidateDentry(uint64_t dir_ino, std::string_view name) {
  const DentryRef ref{dir_ino, name};
  DcacheShard& s = ShardForDentry(ref);
  std::unique_lock lock(s.mu);
  auto it = s.map.find(ref);
  if (it != s.map.end()) {
    s.map.erase(it);
  }
}

Result<uint64_t> Vfs::Resolve(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  uint64_t ino = kRootIno;
  for (const std::string& comp : parts) {
    HINFS_ASSIGN_OR_RETURN(ino, LookupCached(ino, comp));
  }
  return ino;
}

Result<uint64_t> Vfs::ResolveParent(std::string_view path, std::string* leaf) {
  HINFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status(ErrorCode::kInvalidArgument, "path has no final component");
  }
  *leaf = parts.back();
  uint64_t ino = kRootIno;
  for (size_t i = 0; i + 1 < parts.size(); i++) {
    HINFS_ASSIGN_OR_RETURN(ino, LookupCached(ino, parts[i]));
  }
  return ino;
}

// --- fd-based syscalls ----------------------------------------------------------

Result<int> Vfs::Open(std::string_view path, uint32_t flags) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));

  uint64_t ino;
  Result<uint64_t> looked = LookupCached(dir_ino, leaf);
  if (looked.ok()) {
    ino = *looked;
  } else if (looked.status().code() == ErrorCode::kNotFound && (flags & kCreate) != 0) {
    Result<uint64_t> created = fs_->Create(dir_ino, leaf, FileType::kRegular);
    if (!created.ok()) {
      return created.status();
    }
    ino = *created;
  } else {
    return looked.status();
  }

  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, fs_->GetAttr(ino));
  if (attr.type == FileType::kDirectory) {
    return Status(ErrorCode::kIsDir, std::string(path));
  }
  if ((flags & kTrunc) != 0 && attr.size > 0) {
    HINFS_RETURN_IF_ERROR(fs_->Truncate(ino, 0));
    attr.size = 0;
  }

  FdState* state = new FdState();
  state->ino = ino;
  state->flags = flags;
  state->offset.store((flags & kAppend) != 0 ? attr.size : 0, std::memory_order_relaxed);

  const int fd = next_fd_.fetch_add(1, std::memory_order_relaxed);
  FdInsert(fd, state);
  return fd;
}

Status Vfs::Close(int fd) {
  return FdErase(fd) ? OkStatus() : Status(ErrorCode::kBadFd);
}

Result<size_t> Vfs::Read(int fd, void* dst, size_t len) {
  EpochGuard pin;  // keeps *e (and the slot array) alive across the syscall
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  if ((e->flags & (kWrOnly | kRdWr)) == 0) {
    // Read-only fd — the webserver/webproxy hot path. Claim the range
    // [offset, offset+n) with a compare-exchange instead of holding pos_mu
    // across the FS call: snapshot the offset, read there, publish offset+n.
    // Losing the CAS means a concurrent reader claimed that range first; it
    // published the next offset, so retry the read there. Readers sharing
    // the fd proceed in parallel yet consume disjoint, gapless ranges; a
    // racing Seek simply restarts the claim at the seeked position.
    uint64_t offset = e->offset.load(std::memory_order_acquire);
    for (;;) {
      HINFS_ASSIGN_OR_RETURN(size_t n, fs_->Read(e->ino, offset, dst, len));
      if (e->offset.compare_exchange_strong(offset, offset + n,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        return n;
      }
      // `offset` was reloaded by the failed CAS; the data read is stale for
      // that position, so read again. Progress is global: a failed CAS
      // implies another reader (or a seek) succeeded.
    }
  }
  // Write-capable fd: reads serialize with writes/seeks on pos_mu so
  // interleaved ops on one fd keep POSIX read/write atomicity.
  std::lock_guard<std::mutex> pos_lock(e->pos_mu);
  const uint64_t offset = e->offset.load(std::memory_order_relaxed);
  HINFS_ASSIGN_OR_RETURN(size_t n, fs_->Read(e->ino, offset, dst, len));
  e->offset.store(offset + n, std::memory_order_release);
  return n;
}

Result<size_t> Vfs::Pread(int fd, void* dst, size_t len, uint64_t offset) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->Read(e->ino, offset, dst, len);
}

Result<size_t> Vfs::WriteInternal(uint64_t ino, uint32_t flags, const void* src, size_t len,
                                  uint64_t offset) {
  WriteOptions options = WriteOptions::Buffered();
  if (sync_mount_ || (flags & kSync) != 0) {
    // Synchronous writes only need to be *recoverable* on return; when the
    // mounted FS fronts a WAL, a durable redo record is cheaper than eager
    // persistence into the final layout.
    options = fs_->SupportsLoggedDurability() ? WriteOptions::Logged()
                                              : WriteOptions::EagerPersistent();
  }
  return fs_->Write(ino, offset, src, len, options);
}

Result<size_t> Vfs::Write(int fd, const void* src, size_t len) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  std::lock_guard<std::mutex> pos_lock(e->pos_mu);
  uint64_t offset = e->offset.load(std::memory_order_relaxed);
  if ((e->flags & kAppend) != 0) {
    // O_APPEND: the write lands at EOF. The size lookup happens under pos_mu,
    // so appends on this fd are ordered with its other offset-dependent ops;
    // there is no table relookup afterwards because the epoch pin keeps `e`
    // valid even if the fd is concurrently closed.
    HINFS_ASSIGN_OR_RETURN(InodeAttr attr, fs_->GetAttr(e->ino));
    offset = attr.size;
  }
  HINFS_ASSIGN_OR_RETURN(size_t n, WriteInternal(e->ino, e->flags, src, len, offset));
  e->offset.store(offset + n, std::memory_order_release);
  return n;
}

Result<size_t> Vfs::Pwrite(int fd, const void* src, size_t len, uint64_t offset) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return WriteInternal(e->ino, e->flags, src, len, offset);
}

Result<uint64_t> Vfs::Seek(int fd, uint64_t offset) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  // pos_mu orders the store against a writer's offset read-modify-write; the
  // lock-free reader CAS loop needs no lock here (it either claims against
  // the pre-seek offset or retries at this one).
  std::lock_guard<std::mutex> pos_lock(e->pos_mu);
  e->offset.store(offset, std::memory_order_release);
  return offset;
}

Status Vfs::Fsync(int fd) { return Sync(fd, SyncOptions::Fsync()); }

Status Vfs::Fdatasync(int fd) { return Sync(fd, SyncOptions::Fdatasync()); }

Status Vfs::Sync(int fd, const SyncOptions& options) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->Fsync(e->ino, options);
}

Status Vfs::Ftruncate(int fd, uint64_t size) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->Truncate(e->ino, size);
}

Result<InodeAttr> Vfs::Fstat(int fd) {
  EpochGuard pin;
  FdState* e = FdLookup(fd);
  if (e == nullptr) {
    return Status(ErrorCode::kBadFd);
  }
  return fs_->GetAttr(e->ino);
}

// --- path-based syscalls --------------------------------------------------------

Status Vfs::Mkdir(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  Result<uint64_t> created = fs_->Create(dir_ino, leaf, FileType::kDirectory);
  return created.ok() ? OkStatus() : created.status();
}

Status Vfs::Rmdir(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  InvalidateDentry(dir_ino, leaf);
  HINFS_RETURN_IF_ERROR(fs_->Unlink(dir_ino, leaf));
  InvalidateDentry(dir_ino, leaf);
  return OkStatus();
}

Status Vfs::Unlink(std::string_view path) {
  std::string leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t dir_ino, ResolveParent(path, &leaf));
  // Invalidate on both sides of the FS call: before, so concurrent lookups
  // re-resolve; after, so a lookup that raced the unlink does not leave a
  // stale entry behind.
  InvalidateDentry(dir_ino, leaf);
  HINFS_RETURN_IF_ERROR(fs_->Unlink(dir_ino, leaf));
  InvalidateDentry(dir_ino, leaf);
  return OkStatus();
}

Status Vfs::Rename(std::string_view from, std::string_view to) {
  std::string from_leaf;
  std::string to_leaf;
  HINFS_ASSIGN_OR_RETURN(uint64_t from_dir, ResolveParent(from, &from_leaf));
  HINFS_ASSIGN_OR_RETURN(uint64_t to_dir, ResolveParent(to, &to_leaf));
  InvalidateDentry(from_dir, from_leaf);
  InvalidateDentry(to_dir, to_leaf);
  HINFS_RETURN_IF_ERROR(fs_->Rename(from_dir, from_leaf, to_dir, to_leaf));
  InvalidateDentry(from_dir, from_leaf);
  InvalidateDentry(to_dir, to_leaf);
  return OkStatus();
}

Result<InodeAttr> Vfs::Stat(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, Resolve(path));
  return fs_->GetAttr(ino);
}

Result<std::vector<DirEntry>> Vfs::ReadDir(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(uint64_t ino, Resolve(path));
  return fs_->ReadDir(ino);
}

Result<bool> Vfs::Exists(std::string_view path) {
  Result<uint64_t> ino = Resolve(path);
  if (ino.ok()) {
    return true;
  }
  // "Not there" is an answer; anything else (bad path, I/O error, corrupted
  // directory) is an error the caller must see, not a silent `false`.
  if (ino.status().code() == ErrorCode::kNotFound ||
      ino.status().code() == ErrorCode::kNotDir) {
    return false;
  }
  return ino.status();
}

Status Vfs::SyncFs() { return fs_->SyncFs(); }

Status Vfs::Unmount() {
  for (FdShard& s : fd_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    FdShard::SlotArray* arr = s.table_owner.get();
    for (size_t i = 0; i <= arr->mask; i++) {
      const int k = arr->slots[i].fd.load(std::memory_order_relaxed);
      if (k != FdShard::kEmpty && k != FdShard::kTombstone) {
        fd_retired_.Retire(arr->slots[i].state.load(std::memory_order_relaxed));
      }
      // Emptying (not tombstoning) breaks probe chains, which is fine when
      // the whole table goes: any concurrent lookup conclusively misses.
      arr->slots[i].fd.store(FdShard::kEmpty, std::memory_order_release);
    }
    s.used = 0;
    s.occupied = 0;
  }
  fd_retired_.TryReclaim();
  for (DcacheShard& s : dcache_shards_) {
    std::unique_lock lock(s.mu);
    s.map.clear();
  }
  return fs_->Unmount();
}

Status Vfs::WriteFile(std::string_view path, std::string_view contents) {
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kCreate | kWrOnly | kTrunc));
  Result<size_t> n = Write(fd, contents.data(), contents.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  if (*n != contents.size()) {
    return Status(ErrorCode::kIoError, "short write");
  }
  return close_st;
}

Result<std::string> Vfs::ReadFileToString(std::string_view path) {
  HINFS_ASSIGN_OR_RETURN(InodeAttr attr, Stat(path));
  HINFS_ASSIGN_OR_RETURN(int fd, Open(path, kRdOnly));
  std::string out(attr.size, '\0');
  Result<size_t> n = Read(fd, out.data(), out.size());
  Status close_st = Close(fd);
  if (!n.ok()) {
    return n.status();
  }
  out.resize(*n);
  if (!close_st.ok()) {
    return close_st;
  }
  return out;
}

}  // namespace hinfs
