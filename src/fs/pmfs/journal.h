// Undo journal with cacheline-sized log entries, modeled on PMFS's logging.
//
// Protocol (undo logging):
//   1. Begin() a transaction.
//   2. LogOldValue(addr, len): append entries holding the *current* NVMM content
//      of the metadata about to be modified; entries are flushed before the
//      caller performs its in-place updates.
//   3. Caller performs in-place metadata updates with StorePersistent.
//   4. Commit(): append+flush a commit entry.
// Recovery: scan the ring; transactions with no commit entry have their logged
// old values copied back (undoing partial updates); committed transactions are
// left alone. The ring is then reset.
//
// Each 64-byte entry carries a `valid` flag written as the last 4 bytes of the
// cacheline. Writes within one cacheline are never reordered by the processor
// (the architectural guarantee the paper leans on), so an entry whose valid
// flag equals the generation tag is guaranteed complete.
//
// HiNFS's ordered data mode is built on top: HinfsFs persists the data blocks
// tracked by a transaction handle before calling Commit(), so the commit record
// never becomes durable before the data it orders against (paper §4.1).

#ifndef SRC_FS_PMFS_JOURNAL_H_
#define SRC_FS_PMFS_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/status.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

// One cacheline-sized journal entry.
struct JournalEntry {
  uint64_t txn_id;
  uint64_t addr;       // NVMM byte address whose old content is logged
  uint16_t len;        // bytes of old content in data[] (0 for commit entries)
  uint16_t type;       // JournalEntryType
  uint32_t reserved;
  uint8_t data[32];
  uint32_t generation;  // ring generation tag
  uint32_t valid;       // written last; equals generation when entry is complete
};
static_assert(sizeof(JournalEntry) == kCachelineSize);

enum JournalEntryType : uint16_t {
  kJournalUndo = 1,
  kJournalCommit = 2,
};

inline constexpr size_t kJournalEntryPayload = sizeof(JournalEntry::data);

class Journal;

// Handle for one metadata transaction. Obtained from Journal::Begin().
class Transaction {
 public:
  // Logs the current NVMM content of [addr, addr+len) so a crash before
  // Commit() restores it. Must be called before the in-place update.
  Status LogOldValue(uint64_t addr, size_t len);

  // Marks the transaction durable. After Commit() returns, the in-place
  // updates are the recovery outcome.
  Status Commit();

  uint64_t id() const { return id_; }

 private:
  friend class Journal;
  Transaction(Journal* journal, uint64_t id) : journal_(journal), id_(id) {}

  Journal* journal_;
  uint64_t id_;
};

class Journal {
 public:
  // The journal ring lives at [ring_off, ring_off + ring_bytes) on `nvmm`.
  Journal(NvmmDevice* nvmm, uint64_t ring_off, uint64_t ring_bytes);

  // Initializes an empty ring (format time).
  Status Format();

  // Scans the ring and undoes every uncommitted transaction (mount time).
  // Returns the number of transactions rolled back.
  Result<uint64_t> Recover();

  Transaction Begin();

  // Internal (used by Transaction).
  Status AppendUndo(uint64_t txn_id, uint64_t addr, size_t len);
  Status AppendCommit(uint64_t txn_id);

  uint64_t capacity_entries() const { return capacity_; }

  // Fault injection for crashlab: when set, journal entries (undo and commit)
  // are flushed but the trailing fence is skipped. Invisible under kClflush
  // (flush alone is durable there). Under kClflushopt/kClwb an undo entry can
  // stay pending while the caller's in-place update lands with its own fence —
  // a crash in that window exposes a torn transaction with no rollback record.
  // (Dropping only the *commit* fence is provably benign in this codebase:
  // every operation ends with a fenced in-place mtime/size update that rescues
  // the pending commit line, and crashlab confirms zero violations for it.)
  void set_skip_append_fence(bool v) { skip_append_fence_ = v; }

 private:
  Status AppendEntry(const JournalEntry& proto, bool is_commit);
  uint64_t DrainThreshold() const;

  NvmmDevice* nvmm_;
  uint64_t ring_off_;
  uint64_t capacity_;  // entries in the ring

  std::mutex mu_;
  std::condition_variable wrap_cv_;
  uint64_t active_txns_ = 0;
  uint64_t next_txn_id_ = 1;
  uint64_t head_ = 0;        // next slot to write
  uint32_t generation_ = 1;  // bumped each time the ring wraps
  bool skip_append_fence_ = false;
};

}  // namespace hinfs

#endif  // SRC_FS_PMFS_JOURNAL_H_
