// Cacheline Bitmap helpers: 64 cachelines per 4 KB block, one bit per line.
//
// The paper tracks, for every DRAM buffer block, which cachelines hold data in
// DRAM (valid) and which of those were modified (dirty). Reads merge DRAM and
// NVMM by runs of identical bits ("a single memcpy operation is used to copy
// the data in the consecutive cachelines the corresponding bits of which have
// the same value"); writebacks flush dirty runs only (CLFW).

#ifndef SRC_HINFS_CACHELINE_BITMAP_H_
#define SRC_HINFS_CACHELINE_BITMAP_H_

#include <bit>
#include <cstdint>

#include "src/common/constants.h"

namespace hinfs {

// Bits [first_line, last_line] inclusive, for the lines covering
// [offset, offset + len) within a block.
inline uint64_t LineMaskFor(size_t offset, size_t len) {
  if (len == 0) {
    return 0;
  }
  const size_t first = offset / kCachelineSize;
  const size_t last = (offset + len - 1) / kCachelineSize;
  const uint64_t upto_last = last == 63 ? ~0ull : ((1ull << (last + 1)) - 1);
  const uint64_t below_first = (1ull << first) - 1;
  return upto_last & ~below_first;
}

// Mask of lines *fully covered* by [offset, offset+len) — these need no
// fetch-before-write under CLFW.
inline uint64_t FullLineMaskFor(size_t offset, size_t len) {
  if (len == 0) {
    return 0;
  }
  const size_t first_full = (offset + kCachelineSize - 1) / kCachelineSize;
  const size_t end_full = (offset + len) / kCachelineSize;  // exclusive
  if (end_full <= first_full) {
    return 0;
  }
  uint64_t mask = end_full >= 64 ? ~0ull : ((1ull << end_full) - 1);
  mask &= ~((1ull << first_full) - 1);
  return mask;
}

// A maximal run of consecutive set bits within `mask` starting at or after
// `from`; returns false when no bits remain.
struct LineRun {
  size_t first_line;
  size_t count;
};
inline bool NextRun(uint64_t mask, size_t from, LineRun* run) {
  if (from >= 64) {
    return false;
  }
  uint64_t m = mask >> from << from;  // clear bits below `from`
  if (m == 0) {
    return false;
  }
  const size_t start = static_cast<size_t>(std::countr_zero(m));
  uint64_t shifted = m >> start;
  const size_t len = static_cast<size_t>(std::countr_one(shifted));
  run->first_line = start;
  run->count = len;
  return true;
}

inline int CountLines(uint64_t mask) { return std::popcount(mask); }

}  // namespace hinfs

#endif  // SRC_HINFS_CACHELINE_BITMAP_H_
