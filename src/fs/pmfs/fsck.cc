#include "src/fs/pmfs/fsck.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "src/fs/pmfs/layout.h"
#include "src/vfs/file_system.h"

namespace hinfs {
namespace {

uint64_t RadixCapacityBlocks(uint8_t height) {
  uint64_t cap = 1;
  for (uint8_t i = 0; i < height; i++) {
    cap *= kRadixFanout;
  }
  return cap;
}

class Checker {
 public:
  explicit Checker(NvmmDevice* nvmm) : nvmm_(nvmm) {}

  Result<FsckReport> Run() {
    HINFS_RETURN_IF_ERROR(CheckSuperblock());
    HINFS_RETURN_IF_ERROR(LoadBitmap());
    HINFS_RETURN_IF_ERROR(CheckInodes());
    HINFS_RETURN_IF_ERROR(CheckDirectoryTree());
    CheckLinkCounts();
    CheckBitmapAccounting();
    return std::move(report_);
  }

 private:
  void Error(std::string msg) { report_.errors.push_back(std::move(msg)); }
  void Warn(std::string msg) { report_.warnings.push_back(std::move(msg)); }

  Status CheckSuperblock() {
    HINFS_RETURN_IF_ERROR(nvmm_->Load(0, &sb_, sizeof(sb_)));
    if (sb_.magic != kPmfsMagic) {
      Error("superblock: bad magic");
      return Status(ErrorCode::kCorrupt, "bad magic");
    }
    if (sb_.device_bytes > nvmm_->size()) {
      Error("superblock: device_bytes exceeds device");
    }
    if (sb_.data_off + sb_.data_blocks * kBlockSize > nvmm_->size()) {
      Error("superblock: data area exceeds device");
      return Status(ErrorCode::kCorrupt, "geometry");
    }
    if (sb_.inode_table_off + sb_.max_inodes * sizeof(PmfsInode) > sb_.bitmap_off) {
      Error("superblock: inode table overlaps bitmap");
    }
    return OkStatus();
  }

  Status LoadBitmap() {
    bitmap_.resize((sb_.data_blocks + 7) / 8);
    HINFS_RETURN_IF_ERROR(nvmm_->Load(sb_.bitmap_off, bitmap_.data(), bitmap_.size()));
    for (uint64_t b = 0; b < sb_.data_blocks; b++) {
      if (BitSet(b)) {
        report_.allocated_blocks++;
      }
    }
    return OkStatus();
  }

  bool BitSet(uint64_t block) const { return (bitmap_[block / 8] >> (block % 8)) & 1; }

  // Claims a block for `ino`; reports double-use and unallocated references.
  void Claim(uint64_t block, uint64_t ino, const char* what) {
    char buf[128];
    if (block >= sb_.data_blocks) {
      std::snprintf(buf, sizeof(buf), "ino %llu: %s block %llu out of bounds",
                    (unsigned long long)ino, what, (unsigned long long)block);
      Error(buf);
      return;
    }
    if (!BitSet(block)) {
      std::snprintf(buf, sizeof(buf), "ino %llu: %s block %llu not marked allocated",
                    (unsigned long long)ino, what, (unsigned long long)block);
      Error(buf);
    }
    auto [it, inserted] = owner_.emplace(block, ino);
    if (!inserted) {
      std::snprintf(buf, sizeof(buf), "block %llu referenced by both ino %llu and ino %llu",
                    (unsigned long long)block, (unsigned long long)it->second,
                    (unsigned long long)ino);
      Error(buf);
      return;
    }
    report_.referenced_blocks++;
  }

  Status WalkRadix(uint64_t ino, uint64_t node, uint8_t height) {
    Claim(node, ino, height > 0 ? "radix node" : "data");
    if (height == 0 || node >= sb_.data_blocks) {
      return OkStatus();
    }
    std::vector<uint64_t> slots(kRadixFanout);
    HINFS_RETURN_IF_ERROR(
        nvmm_->Load(sb_.data_off + node * kBlockSize, slots.data(), kBlockSize));
    for (uint64_t child : slots) {
      if (child != 0) {
        HINFS_RETURN_IF_ERROR(WalkRadix(ino, child, static_cast<uint8_t>(height - 1)));
      }
    }
    return OkStatus();
  }

  Status CheckInodes() {
    char buf[128];
    for (uint64_t ino = 1; ino <= sb_.max_inodes; ino++) {
      PmfsInode inode;
      HINFS_RETURN_IF_ERROR(
          nvmm_->Load(sb_.inode_table_off + (ino - 1) * sizeof(PmfsInode), &inode,
                      sizeof(inode)));
      if (inode.ino == 0) {
        continue;
      }
      if (inode.ino != ino) {
        std::snprintf(buf, sizeof(buf), "inode slot %llu holds ino %llu",
                      (unsigned long long)ino, (unsigned long long)inode.ino);
        Error(buf);
        continue;
      }
      report_.live_inodes++;
      inodes_[ino] = inode;
      if (inode.type == static_cast<uint8_t>(FileType::kDirectory)) {
        report_.directories++;
      } else if (inode.type == static_cast<uint8_t>(FileType::kRegular)) {
        report_.regular_files++;
      } else {
        std::snprintf(buf, sizeof(buf), "ino %llu: invalid type %u", (unsigned long long)ino,
                      inode.type);
        Error(buf);
      }
      if (inode.radix_height > 4) {
        std::snprintf(buf, sizeof(buf), "ino %llu: implausible radix height %u",
                      (unsigned long long)ino, inode.radix_height);
        Error(buf);
        continue;
      }
      const uint64_t capacity_bytes = RadixCapacityBlocks(inode.radix_height) * kBlockSize;
      if (inode.radix_height > 0 && inode.size > capacity_bytes) {
        std::snprintf(buf, sizeof(buf), "ino %llu: size %llu exceeds tree capacity %llu",
                      (unsigned long long)ino, (unsigned long long)inode.size,
                      (unsigned long long)capacity_bytes);
        Error(buf);
      }
      if (inode.radix_height > 0) {
        HINFS_RETURN_IF_ERROR(WalkRadix(ino, inode.radix_root, inode.radix_height));
      }
    }
    if (inodes_.count(kRootIno) == 0) {
      Error("root inode missing");
      return Status(ErrorCode::kCorrupt, "no root");
    }
    if (inodes_[kRootIno].type != static_cast<uint8_t>(FileType::kDirectory)) {
      Error("root inode is not a directory");
    }
    return OkStatus();
  }

  // Reads a directory's dirents via its radix tree.
  Status ForEachDirent(const PmfsInode& dir,
                       const std::function<void(const PmfsDirent&)>& fn) {
    const uint64_t nblocks = dir.size / kBlockSize;
    std::vector<uint8_t> block(kBlockSize);
    for (uint64_t fb = 0; fb < nblocks; fb++) {
      // Manual radix walk (read-only).
      uint64_t node = dir.radix_root;
      bool hole = dir.radix_height == 0;
      for (int level = dir.radix_height - 1; level >= 0 && !hole; level--) {
        const uint64_t slot = (fb / RadixCapacityBlocks(static_cast<uint8_t>(level))) %
                              kRadixFanout;
        uint64_t next = 0;
        if (node < sb_.data_blocks) {
          HINFS_RETURN_IF_ERROR(nvmm_->Load(
              sb_.data_off + node * kBlockSize + slot * sizeof(uint64_t), &next, sizeof(next)));
        }
        node = next;
        hole = node == 0;
      }
      if (hole) {
        continue;
      }
      HINFS_RETURN_IF_ERROR(
          nvmm_->Load(sb_.data_off + node * kBlockSize, block.data(), kBlockSize));
      const auto* entries = reinterpret_cast<const PmfsDirent*>(block.data());
      for (size_t i = 0; i < kBlockSize / sizeof(PmfsDirent); i++) {
        if (entries[i].ino != 0) {
          fn(entries[i]);
        }
      }
    }
    return OkStatus();
  }

  Status CheckDirectoryTree() {
    char buf[160];
    for (const auto& [ino, inode] : inodes_) {
      if (inode.type != static_cast<uint8_t>(FileType::kDirectory)) {
        continue;
      }
      Status st = ForEachDirent(inode, [&](const PmfsDirent& d) {
        if (d.name_len == 0 || d.name_len > kMaxDirentName) {
          std::snprintf(buf, sizeof(buf), "dir %llu: dirent with bad name length %u",
                        (unsigned long long)ino, d.name_len);
          Error(buf);
        }
        auto it = inodes_.find(d.ino);
        if (it == inodes_.end()) {
          std::snprintf(buf, sizeof(buf), "dir %llu: dirent '%.*s' points to dead ino %llu",
                        (unsigned long long)ino, d.name_len, d.name,
                        (unsigned long long)d.ino);
          Error(buf);
          return;
        }
        if (d.type != it->second.type) {
          std::snprintf(buf, sizeof(buf), "dir %llu: dirent '%.*s' type mismatch",
                        (unsigned long long)ino, d.name_len, d.name);
          Error(buf);
        }
        refcount_[d.ino]++;
      });
      HINFS_RETURN_IF_ERROR(st);
    }
    return OkStatus();
  }

  void CheckLinkCounts() {
    char buf[128];
    for (const auto& [ino, inode] : inodes_) {
      if (ino == kRootIno) {
        continue;
      }
      const uint64_t refs = refcount_.count(ino) != 0 ? refcount_[ino] : 0;
      if (refs == 0 && inode.nlink == 0) {
        // Unlink crashed between its dirent-clear and slot-free transactions;
        // the nlink = 0 marker makes this a reclaimable orphan, not a lost
        // file. Mount-time recovery frees it.
        std::snprintf(buf, sizeof(buf), "ino %llu is an unreclaimed orphan (nlink 0)",
                      (unsigned long long)ino);
        Warn(buf);
      } else if (refs == 0) {
        std::snprintf(buf, sizeof(buf), "ino %llu is allocated but unreachable",
                      (unsigned long long)ino);
        Error(buf);
      } else if (refs > 1 &&
                 inode.type == static_cast<uint8_t>(FileType::kDirectory)) {
        std::snprintf(buf, sizeof(buf), "directory ino %llu has %llu parents",
                      (unsigned long long)ino, (unsigned long long)refs);
        Error(buf);
      }
    }
  }

  void CheckBitmapAccounting() {
    // Block 0 is the reserved hole sentinel and never referenced.
    uint64_t reserved = sb_.data_blocks > 0 && BitSet(0) && owner_.count(0) == 0 ? 1 : 0;
    if (report_.allocated_blocks >= report_.referenced_blocks + reserved) {
      report_.leaked_blocks =
          report_.allocated_blocks - report_.referenced_blocks - reserved;
      if (report_.leaked_blocks > 0) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%llu allocated block(s) are unreferenced (leak)",
                      (unsigned long long)report_.leaked_blocks);
        Warn(buf);
      }
    }
  }

  NvmmDevice* nvmm_;
  PmfsSuperblock sb_{};
  std::vector<uint8_t> bitmap_;
  std::map<uint64_t, PmfsInode> inodes_;
  std::map<uint64_t, uint64_t> owner_;     // block -> owning ino
  std::map<uint64_t, uint64_t> refcount_;  // ino -> dirent references
  FsckReport report_;
};

}  // namespace

std::string FsckReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %llu inode(s) (%llu dir, %llu file), %llu referenced block(s), "
                "%llu allocated, %llu leaked, %zu error(s), %zu warning(s)",
                clean() ? "clean" : "CORRUPT", (unsigned long long)live_inodes,
                (unsigned long long)directories, (unsigned long long)regular_files,
                (unsigned long long)referenced_blocks, (unsigned long long)allocated_blocks,
                (unsigned long long)leaked_blocks, errors.size(), warnings.size());
  return buf;
}

Result<FsckReport> FsckPmfs(NvmmDevice* nvmm) { return Checker(nvmm).Run(); }

}  // namespace hinfs
