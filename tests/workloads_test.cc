#include <gtest/gtest.h>

#include "src/workloads/filebench.h"
#include "src/workloads/fs_setup.h"
#include "src/workloads/macro.h"
#include "src/workloads/trace.h"

namespace hinfs {
namespace {

TestBedConfig QuickConfig() {
  TestBedConfig cfg;
  cfg.nvmm.size_bytes = 128 << 20;
  cfg.nvmm.latency_mode = LatencyMode::kNone;
  cfg.hinfs.buffer_bytes = 8 << 20;
  cfg.hinfs.writeback_period_ms = 20;
  cfg.pmfs.max_inodes = 1 << 15;
  return cfg;
}

FilebenchConfig QuickFilebench() {
  FilebenchConfig cfg;
  cfg.nfiles = 40;
  cfg.mean_file_size = 16 * 1024;
  cfg.io_size = 8 * 1024;
  cfg.duration_ms = 100;
  cfg.threads = 2;
  return cfg;
}

class PersonalityTest : public ::testing::TestWithParam<Personality> {};

TEST_P(PersonalityTest, RunsOnHinfs) {
  auto bed = MakeTestBed(FsKind::kHinfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  FilebenchConfig cfg = QuickFilebench();
  ASSERT_TRUE(PrepareFileset((*bed)->vfs.get(), cfg).ok());
  auto result = RunFilebench((*bed)->vfs.get(), GetParam(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ops, 0u);
  EXPECT_GT(result->OpsPerSec(), 0.0);
  ASSERT_TRUE((*bed)->vfs->Unmount().ok());
}

TEST_P(PersonalityTest, RunsOnPmfs) {
  auto bed = MakeTestBed(FsKind::kPmfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  FilebenchConfig cfg = QuickFilebench();
  ASSERT_TRUE(PrepareFileset((*bed)->vfs.get(), cfg).ok());
  auto result = RunFilebench((*bed)->vfs.get(), GetParam(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(All, PersonalityTest,
                         ::testing::Values(Personality::kFileserver, Personality::kWebserver,
                                           Personality::kWebproxy, Personality::kVarmail),
                         [](const auto& info) { return PersonalityName(info.param); });

TEST(PersonalityPropertyTest, VarmailIssuesFsyncs) {
  auto bed = MakeTestBed(FsKind::kHinfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  FilebenchConfig cfg = QuickFilebench();
  ASSERT_TRUE(PrepareFileset((*bed)->vfs.get(), cfg).ok());
  auto result = RunFilebench((*bed)->vfs.get(), Personality::kVarmail, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->fsyncs, 0u);
}

TEST(PersonalityPropertyTest, WebserverIsReadDominated) {
  auto bed = MakeTestBed(FsKind::kPmfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  FilebenchConfig cfg = QuickFilebench();
  ASSERT_TRUE(PrepareFileset((*bed)->vfs.get(), cfg).ok());
  auto result = RunFilebench((*bed)->vfs.get(), Personality::kWebserver, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->bytes_read, result->bytes_written * 5);
}

TEST(FioTest, RespectsWriteFraction) {
  auto bed = MakeTestBed(FsKind::kPmfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  FioConfig cfg;
  cfg.file_bytes = 4 << 20;
  cfg.io_size = 4096;
  cfg.duration_ms = 100;
  auto result = RunFioRandRw((*bed)->vfs.get(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ops, 0u);
  // R:W is 1:2, so written bytes should be roughly twice read bytes.
  EXPECT_GT(result->bytes_written, result->bytes_read);
}

// --- traces --------------------------------------------------------------------

TEST(TraceSynthTest, FsyncByteFractionsMatchFig2) {
  const auto tpcc = ComputeFsyncBytes(SynthesizeTrace(TpccTraceProfile()));
  EXPECT_GT(tpcc.Percent(), 85.0);
  const auto fb = ComputeFsyncBytes(SynthesizeTrace(FacebookProfile()));
  EXPECT_GT(fb.Percent(), 55.0);
  EXPECT_LT(fb.Percent(), 95.0);
  const auto usr0 = ComputeFsyncBytes(SynthesizeTrace(Usr0Profile()));
  EXPECT_GT(usr0.Percent(), 15.0);
  EXPECT_LT(usr0.Percent(), 60.0);
  const auto lasr = ComputeFsyncBytes(SynthesizeTrace(LasrProfile()));
  EXPECT_EQ(lasr.Percent(), 0.0);
}

TEST(TraceSynthTest, Deterministic) {
  const auto a = SynthesizeTrace(Usr0Profile());
  const auto b = SynthesizeTrace(Usr0Profile());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].offset, b[i].offset);
  }
}

TEST(TraceSynthTest, OpsStayInBounds) {
  TraceProfile p = FacebookProfile();
  p.num_ops = 5000;
  for (const TraceOp& op : SynthesizeTrace(p)) {
    if (op.type == TraceOpType::kWrite || op.type == TraceOpType::kRead) {
      EXPECT_LT(op.file, p.num_files);
      EXPECT_LE(op.offset + op.size, p.max_file_bytes + 2 * p.mean_io * 2);
      EXPECT_GT(op.size, 0u);
    }
  }
}

TEST(TraceSerializationTest, RoundTrips) {
  TraceProfile p = Usr0Profile();
  p.num_ops = 2000;
  const auto trace = SynthesizeTrace(p);
  const std::string text = TraceToText(trace);
  auto parsed = TraceFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); i++) {
    ASSERT_EQ(parsed->at(i).type, trace[i].type) << i;
    ASSERT_EQ(parsed->at(i).file, trace[i].file) << i;
    ASSERT_EQ(parsed->at(i).offset, trace[i].offset) << i;
    ASSERT_EQ(parsed->at(i).size, trace[i].size) << i;
  }
}

TEST(TraceSerializationTest, SkipsCommentsAndBlanks) {
  auto parsed = TraceFromText("# header\n\nW 3 100 64\nF 3 0 0\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->at(0).type, TraceOpType::kWrite);
  EXPECT_EQ(parsed->at(1).type, TraceOpType::kFsync);
}

TEST(TraceSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(TraceFromText("X 1 2 3\n").ok());
  EXPECT_FALSE(TraceFromText("hello world\n").ok());
}

class TraceReplayTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(TraceReplayTest, ReplaysUsr0) {
  auto bed = MakeTestBed(GetParam(), QuickConfig());
  ASSERT_TRUE(bed.ok());
  TraceProfile p = Usr0Profile();
  p.num_ops = 3000;
  auto breakdown = ReplayTrace((*bed)->vfs.get(), SynthesizeTrace(p));
  ASSERT_TRUE(breakdown.ok()) << breakdown.status().ToString();
  EXPECT_GT(breakdown->ops, 0u);
  EXPECT_GT(breakdown->write_ns, 0u);
  EXPECT_GT(breakdown->fsync_ns, 0u);
  ASSERT_TRUE((*bed)->vfs->Unmount().ok());
}

INSTANTIATE_TEST_SUITE_P(SomeFs, TraceReplayTest,
                         ::testing::Values(FsKind::kPmfs, FsKind::kHinfs, FsKind::kHinfsWb,
                                           FsKind::kExt4Nvmmbd),
                         [](const auto& info) {
                           std::string name = FsKindName(info.param);
                           for (char& c : name) {
                             if (c == '+' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- macro workloads ------------------------------------------------------------

TEST(MacroTest, PostmarkRuns) {
  auto bed = MakeTestBed(FsKind::kHinfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  PostmarkConfig cfg;
  cfg.nfiles = 50;
  cfg.transactions = 200;
  auto result = RunPostmark((*bed)->vfs.get(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ops, 250u);
  // Everything was deleted at the end.
  auto entries = (*bed)->vfs->ReadDir("/pm");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(MacroTest, TpccIssuesFsyncPerTransaction) {
  auto bed = MakeTestBed(FsKind::kHinfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  TpccConfig cfg;
  cfg.transactions = 100;
  cfg.warehouses = 1;
  auto result = RunTpcc((*bed)->vfs.get(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->fsyncs, 100u);
  EXPECT_EQ(result->ops, 100u);
}

TEST(MacroTest, KernelGrepReadsEverything) {
  auto bed = MakeTestBed(FsKind::kPmfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  KernelTreeConfig cfg;
  cfg.dirs = 4;
  cfg.files_per_dir = 5;
  cfg.headers = 6;
  ASSERT_TRUE(BuildKernelTree((*bed)->vfs.get(), cfg).ok());
  auto result = RunKernelGrep((*bed)->vfs.get(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops, 4u * 5 + 6);
  EXPECT_EQ(result->bytes_written, 0u);
}

TEST(MacroTest, KernelMakeWritesObjects) {
  auto bed = MakeTestBed(FsKind::kHinfs, QuickConfig());
  ASSERT_TRUE(bed.ok());
  KernelTreeConfig cfg;
  cfg.dirs = 3;
  cfg.files_per_dir = 4;
  cfg.headers = 5;
  ASSERT_TRUE(BuildKernelTree((*bed)->vfs.get(), cfg).ok());
  auto result = RunKernelMake((*bed)->vfs.get(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->bytes_written, 0u);
  EXPECT_TRUE((*bed)->vfs->Exists("/obj/vmlinux").value_or(false));
}

}  // namespace
}  // namespace hinfs
