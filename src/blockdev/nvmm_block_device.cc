#include "src/blockdev/nvmm_block_device.h"

namespace hinfs {

NvmmBlockDevice::NvmmBlockDevice(NvmmDevice* nvmm, uint64_t first_byte, uint64_t num_blocks,
                                 const NvmmBlockDeviceConfig& config)
    : nvmm_(nvmm), first_byte_(first_byte), num_blocks_(num_blocks), config_(config) {}

Status NvmmBlockDevice::CheckBlock(uint64_t block) const {
  if (block >= num_blocks_) {
    return Status(ErrorCode::kOutOfRange, "block beyond device");
  }
  return OkStatus();
}

Status NvmmBlockDevice::ReadBlock(uint64_t block, void* dst) {
  HINFS_RETURN_IF_ERROR(CheckBlock(block));
  nvmm_->latency().Charge(config_.block_layer_overhead_ns);
  return nvmm_->Load(first_byte_ + block * kBlockSize, dst, kBlockSize);
}

Status NvmmBlockDevice::WriteBlock(uint64_t block, const void* src) {
  HINFS_RETURN_IF_ERROR(CheckBlock(block));
  nvmm_->latency().Charge(config_.block_layer_overhead_ns);
  // A brd-style RAM disk write is durable when the request completes, so the
  // copy into NVMM pays full persistence cost here.
  return nvmm_->StorePersistent(first_byte_ + block * kBlockSize, src, kBlockSize);
}

Status NvmmBlockDevice::Sync() {
  // Writes are durable on completion (see WriteBlock); nothing is pending.
  return OkStatus();
}

}  // namespace hinfs
