file(REMOVE_RECURSE
  "CMakeFiles/hinfs_shell.dir/hinfs_shell.cpp.o"
  "CMakeFiles/hinfs_shell.dir/hinfs_shell.cpp.o.d"
  "hinfs_shell"
  "hinfs_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
