# Empty compiler generated dependencies file for hinfs_blockdev.
# This may be replaced when dependencies are built.
