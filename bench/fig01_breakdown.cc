// Fig. 1: time breakdown of the fio microbenchmark on PMFS (R:W = 1:2).
// Reproduces the paper's observation that direct Write Access dominates and
// its share grows with I/O size (>80 % at >= 4 KB).

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 1", "fio on PMFS: Read Access / Write Access / Others breakdown");

  std::vector<BenchJsonRow> rows;
  std::printf("%-8s %10s %10s %10s %12s\n", "iosize", "read%", "write%", "others%", "ops");
  for (size_t io_size : {size_t{64}, size_t{256}, size_t{1024}, size_t{4096}, size_t{16384},
                         size_t{65536}, size_t{1 << 20}}) {
    auto bed = MakeTestBed(FsKind::kPmfs, PaperBedConfig());
    if (!bed.ok()) {
      std::fprintf(stderr, "setup: %s\n", bed.status().ToString().c_str());
      return 1;
    }
    FioConfig cfg;
    cfg.file_bytes = 64ull << 20;
    cfg.io_size = io_size;
    cfg.duration_ms = BenchDurationMs();
    cfg.threads = 1;
    auto result = RunFioRandRw((*bed)->vfs.get(), cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "fio: %s\n", result.status().ToString().c_str());
      return 1;
    }
    StatsRegistry& stats = (*bed)->fs->stats();
    // The preallocation writes also hit the write counter; reset before the
    // measured phase is not possible without touching RunFioRandRw, so we
    // account the preallocation explicitly: it wrote file_bytes sequentially.
    const double total_ns = result->seconds * 1e9;
    double write_ns = static_cast<double>(stats.Get(kStatWriteAccessNs));
    // Subtract the preallocation share proportionally by bytes.
    const double measured_frac =
        static_cast<double>(result->bytes_written) /
        static_cast<double>(result->bytes_written + cfg.file_bytes);
    write_ns *= measured_frac;
    const double read_ns = static_cast<double>(stats.Get(kStatReadAccessNs));
    const double others = total_ns > read_ns + write_ns ? total_ns - read_ns - write_ns : 0;
    const double denom = read_ns + write_ns + others;
    char label[32];
    if (io_size >= (1 << 20)) {
      std::snprintf(label, sizeof(label), "%zuM", io_size >> 20);
    } else if (io_size >= 1024) {
      std::snprintf(label, sizeof(label), "%zuK", io_size >> 10);
    } else {
      std::snprintf(label, sizeof(label), "%zuB", io_size);
    }
    std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %12llu\n", label, 100.0 * read_ns / denom,
                100.0 * write_ns / denom, 100.0 * others / denom,
                static_cast<unsigned long long>(result->ops));
    rows.push_back({"PMFS", "fio-randrw", "io_size", static_cast<double>(io_size),
                    static_cast<double>(result->ops) / result->seconds, "ops_per_sec"});
    rows.push_back({"PMFS", "fio-randrw", "io_size", static_cast<double>(io_size),
                    100.0 * write_ns / denom, "write_access_pct"});
    (void)(*bed)->vfs->Unmount();
  }
  std::printf("\npaper shape: Write Access share rises with I/O size, > 80%% at >= 4 KB\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
