// Geometry constants shared by every layer of the stack.

#ifndef SRC_COMMON_CONSTANTS_H_
#define SRC_COMMON_CONSTANTS_H_

#include <cstddef>
#include <cstdint>

namespace hinfs {

// Processor cacheline size; the granularity of clflush, of the Cacheline Bitmap,
// and of CLFW fetch/writeback.
inline constexpr size_t kCachelineSize = 64;

// File system / DRAM buffer block size (paper default: 4 KB).
inline constexpr size_t kBlockSize = 4096;

// Cachelines per block: the width of the Cacheline Bitmap (64 -> one uint64_t).
inline constexpr size_t kLinesPerBlock = kBlockSize / kCachelineSize;
static_assert(kLinesPerBlock == 64, "Cacheline bitmap is sized as a single uint64_t");

inline constexpr uint64_t kInvalidBlock = UINT64_MAX;

}  // namespace hinfs

#endif  // SRC_COMMON_CONSTANTS_H_
