// Blocking hinfsd client: connects to a server over a Unix-domain or TCP
// socket and presents the FsApi surface, so anything written against FsApi
// (the filebench personalities, fsload) runs over the wire unchanged.
//
// One Client speaks one connection with one outstanding request at a time
// (send, then block for the matching response). Calls are serialized by an
// internal mutex, so a Client may be shared, but concurrent load wants one
// Client per thread (that is what fsload does) — the fds it opens are
// session-scoped on the server and die with the connection.

#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/server/protocol.h"
#include "src/vfs/fs_api.h"

namespace hinfs {
namespace server {

class Client final : public FsApi {
 public:
  static Result<std::unique_ptr<Client>> ConnectUnix(const std::string& path);
  static Result<std::unique_ptr<Client>> ConnectTcp(const std::string& host, int port);

  ~Client() override;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Round-trips an opaque payload through the server.
  Status Ping(std::string_view payload = "ping");

  // Session handshake (protocol v2): announces this connection's tenant id
  // and, when weight > 0, asks the server to set that tenant's scheduling
  // weight. Returns the tenant id the server actually granted (clamped; 0 on
  // a server without QoS). Optional — skipping it leaves the session on the
  // system tenant.
  Result<uint32_t> Hello(uint32_t tenant, uint32_t weight = 0);

  // Shuts the connection down cleanly. Further calls fail with kIoError.
  void Disconnect();

  // Completed request/response round-trips on this connection.
  uint64_t rpcs() const { return rpcs_; }

  // --- FsApi ------------------------------------------------------------------
  Result<int> Open(std::string_view path, uint32_t flags) override;
  Status Close(int fd) override;
  Result<size_t> Read(int fd, void* dst, size_t len) override;
  Result<size_t> Write(int fd, const void* src, size_t len) override;
  Result<size_t> Pread(int fd, void* dst, size_t len, uint64_t offset) override;
  Result<size_t> Pwrite(int fd, const void* src, size_t len, uint64_t offset) override;
  Result<uint64_t> Seek(int fd, uint64_t offset) override;
  Status Fsync(int fd) override;
  Status Fdatasync(int fd) override;
  Status Sync(int fd, const SyncOptions& options) override;
  Status Ftruncate(int fd, uint64_t size) override;
  Result<InodeAttr> Fstat(int fd) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Unlink(std::string_view path) override;
  Status Rename(std::string_view from, std::string_view to) override;
  Result<InodeAttr> Stat(std::string_view path) override;
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) override;
  Result<bool> Exists(std::string_view path) override;
  Status SyncFs() override;

 private:
  explicit Client(int sock) : sock_(sock) {}

  // Sends `req` and blocks for its response. Transport failures and protocol
  // violations surface as kIoError; a server-side error Status is
  // reconstructed from the response (code + message).
  Result<Response> Call(Request req);
  // Like Call, but an error-status response is returned as a Status (the
  // common case for ops whose only interesting result is success).
  Status CallStatus(Request req);

  int sock_ = -1;
  uint64_t next_id_ = 1;
  uint64_t rpcs_ = 0;
  std::mutex mu_;
};

}  // namespace server
}  // namespace hinfs

#endif  // SRC_SERVER_CLIENT_H_
