// Fig. 8: throughput as the client thread count grows (paper: 1-10 threads).
//
// `--json <path>` additionally writes {fs, personality, threads, ops_per_sec}
// rows (e.g. BENCH_fig08.json) for cross-PR perf tracking. The HiNFS buffer
// shard count follows HINFS_BUFFER_SHARDS (0 = auto), so the sharded-buffer
// speedup is measured by comparing HINFS_BUFFER_SHARDS=1 against >= 4.
// `--fs`, `--personality`, and `--threads` narrow the sweep to a slice of the
// cross-product (the CI read-smoke gate and regression bisection both use
// this; see tools/bench_compare.py's matching filters).

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv, bench::ArgParser::kFilterFlags);
  PrintBenchHeader("Fig. 8", "filebench throughput for increasing thread counts");
  const HinfsOptions env_opts = HinfsOptions::FromEnv();
  std::printf("hinfs buffer shards: %d (0 = auto), writeback workers: %d, steal: %s\n\n",
              env_opts.buffer_shards, env_opts.writeback_threads,
              env_opts.steal_frames ? "on" : "off");

  const FsKind kinds[] = {FsKind::kPmfs, FsKind::kExt4Dax, FsKind::kExt2Nvmmbd,
                          FsKind::kExt4Nvmmbd, FsKind::kHinfs};
  const Personality personalities[] = {Personality::kFileserver, Personality::kWebserver,
                                       Personality::kWebproxy, Personality::kVarmail};
  const int max_threads = BenchMaxThreads();
  std::vector<BenchJsonRow> rows;

  for (Personality p : personalities) {
    if (!args.PersonalityEnabled(PersonalityName(p))) {
      continue;
    }
    std::printf("[%s] ops/s\n", PersonalityName(p));
    std::printf("%-13s", "threads");
    for (int t = 1; t <= max_threads; t *= 2) {
      if (!args.ThreadsEnabled(t)) continue;
      std::printf(" %10d", t);
    }
    std::printf("\n");
    for (FsKind kind : kinds) {
      if (!args.FsEnabled(FsKindName(kind))) {
        continue;
      }
      std::printf("%-13s", FsKindName(kind));
      for (int t = 1; t <= max_threads; t *= 2) {
        if (!args.ThreadsEnabled(t)) continue;
        FilebenchConfig cfg = PaperFilebenchConfig();
        cfg.threads = t;
        if (p == Personality::kVarmail) {
          cfg.io_size = 16 * 1024;
        }
        auto result = RunPersonalityOn(kind, p, PaperBedConfig(), cfg);
        if (!result.ok()) {
          std::fprintf(stderr, "\n%s: %s\n", FsKindName(kind),
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf(" %10.0f", result->OpsPerSec());
        std::fflush(stdout);
        rows.push_back({FsKindName(kind), PersonalityName(p), "threads",
                        static_cast<double>(t), result->OpsPerSec()});
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("paper shape: HiNFS scales best; PMFS/EXT4-DAX cap out on NVMM write\n"
              "bandwidth; NVMMBD baselines stay flat (note: this host is single-core,\n"
              "so absolute scaling is compressed — ordering is the reproducible shape)\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
