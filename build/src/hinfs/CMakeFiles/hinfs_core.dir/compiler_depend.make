# Empty compiler generated dependencies file for hinfs_core.
# This may be replaced when dependencies are built.
