// Fig. 11: single-thread throughput for NVMM write latencies of 50-800 ns.
// The HiNFS/PMFS gap widens with latency; at DRAM-like latency HiNFS is never
// worse than PMFS (the Buffer Benefit Model bypasses the buffer).

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 11", "throughput vs NVMM write latency, single thread");
  std::vector<BenchJsonRow> rows;

  const uint64_t latencies[] = {50, 100, 200, 400, 800};
  const FsKind kinds[] = {FsKind::kPmfs, FsKind::kExt4Dax, FsKind::kExt2Nvmmbd,
                          FsKind::kExt4Nvmmbd, FsKind::kHinfs};

  for (Personality p : {Personality::kFileserver, Personality::kWebproxy}) {
    std::printf("[%s] ops/s\n", PersonalityName(p));
    std::printf("%-13s", "latency(ns)");
    for (uint64_t l : latencies) {
      std::printf(" %9llu", static_cast<unsigned long long>(l));
    }
    std::printf("\n");
    for (FsKind kind : kinds) {
      std::printf("%-13s", FsKindName(kind));
      for (uint64_t l : latencies) {
        TestBedConfig bed_cfg = PaperBedConfig();
        bed_cfg.nvmm.write_latency_ns = l;
        FilebenchConfig cfg = PaperFilebenchConfig();
        cfg.threads = 1;
        auto result = RunPersonalityOn(kind, p, bed_cfg, cfg);
        if (!result.ok()) {
          std::fprintf(stderr, "\n%s: %s\n", FsKindName(kind),
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf(" %9.0f", result->OpsPerSec());
        std::fflush(stdout);
        rows.push_back({FsKindName(kind), PersonalityName(p), "latency_ns",
                        static_cast<double>(l), result->OpsPerSec(), "ops_per_sec"});
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("paper shape: HiNFS's advantage grows with NVMM write latency (up to ~6x\n"
              "over PMFS at 800 ns on webproxy); at 50 ns HiNFS is no worse than PMFS\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
