#!/usr/bin/env python3
"""Diff two bench --json outputs and flag wall-clock regressions.

Both inputs use the unified row model every bench under bench/ emits (or
google-benchmark's native JSON from micro_primitives); rows are matched on
(fs, personality, x_key, x, value_key) and compared:

    tools/bench_compare.py perf/BENCH_fig08.pre.json perf/BENCH_fig08.post.json
    tools/bench_compare.py a.json b.json --threshold 10 --fail-on-regression

The metric direction is inferred from the value_key name (ops_per_sec /
throughput are higher-is-better; *_ns / *_ms / latency are lower-is-better).
A change worse than --threshold percent is a REGRESSION and makes the exit
code 1 (the CI gate); --report-only keeps the report but always exits 0.
Comparing disjoint files is a configuration bug, so matching zero rows also
fails unless --report-only. Rows present on only one side are listed but
never fatal.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from plot_bench import load_rows  # noqa: E402  (same row model as the plotter)

LOWER_IS_BETTER = ("_ns", "_ms", "_us", "latency", "time", "bytes_written")
HIGHER_IS_BETTER = ("per_sec", "ops", "throughput", "mb_s", "iops")


def higher_is_better(value_key):
    key = value_key.lower()
    for marker in HIGHER_IS_BETTER:
        if marker in key:
            return True
    for marker in LOWER_IS_BETTER:
        if marker in key:
            return False
    return True  # benches mostly report rates; default optimistically


def row_key(r):
    return (r["fs"], r["personality"], r["x_key"], r["x"], r["value_key"])


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="bench --json output to compare against")
    ap.add_argument("candidate", help="bench --json output being evaluated")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="percent change considered a regression (default 5)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help=argparse.SUPPRESS)  # now the default; kept for old callers
    args = ap.parse_args()

    base = {row_key(r): r["value"] for r in load_rows(args.baseline)}
    cand = {row_key(r): r["value"] for r in load_rows(args.candidate)}

    regressions = []
    improvements = []
    lines = []
    for key in sorted(base.keys() & cand.keys()):
        fs, personality, x_key, x, value_key = key
        b, c = base[key], cand[key]
        if b == 0:
            continue
        pct = (c - b) / b * 100.0
        gain = pct if higher_is_better(value_key) else -pct
        tag = ""
        if gain <= -args.threshold:
            tag = "REGRESSION"
            regressions.append(key)
        elif gain >= args.threshold:
            tag = "improved"
            improvements.append(key)
        lines.append(f"  {fs:<12} {personality:<12} {x_key}={x:<8g} "
                     f"{value_key:<16} {b:>14.3f} -> {c:>14.3f}  "
                     f"{pct:+7.2f}%  {tag}")

    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    print(f"matched {len(base.keys() & cand.keys())} rows "
          f"(threshold {args.threshold:g}%)")
    for line in lines:
        print(line)

    only_base = base.keys() - cand.keys()
    only_cand = cand.keys() - base.keys()
    if only_base:
        print(f"only in baseline: {len(only_base)} rows")
    if only_cand:
        print(f"only in candidate: {len(only_cand)} rows")

    print(f"\n{len(regressions)} regression(s), {len(improvements)} improvement(s)")
    if args.report_only:
        return 0
    if not base.keys() & cand.keys():
        print("error: no rows matched between baseline and candidate", file=sys.stderr)
        return 1
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
