file(REMOVE_RECURSE
  "libhinfs_vfs.a"
)
