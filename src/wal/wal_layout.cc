#include "src/wal/wal_layout.h"

#include <array>
#include <cstring>

namespace hinfs {

namespace {

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k] maps a
// byte processed k positions earlier in an 8-byte group to its contribution.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t c = i;
    for (int k = 0; k < 8; k++) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t c = tables[0][i];
    for (int t = 1; t < 8; t++) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t WalCrc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables = BuildCrcTables();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^ kTables[5][(lo >> 16) & 0xFF] ^
        kTables[4][lo >> 24] ^ kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
        kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t WalRecordCrc(const WalRecordHeader& header, const void* payload, size_t payload_len) {
  WalRecordHeader scratch = header;
  scratch.crc = 0;
  uint32_t c = WalCrc32(&scratch, sizeof(scratch));
  if (payload_len > 0) {
    c = WalCrc32(payload, payload_len, c);
  }
  return c;
}

}  // namespace hinfs
