file(REMOVE_RECURSE
  "CMakeFiles/kvstore_wal.dir/kvstore_wal.cpp.o"
  "CMakeFiles/kvstore_wal.dir/kvstore_wal.cpp.o.d"
  "kvstore_wal"
  "kvstore_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
