// Tests for the multi-tenant QoS scheduler (src/qos/): context plumbing,
// weighted fairness, isolation/bounded waits, work conservation, the
// virtual-mode accounting-invariance contract (DESIGN.md §9), the fail-fast
// HINFS_QOS_* env validation, and the hinfsd hello handshake that binds a
// session to a tenant.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/nvmm/bandwidth_limiter.h"
#include "src/nvmm/nvmm_device.h"
#include "src/qos/qos_config.h"
#include "src/qos/qos_scheduler.h"
#include "src/qos/tenant.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace qos {
namespace {

using server::Client;
using server::Server;
using server::ServerOptions;

// --- context plumbing --------------------------------------------------------

TEST(QosContextTest, DefaultIsSystemForeground) {
  const QosContext ctx = CurrentQosContext();
  EXPECT_EQ(ctx.tenant, kSystemTenant);
  EXPECT_EQ(ctx.cls, TrafficClass::kForeground);
}

TEST(QosContextTest, ScopedContextNestsAndRestores) {
  {
    ScopedQosContext outer(3, TrafficClass::kBackground);
    EXPECT_EQ(CurrentQosContext().tenant, 3u);
    EXPECT_EQ(CurrentQosContext().cls, TrafficClass::kBackground);
    {
      ScopedQosContext inner(7, TrafficClass::kForeground);
      EXPECT_EQ(CurrentQosContext().tenant, 7u);
      EXPECT_EQ(CurrentQosContext().cls, TrafficClass::kForeground);
    }
    EXPECT_EQ(CurrentQosContext().tenant, 3u);
    EXPECT_EQ(CurrentQosContext().cls, TrafficClass::kBackground);
  }
  EXPECT_EQ(CurrentQosContext().tenant, kSystemTenant);
}

TEST(QosContextTest, ContextIsPerThread) {
  ScopedQosContext mine(5, TrafficClass::kForeground);
  std::thread other([] {
    EXPECT_EQ(CurrentQosContext().tenant, kSystemTenant);
    ScopedQosContext ctx(9, TrafficClass::kBackground);
    EXPECT_EQ(CurrentQosContext().tenant, 9u);
  });
  other.join();
  EXPECT_EQ(CurrentQosContext().tenant, 5u);
}

// --- config / env validation -------------------------------------------------

TEST(QosConfigTest, FromEnvParsesKnobs) {
  ASSERT_EQ(setenv("HINFS_QOS_TENANTS", "4", 1), 0);
  ASSERT_EQ(setenv("HINFS_QOS_WEIGHTS", "1,3,2", 1), 0);
  ASSERT_EQ(setenv("HINFS_QOS_FG_RESERVE", "0.75", 1), 0);
  const QosConfig cfg = QosConfig::FromEnv();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.tenants, 4u);
  ASSERT_EQ(cfg.weights.size(), 3u);
  EXPECT_EQ(cfg.WeightOf(1), 3u);
  EXPECT_EQ(cfg.WeightOf(3), 1u);  // unlisted tenants weigh 1
  EXPECT_DOUBLE_EQ(cfg.fg_reserve, 0.75);
  unsetenv("HINFS_QOS_TENANTS");
  unsetenv("HINFS_QOS_WEIGHTS");
  unsetenv("HINFS_QOS_FG_RESERVE");
}

TEST(QosConfigTest, DefaultsToDisabled) {
  unsetenv("HINFS_QOS_TENANTS");
  unsetenv("HINFS_QOS_WEIGHTS");
  unsetenv("HINFS_QOS_FG_RESERVE");
  const QosConfig cfg = QosConfig::FromEnv();
  EXPECT_FALSE(cfg.enabled());
}

TEST(QosConfigDeathTest, BadTenantCountExits2) {
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_TENANTS", "banana", 1);
        QosConfig::FromEnv();
      },
      ::testing::ExitedWithCode(2), "bad HINFS_QOS_TENANTS");
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_TENANTS", "64", 1);  // >= kMaxTenants
        QosConfig::FromEnv();
      },
      ::testing::ExitedWithCode(2), "bad HINFS_QOS_TENANTS");
}

TEST(QosConfigDeathTest, BadWeightsExit2) {
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_WEIGHTS", "1,0,2", 1);  // zero weight
        QosConfig::FromEnv();
      },
      ::testing::ExitedWithCode(2), "bad HINFS_QOS_WEIGHTS");
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_WEIGHTS", "1,2,", 1);  // trailing comma
        QosConfig::FromEnv();
      },
      ::testing::ExitedWithCode(2), "bad HINFS_QOS_WEIGHTS");
}

TEST(QosConfigDeathTest, BadReserveExits2) {
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_FG_RESERVE", "1.5", 1);
        QosConfig::FromEnv();
      },
      ::testing::ExitedWithCode(2), "bad HINFS_QOS_FG_RESERVE");
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_FG_RESERVE", "0", 1);
        QosConfig::FromEnv();
      },
      ::testing::ExitedWithCode(2), "bad HINFS_QOS_FG_RESERVE");
}

TEST(QosConfigDeathTest, UnknownKnobExits2) {
  EXPECT_EXIT(
      {
        setenv("HINFS_QOS_TENNANTS", "2", 1);  // misspelled
        QosConfig::CheckQosEnv();
      },
      ::testing::ExitedWithCode(2), "unknown QoS knob \"HINFS_QOS_TENNANTS\"");
}

// --- virtual-mode invariance (DESIGN.md §9 / §3c) ---------------------------

// With QoS disabled (tenants == 0), NvmmDevice never constructs a scheduler
// and its charge path is BandwidthLimiter::Acquire verbatim: the simulated
// time a deterministic workload charges must be bit-identical to driving a
// bare BandwidthLimiter with the same byte sequence.
TEST(QosInvarianceTest, DisabledQosMatchesBareLimiterExactly) {
  constexpr uint64_t kBps = 100ull << 20;
  NvmmConfig cfg;
  cfg.size_bytes = 8 << 20;
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 0;  // isolate the bandwidth charge
  cfg.write_bandwidth_bytes_per_sec = kBps;
  ASSERT_FALSE(cfg.qos.enabled());
  NvmmDevice dev(cfg);

  const size_t sizes[] = {64, 256, 4096, 65536, 64, 1 << 20, 512};
  std::vector<uint8_t> buf(1 << 20, 0x5a);

  const uint64_t dev_t0 = SimClock::ThreadNowNs();
  for (size_t len : sizes) {
    ASSERT_TRUE(dev.StorePersistent(0, buf.data(), len).ok());
  }
  const uint64_t dev_elapsed = SimClock::ThreadNowNs() - dev_t0;

  BandwidthLimiter limiter(LatencyMode::kVirtual, kBps);
  const uint64_t lim_t0 = SimClock::ThreadNowNs();
  for (size_t len : sizes) {
    // StorePersistent charges whole cachelines.
    const uint64_t lines = (len + kCachelineSize - 1) / kCachelineSize;
    limiter.Acquire(lines * kCachelineSize);
  }
  const uint64_t lim_elapsed = SimClock::ThreadNowNs() - lim_t0;

  EXPECT_EQ(dev_elapsed, lim_elapsed);
}

// The QoS virtual discipline is deterministic: the same single-thread charge
// sequence advances simulated time identically across runs.
TEST(QosInvarianceTest, VirtualModeIsDeterministic) {
  QosConfig qcfg;
  qcfg.tenants = 2;
  qcfg.weights = {1, 3};
  auto run = [&] {
    QosScheduler sched(LatencyMode::kVirtual, qcfg);
    ScopedQosContext ctx(1, TrafficClass::kForeground);
    const uint64_t t0 = SimClock::ThreadNowNs();
    for (int i = 0; i < 50; i++) {
      sched.Acquire(CurrentQosContext(), 16 * 1024, 64ull << 20);
    }
    return SimClock::ThreadNowNs() - t0;
  };
  const uint64_t a = run();
  const uint64_t b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

// --- spin-mode scheduling properties ----------------------------------------

// Two saturating tenants with weights 1:3 split the bandwidth ~1:3.
// fg_reserve = 1.0 removes the idle background share: with spare aggregate
// bandwidth both tenants would borrow it first-come-first-served and wash out
// the weighted split (documented in DESIGN.md §9).
TEST(QosSchedulerTest, WeightedFairness) {
  QosConfig cfg;
  cfg.tenants = 2;
  cfg.weights = {1, 3};
  cfg.fg_reserve = 1.0;
  QosScheduler sched(LatencyMode::kSpin, cfg);
  constexpr uint64_t kBps = 64ull << 20;

  std::atomic<bool> stop{false};
  uint64_t charged[2] = {0, 0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      ScopedQosContext ctx(t, TrafficClass::kForeground);
      while (!stop.load(std::memory_order_relaxed)) {
        sched.Acquire(CurrentQosContext(), 16 * 1024, kBps);
        charged[t] += 16 * 1024;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& th : threads) th.join();

  ASSERT_GT(charged[0], 0u);
  const double ratio = static_cast<double>(charged[1]) / charged[0];
  EXPECT_GE(ratio, 2.0) << "weight-3 tenant got only " << ratio << "x";
  EXPECT_LE(ratio, 4.5) << "weight-3 tenant got " << ratio << "x";
}

// A small-request tenant stays isolated from a bulk tenant's backlog: its
// requests are conformant against its own bucket, so each wait is bounded by
// (roughly) its own burst drain, never the bulk tenant's queue.
TEST(QosSchedulerTest, SmallTenantWaitBoundedUnderBulkLoad) {
  QosConfig cfg;
  cfg.tenants = 2;
  cfg.fg_reserve = 1.0;
  QosScheduler sched(LatencyMode::kSpin, cfg);
  constexpr uint64_t kBps = 128ull << 20;

  std::atomic<bool> stop{false};
  std::thread bulk([&] {
    ScopedQosContext ctx(1, TrafficClass::kForeground);
    while (!stop.load(std::memory_order_relaxed)) {
      sched.Acquire(CurrentQosContext(), 1 << 20, kBps);
    }
  });

  uint64_t max_wait_ns = 0;
  {
    ScopedQosContext ctx(0, TrafficClass::kForeground);
    for (int i = 0; i < 50; i++) {
      const uint64_t t0 = MonotonicNowNs();
      sched.Acquire(CurrentQosContext(), 4096, kBps);
      max_wait_ns = std::max(max_wait_ns, MonotonicNowNs() - t0);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop.store(true);
  bulk.join();

  // The bulk tenant's 1 MB requests queue ~16 ms each at its 64 MB/s share;
  // under FCFS the small tenant would inherit that. 8 ms of headroom absorbs
  // scheduler noise on a loaded single-core CI host while still proving the
  // wait tracks the small tenant's own (sub-ms) bucket, not the bulk queue.
  EXPECT_LT(max_wait_ns, 8'000'000u) << "small tenant waited " << max_wait_ns << " ns";
}

// Work conservation: a lone busy tenant entitled to only a quarter of the
// device (2 equal-weight tenants, fg_reserve 0.5) borrows idle shares and
// reaches (nearly) the full device bandwidth.
TEST(QosSchedulerTest, LoneTenantBorrowsIdleBandwidth) {
  QosConfig cfg;
  cfg.tenants = 2;
  cfg.fg_reserve = 0.5;
  QosScheduler sched(LatencyMode::kSpin, cfg);
  constexpr uint64_t kBps = 256ull << 20;

  ScopedQosContext ctx(1, TrafficClass::kForeground);
  uint64_t charged = 0;
  const uint64_t t0 = MonotonicNowNs();
  while (MonotonicNowNs() - t0 < 300'000'000ull) {
    sched.Acquire(CurrentQosContext(), 256 * 1024, kBps);
    charged += 256 * 1024;
  }
  const double seconds = (MonotonicNowNs() - t0) / 1e9;
  const double rate = charged / seconds;
  // Leaf entitlement alone is 64 MB/s; borrowing must lift it well beyond.
  EXPECT_GT(rate, 0.70 * kBps) << "lone tenant only reached "
                               << rate / (1 << 20) << " MB/s";
  const auto snap = sched.TakeSnapshot(kBps);
  EXPECT_GT(snap.tenants[1].borrowed_bytes, 0u);
}

// Background traffic is schedulable even when every foreground tenant is
// idle, and is charged against the background bucket.
TEST(QosSchedulerTest, BackgroundClassUsesBackgroundBucket) {
  QosConfig cfg;
  cfg.tenants = 2;
  cfg.fg_reserve = 0.5;
  QosScheduler sched(LatencyMode::kSpin, cfg);

  ScopedQosContext ctx(kSystemTenant, TrafficClass::kBackground);
  sched.Acquire(CurrentQosContext(), 64 * 1024, 1ull << 30);
  const auto snap = sched.TakeSnapshot(1ull << 30);
  EXPECT_EQ(snap.background.charged_bytes, 64u * 1024);
  EXPECT_EQ(snap.tenants[0].charged_bytes, 0u);
  EXPECT_EQ(snap.bg_fast + snap.bg_slow, 1u);
  EXPECT_EQ(snap.fg_fast + snap.fg_slow, 0u);
}

TEST(QosSchedulerTest, ExportStatsPublishesPerTenantCounters) {
  QosConfig cfg;
  cfg.tenants = 2;
  QosScheduler sched(LatencyMode::kSpin, cfg);
  {
    ScopedQosContext ctx(1, TrafficClass::kForeground);
    sched.Acquire(CurrentQosContext(), 4096, 1ull << 30);
  }
  StatsRegistry stats;
  sched.ExportStats(&stats, 1ull << 30);
  EXPECT_EQ(stats.Get("qos_t1_charged_bytes"), 4096u);
  EXPECT_EQ(stats.Get("qos_t0_charged_bytes"), 0u);
  EXPECT_EQ(stats.Get(kStatQosFgFastAcquires) + stats.Get(kStatQosFgSlowAcquires), 1u);
  // Idempotent store semantics: exporting again must not double-count.
  sched.ExportStats(&stats, 1ull << 30);
  EXPECT_EQ(stats.Get("qos_t1_charged_bytes"), 4096u);
}

// Tenant ids beyond the configured count clamp to the last bucket instead of
// indexing out of range.
TEST(QosSchedulerTest, OutOfRangeTenantClamps) {
  QosConfig cfg;
  cfg.tenants = 2;
  QosScheduler sched(LatencyMode::kSpin, cfg);
  EXPECT_EQ(sched.Clamp(0), 0u);
  EXPECT_EQ(sched.Clamp(1), 1u);
  EXPECT_EQ(sched.Clamp(57), 1u);
  ScopedQosContext ctx(57, TrafficClass::kForeground);
  sched.Acquire(CurrentQosContext(), 4096, 1ull << 30);
  EXPECT_EQ(sched.TakeSnapshot(1ull << 30).tenants[1].charged_bytes, 4096u);
}

// --- hello handshake / per-session tenants -----------------------------------

class QosServerTest : public ::testing::Test {
 protected:
  void Start(uint32_t tenants) {
    NvmmConfig cfg;
    cfg.size_bytes = 32 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    cfg.qos.tenants = tenants;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 4096;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
    static std::atomic<int> seq{0};
    ServerOptions sopts;
    sopts.unix_path = "/tmp/hinfs_qos_test." + std::to_string(getpid()) + "." +
                      std::to_string(seq.fetch_add(1)) + ".sock";
    sopts.workers = 2;
    sopts.qos = nvmm_->qos();
    server_ = std::make_unique<Server>(vfs_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }

  ~QosServerTest() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
  }

  std::unique_ptr<Client> Connect() {
    auto c = Client::ConnectUnix(server_->unix_path());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<Server> server_;
};

TEST_F(QosServerTest, HelloGrantsTenantAndSetsWeight) {
  Start(/*tenants=*/3);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto granted = client->Hello(2, /*weight=*/5);
  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  EXPECT_EQ(*granted, 2u);
  EXPECT_EQ(nvmm_->qos()->TakeSnapshot(0).tenants[2].weight, 5u);
  // The session still serves requests after the handshake.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(QosServerTest, HelloClampsOutOfRangeTenant) {
  Start(/*tenants=*/2);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto granted = client->Hello(40);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(*granted, 1u);  // clamped to the last tenant
}

TEST_F(QosServerTest, HelloWithoutQosGrantsSystemTenant) {
  Start(/*tenants=*/0);  // no scheduler
  ASSERT_EQ(nvmm_->qos(), nullptr);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  auto granted = client->Hello(3);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(*granted, kSystemTenant);
}

TEST_F(QosServerTest, HelloRejectsUnsupportedProtocolVersion) {
  Start(/*tenants=*/2);
  const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(sock, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server_->unix_path().c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  server::Request req;
  req.request_id = 1;
  req.opcode = server::Opcode::kHello;
  req.flags = server::kProtocolVersion + 1;  // from the future
  req.offset = 1;
  std::string wire;
  server::EncodeRequest(req, &wire);
  ASSERT_EQ(::send(sock, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  uint8_t prefix[4];
  ASSERT_EQ(::recv(sock, prefix, 4, MSG_WAITALL), 4);
  uint32_t frame_len;
  ASSERT_TRUE(server::ParseFrameLen(prefix, server::kMaxFrameBytes, &frame_len).ok());
  std::vector<uint8_t> payload(frame_len);
  ASSERT_EQ(::recv(sock, payload.data(), frame_len, MSG_WAITALL),
            static_cast<ssize_t>(frame_len));
  server::Response resp;
  ASSERT_TRUE(server::DecodeResponse(payload.data(), frame_len, &resp).ok());
  EXPECT_NE(resp.status, ErrorCode::kOk);
  ::close(sock);
}

}  // namespace
}  // namespace qos
}  // namespace hinfs
