
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvmm/bandwidth_limiter.cc" "src/nvmm/CMakeFiles/hinfs_nvmm.dir/bandwidth_limiter.cc.o" "gcc" "src/nvmm/CMakeFiles/hinfs_nvmm.dir/bandwidth_limiter.cc.o.d"
  "/root/repo/src/nvmm/latency_model.cc" "src/nvmm/CMakeFiles/hinfs_nvmm.dir/latency_model.cc.o" "gcc" "src/nvmm/CMakeFiles/hinfs_nvmm.dir/latency_model.cc.o.d"
  "/root/repo/src/nvmm/nvmm_device.cc" "src/nvmm/CMakeFiles/hinfs_nvmm.dir/nvmm_device.cc.o" "gcc" "src/nvmm/CMakeFiles/hinfs_nvmm.dir/nvmm_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hinfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
