// PmfsFs: the PMFS baseline — an NVMM-native file system with direct access.
//
// Faithful to the published PMFS design at the level this reproduction needs:
//  - data and metadata live on NVMM; no page cache, no block layer;
//  - read(2)/write(2) copy directly between the user buffer and NVMM; writes use
//    the nocache persistent-store path (store + clflush + fence per extent);
//  - metadata updates are made consistent with a cacheline-granularity undo
//    journal; single 8-byte fields (size, mtime) use atomic in-place updates;
//  - per-file block index is a radix tree of 4 KB nodes (512-way) on NVMM.
//
// HinfsFs (src/hinfs/hinfs_fs.h) subclasses this and replaces the data paths
// with the NVMM-aware write buffer, exactly as the original HiNFS was built on
// PMFS inside the kernel.

#ifndef SRC_FS_PMFS_PMFS_FS_H_
#define SRC_FS_PMFS_PMFS_FS_H_

#include <array>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/fs/pmfs/allocator.h"
#include "src/fs/pmfs/journal.h"
#include "src/fs/pmfs/layout.h"
#include "src/nvmm/nvmm_device.h"
#include "src/vfs/file_system.h"

namespace hinfs {

struct PmfsOptions {
  uint64_t max_inodes = 1ull << 16;
  uint64_t journal_bytes = 4ull << 20;
  // Format the file system on [0, device_bytes) instead of the whole device
  // (0 = whole device). Lets a WAL carve live past the FS (src/wal/); Mount
  // needs no equivalent because the superblock records the formatted size.
  uint64_t device_bytes = 0;
};

class PmfsFs : public FileSystem {
 public:
  // Creates a fresh file system on `nvmm` and mounts it.
  static Result<std::unique_ptr<PmfsFs>> Format(NvmmDevice* nvmm, const PmfsOptions& options = {});

  // Mounts an existing file system, running journal recovery.
  static Result<std::unique_ptr<PmfsFs>> Mount(NvmmDevice* nvmm);

  ~PmfsFs() override = default;

  std::string Name() const override { return "pmfs"; }

  Result<uint64_t> Lookup(uint64_t dir_ino, std::string_view name) override;
  Result<uint64_t> Create(uint64_t dir_ino, std::string_view name, FileType type) override;
  Status Unlink(uint64_t dir_ino, std::string_view name) override;
  Status Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                std::string_view new_name) override;
  Result<std::vector<DirEntry>> ReadDir(uint64_t dir_ino) override;
  Result<InodeAttr> GetAttr(uint64_t ino) override;

  Result<size_t> Read(uint64_t ino, uint64_t offset, void* dst, size_t len) override;
  Result<size_t> Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                       const WriteOptions& options) override;
  Status Truncate(uint64_t ino, uint64_t new_size) override;
  Status Fsync(uint64_t ino, const SyncOptions& options) override;
  using FileSystem::Fsync;
  Status SyncFs() override;
  Status Unmount() override;

  Result<uint8_t*> Mmap(uint64_t ino, uint64_t offset, size_t len) override;
  Status Munmap(uint64_t ino) override;
  Status Msync(uint64_t ino, uint64_t offset, size_t len) override;

  NvmmDevice* nvmm() { return nvmm_; }
  uint64_t free_data_blocks() const { return alloc_->free_blocks(); }

  // Crashlab fault injection: drop the fence after journal appends.
  void set_skip_append_fence_for_testing(bool v) { journal_->set_skip_append_fence(v); }

 protected:
  explicit PmfsFs(NvmmDevice* nvmm);

  Status InitFormat(const PmfsOptions& options);
  Status InitMount();

  // --- locking -----------------------------------------------------------------
  // Namespace lock: exclusive for create/unlink/rename, shared for lookup/readdir.
  // File-data stripe locks: keyed by ino; exclusive for write/truncate/fsync,
  // shared for read. Lock order: ns_mu_ before stripe.
  static constexpr size_t kLockStripes = 64;
  std::shared_mutex& StripeFor(uint64_t ino) { return stripes_[ino % kLockStripes]; }

  // --- inode helpers -------------------------------------------------------------
  uint64_t InodeAddr(uint64_t ino) const;
  Result<PmfsInode> LoadInode(uint64_t ino);
  // Atomic 8-byte in-place persistent update of one inode field.
  Status UpdateInodeU64(uint64_t ino, size_t field_offset, uint64_t value);
  Result<uint64_t> AllocInode(Transaction& txn, FileType type);

  // --- radix block index ------------------------------------------------------
  uint64_t DataBlockAddr(uint64_t data_block) const {
    return sb_.data_off + data_block * kBlockSize;
  }
  // Returns the data block backing file block `file_block`, or 0 for a hole.
  Result<uint64_t> MapBlock(const PmfsInode& inode, uint64_t file_block);
  // Like MapBlock but allocates missing radix nodes and the data block.
  // `inode` is updated (root/height) and persisted via `txn`.
  Result<uint64_t> MapBlockAlloc(Transaction& txn, uint64_t ino, PmfsInode& inode,
                                 uint64_t file_block);
  // Frees all data blocks and radix nodes at or above `from_block`.
  Status FreeBlocksFrom(Transaction& txn, uint64_t ino, PmfsInode& inode, uint64_t from_block);

  // Resolves (ino, file_block) to an NVMM byte address, allocating the block
  // (own transaction) if absent. Used by HiNFS's writeback path, which runs
  // without the file's stripe lock; MapBlockAlloc/inode updates are internally
  // serialized by map_mu_/imeta_mu_ so this is safe concurrently with
  // foreground writes.
  Result<uint64_t> EnsureDataBlockAddr(uint64_t ino, uint64_t file_block);

  // --- directory helpers --------------------------------------------------------
  // Returns the byte offset (within the directory file) of the dirent for
  // `name`, loading it into `out`.
  Result<uint64_t> FindDirent(const PmfsInode& dir, std::string_view name, PmfsDirent* out);
  Status AddDirent(Transaction& txn, uint64_t dir_ino, PmfsInode& dir, std::string_view name,
                   uint64_t ino, FileType type);
  Status ClearDirentAt(Transaction& txn, uint64_t dir_ino, const PmfsInode& dir,
                       uint64_t dirent_off);

  // --- directory first-free-slot hint -------------------------------------------
  // DRAM-only lower bound on the byte offset of the first free dirent slot in
  // each directory (absent = 0: scan from the start, e.g. after mount).
  // AddDirent starts its free-slot scan at the hint instead of offset 0, so
  // bulk creation into one directory is linear instead of quadratic.
  // Invariant: every slot below the hint is occupied. AddDirent raises it past
  // the slot it fills, ClearDirentAt lowers it to a freed slot, and freeing a
  // directory inode drops it (inode numbers are recycled). All mutators hold
  // ns_mu_ exclusively; dir_hint_mu_ keeps the map well-formed regardless.
  uint64_t DirFreeHint(uint64_t dir_ino);
  void RaiseDirFreeHint(uint64_t dir_ino, uint64_t off);
  void LowerDirFreeHint(uint64_t dir_ino, uint64_t off);
  void DropDirFreeHint(uint64_t dir_ino);
  Result<bool> DirIsEmpty(const PmfsInode& dir);
  // Unlink with ns_mu_ already held (used by Rename's replace path).
  Status UnlinkLocked(uint64_t dir_ino, std::string_view name);
  Status MarkInodeOrphaned(Transaction& txn, uint64_t ino);

  // --- data-path helpers (shared with HinfsFs) --------------------------------
  // Copies [offset, offset+len) of the file from NVMM into dst. Holes read as
  // zeros. Does not lock; caller holds the stripe.
  Status ReadFromNvmm(const PmfsInode& inode, uint64_t offset, void* dst, size_t len);
  // Writes into NVMM with persistence, allocating blocks as needed; updates
  // inode size/mtime. Does not lock. When zero_fill is true, newly allocated
  // blocks have their uncovered portions zeroed.
  Status WriteToNvmm(uint64_t ino, PmfsInode& inode, uint64_t offset, const void* src, size_t len);
  // Drops a whole file: frees blocks and the inode slot. ns_mu_ held.
  Status FreeFileLocked(uint64_t ino);

  NvmmDevice* nvmm_;
  PmfsSuperblock sb_{};
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<BlockAllocator> alloc_;

  std::shared_mutex ns_mu_;
  std::array<std::shared_mutex, kLockStripes> stripes_;

  // Serializes radix-tree mutation (map_mu_) and inode cacheline read-modify-
  // write updates (imeta_mu_) between foreground threads and HiNFS's
  // writeback engine, which runs without stripe locks. Order: map_mu_ before
  // imeta_mu_.
  std::mutex map_mu_;
  std::mutex imeta_mu_;

  std::mutex ino_mu_;
  std::vector<uint64_t> free_inos_;

  std::mutex dir_hint_mu_;
  std::unordered_map<uint64_t, uint64_t> dir_free_hint_;
};

}  // namespace hinfs

#endif  // SRC_FS_PMFS_PMFS_FS_H_
