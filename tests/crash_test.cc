// Crash-consistency fault injection for the NVMM-native file systems.
//
// The NVMM emulator's persistence tracking gives exact power-failure
// semantics: stores that were never clflushed vanish at SimulateCrash().
// These tests exercise PMFS and HiNFS ordered-mode guarantees across crashes.

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/vfs/vfs.h"
#include "src/workloads/workload.h"

namespace hinfs {
namespace {

NvmmConfig TrackedConfig() {
  NvmmConfig cfg;
  cfg.size_bytes = 64 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  return cfg;
}

PmfsOptions SmallPmfs() {
  PmfsOptions opts;
  opts.max_inodes = 2048;
  opts.journal_bytes = 1 << 20;
  return opts;
}

TEST(PmfsCrashTest, SyncedDataSurvivesCrash) {
  NvmmDevice nvmm(TrackedConfig());
  {
    auto fs = PmfsFs::Format(&nvmm, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.WriteFile("/durable", "survives power loss").ok());
    // PMFS writes are persistent at write() time: no fsync needed.
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto fs = PmfsFs::Mount(&nvmm);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  Vfs vfs(fs->get());
  auto content = vfs.ReadFileToString("/durable");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(*content, "survives power loss");
}

TEST(PmfsCrashTest, ManyFilesSurviveCrash) {
  NvmmDevice nvmm(TrackedConfig());
  {
    auto fs = PmfsFs::Format(&nvmm, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.Mkdir("/d").ok());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(
          vfs.WriteFile("/d/f" + std::to_string(i), std::string(1000 + i, 'a')).ok());
    }
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto fs = PmfsFs::Mount(&nvmm);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  for (int i = 0; i < 100; i++) {
    auto content = vfs.ReadFileToString("/d/f" + std::to_string(i));
    ASSERT_TRUE(content.ok()) << i;
    EXPECT_EQ(content->size(), 1000u + i);
  }
}

TEST(PmfsCrashTest, UnlinkIsAtomic) {
  NvmmDevice nvmm(TrackedConfig());
  {
    auto fs = PmfsFs::Format(&nvmm, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    ASSERT_TRUE(vfs.WriteFile("/keep", "kept").ok());
    ASSERT_TRUE(vfs.WriteFile("/gone", "deleted").ok());
    ASSERT_TRUE(vfs.Unlink("/gone").ok());
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto fs = PmfsFs::Mount(&nvmm);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  EXPECT_TRUE(vfs.Exists("/keep").value_or(false));
  EXPECT_FALSE(vfs.Exists("/gone").value_or(true));
  // Space from the unlinked file is reusable after recovery.
  ASSERT_TRUE(vfs.WriteFile("/new", std::string(5000, 'n')).ok());
}

TEST(HinfsCrashTest, FsyncedDataSurvives) {
  NvmmDevice nvmm(TrackedConfig());
  HinfsOptions hopts;
  hopts.buffer_bytes = 4 << 20;
  hopts.writeback_period_ms = 100000;
  {
    auto fs = HinfsFs::Format(&nvmm, hopts, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    auto fd = vfs.Open("/synced", kRdWr | kCreate);
    ASSERT_TRUE(fd.ok());
    std::string data(12345, 's');
    ASSERT_TRUE(vfs.Write(*fd, data.data(), data.size()).ok());
    ASSERT_TRUE(vfs.Fsync(*fd).ok());
    // Crash with the file system still "running" (no unmount flush).
    (*fs)->buffer().StopBackgroundWriteback();
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto fs = HinfsFs::Mount(&nvmm, hopts);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  Vfs vfs(fs->get());
  auto content = vfs.ReadFileToString("/synced");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  EXPECT_EQ(content->size(), 12345u);
  EXPECT_EQ((*content)[0], 's');
}

TEST(HinfsCrashTest, UnsyncedLazyWritesLeaveConsistentHoles) {
  NvmmDevice nvmm(TrackedConfig());
  HinfsOptions hopts;
  hopts.buffer_bytes = 4 << 20;
  hopts.writeback_period_ms = 100000;
  {
    auto fs = HinfsFs::Format(&nvmm, hopts, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    // Never synced: the data lives only in the DRAM buffer.
    ASSERT_TRUE(vfs.WriteFile("/lazy", std::string(20000, 'L')).ok());
    (*fs)->buffer().StopBackgroundWriteback();
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto fs = HinfsFs::Mount(&nvmm, hopts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  // Ordered-mode semantics: the file exists with its size (metadata is never
  // buffered), and unwritten-back data reads as zeros — never garbage.
  auto content = vfs.ReadFileToString("/lazy");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  ASSERT_EQ(content->size(), 20000u);
  for (size_t i = 0; i < content->size(); i += 999) {
    ASSERT_TRUE((*content)[i] == 0 || (*content)[i] == 'L') << i;
  }
}

TEST(HinfsCrashTest, EagerWritesSurviveWithoutFsync) {
  NvmmDevice nvmm(TrackedConfig());
  HinfsOptions hopts;
  hopts.buffer_bytes = 4 << 20;
  {
    auto fs = HinfsFs::Format(&nvmm, hopts, SmallPmfs());
    ASSERT_TRUE(fs.ok());
    Vfs vfs(fs->get());
    auto fd = vfs.Open("/osync", kWrOnly | kCreate | kSync);
    ASSERT_TRUE(fd.ok());
    std::string data(8000, 'E');
    ASSERT_TRUE(vfs.Write(*fd, data.data(), data.size()).ok());
    (*fs)->buffer().StopBackgroundWriteback();
  }
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  auto fs = HinfsFs::Mount(&nvmm, hopts);
  ASSERT_TRUE(fs.ok());
  Vfs vfs(fs->get());
  auto content = vfs.ReadFileToString("/osync");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, std::string(8000, 'E'));
}

TEST(HinfsCrashTest, RandomizedCrashRecoveryInvariant) {
  // Property: after any crash, every file that was fsynced reads back exactly;
  // every other file is readable with hole-or-data content (no corruption, no
  // mount failure).
  for (uint64_t seed : {1u, 7u, 42u}) {
    NvmmDevice nvmm(TrackedConfig());
    HinfsOptions hopts;
    hopts.buffer_bytes = 2 << 20;
    hopts.writeback_period_ms = 5;
    std::map<std::string, std::string> synced;
    {
      auto fs = HinfsFs::Format(&nvmm, hopts, SmallPmfs());
      ASSERT_TRUE(fs.ok());
      Vfs vfs(fs->get());
      Rng rng(seed);
      std::vector<uint8_t> payload(32 * 1024);
      FillPattern(payload, seed);
      for (int step = 0; step < 150; step++) {
        const std::string path = "/x" + std::to_string(rng.Below(10));
        const size_t len = 1 + rng.Below(16000);
        auto fd = vfs.Open(path, kRdWr | kCreate);
        ASSERT_TRUE(fd.ok());
        const uint64_t off = rng.Below(8000);
        ASSERT_TRUE(vfs.Pwrite(*fd, payload.data(), len, off).ok());
        if (rng.Chance(0.3)) {
          ASSERT_TRUE(vfs.Fsync(*fd).ok());
          auto now = vfs.ReadFileToString(path);
          ASSERT_TRUE(now.ok());
          synced[path] = *now;
        }
        ASSERT_TRUE(vfs.Close(*fd).ok());
      }
      (*fs)->buffer().StopBackgroundWriteback();
    }
    ASSERT_TRUE(nvmm.SimulateCrash().ok());
    auto fs = HinfsFs::Mount(&nvmm, hopts);
    ASSERT_TRUE(fs.ok()) << "seed " << seed << ": " << fs.status().ToString();
    Vfs vfs(fs->get());
    for (const auto& [path, expect] : synced) {
      auto content = vfs.ReadFileToString(path);
      ASSERT_TRUE(content.ok()) << path;
      // The file may have grown past the synced prefix afterwards; the synced
      // prefix must match except where later unsynced writes overlapped it
      // (those read as zeros or the new data, but offsets below the synced
      // size must exist).
      EXPECT_GE(content->size(), expect.size()) << path;
    }
  }
}

}  // namespace
}  // namespace hinfs
