file(REMOVE_RECURSE
  "CMakeFiles/mmap_test.dir/mmap_test.cc.o"
  "CMakeFiles/mmap_test.dir/mmap_test.cc.o.d"
  "mmap_test"
  "mmap_test.pdb"
  "mmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
