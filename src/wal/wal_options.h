// Tunables for the per-core NVMM write-ahead log (src/wal). Kept free of
// heavy includes so HinfsOptions can embed a WalOptions and the env parsing
// stays in one place (HinfsOptions::FromEnv).

#ifndef SRC_WAL_WAL_OPTIONS_H_
#define SRC_WAL_WAL_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace hinfs {

// How a log region proves a record batch committed (the pmembench logging
// study's two classic designs, selectable for ablation):
//  - kChecksum: every record carries a CRC32 of header+payload; commit flushes
//    ONLY the record lines — one flush call, one fence, no commit marker or
//    header write at all. Recovery tail-scans the record area, accepting
//    records while their CRC validates and their epoch matches the region
//    header's, so a torn batch is detected by the CRC, not by ordering.
//  - kFence: commit flushes the records, fences, then flushes the region
//    header's durable_tail. The header can never point at torn records, so no
//    per-record checksum is needed. 2 fences per commit.
enum class WalCommitFormat : uint8_t {
  kChecksum,
  kFence,
};

struct WalOptions {
  // Per-core log regions. 0 = auto: min(hardware_concurrency, 8), clamped so
  // every region keeps at least 64 KB of record space.
  int regions = 0;

  // Total NVMM carved off the end of the device for the log (superblock +
  // all regions). Sized so short-lived sync writes (log rotation, varmail's
  // delete-heavy churn) usually die in the log — overwritten or unlinked
  // before a checkpoint ever copies them into the final layout.
  size_t total_bytes = 32ull << 20;

  WalCommitFormat commit_format = WalCommitFormat::kChecksum;

  // In-place overwrites of at least this many bytes bypass the log (straight
  // to the inner FS, original durability options) when the target file has no
  // logged state. The log exists to absorb SMALL synchronous writes and new
  // bytes that may die young; a block-sized overwrite of long-lived data
  // gains nothing from logging — it would be written twice (log, then
  // checkpoint drain) for the same one fence. Appends/extends always log.
  // 0 = log everything.
  size_t direct_write_bytes = 4096;

  // Background checkpoint period. Checkpointing also triggers on demand when
  // a region fills; the period only bounds replay time after a crash, so it
  // can be lazy — every drain re-pays the eager-persist cost for bytes that
  // would otherwise have died in the log. Crash tests set this 0 to keep
  // cuts deterministic.
  uint64_t checkpoint_ms = 200;
};

}  // namespace hinfs

#endif  // SRC_WAL_WAL_OPTIONS_H_
