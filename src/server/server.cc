#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/clock.h"

namespace hinfs {
namespace server {

namespace {

// Per-wakeup read budget for one connection: keep slicing frames but yield to
// other connections once this many bytes are buffered (level-triggered epoll
// re-reports the socket if more is pending).
constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kReadBudget = 1 << 20;

}  // namespace

// --- Session -----------------------------------------------------------------

Server::Session::~Session() {
  // Close every Vfs fd the client still held: connection teardown must never
  // leak fds into the shared fd table.
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [client_fd, vfs_fd] : fds_) {
    (void)vfs_->Close(vfs_fd);
  }
  fds_.clear();
}

int Server::Session::Register(int vfs_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const int client_fd = next_client_fd_++;
  fds_.emplace(client_fd, vfs_fd);
  return client_fd;
}

int Server::Session::Translate(int client_fd) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(client_fd);
  return it == fds_.end() ? -1 : it->second;
}

int Server::Session::Release(int client_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(client_fd);
  if (it == fds_.end()) {
    return -1;
  }
  const int vfs_fd = it->second;
  fds_.erase(it);
  return vfs_fd;
}

size_t Server::Session::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fds_.size();
}

// --- lifecycle ---------------------------------------------------------------

Server::Server(Vfs* vfs, ServerOptions options) : vfs_(vfs), options_(std::move(options)) {
  op_counters_.resize(kMaxOpcode + 1, nullptr);
  for (uint8_t op = kMinOpcode; op <= kMaxOpcode; op++) {
    op_counters_[op] =
        stats_.Counter(std::string("srv_op_") + OpcodeName(static_cast<Opcode>(op)));
  }
  queued_bytes_counter_ = stats_.Counter(kStatSrvQueuedBytes);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status(ErrorCode::kBusy, "server already started");
  }
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status(ErrorCode::kInvalidArgument, "no listener configured");
  }
  if (options_.workers < 1) {
    return Status(ErrorCode::kInvalidArgument, "need at least one worker");
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status(ErrorCode::kIoError, "epoll/eventfd setup failed");
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status(ErrorCode::kNameTooLong, "unix socket path");
    }
    std::memcpy(addr.sun_path, options_.unix_path.c_str(), options_.unix_path.size() + 1);
    unix_listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unix_listen_fd_ < 0) {
      return Status(ErrorCode::kIoError, "socket(AF_UNIX)");
    }
    ::unlink(options_.unix_path.c_str());
    if (bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(unix_listen_fd_, 128) != 0) {
      return Status(ErrorCode::kIoError,
                    "bind/listen on " + options_.unix_path + ": " + std::strerror(errno));
    }
  }

  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (tcp_listen_fd_ < 0) {
      return Status(ErrorCode::kIoError, "socket(AF_INET)");
    }
    int one = 1;
    setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(tcp_listen_fd_, 128) != 0) {
      return Status(ErrorCode::kIoError, std::string("bind/listen tcp: ") + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  if (unix_listen_fd_ >= 0) {
    ev.data.fd = unix_listen_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, unix_listen_fd_, &ev);
  }
  if (tcp_listen_fd_ >= 0) {
    ev.data.fd = tcp_listen_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_listen_fd_, &ev);
  }

  loop_thread_ = std::thread([this] { EventLoop(); });
  for (int i = 0; i < options_.workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return OkStatus();
}

void Server::Stop() {
  if (!started_.load()) {
    return;
  }
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;
  }

  // 1. Stop accepting: close the listeners (existing connections keep going).
  for (std::atomic<int>* lfd : {&unix_listen_fd_, &tcp_listen_fd_}) {
    const int fd = lfd->exchange(-1);
    if (fd >= 0) {
      epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      ::close(fd);
    }
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }

  // 2. Drain: wait (bounded) for queued work, in-flight requests, and write
  // queues to empty.
  const uint64_t deadline = MonotonicNowNs() + options_.drain_timeout_ms * 1'000'000ull;
  while (MonotonicNowNs() < deadline) {
    bool quiet;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      quiet = queue_.empty();
    }
    if (quiet) {
      std::vector<std::shared_ptr<Connection>> conns;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns.reserve(conns_.size());
        for (const auto& [fd, conn] : conns_) {
          conns.push_back(conn);
        }
      }
      for (const auto& conn : conns) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->inflight != 0 || !conn->outq.empty()) {
          quiet = false;
          break;
        }
      }
    }
    if (quiet) {
      break;
    }
    usleep(1000);
  }

  // 3. Close every remaining connection (clients observe EOF; their sessions
  // release any Vfs fds they still held).
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [fd, conn] : conns_) {
      conns.push_back(conn);
    }
  }
  for (const auto& conn : conns) {
    CloseConnection(conn);
  }

  // 4. Tear down the threads.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
  workers_.clear();

  uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }

  ::close(wake_fd_);
  ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

// --- event loop --------------------------------------------------------------

void Server::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (stopping_.load(std::memory_order_acquire)) {
      // Keep looping during the drain window so EPOLLOUT flushes still
      // happen; Stop() joins us only after closing every connection, at which
      // point only the wake event remains.
      bool any = false;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        any = !conns_.empty();
      }
      if (!any) {
        return;
      }
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    for (int i = 0; i < n; i++) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained;
        ssize_t ignored = read(wake_fd_, &drained, sizeof(drained));
        (void)ignored;
        continue;
      }
      if (fd == unix_listen_fd_ || fd == tcp_listen_fd_) {
        AcceptReady(fd);
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) {
          conn = it->second;
        }
      }
      if (conn == nullptr) {
        continue;  // closed by a worker between epoll_wait and now
      }
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) {
        ConnWritable(conn);
      }
      if ((ev & EPOLLIN) != 0) {
        ConnReadable(conn);
      }
    }
  }
}

void Server::AcceptReady(int listen_fd) {
  while (true) {
    const int fd = accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or a transient error: epoll will re-report
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    if (listen_fd == tcp_listen_fd_) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_shared<Connection>();
    conn->sock = fd;
    conn->session = std::make_shared<Session>(vfs_);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(fd, conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    stats_.Add(kStatSrvAcceptedConns, 1);
    stats_.Counter(kStatSrvActiveConns)->fetch_add(1, std::memory_order_relaxed);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::UpdateEpollLocked(Connection& conn) {
  if (conn.sock < 0) {
    return;
  }
  epoll_event ev{};
  ev.events = (conn.paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.sock;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock, &ev);
}

void Server::MaybeResumeReadingLocked(Connection& conn) {
  if (conn.paused && !conn.closed &&
      conn.queued_bytes <= options_.max_conn_queued_bytes / 2 &&
      conn.inflight < options_.max_conn_inflight / 2 + 1) {
    conn.paused = false;
    UpdateEpollLocked(conn);
  }
}

bool Server::DrainReadBuffer(const std::shared_ptr<Connection>& conn,
                             std::vector<WorkItem>* ready) {
  Connection& c = *conn;
  const uint8_t* base = reinterpret_cast<const uint8_t*>(c.rbuf.data());
  size_t off = 0;
  while (c.rbuf.size() - off >= kFrameLenBytes) {
    uint32_t frame_len = 0;
    if (!ParseFrameLen(base + off, options_.max_frame_bytes, &frame_len).ok()) {
      stats_.Add(kStatSrvProtocolErrors, 1);
      return false;
    }
    if (c.rbuf.size() - off - kFrameLenBytes < frame_len) {
      break;  // incomplete frame: wait for more bytes
    }
    WorkItem item;
    item.conn = conn;
    if (!DecodeRequest(base + off + kFrameLenBytes, frame_len, &item.req).ok()) {
      stats_.Add(kStatSrvProtocolErrors, 1);
      return false;
    }
    stats_.Add(kStatSrvFramesRx, 1);
    c.inflight++;
    ready->push_back(std::move(item));
    off += kFrameLenBytes + frame_len;
  }
  c.rbuf.erase(0, off);
  if (c.inflight >= options_.max_conn_inflight && !c.paused) {
    c.paused = true;
    stats_.Add(kStatSrvBackpressureStalls, 1);
    UpdateEpollLocked(c);
  }
  return true;
}

void Server::ConnReadable(const std::shared_ptr<Connection>& conn) {
  std::vector<WorkItem> ready;
  bool fatal = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed || conn->paused) {
      return;
    }
    char buf[kReadChunk];
    size_t got = 0;
    while (got < kReadBudget) {
      const ssize_t n = recv(conn->sock, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->rbuf.append(buf, static_cast<size_t>(n));
        stats_.Add(kStatSrvBytesRx, static_cast<uint64_t>(n));
        got += static_cast<size_t>(n);
        continue;
      }
      if (n == 0) {
        fatal = true;  // peer closed
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      fatal = true;
      break;
    }
    if (!DrainReadBuffer(conn, &ready)) {
      fatal = true;
    }
  }
  if (!ready.empty()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (WorkItem& item : ready) {
        queue_.push_back(std::move(item));
      }
    }
    queue_cv_.notify_all();
  }
  if (fatal) {
    CloseConnection(conn);
  }
}

void Server::ConnWritable(const std::shared_ptr<Connection>& conn) {
  bool ok;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) {
      return;
    }
    ok = FlushLocked(*conn);
    if (ok) {
      MaybeResumeReadingLocked(*conn);
    }
  }
  if (!ok) {
    CloseConnection(conn);
  }
}

bool Server::FlushLocked(Connection& conn) {
  while (!conn.outq.empty()) {
    const std::string& frame = conn.outq.front();
    const ssize_t n = send(conn.sock, frame.data() + conn.out_head,
                           frame.size() - conn.out_head, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_head += static_cast<size_t>(n);
      conn.queued_bytes -= static_cast<size_t>(n);
      queued_bytes_counter_->fetch_sub(static_cast<uint64_t>(n), std::memory_order_relaxed);
      stats_.Add(kStatSrvBytesTx, static_cast<uint64_t>(n));
      if (conn.out_head == frame.size()) {
        conn.outq.pop_front();
        conn.out_head = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        UpdateEpollLocked(conn);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpollLocked(conn);
  }
  return true;
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  int sock;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    sock = conn->sock;
    conn->sock = -1;
    if (conn->queued_bytes > 0) {
      queued_bytes_counter_->fetch_sub(conn->queued_bytes, std::memory_order_relaxed);
    }
    conn->outq.clear();
    conn->queued_bytes = 0;
    conn->out_head = 0;
    // Drop the connection's session reference; in-flight requests hold their
    // own, so the Session (and with it every still-open Vfs fd) is released
    // exactly when the last in-flight request finishes.
    conn->session.reset();
  }
  if (sock >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, sock, nullptr);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.erase(sock);
    }
    ::close(sock);
    stats_.Counter(kStatSrvActiveConns)->fetch_sub(1, std::memory_order_relaxed);
    active_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
}

// --- workers -----------------------------------------------------------------

void Server::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return queue_shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown and drained
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(item.conn->mu);
      session = item.conn->session;
    }
    Response resp;
    if (session != nullptr) {
      // Everything this request charges against the NVMM device (directly or
      // via group commit) is foreground traffic owned by the session's tenant.
      qos::ScopedQosContext qos_ctx(session->tenant(), qos::TrafficClass::kForeground);
      resp = Execute(*session, item.req);
      stats_.Add(kStatSrvRequestsServed, 1);
    }
    QueueResponse(item.conn, resp);
  }
}

void Server::QueueResponse(const std::shared_ptr<Connection>& conn, const Response& resp) {
  std::string frame;
  EncodeResponse(resp, &frame);
  bool fatal = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight > 0) {
      conn->inflight--;
    }
    if (conn->closed) {
      return;  // response is dropped; the client is gone
    }
    conn->queued_bytes += frame.size();
    queued_bytes_counter_->fetch_add(frame.size(), std::memory_order_relaxed);
    conn->outq.push_back(std::move(frame));
    stats_.Add(kStatSrvFramesTx, 1);
    if (!conn->want_write) {
      fatal = !FlushLocked(*conn);
    }
    if (!fatal) {
      if (conn->queued_bytes > options_.max_conn_queued_bytes && !conn->paused) {
        conn->paused = true;
        stats_.Add(kStatSrvBackpressureStalls, 1);
        UpdateEpollLocked(*conn);
      } else {
        MaybeResumeReadingLocked(*conn);
      }
    }
  }
  if (fatal) {
    CloseConnection(conn);
  }
}

// --- request execution -------------------------------------------------------

Response Server::Execute(Session& session, const Request& req) {
  Response resp;
  resp.request_id = req.request_id;
  resp.opcode = req.opcode;
  op_counters_[static_cast<uint8_t>(req.opcode)]->fetch_add(1, std::memory_order_relaxed);

  auto fail = [&resp](const Status& st) {
    resp.status = st.code();
    resp.data = st.message().substr(0, kMaxErrorMessageBytes);
  };
  auto translate = [&session, &fail](int client_fd, int* vfs_fd) {
    *vfs_fd = session.Translate(client_fd);
    if (*vfs_fd < 0) {
      fail(Status(ErrorCode::kBadFd, "unknown client fd"));
      return false;
    }
    return true;
  };

  switch (req.opcode) {
    case Opcode::kPing: {
      resp.data = req.data;
      break;
    }
    case Opcode::kOpen: {
      Result<int> fd = vfs_->Open(req.path, req.flags);
      if (!fd.ok()) {
        fail(fd.status());
        break;
      }
      resp.r0 = static_cast<uint64_t>(session.Register(*fd));
      break;
    }
    case Opcode::kClose: {
      const int vfs_fd = session.Release(req.fd);
      if (vfs_fd < 0) {
        fail(Status(ErrorCode::kBadFd, "unknown client fd"));
        break;
      }
      Status st = vfs_->Close(vfs_fd);
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kRead:
    case Opcode::kPread: {
      int vfs_fd;
      if (!translate(req.fd, &vfs_fd)) {
        break;
      }
      const size_t count = std::min<size_t>(req.count, kMaxDataBytes);
      resp.data.resize(count);
      Result<size_t> n = req.opcode == Opcode::kRead
                             ? vfs_->Read(vfs_fd, resp.data.data(), count)
                             : vfs_->Pread(vfs_fd, resp.data.data(), count, req.offset);
      if (!n.ok()) {
        resp.data.clear();
        fail(n.status());
        break;
      }
      resp.data.resize(*n);
      resp.r0 = *n;
      break;
    }
    case Opcode::kWrite:
    case Opcode::kPwrite: {
      int vfs_fd;
      if (!translate(req.fd, &vfs_fd)) {
        break;
      }
      Result<size_t> n = req.opcode == Opcode::kWrite
                             ? vfs_->Write(vfs_fd, req.data.data(), req.data.size())
                             : vfs_->Pwrite(vfs_fd, req.data.data(), req.data.size(),
                                            req.offset);
      if (!n.ok()) {
        fail(n.status());
        break;
      }
      resp.r0 = *n;
      break;
    }
    case Opcode::kSeek: {
      int vfs_fd;
      if (!translate(req.fd, &vfs_fd)) {
        break;
      }
      Result<uint64_t> off = vfs_->Seek(vfs_fd, req.offset);
      if (!off.ok()) {
        fail(off.status());
        break;
      }
      resp.r0 = *off;
      break;
    }
    case Opcode::kFsync:
    case Opcode::kFdatasync: {
      int vfs_fd;
      if (!translate(req.fd, &vfs_fd)) {
        break;
      }
      Status st = vfs_->Sync(vfs_fd, WireToSyncOptions(req.opcode, req.flags));
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kFtruncate: {
      int vfs_fd;
      if (!translate(req.fd, &vfs_fd)) {
        break;
      }
      Status st = vfs_->Ftruncate(vfs_fd, req.offset);
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kFstat: {
      int vfs_fd;
      if (!translate(req.fd, &vfs_fd)) {
        break;
      }
      Result<InodeAttr> attr = vfs_->Fstat(vfs_fd);
      if (!attr.ok()) {
        fail(attr.status());
        break;
      }
      AppendAttr(*attr, &resp.data);
      break;
    }
    case Opcode::kMkdir: {
      Status st = vfs_->Mkdir(req.path);
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kRmdir: {
      Status st = vfs_->Rmdir(req.path);
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kUnlink: {
      Status st = vfs_->Unlink(req.path);
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kRename: {
      Status st = vfs_->Rename(req.path, req.path2);
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kStat: {
      Result<InodeAttr> attr = vfs_->Stat(req.path);
      if (!attr.ok()) {
        fail(attr.status());
        break;
      }
      AppendAttr(*attr, &resp.data);
      break;
    }
    case Opcode::kReadDir: {
      Result<std::vector<DirEntry>> entries = vfs_->ReadDir(req.path);
      if (!entries.ok()) {
        fail(entries.status());
        break;
      }
      AppendDirEntries(*entries, &resp.data);
      break;
    }
    case Opcode::kExists: {
      Result<bool> present = vfs_->Exists(req.path);
      if (!present.ok()) {
        fail(present.status());
        break;
      }
      resp.r0 = *present ? 1 : 0;
      break;
    }
    case Opcode::kSyncFs: {
      Status st = vfs_->SyncFs();
      if (!st.ok()) {
        fail(st);
      }
      break;
    }
    case Opcode::kHello: {
      if (req.flags == 0 || req.flags > kProtocolVersion) {
        fail(Status(ErrorCode::kInvalidArgument, "unsupported protocol version"));
        break;
      }
      qos::TenantId tenant = qos::kSystemTenant;
      if (options_.qos != nullptr) {
        tenant = options_.qos->Clamp(static_cast<qos::TenantId>(req.offset));
        if (req.count > 0) {
          options_.qos->SetTenantWeight(tenant, req.count);
        }
      }
      session.set_tenant(tenant);
      resp.r0 = tenant;
      break;
    }
  }
  return resp;
}

}  // namespace server
}  // namespace hinfs
