// Epoch-based deferred reclamation for the lock-free read paths.
//
// The pattern: a structure mutated only under a lock publishes a new version
// of some node/array (release store), unlinks the old one, and hands it to a
// RetireList instead of freeing it. Lock-free readers wrap their access in an
// EpochGuard. A retired object is freed only once every guard that was live
// at Retire() time has been released, so a reader holding a stale pointer
// never touches freed memory — the seqlock protocols built on top only have
// to decide logical validity, never memory safety.
//
// One process-global EpochDomain orders all guards and retirements (the
// usual EBR arrangement: per-owner retire lists, one shared epoch clock).
// Pinning is cheap — one seq_cst store plus a validation load on a per-thread
// slot — and reentrant: nested guards on one thread only bump a depth
// counter. Threads beyond the slot table (kSlots) fall back to a mutexed
// multiset; correctness is identical, only the pin is slower.
//
// Correctness sketch (all epoch/slot operations are seq_cst): Retire tags an
// object with the epoch AFTER advancing the clock, and frees it only when
// every published pin is newer than the tag. A reader pins by publishing the
// current epoch E and re-validating that the clock still reads E; so in the
// seq_cst total order either (a) the reader's pin precedes the retirer's
// slot scan — the scan sees E <= tag and keeps the object — or (b) the
// reader's validation load follows the clock advance, which (reading the
// advanced value synchronizes with the fetch_add) guarantees the reader also
// observes the new version published before the advance and cannot reach the
// retired object at all.
//
// Guards may be held across blocking operations (a Vfs::Write pinning its
// FdState can stall on writeback). That only delays reclamation — retired
// memory accumulates, bounded by mutation churn — and can never deadlock:
// a pin is not a lock and reclaimers never wait for it.

#ifndef SRC_COMMON_EPOCH_H_
#define SRC_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>

namespace hinfs {

class EpochDomain {
 public:
  static EpochDomain& Global() {
    static EpochDomain domain;
    return domain;
  }

  // Reentrant per-thread pin. Pin publishes the current epoch; Unpin retracts
  // it once the outermost guard exits.
  void Pin() {
    ThreadState& t = Tls();
    if (t.depth++ > 0) {
      return;
    }
    if (t.slot < 0 && !t.fallback_tried) {
      t.slot = ClaimSlot();
      t.fallback_tried = t.slot < 0;
    }
    if (t.slot >= 0) {
      uint64_t e = epoch_.load(std::memory_order_seq_cst);
      for (;;) {
        slots_[t.slot].epoch.store(e, std::memory_order_seq_cst);
        const uint64_t now = epoch_.load(std::memory_order_seq_cst);
        if (now == e) {
          return;
        }
        e = now;  // clock moved while publishing: republish the newer epoch
      }
    }
    // Slot table exhausted: pin through the mutexed multiset. The lock is
    // only held for the insert itself, never for the pinned duration.
    std::lock_guard<std::mutex> lock(fallback_mu_);
    uint64_t e = epoch_.load(std::memory_order_seq_cst);
    t.fallback_it = fallback_epochs_.insert(e);
    for (;;) {
      const uint64_t now = epoch_.load(std::memory_order_seq_cst);
      if (now == e) {
        break;
      }
      fallback_epochs_.erase(t.fallback_it);
      e = now;
      t.fallback_it = fallback_epochs_.insert(e);
    }
    t.fallback_pinned = true;
  }

  void Unpin() {
    ThreadState& t = Tls();
    if (--t.depth > 0) {
      return;
    }
    if (t.fallback_pinned) {
      std::lock_guard<std::mutex> lock(fallback_mu_);
      fallback_epochs_.erase(t.fallback_it);
      t.fallback_pinned = false;
      return;
    }
    slots_[t.slot].epoch.store(0, std::memory_order_release);
  }

  // Advances the clock; retired objects are tagged with the returned value.
  uint64_t Advance() { return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1; }

  // Oldest epoch any live guard has published (UINT64_MAX when none): an
  // object retired with tag < MinActive() can no longer be reached.
  uint64_t MinActive() {
    uint64_t min = UINT64_MAX;
    for (size_t i = 0; i < kSlots; i++) {
      const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min) {
        min = e;
      }
    }
    std::lock_guard<std::mutex> lock(fallback_mu_);
    if (!fallback_epochs_.empty() && *fallback_epochs_.begin() < min) {
      min = *fallback_epochs_.begin();
    }
    return min;
  }

  // True when the calling thread holds at least one guard (debug asserts).
  static bool PinnedByMe() { return Tls().depth > 0; }

 private:
  static constexpr size_t kSlots = 128;
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = unpinned
    std::atomic<bool> claimed{false};
  };

  struct ThreadState {
    int slot = -1;
    int depth = 0;
    bool fallback_tried = false;  // slot table was full at first pin
    bool fallback_pinned = false;
    std::multiset<uint64_t>::iterator fallback_it{};
    ~ThreadState() {
      if (slot >= 0) {
        EpochDomain& d = Global();
        d.slots_[slot].epoch.store(0, std::memory_order_release);
        d.slots_[slot].claimed.store(false, std::memory_order_release);
      }
    }
  };

  static ThreadState& Tls() {
    static thread_local ThreadState t;
    return t;
  }

  int ClaimSlot() {
    for (size_t i = 0; i < kSlots; i++) {
      bool expected = false;
      if (!slots_[i].claimed.load(std::memory_order_relaxed) &&
          slots_[i].claimed.compare_exchange_strong(expected, true,
                                                    std::memory_order_acq_rel)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  std::atomic<uint64_t> epoch_{1};
  Slot slots_[kSlots];
  std::mutex fallback_mu_;
  std::multiset<uint64_t> fallback_epochs_;
};

// RAII pin on the global domain for the scope of one lock-free access (or one
// syscall using raw pointers into an epoch-protected table).
class EpochGuard {
 public:
  EpochGuard() { EpochDomain::Global().Pin(); }
  ~EpochGuard() { EpochDomain::Global().Unpin(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

// Per-owner list of retired objects awaiting quiescence. Thread-safe; the
// internal mutex is a leaf (Retire/TryReclaim never call out under it except
// to run deleters, which happens after it is released).
class RetireList {
 public:
  RetireList() = default;
  ~RetireList() {
    // Owner teardown contract: no readers can still reach these objects
    // (same contract that lets the owning structure free itself).
    for (const Item& it : items_) {
      it.del(it.p);
    }
  }
  RetireList(const RetireList&) = delete;
  RetireList& operator=(const RetireList&) = delete;

  // Takes ownership of `p`; deletes it once every guard live at this call has
  // been released. Returns objects freed by the piggybacked reclaim pass (0
  // until kReclaimBatch objects are pending, keeping the common case cheap).
  template <typename T>
  size_t Retire(T* p) {
    const uint64_t tag = EpochDomain::Global().Advance();
    size_t pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(Item{p, [](void* q) { delete static_cast<T*>(q); }, tag});
      pending = items_.size();
    }
    return pending >= kReclaimBatch ? TryReclaim() : 0;
  }

  // Frees every retired object that is now unreachable; returns how many.
  size_t TryReclaim() {
    std::deque<Item> free_now;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return 0;
      }
      const uint64_t min = EpochDomain::Global().MinActive();
      while (!items_.empty() && items_.front().epoch < min) {
        free_now.push_back(items_.front());
        items_.pop_front();
      }
    }
    for (const Item& it : free_now) {
      it.del(it.p);
    }
    return free_now.size();
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  static constexpr size_t kReclaimBatch = 32;
  struct Item {
    void* p;
    void (*del)(void*);
    uint64_t epoch;
  };
  mutable std::mutex mu_;
  std::deque<Item> items_;  // epoch-ordered: push_back tags are monotonic
};

}  // namespace hinfs

#endif  // SRC_COMMON_EPOCH_H_
