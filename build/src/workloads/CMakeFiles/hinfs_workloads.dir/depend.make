# Empty dependencies file for hinfs_workloads.
# This may be replaced when dependencies are built.
