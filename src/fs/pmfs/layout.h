// On-NVMM layout of PmfsFs (and therefore of HinfsFs, which shares it).
//
//   [ superblock | journal | inode table | block bitmap | data blocks ... ]
//
// All structures are PODs written in place. Multi-field metadata updates are
// protected by the undo journal (src/fs/pmfs/journal.h); single 8-byte fields
// (size, mtime) are updated with atomic in-place stores followed by
// flush+fence, as PMFS does.

#ifndef SRC_FS_PMFS_LAYOUT_H_
#define SRC_FS_PMFS_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/constants.h"

namespace hinfs {

inline constexpr uint64_t kPmfsMagic = 0x504d465348694e46ull;  // "PMFSHiNF"

// Persistent superblock, in the first cachelines of the device region.
struct PmfsSuperblock {
  uint64_t magic;
  uint64_t device_bytes;
  uint64_t journal_off;      // byte offset of the journal ring
  uint64_t journal_bytes;
  uint64_t inode_table_off;  // byte offset of the inode table
  uint64_t max_inodes;
  uint64_t bitmap_off;       // byte offset of the data-block bitmap
  uint64_t data_off;         // byte offset of data block 0
  uint64_t data_blocks;      // number of data blocks
  uint64_t clean_unmount;    // 1 if the last unmount flushed everything
};
static_assert(sizeof(PmfsSuperblock) <= 2 * kCachelineSize);

// Persistent inode: two cachelines.
struct PmfsInode {
  uint64_t ino;          // 0 = free slot
  uint8_t type;          // FileType
  uint8_t radix_height;  // 0 = empty file, N = N-level radix tree
  uint16_t reserved0;
  uint32_t nlink;
  uint64_t size;          // file size in bytes (atomic 8-byte updates)
  uint64_t radix_root;    // data-area block number of the radix root (or 0 = none)
  uint64_t mtime_ns;
  uint64_t last_sync_ns;  // HiNFS: last synchronization time of this file
  uint64_t reserved[9];
  // Bumped on every allocation of this slot. Lives in the inode's SECOND
  // cacheline: FreeFileLocked clears only the first, so the counter survives
  // free and AllocInode can carry it forward (+1). The WAL's crash recovery
  // (src/wal) uses (ino, generation) to tell a live file from a freed-and-
  // reused inode number when deciding whether a redo record still applies.
  uint64_t generation;
};
static_assert(sizeof(PmfsInode) == 2 * kCachelineSize);
static_assert(offsetof(PmfsInode, generation) >= kCachelineSize,
              "generation must survive the first-cacheline clear on free");

// Maximum stored name length (name is not NUL-terminated on "disk").
inline constexpr size_t kMaxDirentName = 54;

// Persistent directory entry: one cacheline. A zero ino marks a free slot.
struct PmfsDirent {
  uint64_t ino;
  uint8_t type;
  uint8_t name_len;
  char name[kMaxDirentName];
};
static_assert(sizeof(PmfsDirent) == kCachelineSize);

// Radix tree node: one block of 512 pointers (data-area block numbers; 0 = hole).
inline constexpr size_t kRadixFanout = kBlockSize / sizeof(uint64_t);

}  // namespace hinfs

#endif  // SRC_FS_PMFS_LAYOUT_H_
