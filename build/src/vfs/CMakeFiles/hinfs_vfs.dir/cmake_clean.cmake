file(REMOVE_RECURSE
  "CMakeFiles/hinfs_vfs.dir/vfs.cc.o"
  "CMakeFiles/hinfs_vfs.dir/vfs.cc.o.d"
  "libhinfs_vfs.a"
  "libhinfs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
