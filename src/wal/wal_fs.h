// WalFs: a transparent FileSystem decorator that absorbs synchronous writes
// into a per-core NVMM write-ahead log (the NVLog configuration from
// PAPERS.md: an NVM redo log bolted in front of a conventional FS).
//
// Write path: every data write lands in (a) a redo record appended to the
// calling core's log region and (b) a DRAM overlay extent. A synchronous
// write (kLogged / kEagerPersistent) additionally group-commits the region —
// one flush+fence amortized across concurrent committers — and returns; the
// final-layout update is deferred. Fsync commits the file's outstanding
// records; it never touches the inner FS while logged state exists. Reads
// merge the overlay over the inner file. A background checkpoint thread
// periodically (and on log-pressure) drains overlay extents into the inner
// FS with eager persistence, then recycles the log regions.
//
// Recovery: Mount() replays committed records (in global seq order) into the
// freshly mounted inner FS. A record applies only if its target inode is
// live, regular, and its allocation generation matches the record's — which
// is what makes unlink + inode-number reuse safe without tombstones. The
// truncate record type both suppresses stale redo data beyond the cut and
// re-executes a truncate the final layout never received.
//
// Lock ordering: drain_mu_ (shared for every file op, exclusive for
// checkpoint) -> overlay shard mu -> WAL region append_mu. Region commit_mu
// is only ever taken with no shard lock held. Inner-FS locks nest innermost.

#ifndef SRC_WAL_WAL_FS_H_
#define SRC_WAL_WAL_FS_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/nvmm/nvmm_device.h"
#include "src/vfs/file_system.h"
#include "src/wal/wal_log.h"
#include "src/wal/wal_options.h"

namespace hinfs {

class WalFs final : public FileSystem {
 public:
  // Formats the log carve [wal_base, wal_base + wal_bytes) and fronts
  // `inner` (already formatted by the caller) with it.
  static Result<std::unique_ptr<WalFs>> Format(std::unique_ptr<FileSystem> inner,
                                               NvmmDevice* nvmm, uint64_t wal_base,
                                               size_t wal_bytes, const WalOptions& options);
  // Mounts an existing carve, REPLAYS its committed records into `inner`
  // (already mounted and journal-recovered by the caller), then recycles the
  // log. On return the inner FS holds every acknowledged write.
  static Result<std::unique_ptr<WalFs>> Mount(std::unique_ptr<FileSystem> inner,
                                              NvmmDevice* nvmm, uint64_t wal_base,
                                              size_t wal_bytes, const WalOptions& options);

  ~WalFs() override;

  std::string Name() const override { return inner_->Name() + "+wal"; }
  bool SupportsLoggedDurability() const override { return true; }

  Result<uint64_t> Lookup(uint64_t dir_ino, std::string_view name) override;
  Result<uint64_t> Create(uint64_t dir_ino, std::string_view name, FileType type) override;
  Status Unlink(uint64_t dir_ino, std::string_view name) override;
  Status Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                std::string_view new_name) override;
  Result<std::vector<DirEntry>> ReadDir(uint64_t dir_ino) override;
  Result<InodeAttr> GetAttr(uint64_t ino) override;

  Result<size_t> Read(uint64_t ino, uint64_t offset, void* dst, size_t len) override;
  Result<size_t> Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                       const WriteOptions& options) override;
  Status Truncate(uint64_t ino, uint64_t new_size) override;
  Status Fsync(uint64_t ino, const SyncOptions& options) override;
  using FileSystem::Fsync;

  Status SyncFs() override;
  Status DropCaches() override;
  Status Unmount() override;

  Result<uint8_t*> Mmap(uint64_t ino, uint64_t offset, size_t len) override;
  Status Munmap(uint64_t ino) override;
  Status Msync(uint64_t ino, uint64_t offset, size_t len) override;

  // Drains every overlay extent into the inner FS (eager-persistent) and
  // recycles the log. Public so tests and tools can checkpoint on demand.
  Status Checkpoint();

  FileSystem* inner() { return inner_.get(); }
  WalManager* wal() { return wal_.get(); }

 private:
  // Logged-but-not-checkpointed state of one file. `size` is the logical
  // size (inner size merged with logged extends/truncates); `pending` maps a
  // log region to the last seq this file appended there, i.e. what Fsync
  // must commit.
  struct FileState {
    std::map<uint64_t, std::string> extents;  // offset -> bytes, non-overlapping
    uint64_t size = 0;
    uint64_t mtime_ns = 0;
    uint64_t generation = 0;
    // True once a logged truncate made `size` authoritative over the inner
    // size; the drain re-issues the truncate only then (extents alone always
    // land at their own offsets).
    bool size_truncated = false;
    std::map<uint32_t, uint64_t> pending;
  };
  struct alignas(64) OverlayShard {
    std::mutex mu;
    std::unordered_map<uint64_t, FileState> files;
    // Inodes whose buffered writes bypassed the log into the inner FS's
    // volatile write buffer (the direct pass-through in Write): their next
    // Fsync must forward to the inner FS even when logged records exist.
    // Cleared by that forward, or when the inode's overlay is dropped.
    std::unordered_set<uint64_t> inner_dirty;
  };
  static constexpr size_t kOverlayShards = 16;

  WalFs(std::unique_ptr<FileSystem> inner, NvmmDevice* nvmm);

  OverlayShard& ShardFor(uint64_t ino) { return shards_[ino % kOverlayShards]; }
  // Finds or creates the overlay state for `ino`, seeding size/generation
  // from the inner FS on first touch. Caller holds the shard mutex.
  Result<FileState*> FileStateFor(OverlayShard& shard, uint64_t ino);
  static void OverlayInsert(FileState& f, uint64_t offset, const void* src, size_t len);
  static void OverlayTruncate(FileState& f, uint64_t new_size);
  void DropOverlay(uint64_t ino);

  // The checkpoint body; caller holds drain_mu_ exclusively.
  Status DrainLocked();
  Status ReplayIntoInner();
  void StartCheckpointThread();
  void StopCheckpointThread();
  void KickCheckpoint();
  void CheckpointLoop();

  std::unique_ptr<FileSystem> inner_;
  NvmmDevice* nvmm_;
  std::unique_ptr<WalManager> wal_;
  uint64_t checkpoint_ms_ = 0;
  size_t direct_write_bytes_ = 0;

  // Hot-path counters resolved once (StatsRegistry::Add is a mutex + string
  // lookup — measurable at log-append rates on one core).
  std::atomic<uint64_t>* stat_write_ns_;
  std::atomic<uint64_t>* stat_fsync_ns_;
  std::atomic<uint64_t>* stat_eager_writes_;
  std::atomic<uint64_t>* stat_lazy_writes_;
  std::atomic<uint64_t>* stat_written_bytes_;

  std::shared_mutex drain_mu_;
  std::vector<OverlayShard> shards_{kOverlayShards};

  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_stop_ = false;
  bool ckpt_kick_ = false;
  std::thread ckpt_thread_;
};

}  // namespace hinfs

#endif  // SRC_WAL_WAL_FS_H_
