// mail_server: a varmail-style scenario (the paper's motivating eager-persistent
// workload) run on both HiNFS and PMFS, showing that HiNFS's Buffer Benefit
// Model routes fsync-bound appends directly to NVMM — matching PMFS instead of
// paying double copies — while still buffering the mailbox compaction rewrite.
//
//   ./build/examples/mail_server

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/workloads/fs_setup.h"

using namespace hinfs;

namespace {

// Deliver `n` messages: append to a mailbox file + fsync each (mail servers
// must not lose accepted mail).
Status DeliverMail(Vfs* vfs, int n, uint64_t* elapsed_ns) {
  std::string msg(2048, 'm');
  const uint64_t start = MonotonicNowNs();
  for (int i = 0; i < n; i++) {
    const std::string box = "/mail/user" + std::to_string(i % 8);
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(box, kWrOnly | kCreate | kAppend));
    HINFS_RETURN_IF_ERROR(vfs->Write(fd, msg.data(), msg.size()).status());
    HINFS_RETURN_IF_ERROR(vfs->Fsync(fd));
    HINFS_RETURN_IF_ERROR(vfs->Close(fd));
  }
  *elapsed_ns = MonotonicNowNs() - start;
  return OkStatus();
}

// Compact a mailbox: rewrite it in place several times (lazy-persistent work
// that coalesces in the DRAM buffer).
Status CompactMailboxes(Vfs* vfs, int rounds, uint64_t* elapsed_ns) {
  std::string blob(128 * 1024, 'c');
  const uint64_t start = MonotonicNowNs();
  for (int r = 0; r < rounds; r++) {
    for (int u = 0; u < 8; u++) {
      const std::string box = "/mail/user" + std::to_string(u);
      HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(box, kWrOnly | kTrunc));
      HINFS_RETURN_IF_ERROR(vfs->Write(fd, blob.data(), blob.size()).status());
      HINFS_RETURN_IF_ERROR(vfs->Close(fd));
    }
  }
  *elapsed_ns = MonotonicNowNs() - start;
  return OkStatus();
}

int RunScenario(FsKind kind) {
  TestBedConfig cfg;
  cfg.nvmm.size_bytes = 256ull << 20;
  cfg.nvmm.latency_mode = LatencyMode::kSpin;
  cfg.hinfs.buffer_bytes = 32ull << 20;
  auto bed = MakeTestBed(kind, cfg);
  if (!bed.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", bed.status().ToString().c_str());
    return 1;
  }
  Vfs* vfs = (*bed)->vfs.get();
  if (!vfs->Mkdir("/mail").ok()) {
    return 1;
  }

  uint64_t deliver_ns = 0;
  uint64_t compact_ns = 0;
  if (Status st = DeliverMail(vfs, 200, &deliver_ns); !st.ok()) {
    std::fprintf(stderr, "deliver: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = CompactMailboxes(vfs, 10, &compact_ns); !st.ok()) {
    std::fprintf(stderr, "compact: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("%-12s deliver(200 msgs+fsync): %6.2f ms   compact(10 rounds): %6.2f ms",
              FsKindName(kind), deliver_ns / 1e6, compact_ns / 1e6);
  std::printf("   [eager=%llu lazy=%llu]\n",
              static_cast<unsigned long long>((*bed)->fs->stats().Get(kStatEagerWrites)),
              static_cast<unsigned long long>((*bed)->fs->stats().Get(kStatLazyWrites)));
  return (*bed)->vfs->Unmount().ok() ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("varmail-style mail server: append+fsync deliveries vs buffered compaction\n\n");
  int rc = 0;
  rc |= RunScenario(FsKind::kPmfs);
  rc |= RunScenario(FsKind::kHinfs);
  rc |= RunScenario(FsKind::kHinfsWb);
  std::printf(
      "\nExpected shape: delivery is NVMM-bound on every FS (eager-persistent appends);\n"
      "compaction is much faster on HiNFS (write coalescing in DRAM); HiNFS-WB pays\n"
      "double copies on delivery because it buffers the fsync-bound appends too.\n");
  return rc;
}
