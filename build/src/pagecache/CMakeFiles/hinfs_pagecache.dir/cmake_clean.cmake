file(REMOVE_RECURSE
  "CMakeFiles/hinfs_pagecache.dir/page_cache.cc.o"
  "CMakeFiles/hinfs_pagecache.dir/page_cache.cc.o.d"
  "libhinfs_pagecache.a"
  "libhinfs_pagecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_pagecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
