file(REMOVE_RECURSE
  "libhinfs_core.a"
)
