file(REMOVE_RECURSE
  "libhinfs_common.a"
)
