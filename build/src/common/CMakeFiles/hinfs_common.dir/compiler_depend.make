# Empty compiler generated dependencies file for hinfs_common.
# This may be replaced when dependencies are built.
