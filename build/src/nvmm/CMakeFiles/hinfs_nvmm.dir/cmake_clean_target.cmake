file(REMOVE_RECURSE
  "libhinfs_nvmm.a"
)
