file(REMOVE_RECURSE
  "CMakeFiles/hinfs_pmfs.dir/pmfs/allocator.cc.o"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/allocator.cc.o.d"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/fsck.cc.o"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/fsck.cc.o.d"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/journal.cc.o"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/journal.cc.o.d"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/pmfs_fs.cc.o"
  "CMakeFiles/hinfs_pmfs.dir/pmfs/pmfs_fs.cc.o.d"
  "libhinfs_pmfs.a"
  "libhinfs_pmfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_pmfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
