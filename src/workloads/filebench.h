// Filebench-style micro-workload personalities (Table 1 of the paper):
//   Fileserver - creates, deletes, appends, whole-file reads and writes
//   Webserver  - whole-file reads plus log appends (read-intensive)
//   Webproxy   - create-write-close / open-read-close / delete with strong
//                locality and short-lived files, plus log appends
//   Varmail    - create-append-fsync / read-append-fsync / reads / deletes
// plus a fio-like random read/write generator used for the Fig. 1 breakdown.

#ifndef SRC_WORKLOADS_FILEBENCH_H_
#define SRC_WORKLOADS_FILEBENCH_H_

#include "src/workloads/workload.h"

namespace hinfs {

enum class Personality {
  kFileserver,
  kWebserver,
  kWebproxy,
  kVarmail,
};

const char* PersonalityName(Personality p);

struct FilebenchConfig {
  size_t nfiles = 200;
  size_t dir_width = 20;          // files per directory
  size_t mean_file_size = 128 * 1024;
  size_t io_size = 1 << 20;       // mean I/O size (paper default: 1 MB)
  int threads = 1;
  uint64_t duration_ms = 300;
  uint64_t seed = 42;
  double locality_theta = 0.2;    // file-choice skew (webproxy uses ~0.6)
};

// Creates the directory tree and initial file population. The FsApi overload
// works over any front-end (in-process Vfs or a hinfsd connection).
Status PrepareFileset(FsApi* fs, const FilebenchConfig& config);
Status PrepareFileset(Vfs* vfs, const FilebenchConfig& config);

// Runs one personality for config.duration_ms. The per-thread overload runs
// one thread per entry of `per_thread_api` (config.threads is ignored), so a
// load generator can give every thread its own connection; entries may repeat
// when a front-end is shared. PrepareFileset must have been called on the
// same configuration.
Result<WorkloadResult> RunFilebench(const std::vector<FsApi*>& per_thread_api,
                                    Personality personality, const FilebenchConfig& config);
Result<WorkloadResult> RunFilebench(Vfs* vfs, Personality personality,
                                    const FilebenchConfig& config);

// fio-style random R/W over one preallocated file, read:write = 1:2 by
// default (the Fig. 1 microbenchmark).
struct FioConfig {
  size_t file_bytes = 32ull << 20;
  size_t io_size = 4096;
  double write_fraction = 2.0 / 3.0;
  double locality_theta = 0;  // 0 = uniform offsets; > 0 = skewed (hot blocks)
  int threads = 1;
  uint64_t duration_ms = 300;
  uint64_t seed = 7;
};
Result<WorkloadResult> RunFioRandRw(Vfs* vfs, const FioConfig& config);

}  // namespace hinfs

#endif  // SRC_WORKLOADS_FILEBENCH_H_
