// fsload: open- and closed-loop load generator for hinfsd.
//
// Replays the filebench personalities (src/workloads/filebench.h) over the
// wire: every client thread owns one connection (one server::Client), and
// every FsApi call is timed into a shared ConcurrentHistogram. Closed loop by
// default (each client issues its next op as soon as the previous one
// returns); `--qps` switches to an open loop where ops are released on a
// global schedule and latency is measured from the *scheduled* start, so a
// slow server shows up as queueing delay instead of being silently absorbed
// (coordinated omission).
//
// Three targets:
//   --unix <path>      an already-running hinfsd Unix socket
//   --tcp <host:port>  an already-running hinfsd TCP listener (127.0.0.1 only)
//   --inproc           spawn a Server in-process on a temp Unix socket; after
//                      the run, drain it and fail if any Vfs fd leaked or the
//                      server saw a protocol error (the acceptance check)
//
// `--json <path>` writes the same unified rows as the benches
// ({fs, personality, clients, ops_per_sec} plus p50_ns/p99_ns/mean_ns rows),
// so tools/plot_bench.py and tools/bench_compare.py consume fsload output
// unchanged.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/qos/tenant.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace hinfs {
namespace {

// Releases op slots on a fixed global schedule (total target QPS across all
// clients). AcquireSlot blocks until the slot's scheduled time and returns it;
// open-loop latency is measured from that timestamp.
class Pacer {
 public:
  explicit Pacer(double qps)
      : interval_ns_(static_cast<uint64_t>(1e9 / qps)), next_ns_(MonotonicNowNs()) {}

  uint64_t AcquireSlot() {
    const uint64_t slot = next_ns_.fetch_add(interval_ns_, std::memory_order_relaxed);
    uint64_t now = MonotonicNowNs();
    while (now < slot) {
      const uint64_t wait = slot - now;
      if (wait > 1'000'000) {
        usleep(static_cast<useconds_t>((wait - 500'000) / 1000));
      }
      now = MonotonicNowNs();
    }
    return slot;
  }

 private:
  const uint64_t interval_ns_;
  std::atomic<uint64_t> next_ns_;
};

// FsApi decorator: forwards to `base`, timing every call into `hist`. With a
// pacer, each call first waits for its scheduled slot.
class LatencyApi final : public FsApi {
 public:
  LatencyApi(FsApi* base, ConcurrentHistogram* hist, Pacer* pacer)
      : base_(base), hist_(hist), pacer_(pacer) {}

 private:
  // Defined before its uses below: an auto return type must be deduced
  // before the first call site.
  template <typename F>
  auto Timed(F&& f) {
    const uint64_t start = pacer_ != nullptr ? pacer_->AcquireSlot() : MonotonicNowNs();
    auto result = f();
    hist_->Record(MonotonicNowNs() - start);
    return result;
  }

 public:
  Result<int> Open(std::string_view path, uint32_t flags) override {
    return Timed([&] { return base_->Open(path, flags); });
  }
  Status Close(int fd) override {
    return Timed([&] { return base_->Close(fd); });
  }
  Result<size_t> Read(int fd, void* dst, size_t len) override {
    return Timed([&] { return base_->Read(fd, dst, len); });
  }
  Result<size_t> Write(int fd, const void* src, size_t len) override {
    return Timed([&] { return base_->Write(fd, src, len); });
  }
  Result<size_t> Pread(int fd, void* dst, size_t len, uint64_t offset) override {
    return Timed([&] { return base_->Pread(fd, dst, len, offset); });
  }
  Result<size_t> Pwrite(int fd, const void* src, size_t len, uint64_t offset) override {
    return Timed([&] { return base_->Pwrite(fd, src, len, offset); });
  }
  Result<uint64_t> Seek(int fd, uint64_t offset) override {
    return Timed([&] { return base_->Seek(fd, offset); });
  }
  Status Fsync(int fd) override {
    return Timed([&] { return base_->Fsync(fd); });
  }
  Status Fdatasync(int fd) override {
    return Timed([&] { return base_->Fdatasync(fd); });
  }
  Status Sync(int fd, const SyncOptions& options) override {
    return Timed([&] { return base_->Sync(fd, options); });
  }
  Status Ftruncate(int fd, uint64_t size) override {
    return Timed([&] { return base_->Ftruncate(fd, size); });
  }
  Result<InodeAttr> Fstat(int fd) override {
    return Timed([&] { return base_->Fstat(fd); });
  }
  Status Mkdir(std::string_view path) override {
    return Timed([&] { return base_->Mkdir(path); });
  }
  Status Rmdir(std::string_view path) override {
    return Timed([&] { return base_->Rmdir(path); });
  }
  Status Unlink(std::string_view path) override {
    return Timed([&] { return base_->Unlink(path); });
  }
  Status Rename(std::string_view from, std::string_view to) override {
    return Timed([&] { return base_->Rename(from, to); });
  }
  Result<InodeAttr> Stat(std::string_view path) override {
    return Timed([&] { return base_->Stat(path); });
  }
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) override {
    return Timed([&] { return base_->ReadDir(path); });
  }
  Result<bool> Exists(std::string_view path) override {
    return Timed([&] { return base_->Exists(path); });
  }
  Status SyncFs() override {
    return Timed([&] { return base_->SyncFs(); });
  }

 private:
  FsApi* base_;
  ConcurrentHistogram* hist_;
  Pacer* pacer_;
};

bool ParsePersonality(const std::string& name, Personality* out) {
  for (Personality p : {Personality::kFileserver, Personality::kWebserver,
                        Personality::kWebproxy, Personality::kVarmail}) {
    if (name == PersonalityName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

void Usage(const char* prog) {
  std::printf(
      "usage: %s [target] [options]\n\n"
      "target (pick one; default --inproc):\n"
      "  --unix <path>         connect to a running hinfsd Unix socket\n"
      "  --tcp <host:port>     connect to a running hinfsd TCP listener\n"
      "  --inproc              spawn the server in-process (leak-checked)\n\n"
      "load shape:\n"
      "  --clients <n>         concurrent client connections (default 8)\n"
      "  --personality <list>  comma list of fileserver,webserver,webproxy,\n"
      "                        varmail (default fileserver)\n"
      "  --qps <n>             open loop at <n> total FsApi ops/sec\n"
      "                        (default 0 = closed loop)\n"
      "  --duration-ms <n>     per-personality run time (default\n"
      "                        HINFS_BENCH_DURATION_MS or 400)\n"
      "  --nfiles <n>          initial file population (default 96)\n\n"
      "in-process server:\n"
      "  --fs <kind>           file system kind (default hinfs)\n"
      "  --workers <n>         server worker threads (default 2)\n\n"
      "tenancy (servers with HINFS_QOS_TENANTS set):\n"
      "  --tenant <id>         hello handshake tenant id for every connection\n"
      "                        (default: no handshake, system tenant)\n"
      "  --weight <w>          ask the server to set this tenant's weight\n\n"
      "output:\n"
      "  --json <path>         write bench rows (ops_per_sec, p50_ns, p99_ns,\n"
      "                        mean_ns per personality)\n",
      prog);
}

struct RunRow {
  Personality personality;
  double ops_per_sec = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double mean_ns = 0;
  uint64_t samples = 0;
};

}  // namespace
}  // namespace hinfs

int main(int argc, char** argv) {
  using namespace hinfs;

  enum class Target { kInproc, kUnix, kTcp };
  Target target = Target::kInproc;
  std::string unix_path;
  std::string tcp_host;
  int tcp_port = 0;
  int clients = 8;
  std::string personalities_arg = "fileserver";
  double qps = 0;
  uint64_t duration_ms = BenchDurationMs();
  size_t nfiles = 96;
  FsKind kind = FsKind::kHinfs;
  int workers = 2;
  std::string json_path;
  int tenant = -1;  // -1 = no hello handshake
  uint32_t weight = 0;

  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--unix") == 0) {
      target = Target::kUnix;
      unix_path = next("--unix");
    } else if (std::strcmp(arg, "--tcp") == 0) {
      target = Target::kTcp;
      const std::string hp = next("--tcp");
      const size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "error: --tcp wants host:port\n");
        return 2;
      }
      tcp_host = hp.substr(0, colon);
      tcp_port = std::atoi(hp.c_str() + colon + 1);
    } else if (std::strcmp(arg, "--inproc") == 0) {
      target = Target::kInproc;
    } else if (std::strcmp(arg, "--clients") == 0) {
      clients = std::atoi(next("--clients"));
    } else if (std::strcmp(arg, "--personality") == 0) {
      personalities_arg = next("--personality");
    } else if (std::strcmp(arg, "--qps") == 0) {
      qps = std::atof(next("--qps"));
    } else if (std::strcmp(arg, "--duration-ms") == 0) {
      duration_ms = std::strtoull(next("--duration-ms"), nullptr, 10);
    } else if (std::strcmp(arg, "--nfiles") == 0) {
      nfiles = std::strtoull(next("--nfiles"), nullptr, 10);
    } else if (std::strcmp(arg, "--fs") == 0) {
      const char* name = next("--fs");
      bool found = false;
      for (FsKind k : {FsKind::kPmfs, FsKind::kExt4Dax, FsKind::kExt2Nvmmbd,
                       FsKind::kExt4Nvmmbd, FsKind::kHinfs, FsKind::kHinfsNclfw,
                       FsKind::kHinfsWb, FsKind::kHinfsFifo}) {
        if (std::strcmp(name, FsKindName(k)) == 0) {
          kind = k;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "error: unknown fs kind '%s' (use FsKindName spelling, "
                     "e.g. HiNFS, PMFS)\n", name);
        return 2;
      }
    } else if (std::strcmp(arg, "--workers") == 0) {
      workers = std::atoi(next("--workers"));
    } else if (std::strcmp(arg, "--tenant") == 0) {
      tenant = std::atoi(next("--tenant"));
      if (tenant < 0 || static_cast<uint32_t>(tenant) >= qos::kMaxTenants) {
        std::fprintf(stderr, "error: --tenant wants 0..%u\n", qos::kMaxTenants - 1);
        return 2;
      }
    } else if (std::strcmp(arg, "--weight") == 0) {
      const int w = std::atoi(next("--weight"));
      if (w <= 0) {
        std::fprintf(stderr, "error: --weight wants a positive int\n");
        return 2;
      }
      weight = static_cast<uint32_t>(w);
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = next("--json");
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s' (see --help)\n", arg);
      return 2;
    }
  }
  if (clients < 1) {
    std::fprintf(stderr, "error: --clients must be >= 1\n");
    return 2;
  }

  // Parse the personality list up front so a typo fails before any setup.
  std::vector<Personality> personalities;
  {
    std::string rest = personalities_arg;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      const std::string name = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      Personality p;
      if (!ParsePersonality(name, &p)) {
        std::fprintf(stderr, "error: unknown personality '%s'\n", name.c_str());
        return 2;
      }
      personalities.push_back(p);
    }
  }

  // In-process target: build a test bed and a server on a private socket.
  std::unique_ptr<TestBed> bed;
  std::unique_ptr<server::Server> inproc;
  if (target == Target::kInproc) {
    TestBedConfig bed_cfg = PaperBedConfig();
    bed_cfg.nvmm.latency_mode = LatencyMode::kNone;  // measure the service, not the emulator
    Result<std::unique_ptr<TestBed>> b = MakeTestBed(kind, bed_cfg);
    if (!b.ok()) {
      std::fprintf(stderr, "error: cannot build %s bed: %s\n", FsKindName(kind),
                   b.status().ToString().c_str());
      return 1;
    }
    bed = std::move(*b);
    server::ServerOptions opts;
    opts.unix_path = "/tmp/fsload." + std::to_string(getpid()) + ".sock";
    opts.workers = workers;
    opts.qos = bed->nvmm->qos();  // null unless HINFS_QOS_TENANTS is set
    inproc = std::make_unique<server::Server>(bed->vfs.get(), opts);
    Status st = inproc->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "error: cannot start in-process server: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    unix_path = inproc->unix_path();
  }

  auto connect = [&]() -> Result<std::unique_ptr<server::Client>> {
    if (target == Target::kTcp) {
      return server::Client::ConnectTcp(tcp_host, tcp_port);
    }
    return server::Client::ConnectUnix(unix_path);
  };

  const char* fs_label = target == Target::kInproc ? FsKindName(kind) : "remote";
  std::printf("== fsload: %d %s-loop clients -> %s over %s ==\n", clients,
              qps > 0 ? "open" : "closed", fs_label,
              target == Target::kTcp ? "tcp" : "unix socket");
  if (qps > 0) {
    std::printf("target rate: %.0f FsApi ops/sec total\n", qps);
  }

  FilebenchConfig fb_cfg;
  fb_cfg.nfiles = nfiles;
  fb_cfg.dir_width = 16;
  fb_cfg.io_size = 64 * 1024;
  fb_cfg.threads = clients;
  fb_cfg.duration_ms = duration_ms;

  int exit_code = 0;
  std::vector<RunRow> rows;
  for (Personality personality : personalities) {
    // Fresh connections per personality: each run also exercises session
    // setup/teardown, and a crashed run cannot poison the next one.
    std::vector<std::unique_ptr<server::Client>> conns;
    for (int i = 0; i < clients; i++) {
      Result<std::unique_ptr<server::Client>> c = connect();
      if (!c.ok()) {
        std::fprintf(stderr, "error: connect: %s\n", c.status().ToString().c_str());
        return 1;
      }
      if (tenant >= 0) {
        Result<uint32_t> granted =
            (*c)->Hello(static_cast<uint32_t>(tenant), weight);
        if (!granted.ok()) {
          std::fprintf(stderr, "error: hello handshake: %s\n",
                       granted.status().ToString().c_str());
          return 1;
        }
      }
      conns.push_back(std::move(*c));
    }

    Status st = PrepareFileset(conns[0].get(), fb_cfg);
    if (!st.ok()) {
      std::fprintf(stderr, "error: prepare fileset: %s\n", st.ToString().c_str());
      return 1;
    }

    ConcurrentHistogram hist;
    std::unique_ptr<Pacer> pacer;
    if (qps > 0) {
      pacer = std::make_unique<Pacer>(qps);
    }
    std::vector<LatencyApi> apis;
    apis.reserve(conns.size());
    for (const auto& c : conns) {
      apis.emplace_back(c.get(), &hist, pacer.get());
    }
    std::vector<FsApi*> per_thread;
    for (LatencyApi& api : apis) {
      per_thread.push_back(&api);
    }

    Result<WorkloadResult> result = RunFilebench(per_thread, personality, fb_cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s run failed: %s\n", PersonalityName(personality),
                   result.status().ToString().c_str());
      return 1;
    }

    uint64_t rpcs = 0;
    for (auto& c : conns) {
      rpcs += c->rpcs();
      c->Disconnect();
    }
    conns.clear();

    const Histogram snap = hist.Snapshot();
    RunRow row;
    row.personality = personality;
    row.ops_per_sec = result->OpsPerSec();
    row.p50_ns = snap.Percentile(0.50);
    row.p99_ns = snap.Percentile(0.99);
    row.mean_ns = snap.Mean();
    row.samples = snap.count();
    rows.push_back(row);
    std::printf("%-11s %10.0f flowops/s  %8llu rpcs  lat %s\n",
                PersonalityName(personality), row.ops_per_sec,
                static_cast<unsigned long long>(rpcs), snap.Summary().c_str());
    std::fflush(stdout);
  }

  // The acceptance check: after every client is gone and the server has
  // drained, the Vfs fd table must be empty and the server must not have seen
  // a single malformed frame.
  if (inproc != nullptr) {
    inproc->Stop();
    const uint64_t proto_errors = inproc->stats().Get(kStatSrvProtocolErrors);
    const size_t leaked = bed->vfs->OpenFdCount();
    if (proto_errors != 0) {
      std::fprintf(stderr, "FAIL: server counted %llu protocol errors\n",
                   static_cast<unsigned long long>(proto_errors));
      exit_code = 1;
    }
    if (leaked != 0) {
      std::fprintf(stderr, "FAIL: %zu Vfs fds leaked after drain\n", leaked);
      exit_code = 1;
    }
    if (exit_code == 0) {
      std::printf("post-drain check: 0 protocol errors, 0 leaked fds\n");
    }
    Status st = bed->vfs->Unmount();
    if (!st.ok()) {
      std::fprintf(stderr, "error: unmount: %s\n", st.ToString().c_str());
      exit_code = 1;
    }
  }

  if (!json_path.empty()) {
    std::vector<BenchJsonRow> json_rows;
    for (const RunRow& row : rows) {
      BenchJsonRow base;
      base.fs = fs_label;
      base.personality = PersonalityName(row.personality);
      base.x_key = "clients";
      base.x = clients;
      base.value_key = "ops_per_sec";
      base.value = row.ops_per_sec;
      json_rows.push_back(base);
      base.value_key = "p50_ns";
      base.value = static_cast<double>(row.p50_ns);
      json_rows.push_back(base);
      base.value_key = "p99_ns";
      base.value = static_cast<double>(row.p99_ns);
      json_rows.push_back(base);
      base.value_key = "mean_ns";
      base.value = row.mean_ns;
      json_rows.push_back(base);
    }
    if (!WriteBenchJson(json_path, json_rows)) {
      exit_code = 1;
    }
  }
  return exit_code;
}
