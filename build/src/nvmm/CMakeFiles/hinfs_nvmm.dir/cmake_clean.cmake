file(REMOVE_RECURSE
  "CMakeFiles/hinfs_nvmm.dir/bandwidth_limiter.cc.o"
  "CMakeFiles/hinfs_nvmm.dir/bandwidth_limiter.cc.o.d"
  "CMakeFiles/hinfs_nvmm.dir/latency_model.cc.o"
  "CMakeFiles/hinfs_nvmm.dir/latency_model.cc.o.d"
  "CMakeFiles/hinfs_nvmm.dir/nvmm_device.cc.o"
  "CMakeFiles/hinfs_nvmm.dir/nvmm_device.cc.o.d"
  "libhinfs_nvmm.a"
  "libhinfs_nvmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_nvmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
