// WalManager: per-core NVMM redo log with leader-based group commit.
//
// The manager owns the tail carve of an NvmmDevice (see wal_layout.h) split
// into per-core regions. Appends are cheap volatile stores into the calling
// thread's region; durability happens at Commit(), where one thread — the
// commit leader — flushes every record appended to the region so far and
// fences ONCE, covering all concurrent committers (they observe the advanced
// committed_seq and return without touching the device). Under the default
// kChecksum format that flush covers ONLY the record lines — no commit
// marker, no header write; recovery finds the committed prefix by an
// epoch-validated CRC tail scan. That minimal flush+fence, amortized across
// committers, is the entire point of the log.
//
// Lock ordering (see DESIGN.md §8): a region's append_mu may be taken while
// the caller holds WalFs overlay shard locks; commit_mu is taken with NO
// other WAL or overlay lock held. append_mu nests inside commit_mu (the
// leader snapshots the tail under append_mu).

#ifndef SRC_WAL_WAL_LOG_H_
#define SRC_WAL_WAL_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/nvmm/nvmm_device.h"
#include "src/wal/wal_layout.h"
#include "src/wal/wal_options.h"

namespace hinfs {

// Where an Append landed: enough for a later Commit to name what must be
// durable ("everything in `region` up to and including `seq`").
struct WalTicket {
  uint32_t region = 0;
  uint64_t seq = 0;
};

// One committed record, decoded at recovery.
struct WalRecoveredRecord {
  WalRecordType type = WalRecordType::kData;
  uint64_t seq = 0;
  uint64_t ino = 0;
  uint64_t offset = 0;
  uint64_t generation = 0;
  std::string payload;
};

class WalManager {
 public:
  // Formats the carve [base, base + total_bytes) and returns a manager for
  // it. Counters land in `stats` (the owning WalFs's registry).
  static Result<std::unique_ptr<WalManager>> Format(NvmmDevice* nvmm, uint64_t base,
                                                    size_t total_bytes, const WalOptions& options,
                                                    StatsRegistry* stats);
  // Mounts a previously formatted carve. Geometry and commit format come from
  // the on-NVMM superblock. The caller is expected to run CommittedRecords()
  // + replay + ResetAllRegions() before appending.
  static Result<std::unique_ptr<WalManager>> Mount(NvmmDevice* nvmm, uint64_t base,
                                                   size_t total_bytes, const WalOptions& options,
                                                   StatsRegistry* stats);

  // Appends one record (volatile stores only — durable at the next Commit
  // covering it). Returns kNoSpace when the calling thread's region is full;
  // the caller checkpoints and retries. Thread-safe.
  Result<WalTicket> Append(WalRecordType type, uint64_t ino, uint64_t offset,
                           uint64_t generation, const void* payload, size_t payload_len);

  // Makes every record of ticket.region with seq <= ticket.seq durable.
  // With allow_group_wait, rides a concurrent leader's flush+fence when one
  // already covered this ticket; otherwise always issues its own.
  Status Commit(const WalTicket& ticket, bool allow_group_wait);

  // Commits every region's appended records (SyncFs / pre-checkpoint).
  Status CommitAll();

  // All recoverable records across all regions, sorted by global seq. Under
  // kChecksum this is the epoch-validated CRC tail scan: the longest valid
  // prefix of the record area — a torn tail batch breaks the scan cleanly,
  // and (exactly as on real NVMM) an appended-but-uncommitted record whose
  // lines happened to reach the media MAY be included; it was never
  // acknowledged, so replaying it is legal. Under kFence a CRC mismatch
  // inside [head, durable_tail) is impossible by construction and reported
  // as corruption.
  Result<std::vector<WalRecoveredRecord>> CommittedRecords();

  // Durably resets every region to empty (head = durable_tail = 0, epoch
  // advanced) after a checkpoint drained the logged state into the final
  // layout, recycling the space. The epoch bump voids the stale record bytes
  // without zeroing them. The caller must have quiesced appends (WalFs holds
  // its drain lock exclusively).
  Status ResetAllRegions();

  // Checkpoint pressure hint: true when any region's append cursor passed
  // half of its record area.
  bool SpaceLow() const;

  // Bytes appended and not yet recycled, across all regions.
  uint64_t PendingBytes() const;

  uint32_t region_count() const { return static_cast<uint32_t>(regions_.size()); }
  WalCommitFormat commit_format() const { return commit_format_; }

 private:
  struct alignas(64) Region {
    uint32_t index = 0;        // position in regions_ (== WalTicket::region)
    uint64_t header_addr = 0;  // device offset of the WalRegionHeader
    uint64_t data_addr = 0;    // device offset of the record area
    uint64_t data_bytes = 0;   // record-area capacity

    // Append state, guarded by append_mu. `tail` mirrors into an atomic so
    // SpaceLow/PendingBytes can read it without the lock. `epoch` changes
    // only under ResetAllRegions' scoped commit+append lock.
    std::mutex append_mu;
    std::atomic<uint64_t> tail{0};
    uint64_t last_seq = 0;
    uint64_t epoch = 1;
    // Set at Mount: the record area may hold current-epoch residue beyond
    // the recovered tail (e.g. the scan broke at a torn record with intact
    // same-epoch records past it), so the next recycle must bump the epoch
    // even if nothing was appended since — otherwise a later scan could run
    // past fresh records into the residue and replay stale data.
    bool needs_epoch_bump = false;

    // Commit state. committed_tail/committed_seq mirror what a recovery scan
    // would find durable; readers use them for the group-commit fast path.
    std::mutex commit_mu;
    std::atomic<uint64_t> committed_tail{0};
    std::atomic<uint64_t> committed_seq{0};
  };

  WalManager(NvmmDevice* nvmm, WalCommitFormat format, StatsRegistry* stats);

  static uint32_t ResolveRegionCount(const WalOptions& options, size_t total_bytes);
  Status InitRegions(uint64_t base, uint64_t region_count, uint64_t region_bytes);
  Region& RegionForThisThread();

  // The leader path: flush [committed_tail, tail) with the fence discipline
  // of commit_format_ (kFence also publishes the header). Caller holds
  // r.commit_mu.
  Status CommitRegionLocked(Region& r);

  // Walks one region's valid records. Under kChecksum: epoch+CRC tail scan
  // from 0. Under kFence: exact [head, durable_tail) decode. Appends decoded
  // records to `out` (if non-null) and reports the scan end and max seq.
  Status ScanRegion(const Region& r, const WalRegionHeader& hdr,
                    std::vector<WalRecoveredRecord>* out, uint64_t* end_off, uint64_t* max_seq);

  NvmmDevice* nvmm_;
  WalCommitFormat commit_format_;
  StatsRegistry* stats_;
  // Hot-path counters resolved once: the registry's by-name Add() takes a
  // mutex + string lookup, which at log-append rates is real CPU.
  std::atomic<uint64_t>* stat_appends_;
  std::atomic<uint64_t>* stat_append_bytes_;
  std::atomic<uint64_t>* stat_commits_;
  std::atomic<uint64_t>* stat_commit_bytes_;
  std::atomic<uint64_t>* stat_group_absorbed_;
  std::vector<std::unique_ptr<Region>> regions_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint32_t> next_thread_region_{0};
};

// Stat keys (registered in the owning file system's StatsRegistry).
inline constexpr char kStatWalAppends[] = "wal_appends";
inline constexpr char kStatWalAppendBytes[] = "wal_append_bytes";
inline constexpr char kStatWalCommits[] = "wal_commits";
inline constexpr char kStatWalCommitBytes[] = "wal_commit_bytes";
inline constexpr char kStatWalGroupAbsorbed[] = "wal_group_absorbed";
inline constexpr char kStatWalCheckpoints[] = "wal_checkpoints";
inline constexpr char kStatWalCheckpointBytes[] = "wal_checkpoint_bytes";
inline constexpr char kStatWalRecycles[] = "wal_recycles";
inline constexpr char kStatWalReplayedRecords[] = "wal_replayed_records";
inline constexpr char kStatWalReplaySkippedRecords[] = "wal_replay_skipped_records";
inline constexpr char kStatWalLogFullStalls[] = "wal_log_full_stalls";
inline constexpr char kStatWalDirectWrites[] = "wal_direct_writes";

}  // namespace hinfs

#endif  // SRC_WAL_WAL_LOG_H_
