#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/hinfs/dram_buffer.h"

namespace hinfs {
namespace {

// A fixed-region flush target: file blocks map linearly into the device.
class BufferHarness {
 public:
  explicit BufferHarness(HinfsOptions options, size_t dev_bytes = 8 << 20) {
    NvmmConfig cfg;
    cfg.size_bytes = dev_bytes;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    mgr_ = std::make_unique<DramBufferManager>(
        nvmm_.get(), options, [this](uint64_t ino, uint64_t file_block) -> Result<uint64_t> {
          alloc_calls_++;
          return AddrFor(ino, file_block);
        });
  }

  static uint64_t AddrFor(uint64_t ino, uint64_t file_block) {
    return (ino * 64 + file_block) * kBlockSize;
  }

  NvmmDevice& nvmm() { return *nvmm_; }
  DramBufferManager& mgr() { return *mgr_; }
  int alloc_calls() const { return alloc_calls_; }

 private:
  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<DramBufferManager> mgr_;
  int alloc_calls_ = 0;
};

HinfsOptions SmallOptions() {
  HinfsOptions o;
  o.buffer_bytes = 16 * kBlockSize;
  o.writeback_period_ms = 50;
  o.staleness_ms = 100000;
  // Single shard: these tests assert global eviction order and exact counter
  // values, i.e. the pre-sharding behaviour the shards=1 config must keep.
  o.buffer_shards = 1;
  return o;
}

HinfsOptions ShardedOptions(int shards) {
  HinfsOptions o = SmallOptions();
  o.buffer_shards = shards;
  return o;
}

TEST(DramBufferTest, WriteThenReadBack) {
  BufferHarness h(SmallOptions());
  const char data[] = "buffered!";
  ASSERT_TRUE(h.mgr().Write(2, 0, 10, data, sizeof(data), kNoNvmmAddr).ok());
  char out[sizeof(data)] = {};
  auto hit = h.mgr().Read(2, 0, 10, out, sizeof(data), kNoNvmmAddr);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  EXPECT_STREQ(out, data);
}

TEST(DramBufferTest, ReadMissReturnsFalse) {
  BufferHarness h(SmallOptions());
  char out[8];
  auto hit = h.mgr().Read(2, 0, 0, out, 8, kNoNvmmAddr);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(*hit);
}

TEST(DramBufferTest, MergeReadsDramAndNvmm) {
  BufferHarness h(SmallOptions());
  // Existing NVMM content for (ino=1, block=0).
  const uint64_t addr = BufferHarness::AddrFor(1, 0);
  std::vector<uint8_t> nv(kBlockSize, 0xaa);
  ASSERT_TRUE(h.nvmm().StorePersistent(addr, nv.data(), nv.size()).ok());

  // Buffer a write covering only line 2 (bytes 128..192).
  std::vector<uint8_t> fresh(64, 0xbb);
  ASSERT_TRUE(h.mgr().Write(1, 0, 128, fresh.data(), 64, addr).ok());

  // Read lines 1..3: line 1,3 from NVMM, line 2 from DRAM.
  std::vector<uint8_t> out(192);
  auto hit = h.mgr().Read(1, 0, 64, out.data(), out.size(), addr);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(*hit);
  EXPECT_EQ(out[0], 0xaa);
  EXPECT_EQ(out[64], 0xbb);
  EXPECT_EQ(out[127], 0xbb);
  EXPECT_EQ(out[128], 0xaa);
}

TEST(DramBufferTest, ClfwFetchesOnlyPartialLines) {
  BufferHarness h(SmallOptions());
  const uint64_t addr = BufferHarness::AddrFor(1, 0);
  // Unaligned write [0, 112): line 0 full, line 1 partial -> fetch only line 1
  // (the paper's worked example).
  std::vector<uint8_t> data(112, 0x11);
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), addr).ok());
  EXPECT_EQ(h.mgr().fetched_lines(), 1u);
}

TEST(DramBufferTest, NclfwFetchesWholeBlock) {
  HinfsOptions o = SmallOptions();
  o.clfw = false;
  BufferHarness h(o);
  const uint64_t addr = BufferHarness::AddrFor(1, 0);
  std::vector<uint8_t> data(112, 0x11);
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), addr).ok());
  EXPECT_EQ(h.mgr().fetched_lines(), kLinesPerBlock);
}

TEST(DramBufferTest, FlushWritesOnlyDirtyLines) {
  BufferHarness h(SmallOptions());
  const uint64_t addr = BufferHarness::AddrFor(1, 0);
  std::vector<uint8_t> nv(kBlockSize, 0xaa);
  ASSERT_TRUE(h.nvmm().StorePersistent(addr, nv.data(), nv.size()).ok());
  h.nvmm().ResetCounters();

  std::vector<uint8_t> line(64, 0xbb);
  ASSERT_TRUE(h.mgr().Write(1, 0, 192, line.data(), 64, addr).ok());  // line 3 only
  ASSERT_TRUE(h.mgr().FlushFile(1).ok());
  EXPECT_EQ(h.mgr().writeback_lines(), 1u);
  EXPECT_EQ(h.nvmm().flushed_bytes(), 64u);

  uint8_t out[64];
  ASSERT_TRUE(h.nvmm().Load(addr + 192, out, 64).ok());
  EXPECT_EQ(out[0], 0xbb);
  ASSERT_TRUE(h.nvmm().Load(addr, out, 64).ok());
  EXPECT_EQ(out[0], 0xaa);  // untouched line intact
}

TEST(DramBufferTest, FlushCoalescesContiguousBlocks) {
  BufferHarness h(SmallOptions());
  // Four fully-dirty file blocks that land NVMM-contiguous (AddrFor is
  // linear in file_block): one dirty run each, merged into a single flush
  // call. The accounting-invariance contract: total flushed lines/bytes and
  // the one-fence-per-victim count match the unmerged sequence exactly.
  std::vector<uint8_t> block(kBlockSize, 0x5c);
  for (uint64_t fb = 0; fb < 4; fb++) {
    ASSERT_TRUE(h.mgr()
                    .Write(1, fb, 0, block.data(), block.size(),
                           BufferHarness::AddrFor(1, fb))
                    .ok());
  }
  h.nvmm().ResetCounters();
  ASSERT_TRUE(h.mgr().FlushFile(1).ok());

  EXPECT_EQ(h.mgr().wb_dirty_runs(), 4u);
  EXPECT_EQ(h.mgr().wb_flush_calls(), 1u);
  EXPECT_EQ(h.mgr().wb_coalesced_lines(), 3 * kLinesPerBlock);
  // Invariant half: what the persist trace sees is unchanged by merging.
  EXPECT_EQ(h.nvmm().flushed_lines(), 4 * kLinesPerBlock);
  EXPECT_EQ(h.nvmm().flushed_bytes(), 4 * kBlockSize);
  EXPECT_EQ(h.nvmm().fence_count(), 4u);
}

TEST(DramBufferTest, FlushKeepsDisjointRangesSeparate) {
  BufferHarness h(SmallOptions());
  // Blocks 0 and 2 with a clean gap at block 1: nothing abuts, so no merge —
  // coalescing must never widen a flush over lines that were not dirty.
  std::vector<uint8_t> block(kBlockSize, 0x5d);
  for (uint64_t fb : {uint64_t{0}, uint64_t{2}}) {
    ASSERT_TRUE(h.mgr()
                    .Write(1, fb, 0, block.data(), block.size(),
                           BufferHarness::AddrFor(1, fb))
                    .ok());
  }
  h.nvmm().ResetCounters();
  ASSERT_TRUE(h.mgr().FlushFile(1).ok());

  EXPECT_EQ(h.mgr().wb_dirty_runs(), 2u);
  EXPECT_EQ(h.mgr().wb_flush_calls(), 2u);
  EXPECT_EQ(h.mgr().wb_coalesced_lines(), 0u);
  EXPECT_EQ(h.nvmm().flushed_lines(), 2 * kLinesPerBlock);
  EXPECT_EQ(h.nvmm().fence_count(), 2u);
}

TEST(DramBufferTest, FlushAllocatesMissingBlock) {
  BufferHarness h(SmallOptions());
  std::vector<uint8_t> data(100, 0x42);
  ASSERT_TRUE(h.mgr().Write(3, 5, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  EXPECT_EQ(h.alloc_calls(), 0);
  ASSERT_TRUE(h.mgr().FlushFile(3).ok());
  EXPECT_EQ(h.alloc_calls(), 1);  // allocation deferred to writeback time
  uint8_t out[100];
  ASSERT_TRUE(h.nvmm().Load(BufferHarness::AddrFor(3, 5), out, 100).ok());
  EXPECT_EQ(out[0], 0x42);
  // Unwritten portion of the fresh block is zero.
  ASSERT_TRUE(h.nvmm().Load(BufferHarness::AddrFor(3, 5) + 1000, out, 8).ok());
  EXPECT_EQ(out[0], 0);
}

TEST(DramBufferTest, FlushEvicts) {
  BufferHarness h(SmallOptions());
  char c = 'x';
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, &c, 1, kNoNvmmAddr).ok());
  EXPECT_TRUE(h.mgr().Contains(1, 0));
  ASSERT_TRUE(h.mgr().FlushFile(1).ok());
  EXPECT_FALSE(h.mgr().Contains(1, 0));
}

TEST(DramBufferTest, DiscardDropsWithoutNvmmWrite) {
  BufferHarness h(SmallOptions());
  std::vector<uint8_t> data(kBlockSize, 0x5f);
  ASSERT_TRUE(h.mgr().Write(9, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().DiscardFile(9).ok());
  EXPECT_FALSE(h.mgr().Contains(9, 0));
  EXPECT_EQ(h.nvmm().flushed_bytes(), 0u);
  EXPECT_EQ(h.alloc_calls(), 0);
}

TEST(DramBufferTest, DiscardFromBlockKeepsEarlier) {
  BufferHarness h(SmallOptions());
  char c = 'y';
  ASSERT_TRUE(h.mgr().Write(9, 0, 0, &c, 1, kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().Write(9, 3, 0, &c, 1, kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().DiscardFile(9, 2).ok());
  EXPECT_TRUE(h.mgr().Contains(9, 0));
  EXPECT_FALSE(h.mgr().Contains(9, 3));
}

TEST(DramBufferTest, WriteHitCoalesces) {
  BufferHarness h(SmallOptions());
  std::vector<uint8_t> data(kBlockSize, 0x01);
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  for (int i = 0; i < 9; i++) {
    ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  EXPECT_EQ(h.mgr().buffer_hits(), 9u);
  EXPECT_EQ(h.mgr().buffer_misses(), 1u);
  // Ten writes, one block flushed: write coalescing in action.
  ASSERT_TRUE(h.mgr().FlushAll().ok());
  EXPECT_EQ(h.mgr().writeback_blocks(), 1u);
}

TEST(DramBufferTest, PoolExhaustionReclaimsInline) {
  // 16-frame pool, no background threads: the 17th distinct block must reclaim
  // the LRW victim inline.
  BufferHarness h(SmallOptions());
  std::vector<uint8_t> data(kBlockSize, 0x2a);
  for (uint64_t b = 0; b < 20; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  EXPECT_GE(h.mgr().writeback_blocks(), 4u);
  EXPECT_GE(h.mgr().stall_count(), 1u);
  // The evicted early blocks landed in NVMM.
  uint8_t out[8];
  ASSERT_TRUE(h.nvmm().Load(BufferHarness::AddrFor(1, 0), out, 8).ok());
  EXPECT_EQ(out[0], 0x2a);
}

TEST(DramBufferTest, LrwEvictsLeastRecentlyWritten) {
  BufferHarness h(SmallOptions());  // 16 frames
  std::vector<uint8_t> data(kBlockSize, 0x01);
  for (uint64_t b = 0; b < 16; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  // Rewrite block 0: it moves to MRW, so block 1 becomes the victim.
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().Write(1, 100, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  EXPECT_TRUE(h.mgr().Contains(1, 0));
  EXPECT_FALSE(h.mgr().Contains(1, 1));
}

TEST(DramBufferTest, FifoIgnoresRewrites) {
  HinfsOptions o = SmallOptions();
  o.replacement = HinfsOptions::Replacement::kFifo;
  BufferHarness h(o);
  std::vector<uint8_t> data(kBlockSize, 0x01);
  for (uint64_t b = 0; b < 16; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().Write(1, 100, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  // FIFO: block 0 is still the oldest insertion and gets evicted despite the
  // rewrite.
  EXPECT_FALSE(h.mgr().Contains(1, 0));
}

TEST(DramBufferTest, LfuEvictsColdBlocks) {
  HinfsOptions o = SmallOptions();
  o.replacement = HinfsOptions::Replacement::kLfu;
  BufferHarness h(o);  // 16 frames
  std::vector<uint8_t> data(kBlockSize, 0x01);
  for (uint64_t b = 0; b < 16; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  // Heat every block except 5 and 11 with extra writes.
  for (uint64_t b = 0; b < 16; b++) {
    if (b == 5 || b == 11) {
      continue;
    }
    for (int i = 0; i < 3; i++) {
      ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
    }
  }
  // Two new blocks evict the two cold ones.
  ASSERT_TRUE(h.mgr().Write(1, 100, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().Write(1, 101, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  EXPECT_FALSE(h.mgr().Contains(1, 5));
  EXPECT_FALSE(h.mgr().Contains(1, 11));
  EXPECT_TRUE(h.mgr().Contains(1, 0));
}

TEST(DramBufferTest, ArcPromotesRewrittenBlocks) {
  HinfsOptions o = SmallOptions();
  o.replacement = HinfsOptions::Replacement::kArc;
  BufferHarness h(o);  // 16 frames
  std::vector<uint8_t> data(kBlockSize, 0x01);
  // Blocks 0..7 written twice (promoted to T2), 8..15 once (T1).
  for (uint64_t b = 0; b < 16; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  for (uint64_t b = 0; b < 8; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  // New insertions must evict from T1 (the once-written blocks) first.
  for (uint64_t b = 100; b < 104; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  for (uint64_t b = 0; b < 8; b++) {
    EXPECT_TRUE(h.mgr().Contains(1, b)) << b;
  }
}

TEST(DramBufferTest, ArcGhostHitAdmitsToFrequentList) {
  HinfsOptions o = SmallOptions();
  o.replacement = HinfsOptions::Replacement::kArc;
  BufferHarness h(o);
  std::vector<uint8_t> data(kBlockSize, 0x01);
  // Fill, evict block 0 (FIFO order within T1), then write block 0 again: the
  // ghost hit must not error and the block is resident again.
  for (uint64_t b = 0; b < 17; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  EXPECT_FALSE(h.mgr().Contains(1, 0));
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  EXPECT_TRUE(h.mgr().Contains(1, 0));
}

class ReplacementPolicyTest
    : public ::testing::TestWithParam<std::tuple<HinfsOptions::Replacement, int>> {};

TEST_P(ReplacementPolicyTest, CorrectUnderChurn) {
  // Whatever the policy (and shard count), buffered content must always read
  // back exactly.
  HinfsOptions o = SmallOptions();
  o.replacement = std::get<0>(GetParam());
  o.buffer_shards = std::get<1>(GetParam());
  BufferHarness h(o, 32 << 20);
  Rng rng(99);
  std::map<uint64_t, uint8_t> model;  // block -> fill byte
  std::vector<uint8_t> buf(kBlockSize);
  for (int step = 0; step < 400; step++) {
    const uint64_t block = rng.Below(64);
    const auto fill = static_cast<uint8_t>(rng.Next() & 0xff);
    std::fill(buf.begin(), buf.end(), fill);
    ASSERT_TRUE(h.mgr().Write(7, block, 0, buf.data(), buf.size(), kNoNvmmAddr).ok());
    model[block] = fill;
    // Verify a random known block through the merge-read or NVMM path.
    const uint64_t probe = rng.Below(64);
    auto it = model.find(probe);
    if (it != model.end()) {
      uint8_t out[kBlockSize];
      auto hit = h.mgr().Read(7, probe, 0, out, kBlockSize,
                              BufferHarness::AddrFor(7, probe));
      ASSERT_TRUE(hit.ok());
      if (!*hit) {
        // Evicted: must have been flushed to its NVMM address.
        ASSERT_TRUE(h.nvmm().Load(BufferHarness::AddrFor(7, probe), out, kBlockSize).ok());
      }
      EXPECT_EQ(out[0], it->second) << "block " << probe << " step " << step;
      EXPECT_EQ(out[kBlockSize - 1], it->second);
    }
  }
  ASSERT_TRUE(h.mgr().FlushAll().ok());
  for (const auto& [block, fill] : model) {
    uint8_t out[8];
    ASSERT_TRUE(h.nvmm().Load(BufferHarness::AddrFor(7, block), out, 8).ok());
    EXPECT_EQ(out[0], fill) << block;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ReplacementPolicyTest,
    ::testing::Combine(::testing::Values(HinfsOptions::Replacement::kLrw,
                                         HinfsOptions::Replacement::kFifo,
                                         HinfsOptions::Replacement::kLfu,
                                         HinfsOptions::Replacement::kArc,
                                         HinfsOptions::Replacement::kTwoQ),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case HinfsOptions::Replacement::kLrw:
          name = "LRW";
          break;
        case HinfsOptions::Replacement::kFifo:
          name = "FIFO";
          break;
        case HinfsOptions::Replacement::kLfu:
          name = "LFU";
          break;
        case HinfsOptions::Replacement::kArc:
          name = "ARC";
          break;
        case HinfsOptions::Replacement::kTwoQ:
          name = "TwoQ";
          break;
      }
      return name + "_" + std::to_string(std::get<1>(info.param)) + "shard";
    });

TEST(DramBufferTest, TwoQProbationaryRewritesDoNotPromote) {
  HinfsOptions o = SmallOptions();
  o.replacement = HinfsOptions::Replacement::kTwoQ;
  BufferHarness h(o);  // 16 frames; A1in share = 4
  std::vector<uint8_t> data(kBlockSize, 0x01);
  for (uint64_t b = 0; b < 16; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  // All 16 sit in A1in (> Kin): an insertion evicts A1in's FIFO head, block 0,
  // even though we rewrite it first (2Q's correlated-reference filter).
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().Write(1, 100, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  EXPECT_FALSE(h.mgr().Contains(1, 0));
}

TEST(DramBufferTest, TwoQGhostHitPromotesToAm) {
  HinfsOptions o = SmallOptions();
  o.replacement = HinfsOptions::Replacement::kTwoQ;
  BufferHarness h(o);
  std::vector<uint8_t> data(kBlockSize, 0x01);
  for (uint64_t b = 0; b < 17; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  EXPECT_FALSE(h.mgr().Contains(1, 0));  // evicted to A1out
  // Re-writing a ghost block admits it into Am, where it survives A1in churn.
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  for (uint64_t b = 200; b < 208; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  EXPECT_TRUE(h.mgr().Contains(1, 0));
}

TEST(DramBufferTest, BackgroundWritebackReclaims) {
  HinfsOptions o = SmallOptions();
  o.writeback_period_ms = 10;
  BufferHarness h(o);
  h.mgr().StartBackgroundWriteback();
  std::vector<uint8_t> data(kBlockSize, 0x01);
  for (uint64_t b = 0; b < 64; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  h.mgr().StopBackgroundWriteback();
  EXPECT_GE(h.mgr().writeback_blocks(), 48u);
}

TEST(DramBufferTest, StalenessFlushesIdleBlocks) {
  HinfsOptions o = SmallOptions();
  o.writeback_period_ms = 20;
  o.staleness_ms = 30;
  BufferHarness h(o);
  h.mgr().StartBackgroundWriteback();
  char c = 'z';
  ASSERT_TRUE(h.mgr().Write(1, 0, 0, &c, 1, kNoNvmmAddr).ok());
  // Wait past the staleness bound + a writeback period.
  for (int i = 0; i < 100 && h.mgr().Contains(1, 0); i++) {
    SpinFor(2'000'000);
  }
  h.mgr().StopBackgroundWriteback();
  EXPECT_FALSE(h.mgr().Contains(1, 0));
  EXPECT_EQ(h.mgr().writeback_blocks(), 1u);
}

TEST(DramBufferTest, CrossBlockWriteRejected) {
  BufferHarness h(SmallOptions());
  char buf[128];
  EXPECT_FALSE(h.mgr().Write(1, 0, kBlockSize - 10, buf, 128, kNoNvmmAddr).ok());
}

// --- sharding ---------------------------------------------------------------------

TEST(DramBufferShardingTest, ShardCountRoundsUpAndClamps) {
  // 16-frame pool: non-pow2 requests round up; large requests clamp so every
  // shard keeps >= 2 frames; 1 stays 1.
  EXPECT_EQ(BufferHarness(ShardedOptions(1)).mgr().shard_count(), 1u);
  EXPECT_EQ(BufferHarness(ShardedOptions(3)).mgr().shard_count(), 4u);
  EXPECT_EQ(BufferHarness(ShardedOptions(64)).mgr().shard_count(), 8u);
}

TEST(DramBufferShardingTest, CapacityExactAcrossShards) {
  BufferHarness h(ShardedOptions(4));
  ASSERT_EQ(h.mgr().shard_count(), 4u);
  size_t sum = 0;
  for (uint32_t s = 0; s < h.mgr().shard_count(); s++) {
    sum += h.mgr().shard_capacity(s);
  }
  EXPECT_EQ(sum, h.mgr().capacity_blocks());
  EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());

  // Churn well past capacity (inline reclaim), then drain: every frame must
  // come back to a free list — exact accounting across shards.
  std::vector<uint8_t> data(kBlockSize, 0x3c);
  for (uint64_t b = 0; b < 48; b++) {
    ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  ASSERT_TRUE(h.mgr().FlushAll().ok());
  EXPECT_EQ(h.mgr().free_blocks(), h.mgr().capacity_blocks());
}

TEST(DramBufferShardingTest, ShardKeyIsStableAndInRange) {
  BufferHarness h(ShardedOptions(4));
  for (uint64_t ino = 1; ino < 8; ino++) {
    for (uint64_t b = 0; b < 32; b++) {
      const uint32_t s = h.mgr().ShardOf(ino, b);
      EXPECT_LT(s, h.mgr().shard_count());
      EXPECT_EQ(s, h.mgr().ShardOf(ino, b));  // deterministic
    }
  }
}

// Returns `count` file blocks of `ino` that all map to the same shard as the
// first block probed, via the public ShardOf introspection.
std::vector<uint64_t> BlocksInOneShard(DramBufferManager& mgr, uint64_t ino, size_t count) {
  std::vector<uint64_t> blocks;
  const uint32_t shard = mgr.ShardOf(ino, 0);
  for (uint64_t b = 0; blocks.size() < count && b < 4096; b++) {
    if (mgr.ShardOf(ino, b) == shard) {
      blocks.push_back(b);
    }
  }
  return blocks;
}

TEST(DramBufferShardingTest, LrwEvictionOrderPreservedWithinShard) {
  // 4 shards x 4 frames. Fill one shard with 4 blocks, rewrite the oldest
  // (moves to MRW within the shard), then insert a 5th block of the same
  // shard: the second-oldest is the victim — LRW order is per shard — and
  // residents of other shards are untouched.
  BufferHarness h(ShardedOptions(4));
  ASSERT_EQ(h.mgr().shard_capacity(h.mgr().ShardOf(5, 0)), 4u);
  std::vector<uint64_t> blocks = BlocksInOneShard(h.mgr(), 5, 5);
  ASSERT_EQ(blocks.size(), 5u);

  // A resident block in a different shard must survive the churn below.
  uint64_t other_block = 0;
  while (h.mgr().ShardOf(6, other_block) == h.mgr().ShardOf(5, blocks[0])) {
    other_block++;
  }
  std::vector<uint8_t> data(kBlockSize, 0x7e);
  ASSERT_TRUE(h.mgr().Write(6, other_block, 0, data.data(), data.size(), kNoNvmmAddr).ok());

  for (size_t i = 0; i < 4; i++) {
    ASSERT_TRUE(h.mgr().Write(5, blocks[i], 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  ASSERT_TRUE(h.mgr().Write(5, blocks[0], 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(h.mgr().Write(5, blocks[4], 0, data.data(), data.size(), kNoNvmmAddr).ok());

  EXPECT_TRUE(h.mgr().Contains(5, blocks[0]));   // rewritten: MRW, survives
  EXPECT_FALSE(h.mgr().Contains(5, blocks[1]));  // shard-local LRW victim
  EXPECT_TRUE(h.mgr().Contains(5, blocks[2]));
  EXPECT_TRUE(h.mgr().Contains(5, blocks[3]));
  EXPECT_TRUE(h.mgr().Contains(5, blocks[4]));
  EXPECT_TRUE(h.mgr().Contains(6, other_block));  // other shard unaffected
}

TEST(DramBufferShardingTest, FifoEvictionOrderPreservedWithinShard) {
  HinfsOptions o = ShardedOptions(4);
  o.replacement = HinfsOptions::Replacement::kFifo;
  BufferHarness hf(o);
  std::vector<uint64_t> blocks = BlocksInOneShard(hf.mgr(), 5, 5);
  ASSERT_EQ(blocks.size(), 5u);
  std::vector<uint8_t> data(kBlockSize, 0x11);
  for (size_t i = 0; i < 4; i++) {
    ASSERT_TRUE(hf.mgr().Write(5, blocks[i], 0, data.data(), data.size(), kNoNvmmAddr).ok());
  }
  // Rewriting the oldest does not save it under FIFO, even within the shard.
  ASSERT_TRUE(hf.mgr().Write(5, blocks[0], 0, data.data(), data.size(), kNoNvmmAddr).ok());
  ASSERT_TRUE(hf.mgr().Write(5, blocks[4], 0, data.data(), data.size(), kNoNvmmAddr).ok());
  EXPECT_FALSE(hf.mgr().Contains(5, blocks[0]));
  EXPECT_TRUE(hf.mgr().Contains(5, blocks[1]));
}

TEST(DramBufferShardingTest, CountersAggregateAcrossShards) {
  BufferHarness h(ShardedOptions(4));
  // Pick 8 blocks with at most 2 per shard (well under the 4-frame slices),
  // so no shard evicts and the per-shard counters must sum exactly.
  std::vector<size_t> per_shard(h.mgr().shard_count(), 0);
  std::vector<uint64_t> blocks;
  for (uint64_t b = 0; blocks.size() < 8 && b < 4096; b++) {
    const uint32_t s = h.mgr().ShardOf(1, b);
    if (per_shard[s] < 2) {
      per_shard[s]++;
      blocks.push_back(b);
    }
  }
  ASSERT_EQ(blocks.size(), 8u);
  std::vector<uint8_t> data(kBlockSize, 0x44);
  for (int round = 0; round < 2; round++) {
    for (uint64_t b : blocks) {
      ASSERT_TRUE(h.mgr().Write(1, b, 0, data.data(), data.size(), kNoNvmmAddr).ok());
    }
  }
  EXPECT_EQ(h.mgr().buffer_misses(), 8u);
  EXPECT_EQ(h.mgr().buffer_hits(), 8u);
  ASSERT_TRUE(h.mgr().FlushAll().ok());
  EXPECT_EQ(h.mgr().writeback_blocks(), 8u);
}

}  // namespace
}  // namespace hinfs
