#include "src/common/logging.h"

#include <atomic>
#include <cstdlib>

namespace hinfs {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized; read HINFS_LOG on first use.

int InitLevel() {
  const char* env = std::getenv("HINFS_LOG");
  return env == nullptr ? static_cast<int>(LogLevel::kOff) : std::atoi(env);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevel();
    g_level.store(v);
  }
  return static_cast<LogLevel>(v);
}

namespace internal {
bool LogEnabled(LogLevel level) {
  return static_cast<int>(GetLogLevel()) >= static_cast<int>(level);
}
}  // namespace internal

}  // namespace hinfs
