file(REMOVE_RECURSE
  "CMakeFiles/fig06_model_accuracy.dir/fig06_model_accuracy.cc.o"
  "CMakeFiles/fig06_model_accuracy.dir/fig06_model_accuracy.cc.o.d"
  "fig06_model_accuracy"
  "fig06_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
