# Empty compiler generated dependencies file for pagecache_test.
# This may be replaced when dependencies are built.
