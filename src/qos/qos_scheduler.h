// QosScheduler: hierarchical weighted token buckets arbitrating the NVMM
// write-bandwidth pipe among tenants and traffic classes (DESIGN.md §9).
//
// Shape: one GCRA leaf bucket per foreground tenant plus one shared background
// leaf, over one global accounting bucket. Leaf rates are a partition of the
// device bandwidth B — foreground tenants split fg_reserve * B by weight, the
// background leaf gets (1 - fg_reserve) * B — so when every leaf is busy the
// admitted aggregate is exactly B and the leaves alone enforce both isolation
// and the total. The global bucket never blocks a conformant leaf; it exists
// for aggregate accounting and for work conservation: a request whose own leaf
// is dry may be admitted immediately against global slack (bandwidth some
// other leaf is not using), which is what lets a lone bulk tenant reach the
// full device rate instead of its share.
//
// Every bucket is a single atomic theoretical-arrival-time advanced by CAS,
// the same lock-free GCRA formulation as BandwidthLimiter (DESIGN.md §3c);
// there are no locks anywhere on the charge path and no ordering between
// buckets that could deadlock. A waiter spins on its own leaf deadline and
// opportunistically re-tries the global borrow while spinning, rolling its
// leaf reservation back if the borrow wins.
//
// Modes mirror BandwidthLimiter: kSpin waits in wall time; kVirtual advances
// the calling thread's SimClock deterministically through a per-leaf
// single-server queue (no borrowing — work conservation is a wall-clock
// concept and would make virtual timings depend on scheduling); kNone is free.

#ifndef SRC_QOS_QOS_SCHEDULER_H_
#define SRC_QOS_QOS_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/nvmm/latency_model.h"
#include "src/qos/qos_config.h"
#include "src/qos/tenant.h"

namespace hinfs {

class StatsRegistry;

namespace qos {

class QosScheduler {
 public:
  QosScheduler(LatencyMode mode, const QosConfig& config);

  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  // Charges `bytes` of NVMM write bandwidth to ctx's bucket, blocking (spin
  // mode) or advancing the caller's SimClock (virtual mode) until admitted.
  // `total_bps` is the device bandwidth at this instant (read per call so
  // set_bytes_per_sec sweeps keep working); 0 disables limiting.
  void Acquire(const QosContext& ctx, uint64_t bytes, uint64_t total_bps);

  // Sets a tenant's weight (hello handshake / --weight). Weight 0 is treated
  // as 1. Takes effect on subsequent Acquires; never blocks the charge path.
  void SetTenantWeight(TenantId id, uint32_t weight);

  uint32_t num_tenants() const { return num_tenants_; }
  double fg_reserve() const { return fg_reserve_; }
  // Ids from the wire clamp into [0, num_tenants) rather than fault.
  TenantId Clamp(TenantId id) const { return id < num_tenants_ ? id : num_tenants_ - 1; }

  // Acquisitions admitted without waiting vs. after a throttle wait, split by
  // traffic class so the foreground-reserve path is observable.
  uint64_t fg_fast_acquires() const { return fg_fast_.load(std::memory_order_relaxed); }
  uint64_t fg_slow_acquires() const { return fg_slow_.load(std::memory_order_relaxed); }
  uint64_t bg_fast_acquires() const { return bg_fast_.load(std::memory_order_relaxed); }
  uint64_t bg_slow_acquires() const { return bg_slow_.load(std::memory_order_relaxed); }

  struct BucketSnapshot {
    TenantId id = 0;          // tenant id, or kMaxTenants for the bg bucket
    uint32_t weight = 1;      // meaningless for the bg bucket
    uint64_t charged_bytes = 0;
    uint64_t throttle_waits = 0;
    uint64_t throttle_wait_ns = 0;
    uint64_t borrowed_bytes = 0;   // admitted via global slack, not own share
    uint64_t deficit_bytes = 0;    // instantaneous unused entitlement
  };
  struct Snapshot {
    std::vector<BucketSnapshot> tenants;
    BucketSnapshot background;
    uint64_t fg_fast = 0, fg_slow = 0, bg_fast = 0, bg_slow = 0;
  };
  Snapshot TakeSnapshot(uint64_t total_bps) const;

  // Mirrors the snapshot into well-known counters (qos_t<i>_charged_bytes,
  // qos_bg_throttle_waits, ...) so per-tenant numbers land in bench --json
  // stats like every other subsystem's. Values are stored, not added: calling
  // twice is idempotent.
  void ExportStats(StatsRegistry* stats, uint64_t total_bps) const;

 private:
  struct alignas(64) Bucket {
    std::atomic<uint64_t> tat_ns{0};  // GCRA theoretical arrival time
    std::atomic<uint64_t> weight{1};
    std::atomic<uint64_t> charged_bytes{0};
    std::atomic<uint64_t> throttle_waits{0};
    std::atomic<uint64_t> throttle_wait_ns{0};
    std::atomic<uint64_t> borrowed_bytes{0};
  };

  // The bucket's share of `total_bps`, >= 1 so service times stay finite.
  uint64_t LeafRate(const Bucket& leaf, bool background, uint64_t total_bps) const;
  // Unconditional global-TAT advance (aggregate accounting).
  void AdvanceGlobal(uint64_t service_ns, uint64_t now);
  // Conformance-checked global advance: admits against global slack or leaves
  // the global bucket untouched. Returns true when the borrow was granted.
  bool TryBorrowGlobal(uint64_t service_ns, uint64_t burst_ns, uint64_t now);
  void FillSnapshot(const Bucket& leaf, bool background, uint64_t total_bps,
                    uint64_t now, BucketSnapshot* out) const;

  const LatencyMode mode_;
  const uint32_t num_tenants_;
  const double fg_reserve_;

  std::vector<Bucket> tenants_;  // sized num_tenants_, never resized
  Bucket background_;
  std::atomic<uint64_t> global_tat_{0};
  std::atomic<uint64_t> total_weight_{0};

  std::atomic<uint64_t> fg_fast_{0}, fg_slow_{0};
  std::atomic<uint64_t> bg_fast_{0}, bg_slow_{0};
};

}  // namespace qos
}  // namespace hinfs

#endif  // SRC_QOS_QOS_SCHEDULER_H_
