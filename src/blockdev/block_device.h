// BlockDevice: the generic block layer interface traditional file systems sit on.

#ifndef SRC_BLOCKDEV_BLOCK_DEVICE_H_
#define SRC_BLOCKDEV_BLOCK_DEVICE_H_

#include <cstdint>

#include "src/common/constants.h"
#include "src/common/status.h"

namespace hinfs {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint64_t num_blocks() const = 0;
  uint64_t size_bytes() const { return num_blocks() * kBlockSize; }

  // Whole-block transfer, the unit of the generic block layer.
  virtual Status ReadBlock(uint64_t block, void* dst) = 0;
  virtual Status WriteBlock(uint64_t block, const void* src) = 0;

  // Ensures previously completed writes are durable (a RAM-disk style device
  // may implement this as a no-op if writes are durable on completion).
  virtual Status Sync() = 0;
};

}  // namespace hinfs

#endif  // SRC_BLOCKDEV_BLOCK_DEVICE_H_
