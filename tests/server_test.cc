// hinfsd server suite: wire-protocol (de)serialization, full request
// round-trips over a real Unix/TCP socket, error mapping, connection-drop fd
// reclamation, and malformed-frame rejection.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <functional>

#include "src/common/clock.h"
#include "src/fs/pmfs/pmfs_fs.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace server {
namespace {

// Polls `cond` until true or ~5 s elapse (single-core CI is slow).
bool WaitFor(const std::function<bool()>& cond, uint64_t timeout_ms = 5000) {
  const uint64_t deadline = MonotonicNowNs() + timeout_ms * 1'000'000;
  while (MonotonicNowNs() < deadline) {
    if (cond()) {
      return true;
    }
    usleep(1000);
  }
  return cond();
}

// --- protocol unit tests (no sockets) ----------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  Request req;
  req.request_id = 0x1122334455667788ull;
  req.opcode = Opcode::kPwrite;
  req.flags = kWrOnly | kCreate;
  req.fd = 42;
  req.offset = 0xdeadbeefcafeull;
  req.count = 512;
  req.path = "/some/path";
  req.path2 = "/other";
  req.data = std::string(1000, 'x');

  std::string wire;
  EncodeRequest(req, &wire);
  ASSERT_GT(wire.size(), kFrameLenBytes + kReqHeaderBytes);

  uint32_t frame_len = 0;
  ASSERT_TRUE(ParseFrameLen(reinterpret_cast<const uint8_t*>(wire.data()),
                            kMaxFrameBytes, &frame_len)
                  .ok());
  ASSERT_EQ(frame_len, wire.size() - kFrameLenBytes);

  Request out;
  ASSERT_TRUE(DecodeRequest(reinterpret_cast<const uint8_t*>(wire.data()) + kFrameLenBytes,
                            frame_len, &out)
                  .ok());
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.opcode, req.opcode);
  EXPECT_EQ(out.flags, req.flags);
  EXPECT_EQ(out.fd, req.fd);
  EXPECT_EQ(out.offset, req.offset);
  EXPECT_EQ(out.count, req.count);
  EXPECT_EQ(out.path, req.path);
  EXPECT_EQ(out.path2, req.path2);
  EXPECT_EQ(out.data, req.data);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response resp;
  resp.request_id = 7;
  resp.opcode = Opcode::kRead;
  resp.status = ErrorCode::kNoSpace;
  resp.r0 = 1234;
  resp.data = "payload";

  std::string wire;
  EncodeResponse(resp, &wire);
  Response out;
  ASSERT_TRUE(DecodeResponse(reinterpret_cast<const uint8_t*>(wire.data()) + kFrameLenBytes,
                             wire.size() - kFrameLenBytes, &out)
                  .ok());
  EXPECT_EQ(out.request_id, resp.request_id);
  EXPECT_EQ(out.opcode, resp.opcode);
  EXPECT_EQ(out.status, resp.status);
  EXPECT_EQ(out.r0, resp.r0);
  EXPECT_EQ(out.data, resp.data);
}

TEST(ProtocolTest, DecodeRejectsMalformedRequests) {
  Request req;
  req.opcode = Opcode::kOpen;
  req.path = "/f";
  std::string wire;
  EncodeRequest(req, &wire);
  uint8_t* payload = reinterpret_cast<uint8_t*>(wire.data()) + kFrameLenBytes;
  const size_t payload_len = wire.size() - kFrameLenBytes;
  Request out;

  // Truncated header.
  EXPECT_FALSE(DecodeRequest(payload, kReqHeaderBytes - 1, &out).ok());
  // Length disagreement: header says 2 path bytes, frame carries 2 + junk.
  {
    std::string longer = wire + "junk";
    EXPECT_FALSE(DecodeRequest(reinterpret_cast<uint8_t*>(longer.data()) + kFrameLenBytes,
                               longer.size() - kFrameLenBytes, &out)
                     .ok());
  }
  // Bad opcode (0 and out-of-range).
  {
    std::string bad = wire;
    bad[kFrameLenBytes + 8] = 0;
    EXPECT_FALSE(DecodeRequest(reinterpret_cast<uint8_t*>(bad.data()) + kFrameLenBytes,
                               payload_len, &out)
                     .ok());
    bad[kFrameLenBytes + 8] = static_cast<char>(kMaxOpcode + 1);
    EXPECT_FALSE(DecodeRequest(reinterpret_cast<uint8_t*>(bad.data()) + kFrameLenBytes,
                               payload_len, &out)
                     .ok());
  }
  // Nonzero pad byte.
  {
    std::string bad = wire;
    bad[kFrameLenBytes + 9] = 1;
    EXPECT_FALSE(DecodeRequest(reinterpret_cast<uint8_t*>(bad.data()) + kFrameLenBytes,
                               payload_len, &out)
                     .ok());
  }
}

TEST(ProtocolTest, ParseFrameLenEnforcesBounds) {
  uint8_t buf[4];
  uint32_t frame_len = 0;
  // Oversized.
  const uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(buf, &huge, 4);
  buf[0] = static_cast<uint8_t>(huge & 0xff);
  buf[1] = static_cast<uint8_t>((huge >> 8) & 0xff);
  buf[2] = static_cast<uint8_t>((huge >> 16) & 0xff);
  buf[3] = static_cast<uint8_t>((huge >> 24) & 0xff);
  EXPECT_FALSE(ParseFrameLen(buf, kMaxFrameBytes, &frame_len).ok());
  // Too small to hold any header.
  buf[0] = 1;
  buf[1] = buf[2] = buf[3] = 0;
  EXPECT_FALSE(ParseFrameLen(buf, kMaxFrameBytes, &frame_len).ok());
}

TEST(ProtocolTest, AttrRoundTrip) {
  InodeAttr attr;
  attr.ino = 99;
  attr.size = 1ull << 40;
  attr.mtime_ns = 123456789;
  attr.nlink = 3;
  attr.type = FileType::kDirectory;
  std::string wire;
  AppendAttr(attr, &wire);
  ASSERT_EQ(wire.size(), kWireAttrBytes);
  InodeAttr out;
  ASSERT_TRUE(ParseAttr(reinterpret_cast<const uint8_t*>(wire.data()), wire.size(), &out).ok());
  EXPECT_EQ(out.ino, attr.ino);
  EXPECT_EQ(out.size, attr.size);
  EXPECT_EQ(out.mtime_ns, attr.mtime_ns);
  EXPECT_EQ(out.nlink, attr.nlink);
  EXPECT_EQ(out.type, attr.type);
}

TEST(ProtocolTest, DirEntriesRoundTrip) {
  std::vector<DirEntry> entries;
  for (int i = 0; i < 5; i++) {
    DirEntry e;
    e.name = "entry" + std::to_string(i);
    e.ino = 100 + i;
    e.type = i % 2 == 0 ? FileType::kRegular : FileType::kDirectory;
    entries.push_back(e);
  }
  std::string wire;
  AppendDirEntries(entries, &wire);
  std::vector<DirEntry> out;
  ASSERT_TRUE(
      ParseDirEntries(reinterpret_cast<const uint8_t*>(wire.data()), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), entries.size());
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].name, entries[i].name);
    EXPECT_EQ(out[i].ino, entries[i].ino);
    EXPECT_EQ(out[i].type, entries[i].type);
  }
  // Truncated dirent payload must not parse.
  EXPECT_FALSE(ParseDirEntries(reinterpret_cast<const uint8_t*>(wire.data()),
                               wire.size() - 1, &out)
                   .ok());
}

TEST(ProtocolTest, ErrorWireMapping) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kIoError); c++) {
    const ErrorCode code = static_cast<ErrorCode>(c);
    EXPECT_EQ(WireToError(ErrorToWire(code)), code);
  }
  // Unknown byte values degrade to kIoError, never out-of-range enum values.
  EXPECT_EQ(WireToError(0xff), ErrorCode::kIoError);
}

// --- live-server tests --------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 32 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 4096;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  ~ServerTest() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
  }

  // Starts a server on a private Unix socket (and optionally TCP).
  void StartServer(int tcp_port = -1, int workers = 2) {
    static std::atomic<int> seq{0};
    ServerOptions opts;
    opts.unix_path = "/tmp/hinfs_srv_test." + std::to_string(getpid()) + "." +
                     std::to_string(seq.fetch_add(1)) + ".sock";
    opts.tcp_port = tcp_port;
    opts.workers = workers;
    server_ = std::make_unique<Server>(vfs_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<Client> Connect() {
    auto c = Client::ConnectUnix(server_->unix_path());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  // Raw (non-Client) connection for protocol-abuse tests.
  int RawConnect() {
    const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(sock, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server_->unix_path().c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    timeval tv{5, 0};
    setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return sock;
  }

  // True if the server closed the connection (EOF or reset) within the
  // receive timeout.
  bool ServerClosed(int sock) {
    char byte;
    const ssize_t n = ::recv(sock, &byte, 1, 0);
    return n == 0 || (n < 0 && (errno == ECONNRESET || errno == EPIPE));
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingRoundTrip) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Ping(std::string(100'000, 'z')).ok());
  EXPECT_EQ(client->rpcs(), 2u);
}

TEST_F(ServerTest, FullSyscallSurfaceOverTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Mkdir("/dir").ok());
  auto fd = client->Open("/dir/f", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  auto wrote = client->Write(*fd, "hello world", 11);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 11u);
  EXPECT_TRUE(client->Fsync(*fd).ok());
  EXPECT_TRUE(client->Ftruncate(*fd, 5).ok());
  auto attr = client->Fstat(*fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 5u);
  ASSERT_TRUE(client->Close(*fd).ok());

  auto rd = client->Open("/dir/f", kRdOnly);
  ASSERT_TRUE(rd.ok());
  char buf[16] = {};
  auto got = client->Read(*rd, buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 5u);
  EXPECT_EQ(std::memcmp(buf, "hello", 5), 0);
  auto pos = client->Seek(*rd, 1);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 1u);
  auto part = client->Pread(*rd, buf, 2, 3);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(*part, 2u);
  EXPECT_EQ(std::memcmp(buf, "lo", 2), 0);
  ASSERT_TRUE(client->Close(*rd).ok());

  auto st = client->Stat("/dir/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5u);
  EXPECT_TRUE(client->Exists("/dir/f").value_or(false));
  EXPECT_FALSE(client->Exists("/dir/missing").value_or(true));

  auto entries = client->ReadDir("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "f");

  ASSERT_TRUE(client->Rename("/dir/f", "/dir/g").ok());
  EXPECT_TRUE(client->Exists("/dir/g").value_or(false));
  EXPECT_TRUE(client->SyncFs().ok());
  ASSERT_TRUE(client->Unlink("/dir/g").ok());
  ASSERT_TRUE(client->Rmdir("/dir").ok());

  // WriteFile/ReadFileToString (FsApi helpers) compose over the wire too.
  ASSERT_TRUE(client->WriteFile("/blob", "payload").ok());
  auto text = client->ReadFileToString("/blob");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "payload");

  client->Disconnect();
  EXPECT_TRUE(WaitFor([&] { return vfs_->OpenFdCount() == 0; }));
}

TEST_F(ServerTest, TcpRoundTrip) {
  StartServer(/*tcp_port=*/0);
  ASSERT_GT(server_->tcp_port(), 0);
  auto c = Client::ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE((*c)->Ping().ok());
  ASSERT_TRUE((*c)->WriteFile("/tcp_file", "over tcp").ok());
  auto text = (*c)->ReadFileToString("/tcp_file");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "over tcp");
}

TEST_F(ServerTest, ErrorsCarryCodeAndMessage) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  auto missing = client->Open("/nope", kRdOnly);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);

  // Unknown client fd: rejected by the session without touching the Vfs.
  auto bad_read = client->Read(1234, nullptr, 0);
  ASSERT_FALSE(bad_read.ok());
  EXPECT_EQ(bad_read.status().code(), ErrorCode::kBadFd);
  EXPECT_FALSE(bad_read.status().message().empty());

  EXPECT_EQ(client->Mkdir("relative").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(client->Unlink("/nope").code(), ErrorCode::kNotFound);
}

TEST_F(ServerTest, ClientFdsAreSessionScoped) {
  StartServer();
  auto a = Connect();
  auto b = Connect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(a->WriteFile("/fa", "aaaa").ok());
  ASSERT_TRUE(b->WriteFile("/fb", "bbbb").ok());

  auto fd_a = a->Open("/fa", kRdOnly);
  auto fd_b = b->Open("/fb", kRdOnly);
  ASSERT_TRUE(fd_a.ok());
  ASSERT_TRUE(fd_b.ok());
  // Both sessions hand out their own fd space starting at the same point, so
  // equal numbers must still resolve to different files.
  EXPECT_EQ(*fd_a, *fd_b);
  char buf[4];
  ASSERT_TRUE(a->Read(*fd_a, buf, 4).ok());
  EXPECT_EQ(std::memcmp(buf, "aaaa", 4), 0);
  ASSERT_TRUE(b->Read(*fd_b, buf, 4).ok());
  EXPECT_EQ(std::memcmp(buf, "bbbb", 4), 0);

  // One session's fd is meaningless in the other.
  EXPECT_EQ(b->Close(*fd_a + 100).code(), ErrorCode::kBadFd);
}

TEST_F(ServerTest, DroppedConnectionReclaimsFds) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(client->WriteFile("/leak" + std::to_string(i), "x").ok());
    auto fd = client->Open("/leak" + std::to_string(i), kRdOnly);
    ASSERT_TRUE(fd.ok());
    // Deliberately never closed.
  }
  EXPECT_EQ(vfs_->OpenFdCount(), 16u);

  // Drop the connection with the fds still open: the session teardown must
  // close every Vfs fd.
  client->Disconnect();
  EXPECT_TRUE(WaitFor([&] { return vfs_->OpenFdCount() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
}

TEST_F(ServerTest, OversizedFrameDropsConnection) {
  StartServer();
  const int sock = RawConnect();
  const uint32_t huge = kMaxFrameBytes + 1;
  uint8_t prefix[4] = {static_cast<uint8_t>(huge & 0xff), static_cast<uint8_t>(huge >> 8),
                       static_cast<uint8_t>(huge >> 16), static_cast<uint8_t>(huge >> 24)};
  ASSERT_EQ(::send(sock, prefix, 4, MSG_NOSIGNAL), 4);
  EXPECT_TRUE(ServerClosed(sock));
  ::close(sock);
  EXPECT_TRUE(WaitFor([&] { return server_->stats().Get(kStatSrvProtocolErrors) >= 1; }));
}

TEST_F(ServerTest, GarbagePayloadDropsConnection) {
  StartServer();
  const int sock = RawConnect();
  // Valid length prefix, garbage payload (bad opcode + pads).
  std::string payload(kReqHeaderBytes, '\xab');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  uint8_t prefix[4] = {static_cast<uint8_t>(len & 0xff), static_cast<uint8_t>(len >> 8),
                       static_cast<uint8_t>(len >> 16), static_cast<uint8_t>(len >> 24)};
  ASSERT_EQ(::send(sock, prefix, 4, MSG_NOSIGNAL), 4);
  ASSERT_EQ(::send(sock, payload.data(), payload.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(payload.size()));
  EXPECT_TRUE(ServerClosed(sock));
  ::close(sock);
  EXPECT_TRUE(WaitFor([&] { return server_->stats().Get(kStatSrvProtocolErrors) >= 1; }));
}

TEST_F(ServerTest, TruncatedFrameThenHangupIsHarmless) {
  StartServer();
  const int sock = RawConnect();
  // A valid prefix promising bytes that never arrive, then hang up.
  Request req;
  req.opcode = Opcode::kOpen;
  req.path = "/f";
  req.flags = kRdOnly;
  std::string wire;
  EncodeRequest(req, &wire);
  ASSERT_GT(wire.size(), 6u);
  ASSERT_EQ(::send(sock, wire.data(), wire.size() - 3, MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size() - 3));
  ::close(sock);
  EXPECT_TRUE(WaitFor([&] { return server_->active_connections() == 0; }));
  EXPECT_EQ(vfs_->OpenFdCount(), 0u);
  // An honest client still works afterwards.
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, StopDrainsAndUnblocksClients) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->WriteFile("/pre", "x").ok());
  server_->Stop();
  // Server gone: calls fail cleanly rather than hanging.
  EXPECT_FALSE(client->Ping().ok());
  EXPECT_EQ(vfs_->OpenFdCount(), 0u);
  server_.reset();
}

TEST_F(ServerTest, StartRejectsBadOptions) {
  ServerOptions opts;  // no unix path, no tcp port: nothing to listen on
  Server srv(vfs_.get(), opts);
  EXPECT_FALSE(srv.Start().ok());

  ServerOptions long_path;
  long_path.unix_path = "/tmp/" + std::string(200, 'p');
  Server srv2(vfs_.get(), long_path);
  EXPECT_FALSE(srv2.Start().ok());
}

}  // namespace
}  // namespace server
}  // namespace hinfs
