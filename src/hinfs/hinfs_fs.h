// HinfsFs: the paper's contribution — PMFS plus the NVMM-aware Write Buffer.
//
// Data-path policy (paper §3):
//  - lazy-persistent writes are buffered in DRAM (DramBufferManager) and
//    persisted in background, hiding NVMM's long write latency;
//  - eager-persistent writes (O_SYNC / sync-mount, or blocks the Buffer
//    Benefit Model marked Eager-Persistent) go directly to NVMM, avoiding the
//    double copy;
//  - reads are direct from both DRAM and NVMM, merged per Cacheline Bitmap;
//  - metadata is never buffered: PMFS's journaled paths are inherited as-is,
//    and file size/mtime remain persistent at write time, so a crash after a
//    lazy write exposes a file-system-level hole (zeros), never garbage
//    (ordered-mode semantics with writeback-deferred block allocation).

#ifndef SRC_HINFS_HINFS_FS_H_
#define SRC_HINFS_HINFS_FS_H_

#include <memory>

#include "src/fs/pmfs/pmfs_fs.h"
#include "src/hinfs/benefit_model.h"
#include "src/hinfs/dram_buffer.h"
#include "src/hinfs/hinfs_options.h"

namespace hinfs {

class HinfsFs : public PmfsFs {
 public:
  static Result<std::unique_ptr<HinfsFs>> Format(NvmmDevice* nvmm, const HinfsOptions& options,
                                                 const PmfsOptions& pmfs_options = {});
  static Result<std::unique_ptr<HinfsFs>> Mount(NvmmDevice* nvmm, const HinfsOptions& options);

  ~HinfsFs() override;

  std::string Name() const override;

  Result<size_t> Read(uint64_t ino, uint64_t offset, void* dst, size_t len) override;
  Result<size_t> Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                       const WriteOptions& options) override;
  Status Truncate(uint64_t ino, uint64_t new_size) override;
  Status Fsync(uint64_t ino, const SyncOptions& options) override;
  using FileSystem::Fsync;
  Status Unlink(uint64_t dir_ino, std::string_view name) override;
  Status SyncFs() override;
  Status Unmount() override;

  Result<uint8_t*> Mmap(uint64_t ino, uint64_t offset, size_t len) override;
  Status Munmap(uint64_t ino) override;

  DramBufferManager& buffer() { return *buffer_; }
  EagerPersistenceChecker& checker() { return *checker_; }
  const HinfsOptions& options() const { return options_; }

 private:
  HinfsFs(NvmmDevice* nvmm, const HinfsOptions& options);
  void InitBuffer();

  // Writes one within-block chunk. `eager` routes it directly to NVMM (via the
  // inherited persistent-write path) or into the DRAM buffer.
  Status WriteChunk(uint64_t ino, PmfsInode& inode, bool eager, bool sync_case1, uint64_t offset,
                    const void* src, size_t len);

  HinfsOptions options_;
  std::unique_ptr<DramBufferManager> buffer_;
  std::unique_ptr<EagerPersistenceChecker> checker_;
};

}  // namespace hinfs

#endif  // SRC_HINFS_HINFS_FS_H_
