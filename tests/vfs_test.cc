// Vfs-layer semantics: fd lifecycle, offsets, flags, path resolution, and the
// dentry cache. Runs on PMFS (the Vfs is FS-agnostic).

#include <gtest/gtest.h>

#include <cstring>

#include "src/fs/pmfs/pmfs_fs.h"
#include "src/vfs/vfs.h"

namespace hinfs {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 32 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
    PmfsOptions opts;
    opts.max_inodes = 1024;
    auto fs = PmfsFs::Format(nvmm_.get(), opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  std::unique_ptr<NvmmDevice> nvmm_;
  std::unique_ptr<PmfsFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(VfsTest, SplitPathBasics) {
  auto parts = SplitPath("/a/b/c");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0], "a");
  EXPECT_EQ((*parts)[2], "c");
}

TEST_F(VfsTest, SplitPathEdgeCases) {
  EXPECT_TRUE(SplitPath("/").ok());
  EXPECT_TRUE(SplitPath("/")->empty());
  EXPECT_TRUE(SplitPath("//a//b/")->size() == 2);
  EXPECT_FALSE(SplitPath("relative").ok());
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
  EXPECT_EQ(SplitPath("/" + std::string(80, 'x')).status().code(), ErrorCode::kNameTooLong);
}

TEST_F(VfsTest, SequentialReadAdvancesOffset) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "abcdefgh").ok());
  auto fd = vfs_->Open("/f", kRdOnly);
  ASSERT_TRUE(fd.ok());
  char a[4];
  char b[4];
  ASSERT_TRUE(vfs_->Read(*fd, a, 4).ok());
  ASSERT_TRUE(vfs_->Read(*fd, b, 4).ok());
  EXPECT_EQ(std::memcmp(a, "abcd", 4), 0);
  EXPECT_EQ(std::memcmp(b, "efgh", 4), 0);
}

TEST_F(VfsTest, SeekRepositions) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "abcdefgh").ok());
  auto fd = vfs_->Open("/f", kRdOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Seek(*fd, 4).ok());
  char b[4];
  ASSERT_TRUE(vfs_->Read(*fd, b, 4).ok());
  EXPECT_EQ(std::memcmp(b, "efgh", 4), 0);
}

TEST_F(VfsTest, PreadDoesNotMoveOffset) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "abcdefgh").ok());
  auto fd = vfs_->Open("/f", kRdOnly);
  ASSERT_TRUE(fd.ok());
  char tmp[2];
  ASSERT_TRUE(vfs_->Pread(*fd, tmp, 2, 6).ok());
  char a[4];
  ASSERT_TRUE(vfs_->Read(*fd, a, 4).ok());
  EXPECT_EQ(std::memcmp(a, "abcd", 4), 0);
}

TEST_F(VfsTest, AppendAlwaysWritesAtEof) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "1234").ok());
  auto fd = vfs_->Open("/f", kWrOnly | kAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Seek(*fd, 0).ok());  // append mode ignores the offset
  ASSERT_TRUE(vfs_->Write(*fd, "56", 2).ok());
  auto content = vfs_->ReadFileToString("/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "123456");
}

TEST_F(VfsTest, ClosedFdRejected) {
  auto fd = vfs_->Open("/f", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());
  char b[4];
  EXPECT_EQ(vfs_->Read(*fd, b, 4).status().code(), ErrorCode::kBadFd);
  EXPECT_EQ(vfs_->Write(*fd, b, 4).status().code(), ErrorCode::kBadFd);
  EXPECT_EQ(vfs_->Fsync(*fd).code(), ErrorCode::kBadFd);
  EXPECT_EQ(vfs_->Close(*fd).code(), ErrorCode::kBadFd);
}

TEST_F(VfsTest, DistinctFdsIndependentOffsets) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "abcdefgh").ok());
  auto fd1 = vfs_->Open("/f", kRdOnly);
  auto fd2 = vfs_->Open("/f", kRdOnly);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(fd2.ok());
  EXPECT_NE(*fd1, *fd2);
  char a[4];
  ASSERT_TRUE(vfs_->Read(*fd1, a, 4).ok());
  char b[4];
  ASSERT_TRUE(vfs_->Read(*fd2, b, 4).ok());
  EXPECT_EQ(std::memcmp(b, "abcd", 4), 0);  // fd2 starts at 0
}

TEST_F(VfsTest, OpenDirectoryRejected) {
  ASSERT_TRUE(vfs_->Mkdir("/d").ok());
  EXPECT_EQ(vfs_->Open("/d", kRdOnly).status().code(), ErrorCode::kIsDir);
}

TEST_F(VfsTest, LookupThroughFileRejected) {
  ASSERT_TRUE(vfs_->WriteFile("/f", "x").ok());
  EXPECT_FALSE(vfs_->Stat("/f/child").ok());
}

TEST_F(VfsTest, DentryCacheSurvivesHotLookups) {
  ASSERT_TRUE(vfs_->Mkdir("/hot").ok());
  ASSERT_TRUE(vfs_->WriteFile("/hot/f", "x").ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(vfs_->Stat("/hot/f").ok());
  }
  // Unlink must invalidate the cached dentry.
  ASSERT_TRUE(vfs_->Unlink("/hot/f").ok());
  EXPECT_FALSE(vfs_->Stat("/hot/f").ok());
  // Recreate under the same name works and resolves to the new file.
  ASSERT_TRUE(vfs_->WriteFile("/hot/f", "new").ok());
  auto content = vfs_->ReadFileToString("/hot/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "new");
}

TEST_F(VfsTest, RenameInvalidatesBothNames) {
  ASSERT_TRUE(vfs_->WriteFile("/src", "v").ok());
  ASSERT_TRUE(vfs_->Stat("/src").ok());  // populate dcache
  ASSERT_TRUE(vfs_->Rename("/src", "/dst").ok());
  EXPECT_FALSE(vfs_->Stat("/src").ok());
  EXPECT_TRUE(vfs_->Stat("/dst").ok());
}

TEST_F(VfsTest, SyncMountForcesEagerWrites) {
  Vfs sync_vfs(fs_.get(), /*sync_mount=*/true);
  ASSERT_TRUE(sync_vfs.WriteFile("/s", "durable").ok());
  // On PMFS this is indistinguishable; the flag is exercised for HiNFS by
  // hinfs_fs_test. Here we just verify the path works end to end.
  auto content = sync_vfs.ReadFileToString("/s");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "durable");
}

TEST_F(VfsTest, UnmountInvalidatesFds) {
  auto fd = vfs_->Open("/f", kWrOnly | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Unmount().ok());
  char b[1];
  EXPECT_EQ(vfs_->Read(*fd, b, 1).status().code(), ErrorCode::kBadFd);
}

TEST_F(VfsTest, WriteFileOverwrites) {
  ASSERT_TRUE(vfs_->WriteFile("/w", "long original contents").ok());
  ASSERT_TRUE(vfs_->WriteFile("/w", "short").ok());
  auto content = vfs_->ReadFileToString("/w");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "short");
}

}  // namespace
}  // namespace hinfs
