// CrashStateEnumerator: turns a PersistTrace into the set of NVMM images a
// power failure could legally have left behind (crashlab layer 2).
//
// The enumerator replays the trace forward, maintaining
//   V — the volatile image (what the CPU cache holds), and
//   P — the persistent image (what is guaranteed durable),
// and considers a crash cut after every event. What P contains at a cut
// depends on the flush instruction the traced workload used:
//
//   kClflush      Each flush is durable the moment it executes (the paper's
//                 baseline: CLFLUSH is ordered with respect to stores). A cut
//                 therefore yields exactly one image: the base image plus every
//                 flush before the cut, applied in flush order — crash states
//                 are the prefixes of the flush sequence.
//
//   kClflushopt / CLFLUSHOPT/CLWB are only ordered by the next fence. Flushes
//   kClwb         since the last fence form the "pending" entry list; at a cut,
//                 ANY subset of those entries may have reached the media (each
//                 entry applied in flush order, so re-flushes of one line can
//                 surface either content). When 2^|pending| fits the per-cut
//                 budget the subsets are enumerated exhaustively; otherwise a
//                 seeded sample is drawn that always includes the empty and the
//                 full subset (the two states every protocol must tolerate).
//
// Distinct states are deduplicated by hashing (P version, surviving line
// contents), so callers only pay remount+check for genuinely new images.

#ifndef SRC_CRASHLAB_CRASH_STATE_GEN_H_
#define SRC_CRASHLAB_CRASH_STATE_GEN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/nvmm/nvmm_device.h"
#include "src/nvmm/persist_trace.h"

namespace hinfs {

struct CrashGenOptions {
  FlushInstruction flush_instruction = FlushInstruction::kClflush;
  uint64_t seed = 1;
  // Budget of subset-states materialized per cut (kClflushopt/kClwb only;
  // kClflush cuts always yield one state). Exhaustive when 2^pending fits.
  size_t max_states_per_cut = 64;
  // Overall cap across the whole trace; 0 = unlimited.
  size_t max_total_states = 0;
};

// One materialized crash state, valid only for the duration of the visitor
// call (the image buffer is reused).
struct CrashImageSpec {
  size_t cut = 0;       // crash point: events [0, cut) happened
  uint64_t epoch = 0;   // fences completed before the cut
  // Pending-entry indices (within the cut's epoch, in flush order) that
  // survived in this state. Empty under kClflush (no pending set).
  std::vector<size_t> surviving_entries;
  // Cachelines those surviving entries cover (line = offset / 64).
  std::vector<uint64_t> surviving_lines;
  const std::vector<uint8_t>* image = nullptr;  // full device image
};

class CrashStateEnumerator {
 public:
  CrashStateEnumerator(const PersistTrace& trace, const CrashGenOptions& opts)
      : trace_(trace), opts_(opts) {}

  // Visits every distinct crash state. The visitor returns false to stop
  // enumeration early (not an error), or an error Status to abort.
  Status Enumerate(const std::function<Result<bool>(const CrashImageSpec&)>& visit);

  // Counters populated by Enumerate().
  size_t states_emitted() const { return states_emitted_; }
  size_t states_deduped() const { return states_deduped_; }
  size_t cuts_visited() const { return cuts_visited_; }
  bool sampled() const { return sampled_; }  // any cut exceeded the subset budget

 private:
  struct PendingEntry {
    uint64_t line;
    std::vector<uint8_t> content;  // kCachelineSize bytes captured at flush time
    uint64_t content_hash;
  };

  const PersistTrace& trace_;
  const CrashGenOptions opts_;
  size_t states_emitted_ = 0;
  size_t states_deduped_ = 0;
  size_t cuts_visited_ = 0;
  bool sampled_ = false;
};

}  // namespace hinfs

#endif  // SRC_CRASHLAB_CRASH_STATE_GEN_H_
