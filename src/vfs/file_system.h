// FileSystem: the interface every file system in this repository implements
// (PmfsFs, HinfsFs, BlockFs). It plays the role the kernel VFS's inode/file
// operations play for the in-kernel original: the Vfs layer (src/vfs/vfs.h)
// resolves paths and file descriptors and then calls into this interface by
// inode number.

#ifndef SRC_VFS_FILE_SYSTEM_H_
#define SRC_VFS_FILE_SYSTEM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace hinfs {

enum class FileType : uint8_t {
  kRegular = 1,
  kDirectory = 2,
};

struct InodeAttr {
  uint64_t ino = 0;
  FileType type = FileType::kRegular;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint64_t mtime_ns = 0;
  // Allocation generation of the inode slot (0 where the FS does not track
  // one). (ino, generation) uniquely names a file across inode-number reuse;
  // the WAL stamps redo records with it so crash replay never writes into a
  // recycled inode.
  uint64_t generation = 0;
};

struct DirEntry {
  std::string name;
  uint64_t ino = 0;
  FileType type = FileType::kRegular;
};

// Per-write behavior flags, passed down from the VFS layer to every
// FileSystem::Write. A struct (rather than a bare bool) so future per-write
// hints (e.g. temperature or allocation hints) extend it without touching
// every implementation again.
struct WriteOptions {
  // The paper's two write classes, plus the WAL third way: a buffered
  // (lazy-persistent) write may live in the DRAM Write Buffer until writeback;
  // an eager-persistent write (O_SYNC / sync mount, case (1) of the paper's
  // definition) must be durable in NVMM on return; a logged write must be
  // *recoverable* on return — a redo record in the NVMM write-ahead log is
  // durable, while the final-layout update is deferred to checkpointing.
  // File systems that do not support logging (SupportsLoggedDurability() is
  // false) treat kLogged exactly like kEagerPersistent, so the VFS can request
  // it unconditionally.
  enum class Durability : uint8_t {
    kBuffered,
    kEagerPersistent,
    kLogged,
  };
  Durability durability = Durability::kBuffered;

  bool eager_persistent() const { return durability == Durability::kEagerPersistent; }
  bool synchronous() const { return durability != Durability::kBuffered; }

  static WriteOptions Buffered() { return WriteOptions{Durability::kBuffered}; }
  static WriteOptions EagerPersistent() { return WriteOptions{Durability::kEagerPersistent}; }
  static WriteOptions Logged() { return WriteOptions{Durability::kLogged}; }
};

// How a sync call (fsync/fdatasync) is allowed to achieve durability. One
// struct shared by the VFS, the wire protocol, and the WAL, so every layer
// speaks the same durability contract.
struct SyncOptions {
  // fsync(2) vs fdatasync(2): kAll persists data and all metadata; kData may
  // skip pure timestamp metadata (mtime) when that saves a persist barrier.
  enum class Scope : uint8_t {
    kAll,
    kData,
  };
  Scope scope = Scope::kAll;

  // Group commit: when true (default), the call may ride on a concurrent
  // committer's flush+fence instead of issuing its own (the commit leader
  // persists every record appended so far; followers just wait). When false,
  // the caller insists on its own flush+fence — the non-grouped ablation.
  bool allow_group_wait = true;

  bool data_only() const { return scope == Scope::kData; }

  static SyncOptions Fsync() { return SyncOptions{Scope::kAll, true}; }
  static SyncOptions Fdatasync() { return SyncOptions{Scope::kData, true}; }
  static SyncOptions Eager() { return SyncOptions{Scope::kAll, false}; }
};

// Inode number of the root directory in every file system here.
inline constexpr uint64_t kRootIno = 1;

// Maximum file name component length (fits the 64-byte on-"disk" dirent).
inline constexpr size_t kMaxNameLen = 53;

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::string Name() const = 0;

  // --- namespace operations -------------------------------------------------
  virtual Result<uint64_t> Lookup(uint64_t dir_ino, std::string_view name) = 0;
  virtual Result<uint64_t> Create(uint64_t dir_ino, std::string_view name, FileType type) = 0;
  // Removes a regular file (decrementing nlink, freeing at zero) or an empty
  // directory.
  virtual Status Unlink(uint64_t dir_ino, std::string_view name) = 0;
  virtual Status Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                        std::string_view new_name) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(uint64_t dir_ino) = 0;
  virtual Result<InodeAttr> GetAttr(uint64_t ino) = 0;

  // --- data operations --------------------------------------------------------
  // Read returns the number of bytes read (short at EOF).
  virtual Result<size_t> Read(uint64_t ino, uint64_t offset, void* dst, size_t len) = 0;
  // Write extends the file as needed; `options` carries the durability class
  // (see WriteOptions above).
  virtual Result<size_t> Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                               const WriteOptions& options) = 0;
  virtual Status Truncate(uint64_t ino, uint64_t new_size) = 0;
  // fsync(2)/fdatasync(2): data (and metadata per `options.scope`) of `ino`
  // recoverable on return. `options.allow_group_wait` lets logging file
  // systems amortize one flush+fence across concurrent committers.
  virtual Status Fsync(uint64_t ino, const SyncOptions& options) = 0;
  Status Fsync(uint64_t ino) { return Fsync(ino, SyncOptions::Fsync()); }

  // --- whole-FS operations ----------------------------------------------------
  // sync(2)-style full flush.
  virtual Status SyncFs() = 0;
  // drop_caches analogue: flush and invalidate any volatile caching so the
  // next reads are cold (the paper clears the OS page cache before runs).
  // No-op for NVMM-native file systems, which have no read cache.
  virtual Status DropCaches() { return OkStatus(); }
  // Flushes everything and quiesces background work. The FS must be remountable
  // from the same device afterwards.
  virtual Status Unmount() = 0;

  // --- memory-mapped I/O -------------------------------------------------------
  // Direct mmap support (NVMM-aware file systems). Returns a pointer covering
  // [offset, offset+len) of the file, which must be block-aligned and already
  // allocated. Default: not supported (block-based baselines).
  virtual Result<uint8_t*> Mmap(uint64_t ino, uint64_t offset, size_t len) {
    (void)ino;
    (void)offset;
    (void)len;
    return Status(ErrorCode::kNotSupported, "mmap");
  }
  virtual Status Munmap(uint64_t ino) {
    (void)ino;
    return Status(ErrorCode::kNotSupported, "munmap");
  }
  // msync: persist mmap stores (flush + fence over the mapped range).
  virtual Status Msync(uint64_t ino, uint64_t offset, size_t len) {
    (void)ino;
    (void)offset;
    (void)len;
    return Status(ErrorCode::kNotSupported, "msync");
  }

  // True when the FS gives kLogged writes a cheaper path than eager
  // persistence (i.e. it fronts an NVMM write-ahead log). Lets the VFS pick
  // WriteOptions::Logged() for O_SYNC traffic only where it actually helps.
  virtual bool SupportsLoggedDurability() const { return false; }

  // Time-breakdown and traffic counters (Fig. 1 / Fig. 12 instrumentation).
  StatsRegistry& stats() { return stats_; }

 protected:
  StatsRegistry stats_;
};

}  // namespace hinfs

#endif  // SRC_VFS_FILE_SYSTEM_H_
