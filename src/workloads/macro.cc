#include "src/workloads/macro.h"

#include <algorithm>

#include "src/common/clock.h"
#include "src/common/constants.h"
#include "src/common/rng.h"

namespace hinfs {
namespace {

std::string PmPath(size_t i) { return "/pm/f" + std::to_string(i); }

}  // namespace

// --- Postmark ---------------------------------------------------------------------

Result<WorkloadResult> RunPostmark(Vfs* vfs, const PostmarkConfig& config) {
  Rng rng(config.seed);
  std::vector<uint8_t> payload(config.max_size);
  FillPattern(payload, config.seed);
  std::vector<uint8_t> readbuf(config.max_size * 4);

  WorkloadResult result;
  const uint64_t start = MonotonicNowNs();
  HINFS_RETURN_IF_ERROR(vfs->Mkdir("/pm"));

  // Phase 1: create the pool.
  std::vector<size_t> live;
  size_t next_id = 0;
  auto create_one = [&]() -> Status {
    const size_t id = next_id++;
    const size_t size = rng.Between(config.min_size, config.max_size);
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(PmPath(id), kWrOnly | kCreate));
    HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Write(fd, payload.data(), size));
    result.bytes_written += n;
    HINFS_RETURN_IF_ERROR(vfs->Close(fd));
    live.push_back(id);
    result.ops++;
    return OkStatus();
  };
  for (size_t i = 0; i < config.nfiles; i++) {
    HINFS_RETURN_IF_ERROR(create_one());
  }

  // Phase 2: transactions.
  for (size_t t = 0; t < config.transactions; t++) {
    // Read or append a random live file.
    if (!live.empty()) {
      const size_t id = live[rng.Below(live.size())];
      if (rng.NextDouble() < config.read_bias) {
        HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(PmPath(id), kRdOnly));
        HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Read(fd, readbuf.data(), readbuf.size()));
        result.bytes_read += n;
        HINFS_RETURN_IF_ERROR(vfs->Close(fd));
      } else {
        HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(PmPath(id), kWrOnly | kAppend));
        HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Write(fd, payload.data(), config.io_size));
        result.bytes_written += n;
        HINFS_RETURN_IF_ERROR(vfs->Close(fd));
      }
      result.ops++;
    }
    // Create or delete.
    if (rng.NextDouble() < config.create_bias || live.size() <= 2) {
      HINFS_RETURN_IF_ERROR(create_one());
    } else {
      const size_t slot = rng.Below(live.size());
      const size_t id = live[slot];
      live[slot] = live.back();
      live.pop_back();
      HINFS_RETURN_IF_ERROR(vfs->Unlink(PmPath(id)));
      result.ops++;
    }
  }

  // Phase 3: delete everything.
  for (size_t id : live) {
    HINFS_RETURN_IF_ERROR(vfs->Unlink(PmPath(id)));
    result.ops++;
  }
  result.seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  return result;
}

// --- TPC-C lite --------------------------------------------------------------------

Result<WorkloadResult> RunTpcc(Vfs* vfs, const TpccConfig& config) {
  Rng rng(config.seed);
  std::vector<uint8_t> page(kBlockSize);
  FillPattern(page, config.seed);
  std::vector<uint8_t> wal_rec(config.wal_record_bytes);
  FillPattern(wal_rec, config.seed + 1);

  WorkloadResult result;
  const uint64_t start = MonotonicNowNs();
  HINFS_RETURN_IF_ERROR(vfs->Mkdir("/tpcc"));

  // Load phase: one table file per warehouse plus the WAL.
  const size_t pages = config.warehouses * config.table_pages_per_wh;
  HINFS_ASSIGN_OR_RETURN(int table_fd, vfs->Open("/tpcc/table", kRdWr | kCreate));
  for (size_t p = 0; p < pages; p++) {
    HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Write(table_fd, page.data(), page.size()));
    result.bytes_written += n;
  }
  HINFS_ASSIGN_OR_RETURN(int wal_fd, vfs->Open("/tpcc/wal", kWrOnly | kCreate | kAppend));

  // Transactions: read-modify-write pages, then durable WAL commit.
  for (size_t t = 0; t < config.transactions; t++) {
    for (size_t p = 0; p < config.pages_per_txn; p++) {
      const uint64_t pageno = rng.Skewed(pages, 0.4);
      HINFS_ASSIGN_OR_RETURN(
          size_t rn, vfs->Pread(table_fd, page.data(), page.size(), pageno * kBlockSize));
      result.bytes_read += rn;
      page[0] = static_cast<uint8_t>(t);  // "modify"
      HINFS_ASSIGN_OR_RETURN(
          size_t wn, vfs->Pwrite(table_fd, page.data(), page.size(), pageno * kBlockSize));
      result.bytes_written += wn;
    }
    HINFS_ASSIGN_OR_RETURN(size_t wn, vfs->Write(wal_fd, wal_rec.data(), wal_rec.size()));
    result.bytes_written += wn;
    HINFS_RETURN_IF_ERROR(vfs->Fsync(wal_fd));
    result.fsyncs++;
    result.ops++;

    if ((t + 1) % config.checkpoint_every == 0) {
      HINFS_RETURN_IF_ERROR(vfs->Fsync(table_fd));
      result.fsyncs++;
    }
  }
  HINFS_RETURN_IF_ERROR(vfs->Close(table_fd));
  HINFS_RETURN_IF_ERROR(vfs->Close(wal_fd));
  // Final checkpoint: the database shuts down durably (also charges any
  // still-buffered table pages, so short runs don't hide deferred work).
  HINFS_RETURN_IF_ERROR(vfs->SyncFs());
  result.seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  return result;
}

// --- kernel tree -----------------------------------------------------------------------

namespace {

std::string SrcPath(size_t d, size_t f) {
  return "/src/d" + std::to_string(d) + "/f" + std::to_string(f) + ".c";
}
std::string HeaderPath(size_t h) { return "/include/h" + std::to_string(h) + ".h"; }
std::string ObjPath(size_t d, size_t f) {
  return "/obj/d" + std::to_string(d) + "_f" + std::to_string(f) + ".o";
}

}  // namespace

Status BuildKernelTree(Vfs* vfs, const KernelTreeConfig& config) {
  Rng rng(config.seed);
  std::vector<uint8_t> payload(std::max(config.mean_source_bytes, config.mean_header_bytes) * 2);
  FillPattern(payload, config.seed);

  HINFS_RETURN_IF_ERROR(vfs->Mkdir("/src"));
  HINFS_RETURN_IF_ERROR(vfs->Mkdir("/include"));
  HINFS_RETURN_IF_ERROR(vfs->Mkdir("/obj"));
  for (size_t h = 0; h < config.headers; h++) {
    const size_t size = config.mean_header_bytes / 2 + rng.Below(config.mean_header_bytes);
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(HeaderPath(h), kWrOnly | kCreate));
    HINFS_RETURN_IF_ERROR(vfs->Write(fd, payload.data(), size).status());
    HINFS_RETURN_IF_ERROR(vfs->Close(fd));
  }
  for (size_t d = 0; d < config.dirs; d++) {
    HINFS_RETURN_IF_ERROR(vfs->Mkdir("/src/d" + std::to_string(d)));
    for (size_t f = 0; f < config.files_per_dir; f++) {
      const size_t size = config.mean_source_bytes / 2 + rng.Below(config.mean_source_bytes);
      HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(SrcPath(d, f), kWrOnly | kCreate));
      HINFS_RETURN_IF_ERROR(vfs->Write(fd, payload.data(), size).status());
      HINFS_RETURN_IF_ERROR(vfs->Close(fd));
    }
  }
  return OkStatus();
}

Result<WorkloadResult> RunKernelGrep(Vfs* vfs, const KernelTreeConfig& config) {
  WorkloadResult result;
  std::vector<uint8_t> buf(1 << 20);
  const uint64_t start = MonotonicNowNs();

  auto scan = [&](const std::string& path) -> Status {
    HINFS_ASSIGN_OR_RETURN(int fd, vfs->Open(path, kRdOnly));
    while (true) {
      HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Read(fd, buf.data(), buf.size()));
      result.bytes_read += n;
      // "grep": look for a pattern that is never present.
      if (std::search(buf.begin(), buf.begin() + n, std::begin("HINFS_NEEDLE"),
                      std::end("HINFS_NEEDLE") - 1) != buf.begin() + n) {
        return Status(ErrorCode::kCorrupt, "needle unexpectedly found");
      }
      if (n < buf.size()) {
        break;
      }
    }
    result.ops++;
    return vfs->Close(fd);
  };

  for (size_t h = 0; h < config.headers; h++) {
    HINFS_RETURN_IF_ERROR(scan(HeaderPath(h)));
  }
  for (size_t d = 0; d < config.dirs; d++) {
    for (size_t f = 0; f < config.files_per_dir; f++) {
      HINFS_RETURN_IF_ERROR(scan(SrcPath(d, f)));
    }
  }
  result.seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  return result;
}

Result<WorkloadResult> RunKernelMake(Vfs* vfs, const KernelTreeConfig& config) {
  Rng rng(config.seed + 7);
  WorkloadResult result;
  std::vector<uint8_t> buf(1 << 20);
  const uint64_t start = MonotonicNowNs();

  for (size_t d = 0; d < config.dirs; d++) {
    for (size_t f = 0; f < config.files_per_dir; f++) {
      // "Compile": read the source and a handful of headers...
      HINFS_ASSIGN_OR_RETURN(int src, vfs->Open(SrcPath(d, f), kRdOnly));
      HINFS_ASSIGN_OR_RETURN(size_t sn, vfs->Read(src, buf.data(), buf.size()));
      result.bytes_read += sn;
      HINFS_RETURN_IF_ERROR(vfs->Close(src));
      for (int h = 0; h < 5; h++) {
        HINFS_ASSIGN_OR_RETURN(int hdr, vfs->Open(HeaderPath(rng.Below(config.headers)), kRdOnly));
        HINFS_ASSIGN_OR_RETURN(size_t hn, vfs->Read(hdr, buf.data(), buf.size()));
        result.bytes_read += hn;
        HINFS_RETURN_IF_ERROR(vfs->Close(hdr));
      }
      // ...then write the object file (~1.5x the source size), lazily.
      const size_t obj_size = sn + sn / 2 + 64;
      HINFS_ASSIGN_OR_RETURN(int obj, vfs->Open(ObjPath(d, f), kWrOnly | kCreate | kTrunc));
      HINFS_ASSIGN_OR_RETURN(size_t on, vfs->Write(obj, buf.data(), obj_size));
      result.bytes_written += on;
      HINFS_RETURN_IF_ERROR(vfs->Close(obj));
      result.ops++;
    }
  }

  // "Link": concatenate all objects into one image.
  HINFS_ASSIGN_OR_RETURN(int image, vfs->Open("/obj/vmlinux", kWrOnly | kCreate | kTrunc));
  for (size_t d = 0; d < config.dirs; d++) {
    for (size_t f = 0; f < config.files_per_dir; f++) {
      HINFS_ASSIGN_OR_RETURN(int obj, vfs->Open(ObjPath(d, f), kRdOnly));
      HINFS_ASSIGN_OR_RETURN(size_t n, vfs->Read(obj, buf.data(), buf.size()));
      result.bytes_read += n;
      HINFS_RETURN_IF_ERROR(vfs->Close(obj));
      HINFS_ASSIGN_OR_RETURN(size_t wn, vfs->Write(image, buf.data(), n));
      result.bytes_written += wn;
    }
  }
  HINFS_RETURN_IF_ERROR(vfs->Close(image));
  result.ops++;
  // No drain here: like real make, the benchmark measures elapsed build time;
  // object writeback continues in background afterwards (the paper's Fig. 13
  // measures make's elapsed time the same way).
  result.seconds = static_cast<double>(MonotonicNowNs() - start) / 1e9;
  return result;
}

}  // namespace hinfs
