#include "src/wal/wal_log.h"

#include <algorithm>
#include <cstring>
#include <thread>

namespace hinfs {

namespace {

// Smallest record area worth calling a region: fewer, larger regions beat
// many that fill instantly.
constexpr uint64_t kMinRegionDataBytes = 64 << 10;

constexpr uint64_t kDurableTailOff = offsetof(WalRegionHeader, durable_tail);
constexpr uint64_t kDurableSeqOff = offsetof(WalRegionHeader, durable_seq);
constexpr uint64_t kEpochOff = offsetof(WalRegionHeader, epoch);

uint64_t RecordSpan(size_t payload_len) {
  return sizeof(WalRecordHeader) + WalAlignUp8(payload_len);
}

}  // namespace

WalManager::WalManager(NvmmDevice* nvmm, WalCommitFormat format, StatsRegistry* stats)
    : nvmm_(nvmm),
      commit_format_(format),
      stats_(stats),
      stat_appends_(stats->Counter(kStatWalAppends)),
      stat_append_bytes_(stats->Counter(kStatWalAppendBytes)),
      stat_commits_(stats->Counter(kStatWalCommits)),
      stat_commit_bytes_(stats->Counter(kStatWalCommitBytes)),
      stat_group_absorbed_(stats->Counter(kStatWalGroupAbsorbed)) {}

uint32_t WalManager::ResolveRegionCount(const WalOptions& options, size_t total_bytes) {
  uint32_t count = options.regions > 0
                       ? static_cast<uint32_t>(options.regions)
                       : std::min(std::max(std::thread::hardware_concurrency(), 1u), 8u);
  // Clamp so every region keeps a useful record area.
  while (count > 1) {
    const uint64_t region_bytes = (total_bytes - kBlockSize) / count;
    if (region_bytes >= kBlockSize + kMinRegionDataBytes) {
      break;
    }
    count--;
  }
  return count;
}

Status WalManager::InitRegions(uint64_t base, uint64_t region_count, uint64_t region_bytes) {
  regions_.reserve(region_count);
  for (uint64_t i = 0; i < region_count; i++) {
    auto r = std::make_unique<Region>();
    r->index = static_cast<uint32_t>(i);
    r->header_addr = base + kBlockSize + i * region_bytes;
    r->data_addr = r->header_addr + kBlockSize;
    r->data_bytes = region_bytes - kBlockSize;
    regions_.push_back(std::move(r));
  }
  return OkStatus();
}

Result<std::unique_ptr<WalManager>> WalManager::Format(NvmmDevice* nvmm, uint64_t base,
                                                       size_t total_bytes,
                                                       const WalOptions& options,
                                                       StatsRegistry* stats) {
  const uint32_t region_count = ResolveRegionCount(options, total_bytes);
  if (total_bytes < kBlockSize + region_count * (kBlockSize + kMinRegionDataBytes)) {
    return Status(ErrorCode::kInvalidArgument, "WAL carve too small");
  }
  const uint64_t region_bytes =
      (total_bytes - kBlockSize) / region_count / kBlockSize * kBlockSize;

  WalSuperblock sb{};
  sb.magic = kWalMagic;
  sb.version = kWalVersion;
  sb.commit_format = static_cast<uint32_t>(options.commit_format);
  sb.total_bytes = total_bytes;
  sb.region_count = region_count;
  sb.region_bytes = region_bytes;
  HINFS_RETURN_IF_ERROR(nvmm->StorePersistent(base, &sb, sizeof(sb)));

  std::unique_ptr<WalManager> wal(new WalManager(nvmm, options.commit_format, stats));
  HINFS_RETURN_IF_ERROR(wal->InitRegions(base, region_count, region_bytes));
  WalRegionHeader fresh{};
  fresh.epoch = 1;  // matches Region::epoch's initial value
  // Void each record area's first line: a zeroed record header fails both the
  // shape and epoch checks, so residue from a previous lifetime of this carve
  // (which could legitimately carry epoch 1 and valid CRCs) can never be
  // reached by the first post-format tail scan.
  WalRecordHeader voided{};
  for (const auto& r : wal->regions_) {
    HINFS_RETURN_IF_ERROR(nvmm->StorePersistent(r->header_addr, &fresh, sizeof(fresh)));
    HINFS_RETURN_IF_ERROR(nvmm->StorePersistent(r->data_addr, &voided, sizeof(voided)));
  }
  return wal;
}

Result<std::unique_ptr<WalManager>> WalManager::Mount(NvmmDevice* nvmm, uint64_t base,
                                                      size_t total_bytes,
                                                      const WalOptions& options,
                                                      StatsRegistry* stats) {
  (void)options;  // geometry and commit format are authoritative on-NVMM
  WalSuperblock sb;
  HINFS_RETURN_IF_ERROR(nvmm->Load(base, &sb, sizeof(sb)));
  if (sb.magic != kWalMagic || sb.version != kWalVersion) {
    return Status(ErrorCode::kInvalidArgument, "not a WAL carve");
  }
  if (sb.total_bytes != total_bytes || sb.region_count == 0 ||
      kBlockSize + sb.region_count * sb.region_bytes > sb.total_bytes) {
    return Status(ErrorCode::kIoError, "WAL superblock geometry corrupt");
  }
  std::unique_ptr<WalManager> wal(
      new WalManager(nvmm, static_cast<WalCommitFormat>(sb.commit_format), stats));
  HINFS_RETURN_IF_ERROR(wal->InitRegions(base, sb.region_count, sb.region_bytes));
  uint64_t max_seq = 0;
  for (const auto& r : wal->regions_) {
    WalRegionHeader hdr;
    HINFS_RETURN_IF_ERROR(nvmm->Load(r->header_addr, &hdr, sizeof(hdr)));
    if (hdr.durable_tail > r->data_bytes || hdr.head > hdr.durable_tail || hdr.epoch == 0) {
      return Status(ErrorCode::kIoError, "WAL region header corrupt");
    }
    r->epoch = hdr.epoch;
    // The committed prefix: under kChecksum the scan IS the source of truth
    // (the commit path never writes the header); under kFence it is exactly
    // what durable_tail says.
    uint64_t end_off = hdr.durable_tail;
    uint64_t region_seq = hdr.durable_seq;
    if (wal->commit_format_ == WalCommitFormat::kChecksum) {
      uint64_t scan_seq = 0;
      HINFS_RETURN_IF_ERROR(wal->ScanRegion(*r, hdr, nullptr, &end_off, &scan_seq));
      region_seq = std::max(region_seq, scan_seq);
    }
    r->tail.store(end_off, std::memory_order_relaxed);
    r->committed_tail.store(end_off, std::memory_order_relaxed);
    r->committed_seq.store(region_seq, std::memory_order_relaxed);
    r->last_seq = region_seq;
    // Whatever the scan concluded, current-epoch residue may survive beyond
    // end_off; the post-replay recycle must retire this epoch.
    r->needs_epoch_bump = true;
    max_seq = std::max(max_seq, region_seq);
  }
  wal->next_seq_.store(max_seq + 1, std::memory_order_relaxed);
  return wal;
}

WalManager::Region& WalManager::RegionForThisThread() {
  // Per-core in spirit: each thread is pinned to one region by arrival order.
  // (thread_local is process-wide; with several managers alive the index is
  // still a stable, balanced assignment.)
  static thread_local uint32_t tls_index = 0xFFFFFFFFu;
  if (tls_index == 0xFFFFFFFFu) {
    tls_index = next_thread_region_.fetch_add(1, std::memory_order_relaxed);
  }
  return *regions_[tls_index % regions_.size()];
}

Result<WalTicket> WalManager::Append(WalRecordType type, uint64_t ino, uint64_t offset,
                                     uint64_t generation, const void* payload,
                                     size_t payload_len) {
  Region& r = RegionForThisThread();
  const uint64_t span = RecordSpan(payload_len);

  std::lock_guard<std::mutex> lock(r.append_mu);
  const uint64_t tail = r.tail.load(std::memory_order_relaxed);
  if (tail + span > r.data_bytes) {
    stats_->Add(kStatWalLogFullStalls, 1);
    return Status(ErrorCode::kNoSpace, "WAL region full");
  }

  WalRecordHeader hdr{};
  hdr.type = static_cast<uint32_t>(type);
  hdr.payload_len = static_cast<uint32_t>(payload_len);
  hdr.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  hdr.ino = ino;
  hdr.offset = offset;
  hdr.generation = generation;
  hdr.epoch = static_cast<uint32_t>(r.epoch);
  hdr.crc = WalRecordCrc(hdr, payload, payload_len);

  // Volatile stores: both land in the "CPU cache" and cost nothing until the
  // commit leader flushes them.
  HINFS_RETURN_IF_ERROR(nvmm_->Store(r.data_addr + tail, &hdr, sizeof(hdr)));
  if (payload_len > 0) {
    HINFS_RETURN_IF_ERROR(nvmm_->Store(r.data_addr + tail + sizeof(hdr), payload, payload_len));
  }
  r.tail.store(tail + span, std::memory_order_relaxed);
  r.last_seq = hdr.seq;

  stat_appends_->fetch_add(1, std::memory_order_relaxed);
  stat_append_bytes_->fetch_add(span, std::memory_order_relaxed);
  return WalTicket{r.index, hdr.seq};
}

Status WalManager::Commit(const WalTicket& ticket, bool allow_group_wait) {
  if (ticket.region >= regions_.size()) {
    return Status(ErrorCode::kInvalidArgument, "bad WAL ticket");
  }
  Region& r = *regions_[ticket.region];
  if (allow_group_wait &&
      r.committed_seq.load(std::memory_order_acquire) >= ticket.seq) {
    // A concurrent leader's fence already covered this record.
    stat_group_absorbed_->fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(r.commit_mu);
  if (allow_group_wait &&
      r.committed_seq.load(std::memory_order_acquire) >= ticket.seq) {
    // We waited behind the leader that committed us: the group-commit win.
    stat_group_absorbed_->fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }
  return CommitRegionLocked(r);
}

Status WalManager::CommitRegionLocked(Region& r) {
  uint64_t tail_snap;
  uint64_t seq_snap;
  {
    std::lock_guard<std::mutex> alock(r.append_mu);
    tail_snap = r.tail.load(std::memory_order_relaxed);
    seq_snap = r.last_seq;
  }
  const uint64_t committed = r.committed_tail.load(std::memory_order_relaxed);
  if (tail_snap == committed) {
    // Nothing new (an opted-out-of-group-wait caller insisting on its own
    // barrier): one fence, no flush.
    nvmm_->Fence();
    return OkStatus();
  }

  if (commit_format_ == WalCommitFormat::kChecksum) {
    // The cheapest possible commit: the record lines themselves, one flush
    // call, one fence. No commit marker exists anywhere — recovery's
    // epoch-validated per-record CRC scan is what bounds the committed
    // prefix, so a torn batch truncates cleanly at the first bad record.
    const FlushRange data_range = {r.data_addr + committed,
                                   static_cast<size_t>(tail_snap - committed)};
    HINFS_RETURN_IF_ERROR(nvmm_->FlushBatch(&data_range, 1));
    nvmm_->Fence();
  } else {
    // kFence: records must be durable BEFORE the header can point at them.
    // Publish durable_tail/durable_seq in the header cacheline via 8-byte
    // atomic stores (a crash tears at field granularity only), then flush
    // data, fence, flush header, fence.
    HINFS_RETURN_IF_ERROR(
        nvmm_->StoreAtomic(r.header_addr + kDurableTailOff, &tail_snap, sizeof(tail_snap)));
    HINFS_RETURN_IF_ERROR(
        nvmm_->StoreAtomic(r.header_addr + kDurableSeqOff, &seq_snap, sizeof(seq_snap)));
    const FlushRange data_range = {r.data_addr + committed,
                                   static_cast<size_t>(tail_snap - committed)};
    HINFS_RETURN_IF_ERROR(nvmm_->FlushBatch(&data_range, 1));
    nvmm_->Fence();
    HINFS_RETURN_IF_ERROR(nvmm_->Flush(r.header_addr, kCachelineSize));
    nvmm_->Fence();
  }

  r.committed_tail.store(tail_snap, std::memory_order_release);
  r.committed_seq.store(seq_snap, std::memory_order_release);
  stat_commits_->fetch_add(1, std::memory_order_relaxed);
  stat_commit_bytes_->fetch_add(tail_snap - committed, std::memory_order_relaxed);
  return OkStatus();
}

Status WalManager::CommitAll() {
  for (auto& r : regions_) {
    std::lock_guard<std::mutex> lock(r->commit_mu);
    uint64_t tail_snap;
    {
      std::lock_guard<std::mutex> alock(r->append_mu);
      tail_snap = r->tail.load(std::memory_order_relaxed);
    }
    if (tail_snap == r->committed_tail.load(std::memory_order_relaxed)) {
      continue;
    }
    HINFS_RETURN_IF_ERROR(CommitRegionLocked(*r));
  }
  return OkStatus();
}

Status WalManager::ScanRegion(const Region& r, const WalRegionHeader& hdr,
                              std::vector<WalRecoveredRecord>* out, uint64_t* end_off,
                              uint64_t* max_seq) {
  const bool tail_scan = commit_format_ == WalCommitFormat::kChecksum;
  uint64_t off = tail_scan ? 0 : hdr.head;
  const uint64_t limit = tail_scan ? r.data_bytes : hdr.durable_tail;
  uint64_t seq_hi = 0;
  while (off + sizeof(WalRecordHeader) <= limit) {
    WalRecordHeader rec;
    HINFS_RETURN_IF_ERROR(nvmm_->Load(r.data_addr + off, &rec, sizeof(rec)));
    const bool shape_ok =
        (rec.type == static_cast<uint32_t>(WalRecordType::kData) ||
         rec.type == static_cast<uint32_t>(WalRecordType::kTruncate)) &&
        off + RecordSpan(rec.payload_len) <= limit;
    // A stale epoch marks bytes from before the last recycle: the clean end
    // of the tail scan, never an error.
    const bool epoch_ok = !tail_scan || rec.epoch == static_cast<uint32_t>(hdr.epoch);
    std::string payload;
    bool crc_ok = false;
    if (shape_ok && epoch_ok) {
      payload.resize(rec.payload_len);
      if (rec.payload_len > 0) {
        HINFS_RETURN_IF_ERROR(
            nvmm_->Load(r.data_addr + off + sizeof(rec), payload.data(), rec.payload_len));
      }
      crc_ok = WalRecordCrc(rec, payload.data(), rec.payload_len) == rec.crc;
    }
    if (!shape_ok || !epoch_ok || !crc_ok) {
      if (tail_scan) {
        // Torn batch or pre-recycle residue: nothing from here on was ever
        // acknowledged — the fence that would have acknowledged it also
        // would have made these lines durable — so truncating the scan is
        // exact, not lossy.
        break;
      }
      // Under kFence the durable_tail is flushed only after the records
      // fenced; a bad record inside it means real corruption.
      return Status(ErrorCode::kIoError, "torn record inside fenced WAL prefix");
    }
    seq_hi = std::max(seq_hi, rec.seq);
    if (out != nullptr) {
      WalRecoveredRecord rr;
      rr.type = static_cast<WalRecordType>(rec.type);
      rr.seq = rec.seq;
      rr.ino = rec.ino;
      rr.offset = rec.offset;
      rr.generation = rec.generation;
      rr.payload = std::move(payload);
      out->push_back(std::move(rr));
    }
    off += RecordSpan(rec.payload_len);
  }
  if (end_off != nullptr) {
    *end_off = off;
  }
  if (max_seq != nullptr) {
    *max_seq = seq_hi;
  }
  return OkStatus();
}

Result<std::vector<WalRecoveredRecord>> WalManager::CommittedRecords() {
  std::vector<WalRecoveredRecord> out;
  for (const auto& r : regions_) {
    WalRegionHeader hdr;
    HINFS_RETURN_IF_ERROR(nvmm_->Load(r->header_addr, &hdr, sizeof(hdr)));
    if (hdr.durable_tail > r->data_bytes || hdr.head > hdr.durable_tail) {
      return Status(ErrorCode::kIoError, "WAL region header corrupt");
    }
    HINFS_RETURN_IF_ERROR(ScanRegion(*r, hdr, &out, nullptr, nullptr));
  }
  std::sort(out.begin(), out.end(),
            [](const WalRecoveredRecord& a, const WalRecoveredRecord& b) { return a.seq < b.seq; });
  return out;
}

Status WalManager::ResetAllRegions() {
  std::vector<FlushRange> ranges;
  uint64_t recycled = 0;
  for (auto& r : regions_) {
    std::scoped_lock lock(r->commit_mu, r->append_mu);
    // An untouched region can skip the recycle ONLY if its epoch provably
    // has no records in the record area: any append sets tail, and a mount
    // pessimistically flags the region (residue beyond the recovered tail
    // may carry the current epoch).
    if (r->tail.load(std::memory_order_relaxed) == 0 && !r->needs_epoch_bump) {
      continue;
    }
    const uint64_t zero = 0;
    HINFS_RETURN_IF_ERROR(nvmm_->StoreAtomic(r->header_addr + offsetof(WalRegionHeader, head),
                                             &zero, sizeof(zero)));
    HINFS_RETURN_IF_ERROR(
        nvmm_->StoreAtomic(r->header_addr + kDurableTailOff, &zero, sizeof(zero)));
    // durable_seq is a monotonic high-water mark across recycles: it keeps
    // the next mount's seq allocation above every seq this region ever used,
    // even under kChecksum where the commit path never writes it.
    HINFS_RETURN_IF_ERROR(
        nvmm_->StoreAtomic(r->header_addr + kDurableSeqOff, &r->last_seq, sizeof(r->last_seq)));
    // Advance the epoch: the stale record bytes (valid CRCs and all) become
    // unreachable to the tail scan without zeroing a single line.
    r->epoch++;
    HINFS_RETURN_IF_ERROR(
        nvmm_->StoreAtomic(r->header_addr + kEpochOff, &r->epoch, sizeof(r->epoch)));
    ranges.push_back({r->header_addr, kCachelineSize});
    r->tail.store(0, std::memory_order_relaxed);
    r->committed_tail.store(0, std::memory_order_relaxed);
    r->needs_epoch_bump = false;
    recycled++;
  }
  if (!ranges.empty()) {
    HINFS_RETURN_IF_ERROR(nvmm_->FlushBatch(ranges.data(), ranges.size()));
    nvmm_->Fence();
    stats_->Add(kStatWalRecycles, recycled);
  }
  return OkStatus();
}

bool WalManager::SpaceLow() const {
  for (const auto& r : regions_) {
    if (r->tail.load(std::memory_order_relaxed) > r->data_bytes / 2) {
      return true;
    }
  }
  return false;
}

uint64_t WalManager::PendingBytes() const {
  uint64_t total = 0;
  for (const auto& r : regions_) {
    total += r->tail.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace hinfs
