#include <gtest/gtest.h>

#include <cstring>

#include "src/blockdev/nvmm_block_device.h"
#include "src/common/clock.h"

namespace hinfs {
namespace {

class BlockDevTest : public ::testing::Test {
 protected:
  BlockDevTest() {
    NvmmConfig cfg;
    cfg.size_bytes = 8 << 20;
    cfg.latency_mode = LatencyMode::kNone;
    nvmm_ = std::make_unique<NvmmDevice>(cfg);
  }
  std::unique_ptr<NvmmDevice> nvmm_;
};

TEST_F(BlockDevTest, RoundTrip) {
  NvmmBlockDevice dev(nvmm_.get(), 0, 64);
  std::vector<uint8_t> out(kBlockSize, 0xcc);
  ASSERT_TRUE(dev.WriteBlock(5, out.data()).ok());
  std::vector<uint8_t> in(kBlockSize);
  ASSERT_TRUE(dev.ReadBlock(5, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST_F(BlockDevTest, BoundsChecked) {
  NvmmBlockDevice dev(nvmm_.get(), 0, 64);
  std::vector<uint8_t> buf(kBlockSize);
  EXPECT_EQ(dev.ReadBlock(64, buf.data()).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.WriteBlock(1000, buf.data()).code(), ErrorCode::kOutOfRange);
  EXPECT_TRUE(dev.ReadBlock(63, buf.data()).ok());
}

TEST_F(BlockDevTest, PartitionsDoNotOverlap) {
  // Two partitions on one NVMM region.
  NvmmBlockDevice a(nvmm_.get(), 0, 16);
  NvmmBlockDevice b(nvmm_.get(), 16 * kBlockSize, 16);
  std::vector<uint8_t> pa(kBlockSize, 0xaa);
  std::vector<uint8_t> pb(kBlockSize, 0xbb);
  ASSERT_TRUE(a.WriteBlock(0, pa.data()).ok());
  ASSERT_TRUE(b.WriteBlock(0, pb.data()).ok());
  std::vector<uint8_t> in(kBlockSize);
  ASSERT_TRUE(a.ReadBlock(0, in.data()).ok());
  EXPECT_EQ(in[0], 0xaa);
  ASSERT_TRUE(b.ReadBlock(0, in.data()).ok());
  EXPECT_EQ(in[0], 0xbb);
}

TEST_F(BlockDevTest, WritesAreDurableOnCompletion) {
  NvmmConfig cfg;
  cfg.size_bytes = 1 << 20;
  cfg.latency_mode = LatencyMode::kNone;
  cfg.track_persistence = true;
  NvmmDevice nvmm(cfg);
  NvmmBlockDevice dev(&nvmm, 0, 16);
  std::vector<uint8_t> out(kBlockSize, 0x7a);
  ASSERT_TRUE(dev.WriteBlock(3, out.data()).ok());
  ASSERT_TRUE(nvmm.SimulateCrash().ok());
  std::vector<uint8_t> in(kBlockSize);
  ASSERT_TRUE(dev.ReadBlock(3, in.data()).ok());
  EXPECT_EQ(in[0], 0x7a);  // a brd-style RAM disk write survives power loss
}

TEST_F(BlockDevTest, BlockLayerOverheadPerRequest) {
  NvmmConfig cfg;
  cfg.size_bytes = 1 << 20;
  cfg.latency_mode = LatencyMode::kVirtual;
  cfg.write_latency_ns = 0;
  cfg.write_bandwidth_bytes_per_sec = 0;
  NvmmDevice nvmm(cfg);
  NvmmBlockDeviceConfig bcfg;
  bcfg.block_layer_overhead_ns = 2000;
  NvmmBlockDevice dev(&nvmm, 0, 16, bcfg);
  std::vector<uint8_t> buf(kBlockSize);
  SimClock::ResetThread();
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(dev.ReadBlock(0, buf.data()).ok());
  }
  EXPECT_EQ(SimClock::ThreadNowNs(), 5u * 2000);
  // Writes pay the overhead plus the persistence cost (zero latency here).
  ASSERT_TRUE(dev.WriteBlock(0, buf.data()).ok());
  EXPECT_EQ(SimClock::ThreadNowNs(), 6u * 2000);
}

TEST_F(BlockDevTest, SyncIsCheap) {
  NvmmBlockDevice dev(nvmm_.get(), 0, 16);
  EXPECT_TRUE(dev.Sync().ok());
}

}  // namespace
}  // namespace hinfs
