# Empty dependencies file for fig09_iosize_clfw.
# This may be replaced when dependencies are built.
