// Shared workload plumbing: results, thread runner, dataset helpers.

#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/vfs/fs_api.h"
#include "src/vfs/vfs.h"

namespace hinfs {

struct WorkloadResult {
  uint64_t ops = 0;           // flowops completed (filebench-style accounting)
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;
  double seconds = 0;

  double OpsPerSec() const { return seconds > 0 ? static_cast<double>(ops) / seconds : 0; }
};

// Runs `body(thread_index)` on `threads` std::threads and returns after join.
// Each body returns its op count; per-thread failures surface as a Status.
Status RunThreads(int threads, const std::function<Status(int)>& body);

// Fills `buf` with a deterministic byte pattern (payload for writes).
void FillPattern(std::vector<uint8_t>& buf, uint64_t seed);

}  // namespace hinfs

#endif  // SRC_WORKLOADS_WORKLOAD_H_
