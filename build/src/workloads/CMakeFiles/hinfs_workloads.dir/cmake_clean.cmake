file(REMOVE_RECURSE
  "CMakeFiles/hinfs_workloads.dir/filebench.cc.o"
  "CMakeFiles/hinfs_workloads.dir/filebench.cc.o.d"
  "CMakeFiles/hinfs_workloads.dir/fs_setup.cc.o"
  "CMakeFiles/hinfs_workloads.dir/fs_setup.cc.o.d"
  "CMakeFiles/hinfs_workloads.dir/macro.cc.o"
  "CMakeFiles/hinfs_workloads.dir/macro.cc.o.d"
  "CMakeFiles/hinfs_workloads.dir/trace.cc.o"
  "CMakeFiles/hinfs_workloads.dir/trace.cc.o.d"
  "CMakeFiles/hinfs_workloads.dir/workload.cc.o"
  "CMakeFiles/hinfs_workloads.dir/workload.cc.o.d"
  "libhinfs_workloads.a"
  "libhinfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
