// BlockFs: the traditional block-based file system baseline.
//
// One implementation yields three of the paper's comparison systems:
//   journal=off, dax=off  ->  "EXT2 + NVMMBD"  (no journaling, page cache)
//   journal=on,  dax=off  ->  "EXT4 + NVMMBD"  (ordered-mode metadata journal)
//   journal=on,  dax=on   ->  "EXT4-DAX"       (data direct to NVMM, metadata
//                                               still cache-oriented)
//
// Layout (4 KB blocks):
//   [ super | journal | inode table | inode bitmap | block bitmap | data ... ]
//
// Classic ext2 addressing: 10 direct pointers, one single-indirect, one
// double-indirect block. All metadata and (in non-DAX mode) all data pass
// through the PageCache, so every cached read is the double copy the paper's
// Fig. 3(a) shows, and every buffered write is copied again at
// writeback/fsync time.
//
// The ordered-mode journal batches dirty metadata blocks in DRAM and writes
// descriptor + data + commit blocks to the journal area at each commit point
// (fsync, sync, unmount), replaying committed transactions at mount.

#ifndef SRC_FS_BLOCKFS_BLOCK_FS_H_
#define SRC_FS_BLOCKFS_BLOCK_FS_H_

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/nvmm/nvmm_device.h"
#include "src/pagecache/page_cache.h"
#include "src/vfs/file_system.h"

namespace hinfs {

struct BlockFsOptions {
  bool journal = false;       // ext4-like metadata journaling (ordered mode)
  bool dax = false;           // EXT4-DAX: data bypasses the page cache
  uint64_t max_inodes = 1ull << 16;
  uint64_t journal_blocks = 1024;  // 4 MB journal
  size_t page_cache_pages = 0;     // 0 = unlimited
  // Required when dax=true: the NVMM device backing the block device, for
  // direct data access.
  NvmmDevice* dax_nvmm = nullptr;
  uint64_t dax_nvmm_base = 0;  // byte offset of device block 0 on dax_nvmm
};

class BlockFs : public FileSystem {
 public:
  static Result<std::unique_ptr<BlockFs>> Format(BlockDevice* dev, const BlockFsOptions& options);
  static Result<std::unique_ptr<BlockFs>> Mount(BlockDevice* dev, const BlockFsOptions& options);

  ~BlockFs() override = default;

  std::string Name() const override;

  Result<uint64_t> Lookup(uint64_t dir_ino, std::string_view name) override;
  Result<uint64_t> Create(uint64_t dir_ino, std::string_view name, FileType type) override;
  Status Unlink(uint64_t dir_ino, std::string_view name) override;
  Status Rename(uint64_t old_dir, std::string_view old_name, uint64_t new_dir,
                std::string_view new_name) override;
  Result<std::vector<DirEntry>> ReadDir(uint64_t dir_ino) override;
  Result<InodeAttr> GetAttr(uint64_t ino) override;

  Result<size_t> Read(uint64_t ino, uint64_t offset, void* dst, size_t len) override;
  Result<size_t> Write(uint64_t ino, uint64_t offset, const void* src, size_t len,
                       const WriteOptions& options) override;
  Status Truncate(uint64_t ino, uint64_t new_size) override;
  Status Fsync(uint64_t ino, const SyncOptions& options) override;
  using FileSystem::Fsync;
  Status SyncFs() override;
  Status DropCaches() override;
  Status Unmount() override;

  const PageCache& page_cache() const { return *cache_; }

 private:
  // On-device structures.
  struct Super {
    uint64_t magic;
    uint64_t total_blocks;
    uint64_t journal_start;   // block number
    uint64_t journal_blocks;
    uint64_t inode_table_start;
    uint64_t max_inodes;
    uint64_t inode_bitmap_start;
    uint64_t block_bitmap_start;
    uint64_t data_start;       // first data block
    uint64_t data_blocks;
    uint64_t checkpoint_seq;   // journal transactions <= this are checkpointed
    uint64_t clean_unmount;
  };

  static constexpr size_t kDirectPtrs = 10;
  struct DiskInode {
    uint64_t ino;  // 0 = free
    uint8_t type;
    uint8_t pad[3];
    uint32_t nlink;
    uint64_t size;
    uint64_t mtime_ns;
    uint64_t direct[kDirectPtrs];
    uint64_t indirect;
    uint64_t dindirect;
  };
  static_assert(sizeof(DiskInode) == 128);

  BlockFs(BlockDevice* dev, const BlockFsOptions& options);
  Status InitFormat();
  Status InitMount();
  Status ReplayJournal();

  // Metadata block I/O through the page cache, recording journal dirtiness.
  Status ReadMeta(uint64_t block, size_t offset, void* dst, size_t len);
  Status WriteMeta(uint64_t block, size_t offset, const void* src, size_t len);

  uint64_t InodeBlock(uint64_t ino) const;
  size_t InodeOffsetInBlock(uint64_t ino) const;
  Result<DiskInode> LoadInodeLocked(uint64_t ino);
  Status StoreInodeLocked(const DiskInode& inode);

  Result<uint64_t> AllocBlockLocked();
  Status FreeBlockLocked(uint64_t block);
  Result<uint64_t> AllocInoLocked();
  Status FreeInoLocked(uint64_t ino);

  // File-block mapping; allocates when `alloc` (returns 0 for holes otherwise).
  Result<uint64_t> MapLocked(DiskInode& inode, uint64_t file_block, bool alloc);
  Status FreeFileBlocksLocked(DiskInode& inode, uint64_t from_block, bool discard_pages);

  // Directory helpers (operate on directory file data through the data path).
  Result<uint64_t> FindDirentLocked(DiskInode& dir, std::string_view name, uint64_t* out_ino,
                                    FileType* out_type);
  Status AddDirentLocked(DiskInode& dir, std::string_view name, uint64_t ino, FileType type);
  Status UnlinkLocked(uint64_t dir_ino, std::string_view name);

  // Data-path helpers.
  Status ReadDataLocked(DiskInode& inode, uint64_t offset, void* dst, size_t len);
  Status WriteDataLocked(DiskInode& inode, uint64_t offset, const void* src, size_t len);
  Status SyncFileDataLocked(DiskInode& inode);

  // Journal commit: flush the accumulated dirty metadata block list to the
  // journal area (descriptor + block copies + commit), then mark them
  // checkpointable. No-op when journaling is off.
  Status CommitJournalLocked();
  Status CheckpointLocked();

  BlockDevice* dev_;
  BlockFsOptions options_;
  Super sb_{};
  std::unique_ptr<PageCache> cache_;

  std::mutex mu_;  // one big lock, as coarse as early ext2
  std::vector<uint8_t> block_bitmap_;  // DRAM mirrors
  std::vector<uint8_t> inode_bitmap_;
  uint64_t block_hint_ = 0;
  uint64_t free_data_blocks_ = 0;

  // Journaling state.
  std::set<uint64_t> dirty_meta_blocks_;
  // Regular-file inodes with page-cache data written since the last sync;
  // CommitJournalLocked syncs their data first (ordered mode).
  std::set<uint64_t> dirty_data_inos_;
  uint64_t journal_head_ = 0;  // next journal block to write
  uint64_t next_seq_ = 1;
};

}  // namespace hinfs

#endif  // SRC_FS_BLOCKFS_BLOCK_FS_H_
