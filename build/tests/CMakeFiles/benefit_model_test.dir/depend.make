# Empty dependencies file for benefit_model_test.
# This may be replaced when dependencies are built.
