// Fig. 9: fileserver throughput and NVMM write bytes vs I/O size —
// HiNFS vs HiNFS-NCLFW vs PMFS. CLFW's fine-grained fetch/writeback pays off
// for sub-block unaligned I/O and converges above 4 KB.

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 9", "fileserver vs I/O size: CLFW ablation (throughput + NVMM bytes)");
  std::vector<BenchJsonRow> rows;

  const FsKind kinds[] = {FsKind::kPmfs, FsKind::kHinfsNclfw, FsKind::kHinfs};
  std::printf("%-8s", "iosize");
  for (FsKind kind : kinds) {
    std::printf(" %12s %14s", FsKindName(kind), "nvmmMB");
  }
  std::printf("\n");

  for (size_t io_size : {size_t{64}, size_t{512}, size_t{1024}, size_t{4096}, size_t{16384},
                         size_t{65536}, size_t{1 << 20}}) {
    char label[32];
    if (io_size >= (1 << 20)) {
      std::snprintf(label, sizeof(label), "%zuM", io_size >> 20);
    } else if (io_size >= 1024) {
      std::snprintf(label, sizeof(label), "%zuK", io_size >> 10);
    } else {
      std::snprintf(label, sizeof(label), "%zuB", io_size);
    }
    std::printf("%-8s", label);
    for (FsKind kind : kinds) {
      FilebenchConfig cfg = PaperFilebenchConfig();
      cfg.io_size = io_size;
      uint64_t nvmm_bytes = 0;
      auto result = RunPersonalityOn(kind, Personality::kFileserver, PaperBedConfig(), cfg,
                                     &nvmm_bytes);
      if (!result.ok()) {
        std::fprintf(stderr, "\n%s: %s\n", FsKindName(kind),
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.0f %14.1f", result->OpsPerSec(),
                  static_cast<double>(nvmm_bytes) / (1 << 20));
      std::fflush(stdout);
      rows.push_back({FsKindName(kind), "fileserver", "io_size",
                      static_cast<double>(io_size), result->OpsPerSec(), "ops_per_sec"});
      rows.push_back({FsKindName(kind), "fileserver", "io_size",
                      static_cast<double>(io_size),
                      static_cast<double>(nvmm_bytes) / (1 << 20), "nvmm_write_mb"});
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: HiNFS > HiNFS-NCLFW (up to ~30%%) below 4 KB with a large\n"
              "drop in NVMM write size; the gap closes at block-aligned sizes >= 4 KB;\n"
              "HiNFS-PMFS gap grows with I/O size\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
