# Empty dependencies file for hinfs_nvmm.
# This may be replaced when dependencies are built.
