// Fig. 2: percentage of fsync bytes across workloads — how much of the write
// volume an NVMM file system is forced to persist eagerly.

#include "bench/bench_common.h"
#include "src/workloads/trace.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 2", "percentage of fsync bytes per workload");

  std::vector<BenchJsonRow> rows;
  std::printf("%-10s %14s %14s %9s\n", "workload", "written(B)", "fsync(B)", "fsync%");
  for (const TraceProfile& profile :
       {TpccTraceProfile(), FacebookProfile(), Usr0Profile(), Usr1Profile(), LasrProfile()}) {
    TraceProfile p = profile;
    p.num_ops = 60000;
    const auto stats = ComputeFsyncBytes(SynthesizeTrace(p));
    std::printf("%-10s %14llu %14llu %8.1f%%\n", p.name.c_str(),
                static_cast<unsigned long long>(stats.total_written),
                static_cast<unsigned long long>(stats.fsync_bytes), stats.Percent());
    rows.push_back({"trace", p.name, "num_ops", static_cast<double>(p.num_ops),
                    stats.Percent(), "fsync_pct"});
  }

  // Filebench-derived points: varmail fsyncs everything it appends; fileserver
  // and webserver never fsync.
  {
    auto bed = MakeTestBed(FsKind::kPmfs, PaperBedConfig());
    if (!bed.ok()) {
      return 1;
    }
    FilebenchConfig cfg = PaperFilebenchConfig();
    cfg.io_size = 16 * 1024;
    if (!PrepareFileset((*bed)->vfs.get(), cfg).ok()) {
      return 1;
    }
    auto varmail = RunFilebench((*bed)->vfs.get(), Personality::kVarmail, cfg);
    if (varmail.ok()) {
      // Every varmail append is followed by fsync before further writes.
      std::printf("%-10s %14llu %14llu %8.1f%%\n", "Varmail",
                  static_cast<unsigned long long>(varmail->bytes_written),
                  static_cast<unsigned long long>(varmail->bytes_written), 100.0);
      rows.push_back({"filebench", "Varmail", "num_ops", 0, 100.0, "fsync_pct"});
    }
    std::printf("%-10s %14s %14s %8.1f%%\n", "Fileserver", "-", "-", 0.0);
    std::printf("%-10s %14s %14s %8.1f%%\n", "Webserver", "-", "-", 0.0);
    rows.push_back({"filebench", "Fileserver", "num_ops", 0, 0.0, "fsync_pct"});
    rows.push_back({"filebench", "Webserver", "num_ops", 0, 0.0, "fsync_pct"});
    (void)(*bed)->vfs->Unmount();
  }
  std::printf("\npaper shape: TPC-C > 90%%, LASR = 0%%, desktop traces in between\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
