file(REMOVE_RECURSE
  "CMakeFiles/fig02_fsync_bytes.dir/fig02_fsync_bytes.cc.o"
  "CMakeFiles/fig02_fsync_bytes.dir/fig02_fsync_bytes.cc.o.d"
  "fig02_fsync_bytes"
  "fig02_fsync_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fsync_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
