#include "src/common/status.h"

namespace hinfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not found";
    case ErrorCode::kExists:
      return "already exists";
    case ErrorCode::kNotDir:
      return "not a directory";
    case ErrorCode::kIsDir:
      return "is a directory";
    case ErrorCode::kNotEmpty:
      return "directory not empty";
    case ErrorCode::kNoSpace:
      return "no space";
    case ErrorCode::kNoMemory:
      return "out of memory";
    case ErrorCode::kInvalidArgument:
      return "invalid argument";
    case ErrorCode::kBadFd:
      return "bad file descriptor";
    case ErrorCode::kOutOfRange:
      return "out of range";
    case ErrorCode::kTooManyOpenFiles:
      return "too many open files";
    case ErrorCode::kNameTooLong:
      return "name too long";
    case ErrorCode::kReadOnly:
      return "read-only file system";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kCorrupt:
      return "corrupt";
    case ErrorCode::kNotSupported:
      return "not supported";
    case ErrorCode::kIoError:
      return "i/o error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hinfs
