# Empty dependencies file for hinfs_blockfs.
# This may be replaced when dependencies are built.
