// Fig. 6: accuracy of the Buffer Benefit Model when predicting a block's next
// sync verdict from its most recent one. The paper reports ~90 %+ across the
// sync-heavy workloads.

#include "bench/bench_common.h"
#include "src/hinfs/hinfs_fs.h"
#include "src/workloads/trace.h"

using namespace hinfs;

namespace {

Result<double> AccuracyForTrace(const TraceProfile& profile) {
  TestBedConfig cfg = PaperBedConfig();
  HINFS_ASSIGN_OR_RETURN(std::unique_ptr<TestBed> bed, MakeTestBed(FsKind::kHinfs, cfg));
  TraceProfile p = profile;
  p.num_ops = 40000;
  HINFS_RETURN_IF_ERROR(ReplayTrace(bed->vfs.get(), SynthesizeTrace(p)).status());
  auto* fs = static_cast<HinfsFs*>(bed->fs.get());
  const double acc = fs->checker().AccuracyRate();
  HINFS_RETURN_IF_ERROR(bed->vfs->Unmount());
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Fig. 6", "Buffer Benefit Model accuracy (consecutive-sync agreement)");

  std::vector<BenchJsonRow> rows;
  std::printf("%-10s %10s\n", "workload", "accuracy");
  for (const TraceProfile& profile :
       {Usr0Profile(), Usr1Profile(), FacebookProfile(), TpccTraceProfile()}) {
    auto acc = AccuracyForTrace(profile);
    if (!acc.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(), acc.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %9.1f%%\n", profile.name.c_str(), *acc * 100.0);
    rows.push_back({"HiNFS", profile.name, "num_ops", 40000, *acc * 100.0, "accuracy_pct"});
  }

  // Varmail point from the filebench personality.
  {
    auto bed = MakeTestBed(FsKind::kHinfs, PaperBedConfig());
    if (!bed.ok()) {
      return 1;
    }
    FilebenchConfig cfg = PaperFilebenchConfig();
    cfg.io_size = 16 * 1024;
    if (!PrepareFileset((*bed)->vfs.get(), cfg).ok()) {
      return 1;
    }
    auto result = RunFilebench((*bed)->vfs.get(), Personality::kVarmail, cfg);
    if (!result.ok()) {
      return 1;
    }
    auto* fs = static_cast<HinfsFs*>((*bed)->fs.get());
    const double acc_pct = fs->checker().AccuracyRate() * 100.0;
    std::printf("%-10s %9.1f%%\n", "Varmail", acc_pct);
    rows.push_back({"HiNFS", "Varmail", "num_ops", 0, acc_pct, "accuracy_pct"});
    (void)(*bed)->vfs->Unmount();
  }
  std::printf("\npaper shape: close to 90%% even in the worst case (Usr0)\n");
  return WriteBenchJson(args.json_path(), rows) ? 0 : 1;
}
