#include "src/qos/qos_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/common/clock.h"
#include "src/common/stats.h"

namespace hinfs {
namespace qos {
namespace {

// Same burst window as BandwidthLimiter: one row-buffer write of slack so a
// small write on an idle bucket never waits.
constexpr uint64_t kBurstBytes = 64 * 1024;

uint64_t ServiceNs(uint64_t bytes, uint64_t bps) {
  return bytes * 1'000'000'000ull / bps;
}

}  // namespace

QosScheduler::QosScheduler(LatencyMode mode, const QosConfig& config)
    : mode_(mode),
      num_tenants_(std::max<uint32_t>(1, std::min(config.tenants, kMaxTenants - 1))),
      fg_reserve_(std::clamp(config.fg_reserve, 0.001, 1.0)),
      tenants_(num_tenants_) {
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_tenants_; i++) {
    const uint32_t w = config.WeightOf(i);
    tenants_[i].weight.store(w, std::memory_order_relaxed);
    total += w;
  }
  total_weight_.store(total, std::memory_order_relaxed);
}

void QosScheduler::SetTenantWeight(TenantId id, uint32_t weight) {
  id = Clamp(id);
  const uint64_t w = weight > 0 ? weight : 1;
  const uint64_t old = tenants_[id].weight.exchange(w, std::memory_order_relaxed);
  // fetch_add of the (possibly negative) delta in two's complement.
  total_weight_.fetch_add(w - old, std::memory_order_relaxed);
}

uint64_t QosScheduler::LeafRate(const Bucket& leaf, bool background,
                                uint64_t total_bps) const {
  double rate;
  if (background) {
    rate = (1.0 - fg_reserve_) * static_cast<double>(total_bps);
  } else {
    const double w = static_cast<double>(leaf.weight.load(std::memory_order_relaxed));
    const double total_w =
        static_cast<double>(std::max<uint64_t>(1, total_weight_.load(std::memory_order_relaxed)));
    rate = fg_reserve_ * static_cast<double>(total_bps) * (w / total_w);
  }
  return rate < 1.0 ? 1 : static_cast<uint64_t>(rate);
}

void QosScheduler::AdvanceGlobal(uint64_t service_ns, uint64_t now) {
  uint64_t prev = global_tat_.load(std::memory_order_relaxed);
  uint64_t end;
  do {
    end = std::max(prev, now) + service_ns;
  } while (!global_tat_.compare_exchange_weak(prev, end, std::memory_order_relaxed));
}

bool QosScheduler::TryBorrowGlobal(uint64_t service_ns, uint64_t burst_ns, uint64_t now) {
  // GCRA conformance on the PRE-update TAT: the pipe has drained its backlog
  // to within the burst window, so this request may start now (its own
  // service time extends the TAT but does not disqualify it — a request
  // larger than the burst window could otherwise never borrow at all).
  uint64_t prev = global_tat_.load(std::memory_order_relaxed);
  uint64_t end;
  do {
    if (prev > now + burst_ns) {
      return false;  // no aggregate slack: someone is using their share
    }
    end = std::max(prev, now) + service_ns;
  } while (!global_tat_.compare_exchange_weak(prev, end, std::memory_order_relaxed));
  return true;
}

void QosScheduler::Acquire(const QosContext& ctx, uint64_t bytes, uint64_t total_bps) {
  if (total_bps == 0 || bytes == 0 || mode_ == LatencyMode::kNone) {
    return;
  }
  const bool background = ctx.cls == TrafficClass::kBackground;
  Bucket& leaf = background ? background_ : tenants_[Clamp(ctx.tenant)];
  const uint64_t leaf_bps = LeafRate(leaf, background, total_bps);
  const uint64_t service_leaf_ns = ServiceNs(bytes, leaf_bps);
  const uint64_t service_g_ns = ServiceNs(bytes, total_bps);
  std::atomic<uint64_t>& fast = background ? bg_fast_ : fg_fast_;
  std::atomic<uint64_t>& slow = background ? bg_slow_ : fg_slow_;

  leaf.charged_bytes.fetch_add(bytes, std::memory_order_relaxed);

  if (mode_ == LatencyMode::kVirtual) {
    // Deterministic per-leaf single-server queue in simulated time, exactly
    // the BandwidthLimiter virtual discipline applied to the leaf; the global
    // TAT still tracks aggregate admitted work for the snapshot.
    const uint64_t tnow = SimClock::ThreadNowNs();
    uint64_t prev = leaf.tat_ns.load(std::memory_order_relaxed);
    uint64_t start, end;
    do {
      start = std::max(prev, tnow);
      end = start + service_leaf_ns;
    } while (!leaf.tat_ns.compare_exchange_weak(prev, end, std::memory_order_relaxed));
    AdvanceGlobal(service_g_ns, tnow);
    if (start > tnow) {
      slow.fetch_add(1, std::memory_order_relaxed);
      leaf.throttle_waits.fetch_add(1, std::memory_order_relaxed);
      leaf.throttle_wait_ns.fetch_add(start - tnow, std::memory_order_relaxed);
    } else {
      fast.fetch_add(1, std::memory_order_relaxed);
    }
    if (end > tnow) {
      SimClock::Advance(end - tnow);
    }
    return;
  }

  // Spin mode. Reserve a slot in the leaf with one CAS. Conformance is the
  // pre-update GCRA check — the leaf's backlog (everything admitted before
  // us) has drained to within the burst window — so a request of any size is
  // admitted the moment its predecessors' bytes fit the pipe.
  const uint64_t leaf_burst_ns = ServiceNs(kBurstBytes, leaf_bps);
  const uint64_t g_burst_ns = ServiceNs(kBurstBytes, total_bps);
  const uint64_t now = MonotonicNowNs();
  uint64_t prev = leaf.tat_ns.load(std::memory_order_relaxed);
  uint64_t end;
  do {
    end = std::max(prev, now) + service_leaf_ns;
  } while (!leaf.tat_ns.compare_exchange_weak(prev, end, std::memory_order_relaxed));

  if (prev <= now + leaf_burst_ns) {
    AdvanceGlobal(service_g_ns, now);
    fast.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Leaf is dry. Work conservation: if the aggregate pipe has slack (other
  // leaves idle), admit against it now and hand the leaf reservation back.
  if (TryBorrowGlobal(service_g_ns, g_burst_ns, now)) {
    leaf.tat_ns.fetch_sub(service_leaf_ns, std::memory_order_relaxed);
    leaf.borrowed_bytes.fetch_add(bytes, std::memory_order_relaxed);
    fast.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Genuinely throttled: wait until our own start time becomes conformant
  // (the backlog ahead of us, end - service, drains to the burst window),
  // but keep re-trying the borrow — slack appearing mid-wait (a competitor
  // went idle) should be picked up immediately, not after this tenant's full
  // queueing delay.
  slow.fetch_add(1, std::memory_order_relaxed);
  leaf.throttle_waits.fetch_add(1, std::memory_order_relaxed);
  const uint64_t backlog_ns = end - service_leaf_ns;
  const uint64_t deadline = backlog_ns > leaf_burst_ns ? backlog_ns - leaf_burst_ns : now;
  uint64_t cur = now;
  while (cur < deadline) {
    // A throttled tenant must not burn the core a conformant tenant needs to
    // issue its next request: far from the deadline, yield the CPU instead of
    // spinning (BandwidthLimiter spins unconditionally — it models queued
    // writer threads, not co-scheduled tenants).
    if (deadline - cur > 10'000) {
      std::this_thread::yield();
    } else {
      SpinFor(100);
    }
    cur = MonotonicNowNs();
    if (TryBorrowGlobal(service_g_ns, g_burst_ns, cur)) {
      leaf.tat_ns.fetch_sub(service_leaf_ns, std::memory_order_relaxed);
      leaf.borrowed_bytes.fetch_add(bytes, std::memory_order_relaxed);
      leaf.throttle_wait_ns.fetch_add(cur - now, std::memory_order_relaxed);
      return;
    }
  }
  AdvanceGlobal(service_g_ns, cur);
  leaf.throttle_wait_ns.fetch_add(cur - now, std::memory_order_relaxed);
}

void QosScheduler::FillSnapshot(const Bucket& leaf, bool background, uint64_t total_bps,
                                uint64_t now, BucketSnapshot* out) const {
  out->weight = static_cast<uint32_t>(leaf.weight.load(std::memory_order_relaxed));
  out->charged_bytes = leaf.charged_bytes.load(std::memory_order_relaxed);
  out->throttle_waits = leaf.throttle_waits.load(std::memory_order_relaxed);
  out->throttle_wait_ns = leaf.throttle_wait_ns.load(std::memory_order_relaxed);
  out->borrowed_bytes = leaf.borrowed_bytes.load(std::memory_order_relaxed);
  // Deficit: entitlement the bucket is sitting on right now — how far its TAT
  // lags the clock, converted to bytes at its share rate, capped at the burst
  // the GCRA would actually honor.
  const uint64_t tat = leaf.tat_ns.load(std::memory_order_relaxed);
  if (total_bps > 0 && tat < now) {
    const uint64_t rate = LeafRate(leaf, background, total_bps);
    out->deficit_bytes =
        std::min<uint64_t>(kBurstBytes, (now - tat) / 1'000'000'000.0 * rate);
  } else {
    out->deficit_bytes = 0;
  }
}

QosScheduler::Snapshot QosScheduler::TakeSnapshot(uint64_t total_bps) const {
  Snapshot snap;
  const uint64_t now =
      mode_ == LatencyMode::kSpin ? MonotonicNowNs() : SimClock::ThreadNowNs();
  snap.tenants.resize(num_tenants_);
  for (uint32_t i = 0; i < num_tenants_; i++) {
    snap.tenants[i].id = i;
    FillSnapshot(tenants_[i], /*background=*/false, total_bps, now, &snap.tenants[i]);
  }
  snap.background.id = kMaxTenants;
  FillSnapshot(background_, /*background=*/true, total_bps, now, &snap.background);
  snap.fg_fast = fg_fast_.load(std::memory_order_relaxed);
  snap.fg_slow = fg_slow_.load(std::memory_order_relaxed);
  snap.bg_fast = bg_fast_.load(std::memory_order_relaxed);
  snap.bg_slow = bg_slow_.load(std::memory_order_relaxed);
  return snap;
}

void QosScheduler::ExportStats(StatsRegistry* stats, uint64_t total_bps) const {
  const Snapshot snap = TakeSnapshot(total_bps);
  auto store = [stats](const char* name, uint64_t v) {
    stats->Counter(name)->store(v, std::memory_order_relaxed);
  };
  store(kStatQosFgFastAcquires, snap.fg_fast);
  store(kStatQosFgSlowAcquires, snap.fg_slow);
  store(kStatQosBgFastAcquires, snap.bg_fast);
  store(kStatQosBgSlowAcquires, snap.bg_slow);
  char name[64];
  auto store_bucket = [&](const char* prefix, const BucketSnapshot& b) {
    std::snprintf(name, sizeof(name), "%s_charged_bytes", prefix);
    store(name, b.charged_bytes);
    std::snprintf(name, sizeof(name), "%s_throttle_waits", prefix);
    store(name, b.throttle_waits);
    std::snprintf(name, sizeof(name), "%s_throttle_wait_ns", prefix);
    store(name, b.throttle_wait_ns);
    std::snprintf(name, sizeof(name), "%s_borrowed_bytes", prefix);
    store(name, b.borrowed_bytes);
    std::snprintf(name, sizeof(name), "%s_deficit_bytes", prefix);
    store(name, b.deficit_bytes);
  };
  char prefix[32];
  for (const BucketSnapshot& t : snap.tenants) {
    std::snprintf(prefix, sizeof(prefix), "qos_t%u", t.id);
    store_bucket(prefix, t);
  }
  store_bucket("qos_bg", snap.background);
}

}  // namespace qos
}  // namespace hinfs
