#include "src/common/clock.h"

#include <chrono>

namespace hinfs {
namespace {

thread_local uint64_t g_sim_now_ns = 0;

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void SpinFor(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const uint64_t deadline = MonotonicNowNs() + ns;
  while (MonotonicNowNs() < deadline) {
    // Busy wait, matching the paper's emulator ("a software spin loop that ...
    // spins until the counter reaches the intended delay").
  }
}

uint64_t SimClock::ThreadNowNs() { return g_sim_now_ns; }

void SimClock::Advance(uint64_t ns) { g_sim_now_ns += ns; }

void SimClock::ResetThread() { g_sim_now_ns = 0; }

}  // namespace hinfs
