// Result<T>: a value-or-Status return type (the library's StatusOr analogue).

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace hinfs {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites terse:
  //   Result<int> F() { if (bad) { return Status(ErrorCode::kNotFound); } return 42; }
  Result(T value) : status_(OkStatus()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) { assert(!status_.ok()); }
  Result(ErrorCode code) : status_(code) { assert(code != ErrorCode::kOk); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define HINFS_ASSIGN_OR_RETURN(lhs, expr)  \
  auto HINFS_CONCAT_(_res_, __LINE__) = (expr);                 \
  if (!HINFS_CONCAT_(_res_, __LINE__).ok()) {                   \
    return HINFS_CONCAT_(_res_, __LINE__).status();             \
  }                                                             \
  lhs = std::move(HINFS_CONCAT_(_res_, __LINE__).value())

#define HINFS_CONCAT_INNER_(a, b) a##b
#define HINFS_CONCAT_(a, b) HINFS_CONCAT_INNER_(a, b)

}  // namespace hinfs

#endif  // SRC_COMMON_RESULT_H_
