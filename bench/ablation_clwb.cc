// Extension study: CLFLUSH vs CLFLUSHOPT/CLWB. The paper's testbed only had
// the strictly-ordered CLFLUSH (its §2 assumption); this bench measures how
// much of HiNFS's advantage would survive on hardware with optimized flushes,
// which shrink the cost of eager-persistent writes.

#include "bench/bench_common.h"

using namespace hinfs;

int main(int argc, char** argv) {
  const bench::ArgParser args(argc, argv);
  PrintBenchHeader("Ablation", "flush instruction: CLFLUSH (paper) vs CLFLUSHOPT/CLWB");
  std::vector<BenchJsonRow> json_rows;

  struct Row {
    FlushInstruction instr;
    const char* name;
  };
  const Row rows[] = {{FlushInstruction::kClflush, "clflush"},
                      {FlushInstruction::kClflushopt, "clflushopt"},
                      {FlushInstruction::kClwb, "clwb"}};

  for (Personality p : {Personality::kFileserver, Personality::kVarmail}) {
    std::printf("[%s] ops/s (fences per op, peak unfenced lines)\n", PersonalityName(p));
    std::printf("%-12s %26s %26s %26s\n", "fs", "clflush", "clflushopt", "clwb");
    for (FsKind kind : {FsKind::kPmfs, FsKind::kHinfs}) {
      std::printf("%-12s", FsKindName(kind));
      for (const Row& row : rows) {
        TestBedConfig cfg = PaperBedConfig();
        cfg.nvmm.flush_instruction = row.instr;
        FilebenchConfig fb = PaperFilebenchConfig();
        if (p == Personality::kVarmail) {
          fb.io_size = 16 * 1024;
        }
        PersistCounters persist;
        auto result = RunPersonalityOn(kind, p, cfg, fb, nullptr, &persist);
        if (!result.ok()) {
          std::fprintf(stderr, "\n%s: %s\n", row.name, result.status().ToString().c_str());
          return 1;
        }
        const double fences_per_op =
            result->ops > 0 ? static_cast<double>(persist.fences) / result->ops : 0;
        std::printf(" %12.0f (%5.1f, %4llu)", result->OpsPerSec(), fences_per_op,
                    static_cast<unsigned long long>(persist.max_unfenced_lines));
        std::fflush(stdout);
        json_rows.push_back({FsKindName(kind),
                        std::string(PersonalityName(p)) + "/" + row.name, "threads",
                        static_cast<double>(fb.threads), result->OpsPerSec(),
                        "ops_per_sec"});
        json_rows.push_back({FsKindName(kind),
                        std::string(PersonalityName(p)) + "/" + row.name, "threads",
                        static_cast<double>(fb.threads), fences_per_op,
                        "fences_per_op"});
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("expected: optimized flushes lift PMFS more than HiNFS (they attack the\n"
              "same direct-write latency HiNFS hides), narrowing but not closing the gap\n"
              "on buffered workloads\n");
  return WriteBenchJson(args.json_path(), json_rows) ? 0 : 1;
}
