#include "src/hinfs/dram_buffer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/clock.h"
#include "src/hinfs/cacheline_bitmap.h"
#include "src/qos/tenant.h"

// The lock-free read path copies frame bytes with no lock held and discards
// the copy when the entry's seqlock moved. TSan cannot see the seqlock's
// fence-based ordering, so the speculative copy (reads only) is bracketed
// with the sanitizer's ignore-reads annotations; the writer side stays fully
// instrumented, and every reader-visible Entry field is a std::atomic.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HINFS_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define HINFS_TSAN 1
#endif

#ifdef HINFS_TSAN
extern "C" void AnnotateIgnoreReadsBegin(const char* file, int line);
extern "C" void AnnotateIgnoreReadsEnd(const char* file, int line);
#define HINFS_SPECULATIVE_READS_BEGIN() AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define HINFS_SPECULATIVE_READS_END() AnnotateIgnoreReadsEnd(__FILE__, __LINE__)
#else
#define HINFS_SPECULATIVE_READS_BEGIN() ((void)0)
#define HINFS_SPECULATIVE_READS_END() ((void)0)
#endif

namespace hinfs {

namespace {

size_t NextPow2(size_t x) {
  size_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

// Shard count: power of two (the key hash is masked), defaulting to the host's
// concurrency, clamped so every shard owns at least two frames.
size_t ResolveShardCount(const HinfsOptions& options, size_t capacity_blocks) {
  size_t n = options.buffer_shards > 0
                 ? NextPow2(static_cast<size_t>(options.buffer_shards))
                 : NextPow2(std::max(1u, std::thread::hardware_concurrency()));
  while (n > 1 && n * 2 > capacity_blocks) {
    n >>= 1;
  }
  return n;
}

}  // namespace

DramBufferManager::DramBufferManager(NvmmDevice* nvmm, const HinfsOptions& options,
                                     EnsureBlockFn ensure_block)
    : nvmm_(nvmm),
      options_(options),
      ensure_block_(std::move(ensure_block)),
      capacity_blocks_(std::max<size_t>(options.buffer_bytes / kBlockSize, 4)),
      pool_(new uint8_t[capacity_blocks_ * kBlockSize]) {
  const size_t nshards = ResolveShardCount(options, capacity_blocks_);
  shard_mask_ = static_cast<uint32_t>(nshards - 1);
  // Worker count is fixed for the manager's lifetime so shard->owner pinning
  // and the workers_ vector never change under concurrent kickers.
  wb_worker_count_ =
      std::min(nshards, static_cast<size_t>(std::max(1, options_.writeback_threads)));
  workers_.reserve(wb_worker_count_);
  for (size_t w = 0; w < wb_worker_count_; w++) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  shards_.reserve(nshards);
  const size_t base = capacity_blocks_ / nshards;
  const size_t rem = capacity_blocks_ % nshards;
  uint32_t next_frame = 0;
  for (size_t i = 0; i < nshards; i++) {
    auto shard = std::make_unique<Shard>();
    const size_t cap = base + (i < rem ? 1 : 0);
    shard->capacity.store(cap, std::memory_order_relaxed);
    // Watermarks scale by 1/N: each shard applies Low_f/High_f to its own
    // slice, so reclaim pressure per shard matches the unsharded buffer's.
    ApplyShardCapacityLocked(*shard);
    shard->free_frames.reserve(cap);
    // Descending, so PopFreeFrameLocked grants the slice's frames in ascending
    // order (same grant order as the unsharded pool at nshards=1).
    for (size_t f = 0; f < cap; f++) {
      shard->free_frames.push_back(static_cast<uint32_t>(next_frame + cap - 1 - f));
    }
    next_frame += static_cast<uint32_t>(cap);
    shard->free_count.store(shard->free_frames.size(), std::memory_order_relaxed);
    shard->shard_index = static_cast<uint32_t>(i);
    shard->owner_worker = static_cast<uint32_t>(i % wb_worker_count_);
    shard->lut_current =
        std::make_unique<LookupArrays>(NextPow2(std::max<size_t>(16, cap * 2)));
    shard->lut.store(shard->lut_current.get(), std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

DramBufferManager::~DramBufferManager() {
  StopBackgroundWriteback();
  // Entries and lookup tables are owned by the per-shard arenas (type-stable
  // storage); they are destroyed with the shards, after all threads joined.
}

void DramBufferManager::StartBackgroundWriteback() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (!threads_.empty()) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  wb_running_.store(true, std::memory_order_relaxed);
  for (size_t i = 0; i < wb_worker_count_; i++) {
    threads_.emplace_back([this, i] { WritebackThread(i); });
  }
}

void DramBufferManager::StopBackgroundWriteback() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  stop_.store(true, std::memory_order_relaxed);
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> wl(w->mu);
      w->kicked = true;
    }
    w->cv.notify_all();
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->free_cv.notify_all();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  wb_running_.store(false, std::memory_order_relaxed);
}

// --- introspection ----------------------------------------------------------------

uint32_t DramBufferManager::ShardOf(uint64_t ino, uint64_t file_block) const {
  // splitmix64-style finalizer over the combined key: adjacent blocks of one
  // file spread across shards, so a single hot file still scales.
  uint64_t h = ino * 0x9e3779b97f4a7c15ull + file_block;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  return static_cast<uint32_t>(h) & shard_mask_;
}

size_t DramBufferManager::shard_capacity(uint32_t shard) const {
  return shards_[shard]->capacity.load(std::memory_order_relaxed);
}

size_t DramBufferManager::shard_free(uint32_t shard) const {
  return shards_[shard]->free_count.load(std::memory_order_relaxed);
}

size_t DramBufferManager::free_blocks() const {
  size_t total = reserve_count_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    total += shard->free_count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::buffer_hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.hits.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::buffer_misses() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.misses.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::writeback_blocks() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.writeback_blocks.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::writeback_lines() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.writeback_lines.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::fetched_lines() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.fetched_lines.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::stall_count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.stalls.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::lock_contended() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.lock_contended.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::lockfree_read_hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.lockfree_hits.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::lockfree_read_fallbacks() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.lockfree_fallbacks.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::wb_dirty_runs() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.wb_dirty_runs.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::wb_flush_calls() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->stats.wb_flush_calls.load(std::memory_order_relaxed);
  return total;
}

uint64_t DramBufferManager::wb_coalesced_lines() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.wb_coalesced_lines.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::promotions_batched() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.promotions_batched.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::promotions_drained() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.promotions_drained.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::epoch_retired() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stats.epoch_retired.load(std::memory_order_relaxed);
  }
  return total;
}

uint32_t DramBufferManager::shard_owner_worker(uint32_t shard) const {
  return shards_[shard]->owner_worker;
}

uint64_t DramBufferManager::worker_wakeups(size_t worker) const {
  return workers_[worker]->wakeups.load(std::memory_order_relaxed);
}

uint64_t DramBufferManager::worker_timeout_wakeups(size_t worker) const {
  return workers_[worker]->timeout_wakeups.load(std::memory_order_relaxed);
}

uint64_t DramBufferManager::worker_spurious_wakeups() const {
  uint64_t total = 0;
  for (const auto& w : workers_) {
    total += w->spurious_wakeups.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DramBufferManager::worker_wakeups_total() const {
  uint64_t total = 0;
  for (const auto& w : workers_) total += w->wakeups.load(std::memory_order_relaxed);
  return total;
}

// --- frame slice ------------------------------------------------------------------

uint32_t DramBufferManager::PopFreeFrameLocked(Shard& s) {
  const uint32_t frame = s.free_frames.back();
  s.free_frames.pop_back();
  s.free_count.store(s.free_frames.size(), std::memory_order_relaxed);
  if (s.free_frames.size() < s.low.load(std::memory_order_relaxed)) {
    // Crossing Low_f: wake this shard's pinned worker now instead of waiting
    // out the period.
    KickWorkerForShard(s);
  }
  return frame;
}

void DramBufferManager::PushFreeFrameLocked(Shard& s, uint32_t frame) {
  s.free_frames.push_back(frame);
  s.free_count.store(s.free_frames.size(), std::memory_order_relaxed);
}

void DramBufferManager::ApplyShardCapacityLocked(Shard& s) {
  const size_t cap = s.capacity.load(std::memory_order_relaxed);
  s.low.store(std::max<size_t>(1, static_cast<size_t>(cap * options_.low_watermark)),
              std::memory_order_relaxed);
  s.high.store(
      std::min(cap, std::max<size_t>(2, static_cast<size_t>(cap * options_.high_watermark))),
      std::memory_order_relaxed);
}

// --- entry arena ------------------------------------------------------------------

DramBufferManager::Entry* DramBufferManager::AllocEntryLocked(Shard& s) {
  if (!s.entry_free.empty()) {
    Entry* e = s.entry_free.back();
    s.entry_free.pop_back();
    return e;
  }
  s.entry_arena.push_back(std::make_unique<Entry>());
  return s.entry_arena.back().get();
}

void DramBufferManager::ReleaseEntryLocked(Shard& s, Entry* e) {
  s.entry_free.push_back(e);
}

// --- lock-free lookup table -------------------------------------------------------

uint64_t DramBufferManager::LutKey(uint64_t ino, uint64_t file_block) {
  uint64_t h = ino * 0x9e3779b97f4a7c15ull + file_block;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  // The top bit is forced so a key can never equal kLutEmpty/kLutTombstone.
  // Different (ino, block) pairs may still collide on one key; lookups verify
  // the entry's own ino/file_block, and inserts simply occupy another slot.
  return h | (1ull << 63);
}

void DramBufferManager::LutRebuildLocked(Shard& s, size_t min_slots) {
  auto fresh = std::make_unique<LookupArrays>(NextPow2(std::max<size_t>(16, min_slots)));
  {
    IndexMutationGuard guard(&s);
    for (EntryList* list : {&s.t1, &s.t2}) {
      for (Entry* e = list->head.lrw_next; e != &list->head; e = e->lrw_next) {
        const uint64_t key = LutKey(e->ino.load(std::memory_order_relaxed),
                                    e->file_block.load(std::memory_order_relaxed));
        for (size_t i = key & fresh->mask;; i = (i + 1) & fresh->mask) {
          if (fresh->keys[i].load(std::memory_order_relaxed) == kLutEmpty) {
            fresh->entries[i].store(e, std::memory_order_relaxed);
            fresh->keys[i].store(key, std::memory_order_relaxed);
            break;
          }
        }
      }
    }
    s.lut.store(fresh.get(), std::memory_order_release);
  }
  s.lut_tombstones = 0;
  // Readers probing the replaced array hold an EpochGuard; it is freed once
  // every pin live at this point has been released. The retire happens after
  // the release-publication of the fresh array above, so any reader that pins
  // after the retirement advance necessarily loads the fresh array.
  uint64_t freed = s.lut_retired.Retire(s.lut_current.release());
  s.lut_current = std::move(fresh);
  freed += s.lut_retired.TryReclaim();
  if (freed > 0) {
    s.stats.epoch_retired.fetch_add(freed, std::memory_order_relaxed);
  }
}

void DramBufferManager::LutInsertLocked(Shard& s, uint64_t key, Entry* e) {
  LookupArrays* lut = s.lut.load(std::memory_order_relaxed);
  const size_t slots = lut->mask + 1;
  if ((s.lut_live + s.lut_tombstones + 1) * 4 > slots * 3) {
    // Keep the table under 75 % occupancy so probes always terminate. Grow
    // when live entries drive the pressure; same-size rebuild just sweeps
    // tombstones.
    LutRebuildLocked(s, (s.lut_live + 1) * 4 > slots * 3 ? slots * 2 : slots);
    lut = s.lut.load(std::memory_order_relaxed);
  }
  IndexMutationGuard guard(&s);
  for (size_t i = key & lut->mask;; i = (i + 1) & lut->mask) {
    const uint64_t k = lut->keys[i].load(std::memory_order_relaxed);
    if (k == kLutEmpty || k == kLutTombstone) {
      if (k == kLutTombstone) {
        s.lut_tombstones--;
      }
      lut->entries[i].store(e, std::memory_order_relaxed);
      lut->keys[i].store(key, std::memory_order_relaxed);
      s.lut_live++;
      return;
    }
  }
}

void DramBufferManager::LutEraseLocked(Shard& s, uint64_t key, Entry* e) {
  LookupArrays* lut = s.lut.load(std::memory_order_relaxed);
  IndexMutationGuard guard(&s);
  for (size_t i = key & lut->mask, probes = 0; probes <= lut->mask;
       i = (i + 1) & lut->mask, probes++) {
    const uint64_t k = lut->keys[i].load(std::memory_order_relaxed);
    if (k == kLutEmpty) {
      return;
    }
    if (k == key && lut->entries[i].load(std::memory_order_relaxed) == e) {
      lut->keys[i].store(kLutTombstone, std::memory_order_relaxed);
      lut->entries[i].store(nullptr, std::memory_order_relaxed);
      s.lut_live--;
      s.lut_tombstones++;
      return;
    }
  }
}

int DramBufferManager::TryLockFreeRead(Shard& s, uint64_t ino, uint64_t file_block,
                                       size_t offset, void* dst, size_t len) {
  if (len == 0) {
    return -1;  // degenerate; let the locked path decide hit/miss
  }
  // The pin makes LUT retirement safe: LutRebuildLocked can hand the replaced
  // array to the shard's RetireList instead of hoarding it forever, and this
  // probe can never touch a freed one. Usually nested inside the VFS syscall
  // pin, i.e. a depth bump, not a second slot publication.
  EpochGuard pin;
  const uint64_t want_key = LutKey(ino, file_block);
  const uint64_t is0 = s.index_seq.load(std::memory_order_acquire);
  if (is0 & 1) {
    return -1;  // table mid-mutation
  }
  LookupArrays* lut = s.lut.load(std::memory_order_acquire);
  for (size_t i = want_key & lut->mask, probes = 0; probes <= lut->mask;
       i = (i + 1) & lut->mask, probes++) {
    const uint64_t k = lut->keys[i].load(std::memory_order_acquire);
    if (k == kLutEmpty) {
      // A probe ending at an empty slot is a conclusive miss only if the
      // table did not move underneath it.
      std::atomic_thread_fence(std::memory_order_acquire);
      return s.index_seq.load(std::memory_order_relaxed) == is0 ? 0 : -1;
    }
    if (k != want_key) {
      continue;  // tombstone or another key
    }
    Entry* e = lut->entries[i].load(std::memory_order_acquire);
    if (e == nullptr) {
      continue;  // slot mid-update; the final index_seq check protects a miss
    }
    const uint64_t es0 = e->seq.load(std::memory_order_acquire);
    if (es0 & 1) {
      return -1;  // entry mid-mutation; the mutex path will wait it out
    }
    if (e->ino.load(std::memory_order_relaxed) != ino ||
        e->file_block.load(std::memory_order_relaxed) != file_block) {
      continue;  // key collision, or the entry was recycled for another block
    }
    const uint64_t need = LineMaskFor(offset, len);
    if ((need & ~e->valid.load(std::memory_order_relaxed)) != 0) {
      return -1;  // partial block: the NVMM merge needs the shard mutex
    }
    const uint32_t frame = e->dram_index.load(std::memory_order_relaxed);
    HINFS_SPECULATIVE_READS_BEGIN();
    std::memcpy(dst, FrameData(frame) + offset, len);
    HINFS_SPECULATIVE_READS_END();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e->seq.load(std::memory_order_relaxed) != es0) {
      return -1;  // a writer overlapped the copy; discard it
    }
    s.stats.lockfree_hits.fetch_add(1, std::memory_order_relaxed);
    if (ReadTouchesPolicy()) {
      PromoPush(s, want_key, e);
    }
    return 1;
  }
  return -1;
}

void DramBufferManager::PromoPush(Shard& s, uint64_t key, Entry* e) {
  PromoRing& r = s.promo;
  uint64_t h = r.head.load(std::memory_order_relaxed);
  do {
    if (h - r.tail_published.load(std::memory_order_acquire) >= PromoRing::kRingSlots) {
      return;  // ring full: drop the touch (promotions are advisory)
    }
  } while (!r.head.compare_exchange_weak(h, h + 1, std::memory_order_relaxed));
  PromoRing::Touch& t = r.slots[h & (PromoRing::kRingSlots - 1)];
  // The full-ring check above proves the previous occupant of this slot was
  // consumed (its key reset to 0) before tail_published passed it, so these
  // stores never race the consumer reading an older round.
  t.entry.store(e, std::memory_order_relaxed);
  t.key.store(key, std::memory_order_release);  // publishes the touch
  s.stats.promotions_batched.fetch_add(1, std::memory_order_relaxed);
}

void DramBufferManager::DrainPromotionsLocked(Shard& s) {
  PromoRing& r = s.promo;
  uint64_t t = r.tail;
  const uint64_t h = r.head.load(std::memory_order_acquire);
  uint64_t drained = 0;
  while (t != h) {
    PromoRing::Touch& slot = r.slots[t & (PromoRing::kRingSlots - 1)];
    const uint64_t key = slot.key.load(std::memory_order_acquire);
    if (key == 0) {
      break;  // reserved but not yet published; later slots must wait (FIFO)
    }
    Entry* e = slot.entry.load(std::memory_order_relaxed);
    slot.key.store(0, std::memory_order_relaxed);
    t++;
    // Revalidate under the mutex: the touch is stale if the entry was evicted
    // (unlinked), recycled for another block (key mismatch), or is mid-flush.
    if (e->lrw_prev != nullptr && !e->writing &&
        LutKey(e->ino.load(std::memory_order_relaxed),
               e->file_block.load(std::memory_order_relaxed)) == key) {
      OnReadHitLocked(s, e);
      drained++;
    }
  }
  r.tail = t;
  r.tail_published.store(t, std::memory_order_release);
  if (drained > 0) {
    s.stats.promotions_drained.fetch_add(drained, std::memory_order_relaxed);
  }
}

// --- residency lists --------------------------------------------------------------

void DramBufferManager::ListUnlink(EntryList& list, Entry* e) {
  e->lrw_prev->lrw_next = e->lrw_next;
  e->lrw_next->lrw_prev = e->lrw_prev;
  e->lrw_prev = e->lrw_next = nullptr;
  list.size--;
}

void DramBufferManager::ListPushMru(EntryList& list, Entry* e) {
  // Tail of the list (head.prev) is the most-recently-written position.
  e->lrw_prev = list.head.lrw_prev;
  e->lrw_next = &list.head;
  list.head.lrw_prev->lrw_next = e;
  list.head.lrw_prev = e;
  list.size++;
}

// --- replacement policy hooks ------------------------------------------------------

void DramBufferManager::GhostTrimLocked(std::list<uint64_t>& fifo,
                                        std::unordered_set<uint64_t>& set, size_t limit) {
  while (fifo.size() > limit) {
    set.erase(fifo.front());
    fifo.pop_front();
  }
}

void DramBufferManager::OnInsertLocked(Shard& s, Entry* e) {
  e->freq = 1;
  const uint64_t key = GhostKey(*e);
  const size_t cap = s.capacity.load(std::memory_order_relaxed);
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kArc:
      // ARC: a ghost hit means this block was recently evicted; adapt p and
      // admit straight into the frequent list.
      if (s.b1.erase(key) > 0) {
        const size_t delta =
            std::max<size_t>(1, s.b2.size() / std::max<size_t>(s.b1.size(), 1));
        s.arc_p = std::min(cap, s.arc_p + delta);
        e->arc_list = 2;
        ListPushMru(s.t2, e);
        return;
      }
      if (s.b2.erase(key) > 0) {
        const size_t delta =
            std::max<size_t>(1, s.b1.size() / std::max<size_t>(s.b2.size(), 1));
        s.arc_p = s.arc_p > delta ? s.arc_p - delta : 0;
        e->arc_list = 2;
        ListPushMru(s.t2, e);
        return;
      }
      break;
    case HinfsOptions::Replacement::kTwoQ:
      // 2Q: a block seen in the A1out ghost queue is hot — admit into Am (t2).
      if (s.b1.erase(key) > 0) {
        e->arc_list = 2;
        ListPushMru(s.t2, e);
        return;
      }
      break;
    default:
      break;
  }
  e->arc_list = 1;
  ListPushMru(s.t1, e);
}

void DramBufferManager::OnWriteHitLocked(Shard& s, Entry* e) {
  e->freq++;
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
      ListUnlink(s.t1, e);
      ListPushMru(s.t1, e);
      break;
    case HinfsOptions::Replacement::kFifo:
    case HinfsOptions::Replacement::kLfu:
      break;  // FIFO: position fixed; LFU: the freq bump is the update
    case HinfsOptions::Replacement::kArc:
      // A re-reference promotes to (or refreshes within) T2.
      if (e->arc_list == 1) {
        ListUnlink(s.t1, e);
        e->arc_list = 2;
      } else {
        ListUnlink(s.t2, e);
      }
      ListPushMru(s.t2, e);
      break;
    case HinfsOptions::Replacement::kTwoQ:
      // 2Q: re-references inside the probationary A1in queue do NOT promote
      // (that is the point of A1in: correlated re-writes stay probationary);
      // re-references in Am refresh its LRU position.
      if (e->arc_list == 2) {
        ListUnlink(s.t2, e);
        ListPushMru(s.t2, e);
      }
      break;
  }
}

void DramBufferManager::OnReadHitLocked(Shard& s, Entry* e) {
  // Applied when a batched read touch drains (never inline on the read path).
  // Mirrors OnWriteHitLocked for the read-aware policies but deliberately
  // leaves last_written_ns alone: a read does not make a block "recently
  // written", so staleness writeback timing is unaffected.
  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
    case HinfsOptions::Replacement::kFifo:
      // Write-ordered eviction (paper §3.2): reads never touch the lists.
      // Unreachable in practice — PromoPush is gated on ReadTouchesPolicy().
      break;
    case HinfsOptions::Replacement::kLfu:
      e->freq++;
      break;
    case HinfsOptions::Replacement::kArc:
      e->freq++;
      if (e->arc_list == 1) {
        ListUnlink(s.t1, e);
        e->arc_list = 2;
      } else {
        ListUnlink(s.t2, e);
      }
      ListPushMru(s.t2, e);
      break;
    case HinfsOptions::Replacement::kTwoQ:
      e->freq++;
      // Reads inside probationary A1in do not promote (2Q admission is the
      // ghost queue's job); reads in Am refresh its LRU position.
      if (e->arc_list == 2) {
        ListUnlink(s.t2, e);
        ListPushMru(s.t2, e);
      }
      break;
  }
}

void DramBufferManager::GhostRecordLocked(Shard& s, Entry* e) {
  const uint64_t key = GhostKey(*e);
  const size_t cap = s.capacity.load(std::memory_order_relaxed);
  if (options_.replacement == HinfsOptions::Replacement::kArc) {
    if (e->arc_list == 1) {
      if (s.b1.insert(key).second) {
        s.b1_fifo.push_back(key);
      }
    } else {
      if (s.b2.insert(key).second) {
        s.b2_fifo.push_back(key);
      }
    }
    GhostTrimLocked(s.b1_fifo, s.b1, cap);
    GhostTrimLocked(s.b2_fifo, s.b2, cap);
    return;
  }
  if (options_.replacement == HinfsOptions::Replacement::kTwoQ && e->arc_list == 1) {
    // Only A1in victims enter the A1out ghost queue (Kout = capacity / 2).
    if (s.b1.insert(key).second) {
      s.b1_fifo.push_back(key);
    }
    GhostTrimLocked(s.b1_fifo, s.b1, std::max<size_t>(1, cap / 2));
  }
}

std::vector<DramBufferManager::Entry*> DramBufferManager::PickVictimsLocked(Shard& s,
                                                                            size_t want) {
  std::vector<Entry*> victims;
  if (want == 0) {
    return victims;
  }
  auto take_from = [&](EntryList& list) {
    for (Entry* e = list.head.lrw_next; e != &list.head && victims.size() < want;
         e = e->lrw_next) {
      if (!e->writing) {
        e->writing = true;
        GhostRecordLocked(s, e);
        victims.push_back(e);
      }
    }
  };

  switch (options_.replacement) {
    case HinfsOptions::Replacement::kLrw:
    case HinfsOptions::Replacement::kFifo:
      take_from(s.t1);
      break;
    case HinfsOptions::Replacement::kLfu: {
      // Least-frequently-written first; ties broken by write recency.
      std::vector<Entry*> candidates;
      for (Entry* e = s.t1.head.lrw_next; e != &s.t1.head; e = e->lrw_next) {
        if (!e->writing) {
          candidates.push_back(e);
        }
      }
      const size_t n = std::min(want, candidates.size());
      std::partial_sort(candidates.begin(), candidates.begin() + n, candidates.end(),
                        [](const Entry* a, const Entry* b) {
                          if (a->freq != b->freq) {
                            return a->freq < b->freq;
                          }
                          return a->last_written_ns < b->last_written_ns;
                        });
      for (size_t i = 0; i < n; i++) {
        candidates[i]->writing = true;
        victims.push_back(candidates[i]);
      }
      break;
    }
    case HinfsOptions::Replacement::kTwoQ: {
      // 2Q: evict from the probationary A1in while it exceeds its share
      // (Kin = 25 % of the shard), recording victims in the A1out ghost
      // queue; otherwise evict the LRU of Am.
      const size_t kin =
          std::max<size_t>(1, s.capacity.load(std::memory_order_relaxed) / 4);
      while (victims.size() < want) {
        const size_t before = victims.size();
        if (s.t1.size > kin || s.t2.size == 0) {
          take_from(s.t1);
          if (victims.size() == before) {
            take_from(s.t2);
          }
        } else {
          take_from(s.t2);
          if (victims.size() == before) {
            take_from(s.t1);
          }
        }
        if (victims.size() == before) {
          break;
        }
      }
      break;
    }
    case HinfsOptions::Replacement::kArc: {
      // REPLACE: shrink T1 while it exceeds the adaptive target p, else T2.
      while (victims.size() < want) {
        const size_t before = victims.size();
        if (s.t1.size > s.arc_p && s.t1.size > 0) {
          take_from(s.t1);
          if (victims.size() == before) {
            take_from(s.t2);
          }
        } else {
          take_from(s.t2);
          if (victims.size() == before) {
            take_from(s.t1);
          }
        }
        if (victims.size() == before) {
          break;  // everything evictable is already in flight
        }
        // take_from may overshoot the per-iteration intent; the loop exits via
        // the want bound either way.
      }
      break;
    }
  }
  return victims;
}

// --- index ----------------------------------------------------------------------

DramBufferManager::Entry* DramBufferManager::FindLocked(Shard& s, uint64_t ino,
                                                        uint64_t file_block) {
  auto it = s.index.find(ino);
  if (it == s.index.end()) {
    return nullptr;
  }
  Entry** slot = it->second->Find(file_block);
  return slot == nullptr ? nullptr : *slot;
}

Result<DramBufferManager::Entry*> DramBufferManager::CreateLocked(
    Shard& s, std::unique_lock<std::mutex>& lock, uint64_t ino, uint64_t file_block,
    uint64_t nvmm_addr) {
  while (s.free_frames.empty()) {
    s.stats.stalls.fetch_add(1, std::memory_order_relaxed);
    KickWorkerForShard(s);
    if (!wb_running_.load(std::memory_order_relaxed)) {
      // No background engine (unit tests, or stopped during unmount): reclaim
      // one victim inline from this shard.
      std::vector<Entry*> victims = PickVictimsLocked(s, 1);
      if (victims.empty()) {
        return Status(ErrorCode::kNoMemory, "buffer exhausted with all frames in flight");
      }
      lock.unlock();
      HINFS_RETURN_IF_ERROR(FlushEntries(s, std::move(victims)));
      lock.lock();
      if (FindLocked(s, ino, file_block) != nullptr) {
        return nullptr;  // a racing writer buffered this block: caller retries
      }
      continue;
    }
    if (CanSteal()) {
      // Borrow frames from the reserve / idle shards before blocking: a hot
      // shard must not stall its writers while neighbours sit on free frames.
      lock.unlock();
      const size_t got = StealIntoShard(s);
      lock.lock();
      if (FindLocked(s, ino, file_block) != nullptr) {
        return nullptr;
      }
      if (got > 0 || !s.free_frames.empty()) {
        continue;
      }
    }
    s.free_cv.wait(lock, [&s, this] {
      return !s.free_frames.empty() || stop_.load(std::memory_order_relaxed);
    });
    if (stop_.load(std::memory_order_relaxed) && s.free_frames.empty()) {
      return Status(ErrorCode::kBusy, "buffer shutting down");
    }
    // Every path above may have released the shard mutex; if the key appeared
    // meanwhile, allocating a second entry would orphan it (the index slot is
    // unique) and leak its frame forever.
    if (FindLocked(s, ino, file_block) != nullptr) {
      return nullptr;
    }
  }

  Entry* e = AllocEntryLocked(s);
  {
    // Seqlock writer section: a recycled entry may still be referenced by a
    // concurrent lock-free reader, which must see this re-initialization as
    // a mutation, never as a stable state.
    EntryMutationGuard guard(e);
    e->ino.store(ino, std::memory_order_relaxed);
    e->file_block.store(file_block, std::memory_order_relaxed);
    e->nvmm_addr.store(nvmm_addr, std::memory_order_relaxed);
    e->valid.store(0, std::memory_order_relaxed);
    e->dirty = 0;
    e->dram_index.store(PopFreeFrameLocked(s), std::memory_order_relaxed);
    e->writing = false;
    e->last_written_ns = 0;
    e->freq = 0;
    e->arc_list = 1;
    // A block with no NVMM backing is a hole whose correct content is zeros,
    // but zero-filling eagerly here would double the memory traffic of every
    // append. Lines are zeroed lazily instead: the CLFW fetch path zeroes
    // partially-written lines, the locked read path zeroes non-valid lines it
    // serves, and StageEntryFlush zeroes whatever is still untouched before
    // persisting a freshly-allocated block.
  }
  s.resident++;
  auto it = s.index.find(ino);
  if (it == s.index.end()) {
    it = s.index.emplace(ino, std::make_unique<BTreeMap<Entry*>>()).first;
  }
  it->second->Insert(file_block, e);
  LutInsertLocked(s, LutKey(ino, file_block), e);
  OnInsertLocked(s, e);
  return e;
}

void DramBufferManager::DetachLocked(Shard& s, Entry* e) {
  const uint64_t ino = e->ino.load(std::memory_order_relaxed);
  const uint64_t file_block = e->file_block.load(std::memory_order_relaxed);
  auto it = s.index.find(ino);
  if (it != s.index.end()) {
    it->second->Erase(file_block);
    if (it->second->empty()) {
      s.index.erase(it);
    }
  }
  LutEraseLocked(s, LutKey(ino, file_block), e);
  ListUnlink(e->arc_list == 2 ? s.t2 : s.t1, e);
  const uint32_t frame = e->dram_index.load(std::memory_order_relaxed);
  {
    // Invalidate for concurrent lock-free readers before the frame or the
    // entry can be reused: the sentinel key never matches a real lookup.
    EntryMutationGuard guard(e);
    e->ino.store(UINT64_MAX, std::memory_order_relaxed);
    e->file_block.store(UINT64_MAX, std::memory_order_relaxed);
    e->valid.store(0, std::memory_order_relaxed);
  }
  PushFreeFrameLocked(s, frame);
  s.resident--;
  ReleaseEntryLocked(s, e);
}

// --- data paths -----------------------------------------------------------------

Result<uint32_t> DramBufferManager::Write(uint64_t ino, uint64_t file_block, size_t offset,
                                          const void* src, size_t len, uint64_t nvmm_addr) {
  if (offset + len > kBlockSize || len == 0) {
    return Status(ErrorCode::kInvalidArgument, "buffered write crosses block");
  }
  Shard& s = ShardForKey(ino, file_block);
  std::unique_lock<std::mutex> lock = LockShard(s);
  // Opportunistic drain: this thread already paid for the shard mutex, so
  // apply any batched read touches before they go stale. The emptiness check
  // is one relaxed load; LRW/FIFO rings are permanently empty.
  if (s.promo.head.load(std::memory_order_relaxed) != s.promo.tail) {
    DrainPromotionsLocked(s);
  }

  Entry* e;
  bool counted = false;  // exactly one hit or miss per Write, retries included
  while (true) {
    e = FindLocked(s, ino, file_block);
    if (e == nullptr) {
      if (!counted) {
        s.stats.misses.fetch_add(1, std::memory_order_relaxed);
        counted = true;
      }
      HINFS_ASSIGN_OR_RETURN(e, CreateLocked(s, lock, ino, file_block, nvmm_addr));
      if (e == nullptr) {
        continue;  // lost a create race while stalled: re-evaluate the key
      }
      break;
    }
    if (!e->writing) {
      if (!counted) {
        s.stats.hits.fetch_add(1, std::memory_order_relaxed);
      }
      OnWriteHitLocked(s, e);
      break;
    }
    // The block is mid-writeback: wait for the flush to retire it, then buffer
    // the write in a fresh frame.
    s.write_done_cv.wait(lock);
  }

  const uint64_t touch = LineMaskFor(offset, len);
  {
    // Seqlock writer section covering every reader-visible mutation (bitmap
    // updates, fetches into the frame, the user copy itself).
    EntryMutationGuard guard(e);
    if (e->nvmm_addr.load(std::memory_order_relaxed) == kNoNvmmAddr &&
        nvmm_addr != kNoNvmmAddr) {
      e->nvmm_addr.store(nvmm_addr, std::memory_order_relaxed);
    }
    const uint64_t backing = e->nvmm_addr.load(std::memory_order_relaxed);
    uint64_t valid = e->valid.load(std::memory_order_relaxed);
    if (options_.clfw) {
      // CLFW: fetch only the partially-overwritten lines not yet valid.
      const uint64_t partial = touch & ~FullLineMaskFor(offset, len);
      uint64_t need_fetch = partial & ~valid;
      LineRun run;
      size_t from = 0;
      while (NextRun(need_fetch, from, &run)) {
        uint8_t* dst = DataFor(*e) + run.first_line * kCachelineSize;
        if (backing != kNoNvmmAddr) {
          HINFS_RETURN_IF_ERROR(nvmm_->Load(backing + run.first_line * kCachelineSize, dst,
                                            run.count * kCachelineSize));
        } else {
          std::memset(dst, 0, run.count * kCachelineSize);
        }
        s.stats.fetched_lines.fetch_add(run.count, std::memory_order_relaxed);
        from = run.first_line + run.count;
      }
      e->valid.store(valid | touch, std::memory_order_relaxed);
      e->dirty |= touch;
    } else {
      // HiNFS-NCLFW: whole-block fetch-before-write and whole-block writeback.
      if (valid != ~0ull) {
        if (backing != kNoNvmmAddr) {
          HINFS_RETURN_IF_ERROR(nvmm_->Load(backing, DataFor(*e), kBlockSize));
        } else {
          std::memset(DataFor(*e), 0, kBlockSize);
        }
        s.stats.fetched_lines.fetch_add(kLinesPerBlock, std::memory_order_relaxed);
        e->valid.store(~0ull, std::memory_order_relaxed);
      }
      e->dirty = ~0ull;
    }

    std::memcpy(DataFor(*e) + offset, src, len);
    e->last_written_ns = MonotonicNowNs();
  }
  return static_cast<uint32_t>(CountLines(touch));
}

Result<bool> DramBufferManager::Read(uint64_t ino, uint64_t file_block, size_t offset, void* dst,
                                     size_t len, uint64_t nvmm_addr) {
  if (offset + len > kBlockSize) {
    return Status(ErrorCode::kInvalidArgument, "buffered read crosses block");
  }
  Shard& s = ShardForKey(ino, file_block);
  // Fast path: serve a fully-DRAM-valid block (or a conclusive miss) without
  // the shard mutex, validated by the entry/index seqlocks.
  const int fast = TryLockFreeRead(s, ino, file_block, offset, dst, len);
  if (fast == 1) {
    return true;
  }
  if (fast == 0) {
    return false;
  }
  s.stats.lockfree_fallbacks.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock = LockShard(s);
  Entry* e = FindLocked(s, ino, file_block);
  if (e == nullptr) {
    return false;
  }
  // Locked read hit: the mutex is already paid for, so apply the read-aware
  // policy hook directly instead of routing through the promotion ring.
  if (ReadTouchesPolicy() && e->lrw_prev != nullptr && !e->writing) {
    OnReadHitLocked(s, e);
  }

  // Merge: valid lines from DRAM, the rest from NVMM (or zeros for holes), one
  // memcpy per run of identically-sourced lines.
  const uint64_t valid = e->valid.load(std::memory_order_relaxed);
  const uint64_t backing = e->nvmm_addr.load(std::memory_order_relaxed);
  auto* out = static_cast<uint8_t*>(dst);
  size_t cur = offset;
  const size_t end = offset + len;
  while (cur < end) {
    const size_t line = cur / kCachelineSize;
    const bool in_dram = (valid >> line) & 1;
    size_t run_end_line = line;
    while (run_end_line + 1 < kLinesPerBlock &&
           run_end_line + 1 <= (end - 1) / kCachelineSize &&
           (((valid >> (run_end_line + 1)) & 1) != 0) == in_dram) {
      run_end_line++;
    }
    const size_t run_end = std::min(end, (run_end_line + 1) * kCachelineSize);
    const size_t chunk = run_end - cur;
    if (in_dram) {
      std::memcpy(out, DataFor(*e) + cur, chunk);
    } else if (backing != kNoNvmmAddr) {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(backing + cur, out, chunk));
    } else if (nvmm_addr != kNoNvmmAddr) {
      HINFS_RETURN_IF_ERROR(nvmm_->Load(nvmm_addr + cur, out, chunk));
    } else {
      std::memset(out, 0, chunk);
    }
    out += chunk;
    cur = run_end;
  }
  return true;
}

bool DramBufferManager::Contains(uint64_t ino, uint64_t file_block) {
  Shard& s = ShardForKey(ino, file_block);
  std::unique_lock<std::mutex> lock = LockShard(s);
  return FindLocked(s, ino, file_block) != nullptr;
}

// --- cross-shard frame stealing ---------------------------------------------------

size_t DramBufferManager::StealIntoShard(Shard& needy) {
  // Called with NO locks held. Donor shard mutexes are taken one at a time;
  // reserve_mu_ is a leaf and never nests with a shard mutex.
  const size_t want =
      std::max<size_t>(1, needy.low.load(std::memory_order_relaxed));
  const size_t grab_target = want * 2;  // surplus is parked in the reserve
  std::vector<uint32_t> got;
  got.reserve(grab_target);

  if (reserve_count_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> rl(reserve_mu_);
    while (!reserve_frames_.empty() && got.size() < want) {
      got.push_back(reserve_frames_.back());
      reserve_frames_.pop_back();
    }
    reserve_count_.store(reserve_frames_.size(), std::memory_order_relaxed);
  }

  if (got.size() < want) {
    for (auto& sp : shards_) {
      if (got.size() >= grab_target) {
        break;
      }
      Shard& d = *sp;
      if (&d == &needy) {
        continue;
      }
      // Lock-free screen first; donors must keep Low_f + 1 free frames, so a
      // shard under its own pressure is never raided (no steal ping-pong).
      if (d.free_count.load(std::memory_order_relaxed) <=
          d.low.load(std::memory_order_relaxed) + 1) {
        continue;
      }
      std::lock_guard<std::mutex> dl(d.mu);
      const size_t floor = d.low.load(std::memory_order_relaxed) + 1;
      if (d.free_frames.size() <= floor) {
        continue;
      }
      size_t take = std::min(d.free_frames.size() - floor, grab_target - got.size());
      for (; take > 0; take--) {
        got.push_back(d.free_frames.back());
        d.free_frames.pop_back();
        d.capacity.fetch_sub(1, std::memory_order_relaxed);
      }
      d.free_count.store(d.free_frames.size(), std::memory_order_relaxed);
      ApplyShardCapacityLocked(d);
    }
  }
  if (got.empty()) {
    return 0;
  }

  const size_t deposit = std::min(got.size(), want);
  {
    std::lock_guard<std::mutex> nl(needy.mu);
    needy.capacity.fetch_add(deposit, std::memory_order_relaxed);
    ApplyShardCapacityLocked(needy);
    for (size_t i = 0; i < deposit; i++) {
      PushFreeFrameLocked(needy, got[i]);
    }
  }
  needy.free_cv.notify_all();
  if (got.size() > deposit) {
    std::lock_guard<std::mutex> rl(reserve_mu_);
    for (size_t i = deposit; i < got.size(); i++) {
      reserve_frames_.push_back(got[i]);
    }
    reserve_count_.store(reserve_frames_.size(), std::memory_order_relaxed);
  }
  frames_stolen_.fetch_add(deposit, std::memory_order_relaxed);
  return deposit;
}

// --- flushing -------------------------------------------------------------------

Result<uint32_t> DramBufferManager::StageEntryFlush(Shard& s, Entry* e,
                                                    std::vector<FlushRange>* ranges) {
  uint64_t flush_mask = e->dirty;
  uint64_t addr = e->nvmm_addr.load(std::memory_order_relaxed);
  if (addr == kNoNvmmAddr) {
    if (e->dirty == 0) {
      return 0u;  // clean hole; nothing to persist
    }
    Result<uint64_t> ensured =
        ensure_block_(e->ino.load(std::memory_order_relaxed),
                      e->file_block.load(std::memory_order_relaxed));
    if (!ensured.ok()) {
      if (ensured.status().code() == ErrorCode::kNotFound) {
        // The file was unlinked while this block waited for writeback: its
        // data is dropped, exactly like any other write to a deleted file.
        return 0u;
      }
      return ensured.status();
    }
    addr = *ensured;
    {
      std::unique_lock<std::mutex> lock = LockShard(s);
      EntryMutationGuard guard(e);
      e->nvmm_addr.store(addr, std::memory_order_relaxed);
      // A freshly allocated NVMM block contains garbage and this hole's
      // correct content is zeros: zero the never-written lines now (deferred
      // from CreateLocked, off the foreground write path) and persist the
      // full frame below.
      const uint64_t valid = e->valid.load(std::memory_order_relaxed);
      LineRun run;
      size_t from = 0;
      while (NextRun(~valid, from, &run)) {
        std::memset(DataFor(*e) + run.first_line * kCachelineSize, 0,
                    run.count * kCachelineSize);
        from = run.first_line + run.count;
      }
      e->valid.store(~0ull, std::memory_order_relaxed);
    }
    flush_mask = ~0ull;
  }
  if (flush_mask == 0) {
    return 0u;
  }

  uint32_t lines = 0;
  uint32_t runs = 0;
  LineRun run;
  size_t from = 0;
  while (NextRun(flush_mask, from, &run)) {
    const size_t off = run.first_line * kCachelineSize;
    const size_t bytes = run.count * kCachelineSize;
    HINFS_RETURN_IF_ERROR(nvmm_->Store(addr + off, DataFor(*e) + off, bytes));
    ranges->push_back(FlushRange{addr + off, bytes});
    lines += static_cast<uint32_t>(run.count);
    runs++;
    from = run.first_line + run.count;
  }
  s.stats.wb_dirty_runs.fetch_add(runs, std::memory_order_relaxed);
  return lines;
}

Status DramBufferManager::FlushEntries(Shard& s, std::vector<Entry*> victims) {
  uint64_t lines = 0;
  uint64_t fences = 0;
  std::vector<FlushRange> ranges;
  Status st = OkStatus();
  for (Entry* e : victims) {
    Result<uint32_t> staged = StageEntryFlush(s, e, &ranges);
    if (!staged.ok()) {
      st = staged.status();
      break;
    }
    lines += *staged;
    if (*staged > 0) {
      fences++;
    }
  }
  // Persist whatever was staged even if a later victim failed, matching the
  // old entry-at-a-time behaviour where earlier victims were already durable.
  if (!ranges.empty()) {
    // Merge runs that abut in NVMM (across victims too: sequential writes land
    // consecutive file blocks in consecutive NVMM blocks) and issue the whole
    // set through one bandwidth acquisition. Total lines/bytes charged and the
    // per-entry fences below are identical to the unmerged sequence.
    size_t tail = 0;
    uint64_t coalesced_lines = 0;
    for (size_t i = 1; i < ranges.size(); i++) {
      FlushRange& prev = ranges[tail];
      if (ranges[i].offset == prev.offset + prev.len) {
        prev.len += ranges[i].len;
        coalesced_lines += ranges[i].len / kCachelineSize;
      } else {
        ranges[++tail] = ranges[i];
      }
    }
    ranges.resize(tail + 1);
    Status flushed = nvmm_->FlushBatch(ranges.data(), ranges.size());
    if (!flushed.ok()) {
      st = flushed;
    } else {
      for (uint64_t i = 0; i < fences; i++) {
        nvmm_->Fence();
      }
    }
    s.stats.wb_flush_calls.fetch_add(ranges.size(), std::memory_order_relaxed);
    s.stats.wb_coalesced_lines.fetch_add(coalesced_lines, std::memory_order_relaxed);
  }
  {
    std::unique_lock<std::mutex> lock = LockShard(s);
    for (Entry* e : victims) {
      DetachLocked(s, e);
    }
  }
  s.stats.writeback_blocks.fetch_add(victims.size(), std::memory_order_relaxed);
  s.stats.writeback_lines.fetch_add(lines, std::memory_order_relaxed);
  s.free_cv.notify_all();
  s.write_done_cv.notify_all();
  return st;
}

Status DramBufferManager::DrainShard(Shard& s, bool all, uint64_t ino) {
  while (true) {
    std::vector<Entry*> victims;
    bool any_in_flight = false;
    {
      std::unique_lock<std::mutex> lock = LockShard(s);
      auto collect = [&](BTreeMap<Entry*>& tree) {
        tree.ForEach([&](uint64_t, Entry*& e) {
          if (e->writing) {
            any_in_flight = true;
          } else {
            e->writing = true;
            victims.push_back(e);
          }
          return true;
        });
      };
      if (all) {
        for (auto& [file, tree] : s.index) {
          collect(*tree);
        }
      } else {
        auto it = s.index.find(ino);
        if (it == s.index.end()) {
          return OkStatus();
        }
        collect(*it->second);
      }
      if (victims.empty() && any_in_flight) {
        s.write_done_cv.wait(lock);
        continue;
      }
    }
    if (victims.empty()) {
      return OkStatus();
    }
    HINFS_RETURN_IF_ERROR(FlushEntries(s, std::move(victims)));
  }
}

Status DramBufferManager::FlushFile(uint64_t ino) {
  // Fixed shard order, draining one shard completely (holding at most its own
  // mutex) before the next: the documented deadlock-free lock discipline.
  for (auto& shard : shards_) {
    HINFS_RETURN_IF_ERROR(DrainShard(*shard, /*all=*/false, ino));
  }
  return OkStatus();
}

Status DramBufferManager::FlushBlock(uint64_t ino, uint64_t file_block) {
  Shard& s = ShardForKey(ino, file_block);
  while (true) {
    std::vector<Entry*> victims;
    {
      std::unique_lock<std::mutex> lock = LockShard(s);
      Entry* e = FindLocked(s, ino, file_block);
      if (e == nullptr) {
        return OkStatus();
      }
      if (e->writing) {
        s.write_done_cv.wait(lock);
        continue;
      }
      e->writing = true;
      victims.push_back(e);
    }
    return FlushEntries(s, std::move(victims));
  }
}

Status DramBufferManager::FlushAll() {
  for (auto& shard : shards_) {
    HINFS_RETURN_IF_ERROR(DrainShard(*shard, /*all=*/true, 0));
  }
  return OkStatus();
}

Status DramBufferManager::DiscardFile(uint64_t ino, uint64_t from_block) {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::unique_lock<std::mutex> lock = LockShard(s);
    bool done = false;
    while (!done) {
      auto it = s.index.find(ino);
      if (it == s.index.end()) {
        break;
      }
      std::vector<Entry*> drop;
      bool any_in_flight = false;
      it->second->ForEach([&](uint64_t block, Entry*& e) {
        if (block < from_block) {
          return true;
        }
        if (e->writing) {
          any_in_flight = true;
        } else {
          drop.push_back(e);
        }
        return true;
      });
      for (Entry* e : drop) {
        DetachLocked(s, e);  // writes to deleted files are simply dropped
      }
      if (!drop.empty()) {
        s.free_cv.notify_all();
      }
      if (!any_in_flight) {
        done = true;
      } else {
        s.write_done_cv.wait(lock);
      }
    }
  }
  return OkStatus();
}

// --- background engine -------------------------------------------------------------

void DramBufferManager::KickWorkerForShard(Shard& s) {
  // Record why the owner is being woken first, then perform the empty-
  // critical-section handshake on the owner's mutex: a worker between its
  // predicate check and its wait holds that mutex, so it cannot miss the
  // notification. Worker mutexes are leaf locks (callers may hold s.mu).
  s.wb_pending.store(true, std::memory_order_relaxed);
  if (!wb_running_.load(std::memory_order_relaxed)) {
    return;
  }
  WorkerState& ws = *workers_[s.owner_worker];
  {
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.kicked = true;
  }
  ws.cv.notify_one();
}

bool DramBufferManager::AnyAssignedShardNeedsWork(size_t worker) const {
  for (size_t i = worker; i < shards_.size(); i += wb_worker_count_) {
    const Shard& s = *shards_[i];
    if (s.wb_pending.load(std::memory_order_relaxed) ||
        s.free_count.load(std::memory_order_relaxed) <
            s.low.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void DramBufferManager::ProcessShard(Shard& s) {
  std::vector<Entry*> victims;
  {
    std::unique_lock<std::mutex> lock = LockShard(s);
    // Apply batched read touches first so victim picking sees up-to-date
    // ARC/2Q/LFU list positions (the owner worker is the ring's steady-state
    // consumer; the write path only drains opportunistically).
    DrainPromotionsLocked(s);
    // Phase 1: reclaim in policy order until this shard's free > High_f.
    const size_t high = s.high.load(std::memory_order_relaxed);
    if (s.free_frames.size() < high) {
      victims = PickVictimsLocked(s, high - s.free_frames.size());
    }

    // Phase 2: write back blocks that have been dirty for longer than the
    // staleness bound (paper: 30 s).
    const uint64_t now = MonotonicNowNs();
    const uint64_t stale_ns = options_.staleness_ms * 1'000'000ull;
    for (EntryList* list : {&s.t1, &s.t2}) {
      for (Entry* e = list->head.lrw_next; e != &list->head; e = e->lrw_next) {
        if (!e->writing && now - e->last_written_ns > stale_ns) {
          e->writing = true;
          GhostRecordLocked(s, e);
          victims.push_back(e);
        }
      }
    }
  }
  if (!victims.empty()) {
    (void)FlushEntries(s, std::move(victims));
  }
  // Sweep retired lookup arrays whose readers have all unpinned (no shard
  // mutex needed: the RetireList is internally synchronized).
  const uint64_t freed = s.lut_retired.TryReclaim();
  if (freed > 0) {
    s.stats.epoch_retired.fetch_add(freed, std::memory_order_relaxed);
  }
}

void DramBufferManager::WritebackThread(size_t worker) {
  // Writeback flushes are background traffic: no syscall is blocked on them,
  // so the QoS scheduler charges them to the shared background bucket instead
  // of whichever tenant happened to dirty the block.
  qos::ScopedQosContext qos_ctx(qos::kSystemTenant, qos::TrafficClass::kBackground);
  // Worker w is pinned to shards {w, w+T, w+2T, ...} and sleeps on its own
  // condition variable: a full shard wakes exactly its owner, never the
  // other workers (their kicked flags stay false).
  WorkerState& ws = *workers_[worker];
  std::unique_lock<std::mutex> lock(ws.mu);
  while (!stop_.load(std::memory_order_relaxed)) {
    ws.cv.wait_for(lock, std::chrono::milliseconds(options_.writeback_period_ms),
                   [this, &ws] {
                     return stop_.load(std::memory_order_relaxed) || ws.kicked;
                   });
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    const bool was_kicked = ws.kicked;
    ws.kicked = false;
    lock.unlock();
    if (was_kicked) {
      ws.wakeups.fetch_add(1, std::memory_order_relaxed);
      if (!AnyAssignedShardNeedsWork(worker)) {
        ws.spurious_wakeups.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      ws.timeout_wakeups.fetch_add(1, std::memory_order_relaxed);
    }
    for (size_t i = worker; i < shards_.size(); i += wb_worker_count_) {
      if (stop_.load(std::memory_order_relaxed)) {
        break;
      }
      shards_[i]->wb_pending.store(false, std::memory_order_relaxed);
      ProcessShard(*shards_[i]);
    }
    lock.lock();
  }
}

}  // namespace hinfs
