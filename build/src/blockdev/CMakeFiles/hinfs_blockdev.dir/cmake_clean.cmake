file(REMOVE_RECURSE
  "CMakeFiles/hinfs_blockdev.dir/nvmm_block_device.cc.o"
  "CMakeFiles/hinfs_blockdev.dir/nvmm_block_device.cc.o.d"
  "libhinfs_blockdev.a"
  "libhinfs_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
