file(REMOVE_RECURSE
  "CMakeFiles/hinfs_fs_test.dir/hinfs_fs_test.cc.o"
  "CMakeFiles/hinfs_fs_test.dir/hinfs_fs_test.cc.o.d"
  "hinfs_fs_test"
  "hinfs_fs_test.pdb"
  "hinfs_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hinfs_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
