// Offline consistency checker for PmfsFs/HinfsFs images.
//
// Validates the on-NVMM invariants the journal is supposed to maintain:
//   - superblock geometry is self-consistent and in-bounds;
//   - every live inode's radix tree references only in-bounds, allocated,
//     uniquely-owned data blocks, and its size fits the tree height;
//   - the directory tree is a tree: every dirent points to a live inode, every
//     non-root live inode is reachable by exactly its link count;
//   - the block bitmap agrees with the union of all references (leaked blocks
//     are reported as warnings, double-use as errors).
//
// Run it against a quiesced image (after Unmount(), or after Mount() recovery
// on a crashed image).

#ifndef SRC_FS_PMFS_FSCK_H_
#define SRC_FS_PMFS_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/nvmm/nvmm_device.h"

namespace hinfs {

struct FsckReport {
  std::vector<std::string> errors;    // invariant violations
  std::vector<std::string> warnings;  // leaks and oddities that lose no data

  uint64_t live_inodes = 0;
  uint64_t directories = 0;
  uint64_t regular_files = 0;
  uint64_t referenced_blocks = 0;  // data + radix node blocks
  uint64_t allocated_blocks = 0;   // per the bitmap
  uint64_t leaked_blocks = 0;      // allocated but unreferenced

  bool clean() const { return errors.empty(); }
  std::string Summary() const;
};

// Checks the PMFS/HiNFS image on `nvmm`. Read-only.
Result<FsckReport> FsckPmfs(NvmmDevice* nvmm);

}  // namespace hinfs

#endif  // SRC_FS_PMFS_FSCK_H_
